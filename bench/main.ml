(* Benchmark harness regenerating the paper's quantitative claims.
   Run with no argument for the full E1-E8 table set, with an experiment
   id ("e1" .. "e8") for one table, with "micro" for the Bechamel
   micro-benchmarks (one Test.make per experiment family), or with
   "runtime" [--smoke] for the memory-layout sweep (padded+CSR vs
   unpadded+nested; writes BENCH_runtime.json).
   See EXPERIMENTS.md for the experiment index. *)

module T = Cn_network.Topology
module E = Cn_network.Eval
module S = Cn_sequence.Sequence
module C = Cn_core.Counting
module Bounds = Cn_analysis.Bounds

let header title = Printf.printf "\n=== %s ===\n" title
let line fmt = Printf.printf (fmt ^^ "\n")

(* ------------------------------------------------------------------ *)
(* E1: Theorem 4.1 — depth of C(w, t) is (lg2 w + lg w)/2, independent
   of t; same depth as bitonic; periodic is lg2 w.                      *)

let e1 () =
  header "E1  depth(C(w,t)) = (lg^2 w + lg w)/2, independent of t (Thm 4.1; Figs 2,3,11-13)";
  line "%6s %6s | %9s %9s | %8s %8s" "w" "t" "measured" "formula" "bitonic" "periodic";
  List.iter
    (fun w ->
      List.iter
        (fun p ->
          let t = p * w in
          let net = C.network ~w ~t in
          line "%6d %6d | %9d %9d | %8d %8d" w t (T.depth net) (C.depth_formula ~w)
            (Cn_baselines.Bitonic.depth_formula ~w)
            (Cn_baselines.Periodic.depth_formula ~w))
        (if w <= 4 then [ 1; 2; 4 ] else [ 1; 2; 4; Cn_core.Params.ilog2 w ]))
    [ 2; 4; 8; 16; 32; 64; 128; 256 ];
  line "note: measured depth never varies with t at fixed w."

(* ------------------------------------------------------------------ *)
(* E2: Lemma 3.1 — depth of the difference merging network is lg delta. *)

let e2 () =
  header "E2  depth(M(t,delta)) = lg delta (Lemma 3.1; Figs 5,6)";
  line "%6s %6s | %9s %9s | %6s" "t" "delta" "measured" "lg delta" "size";
  List.iter
    (fun (t, delta) ->
      let net = Cn_core.Merging.network ~t ~delta in
      line "%6d %6d | %9d %9d | %6d" t delta (T.depth net)
        (Cn_core.Merging.depth_formula ~delta)
        (T.size net))
    [
      (8, 2); (8, 4); (16, 2); (16, 4); (16, 8); (32, 8); (32, 16); (64, 16);
      (64, 32); (48, 8); (96, 16); (128, 64);
    ];
  line "note: a bitonic merger of width t has depth lg t instead (Section 3.3).";
  List.iter
    (fun t ->
      line "  bitonic merger width %3d: depth %d" t (T.depth (Cn_baselines.Bitonic.merger t)))
    [ 8; 16; 32; 64 ]

(* ------------------------------------------------------------------ *)
(* E3: Lemmas 5.2 / 6.6 — butterfly smoothness and N_ab smoothness.     *)

let measured_spread ?(trials = 400) ?(seed = 9) net =
  let rng = Random.State.make [| seed |] in
  let w = T.input_width net in
  let worst = ref 0 in
  for _ = 1 to trials do
    let x = Array.init w (fun _ -> Random.State.int rng 128) in
    worst := max !worst (S.spread (E.quiescent net x))
  done;
  !worst

let e3 () =
  header
    "E3  smoothing: D(w) is lg w-smooth (Lemma 5.2); N_ab is (floor(w lg w/t)+2)-smooth (Lemma 6.6)";
  line "%-14s %6s | %9s %7s" "network" "w" "measured" "bound";
  List.iter
    (fun w ->
      line "%-14s %6d | %9d %7d" "butterfly D" w
        (measured_spread (Cn_core.Butterfly.forward w))
        (Cn_core.Butterfly.smoothness_bound ~w))
    [ 4; 8; 16; 32; 64; 128; 256 ];
  line "%-14s %6s | %9s %7s" "N_ab = C'(w,t)" "w,t" "measured" "bound";
  List.iter
    (fun (w, t) ->
      line "%-8s %4d,%-6d | %9d %7d" "C'" w t
        (measured_spread (Cn_core.Blocks.c_prime ~w ~t))
        (Cn_core.Blocks.smoothing_parameter ~w ~t))
    [ (8, 8); (8, 24); (8, 64); (16, 16); (16, 64); (32, 32); (32, 160); (64, 64) ]

(* ------------------------------------------------------------------ *)
(* E4: Theorem 6.7 / Section 1.3.1 — simulated amortized contention.    *)

let e4_networks w =
  [
    ("bitonic", Cn_baselines.Bitonic.network w);
    ("periodic", Cn_baselines.Periodic.network w);
    (Printf.sprintf "C(%d,%d)" w w, C.network ~w ~t:w);
    (Printf.sprintf "C(%d,%d)" w (w * Cn_core.Params.ilog2 w), C.wide w);
    (Printf.sprintf "C(%d,%d)" w (w * w), C.network ~w ~t:(w * w));
    ("difftree", Cn_baselines.Diffracting.network w);
  ]

let e4 () =
  header "E4  simulated amortized contention: stalls/token vs concurrency (Thm 6.7; Sect 1.3.1)";
  List.iter
    (fun w ->
      line "-- w = %d (crossover n = w lg w = %d); m = 30n tokens, worst over schedule portfolio"
        w
        (Bounds.crossover_concurrency ~w);
      let ns = [ 2; 4; 8; 16; 32; 64; 128; 256 ] in
      line "%-12s %s" "network" (String.concat " " (List.map (Printf.sprintf "%8d") ns));
      List.iter
        (fun (name, net) ->
          let row =
            List.map
              (fun n ->
                let r = Cn_sim.Contention.worst net ~n ~m:(30 * n) in
                Printf.sprintf "%8.2f" r.Cn_sim.Contention.per_token)
              ns
          in
          line "%-12s %s" name (String.concat " " row))
        (e4_networks w);
      line "%-12s %s" "[bnd bitonic]"
        (String.concat " "
           (List.map (fun n -> Printf.sprintf "%8.1f" (Bounds.contention_bitonic ~w ~n)) ns));
      line "%-12s %s" "[bnd C wide]"
        (String.concat " "
           (List.map
              (fun n ->
                Printf.sprintf "%8.1f"
                  (Bounds.contention_c_asymptotic ~w ~t:(w * Cn_core.Params.ilog2 w) ~n))
              ns)))
    [ 8; 16; 32 ];
  line "shape checks: C(w, w lg w) < C(w,w) ~ bitonic at n >> w lg w; difftree ~ n."

(* ------------------------------------------------------------------ *)
(* E5: real-system throughput with OCaml domains (Sect 1.3.1, [19,20]). *)

let e5 () =
  header "E5  multicore throughput: counter ops/s vs domains (experiments of [19,20])";
  line "(host note: single-core container -> domains timeshare; relative shapes only)";
  let w = 8 in
  let ops = 20_000 in
  let counters =
    [
      ("central-faa", fun () -> Cn_runtime.Shared_counter.central_faa ());
      ("lock", fun () -> Cn_runtime.Shared_counter.with_lock ());
      ( "bitonic-8",
        fun () -> Cn_runtime.Shared_counter.of_topology (Cn_baselines.Bitonic.network w) );
      ( "periodic-8",
        fun () -> Cn_runtime.Shared_counter.of_topology (Cn_baselines.Periodic.network w) );
      ("C(8,8)", fun () -> Cn_runtime.Shared_counter.of_topology (C.network ~w ~t:w));
      ("C(8,24)", fun () -> Cn_runtime.Shared_counter.of_topology (C.wide w));
      ("C(8,64)", fun () -> Cn_runtime.Shared_counter.of_topology (C.network ~w ~t:64));
    ]
  in
  let domain_counts = [ 1; 2; 4; 8 ] in
  line "%-12s %s" "counter"
    (String.concat " "
       (List.map (fun d -> Printf.sprintf "%11s" (Printf.sprintf "%dd ops/s" d)) domain_counts));
  Cn_runtime.Domain_pool.with_pool 8 (fun pool ->
      List.iter
        (fun (name, make) ->
          let row =
            List.map
              (fun domains ->
                let r =
                  Cn_runtime.Harness.throughput ~pool ~make ~domains
                    ~ops_per_domain:(ops / domains) ()
                in
                Printf.sprintf "%11.0f" r.Cn_runtime.Harness.ops_per_sec)
              domain_counts
          in
          line "%-12s %s" name (String.concat " " row))
        counters);
  line "CAS-retry failures per op at 8 domains (contention witness):";
  List.iter
    (fun (name, net) ->
      let rt = Cn_runtime.Network_runtime.compile ~mode:Cn_runtime.Network_runtime.Cas net in
      let body pid () =
        for _ = 1 to 2000 do
          ignore (Cn_runtime.Network_runtime.traverse rt ~wire:(pid mod T.input_width net))
        done
      in
      let handles = Array.init 8 (fun pid -> Domain.spawn (body pid)) in
      Array.iter Domain.join handles;
      line "  %-12s %.4f" name
        (float_of_int (Cn_runtime.Network_runtime.cas_failures rt) /. 16000.))
    [
      ("bitonic-8", Cn_baselines.Bitonic.network w);
      ("C(8,8)", C.network ~w ~t:8);
      ("C(8,24)", C.wide w);
    ]

(* ------------------------------------------------------------------ *)
(* E6: Section 1.3.2 — resource cost of increasing t.                   *)

let e6 () =
  header "E6  resource tradeoff: balancers vs output width t (Sect 1.3.2)";
  line "%6s %6s | %9s %9s | %22s" "w" "t" "balancers" "depth" "sim stalls/tok (n=128)";
  List.iter
    (fun w ->
      List.iter
        (fun t ->
          let net = C.network ~w ~t in
          let r =
            Cn_sim.Contention.worst ~strategies:[ Cn_sim.Scheduler.Random 3 ] net ~n:128 ~m:2560
          in
          line "%6d %6d | %9d %9d | %22.2f" w t (T.size net) (T.depth net)
            r.Cn_sim.Contention.per_token)
        [ w; 2 * w; w * Cn_core.Params.ilog2 w; w * w ])
    [ 8; 16; 32 ];
  line "note: t = w lg w is the compromise the paper recommends.";
  (* The structural interpretation of Section 1.3.2: tokens spend most of
     their time in block N_c (the mergers); increasing t drains exactly
     that block's contention while N_ab stays put. *)
  line "";
  line "block-level stall split at w = 16, n = 128 (N_ab = first lg w layers, N_c = mergers):";
  line "%6s %6s | %12s %12s" "w" "t" "N_ab stalls" "N_c stalls";
  List.iter
    (fun t ->
      let net = C.network ~w:16 ~t in
      let r = Cn_sim.Contention.measure net ~n:128 ~m:2560 (Cn_sim.Scheduler.Random 3) in
      let k = Cn_core.Params.ilog2 16 in
      let ab = Array.fold_left ( + ) 0 (Array.sub r.Cn_sim.Contention.per_layer 0 k) in
      let c =
        Array.fold_left ( + ) 0
          (Array.sub r.Cn_sim.Contention.per_layer k
             (Array.length r.Cn_sim.Contention.per_layer - k))
      in
      line "%6d %6d | %12d %12d" 16 t ab c)
    [ 16; 32; 64; 256 ];
  line "N_ab stalls are t-invariant; N_c stalls collapse as t grows — Fig. 3's intuition."

(* ------------------------------------------------------------------ *)
(* E7: Section 7 — the sorting-network byproduct.                       *)

let e7 () =
  header "E7  sorting byproduct: comparators from C(w,w) sort; depth O(lg^2 w) (Sect 7)";
  line "%6s | %8s %8s | %12s %12s | %10s" "w" "depth" "batcher" "comparators" "batcher" "sorts";
  List.iter
    (fun w ->
      let ours = Cn_core.Sorting.of_topology (C.network ~w ~t:w) in
      let batcher = Cn_baselines.Batcher.network w in
      let sorts =
        if w <= 16 then Cn_core.Sorting.sorts_zero_one ours
        else Cn_core.Sorting.sorts_random ~trials:3000 ours
      in
      line "%6d | %8d %8d | %12d %12d | %10b" w (Cn_core.Sorting.depth ours)
        (Cn_core.Sorting.depth batcher)
        (Cn_core.Sorting.comparator_count ours)
        (Cn_core.Sorting.comparator_count batcher)
        sorts)
    [ 4; 8; 16; 32; 64 ]

(* ------------------------------------------------------------------ *)
(* E8: Fig. 1 — the worked example reproduced exactly.                  *)

let e8 () =
  header "E8  Fig. 1 reproduction: (4,6)-balancer and C(4,8) token values";
  let b = Cn_network.Balancer.make ~fan_in:4 ~fan_out:6 () in
  line "(4,6)-balancer, 11 tokens in -> per-wire exits %s"
    (S.to_string (Cn_network.Balancer.output_counts b ~tokens:11));
  let net = C.network ~w:4 ~t:8 in
  line "C(4,8): w=%d t=%d depth=%d size=%d" (T.input_width net) (T.output_width net)
    (T.depth net) (T.size net);
  let entries = List.init 17 (fun i -> i mod 4) in
  let runs = E.token_run net entries in
  line "17 sequential tokens (entry wire -> exit wire = counter value):";
  List.iteri
    (fun i (wire, v) -> line "  token %2d: in %d -> out %d, value %2d" i (i mod 4) wire v)
    runs;
  let per_wire = Array.make 8 0 in
  List.iter (fun (wire, _) -> per_wire.(wire) <- per_wire.(wire) + 1) runs;
  line "exit distribution %s (step: %b)" (S.to_string per_wire) (S.is_step per_wire)

(* ------------------------------------------------------------------ *)
(* E9: ablation — replace M(t, w/2) by the bitonic merger (Sect 3.3).   *)

let e9 () =
  header "E9  ablation: C(w,t) with bitonic mergers instead of M(t,delta) (Sect 3.3)";
  line "%6s %6s | %10s %12s | %s" "w" "t" "C(w,t)" "ablated" "t-dependence";
  List.iter
    (fun w ->
      List.iter
        (fun t ->
          let ours = T.depth (C.network ~w ~t) in
          let ablated = T.depth (Cn_core.Ablation.network ~w ~t) in
          line "%6d %6d | %10d %12d | %s" w t ours ablated
            (if t = w then "" else Printf.sprintf "+%d layers for 8x width" (ablated - T.depth (Cn_core.Ablation.network ~w ~t:w))))
        [ w; 8 * w ])
    [ 4; 8; 16; 32; 64 ];
  line "our merger keeps depth a function of w alone; the bitonic merger pays lg t per level.";
  line "second ablation: wiring the recursion cross-parity (M0 on x_even,y_odd) breaks merging:";
  List.iter
    (fun (t, delta) ->
      match
        Cn_core.Verify.merging ~delta ~max_half_sum:40 (Cn_core.Ablation.cross_parity_merger ~t ~delta)
      with
      | Cn_core.Verify.Counterexample x ->
          line "  M'(%d,%d): fails, e.g. on step halves summing %d and %d" t delta
            (S.sum (S.first_half x)) (S.sum (S.second_half x))
      | Cn_core.Verify.Verified n -> line "  M'(%d,%d): (unexpectedly merged %d cases)" t delta n)
    [ (8, 4); (16, 8); (32, 16) ]

(* ------------------------------------------------------------------ *)
(* E10: randomized initial states (Sect 7 open problem; [17,24]).       *)

let e10 () =
  header "E10  randomized initial balancer states: smoothness of D(w) (Sect 7; [17,24])";
  line "%6s | %14s %14s | %7s" "w" "deterministic" "randomized" "bound";
  List.iter
    (fun w ->
      let det = measured_spread (Cn_core.Butterfly.forward w) in
      (* Average worst spread over several random initializations. *)
      let seeds = [ 1; 2; 3; 4; 5 ] in
      let rnd =
        List.fold_left
          (fun acc seed ->
            acc
            + measured_spread ~seed (T.randomize_states ~seed (Cn_core.Butterfly.forward w)))
          0 seeds
      in
      line "%6d | %14d %14.1f | %7d" w det
        (float_of_int rnd /. float_of_int (List.length seeds))
        (Cn_core.Butterfly.smoothness_bound ~w))
    [ 8; 16; 32; 64; 128 ];
  line "randomization does not break the lg w bound and keeps typical spreads similar;";
  line "counting networks, by contrast, lose the step property under random states";
  let net = T.randomize_states ~seed:11 (C.network ~w:8 ~t:8) in
  let rng = Random.State.make [| 4 |] in
  let broke = ref 0 in
  for _ = 1 to 300 do
    let x = Array.init 8 (fun _ -> Random.State.int rng 50) in
    if not (S.is_step (E.quiescent net x)) then incr broke
  done;
  line "(randomized C(8,8): %d/300 random loads fail step, all stay 2-smooth)" !broke

(* ------------------------------------------------------------------ *)
(* E11: discrete-event latency model (Sect 1.1: latency = depth;        *)
(* throughput capped by the narrowest layer).                           *)

let e11 () =
  header "E11  timed simulation: latency = depth at low load; throughput = first-layer capacity (Sect 1.1)";
  let configs =
    [
      ("C(8,8)", Cn_core.Counting.network ~w:8 ~t:8);
      ("C(8,24)", C.wide 8);
      ("bitonic-8", Cn_baselines.Bitonic.network 8);
      ("periodic-8", Cn_baselines.Periodic.network 8);
      ("difftree-8", Cn_baselines.Diffracting.network 8);
    ]
  in
  line "%-12s %6s | %9s %9s %9s | %10s %8s" "network" "depth" "lat(n=1)" "lat(n=16)" "lat(n=64)"
    "saturation" "cap w/2";
  List.iter
    (fun (name, net) ->
      let lat n =
        (Cn_sim.Timed.closed_loop ~jitter:0.3 net ~n ~rounds:50).Cn_sim.Timed.avg_latency
      in
      let sat = (Cn_sim.Timed.closed_loop ~jitter:0.3 net ~n:128 ~rounds:50).Cn_sim.Timed.throughput in
      line "%-12s %6d | %9.2f %9.2f %9.2f | %10.2f %8d" name (T.depth net) (lat 1) (lat 16)
        (lat 64) sat
        (T.input_width net / 2))
    configs;
  line "the diffracting tree pays for its single input wire: saturation throughput 1."

(* ------------------------------------------------------------------ *)
(* E12: (non-)linearizability (Sect 1.4.2; Herlihy-Shavit-Waarts).      *)

let e12 () =
  header "E12  linearizability: counting networks invert values across real time (Sect 1.4.2)";
  line "%-14s %6s | %-14s %s" "network" "depth" "linearizable?" "witness (value after, value before)";
  List.iter
    (fun (name, net) ->
      match Cn_sim.Linearizability.find_violation net ~n:8 ~m:80 with
      | None -> line "%-14s %6d | %-14s" name (T.depth net) "yes (none found)"
      | Some (a, b) ->
          line "%-14s %6d | %-14s op@t%d got %d, later op@t%d got %d" name (T.depth net) "NO"
            a.Cn_sim.Stall_model.response a.Cn_sim.Stall_model.value
            b.Cn_sim.Stall_model.invoke b.Cn_sim.Stall_model.value)
    [
      ("C(2,2)", C.network ~w:2 ~t:2);
      ("C(4,4)", C.network ~w:4 ~t:4);
      ("C(8,8)", C.network ~w:8 ~t:8);
      ("C(8,24)", C.wide 8);
      ("bitonic-8", Cn_baselines.Bitonic.network 8);
      ("periodic-8", Cn_baselines.Periodic.network 8);
      ("difftree-8", Cn_baselines.Diffracting.network 8);
    ];
  line "every history remains quiescently consistent (dense values); the HSW lower bound";
  line "says linearizable + low contention forces Omega(n) depth, so none of these try."

(* ------------------------------------------------------------------ *)
(* E13: Fetch&Decrement via antitokens (Sect 1.4.2; Aiello et al.).     *)

let e13 () =
  header "E13  antitokens: mixed increment/decrement workloads (Sect 1.4.2; Aiello et al. [2])";
  line "token-level mixed runs agree with the closed-form net evaluation, and net";
  line "distributions of non-negative nets keep the step property:";
  let rng = Random.State.make [| 77 |] in
  List.iter
    (fun (w, t) ->
      let net = C.network ~w ~t in
      let agree = ref 0 and steps = ref 0 and runs = 40 in
      for seed = 0 to runs - 1 do
        let tokens = Array.init w (fun _ -> 8 + Random.State.int rng 8) in
        let antitokens = Array.init w (fun _ -> Random.State.int rng 8) in
        let nets = Array.init w (fun i -> tokens.(i) - antitokens.(i)) in
        let traced = E.trace_signed ~seed net ~tokens ~antitokens in
        if traced = E.quiescent_net net nets then incr agree;
        if S.is_step traced then incr steps
      done;
      line "  C(%d,%d): trace=closed-form %d/%d, step %d/%d" w t !agree runs !steps runs)
    [ (4, 8); (8, 8); (8, 24); (16, 16) ];
  (* Runtime round trip at the counter level. *)
  let rt = Cn_runtime.Network_runtime.compile (C.network ~w:4 ~t:8) in
  let a = Cn_runtime.Network_runtime.traverse rt ~wire:0 in
  let b = Cn_runtime.Network_runtime.traverse rt ~wire:1 in
  let r = Cn_runtime.Network_runtime.traverse_decrement rt ~wire:1 in
  let b' = Cn_runtime.Network_runtime.traverse rt ~wire:1 in
  line "runtime Fetch&Decrement round trip: inc=%d, inc=%d, dec reclaims %d, inc re-issues %d" a b r b'

(* ------------------------------------------------------------------ *)
(* E14: exact worst-case contention on small instances (Sect 1.2).      *)

let e14 () =
  header "E14  exact cont(B,n,m) by exhaustive schedule search vs heuristic adversaries (Sect 1.2)";
  line "%-12s %3s %3s | %9s %9s | %9s %9s" "network" "n" "m" "exact max" "exact min" "heuristic" "max/token";
  List.iter
    (fun (name, net, n, m) ->
      let exact = Cn_sim.Exhaustive.max_contention net ~n ~m in
      let least = Cn_sim.Exhaustive.min_contention net ~n ~m in
      let heur = Cn_sim.Contention.worst net ~n ~m in
      line "%-12s %3d %3d | %9d %9d | %9.0f %9d" name n m exact least
        (heur.Cn_sim.Contention.per_token *. float_of_int m)
        heur.Cn_sim.Contention.max_token_stalls)
    [
      ("C(2,2)", C.network ~w:2 ~t:2, 3, 6);
      ("C(2,2)", C.network ~w:2 ~t:2, 4, 8);
      ("C(4,4)", C.network ~w:4 ~t:4, 3, 6);
      ("C(4,8)", C.network ~w:4 ~t:8, 3, 6);
      ("L(4)", Cn_core.Ladder.network 4, 4, 8);
      ("difftree-4", Cn_baselines.Diffracting.network 4, 3, 6);
    ];
  line "the widened C(4,8) already beats C(4,4) in the EXACT worst case (7 vs 8);";
  line "heuristics lower-bound the exact adversary (and match it on single balancers)."

(* ------------------------------------------------------------------ *)
(* Contention-model projection shared by the runtime and service
   suites.  The single-core host cannot measure real cross-core
   contention, so the projected rows combine the one number it CAN
   measure — the single-domain cost of a balancer crossing — with the
   stall-counting contention simulator (Dwork-Herlihy-Waarts, the
   paper's Section 1.2 model): token time = depth·crossing_ns +
   stalls/token(n)·stall_ns, stalls/token = n - 1 for the central FAA
   hot spot.  Before calibrating, the compiled network's precompiled
   routing image is certified by the CSR lint pass — a projection from
   a miscompiled network would be garbage with confidence. *)

let projected_json ?(smoke = false) ~w net =
  let module RT = Cn_runtime.Network_runtime in
  let module P = Cn_analysis.Projection in
  let subject = Printf.sprintf "C(%d,%d)" w w in
  let rt = RT.compile net in
  (match Cn_lint.Csr_lint.check ~subject net (RT.view rt) with
  | [] -> line "csr-lint: %s precompiled routing image certified (0 diagnostics)" subject
  | diags ->
      List.iter
        (fun d -> Printf.eprintf "csr-lint: %s\n" (Format.asprintf "%a" Cn_lint.Diagnostic.pp d))
        diags;
      prerr_endline "projected bench: refusing to calibrate a miscompiled network";
      exit 1);
  let crossing_ns =
    Cn_runtime.Domain_pool.with_pool 1 (fun pool ->
        Cn_runtime.Harness.calibrate_crossing_ns ~pool
          ~ops_per_domain:(if smoke then 10_000 else 200_000)
          ~make:(fun () -> Cn_runtime.Shared_counter.of_topology net)
          ~depth:(T.depth net) ())
  in
  let c = P.calibrate ~crossing_ns () in
  let domains_list = [ 2; 4; 8; 16; 32; 64 ] in
  let central = P.sweep_central c ~domains_list in
  let network = P.sweep_network c net ~domains_list in
  let row name (p : P.point) =
    Printf.sprintf
      "      { \"counter\": %S, \"domains\": %d, \"stalls_per_token\": %.3f, \"token_ns\": \
       %.1f, \"projected_ops_per_sec\": %.1f }"
      name p.P.domains p.P.stalls_per_token p.P.token_ns p.P.ops_per_sec
  in
  line "projected (model): crossing %.1f ns, stall factor %.1f, depth %d" crossing_ns
    c.P.stall_factor (T.depth net);
  line "%-12s %s" "counter"
    (String.concat " " (List.map (Printf.sprintf "%11dd") domains_list));
  let print_curve name pts =
    line "%-12s %s" name
      (String.concat " " (List.map (fun (p : P.point) -> Printf.sprintf "%11.0f" p.P.ops_per_sec) pts))
  in
  print_curve "central-faa" central;
  print_curve subject network;
  let crossover = P.crossover c net in
  (match crossover with
  | Some n -> line "projected crossover: network overtakes central FAA at %d domains" n
  | None -> line "projected crossover: not reached within the scanned range");
  Printf.sprintf
    "{\n    \"model\": \"token_ns = depth*crossing_ns + stalls_per_token*stall_factor*crossing_ns\",\n\
    \    \"crossing_ns\": %.3f,\n    \"stall_factor\": %.1f,\n    \"stall_ns\": %.3f,\n\
    \    \"depth\": %d,\n    \"csr_lint\": \"certified\",\n    \"rows\": [\n%s\n    ],\n\
    \    \"projected_crossover_domains\": %s\n  }"
    crossing_ns c.P.stall_factor (P.stall_ns c) (T.depth net)
    (String.concat ",\n" (List.map (row "central-faa") central @ List.map (row subject) network))
    (match crossover with Some n -> string_of_int n | None -> "null")

(* ------------------------------------------------------------------ *)
(* runtime: the memory-layout sweep.  Compares the padded+CSR layout
   against the seed unpadded+nested layout (and the central-FAA / lock
   baselines) across 1-8 domains, reusing one warmed domain pool for
   every cell, and emits machine-readable BENCH_runtime.json.           *)

let runtime ?(smoke = false) ?(projected = false) () =
  header "runtime  memory-layout sweep: padded+CSR vs unpadded+nested (writes BENCH_runtime.json)";
  line "(host note: single-core container -> domains timeshare; relative shapes only)";
  let w = 16 in
  let ops_total = if smoke then 4_000 else 64_000 in
  let repeats = if smoke then 1 else 3 in
  let c16 = C.network ~w ~t:w in
  let bitonic16 = Cn_baselines.Bitonic.network w in
  let module RT = Cn_runtime.Network_runtime in
  let layouts = [ ("padded-csr", RT.Padded_csr); ("unpadded-nested", RT.Unpadded_nested) ] in
  let net_configs =
    List.concat_map
      (fun (net_name, net) ->
        List.map
          (fun (layout_name, layout) ->
            ( net_name,
              layout_name,
              fun () -> Cn_runtime.Shared_counter.of_topology ~layout net ))
          layouts)
      [ (Printf.sprintf "C(%d,%d)" w w, c16); (Printf.sprintf "bitonic-%d" w, bitonic16) ]
  in
  let configs =
    net_configs
    @ [
        ("central-faa", "-", fun () -> Cn_runtime.Shared_counter.central_faa ());
        ("lock", "-", fun () -> Cn_runtime.Shared_counter.with_lock ());
      ]
  in
  let domain_counts = [ 1; 2; 4; 8 ] in
  let results = ref [] in
  Cn_runtime.Domain_pool.with_pool 8 (fun pool ->
      line "%-12s %-16s %s" "counter" "layout"
        (String.concat " "
           (List.map (fun d -> Printf.sprintf "%11s" (Printf.sprintf "%dd ops/s" d)) domain_counts));
      List.iter
        (fun (name, layout_name, make) ->
          let row =
            List.map
              (fun domains ->
                (* Best of [repeats]: spawn-free pool runs are cheap, and
                   the max is the least noisy location estimate for
                   short timed regions on a shared host. *)
                let best = ref 0. and seconds = ref 0. in
                for _ = 1 to repeats do
                  let r =
                    Cn_runtime.Harness.throughput ~pool ~make ~domains
                      ~ops_per_domain:(ops_total / domains) ()
                  in
                  if r.Cn_runtime.Harness.ops_per_sec > !best then begin
                    best := r.Cn_runtime.Harness.ops_per_sec;
                    seconds := r.Cn_runtime.Harness.seconds
                  end
                done;
                results :=
                  (name, layout_name, domains, ops_total, !seconds, !best) :: !results;
                Printf.sprintf "%11.0f" !best)
              domain_counts
          in
          line "%-12s %-16s %s" name layout_name (String.concat " " row))
        configs;
      (* The batched traversal API on the padded layout: bounds check and
         dispatch amortized across each domain's whole quota. *)
      let rt = RT.compile c16 in
      let batch_row =
        List.map
          (fun domains ->
            let n = ops_total / domains in
            let best = ref 0. and seconds = ref 0. in
            for _ = 1 to repeats do
              RT.reset rt;
              let s =
                Cn_runtime.Domain_pool.run pool ~domains (fun pid ->
                    RT.traverse_batch rt ~wire:(pid mod w) ~n ~f:(fun _ _ -> ()))
              in
              let rate = if s <= 0. then 0. else float_of_int (domains * n) /. s in
              if rate > !best then begin
                best := rate;
                seconds := s
              end
            done;
            results :=
              ( Printf.sprintf "C(%d,%d)+batch" w w,
                "padded-csr",
                domains,
                ops_total,
                !seconds,
                !best )
              :: !results;
            Printf.sprintf "%11.0f" !best)
          domain_counts
      in
      line "%-12s %-16s %s" (Printf.sprintf "C(%d,%d)+batch" w w) "padded-csr"
        (String.concat " " batch_row);
      (* The layer-pipelined batch walk: a wavefront of tokens advances
         one crossing per round, overlapping independent crossings.
         Buffers are per-domain — they are single-owner scratch. *)
      let bufs = Array.init 8 (fun _ -> RT.buffer ~capacity:128 ()) in
      let pipe_row =
        List.map
          (fun domains ->
            let n = ops_total / domains in
            let best = ref 0. and seconds = ref 0. in
            for _ = 1 to repeats do
              RT.reset rt;
              let s =
                Cn_runtime.Domain_pool.run pool ~domains (fun pid ->
                    RT.traverse_batch_pipelined rt bufs.(pid) ~wire:(pid mod w) ~n
                      ~f:(fun _ _ -> ()))
              in
              let rate = if s <= 0. then 0. else float_of_int (domains * n) /. s in
              if rate > !best then begin
                best := rate;
                seconds := s
              end
            done;
            results :=
              ( Printf.sprintf "C(%d,%d)+pipe" w w,
                "padded-csr",
                domains,
                ops_total,
                !seconds,
                !best )
              :: !results;
            Printf.sprintf "%11.0f" !best)
          domain_counts
      in
      line "%-12s %-16s %s" (Printf.sprintf "C(%d,%d)+pipe" w w) "padded-csr"
        (String.concat " " pipe_row));
  (* Observability pass: one metrics-instrumented CAS run on C(16,16)
     at 4 domains.  The validator runs Strict — any lost update or
     broken step property fails the whole sweep — and the per-layer
     stall profile (the empirical shape Theorem 6.7 bounds) is printed
     and embedded in BENCH_runtime.json. *)
  let metrics_json =
    let rt = RT.compile ~mode:RT.Cas ~metrics:true c16 in
    let domains = 4 in
    let n = ops_total / domains in
    Cn_runtime.Domain_pool.with_pool domains (fun pool ->
        ignore
          (Cn_runtime.Domain_pool.run pool ~domains (fun pid ->
               RT.traverse_batch rt ~wire:(pid mod w) ~n ~f:(fun _ _ -> ()))));
    Cn_runtime.Validator.enforce Cn_runtime.Validator.Strict
      (Cn_runtime.Validator.quiescent_runtime rt);
    let m = Option.get (RT.metrics rt) in
    let snap = Cn_runtime.Metrics.snapshot m in
    let layers = Array.init (T.size c16) (T.balancer_depth c16) in
    let per_layer = Cn_runtime.Metrics.per_layer ~layers snap.Cn_runtime.Metrics.stalls in
    line "metrics: C(16,16) cas, %d domains x %d ops — validator strict ok" domains n;
    line "  per-layer stalls: %s"
      (String.concat " " (Array.to_list (Array.map string_of_int per_layer)));
    (match snap.Cn_runtime.Metrics.latency with
    | Some l ->
        line "  token latency (%s): p50 %.0f  p95 %.0f  p99 %.0f  (%d sampled)"
          l.Cn_runtime.Metrics.time_unit l.Cn_runtime.Metrics.p50 l.Cn_runtime.Metrics.p95
          l.Cn_runtime.Metrics.p99 l.Cn_runtime.Metrics.observed
    | None -> line "  token latency: (none sampled)");
    Cn_runtime.Metrics.to_json ~layers snap
  in
  let projected_section = if projected then Some (projected_json ~smoke ~w c16) else None in
  let oc = open_out "BENCH_runtime.json" in
  let entries =
    List.rev_map
      (fun (name, layout_name, domains, total_ops, seconds, rate) ->
        Printf.sprintf
          "    { \"counter\": %S, \"layout\": %S, \"domains\": %d, \"total_ops\": %d, \
           \"seconds\": %.6f, \"ops_per_sec\": %.1f }"
          name layout_name domains total_ops seconds rate)
      !results
  in
  Printf.fprintf oc
    "{\n  \"suite\": \"runtime\",\n  \"w\": %d,\n  \"results\": [\n%s\n  ],\n%s  \"metrics\": %s}\n"
    w
    (String.concat ",\n" entries)
    (match projected_section with
    | Some p -> Printf.sprintf "  \"projected\": %s,\n" p
    | None -> "")
    metrics_json;
  close_out oc;
  line "wrote BENCH_runtime.json (%d measurements%s + metrics profile)" (List.length !results)
    (if projected then " + projected curves" else "")

(* ------------------------------------------------------------------ *)
(* service: the Cn_service combining front-end against naive per-op
   traversals, pure-increment and 50/50 inc/dec, at 8 domains on
   C(16,16).  Each service domain pipelines K async submissions per
   round so the elected combiner serves them as one batch — the
   batching the per-op caller cannot express — and the mixed rows let
   elimination pair tokens with antitokens before they reach the
   network.  Appends a "service" section to BENCH_runtime.json.         *)

let service ?(smoke = false) ?(projected = false) () =
  header "service  combining front-end vs naive per-op traverse (appends to BENCH_runtime.json)";
  line "(host note: single-core container -> domains timeshare; relative shapes only)";
  let module RT = Cn_runtime.Network_runtime in
  let module DP = Cn_runtime.Domain_pool in
  let module V = Cn_runtime.Validator in
  let module Svc = Cn_service.Service in
  let module W = Cn_service.Workload in
  let w = 16 in
  let c16 = C.network ~w ~t:w in
  let domains = 8 in
  let k = 32 in
  (* per-domain ops; divisible by the pipeline width [k] *)
  let ops = if smoke then 512 else 16_000 in
  let repeats = if smoke then 2 else 5 in
  let rows = ref [] in
  let record name mix rate seconds (st : Svc.stats option) =
    let mean_batch, elim, elim_rate, rejected =
      match st with
      | Some st ->
          (st.Svc.mean_batch, st.Svc.total_eliminated_pairs, st.Svc.elimination_rate,
           st.Svc.total_rejected)
      | None -> (1., 0, 0., 0)
    in
    rows := (name, mix, domains * ops, seconds, rate, mean_batch, elim, elim_rate, rejected) :: !rows;
    line "%-22s %-6s %11.0f ops/s   mean batch %6.2f   eliminated %6d   rejected %d"
      name mix rate mean_batch elim rejected
  in
  let find_rate name mix =
    let rec go = function
      | [] -> 0.
      | (n, m, _, _, r, _, _, _, _) :: _ when n = name && m = mix -> r
      | _ :: tl -> go tl
    in
    go !rows
  in
  let mixed_elims = ref 0 in
  let report_json = ref "null" in
  DP.with_pool domains (fun pool ->
      (* Naive baselines: one traverse (or traverse/traverse_decrement
         alternation) per op, strict-validated at quiescence. *)
      let naive name ~mixed =
        let rt = RT.compile c16 in
        let best = ref 0. and secs = ref 0. in
        for _ = 1 to repeats do
          RT.reset rt;
          let s =
            DP.run pool ~domains (fun pid ->
                let wire = pid mod w in
                if mixed then
                  for i = 0 to ops - 1 do
                    if i land 1 = 0 then ignore (RT.traverse rt ~wire)
                    else ignore (RT.traverse_decrement rt ~wire)
                  done
                else
                  for _ = 1 to ops do
                    ignore (RT.traverse rt ~wire)
                  done)
          in
          let rate = if s <= 0. then 0. else float_of_int (domains * ops) /. s in
          if rate > !best then begin
            best := rate;
            secs := s
          end
        done;
        V.enforce V.Strict (V.quiescent_runtime rt);
        record name (if mixed then "50/50" else "inc") !best !secs None
      in
      (* Service driver: each domain owns [k] sessions pinned to its
         wire and pipelines one submit per session before awaiting, so
         every round is served as one combined batch. *)
      let serve ?(pipeline = false) name ~mixed ~elim =
        let best = ref 0. and secs = ref 0. and best_stats = ref None in
        for _ = 1 to repeats do
          let svc = Svc.create ~max_batch:k ~elim ~pipeline c16 in
          let sessions =
            Array.init domains (fun pid ->
                Array.init k (fun _ -> Svc.session ~wire:(pid mod w) svc))
          in
          let submit s op =
            let rec go () =
              match Svc.submit s op with
              | Ok () -> ()
              | Error Svc.Overloaded ->
                  Domain.cpu_relax ();
                  go ()
              | Error Svc.Closed -> failwith "service closed mid-bench"
            in
            go ()
          in
          let s =
            DP.run pool ~domains (fun pid ->
                let ss = sessions.(pid) in
                for _ = 1 to ops / k do
                  if mixed then begin
                    for j = 0 to (k / 2) - 1 do
                      submit ss.(j) Svc.Inc
                    done;
                    for j = k / 2 to k - 1 do
                      submit ss.(j) Svc.Dec
                    done
                  end
                  else
                    for j = 0 to k - 1 do
                      submit ss.(j) Svc.Inc
                    done;
                  for j = 0 to k - 1 do
                    ignore (Svc.await ss.(j))
                  done
                done)
          in
          ignore (Svc.drain ~policy:V.Strict svc);
          let rate = if s <= 0. then 0. else float_of_int (domains * ops) /. s in
          if rate > !best then begin
            best := rate;
            secs := s;
            best_stats := Some (Svc.stats svc)
          end
        done;
        (match !best_stats with
        | Some st when mixed && elim -> mixed_elims := st.Svc.total_eliminated_pairs
        | _ -> ());
        record name (if mixed then "50/50" else "inc") !best !secs !best_stats
      in
      line "%-22s %-6s %d domains x %d ops on C(%d,%d), pipeline width %d" "counter" "mix"
        domains ops w w k;
      naive "naive-traverse" ~mixed:false;
      naive "naive-traverse" ~mixed:true;
      serve "service-batched" ~mixed:false ~elim:true;
      serve "service-batched" ~mixed:true ~elim:true;
      serve "service-noelim" ~mixed:true ~elim:false;
      serve "service-pipelined" ~mixed:false ~elim:true ~pipeline:true;
      serve "service-pipelined" ~mixed:true ~elim:true ~pipeline:true;
      (* Closed-loop workload coverage on the same pool: blocking
         increments/decrements under Zipf skew, metrics-instrumented,
         strict-drained; its combined service+network snapshot is
         embedded in the JSON. *)
      let svc = Svc.create ~metrics:true ~max_batch:k c16 in
      let spec =
        {
          W.default with
          W.domains;
          ops_per_domain = ops / 4;
          sessions_per_domain = 4;
          dec_ratio = 0.5;
          skew = W.Zipf 1.1;
        }
      in
      let wst = W.run ~pool svc spec in
      ignore (Svc.drain ~policy:V.Strict svc);
      record "service-workload" "50/50"
        (float_of_int (domains * ops / 4)
        /. Float.max wst.W.seconds 1e-9)
        wst.W.seconds
        (Some (Svc.stats svc));
      report_json := Svc.report_json svc);
  (* Acceptance gates: the mixed service run must actually eliminate,
     and batched-service throughput must beat the matched naive
     baseline. *)
  if !mixed_elims <= 0 then begin
    prerr_endline "service bench: expected > 0 eliminated pairs in the mixed run";
    exit 1
  end;
  let speedup_inc =
    find_rate "service-batched" "inc"
    /. Float.max (find_rate "naive-traverse" "inc") 1e-9
  in
  let speedup_mixed =
    find_rate "service-batched" "50/50"
    /. Float.max (find_rate "naive-traverse" "50/50") 1e-9
  in
  line "speedup vs naive: mixed 50/50 %.2fx (elimination), pure-inc rows recorded" speedup_mixed;
  if speedup_mixed < 1. then
    if smoke then
      (* Smoke regions are ~1 ms on this host — too short to gate on. *)
      line "note: smoke timing too short to gate on; full run enforces the comparison"
    else begin
      prerr_endline "service bench: mixed service run did not beat the naive baseline";
      exit 1
    end;
  let entries =
    List.rev_map
      (fun (name, mix, total_ops, seconds, rate, mean_batch, elim, elim_rate, rejected) ->
        Printf.sprintf
          "      { \"counter\": %S, \"mix\": %S, \"domains\": %d, \"total_ops\": %d, \
           \"seconds\": %.6f, \"ops_per_sec\": %.1f, \"mean_batch\": %.3f, \
           \"eliminated_pairs\": %d, \"elimination_rate\": %.4f, \"rejected\": %d }"
          name mix domains total_ops seconds rate mean_batch elim elim_rate rejected)
      !rows
  in
  let projected_field =
    if projected then
      Printf.sprintf ",\n    \"projected\": %s" (projected_json ~smoke ~w c16)
    else ""
  in
  let section =
    Printf.sprintf
      "{\n    \"net\": \"C(%d,%d)\",\n    \"domains\": %d,\n    \"pipeline\": %d,\n    \
       \"results\": [\n%s\n    ],\n    \"speedup_mixed_vs_naive\": %.3f,\n    \
       \"speedup_inc_vs_naive\": %.3f,\n    \"report\": %s%s\n  }"
      w w domains k
      (String.concat ",\n" entries)
      speedup_mixed speedup_inc (String.trim !report_json) projected_field
  in
  let path = "BENCH_runtime.json" in
  let fresh () =
    let oc = open_out path in
    Printf.fprintf oc "{\n  \"suite\": \"service\",\n  \"service\": %s\n}\n" section;
    close_out oc
  in
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    let content = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match String.rindex_opt content '}' with
    | Some i ->
        let oc = open_out path in
        output_string oc (String.sub content 0 i);
        Printf.fprintf oc ",\n  \"service\": %s\n}\n" section;
        close_out oc
    | None -> fresh ()
  end
  else fresh ();
  line "appended service section to BENCH_runtime.json (%d rows)" (List.length !rows)

(* ------------------------------------------------------------------ *)
(* serve: the countnetd wire protocol on loopback — an in-process
   Cn_proto.Server over C(16,16) driven by the TCP load rig.  Each row
   is one client population (uniform/Zipf skew, closed/bursty
   arrivals, a mixed inc/dec run) and carries SLO-style round-trip
   latency percentiles (p50/p95/p99, ns).  A churn phase and a
   mid-load Strict stop exercise the lifecycle edges; the section is
   appended to BENCH_runtime.json.                                      *)

let serve ?(smoke = false) () =
  header "serve  countnetd loopback: wire-protocol SLO latencies (appends to BENCH_runtime.json)";
  line "(host note: loopback TCP on a single core; rtt includes both protocol stacks)";
  let module V = Cn_runtime.Validator in
  let module M = Cn_runtime.Metrics in
  let module Svc = Cn_service.Service in
  let module W = Cn_service.Workload in
  let module Server = Cn_proto.Server in
  let module Client = Cn_proto.Client in
  let module Load = Cn_proto.Load in
  let w = 16 in
  let net = C.network ~w ~t:w in
  let ops = if smoke then 200 else 4_000 in
  let svc = Svc.create ~metrics:true ~validate:V.Strict net in
  let server = Server.start svc in
  let port = Server.port server in
  let rows = ref [] in
  let scenario name spec =
    let st = Load.run ~port spec in
    if st.Load.completed = 0 then begin
      Printf.eprintf "serve bench: scenario %s completed nothing\n" name;
      exit 1
    end;
    let p50, p95, p99, maxl =
      match st.Load.latency with
      | Some l -> (l.M.p50, l.M.p95, l.M.p99, l.M.max)
      | None -> (0., 0., 0., 0.)
    in
    rows := (name, spec, st, (p50, p95, p99, maxl)) :: !rows;
    line "%-14s %2d clients x %d conns   %8.0f ops/s   p50 %7.1f us  p95 %7.1f us  p99 %7.1f us"
      name spec.Load.clients spec.Load.conns_per_client st.Load.ops_per_sec (p50 /. 1e3)
      (p95 /. 1e3) (p99 /. 1e3)
  in
  let base =
    { Load.default with Load.clients = 2; conns_per_client = 2; ops_per_client = ops }
  in
  scenario "closed-uniform" base;
  scenario "closed-zipf" { base with Load.conns_per_client = 4; skew = W.Zipf 1.2 };
  scenario "mixed-dec" { base with Load.dec_ratio = 0.4; seed = 7 };
  scenario "bursty"
    {
      base with
      Load.ops_per_client = ops / 2;
      arrival = W.Bursty { burst = 64; pause = 0.0005 };
    };
  (* Churn: short-lived connections stack sessions onto the lanes. *)
  let churn = if smoke then 10 else 100 in
  for _ = 1 to churn do
    let c = Client.connect ~port () in
    ignore (Client.increment c);
    Client.close c
  done;
  let accepted_after_churn = Server.accepted server in
  line "churn: %d short-lived connections (server accepted %d total)" churn accepted_after_churn;
  (* Mid-load stop: ≥2 clients in flight when the drain starts.  The
     Strict policy makes a step-property or conservation violation at
     the quiescence point fatal to the bench. *)
  let rig_stats = ref None in
  let rig =
    Thread.create
      (fun () ->
        rig_stats :=
          Some
            (Load.run ~port
               {
                 base with
                 Load.ops_per_client = 1_000_000;
                 arrival = W.Closed 0.0002;
                 seed = 11;
               }))
      ()
  in
  Thread.delay (if smoke then 0.05 else 0.2);
  let report = Server.stop ~policy:V.Strict server in
  Thread.join rig;
  let drain_ok = V.passed report in
  let rig_disc, rig_closed, rig_done =
    match !rig_stats with
    | Some st -> (st.Load.disconnects, st.Load.closed, st.Load.completed)
    | None -> (0, 0, 0)
  in
  line "mid-load stop: drain %s (%s); rig saw %d completed, %d disconnects, %d closed"
    (if drain_ok then "ok" else "FAILED")
    (V.summary report) rig_done rig_disc rig_closed;
  if not drain_ok then begin
    prerr_endline "serve bench: Strict drain failed at the mid-load stop";
    exit 1
  end;
  if rig_done = 0 then begin
    prerr_endline "serve bench: the mid-load rig made no progress before the stop";
    exit 1
  end;
  let entries =
    List.rev_map
      (fun (name, (spec : Load.spec), (st : Load.stats), (p50, p95, p99, maxl)) ->
        Printf.sprintf
          "      { \"scenario\": %S, \"clients\": %d, \"conns_per_client\": %d, \
           \"ops_per_client\": %d, \"completed\": %d, \"rejected\": %d, \"closed\": %d, \
           \"disconnects\": %d, \"seconds\": %.6f, \"ops_per_sec\": %.1f, \
           \"busy_seconds\": %.6f, \"busy_ops_per_sec\": %.1f, \"rtt_ns\": { \"p50\": %.1f, \
           \"p95\": %.1f, \"p99\": %.1f, \"max\": %.1f } }"
          name spec.Load.clients spec.Load.conns_per_client spec.Load.ops_per_client
          st.Load.completed st.Load.rejected st.Load.closed st.Load.disconnects
          st.Load.seconds st.Load.ops_per_sec st.Load.busy_seconds st.Load.busy_ops_per_sec
          p50 p95 p99 maxl)
      !rows
  in
  let section =
    Printf.sprintf
      "{\n    \"net\": \"C(%d,%d)\",\n    \"results\": [\n%s\n    ],\n    \"churn\": %d,\n    \
       \"accepted\": %d,\n    \"drain\": { \"ok\": %b, \"summary\": %S, \
       \"rig_completed\": %d, \"rig_disconnects\": %d, \"rig_closed\": %d }\n  }"
      w w
      (String.concat ",\n" entries)
      churn accepted_after_churn drain_ok (V.summary report) rig_done rig_disc rig_closed
  in
  let path = "BENCH_runtime.json" in
  let fresh () =
    let oc = open_out path in
    Printf.fprintf oc "{\n  \"suite\": \"serve\",\n  \"serve\": %s\n}\n" section;
    close_out oc
  in
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    let content = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match String.rindex_opt content '}' with
    | Some i ->
        let oc = open_out path in
        output_string oc (String.sub content 0 i);
        Printf.fprintf oc ",\n  \"serve\": %s\n}\n" section;
        close_out oc
    | None -> fresh ()
  end
  else fresh ();
  line "appended serve section to BENCH_runtime.json (%d SLO rows)" (List.length !rows)

(* ------------------------------------------------------------------ *)
(* fabric: the elastic sharded counter fabric — shard-scaling sweep at
   1/2/4 shards of C(8,8) under 8 domains, each shard count measured
   both with fixed dimensions and with the auto-tuner's calibrated
   (w,t) pick, plus a hot-resize-under-load row: shard 0 of the
   4-shard fabric swapped C(8,8) -> C(16,16) mid-run with token
   conservation asserted at the Strict drain.  The projected rows come
   from the Theorem 6.7 contention model and show the analytic shard
   scaling even when this host timeshares domains on one core.
   Appends a "fabric" section to BENCH_runtime.json.                    *)

let fabric ?(smoke = false) () =
  header "fabric  sharded counter fabric: shard scaling + hot resize (appends to BENCH_runtime.json)";
  line "(host note: single-core container -> domains timeshare; relative shapes only)";
  let module DP = Cn_runtime.Domain_pool in
  let module V = Cn_runtime.Validator in
  let module Fab = Cn_fabric.Fabric in
  let module P = Cn_analysis.Projection in
  let w = 8 in
  let net = C.network ~w ~t:w in
  let domains = 8 in
  let sessions_per = 4 in
  let ops = if smoke then 400 else 8_000 in
  let repeats = if smoke then 1 else 3 in
  let shard_counts = [ 1; 2; 4 ] in
  let cal =
    let crossing_ns =
      Cn_runtime.Harness.calibrate_crossing_ns
        ~ops_per_domain:(if smoke then 2_000 else 50_000)
        ~make:(fun () -> Cn_runtime.Shared_counter.of_topology net)
        ~depth:(T.depth net) ()
    in
    P.calibrate ~crossing_ns ()
  in
  line "calibration: %.1f ns/crossing on C(%d,%d)" cal.P.crossing_ns w w;
  let rows = ref [] in
  let record name ~shards ~dims ~completed ~rejected ~seconds ~resized =
    let rate = if seconds <= 0. then 0. else float_of_int completed /. seconds in
    rows := (name, shards, dims, completed, rejected, seconds, rate, resized) :: !rows;
    line "%-18s %d shard%s %-22s %11.0f ops/s   %7d completed   %d rejected%s" name shards
      (if shards = 1 then " " else "s")
      dims rate completed rejected
      (if resized then "   (hot-resized)" else "")
  in
  let find_rate name shards =
    let rec go = function
      | [] -> 0.
      | (n, s, _, _, _, _, r, _) :: _ when n = name && s = shards -> r
      | _ :: tl -> go tl
    in
    go !rows
  in
  (* One measured configuration: [domains] domains each driving
     [sessions_per] keyed sessions round-robin, pure increments with
     Overloaded retry.  [tune] retunes every shard to the model's pick
     before the timed region; [resize_mid] makes domain 0 hot-swap
     shard 0 to C(16,16) halfway through its op budget while the other
     domains keep submitting.  Conservation (global read = completed
     increments) and a Strict shutdown gate every run. *)
  let run_config pool name ~shards ~tune ~resize_mid =
    let best = ref 0.
    and secs = ref 0.
    and best_completed = ref 0
    and best_rejected = ref 0
    and dims = ref (Printf.sprintf "C(%d,%d)" w w)
    and resized = ref false in
    for _ = 1 to repeats do
      let fab = Fab.create ~metrics:tune ~validate:V.Strict ~elim:false ~shards net in
      if tune then
        for sid = 0 to shards - 1 do
          match Fab.retune fab cal ~shard:sid ~domains with
          | Ok _ | Error _ -> ()
        done;
      let completed = Array.make domains 0 in
      let rejected = Array.make domains 0 in
      let resize_failed = ref false in
      let s =
        DP.run pool ~domains (fun pid ->
            let sessions =
              Array.init sessions_per (fun k ->
                  Fab.session ~key:((pid * sessions_per) + k) fab)
            in
            for i = 0 to ops - 1 do
              if resize_mid && pid = 0 && i = ops / 2 then begin
                match Fab.resize fab ~shard:0 (C.network ~w:16 ~t:16) with
                | Ok () -> ()
                | Error _ -> resize_failed := true
              end;
              let rec go () =
                match Fab.increment sessions.(i mod sessions_per) with
                | Ok _ -> completed.(pid) <- completed.(pid) + 1
                | Error Fab.Overloaded ->
                    Domain.cpu_relax ();
                    go ()
                | Error Fab.Closed -> rejected.(pid) <- rejected.(pid) + 1
              in
              go ()
            done)
      in
      if !resize_failed then begin
        prerr_endline "fabric bench: hot resize under load failed";
        exit 1
      end;
      let done_ops = Array.fold_left ( + ) 0 completed in
      let value = Fab.read fab in
      if value <> done_ops then begin
        Printf.eprintf "fabric bench: %s lost tokens (read %d, completed %d)\n" name value
          done_ops;
        exit 1
      end;
      if resize_mid && (Fab.shard_gen fab 0 <> 1 || (Fab.shard_info fab 0).Fab.width <> 16)
      then begin
        prerr_endline "fabric bench: shard 0 did not land on C(16,16) gen 1";
        exit 1
      end;
      let report = Fab.shutdown ~policy:V.Strict fab in
      if not (V.passed report) then begin
        Printf.eprintf "fabric bench: Strict shutdown failed for %s: %s\n" name
          (V.summary report);
        exit 1
      end;
      let rate = if s <= 0. then 0. else float_of_int done_ops /. s in
      if rate >= !best then begin
        best := rate;
        secs := s;
        best_completed := done_ops;
        best_rejected := Array.fold_left ( + ) 0 rejected;
        resized := resize_mid;
        dims :=
          String.concat "+"
            (List.map
               (fun (i : Fab.shard_info) -> Printf.sprintf "C(%d,%d)" i.Fab.width i.Fab.out_width)
               (Fab.shard_infos fab))
      end
    done;
    record name ~shards ~dims:!dims ~completed:!best_completed ~rejected:!best_rejected
      ~seconds:!secs ~resized:!resized
  in
  line "%d domains x %d ops, %d sessions/domain, %d repeat%s" domains ops sessions_per repeats
    (if repeats = 1 then "" else "s");
  DP.with_pool domains (fun pool ->
      List.iter
        (fun shards ->
          run_config pool "fixed" ~shards ~tune:false ~resize_mid:false;
          run_config pool "autotuned" ~shards ~tune:true ~resize_mid:false)
        shard_counts;
      run_config pool "resize-under-load" ~shards:4 ~tune:false ~resize_mid:true);
  (* Analytic shard scaling from the calibrated Theorem 6.7 model:
     shards split the domain population, so an N-shard fabric is N
     independent networks at domains/N each. *)
  let projected =
    List.map
      (fun shards ->
        let per_shard = max 1 (domains / shards) in
        let p = P.project_network cal net ~domains:per_shard in
        (shards, float_of_int shards *. p.P.ops_per_sec))
      shard_counts
  in
  List.iter
    (fun (shards, rate) -> line "projected %d shard%s %11.0f ops/s" shards
        (if shards = 1 then " " else "s") rate)
    projected;
  let ratio num den = if den <= 0. then 0. else num /. den in
  let measured_4v1 = ratio (find_rate "fixed" 4) (find_rate "fixed" 1) in
  let projected_4v1 =
    ratio (List.assoc 4 projected) (List.assoc 1 projected)
  in
  line "shard scaling 4 vs 1: measured %.2fx, projected %.2fx" measured_4v1 projected_4v1;
  if measured_4v1 < 1. then
    if smoke then
      (* Smoke regions are ~1 ms on this host — too short to gate on. *)
      line "note: smoke timing too short to gate on; full run enforces the comparison"
    else begin
      prerr_endline "fabric bench: 4-shard fabric did not beat the single shard";
      exit 1
    end;
  let entries =
    List.rev_map
      (fun (name, shards, dims, completed, rejected, seconds, rate, resized) ->
        Printf.sprintf
          "      { \"config\": %S, \"shards\": %d, \"dims\": %S, \"domains\": %d, \
           \"completed\": %d, \"rejected\": %d, \"seconds\": %.6f, \"ops_per_sec\": %.1f, \
           \"hot_resized\": %b }"
          name shards dims domains completed rejected seconds rate resized)
      !rows
  in
  let projected_entries =
    List.map
      (fun (shards, rate) ->
        Printf.sprintf "      { \"shards\": %d, \"ops_per_sec\": %.1f }" shards rate)
      projected
  in
  let section =
    Printf.sprintf
      "{\n    \"net\": \"C(%d,%d)\",\n    \"domains\": %d,\n    \"sessions_per_domain\": %d,\n    \
       \"crossing_ns\": %.2f,\n    \"results\": [\n%s\n    ],\n    \"projected\": [\n%s\n    \
       ],\n    \"scaling_4v1_measured\": %.3f,\n    \"scaling_4v1_projected\": %.3f\n  }"
      w w domains sessions_per cal.P.crossing_ns
      (String.concat ",\n" entries)
      (String.concat ",\n" projected_entries)
      measured_4v1 projected_4v1
  in
  let path = "BENCH_runtime.json" in
  let fresh () =
    let oc = open_out path in
    Printf.fprintf oc "{\n  \"suite\": \"fabric\",\n  \"fabric\": %s\n}\n" section;
    close_out oc
  in
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    let content = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match String.rindex_opt content '}' with
    | Some i ->
        let oc = open_out path in
        output_string oc (String.sub content 0 i);
        Printf.fprintf oc ",\n  \"fabric\": %s\n}\n" section;
        close_out oc
    | None -> fresh ()
  end
  else fresh ();
  line "appended fabric section to BENCH_runtime.json (%d rows)" (List.length !rows)

(* ------------------------------------------------------------------ *)
(* Approximate counting tier: the accuracy / throughput / memory
   frontier of the Cn_sketch backends against the exact network-backed
   counter.  Three row families:

   - hll accuracy: relative error vs the 1.04/sqrt(m) theory across
     precisions, with resident sketch bytes (gated: every row within
     its 95% bound, 2 sigma — the streams are deterministic, so these
     are fixed draws, not flaky samples);
   - throughput: Harness.throughput over the exact C(8,8) counter and
     the hll/sparse Shared_counter.Custom adapters;
   - memory: resident bytes of exact per-key counting (a Hashtbl of
     100k keys) vs the sparse-graph bank, gated on the >= 10x win,
     plus the sparse decode regimes (exact below the peeling
     threshold, bounded-error above).

   Appends a "sketch" section to BENCH_runtime.json.                    *)

let sketch ?(smoke = false) () =
  header "sketch  approximate tier: accuracy/throughput/memory frontier (appends to BENCH_runtime.json)";
  line "(host note: single-core container -> domains timeshare; relative shapes only)";
  let module Hll = Cn_sketch.Hll in
  let module Sparse = Cn_sketch.Sparse in
  let module Backend = Cn_sketch.Backend in
  let module H = Cn_runtime.Harness in
  let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("sketch bench: " ^ m); exit 1) fmt in
  (* --- HLL accuracy rows --------------------------------------------- *)
  let n_distinct = if smoke then 100_000 else 1_000_000 in
  line "hll accuracy at %d distinct keys:" n_distinct;
  let hll_rows =
    List.map
      (fun precision ->
        let t = Hll.create ~precision () in
        for i = 0 to n_distinct - 1 do
          Hll.add t i
        done;
        let est = Hll.cardinality t in
        let err = Float.abs (est -. float_of_int n_distinct) /. float_of_int n_distinct in
        let sigma = Hll.std_error t in
        let bytes = Hll.memory_bytes t in
        line "  p=%2d (m=%5d): estimate %9.0f  rel error %.4f  (sigma %.4f)  %7d bytes"
          precision (Hll.registers t) est err sigma bytes;
        if err > 2. *. sigma then
          fail "hll p=%d error %.4f exceeds the 95%% bound %.4f" precision err (2. *. sigma);
        (precision, Hll.registers t, est, err, sigma, bytes))
      [ 10; 12; 14 ]
  in
  (* --- throughput rows ----------------------------------------------- *)
  let domains = if smoke then 2 else 4 in
  let ops = if smoke then 20_000 else 100_000 in
  let net = C.network ~w:8 ~t:8 in
  let throughput_of name make =
    let r = H.throughput ~make ~domains ~ops_per_domain:ops () in
    line "  %-8s %11.0f ops/s  (%d domains, %d total ops)" name r.H.ops_per_sec domains
      r.H.total_ops;
    (name, r.H.ops_per_sec)
  in
  line "throughput (%d domains x %d ops):" domains ops;
  let tp_exact = throughput_of "exact" (fun () -> Cn_runtime.Shared_counter.of_topology net) in
  let tp_hll = throughput_of "hll" (fun () -> (Backend.hll ~precision:14 ()).Backend.counter) in
  let tp_sparse =
    throughput_of "sparse" (fun () ->
        (Backend.sparse ~counters:4096 ~degree:3 ()).Backend.counter)
  in
  let tp_rows = [ tp_exact; tp_hll; tp_sparse ] in
  (* --- memory rows ---------------------------------------------------- *)
  let n_keys = 100_000 in
  let exact_tbl = Hashtbl.create 1024 in
  for k = 0 to n_keys - 1 do
    Hashtbl.replace exact_tbl k (1 + (k mod 7))
  done;
  let exact_bytes = Obj.reachable_words (Obj.repr exact_tbl) * (Sys.word_size / 8) in
  let sp = Sparse.create ~degree:3 ~counters:8192 () in
  for k = 0 to n_keys - 1 do
    Sparse.add sp k (1 + (k mod 7))
  done;
  let sparse_bytes = Sparse.memory_bytes sp in
  let ratio = float_of_int exact_bytes /. float_of_int sparse_bytes in
  line "memory at %d keys: exact hashtbl %d bytes, sparse bank %d bytes (%.1fx smaller)"
    n_keys exact_bytes sparse_bytes ratio;
  if ratio < 10. then
    fail "sparse bank is only %.1fx smaller than exact per-key storage (gate: 10x)" ratio;
  (* Sparse decode regimes: exact recovery below the peeling threshold,
     bounded overestimates above it. *)
  let below = Sparse.create ~degree:3 ~counters:2048 () in
  for k = 0 to 999 do
    Sparse.add below k (1 + (k mod 100))
  done;
  let decoded = Sparse.decode below (List.init 1000 (fun k -> k)) in
  let all_exact =
    List.for_all
      (fun (k, { Sparse.value; exact }) -> exact && value = 1 + (k mod 100))
      decoded
  in
  if not all_exact then fail "sparse decode failed below the peeling threshold";
  line "sparse decode: 1000 keys / 2048 counters -> all exact (peeling threshold holds)";
  let over_err =
    (* Mean relative error of min-estimates in the overloaded regime the
       memory row runs at (100k keys / 8192 counters). *)
    let sample = 1000 in
    let total = ref 0. in
    for k = 0 to sample - 1 do
      let truth = 1 + (k mod 7) in
      let e = Sparse.estimate sp k in
      total := !total +. (float_of_int (e - truth) /. float_of_int truth)
    done;
    !total /. float_of_int sample
  in
  line "sparse overload (%d keys / %d counters): mean estimate overshoot %.1fx" n_keys 8192
    over_err;
  (* --- JSON ----------------------------------------------------------- *)
  let hll_entries =
    List.map
      (fun (p, m, est, err, sigma, bytes) ->
        Printf.sprintf
          "      { \"precision\": %d, \"registers\": %d, \"distinct\": %d, \"estimate\": \
           %.1f, \"rel_error\": %.6f, \"std_error\": %.6f, \"bytes\": %d }"
          p m n_distinct est err sigma bytes)
      hll_rows
  in
  let tp_entries =
    List.map
      (fun (name, rate) ->
        Printf.sprintf "      { \"backend\": %S, \"domains\": %d, \"ops_per_sec\": %.1f }"
          name domains rate)
      tp_rows
  in
  let section =
    Printf.sprintf
      "{\n    \"hll_accuracy\": [\n%s\n    ],\n    \"throughput\": [\n%s\n    ],\n    \
       \"memory\": { \"keys\": %d, \"exact_bytes\": %d, \"sparse_bytes\": %d, \"ratio\": \
       %.2f, \"sparse_mean_overshoot\": %.3f }\n  }"
      (String.concat ",\n" hll_entries)
      (String.concat ",\n" tp_entries)
      n_keys exact_bytes sparse_bytes ratio over_err
  in
  let path = "BENCH_runtime.json" in
  let fresh () =
    let oc = open_out path in
    Printf.fprintf oc "{\n  \"suite\": \"sketch\",\n  \"sketch\": %s\n}\n" section;
    close_out oc
  in
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    let content = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match String.rindex_opt content '}' with
    | Some i ->
        let oc = open_out path in
        output_string oc (String.sub content 0 i);
        Printf.fprintf oc ",\n  \"sketch\": %s\n}\n" section;
        close_out oc
    | None -> fresh ()
  end
  else fresh ();
  line "appended sketch section to BENCH_runtime.json (%d hll rows, %d throughput rows)"
    (List.length hll_rows) (List.length tp_rows)

(* ------------------------------------------------------------------ *)
(* hybrid: merger-strategy comparison at C(16,16).  Depth/size of each
   substituted topology plus shared-counter throughput, with the lint's
   two-token step battery replayed inline so every row carries its own
   correctness verdict (periodic3 passes it at this width; the pk
   strategies are refuted — the row records that honestly rather than
   benchmarking a broken network as if it counted).                     *)

let hybrid ?(smoke = false) () =
  header "hybrid  merger strategies at C(16,16): depth/size/throughput (appends to BENCH_runtime.json)";
  line "(host note: single-core container -> domains timeshare; relative shapes only)";
  let module M = Cn_core.Merger in
  let module H = Cn_runtime.Harness in
  let w = 16 in
  let domains = if smoke then 2 else 4 in
  let ops = if smoke then 10_000 else 100_000 in
  let battery = Cn_lint.Cert.escalation_loads w in
  let strategies =
    [
      ("difference", M.Difference, M.All_levels);
      ("periodic3/top", M.Periodic3, M.Top_only);
      ("periodic3/all", M.Periodic3, M.All_levels);
      ("pk2/top", M.Periodic_k 2, M.Top_only);
      ("pk6/top", M.Periodic_k 6, M.Top_only);
    ]
  in
  line "%-15s %6s %6s %8s %12s" "merger" "depth" "size" "battery" "ops/s";
  let rows =
    List.map
      (fun (name, merger, scope) ->
        let net = C.network_with ~merger ~scope ~w ~t:w in
        let depth = T.depth net in
        let size = T.size net in
        let battery_ok =
          List.for_all (fun load -> S.is_step (E.quiescent net load)) battery
        in
        let r =
          H.throughput
            ~make:(fun () -> Cn_runtime.Shared_counter.of_topology net)
            ~domains ~ops_per_domain:ops ()
        in
        line "%-15s %6d %6d %8s %12.0f" name depth size
          (if battery_ok then "ok" else "REFUTED")
          r.H.ops_per_sec;
        (name, depth, size, battery_ok, r.H.ops_per_sec))
      strategies
  in
  (* The classic difference merger must pass its own battery; a failure
     here is a harness bug, not a finding. *)
  (match rows with
  | ("difference", _, _, ok, _) :: _ when not ok ->
      prerr_endline "hybrid bench: difference merger failed the step battery";
      exit 1
  | _ -> ());
  let entries =
    List.map
      (fun (name, depth, size, battery_ok, rate) ->
        Printf.sprintf
          "      { \"merger\": %S, \"depth\": %d, \"size\": %d, \"step_battery_ok\": %b, \
           \"ops_per_sec\": %.1f }"
          name depth size battery_ok rate)
      rows
  in
  let section =
    Printf.sprintf
      "{\n    \"network\": \"C(%d,%d)\",\n    \"domains\": %d,\n    \"ops_per_domain\": %d,\n    \
       \"battery_loads\": %d,\n    \"rows\": [\n%s\n    ]\n  }"
      w w domains ops (List.length battery)
      (String.concat ",\n" entries)
  in
  let path = "BENCH_runtime.json" in
  let fresh () =
    let oc = open_out path in
    Printf.fprintf oc "{\n  \"suite\": \"hybrid\",\n  \"hybrid\": %s\n}\n" section;
    close_out oc
  in
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    let content = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match String.rindex_opt content '}' with
    | Some i ->
        let oc = open_out path in
        output_string oc (String.sub content 0 i);
        Printf.fprintf oc ",\n  \"hybrid\": %s\n}\n" section;
        close_out oc
    | None -> fresh ()
  end
  else fresh ();
  line "appended hybrid section to BENCH_runtime.json (%d merger rows, %d battery loads)"
    (List.length rows) (List.length battery)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per experiment family.      *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  let traversal name net =
    let rt = Cn_runtime.Network_runtime.compile net in
    let i = ref 0 in
    Test.make ~name
      (Staged.stage (fun () ->
           incr i;
           Cn_runtime.Network_runtime.traverse rt
             ~wire:(!i mod Cn_network.Topology.input_width net)))
  in
  let tests =
    [
      (* E1: building the flagship network. *)
      Test.make ~name:"e1-build-C(32,32)" (Staged.stage (fun () -> C.network ~w:32 ~t:32));
      (* E2: building a merging network. *)
      Test.make ~name:"e2-build-M(64,16)"
        (Staged.stage (fun () -> Cn_core.Merging.network ~t:64 ~delta:16));
      (* E3: one quiescent evaluation of a butterfly. *)
      (let d = Cn_core.Butterfly.forward 64 in
       let x = Array.init 64 (fun i -> i mod 7) in
       Test.make ~name:"e3-eval-D(64)" (Staged.stage (fun () -> E.quiescent d x)));
      (* E4: one simulated execution. *)
      (let net = C.network ~w:8 ~t:8 in
       Test.make ~name:"e4-sim-C(8,8)-n16"
         (Staged.stage (fun () ->
              Cn_sim.Contention.measure net ~n:16 ~m:160 (Cn_sim.Scheduler.Random 1))));
      (* E5: single traversals per network (runtime hot path). *)
      traversal "e5-traverse-bitonic8" (Cn_baselines.Bitonic.network 8);
      traversal "e5-traverse-C(8,8)" (C.network ~w:8 ~t:8);
      traversal "e5-traverse-C(8,24)" (C.wide 8);
      traversal "e5-traverse-difftree8" (Cn_baselines.Diffracting.network 8);
      (* E6: size accounting. *)
      Test.make ~name:"e6-size-C(64,384)" (Staged.stage (fun () -> C.size_formula ~w:64 ~t:384));
      (* E7: one sort. *)
      (let s = Cn_core.Sorting.of_topology (C.network ~w:32 ~t:32) in
       let input = Array.init 32 (fun i -> (i * 37) mod 101) in
       Test.make ~name:"e7-sort-C(32,32)"
         (Staged.stage (fun () -> Cn_core.Sorting.apply s input)));
      (* E8: one sequential token run. *)
      (let net = C.network ~w:4 ~t:8 in
       Test.make ~name:"e8-token-run-C(4,8)"
         (Staged.stage (fun () -> E.token_run net [ 0; 1; 2; 3 ])));
      (* E9: building the ablated network. *)
      Test.make ~name:"e9-build-ablated-C(16,64)"
        (Staged.stage (fun () -> Cn_core.Ablation.network ~w:16 ~t:64));
      (* E10: randomizing states plus one evaluation. *)
      (let base = Cn_core.Butterfly.forward 32 in
       let x = Array.init 32 (fun i -> i mod 5) in
       Test.make ~name:"e10-randomize-D(32)"
         (Staged.stage (fun () -> E.quiescent (T.randomize_states ~seed:1 base) x)));
      (* E11: one timed closed loop. *)
      (let net = C.network ~w:8 ~t:8 in
       Test.make ~name:"e11-timed-closed-loop"
         (Staged.stage (fun () -> Cn_sim.Timed.closed_loop net ~n:16 ~rounds:10)));
      (* E12: one linearizability check over a recorded history. *)
      (let net = C.network ~w:4 ~t:4 in
       let s = Cn_sim.Stall_model.create net ~concurrency:8 ~tokens:80 in
       Cn_sim.Scheduler.run s (Cn_sim.Scheduler.Park 1);
       let hist = Cn_sim.Stall_model.history s in
       Test.make ~name:"e12-linearizability-check"
         (Staged.stage (fun () -> Cn_sim.Linearizability.violation hist)));
      (* E13: one signed evaluation. *)
      (let net = C.network ~w:8 ~t:16 in
       let x = Array.init 8 (fun i -> (i mod 3) - 1) in
       Test.make ~name:"e13-signed-eval" (Staged.stage (fun () -> E.quiescent_net net x)));
    ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"micro" ~fmt:"%s %s" tests) in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  header "micro  Bechamel: ns/op (monotonic clock, OLS)";
  let rows = Hashtbl.fold (fun name result acc -> (name, result) :: acc) results [] in
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> line "%-28s %12.1f ns/op" name est
      | _ -> line "%-28s (no estimate)" name)
    (List.sort compare rows)

let all () =
  e1 ();
  e2 ();
  e3 ();
  e4 ();
  e5 ();
  e6 ();
  e7 ();
  e8 ();
  e9 ();
  e10 ();
  e11 ();
  e12 ();
  e13 ();
  e14 ()

let () =
  match Sys.argv with
  | [| _ |] -> all ()
  | [| _; "e1" |] -> e1 ()
  | [| _; "e2" |] -> e2 ()
  | [| _; "e3" |] -> e3 ()
  | [| _; "e4" |] -> e4 ()
  | [| _; "e5" |] -> e5 ()
  | [| _; "e6" |] -> e6 ()
  | [| _; "e7" |] -> e7 ()
  | [| _; "e8" |] -> e8 ()
  | [| _; "e9" |] -> e9 ()
  | [| _; "e10" |] -> e10 ()
  | [| _; "e11" |] -> e11 ()
  | [| _; "e12" |] -> e12 ()
  | [| _; "e13" |] -> e13 ()
  | [| _; "e14" |] -> e14 ()
  | [| _; "micro" |] -> micro ()
  | [| _; "runtime" |] -> runtime ()
  | [| _; "runtime"; "--smoke" |] -> runtime ~smoke:true ()
  | [| _; "runtime"; "--projected" |] -> runtime ~projected:true ()
  | [| _; "runtime"; "--smoke"; "--projected" |] | [| _; "runtime"; "--projected"; "--smoke" |] ->
      runtime ~smoke:true ~projected:true ()
  | [| _; "service" |] -> service ()
  | [| _; "service"; "--smoke" |] -> service ~smoke:true ()
  | [| _; "service"; "--projected" |] -> service ~projected:true ()
  | [| _; "service"; "--smoke"; "--projected" |] | [| _; "service"; "--projected"; "--smoke" |] ->
      service ~smoke:true ~projected:true ()
  | [| _; "serve" |] -> serve ()
  | [| _; "serve"; "--smoke" |] -> serve ~smoke:true ()
  | [| _; "fabric" |] -> fabric ()
  | [| _; "fabric"; "--smoke" |] -> fabric ~smoke:true ()
  | [| _; "sketch" |] -> sketch ()
  | [| _; "sketch"; "--smoke" |] -> sketch ~smoke:true ()
  | [| _; "hybrid" |] -> hybrid ()
  | [| _; "hybrid"; "--smoke" |] -> hybrid ~smoke:true ()
  | _ ->
      prerr_endline
        "usage: main.exe [e1|...|e14|micro|runtime [--smoke] [--projected]|service [--smoke] \
         [--projected]|serve [--smoke]|fabric [--smoke]|sketch [--smoke]|hybrid [--smoke]]";
      exit 2
