(* atomlint — a source-level concurrency lint over the compiler-libs AST.

   The runtime library ([lib/runtime/]) owns every hardware concurrency
   primitive in this codebase: it pads atomics onto their own cache
   lines, exposes the [Cn_runtime.Atomics.S] vocabulary so protocol code
   can also run under the deterministic model checker, and keeps the
   memory-ordering reasoning in one audited place.  Everything else must
   go through it.  This tool enforces that boundary syntactically:

   - ATOM001  raw [Atomic.*] access outside [lib/runtime/]
   - ATOM002  raw [Mutex]/[Condition]/[Semaphore] outside [lib/runtime/]
   - ATOM003  module-level [ref] creation (shared mutable state that
              every domain implicitly aliases)

   Waivers, each requiring a written reason:

   - [x [@atomlint.allow "reason"]]          one expression
   - [let x = e [@@atomlint.allow "reason"]] one binding
   - [[@@@atomlint.allow "reason"]]          whole file

   Files under [lib/runtime/] are allowlisted wholesale.  Usage:

     atomlint [DIR-OR-FILE ...]     (default: lib bin)

   Exit 0 when clean, 1 with findings, 2 on parse/usage errors. *)

[@@@atomlint.allow
  "the lint driver is a single-process, single-domain CLI; its \
   accumulators are never shared"]

module P = Parsetree

type finding = { file : string; line : int; col : int; code : string; msg : string }

let findings : finding list ref = ref []
let waived : (string * string) list ref = ref []
let scanned = ref 0
let broken = ref false

let forbidden =
  [
    ("Atomic", "ATOM001");
    ("Mutex", "ATOM002");
    ("Condition", "ATOM002");
    ("Semaphore", "ATOM002");
  ]

let runtime_allowlist = [ "lib/runtime/" ]
let allow_name = "atomlint.allow"

let rec lid_head : Longident.t -> string = function
  | Lident s -> s
  | Ldot (l, _) -> lid_head l
  | Lapply (l, _) -> lid_head l

let rec lid_string : Longident.t -> string = function
  | Lident s -> s
  | Ldot (l, s) -> lid_string l ^ "." ^ s
  | Lapply (a, b) -> lid_string a ^ "(" ^ lid_string b ^ ")"

let allow_reason (a : P.attribute) =
  match a.attr_payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ]
    when String.trim s <> "" ->
      Some s
  | _ -> None

(* A waiver without a reason does not waive: the reason is the point. *)
let has_allow ~file attrs =
  List.exists
    (fun (a : P.attribute) ->
      if a.attr_name.txt <> allow_name then false
      else
        match allow_reason a with
        | Some _ -> true
        | None ->
            Printf.eprintf "%s: [@%s] without a reason string is ignored\n" file
              allow_name;
            false)
    attrs

let add ~file (loc : Location.t) code msg =
  let p = loc.loc_start in
  findings :=
    { file; line = p.pos_lnum; col = p.pos_cnum - p.pos_bol; code; msg } :: !findings

let hint = function
  | "ATOM001" -> "route it through Cn_runtime.Atomics (Real or instrumented)"
  | "ATOM002" -> "blocking coordination belongs to lib/runtime"
  | _ -> "shared mutable state belongs to lib/runtime"

let lint_structure ~file (str : P.structure) =
  let open Ast_iterator in
  let fun_depth = ref 0 in
  let check_lid (lid : Longident.t Location.loc) =
    match List.assoc_opt (lid_head lid.txt) forbidden with
    | Some code ->
        add ~file lid.loc code
          (Printf.sprintf "raw %s: %s" (lid_string lid.txt) (hint code))
    | None -> ()
  in
  let it =
    {
      default_iterator with
      expr =
        (fun self e ->
          if has_allow ~file e.pexp_attributes then ()
          else
            match e.pexp_desc with
            | Pexp_ident lid -> check_lid lid
            | Pexp_fun _ | Pexp_function _ ->
                incr fun_depth;
                default_iterator.expr self e;
                decr fun_depth
            | Pexp_apply
                ({ pexp_desc = Pexp_ident { txt = Lident "ref"; loc }; _ }, args) ->
                if !fun_depth = 0 then
                  add ~file loc "ATOM003"
                    (Printf.sprintf "module-level ref: %s" (hint "ATOM003"));
                List.iter (fun (_, a) -> self.expr self a) args
            | _ -> default_iterator.expr self e);
      module_expr =
        (fun self m ->
          (match m.pmod_desc with Pmod_ident lid -> check_lid lid | _ -> ());
          default_iterator.module_expr self m);
      value_binding =
        (fun self vb ->
          if has_allow ~file vb.pvb_attributes then ()
          else default_iterator.value_binding self vb);
    }
  in
  it.structure it str

let file_waiver (str : P.structure) =
  List.find_map
    (fun (si : P.structure_item) ->
      match si.pstr_desc with
      | Pstr_attribute a when a.attr_name.txt = allow_name -> allow_reason a
      | _ -> None)
    str

let allowlisted file =
  List.exists
    (fun prefix ->
      let rec mem i =
        i + String.length prefix <= String.length file
        && (String.sub file i (String.length prefix) = prefix || mem (i + 1))
      in
      mem 0)
    runtime_allowlist

let lint_file file =
  incr scanned;
  if allowlisted file then waived := (file, "lib/runtime allowlist") :: !waived
  else
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let lexbuf = Lexing.from_channel ic in
        Location.init lexbuf file;
        match Parse.implementation lexbuf with
        | exception exn ->
            broken := true;
            Location.report_exception Format.err_formatter exn
        | str -> (
            match file_waiver str with
            | Some reason -> waived := (file, reason) :: !waived
            | None -> lint_structure ~file str))

let rec collect path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.filter (fun name -> name <> "_build" && name.[0] <> '.')
    |> List.concat_map (fun name -> collect (Filename.concat path name))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let roots = if args = [] then [ "lib"; "bin" ] else args in
  let missing = List.filter (fun r -> not (Sys.file_exists r)) roots in
  if missing <> [] then begin
    List.iter (Printf.eprintf "atomlint: no such file or directory: %s\n") missing;
    exit 2
  end;
  List.iter lint_file (List.concat_map collect roots);
  let ordered =
    List.sort
      (fun a b -> compare (a.file, a.line, a.col) (b.file, b.line, b.col))
      !findings
  in
  List.iter
    (fun f -> Printf.printf "%s:%d:%d %s %s\n" f.file f.line f.col f.code f.msg)
    ordered;
  List.iter
    (fun (file, reason) -> Printf.printf "%s: waived (%s)\n" file reason)
    (List.sort compare !waived);
  Printf.printf "%d files scanned, %d waived, %d findings\n" !scanned
    (List.length !waived) (List.length ordered);
  if !broken then exit 2 else if ordered <> [] then exit 1 else exit 0
