(* countnet: command-line interface to the counting-network library.

   Subcommands: draw, depth, verify, simulate, throughput, sort, count.
   Every subcommand takes a network family (--family) plus the relevant
   parameters (--width, --out-width, --delta). *)

open Cmdliner

module T = Cn_network.Topology
module E = Cn_network.Eval
module S = Cn_sequence.Sequence

(* ---------------------------------------------------------------- *)
(* Network selection. *)

type family =
  | Counting
  | Bitonic
  | Periodic
  | Diffracting
  | Butterfly_fwd
  | Butterfly_bwd
  | Ladder
  | Merging
  | C_prime

let family_conv =
  let parse = function
    | "c" | "counting" -> Ok Counting
    | "bitonic" -> Ok Bitonic
    | "periodic" -> Ok Periodic
    | "difftree" | "diffracting" -> Ok Diffracting
    | "butterfly" | "dbutterfly" -> Ok Butterfly_fwd
    | "bbutterfly" -> Ok Butterfly_bwd
    | "ladder" -> Ok Ladder
    | "merging" -> Ok Merging
    | "cprime" | "c-prime" -> Ok C_prime
    | s -> Error (`Msg (Printf.sprintf "unknown family %S" s))
  in
  let print ppf f =
    Format.pp_print_string ppf
      (match f with
      | Counting -> "counting"
      | Bitonic -> "bitonic"
      | Periodic -> "periodic"
      | Diffracting -> "difftree"
      | Butterfly_fwd -> "butterfly"
      | Butterfly_bwd -> "bbutterfly"
      | Ladder -> "ladder"
      | Merging -> "merging"
      | C_prime -> "cprime")
  in
  Arg.conv (parse, print)

let family_arg =
  Arg.(
    value
    & opt family_conv Counting
    & info [ "f"; "family" ] ~docv:"FAMILY"
        ~doc:
          "Network family: $(b,counting) (the paper's C(w,t)), $(b,bitonic), $(b,periodic), \
           $(b,difftree), $(b,butterfly) (forward), $(b,bbutterfly) (backward), $(b,ladder), \
           $(b,merging) (M(t,delta)), $(b,cprime) (C'(w,t) = blocks N_a;N_b).")

let width_arg =
  Arg.(value & opt int 8 & info [ "w"; "width" ] ~docv:"W" ~doc:"Input width (a power of two).")

let out_width_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "t"; "out-width" ] ~docv:"T"
        ~doc:"Output width for counting/cprime families (default: w, i.e. the regular network).")

let delta_arg =
  Arg.(
    value
    & opt int 2
    & info [ "delta" ] ~docv:"DELTA" ~doc:"Merging parameter delta for the merging family.")

let merger_conv =
  let parse s =
    match Cn_core.Merger.strategy_of_string s with
    | Some m -> Ok m
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown merger strategy %S (expected difference, periodic3 or pk<k>)"
                s))
  in
  let print ppf m = Format.pp_print_string ppf (Cn_core.Merger.strategy_name m) in
  Arg.conv (parse, print)

let merger_arg =
  Arg.(
    value
    & opt merger_conv Cn_core.Merger.Difference
    & info [ "merger" ] ~docv:"STRATEGY"
        ~doc:
          "Merger strategy for the counting and merging families: $(b,difference) (the paper's \
           M(t,delta)), $(b,periodic3) (3-layer mirror+brick period), or $(b,pk<k>) (first k \
           balanced-block layers as the period).  Periodic strategies build hybrids whose step \
           property is certified or refuted by $(b,countnet lint), never assumed.")

let merger_scope_conv =
  let parse s =
    match Cn_core.Merger.scope_of_string s with
    | Some sc -> Ok sc
    | None -> Error (`Msg (Printf.sprintf "unknown merger scope %S (expected all or top)" s))
  in
  let print ppf sc = Format.pp_print_string ppf (Cn_core.Merger.scope_name sc) in
  Arg.conv (parse, print)

let merger_scope_arg =
  Arg.(
    value
    & opt merger_scope_conv Cn_core.Merger.All_levels
    & info [ "merger-scope" ] ~docv:"SCOPE"
        ~doc:
          "Where the counting family substitutes the merger: $(b,all) recursion levels \
           (default) or the $(b,top) level only.")

let build family ~w ~t ~delta ~merger ~scope =
  let t = match t with Some t -> t | None -> w in
  match family with
  | Counting -> Cn_core.Counting.network_with ~merger ~scope ~w ~t
  | Merging -> (
      match merger with
      | Cn_core.Merger.Difference -> Cn_core.Merging.network ~t:w ~delta
      | strategy -> Cn_core.Merger.network ~strategy ~t:w ~delta)
  | _ when merger <> Cn_core.Merger.Difference ->
      invalid_arg "--merger applies to the counting and merging families only"
  | Bitonic -> Cn_baselines.Bitonic.network w
  | Periodic -> Cn_baselines.Periodic.network w
  | Diffracting -> Cn_baselines.Diffracting.network w
  | Butterfly_fwd -> Cn_core.Butterfly.forward w
  | Butterfly_bwd -> Cn_core.Butterfly.backward w
  | Ladder -> Cn_core.Ladder.network w
  | C_prime -> Cn_core.Blocks.c_prime ~w ~t

let network_term =
  let combine family w t delta merger scope =
    try Ok (build family ~w ~t ~delta ~merger ~scope)
    with Invalid_argument msg -> Error (`Msg msg)
  in
  Term.(
    term_result
      (const combine $ family_arg $ width_arg $ out_width_arg $ delta_arg $ merger_arg
     $ merger_scope_arg))

(* ---------------------------------------------------------------- *)
(* draw *)

let ascii_flag =
  Arg.(value & flag & info [ "ascii" ] ~doc:"Draw the straightened-wire ASCII diagram instead.")

let dot_flag =
  Arg.(value & flag & info [ "dot" ] ~doc:"Emit a Graphviz digraph instead.")

let svg_flag =
  Arg.(value & flag & info [ "svg" ] ~doc:"Emit a standalone SVG drawing instead.")

let draw_cmd =
  let run net ascii dot svg =
    if dot then print_string (Cn_network.Render.dot net)
    else if svg then print_string (Cn_network.Render.svg net)
    else if ascii then print_string (Cn_network.Render.ascii net)
    else print_string (Cn_network.Render.describe net)
  in
  Cmd.v
    (Cmd.info "draw"
       ~doc:"Print a network's structure (layer listing, ASCII, SVG, or Graphviz).")
    Term.(const run $ network_term $ ascii_flag $ dot_flag $ svg_flag)

(* ---------------------------------------------------------------- *)
(* iso *)

let iso_cmd =
  let second_family =
    Arg.(
      required
      & opt (some family_conv) None
      & info [ "against" ] ~docv:"FAMILY" ~doc:"Second network family to compare against.")
  in
  let run net family2 w t delta =
    match
      try
        Ok
          (build family2 ~w ~t ~delta ~merger:Cn_core.Merger.Difference
             ~scope:Cn_core.Merger.All_levels)
      with Invalid_argument m -> Error m
    with
    | Error m ->
        prerr_endline m;
        exit 1
    | Ok net2 -> (
        match Cn_network.Iso.find net net2 with
        | None ->
            print_endline "not isomorphic (or search exhausted)";
            exit 1
        | Some mapping -> (
            match Cn_network.Iso.check net net2 ~mapping with
            | Error e ->
                Printf.printf "internal: mapping failed validation: %s\n" e;
                exit 1
            | Ok (pi_in, pi_out) ->
                print_endline "isomorphic";
                Format.printf "pi_in:  %a@.pi_out: %a@." Cn_network.Permutation.pp pi_in
                  Cn_network.Permutation.pp pi_out))
  in
  Cmd.v
    (Cmd.info "iso"
       ~doc:"Search for a Section-2.3 isomorphism between two networks of the same parameters \
             (e.g. --family bbutterfly --against butterfly).")
    Term.(const run $ network_term $ second_family $ width_arg $ out_width_arg $ delta_arg)

(* ---------------------------------------------------------------- *)
(* depth *)

let depth_cmd =
  let run net =
    Printf.printf "input width   %d\n" (T.input_width net);
    Printf.printf "output width  %d\n" (T.output_width net);
    Printf.printf "depth         %d\n" (T.depth net);
    Printf.printf "balancers     %d\n" (T.size net);
    Printf.printf "regular       %b\n" (T.is_regular net)
  in
  Cmd.v
    (Cmd.info "depth" ~doc:"Print structural statistics of a network.")
    Term.(const run $ network_term)

(* ---------------------------------------------------------------- *)
(* verify *)

let trials_arg =
  Arg.(value & opt int 500 & info [ "trials" ] ~docv:"N" ~doc:"Number of random input loads.")

let exhaustive_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "exhaustive" ] ~docv:"B"
        ~doc:
          "Instead of random loads, certify the step property on EVERY input with at most \
           $(docv) tokens per wire (bounded model check; the input space must stay under \
           10^7 vectors).")

let verify_cmd =
  let run net trials exhaustive =
    match exhaustive with
    | Some max_tokens -> (
        match Cn_core.Verify.counting ~max_tokens net with
        | Cn_core.Verify.Verified n ->
            Printf.printf "certified: step property on all %d loads with <= %d tokens/wire\n" n
              max_tokens
        | Cn_core.Verify.Counterexample x ->
            Printf.printf "FAILED: counterexample input %s\n" (S.to_string x);
            exit 1
        | exception Invalid_argument m ->
            prerr_endline m;
            exit 1)
    | None ->
        let rng = Random.State.make [| 42 |] in
        let w = T.input_width net in
        let failures = ref 0 in
        for _ = 1 to trials do
          let x = Array.init w (fun _ -> Random.State.int rng 100) in
          let y = E.quiescent net x in
          if S.sum x <> S.sum y then incr failures
          else if not (S.is_step y) then incr failures
        done;
        if !failures = 0 then Printf.printf "ok: %d random loads produced step outputs\n" trials
        else begin
          Printf.printf "FAILED on %d/%d loads (not a counting network?)\n" !failures trials;
          exit 1
        end
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Check the step property on random quiescent executions, or certify it \
             exhaustively on bounded loads.")
    Term.(const run $ network_term $ trials_arg $ exhaustive_arg)

(* ---------------------------------------------------------------- *)
(* simulate *)

let concurrency_arg =
  Arg.(value & opt int 16 & info [ "n"; "concurrency" ] ~docv:"N" ~doc:"Concurrent processes.")

let tokens_arg =
  Arg.(value & opt int 0 & info [ "m"; "tokens" ] ~docv:"M" ~doc:"Total tokens (default 30n).")

let strategy_conv =
  let parse = function
    | "random" -> Ok (Cn_sim.Scheduler.Random 1)
    | "round-robin" -> Ok Cn_sim.Scheduler.Round_robin
    | "max-queue" -> Ok Cn_sim.Scheduler.Max_queue
    | "herd" -> Ok (Cn_sim.Scheduler.Herd 1)
    | "worst" -> Ok (Cn_sim.Scheduler.Random (-1)) (* sentinel, handled below *)
    | s -> Error (`Msg (Printf.sprintf "unknown strategy %S" s))
  in
  let print ppf s = Format.pp_print_string ppf (Cn_sim.Scheduler.strategy_name s) in
  Arg.conv (parse, print)

let strategy_arg =
  Arg.(
    value
    & opt (some strategy_conv) None
    & info [ "strategy" ] ~docv:"S"
        ~doc:"Schedule: $(b,random), $(b,round-robin), $(b,max-queue), $(b,herd); default: worst \
              over the whole portfolio.")

let simulate_cmd =
  let run net n m strategy =
    let m = if m <= 0 then 30 * n else m in
    let r =
      match strategy with
      | Some s -> Cn_sim.Contention.measure net ~n ~m s
      | None -> Cn_sim.Contention.worst net ~n ~m
    in
    Printf.printf "strategy      %s\n" r.Cn_sim.Contention.strategy;
    Printf.printf "tokens        %d\n" r.Cn_sim.Contention.tokens;
    Printf.printf "stalls        %d\n" r.Cn_sim.Contention.stalls;
    Printf.printf "stalls/token  %.3f\n" r.Cn_sim.Contention.per_token;
    Printf.printf "step output   %b\n" r.Cn_sim.Contention.step_ok;
    Printf.printf "per-layer     %s\n"
      (String.concat " "
         (Array.to_list (Array.map string_of_int r.Cn_sim.Contention.per_layer)))
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Estimate amortized contention (stalls per token) under an adversarial schedule \
             portfolio.")
    Term.(const run $ network_term $ concurrency_arg $ tokens_arg $ strategy_arg)

(* ---------------------------------------------------------------- *)
(* throughput *)

let domains_arg =
  Arg.(value & opt int 4 & info [ "domains" ] ~docv:"D" ~doc:"OCaml domains to spawn.")

let ops_arg =
  Arg.(value & opt int 10_000 & info [ "ops" ] ~docv:"OPS" ~doc:"Increments per domain.")

let mode_conv =
  let parse = function
    | "faa" -> Ok Cn_runtime.Network_runtime.Faa
    | "cas" -> Ok Cn_runtime.Network_runtime.Cas
    | s -> Error (`Msg (Printf.sprintf "unknown mode %S (expected faa or cas)" s))
  in
  let print ppf m =
    Format.pp_print_string ppf
      (match m with Cn_runtime.Network_runtime.Faa -> "faa" | Cn_runtime.Network_runtime.Cas -> "cas")
  in
  Arg.conv (parse, print)

let mode_arg =
  Arg.(
    value
    & opt mode_conv Cn_runtime.Network_runtime.Faa
    & info [ "mode" ] ~docv:"MODE"
        ~doc:"Balancer implementation: $(b,faa) (wait-free fetch-and-add) or $(b,cas) \
              (instrumented compare-and-set with bounded backoff).")

let layout_conv =
  let parse = function
    | "padded" | "padded-csr" | "csr" -> Ok Cn_runtime.Network_runtime.Padded_csr
    | "unpadded" | "unpadded-nested" | "nested" -> Ok Cn_runtime.Network_runtime.Unpadded_nested
    | s -> Error (`Msg (Printf.sprintf "unknown layout %S (expected padded or unpadded)" s))
  in
  let print ppf l =
    Format.pp_print_string ppf
      (match l with
      | Cn_runtime.Network_runtime.Padded_csr -> "padded"
      | Cn_runtime.Network_runtime.Unpadded_nested -> "unpadded")
  in
  Arg.conv (parse, print)

let layout_arg =
  Arg.(
    value
    & opt layout_conv Cn_runtime.Network_runtime.Padded_csr
    & info [ "layout" ] ~docv:"LAYOUT"
        ~doc:"Runtime memory layout: $(b,padded) (cache-line-padded balancer states, flat CSR \
              wiring; default) or $(b,unpadded) (adjacent atomics, nested-array wiring; for \
              comparison).")

let batch_arg =
  Arg.(
    value
    & opt ~vopt:(Some max_int) (some int) None
    & info [ "batch" ] ~docv:"N"
        ~doc:"Use the batched traversal API ($(b,traverse_batch)) inside each domain, in chunks \
              of $(docv) tokens (bare $(b,--batch): one chunk covering all ops), instead of one \
              $(b,traverse) call per increment.")

let pipeline_arg =
  Arg.(
    value
    & opt ~vopt:(Some 64) (some int) None
    & info [ "pipeline" ] ~docv:"CAP"
        ~doc:"Drive each domain through the layer-pipelined batch walk \
              ($(b,traverse_batch_pipelined)) with a wavefront buffer of $(docv) tokens (bare \
              $(b,--pipeline): 64) instead of one $(b,traverse) call per increment. With \
              $(b,--service), drains combined batches through the pipelined walk instead; lane \
              buffers are sized by $(b,--max-batch) and $(docv) is ignored.")

let projected_flag =
  Arg.(
    value
    & flag
    & info [ "projected" ]
        ~doc:"After the measured run, calibrate the single-core crossing cost on this host and \
              print contention-model-projected 2/4/8-domain throughput for the central \
              Fetch&Increment counter and the network, plus the projected crossover \
              concurrency (the $(b,Cn_analysis.Projection) model).")

let stall_factor_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "stall-factor" ] ~docv:"F"
        ~doc:"Cost of one stall (a cache-line transfer to a contended word) in units of an \
              uncontended crossing, for the projection model (default 8). Requires \
              $(b,--projected).")

let metrics_flag =
  Arg.(
    value
    & flag
    & info [ "metrics" ]
        ~doc:"Compile the runtime with the observability layer and print the schema-versioned \
              metrics JSON (per-balancer crossings/stalls, per-layer profile, per-wire tallies, \
              latency percentiles) after the throughput line.")

let policy_conv =
  let parse s =
    match Cn_runtime.Validator.policy_of_string s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "unknown policy %S (expected strict, log or off)" s))
  in
  let print ppf p = Format.pp_print_string ppf (Cn_runtime.Validator.policy_to_string p) in
  Arg.conv (parse, print)

let validate_arg =
  Arg.(
    value
    & opt policy_conv Cn_runtime.Validator.Log
    & info [ "validate" ] ~docv:"POLICY"
        ~doc:"Quiescence validation after the run: $(b,strict) (exit non-zero on violation), \
              $(b,log) (warn on stderr; default) or $(b,off).")

let service_flag =
  Arg.(
    value
    & flag
    & info [ "service" ]
        ~doc:"Drive the network through the $(b,Cn_service) combining front-end (sessions \
              pinned to wires, flat-combining batches, inc/dec elimination, backpressure) \
              instead of raw per-domain traversals.")

let elim_arg =
  Arg.(
    value
    & opt (some bool) None
    & info [ "elim" ] ~docv:"BOOL"
        ~doc:"Enable or disable inc/dec elimination in the service (default $(b,true)). \
              Requires $(b,--service).")

let max_batch_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-batch" ] ~docv:"N"
        ~doc:"Largest operation count one combined service batch may serve (default 64). \
              Requires $(b,--service).")

let sessions_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "sessions" ] ~docv:"K"
        ~doc:"Service sessions per client domain (default 2). Requires $(b,--service).")

let fabric_flag =
  Arg.(
    value
    & flag
    & info [ "fabric" ]
        ~doc:"Drive the sharded counter fabric ($(b,Cn_fabric)): N independently compiled \
              C(w,t) service shards behind consistent-hash session routing, every topology \
              certified before serving.  Mutually exclusive with $(b,--service).")

let fabric_shards_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "shards" ] ~docv:"N"
        ~doc:"Shard count for the fabric (default 2). Requires $(b,--fabric).")

let autotune_flag =
  Arg.(
    value
    & flag
    & info [ "autotune" ]
        ~doc:"Before the measured run, calibrate the crossing cost on this host and hot-resize \
              every shard to the contention model's predicted-best C(w,t) at $(b,--domains) \
              concurrency ($(b,Cn_analysis.Projection.tune)). Requires $(b,--fabric).")

let backend_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "backend" ] ~docv:"TIER"
        ~doc:"Counter tier to drive: $(b,exact) (the network-backed counter; default), \
              $(b,hll) (HyperLogLog distinct-count sketch, 2^14 registers) or $(b,sparse) \
              (sparse-graph per-flow counters, 4096 cells, degree 3). The sketch tiers \
              measure the approximate backends behind Shared_counter.Custom and report the \
              estimate against the true op count, the theoretical error bound, and resident \
              sketch bytes. Mutually exclusive with $(b,--service) and $(b,--fabric).")

let dec_ratio_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "dec-ratio" ] ~docv:"R"
        ~doc:"Probability in [0, 1] that a workload operation is a Fetch&Decrement \
              (default 0; prefixes stay non-negative). Requires $(b,--service).")

let skew_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "skew" ] ~docv:"SKEW"
        ~doc:"Session-popularity skew: $(b,uniform) or $(b,zipf:ALPHA) (ALPHA > 0). \
              Requires $(b,--service).")

let arrival_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "arrival" ] ~docv:"ARRIVAL"
        ~doc:"Arrival process: $(b,closed) (back to back), $(b,closed:THINK) (think seconds \
              between ops) or $(b,burst:N:PAUSE) (N back-to-back ops, then PAUSE seconds). \
              Requires $(b,--service).")

(* Shared by throughput --service and the TCP load rig: the textual
   skew/arrival grammars.  [fail] reports the usage error with the
   caller's subcommand prefix. *)
let parse_skew ~fail s =
  let module W = Cn_service.Workload in
  match String.split_on_char ':' s with
  | [ "uniform" ] -> W.Uniform
  | [ "zipf"; a ] -> (
      match float_of_string_opt a with
      | Some alpha when alpha > 0. -> W.Zipf alpha
      | _ -> fail (Printf.sprintf "--skew zipf exponent must be positive (got %S)" a))
  | _ -> fail (Printf.sprintf "unknown skew %S (expected uniform or zipf:ALPHA)" s)

let parse_arrival ~fail s =
  let module W = Cn_service.Workload in
  match String.split_on_char ':' s with
  | [ "closed" ] -> W.Closed 0.
  | [ "closed"; t ] -> (
      match float_of_string_opt t with
      | Some think when think >= 0. -> W.Closed think
      | _ -> fail (Printf.sprintf "--arrival closed think time must be >= 0 (got %S)" t))
  | [ "burst"; n; p ] -> (
      match (int_of_string_opt n, float_of_string_opt p) with
      | Some burst, Some pause when burst >= 1 && pause >= 0. -> W.Bursty { burst; pause }
      | _ -> fail (Printf.sprintf "--arrival burst needs N >= 1 and PAUSE >= 0 (got %S)" s))
  | _ ->
      fail (Printf.sprintf "unknown arrival %S (expected closed[:THINK] or burst:N:PAUSE)" s)

let throughput_cmd =
  let module RT = Cn_runtime.Network_runtime in
  let module V = Cn_runtime.Validator in
  let module Svc = Cn_service.Service in
  let module W = Cn_service.Workload in
  let fail_usage msg =
    prerr_endline ("countnet throughput: " ^ msg);
    exit 2
  in
  (* Drive a compiled runtime from a pool, chunked through the batched
     API; returns the timed seconds of the concurrent region. *)
  let pool_round rt ~domains ~ops ~chunk =
    let w = RT.input_width rt in
    Cn_runtime.Domain_pool.with_pool domains (fun pool ->
        Cn_runtime.Domain_pool.run pool ~domains (fun pid ->
            let wire = pid mod w in
            let remaining = ref ops in
            while !remaining > 0 do
              let n = min chunk !remaining in
              RT.traverse_batch rt ~wire ~n ~f:(fun _ _ -> ());
              remaining := !remaining - n
            done))
  in
  (* Like [pool_round], but wavefront-pipelined: each domain owns one
     preallocated buffer and hands the whole run to the chunking
     pipelined walk. *)
  let pool_round_pipelined rt ~domains ~ops ~capacity =
    let w = RT.input_width rt in
    Cn_runtime.Domain_pool.with_pool domains (fun pool ->
        Cn_runtime.Domain_pool.run pool ~domains (fun pid ->
            let buf = RT.buffer ~capacity () in
            RT.traverse_batch_pipelined rt buf ~wire:(pid mod w) ~n:ops ~f:(fun _ _ -> ())))
  in
  (* Calibrate the uncontended crossing cost on this host (one domain),
     then print the contention-model projection next to it.  The
     measured run above answers "what did this host do"; these rows
     answer "what would n truly concurrent domains do" (Theorem 6.7's
     regime), from depth x crossing_ns plus simulated stalls. *)
  let print_projection net ~mode ~layout ~ops ~stall_factor =
    let module P = Cn_analysis.Projection in
    let depth = T.depth net in
    let crossing_ns =
      Cn_runtime.Harness.calibrate_crossing_ns
        ~ops_per_domain:(max 1_000 (min ops 200_000))
        ~make:(fun () -> Cn_runtime.Shared_counter.of_topology ~mode ~layout net)
        ~depth ()
    in
    let c = P.calibrate ?stall_factor ~crossing_ns () in
    Printf.printf "projected: crossing %.1f ns, stall factor %.1f (stall %.1f ns), depth %d\n"
      c.P.crossing_ns c.P.stall_factor (P.stall_ns c) depth;
    List.iter
      (fun n ->
        let ctr = P.project_central c ~domains:n in
        let np = P.project_network c net ~domains:n in
        Printf.printf
          "  n=%d: central %.3g ops/s (%.1f stalls/token), network %.3g ops/s (%.2f \
           stalls/token)\n"
          n ctr.P.ops_per_sec ctr.P.stalls_per_token np.P.ops_per_sec np.P.stalls_per_token)
      [ 2; 4; 8 ];
    match P.crossover c net with
    | Some n ->
        Printf.printf "projected crossover: network overtakes the central counter at %d domains\n"
          n
    | None -> print_endline "projected crossover: none within 1024 domains"
  in
  let parse_skew = parse_skew ~fail:fail_usage in
  let parse_arrival = parse_arrival ~fail:fail_usage in
  let run net domains ops mode layout batch pipeline metrics policy service elim max_batch
      sessions dec_ratio skew arrival projected stall_factor fabric fabric_shards autotune
      backend =
    if domains <= 0 then fail_usage (Printf.sprintf "--domains must be positive (got %d)" domains);
    if ops <= 0 then fail_usage (Printf.sprintf "--ops must be positive (got %d)" ops);
    (match batch with
    | Some b when b <= 0 -> fail_usage (Printf.sprintf "--batch must be positive (got %d)" b)
    | _ -> ());
    (match pipeline with
    | Some c when c <= 0 ->
        fail_usage (Printf.sprintf "--pipeline capacity must be positive (got %d)" c)
    | _ -> ());
    if batch <> None && pipeline <> None then
      fail_usage "--batch and --pipeline are mutually exclusive (pick one batched driver)";
    (match stall_factor with
    | Some f when f <= 0. ->
        fail_usage (Printf.sprintf "--stall-factor must be positive (got %g)" f)
    | _ -> ());
    if stall_factor <> None && not (projected || autotune) then
      fail_usage "--stall-factor requires --projected or --autotune";
    if service && fabric then
      fail_usage "--service and --fabric are mutually exclusive (pick one front-end)";
    if not fabric then begin
      if fabric_shards <> None then fail_usage "--shards requires --fabric";
      if autotune then fail_usage "--autotune requires --fabric"
    end;
    if not service && not fabric then begin
      let require_front (name, set) =
        if set then fail_usage (name ^ " requires --service or --fabric")
      in
      List.iter require_front
        [
          ("--elim", elim <> None);
          ("--max-batch", max_batch <> None);
          ("--sessions", sessions <> None);
        ]
    end;
    if not service then begin
      let require_service (name, set) =
        if set then fail_usage (name ^ " requires --service")
      in
      List.iter require_service
        [
          ("--dec-ratio", dec_ratio <> None);
          ("--skew", skew <> None);
          ("--arrival", arrival <> None);
        ]
    end;
    if (service || fabric) && batch <> None then
      fail_usage "--batch and --service/--fabric are mutually exclusive (they batch internally)";
    (match max_batch with
    | Some b when b <= 0 -> fail_usage (Printf.sprintf "--max-batch must be positive (got %d)" b)
    | _ -> ());
    (match sessions with
    | Some k when k <= 0 -> fail_usage (Printf.sprintf "--sessions must be positive (got %d)" k)
    | _ -> ());
    (match dec_ratio with
    | Some r when r < 0. || r > 1. ->
        fail_usage (Printf.sprintf "--dec-ratio must be in [0, 1] (got %g)" r)
    | _ -> ());
    let skew = Option.map parse_skew skew in
    let arrival = Option.map parse_arrival arrival in
    let backend =
      match backend with
      | None -> Svc.Exact
      | Some s -> (
          match Svc.backend_of_string s with
          | Ok b -> b
          | Error msg -> fail_usage msg)
    in
    (match backend with
    | Svc.Exact -> ()
    | _ ->
        if service || fabric then
          fail_usage
            "--backend hll/sparse and --service/--fabric are mutually exclusive (the sketch \
             tiers bypass the combining front-ends)";
        if metrics then
          fail_usage "--metrics requires the exact backend (sketches have no network runtime)";
        if batch <> None || pipeline <> None then
          fail_usage "--batch/--pipeline require the exact backend";
        if projected then
          fail_usage "--projected requires the exact backend (no network to project)");
    (match backend with
    | Svc.Exact -> ()
    | Svc.Hll { precision } ->
        let module B = Cn_sketch.Backend in
        let module Hll = Cn_sketch.Hll in
        (* The harness builds a fresh sketch per calibration attempt;
           only the last one was actually measured, so truth is the
           final attempt's total op count. *)
        let last = ref None in
        let make () =
          let b = B.hll ~precision () in
          last := Some b;
          b.B.counter
        in
        let r = Cn_runtime.Harness.throughput ~make ~domains ~ops_per_domain:ops () in
        let b = Option.get !last in
        let truth = r.Cn_runtime.Harness.total_ops in
        let est = Hll.cardinality b.B.incs in
        let err = Float.abs (est -. float_of_int truth) /. float_of_int truth in
        Printf.printf "%s: %d domains x %d ops = %d ops in %.3fs -> %.0f ops/s\n"
          r.Cn_runtime.Harness.counter domains ops r.Cn_runtime.Harness.total_ops
          r.Cn_runtime.Harness.seconds r.Cn_runtime.Harness.ops_per_sec;
        Printf.printf
          "hll: estimate %.0f of %d true ops (rel error %.4f, std error 1.04/sqrt(m) = \
           %.4f), %d sketch bytes\n"
          est truth err
          (Hll.std_error b.B.incs)
          (Hll.memory_bytes b.B.incs + Hll.memory_bytes b.B.decs);
        exit 0
    | Svc.Sparse { counters; degree } ->
        let module B = Cn_sketch.Backend in
        let module Sp = Cn_sketch.Sparse in
        let last = ref None in
        let make () =
          let b = B.sparse ~counters ~degree () in
          last := Some b;
          b.B.counter
        in
        let r = Cn_runtime.Harness.throughput ~make ~domains ~ops_per_domain:ops () in
        let b = Option.get !last in
        let total_true = r.Cn_runtime.Harness.total_ops in
        let per_flow_true = total_true / domains in
        let max_err = ref 0. in
        for pid = 0 to domains - 1 do
          let e = Sp.estimate b.B.sketch pid in
          let err =
            Float.abs (float_of_int (e - per_flow_true)) /. float_of_int per_flow_true
          in
          if err > !max_err then max_err := err
        done;
        Printf.printf "%s: %d domains x %d ops = %d ops in %.3fs -> %.0f ops/s\n"
          r.Cn_runtime.Harness.counter domains ops r.Cn_runtime.Harness.total_ops
          r.Cn_runtime.Harness.seconds r.Cn_runtime.Harness.ops_per_sec;
        Printf.printf
          "sparse: global tally %d of %d true ops, per-flow max rel error %.4f over %d \
           flows, %d sketch bytes\n"
          (Sp.total b.B.sketch) total_true !max_err domains
          (Sp.memory_bytes b.B.sketch);
        exit 0);
    if fabric then begin
      let module Fab = Cn_fabric.Fabric in
      let module P = Cn_analysis.Projection in
      let shards = Option.value fabric_shards ~default:2 in
      if shards <= 0 then
        fail_usage (Printf.sprintf "--shards must be positive (got %d)" shards);
      let resize_err = function
        | Fab.Cert_rejected m -> "certificate rejected: " ^ m
        | Fab.Busy -> "busy"
        | Fab.Bad_shard -> "bad shard"
        | Fab.Fabric_closed -> "fabric closed"
      in
      let fab =
        try
          Fab.create ~mode ~layout ~metrics ?max_batch ?elim
            ~pipeline:(pipeline <> None) ~validate:policy ~shards net
        with Fab.Rejected msg -> fail_usage ("topology rejected: " ^ msg)
      in
      if autotune then begin
        let depth = T.depth net in
        let crossing_ns =
          Cn_runtime.Harness.calibrate_crossing_ns
            ~ops_per_domain:(max 1_000 (min ops 200_000))
            ~make:(fun () -> Cn_runtime.Shared_counter.of_topology ~mode ~layout net)
            ~depth ()
        in
        let c = P.calibrate ?stall_factor ~crossing_ns () in
        for sid = 0 to shards - 1 do
          match Fab.retune fab c ~shard:sid ~domains with
          | Ok (`Resized (w, t)) ->
              Printf.printf "autotune: shard %d -> C(%d,%d)\n" sid w t
          | Ok `Unchanged ->
              let i = Fab.shard_info fab sid in
              Printf.printf "autotune: shard %d stays C(%d,%d)\n" sid i.Fab.width
                i.Fab.out_width
          | Error e ->
              fail_usage (Printf.sprintf "autotune: shard %d: %s" sid (resize_err e))
        done
      end;
      let sessions_per = Option.value sessions ~default:2 in
      let completed = Array.make domains 0 in
      let rejected = Array.make domains 0 in
      let seconds =
        Cn_runtime.Domain_pool.with_pool domains (fun pool ->
            Cn_runtime.Domain_pool.run pool ~domains (fun pid ->
                let ss =
                  Array.init sessions_per (fun k ->
                      Fab.session ~key:((pid * sessions_per) + k) fab)
                in
                for i = 0 to ops - 1 do
                  match Fab.increment ss.(i mod sessions_per) with
                  | Ok _ -> completed.(pid) <- completed.(pid) + 1
                  | Error Fab.Overloaded -> rejected.(pid) <- rejected.(pid) + 1
                  | Error Fab.Closed -> ()
                done))
      in
      (match Fab.drain fab with
      | _report -> ()
      | exception V.Invalid msg ->
          prerr_endline ("countnet throughput: " ^ msg);
          exit 1);
      let done_ = Array.fold_left ( + ) 0 completed in
      let rej = Array.fold_left ( + ) 0 rejected in
      Printf.printf
        "fabric: %d shards, %d domains x %d ops = %d completed (%d rejected) in %.3fs -> %.0f \
         ops/s\n"
        shards domains ops done_ rej seconds
        (float_of_int done_ /. Float.max seconds 1e-9);
      Printf.printf "fabric value %d; shards:%s\n" (Fab.read fab)
        (String.concat ""
           (List.map
              (fun (i : Fab.shard_info) ->
                Printf.sprintf " %d:C(%d,%d) gen %d value %d" i.Fab.id i.Fab.width
                  i.Fab.out_width i.Fab.gen i.Fab.value)
              (Fab.shard_infos fab)));
      if metrics then print_endline (Fab.report_json fab);
      if projected then print_projection net ~mode ~layout ~ops ~stall_factor;
      exit 0
    end;
    if service then begin
      let svc =
        Svc.create ~mode ~layout ~metrics ?max_batch ?elim ~pipeline:(pipeline <> None)
          ~validate:policy net
      in
      let spec =
        {
          W.default with
          W.domains;
          ops_per_domain = ops;
          sessions_per_domain = Option.value sessions ~default:W.default.W.sessions_per_domain;
          dec_ratio = Option.value dec_ratio ~default:0.;
          skew = Option.value skew ~default:W.Uniform;
          arrival = Option.value arrival ~default:(W.Closed 0.);
        }
      in
      let stats = W.run svc spec in
      (match Svc.drain svc with
      | _report -> ()
      | exception V.Invalid msg ->
          prerr_endline ("countnet throughput: " ^ msg);
          exit 1);
      let sst = Svc.stats svc in
      Printf.printf "service: %d domains x %d ops = %d completed (%d rejected) in %.3fs -> %.0f ops/s\n"
        domains ops stats.W.completed stats.W.rejected stats.W.seconds stats.W.ops_per_sec;
      Printf.printf "combining: %d batches, mean batch %.2f, %d pairs eliminated (rate %.3f)\n"
        sst.Svc.total_batches sst.Svc.mean_batch sst.Svc.total_eliminated_pairs
        sst.Svc.elimination_rate;
      if metrics then print_endline (Svc.report_json svc);
      if projected then print_projection net ~mode ~layout ~ops ~stall_factor;
      exit 0
    end;
    let enforce_or_exit rt =
      match V.enforce policy (V.quiescent_runtime rt) with
      | () -> ()
      | exception V.Invalid msg ->
          prerr_endline ("countnet throughput: " ^ msg);
          exit 1
    in
    let json = ref None in
    let r =
      if metrics || batch <> None || pipeline <> None then begin
        let rt = RT.compile ~mode ~layout ~metrics net in
        let seconds =
          match pipeline with
          | Some cap -> pool_round_pipelined rt ~domains ~ops ~capacity:(min cap ops)
          | None ->
              let chunk = match batch with Some b -> min b ops | None -> 1 in
              pool_round rt ~domains ~ops ~chunk
        in
        enforce_or_exit rt;
        if metrics then begin
          let m = Option.get (RT.metrics rt) in
          let layers = Array.init (T.size net) (T.balancer_depth net) in
          json := Some (Cn_runtime.Metrics.to_json ~layers (Cn_runtime.Metrics.snapshot m))
        end;
        {
          Cn_runtime.Harness.counter = "network";
          domains;
          total_ops = domains * ops;
          seconds;
          ops_per_sec = float_of_int (domains * ops) /. Float.max seconds 1e-9;
        }
      end
      else begin
        (* The harness builds its own counters (fresh per calibration
           attempt); remember the one actually measured so the
           validator can inspect its quiesced network. *)
        let last = ref None in
        let make () =
          let c = Cn_runtime.Shared_counter.of_topology ~mode ~layout net in
          last := Some c;
          c
        in
        let r = Cn_runtime.Harness.throughput ~make ~domains ~ops_per_domain:ops () in
        Option.iter
          (fun c -> Option.iter enforce_or_exit (Cn_runtime.Shared_counter.runtime c))
          !last;
        r
      end
    in
    Printf.printf "%s: %d domains x %d ops = %d ops in %.3fs -> %.0f ops/s\n"
      r.Cn_runtime.Harness.counter domains ops r.Cn_runtime.Harness.total_ops
      r.Cn_runtime.Harness.seconds r.Cn_runtime.Harness.ops_per_sec;
    Option.iter print_endline !json;
    if projected then print_projection net ~mode ~layout ~ops ~stall_factor
  in
  Cmd.v
    (Cmd.info "throughput"
       ~doc:"Measure Fetch&Increment throughput of the network-backed shared counter.")
    Term.(
      const run $ network_term $ domains_arg $ ops_arg $ mode_arg $ layout_arg $ batch_arg
      $ pipeline_arg $ metrics_flag $ validate_arg $ service_flag $ elim_arg $ max_batch_arg
      $ sessions_arg $ dec_ratio_arg $ skew_arg $ arrival_arg $ projected_flag
      $ stall_factor_arg $ fabric_flag $ fabric_shards_arg $ autotune_flag $ backend_arg)

(* ---------------------------------------------------------------- *)
(* sort *)

let values_arg =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"VALUES" ~doc:"Comma-separated integers (default: a sample permutation).")

let sort_cmd =
  let run net values =
    match
      let s = Cn_core.Sorting.of_topology net in
      let input =
        match values with
        | Some csv -> Array.of_list (List.map int_of_string (String.split_on_char ',' csv))
        | None -> Array.init (Cn_core.Sorting.width s) (fun i -> ((i * 7) + 3) mod 17)
      in
      (s, input)
    with
    | exception Invalid_argument msg ->
        prerr_endline msg;
        exit 1
    | exception Failure _ ->
        prerr_endline "could not parse VALUES as comma-separated integers";
        exit 1
    | s, input ->
        Printf.printf "input:  %s\n" (S.to_string input);
        Printf.printf "sorted: %s\n" (S.to_string (Cn_core.Sorting.apply_ascending s input))
  in
  Cmd.v
    (Cmd.info "sort"
       ~doc:"Sort integers with the comparator network extracted from the chosen (regular, \
             (2,2)-balancer) network (Section 7).")
    Term.(const run $ network_term $ values_arg)

(* ---------------------------------------------------------------- *)
(* count *)

let count_tokens_arg =
  Arg.(value & opt int 16 & info [ "tokens" ] ~docv:"K" ~doc:"Tokens to shepherd sequentially.")

let count_cmd =
  let run net k =
    let w = T.input_width net in
    let runs = E.token_run net (List.init k (fun i -> i mod w)) in
    List.iteri
      (fun i (wire, v) ->
        Printf.printf "token %2d: in wire %d, out wire %d, counter value %d\n" i (i mod w) wire v)
      runs
  in
  Cmd.v
    (Cmd.info "count"
       ~doc:"Shepherd tokens sequentially and print the Fetch&Increment values they obtain.")
    Term.(const run $ network_term $ count_tokens_arg)

(* ---------------------------------------------------------------- *)
(* save / load *)

let save_cmd =
  let run net = print_string (Cn_network.Codec.to_string net) in
  Cmd.v
    (Cmd.info "save" ~doc:"Serialize a network to the textual wire format on stdout.")
    Term.(const run $ network_term)

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"File containing a serialized network.")

let restore_cmd =
  let run file trials =
    let text = In_channel.with_open_text file In_channel.input_all in
    match Cn_network.Codec.of_string text with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok net ->
        Printf.printf "loaded: %s\n" (Format.asprintf "%a" T.pp net);
        let rng = Random.State.make [| 42 |] in
        let w = T.input_width net in
        let step_ok = ref 0 in
        for _ = 1 to trials do
          let x = Array.init w (fun _ -> Random.State.int rng 100) in
          if S.is_step (E.quiescent net x) then incr step_ok
        done;
        Printf.printf "step property held on %d/%d random loads%s\n" !step_ok trials
          (if !step_ok = trials then " (counting network)" else "")
  in
  Cmd.v
    (Cmd.info "restore"
       ~doc:"Load a serialized network from a file, validate it, and probe its behaviour \
             (the inverse of $(b,save); $(b,load) is the TCP load rig).")
    Term.(const run $ file_arg $ trials_arg)

(* ---------------------------------------------------------------- *)
(* feasible *)

let feasible_cmd =
  let width_pos =
    Arg.(required & pos 0 (some int) None & info [] ~docv:"WIDTH" ~doc:"Target output width.")
  in
  let balancers_arg =
    Arg.(
      value
      & opt (list int) [ 2 ]
      & info [ "balancers" ] ~docv:"Q1,Q2,..."
          ~doc:"Available balancer output widths (default: 2).")
  in
  let run width balancer_outputs =
    match Cn_analysis.Feasibility.blocking_prime ~width ~balancer_outputs with
    | exception Invalid_argument m ->
        prerr_endline m;
        exit 1
    | None ->
        Printf.printf
          "width %d passes the Aharonson-Attiya criterion for balancer outputs {%s}\n" width
          (String.concat ", " (List.map string_of_int balancer_outputs))
    | Some p ->
        Printf.printf
          "impossible: prime %d divides width %d but none of the balancer outputs {%s}\n" p width
          (String.concat ", " (List.map string_of_int balancer_outputs));
        exit 1
  in
  Cmd.v
    (Cmd.info "feasible"
       ~doc:"Check the Aharonson-Attiya impossibility criterion for a counting-network width.")
    Term.(const run $ width_pos $ balancers_arg)

(* ---------------------------------------------------------------- *)
(* latency *)

let latency_cmd =
  let rounds_arg =
    Arg.(value & opt int 50 & info [ "rounds" ] ~docv:"R" ~doc:"Tokens per process.")
  in
  let think_arg =
    Arg.(value & opt float 0.0 & info [ "think" ] ~docv:"T" ~doc:"Think time between tokens.")
  in
  let run net n rounds think =
    let r = Cn_sim.Timed.closed_loop ~think ~jitter:0.3 net ~n ~rounds in
    Printf.printf "tokens        %d\n" r.Cn_sim.Timed.tokens;
    Printf.printf "makespan      %.2f\n" r.Cn_sim.Timed.makespan;
    Printf.printf "avg latency   %.2f (depth %d)\n" r.Cn_sim.Timed.avg_latency (T.depth net);
    Printf.printf "max latency   %.2f\n" r.Cn_sim.Timed.max_latency;
    Printf.printf "avg queueing  %.2f\n" r.Cn_sim.Timed.avg_wait;
    Printf.printf "throughput    %.2f tokens/unit (first-layer cap %d)\n"
      r.Cn_sim.Timed.throughput (T.input_width net / 2)
  in
  Cmd.v
    (Cmd.info "latency"
       ~doc:"Discrete-event latency simulation: closed loop of N processes over the network.")
    Term.(const run $ network_term $ concurrency_arg $ rounds_arg $ think_arg)

(* ---------------------------------------------------------------- *)
(* check *)

let check_cmd =
  let module Engine = Cn_check.Engine in
  let preemptions_arg =
    Arg.(
      value
      & opt int 2
      & info [ "p"; "preemptions" ] ~docv:"P"
          ~doc:"Preemption bound: forced context switches per schedule.")
  in
  let scenario_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "scenario" ] ~docv:"NAME" ~doc:"Run only the named scenario.")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"SCHEDULE"
          ~doc:
            "Replay one pinned schedule (semicolon-separated fiber indices) \
             against $(b,--scenario) instead of exploring.")
  in
  let list_arg =
    Arg.(value & flag & info [ "list" ] ~doc:"List scenarios and exit.")
  in
  let selftest_arg =
    Arg.(
      value
      & flag
      & info [ "selftest" ]
          ~doc:
            "Also run the checker against the deliberately buggy pre-fix \
             models; both must fail, and their pinned schedules must replay.")
  in
  let run preemptions scenario replay list selftest =
    let catalogue = Cn_check.Scenarios.all @ Cn_check.Fabric_scenarios.all in
    let scenarios =
      match scenario with
      | None -> catalogue
      | Some name -> (
          match List.assoc_opt name catalogue with
          | Some mk -> [ (name, mk) ]
          | None ->
              Printf.eprintf "unknown scenario %s (try --list)\n" name;
              exit 1)
    in
    if list then
      List.iter (fun (name, _) -> print_endline name) catalogue
    else begin
      let failed = ref false in
      (match replay with
      | Some sched ->
          let sched = Engine.schedule_of_string sched in
          List.iter
            (fun (name, mk) ->
              match Engine.replay mk sched with
              | None -> Printf.printf "%-24s replay pass\n" name
              | Some f ->
                  failed := true;
                  Printf.printf "%-24s replay FAIL: %s\n" name f.Engine.reason)
            scenarios
      | None ->
          List.iter
            (fun (name, mk) ->
              let t0 = Unix.gettimeofday () in
              let o = Engine.explore ~preemptions mk in
              let s = o.Engine.stats in
              match o.Engine.failure with
              | None ->
                  Printf.printf
                    "%-24s pass  %6d interleavings, %d pruned%s (%.1fs)\n" name
                    s.Engine.interleavings s.Engine.prunes
                    (if s.Engine.complete then "" else ", budget exhausted")
                    (Unix.gettimeofday () -. t0)
              | Some f ->
                  failed := true;
                  Printf.printf "%-24s FAIL  %s\n  replay with: [%s]\n" name
                    f.Engine.reason
                    (Engine.schedule_to_string f.Engine.schedule))
            scenarios);
      if selftest then begin
        let expect_fail name mk pinned =
          (match (Engine.explore ~preemptions mk).Engine.failure with
          | Some f ->
              Printf.printf "%-24s found: %s\n" name f.Engine.reason
          | None ->
              failed := true;
              Printf.printf "%-24s MISSED the planted bug\n" name);
          match Engine.replay mk pinned with
          | Some _ -> Printf.printf "%-24s pinned schedule reproduces\n" name
          | None ->
              failed := true;
              Printf.printf "%-24s pinned schedule no longer fails\n" name
        in
        expect_fail "selftest-lifecycle" Cn_check.Selftest.lifecycle_race
          Cn_check.Selftest.lifecycle_schedule;
        expect_fail "selftest-admission" Cn_check.Selftest.admission_race
          Cn_check.Selftest.admission_schedule
      end;
      if !failed then exit 1
    end
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Model-check the service layer: explore bounded-preemption \
          interleavings of drain/shutdown/submit races deterministically.")
    Term.(
      const run $ preemptions_arg $ scenario_arg $ replay_arg $ list_arg
      $ selftest_arg)

(* ---------------------------------------------------------------- *)
(* lint *)

let lint_cmd =
  let module L = Cn_lint.Cert in
  let module P = Cn_lint.Portfolio in
  let module M = Cn_lint.Mutate in
  let all_flag =
    Arg.(
      value
      & flag
      & info [ "all" ]
          ~doc:"Certify the whole built-in portfolio (every family at widths 2..64, both \
                compiled layouts) instead of one network.")
  in
  let hybrids_flag =
    Arg.(
      value
      & flag
      & info [ "hybrids" ]
          ~doc:"Run the merger-substituted hybrid campaign: every (family x merger strategy x \
                scope x width <= 64) combination, certified bounded-exhaustively or refuted \
                with a replayable counterexample.  Refutations are results; only an \
                unadjudicated certificate fails.")
  in
  let mutate_flag =
    Arg.(
      value
      & flag
      & info [ "mutate" ]
          ~doc:"Run the seeded mutant battery: wire flips, dropped balancers, corrupted port \
                masks, periodic-stage corruptions and truncated CSR rows, each of which must \
                be rejected with its pinned diagnostic code.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also write the machine-readable report to $(docv).")
  in
  let budget_arg =
    Arg.(
      value
      & opt int 20_000
      & info [ "budget" ] ~docv:"N"
          ~doc:"Bounded-exhaustive input-space budget per certificate (default 20000).")
  in
  let layouts_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("padded", [ Cn_runtime.Network_runtime.Padded_csr ]);
               ("unpadded", [ Cn_runtime.Network_runtime.Unpadded_nested ]);
               ( "both",
                 [
                   Cn_runtime.Network_runtime.Padded_csr;
                   Cn_runtime.Network_runtime.Unpadded_nested;
                 ] );
             ])
          [
            Cn_runtime.Network_runtime.Padded_csr; Cn_runtime.Network_runtime.Unpadded_nested;
          ]
      & info [ "layout" ] ~docv:"LAYOUT"
          ~doc:"Compiled layout(s) for the CSR-faithfulness pass: $(b,padded), $(b,unpadded) or \
                $(b,both) (default).")
  in
  let lint_file_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "file" ] ~docv:"FILE"
          ~doc:"Lint a serialized network from $(docv) (full well-formedness diagnostics, then \
                certification without a reference construction) instead of a built family.")
  in
  (* Family-specific certification spec: expectation, closed-form
     depth, the trusted reconstruction with its citation (hybrids have
     none — no theorem covers a substituted merger), an optional
     isomorphism hint, and the merger tag recorded in the certificate. *)
  let spec_of_family family ~w ~t ~delta ~merger ~scope =
    let t' = match t with Some t -> t | None -> w in
    let lgw =
      let rec go acc v = if v <= 1 then acc else go (acc + 1) (v / 2) in
      go 0 w
    in
    match (family, merger) with
    | Counting, Cn_core.Merger.Difference ->
        ( Printf.sprintf "C(%d,%d)" w t',
          L.Counting,
          Cn_core.Counting.depth_formula ~w,
          Some ((fun () -> Cn_core.Counting.network ~w ~t:t'), "Theorems 4.1/4.2"),
          None, None )
    | Counting, strategy ->
        let tag =
          Cn_core.Merger.strategy_name strategy ^ "/" ^ Cn_core.Merger.scope_name scope
        in
        ( Printf.sprintf "C(%d,%d)[%s]" w t' tag,
          L.Counting,
          Cn_core.Counting.depth_formula_with ~merger:strategy ~scope ~w ~t:t',
          None, None, Some tag )
    | Merging, Cn_core.Merger.Difference ->
        ( Printf.sprintf "M(%d,%d)" w delta,
          L.Merging delta,
          Cn_core.Merging.depth_formula ~delta,
          Some ((fun () -> Cn_core.Merging.network ~t:w ~delta), "Lemma 3.1"), None, None )
    | Merging, strategy ->
        let tag = Cn_core.Merger.strategy_name strategy in
        ( Printf.sprintf "M(%d,%d)[%s]" w delta tag,
          L.Merging delta,
          Cn_core.Merger.depth_formula ~strategy ~t:w ~delta,
          None, None, Some tag )
    | Bitonic, _ ->
        ( Printf.sprintf "BITONIC(%d)" w,
          L.Counting,
          Cn_baselines.Bitonic.depth_formula ~w,
          Some ((fun () -> Cn_baselines.Bitonic.network w), "Aspnes-Herlihy-Shavit, Section 3"),
          None, None )
    | Periodic, _ ->
        ( Printf.sprintf "PERIODIC(%d)" w,
          L.Counting,
          Cn_baselines.Periodic.depth_formula ~w,
          Some ((fun () -> Cn_baselines.Periodic.network w), "Aspnes-Herlihy-Shavit, Section 4"),
          None, None )
    | Diffracting, _ ->
        ( Printf.sprintf "DIFF(%d)" w,
          L.Counting,
          Cn_baselines.Diffracting.depth_formula ~w,
          Some ((fun () -> Cn_baselines.Diffracting.network w), "Shavit-Zemach"), None, None )
    | Butterfly_fwd, _ ->
        ( Printf.sprintf "D(%d)" w,
          L.Smoothing (Cn_core.Butterfly.smoothness_bound ~w),
          Cn_core.Butterfly.depth_formula ~w,
          Some ((fun () -> Cn_core.Butterfly.forward w), "Lemma 5.2"), None, None )
    | Butterfly_bwd, _ ->
        ( Printf.sprintf "E(%d)" w,
          L.Smoothing (Cn_core.Butterfly.smoothness_bound ~w),
          Cn_core.Butterfly.depth_formula ~w,
          Some ((fun () -> Cn_core.Butterfly.forward w), "Lemma 5.3"),
          Some (Cn_core.Butterfly.lemma_5_3_mapping w), None )
    | Ladder, _ ->
        ( Printf.sprintf "L(%d)" w,
          L.Half_split,
          1,
          Some ((fun () -> Cn_core.Ladder.network w), "Section 4.1"), None, None )
    | C_prime, _ ->
        ( Printf.sprintf "C'(%d,%d)" w t',
          L.Smoothing (Cn_core.Blocks.smoothing_parameter ~w ~t:t'),
          lgw,
          Some ((fun () -> Cn_core.Blocks.c_prime ~w ~t:t'), "Lemma 6.6"), None, None )
  in
  let run family w t delta merger scope all hybrids mutate json budget layouts file =
    let failed = ref false in
    let certs = ref [] in
    let mutants = ref [] in
    (match file with
    | Some path -> (
        let text = In_channel.with_open_text path In_channel.input_all in
        match Cn_network.Codec.parse_raw text with
        | Error e ->
            prerr_endline e;
            exit 1
        | Ok raw -> (
            match Cn_network.Raw.validate raw with
            | Error violations ->
                List.iter
                  (fun v ->
                    Format.printf "%a@."
                      Cn_lint.Diagnostic.pp
                      (Cn_lint.Diagnostic.of_violation ~pass:"wellformed" ~subject:path v))
                  violations;
                failed := true
            | Ok net ->
                let cert =
                  L.certify ~exhaustive_budget:budget ~layouts ~subject:path
                    ~expectation:L.Counting net
                in
                certs := [ cert ];
                Format.printf "%a@." L.pp cert;
                if not (L.ok cert) then failed := true))
    | None ->
        if all then begin
          let cs = P.run ~exhaustive_budget:budget ~layouts () in
          certs := !certs @ cs;
          Format.printf "%a@?" P.pp_summary cs;
          if not (P.all_ok cs) then failed := true
        end;
        if hybrids then begin
          let cs = P.run_hybrids ~exhaustive_budget:budget ~layouts () in
          certs := !certs @ cs;
          Format.printf "%a@?" P.pp_hybrid_summary cs;
          (* A refuted hybrid is an adjudicated result, not a failure;
             only an unexplained diagnostic fails the campaign. *)
          if not (P.all_adjudicated cs) then failed := true
        end;
        if (not all) && (not hybrids) && not mutate then begin
          let subject, expectation, expected_depth, reference, iso_hint, merger_tag =
            spec_of_family family ~w ~t ~delta ~merger ~scope
          in
          match
            let net = build family ~w ~t ~delta ~merger ~scope in
            let reference = Option.map (fun (f, cite) -> (f (), cite)) reference in
            L.certify ?reference ?iso_hint ?merger:merger_tag ~expected_depth
              ~exhaustive_budget:budget ~layouts ~subject ~expectation net
          with
          | exception Invalid_argument m ->
              prerr_endline m;
              exit 1
          | cert ->
              certs := [ cert ];
              Format.printf "%a@." L.pp cert;
              if not (L.ok cert) then failed := true
        end);
    if mutate then begin
      let outcomes = M.battery () in
      mutants := outcomes;
      List.iter (fun o -> Format.printf "%a@." M.pp_outcome o) outcomes;
      let escaped = List.filter (fun o -> not o.M.rejected) outcomes in
      if escaped <> [] then failed := true;
      Format.printf "%d mutants, %s@." (List.length outcomes)
        (if escaped = [] then "all rejected" else Printf.sprintf "%d ESCAPED" (List.length escaped))
    end;
    Option.iter
      (fun path ->
        let buf = Buffer.create 4096 in
        Buffer.add_string buf
          (Printf.sprintf "{\"schema_version\":%d,\"certificates\":[" P.schema_version);
        List.iteri
          (fun i c ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf (L.to_json c))
          !certs;
        Buffer.add_string buf "],\"mutants\":";
        Buffer.add_string buf (M.to_json !mutants);
        Buffer.add_string buf (Printf.sprintf ",\"ok\":%b}" (not !failed));
        Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (Buffer.contents buf)))
      json;
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically certify topologies and their compiled runtimes: well-formedness, \
             abstract interpretation, bounded-exhaustive and structural step certificates \
             with two-token escalation, CSR faithfulness in both layouts, the \
             merger-substituted hybrid campaign, and the seeded mutant battery.")
    Term.(
      const run $ family_arg $ width_arg $ out_width_arg $ delta_arg $ merger_arg
      $ merger_scope_arg $ all_flag $ hybrids_flag $ mutate_flag $ json_arg $ budget_arg
      $ layouts_arg $ lint_file_arg)

(* ---------------------------------------------------------------- *)
(* serve / load: the countnetd wire protocol, from this binary. *)

let host_arg =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"Address to bind (serve) or connect to (load).")

let port_arg ~doc = Arg.(value & opt int 0 & info [ "port" ] ~docv:"PORT" ~doc)

let serve_cmd =
  let module D = Cn_proto.Daemon in
  let fail_usage msg =
    prerr_endline ("countnet serve: " ^ msg);
    exit 2
  in
  let queue_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "queue" ] ~docv:"SLOTS"
          ~doc:"Per-lane submission slots before Overloaded (default: the service's).")
  in
  let serve_max_batch_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-batch" ] ~docv:"N" ~doc:"Operations one combined batch may serve.")
  in
  let serve_metrics_flag =
    Arg.(
      value & flag
      & info [ "metrics" ] ~doc:"Compile the served runtime with the observability layer.")
  in
  let serve_shards_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "shards" ] ~docv:"N"
          ~doc:"Serve an N-shard counter fabric (each shard its own certified C(w,t), \
                consistent-hash session routing, combining global reads) instead of a \
                single service.")
  in
  let run host port w t queue max_batch metrics policy shards =
    if port < 0 || port > 65535 then
      fail_usage (Printf.sprintf "--port must be in [0, 65535] (got %d)" port);
    if w <= 0 then fail_usage (Printf.sprintf "--width must be positive (got %d)" w);
    (match t with
    | Some t when t <= 0 -> fail_usage (Printf.sprintf "--out-width must be positive (got %d)" t)
    | _ -> ());
    (match queue with
    | Some q when q <= 0 -> fail_usage (Printf.sprintf "--queue must be positive (got %d)" q)
    | _ -> ());
    (match max_batch with
    | Some b when b <= 0 ->
        fail_usage (Printf.sprintf "--max-batch must be positive (got %d)" b)
    | _ -> ());
    (match shards with
    | Some n when n <= 0 -> fail_usage (Printf.sprintf "--shards must be positive (got %d)" n)
    | _ -> ());
    let cfg =
      {
        D.host;
        port;
        width = w;
        out_width = t;
        queue;
        max_batch;
        metrics;
        validate = policy;
        shards;
      }
    in
    match D.serve cfg with
    | code -> exit code
    | exception Invalid_argument msg -> fail_usage msg
    | exception Cn_fabric.Fabric.Rejected msg -> fail_usage ("topology rejected: " ^ msg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run countnetd in the foreground: serve the C(w,t) counter over the length-prefixed \
             TCP protocol until SIGTERM, then drain through the validator quiescence path.")
    Term.(
      const run $ host_arg
      $ port_arg ~doc:"TCP port to bind (0 = ephemeral; the bound port is printed)."
      $ width_arg $ out_width_arg $ queue_arg $ serve_max_batch_arg $ serve_metrics_flag
      $ Arg.(
          value
          & opt policy_conv Cn_runtime.Validator.Strict
          & info [ "validate" ] ~docv:"POLICY"
              ~doc:"Quiescence policy at the SIGTERM drain: $(b,strict) (default), $(b,log) or \
                    $(b,off).  The exit code reports the verdict either way.")
      $ serve_shards_arg)

let load_cmd =
  let module L = Cn_proto.Load in
  let module W = Cn_service.Workload in
  let fail_usage msg =
    prerr_endline ("countnet load: " ^ msg);
    exit 2
  in
  let clients_arg =
    Arg.(value & opt int 2 & info [ "clients" ] ~docv:"N" ~doc:"Concurrent client threads.")
  in
  let conns_arg =
    Arg.(
      value & opt int 2
      & info [ "conns" ] ~docv:"N" ~doc:"TCP connections (server sessions) per client.")
  in
  let load_ops_arg =
    Arg.(
      value & opt int 1000
      & info [ "ops" ] ~docv:"N" ~doc:"Operations each client performs.")
  in
  let load_dec_ratio_arg =
    Arg.(
      value & opt float 0.
      & info [ "dec-ratio" ] ~docv:"R"
          ~doc:"Probability an operation is a Fetch&Decrement (prefix non-negative per client).")
  in
  let load_skew_arg =
    Arg.(
      value & opt string "uniform"
      & info [ "skew" ] ~docv:"SKEW"
          ~doc:"Connection-pick skew: $(b,uniform) or $(b,zipf:ALPHA).")
  in
  let load_arrival_arg =
    Arg.(
      value & opt string "closed"
      & info [ "arrival" ] ~docv:"ARRIVAL"
          ~doc:"Arrival process: $(b,closed[:THINK]) or $(b,burst:N:PAUSE).")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")
  in
  let run host port clients conns ops dec_ratio skew arrival seed =
    if port <= 0 || port > 65535 then
      fail_usage (Printf.sprintf "--port must be in [1, 65535] (got %d)" port);
    if clients <= 0 then fail_usage (Printf.sprintf "--clients must be positive (got %d)" clients);
    if conns <= 0 then fail_usage (Printf.sprintf "--conns must be positive (got %d)" conns);
    if ops <= 0 then fail_usage (Printf.sprintf "--ops must be positive (got %d)" ops);
    if dec_ratio < 0. || dec_ratio > 1. then
      fail_usage (Printf.sprintf "--dec-ratio must be in [0, 1] (got %g)" dec_ratio);
    let spec =
      {
        L.clients;
        conns_per_client = conns;
        ops_per_client = ops;
        dec_ratio;
        skew = parse_skew ~fail:fail_usage skew;
        arrival = parse_arrival ~fail:fail_usage arrival;
        seed;
      }
    in
    let stats =
      try L.run ~host ~port spec
      with Unix.Unix_error (err, _, _) ->
        prerr_endline
          (Printf.sprintf "countnet load: cannot reach %s:%d (%s)" host port
             (Unix.error_message err));
        exit 1
    in
    Printf.printf
      "load: %d clients x %d conns x %d ops -> %d completed (%d inc, %d dec), %d overloaded, \
       %d closed, %d disconnects\n"
      clients conns ops stats.L.completed stats.L.increments stats.L.decrements
      stats.L.rejected stats.L.closed stats.L.disconnects;
    Printf.printf "load: %.3fs wall (%.0f ops/s), %.3fs busy (%.0f ops/s)\n" stats.L.seconds
      stats.L.ops_per_sec stats.L.busy_seconds stats.L.busy_ops_per_sec;
    (match stats.L.latency with
    | Some l ->
        Printf.printf
          "load: rtt p50 %.1f us, p95 %.1f us, p99 %.1f us, max %.1f us (%d observed, %d kept)\n"
          (l.Cn_runtime.Metrics.p50 /. 1e3)
          (l.Cn_runtime.Metrics.p95 /. 1e3)
          (l.Cn_runtime.Metrics.p99 /. 1e3)
          (l.Cn_runtime.Metrics.max /. 1e3)
          l.Cn_runtime.Metrics.observed l.Cn_runtime.Metrics.kept
    | None -> print_endline "load: no completed operations; no latency summary");
    (* A run that completed nothing because every connection failed is an
       error, not a quiet success: distinguish "server unreachable" from
       "rig survived a mid-run shutdown" (which still completes some ops). *)
    if stats.L.completed = 0 && stats.L.disconnects > 0 then (
      prerr_endline
        (Printf.sprintf "countnet load: no operations completed against %s:%d" host port);
      exit 1);
    exit 0
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:"Drive a running countnetd over TCP with the synthetic client population \
             (Zipf/bursty/dec-ratio) and report throughput plus round-trip latency \
             percentiles.")
    Term.(
      const run $ host_arg
      $ port_arg ~doc:"TCP port of the countnetd to drive (required)."
      $ clients_arg $ conns_arg $ load_ops_arg $ load_dec_ratio_arg $ load_skew_arg
      $ load_arrival_arg $ seed_arg)

(* ---------------------------------------------------------------- *)

let main_cmd =
  let doc = "counting networks: build, inspect, verify, simulate, and run them" in
  Cmd.group
    (Cmd.info "countnet" ~version:"1.0.0" ~doc)
    [
      draw_cmd; depth_cmd; verify_cmd; simulate_cmd; throughput_cmd; sort_cmd; count_cmd;
      iso_cmd; save_cmd; restore_cmd; feasible_cmd; latency_cmd; check_cmd; lint_cmd;
      serve_cmd; load_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
