(* countnetd: the standalone wire-protocol counter daemon.

   The process body lives in Cn_proto.Daemon (shared with `countnet
   serve`); this executable is the small-surface production entry:
   C(w,t) only, foreground, SIGTERM/SIGINT drain. *)

open Cmdliner

module D = Cn_proto.Daemon
module V = Cn_runtime.Validator

let fail_usage msg =
  prerr_endline ("countnetd: " ^ msg);
  exit 2

let host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"Address to bind.")

let port_arg =
  Arg.(
    value & opt int 0
    & info [ "port" ] ~docv:"PORT"
        ~doc:"TCP port to bind (0 = ephemeral; the bound port is printed on stdout).")

let width_arg =
  Arg.(
    value & opt int 16
    & info [ "w"; "width" ] ~docv:"W" ~doc:"Input width of C(w,t) (a power of two).")

let out_width_arg =
  Arg.(
    value & opt (some int) None
    & info [ "t"; "out-width" ] ~docv:"T" ~doc:"Output width (default: w).")

let queue_arg =
  Arg.(
    value & opt (some int) None
    & info [ "queue" ] ~docv:"SLOTS"
        ~doc:"Per-lane submission slots before Overloaded replies (default: the service's).")

let max_batch_arg =
  Arg.(
    value & opt (some int) None
    & info [ "max-batch" ] ~docv:"N" ~doc:"Operations one combined batch may serve.")

let metrics_flag =
  Arg.(
    value & flag
    & info [ "metrics" ] ~doc:"Compile the served runtime with the observability layer.")

let shards_arg =
  Arg.(
    value & opt (some int) None
    & info [ "shards" ] ~docv:"N"
        ~doc:"Serve an N-shard counter fabric (each shard its own certified C(w,t), \
              consistent-hash session routing, combining global reads) instead of a \
              single service.")

let policy_conv =
  let parse s =
    match V.policy_of_string s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "unknown policy %S (expected strict, log or off)" s))
  in
  Arg.conv (parse, fun ppf p -> Format.pp_print_string ppf (V.policy_to_string p))

let validate_arg =
  Arg.(
    value & opt policy_conv V.Strict
    & info [ "validate" ] ~docv:"POLICY"
        ~doc:"Quiescence policy at the SIGTERM drain: $(b,strict) (default), $(b,log) or \
              $(b,off).  The exit code reports the verdict either way.")

let run host port w t queue max_batch metrics validate shards =
  if port < 0 || port > 65535 then
    fail_usage (Printf.sprintf "--port must be in [0, 65535] (got %d)" port);
  if w <= 0 then fail_usage (Printf.sprintf "--width must be positive (got %d)" w);
  (match t with
  | Some t when t <= 0 -> fail_usage (Printf.sprintf "--out-width must be positive (got %d)" t)
  | _ -> ());
  (match queue with
  | Some q when q <= 0 -> fail_usage (Printf.sprintf "--queue must be positive (got %d)" q)
  | _ -> ());
  (match max_batch with
  | Some b when b <= 0 ->
      fail_usage (Printf.sprintf "--max-batch must be positive (got %d)" b)
  | _ -> ());
  (match shards with
  | Some n when n <= 0 -> fail_usage (Printf.sprintf "--shards must be positive (got %d)" n)
  | _ -> ());
  let cfg =
    { D.host; port; width = w; out_width = t; queue; max_batch; metrics; validate; shards }
  in
  match D.serve cfg with
  | code -> exit code
  | exception Invalid_argument msg -> fail_usage msg
  | exception Cn_fabric.Fabric.Rejected msg -> fail_usage ("topology rejected: " ^ msg)

let cmd =
  Cmd.v
    (Cmd.info "countnetd" ~version:"1.0.0"
       ~doc:
         "Serve the C(w,t) counting-network counter over a length-prefixed TCP protocol; \
          SIGTERM drains through the validator quiescence path.")
    Term.(
      const run $ host_arg $ port_arg $ width_arg $ out_width_arg $ queue_arg $ max_batch_arg
      $ metrics_flag $ validate_arg $ shards_arg)

let () = exit (Cmd.eval cmd)
