#!/bin/sh
# Gate on the LINT_certificates.json payload before it is uploaded as a
# CI artifact: the schema must be the expected version, and no classic
# (non-hybrid) certificate may be refuted or otherwise not-ok.  Hybrid
# rows (those with a non-null "merger" field) are allowed to be Refuted
# — a refutation with a pinned counterexample is a campaign result —
# but classic rows turning Refuted means a certified family regressed.
#
# Usage: sh scripts/check_certificates.sh LINT_certificates.json
set -eu

FILE=${1:-LINT_certificates.json}

[ -f "$FILE" ] || { echo "check-certificates: $FILE not found" >&2; exit 1; }

python3 - "$FILE" <<'EOF'
import json, sys

path = sys.argv[1]
with open(path) as f:
    payload = json.load(f)

EXPECTED_SCHEMA = 2
schema = payload.get("schema_version")
if schema != EXPECTED_SCHEMA:
    sys.exit(f"check-certificates: schema_version {schema!r}, expected {EXPECTED_SCHEMA}")

bad = []
for row in payload.get("certificates", []):
    classic = row.get("merger") is None
    refuted = str(row.get("evidence", "")).startswith("refuted")
    if classic and (refuted or not row.get("ok", False)):
        bad.append(f"{row.get('subject')}: ok={row.get('ok')} "
                   f"evidence={row.get('evidence')}")
    if not classic and not (row.get("ok", False) or refuted):
        bad.append(f"{row.get('subject')}: hybrid unadjudicated "
                   f"(ok={row.get('ok')} evidence={row.get('evidence')})")

if bad:
    print("check-certificates: unexpected certificate rows:", file=sys.stderr)
    for line in bad:
        print(f"  {line}", file=sys.stderr)
    sys.exit(1)

n = len(payload.get("certificates", []))
hybrids = sum(1 for r in payload.get("certificates", []) if r.get("merger") is not None)
print(f"check-certificates: {n} rows ok ({hybrids} hybrid, schema v{schema})")
EOF
