#!/bin/sh
# Loopback smoke test for the countnetd wire protocol, as a real
# process pair: start countnetd on an ephemeral port, drive it with
# two concurrent `countnet load` clients, then SIGTERM it under a
# third in-flight load and require a clean Strict-validated drain
# (exit 0 and the "drain ok" line).
#
# Run from the repository root, after `dune build`:
#   sh scripts/serve_smoke.sh
set -eu

COUNTNETD=${COUNTNETD:-_build/default/bin/countnetd.exe}
COUNTNET=${COUNTNET:-_build/default/bin/countnet.exe}
OUT=$(mktemp)
trap 'rm -f "$OUT"' EXIT

fail() {
  echo "serve-smoke: $1" >&2
  echo "--- countnetd output ---" >&2
  cat "$OUT" >&2
  exit 1
}

"$COUNTNETD" --width 16 --out-width 16 --validate strict >"$OUT" 2>&1 &
DAEMON=$!

# The first stdout line carries the bound port; poll for it.
PORT=
for _ in $(seq 1 50); do
  PORT=$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\) .*/\1/p' "$OUT")
  [ -n "$PORT" ] && break
  sleep 0.1
done
[ -n "$PORT" ] || fail "countnetd never reported its port"
echo "serve-smoke: countnetd (pid $DAEMON) on port $PORT"

# Two concurrent clients, connection churn via distinct short runs.
"$COUNTNET" load --port "$PORT" --clients 2 --conns 2 --ops 400 \
  --dec-ratio 0.3 --skew zipf:1.1 &
LOAD1=$!
"$COUNTNET" load --port "$PORT" --clients 2 --conns 2 --ops 400 &
LOAD2=$!
wait "$LOAD1" || fail "first load run failed"
wait "$LOAD2" || fail "second load run failed"

# SIGTERM mid-load: the rig must survive the shutdown (exit 0, counting
# disconnects) and the daemon must drain clean.
"$COUNTNET" load --port "$PORT" --clients 2 --conns 2 --ops 2000000 \
  --arrival closed:0.0002 >/dev/null &
LOAD3=$!
sleep 0.3
kill -TERM "$DAEMON"
wait "$LOAD3" || fail "mid-shutdown load run failed"
if wait "$DAEMON"; then :; else fail "countnetd exited non-zero after SIGTERM"; fi
grep -q "drain ok" "$OUT" || fail "no clean drain reported"
echo "serve-smoke: ok ($(grep 'drain ok' "$OUT"))"
