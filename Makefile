# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench micro bench-runtime bench-smoke bench-service \
        bench-service-smoke bench-serve bench-serve-smoke bench-fabric \
        bench-fabric-smoke bench-sketch bench-sketch-smoke bench-hybrid \
        bench-hybrid-smoke bench-projected bench-projected-smoke serve-smoke \
        check-metrics check-races lint lint-hybrids examples clean doc

all: build

build:
	dune build @all

test:
	dune runtest --force

bench:
	dune exec bench/main.exe

micro:
	dune exec bench/main.exe -- micro

bench-runtime:
	dune exec bench/main.exe -- runtime

bench-smoke:
	dune exec bench/main.exe -- runtime --smoke

# Combining/elimination front-end vs the naive per-op baseline; appends
# a "service" section to BENCH_runtime.json.
bench-service:
	dune exec bench/main.exe -- service

bench-service-smoke:
	dune exec bench/main.exe -- service --smoke

# Loopback SLO rows for the wire-protocol server: in-process countnetd
# driven by the TCP load rig over 127.0.0.1 (uniform/zipf/mixed/bursty
# scenarios, connection churn, mid-load SIGTERM-equivalent stop with a
# Strict-validated drain).  Appends a "serve" section with rtt
# p50/p95/p99 rows to BENCH_runtime.json.
bench-serve:
	dune exec bench/main.exe -- serve

bench-serve-smoke:
	dune exec bench/main.exe -- serve --smoke

# Elastic sharded fabric: shard-scaling sweep at 1/2/4 shards (fixed vs
# auto-tuned dimensions) plus a hot-resize-under-load row, every run
# gated on token conservation and a Strict shutdown.  Appends a
# "fabric" section to BENCH_runtime.json.
bench-fabric:
	dune exec bench/main.exe -- fabric

bench-fabric-smoke:
	dune exec bench/main.exe -- fabric --smoke

# Approximate counting tier: the accuracy/throughput/memory frontier of
# the HLL and sparse-graph backends against the exact network-backed
# counter.  Gated on the HLL 95% error bound and the >= 10x sparse
# memory win at 100k keys; the smoke variant shrinks the streams but
# keeps both correctness gates.  Appends a "sketch" section to
# BENCH_runtime.json.
bench-sketch:
	dune exec bench/main.exe -- sketch

bench-sketch-smoke:
	dune exec bench/main.exe -- sketch --smoke

# Merger-strategy comparison at C(16,16): depth, size and throughput of
# the classic difference merger vs the periodic3 and pk hybrids, each
# row tagged with its two-token step-battery verdict.  Appends a
# "hybrid" section to BENCH_runtime.json.
bench-hybrid:
	dune exec bench/main.exe -- hybrid

bench-hybrid-smoke:
	dune exec bench/main.exe -- hybrid --smoke

# Out-of-process loopback smoke test: real countnetd daemon + two
# concurrent `countnet load` clients + SIGTERM under load, asserting a
# clean quiescent drain.  See doc/protocol.md for the wire format.
serve-smoke: build
	sh scripts/serve_smoke.sh

# Measured + contention-model-projected curves: certifies the
# precompiled routing image (Csr_lint), calibrates the single-core
# crossing cost, and appends projected 2-64 domain central-vs-network
# rows (Cn_analysis.Projection) to BENCH_runtime.json next to the
# measured sweeps.
bench-projected:
	dune exec bench/main.exe -- runtime --projected
	dune exec bench/main.exe -- service --projected

bench-projected-smoke:
	dune exec bench/main.exe -- runtime --smoke --projected
	dune exec bench/main.exe -- service --smoke --projected

# Deterministic race check of the service layer: every scenario explored
# to a preemption bound of 3, plus the checker's own selftest against
# the deliberately buggy pre-fix models.  Seconds, not minutes.
check-races:
	dune exec bin/countnet.exe -- check -p 3 --selftest

# Static certification: every portfolio family in both compiled layouts,
# the merger-substituted hybrid campaign (certified or refuted with
# pinned counterexamples), the seeded mutant battery (all must be
# rejected with their pinned diagnostics), and the source-level atomics
# lint over lib/ and bin/.  Writes the schema_version-2 certificate
# payload to LINT_certificates.json and fails if any classic row is not
# ok or if a hybrid row is unadjudicated.
lint:
	dune exec bin/countnet.exe -- lint --all --hybrids --mutate --json LINT_certificates.json
	dune exec bin/atomlint.exe -- lib bin
	sh scripts/check_certificates.sh LINT_certificates.json

# Just the hybrid campaign (< 30 s): every (family x merger x scope x
# width <= 64) combination, certified bounded-exhaustively or refuted
# with a replayable counterexample.
lint-hybrids:
	dune exec bin/countnet.exe -- lint --hybrids

# Quick end-to-end check of the observability layer: metrics JSON out,
# quiescence validator strict.
check-metrics:
	dune exec bin/countnet.exe -- throughput -f counting -w 16 --domains 4 \
	  --ops 2000 --mode cas --metrics --validate strict | grep '"schema_version"'

examples:
	for e in quickstart load_balancing barrier_sync id_server \
	         contention_lab ticket_pool diffraction_demo sorting_demo; do \
	  echo "== $$e"; dune exec examples/$$e.exe; done

clean:
	dune clean
