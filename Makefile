# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench micro bench-runtime bench-smoke examples clean doc

all: build

build:
	dune build @all

test:
	dune runtest --force

bench:
	dune exec bench/main.exe

micro:
	dune exec bench/main.exe -- micro

bench-runtime:
	dune exec bench/main.exe -- runtime

bench-smoke:
	dune exec bench/main.exe -- runtime --smoke

examples:
	for e in quickstart load_balancing barrier_sync id_server \
	         contention_lab ticket_pool diffraction_demo sorting_demo; do \
	  echo "== $$e"; dune exec examples/$$e.exe; done

clean:
	dune clean
