(* Barrier synchronization — the second motivating problem of the paper's
   introduction.

   Counting networks are not linearizable (Section 1.4.2), so the naive
   "whoever draws the last ticket flips the sense" barrier is unsound: a
   straggler can draw a ticket from the *next* round's block and flip at
   the wrong time.  What counting networks do guarantee is the THRESHOLD
   property (Aspnes-Herlihy-Shavit): the k-th token to leave the last
   output wire does so only after k·t tokens have entered the network.

   So we build the barrier with t = parties: each arrival shepherds one
   token; the token that exits the last wire is the round's threshold
   token — by then every party has arrived — and it alone toggles the
   sense.  Sense reads happen before entering, so flips and waits pair up
   exactly once per round.

   Run with: dune exec examples/barrier_sync.exe *)

module SC = Cn_runtime.Shared_counter

type barrier = {
  counter : SC.t;
  parties : int; (* must equal the network's output width t *)
  sense : bool Atomic.t;
  rounds_flipped : int Atomic.t;
}

let make_barrier ~parties ~counter =
  { counter; parties; sense = Atomic.make false; rounds_flipped = Atomic.make 0 }

let await b ~pid =
  let sense0 = Atomic.get b.sense in
  let v = SC.next b.counter ~pid in
  (* Output wire of the token = v mod t; the last wire (t - 1) carries
     the threshold tokens. *)
  if v mod b.parties = b.parties - 1 then begin
    Atomic.incr b.rounds_flipped;
    Atomic.set b.sense (not sense0)
  end
  else
    while Atomic.get b.sense = sense0 do
      Domain.cpu_relax ()
    done

let () =
  let parties = 8 and rounds = 300 in
  (* C(4, 8): output width = parties. *)
  let net = Cn_core.Counting.network ~w:4 ~t:parties in
  let b = make_barrier ~parties ~counter:(SC.of_topology net) in

  (* Correctness probe: count arrivals per round; the barrier is correct
     iff nobody reaches round r+1 while round r is missing arrivals. *)
  let in_round = Array.init rounds (fun _ -> Atomic.make 0) in
  let violations = Atomic.make 0 in
  let body pid () =
    for r = 0 to rounds - 1 do
      Atomic.incr in_round.(r);
      if r > 0 && Atomic.get in_round.(r - 1) < parties then Atomic.incr violations;
      await b ~pid
    done
  in
  let handles = Array.init parties (fun pid -> Domain.spawn (body pid)) in
  Array.iter Domain.join handles;

  Printf.printf "%d domains x %d barrier rounds over C(4,%d)\n" parties rounds parties;
  Printf.printf "rounds flipped: %d (expected %d)\n" (Atomic.get b.rounds_flipped) rounds;
  Printf.printf "synchronization violations: %d\n" (Atomic.get violations);
  Printf.printf "every round saw all parties: %b\n"
    (Array.for_all (fun c -> Atomic.get c = parties) in_round)
