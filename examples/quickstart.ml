(* Quickstart: build the paper's counting network C(4,8) (Fig. 1), push
   tokens through it, and use it as a concurrent Fetch&Increment counter.

   Run with: dune exec examples/quickstart.exe *)

module T = Cn_network.Topology
module E = Cn_network.Eval
module S = Cn_sequence.Sequence

let () =
  (* 1. Build C(w, t): input width 4, output width 8. *)
  let net = Cn_core.Counting.network ~w:4 ~t:8 in
  Printf.printf "C(4,8): depth %d, %d balancers, %d -> %d wires\n" (T.depth net)
    (T.size net) (T.input_width net) (T.output_width net);

  (* 2. Quiescent behaviour: any input load yields a step output. *)
  let x = [| 6; 2; 5; 4 |] in
  let y = E.quiescent net x in
  Printf.printf "input  %s  (total %d tokens)\n" (S.to_string x) (S.sum x);
  Printf.printf "output %s  (step: %b)\n" (S.to_string y) (S.is_step y);

  (* 3. Token view: shepherd tokens one at a time and read the counter
     values assigned at the output wires (wire i hands out i, i+8, ...). *)
  let runs = E.token_run net [ 0; 1; 2; 3; 0; 1 ] in
  print_string "sequential tokens get values:";
  List.iter (fun (_, v) -> Printf.printf " %d" v) runs;
  print_newline ();

  (* 4. The same network as a shared counter used by 4 domains at once:
     every Fetch&Increment returns a distinct value, and after
     quiescence the values are exactly 0 .. m-1. *)
  let values =
    Cn_runtime.Harness.run_collect
      ~make:(fun () -> Cn_runtime.Shared_counter.of_topology net)
      ~domains:4 ~ops_per_domain:1000 ()
  in
  Printf.printf "4 domains x 1000 increments: values form 0..3999 exactly: %b\n"
    (Cn_runtime.Harness.values_are_a_range values)
