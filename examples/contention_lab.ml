(* Contention lab: an interactive-style tour of the paper's headline
   result using the stall-model simulator — how output width t buys
   lower amortized contention at identical depth (Theorem 6.7).

   Run with: dune exec examples/contention_lab.exe *)

module C = Cn_core.Counting
module Cont = Cn_sim.Contention
module Bounds = Cn_analysis.Bounds

let () =
  let w = 16 in
  let k = Cn_core.Params.ilog2 w in
  Printf.printf "All networks below have input width %d and depth %d.\n" w
    (C.depth_formula ~w);
  Printf.printf "The paper predicts the contention crossover near n = w lg w = %d.\n\n"
    (Bounds.crossover_concurrency ~w);

  let configs =
    [ ("C(w, w)      [regular]", w); ("C(w, w lg w) [recommended]", w * k); ("C(w, w^2)    [extravagant]", w * w) ]
  in
  Printf.printf "%-28s" "stalls/token at n =";
  List.iter (fun n -> Printf.printf " %8d" n) [ 8; 32; 128; 512 ];
  print_newline ();
  List.iter
    (fun (name, t) ->
      let net = C.network ~w ~t in
      Printf.printf "%-28s" name;
      List.iter
        (fun n ->
          let r = Cont.worst ~strategies:[ Cn_sim.Scheduler.Random 1 ] net ~n ~m:(25 * n) in
          Printf.printf " %8.2f" r.Cont.per_token)
        [ 8; 32; 128; 512 ];
      Printf.printf "  (%d balancers)\n" (Cn_network.Topology.size net))
    configs;

  print_newline ();
  Printf.printf "Baselines of the same width:\n";
  List.iter
    (fun (name, net) ->
      Printf.printf "%-28s" name;
      List.iter
        (fun n ->
          let r = Cont.worst ~strategies:[ Cn_sim.Scheduler.Random 1 ] net ~n ~m:(25 * n) in
          Printf.printf " %8.2f" r.Cont.per_token)
        [ 8; 32; 128; 512 ];
      print_newline ())
    [
      ("bitonic", Cn_baselines.Bitonic.network w);
      ("periodic", Cn_baselines.Periodic.network w);
      ("diffracting tree", Cn_baselines.Diffracting.network w);
    ];
  print_newline ();
  Printf.printf "Reading: at n >> %d the wide network beats the bitonic by about lg w = %d x.\n"
    (Bounds.crossover_concurrency ~w) k
