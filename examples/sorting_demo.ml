(* The Section 7 byproduct, end to end: extract the comparator network
   from C(w,w), sort with it, and compare its shape against Batcher's
   classical bitonic sorter.

   Run with: dune exec examples/sorting_demo.exe *)

module Sorting = Cn_core.Sorting

let () =
  let w = 16 in
  let ours = Sorting.of_topology (Cn_core.Counting.network ~w ~t:w) in
  let batcher = Cn_baselines.Batcher.network w in

  Printf.printf "sorting networks on %d channels:\n" w;
  Printf.printf "  %-22s depth %2d, %3d comparators\n" "from C(16,16) (paper)"
    (Sorting.depth ours) (Sorting.comparator_count ours);
  Printf.printf "  %-22s depth %2d, %3d comparators\n" "Batcher bitonic"
    (Sorting.depth batcher) (Sorting.comparator_count batcher);

  let input = [| 42; 7; 99; 3; 56; 21; 88; 14; 63; 35; 77; 9; 50; 28; 91; 1 |] in
  Printf.printf "input:  %s\n" (Cn_sequence.Sequence.to_string input);
  Printf.printf "ours:   %s\n"
    (Cn_sequence.Sequence.to_string (Sorting.apply_ascending ours input));
  Printf.printf "batcher:%s\n"
    (Cn_sequence.Sequence.to_string (Sorting.apply_ascending batcher input));

  (* The 0-1 principle certificate: exhaustive over 2^16 binary inputs. *)
  Printf.printf "0-1 principle certificate (65536 binary inputs): ours=%b batcher=%b\n"
    (Sorting.sorts_zero_one ours) (Sorting.sorts_zero_one batcher);

  (* A butterfly extracted the same way does NOT sort - counting is what
     makes the substitution work. *)
  let butterfly = Sorting.of_topology (Cn_core.Butterfly.forward w) in
  Printf.printf "butterfly D(16) comparators sort? %b (smoothing is not counting)\n"
    (Sorting.sorts_zero_one butterfly)
