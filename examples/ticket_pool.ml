(* A producer/consumer pool built on two counting-network counters — the
   classic "counting networks in action" construction: enqueuers take a
   ticket from one counter and deposit into slot[ticket]; dequeuers take
   a ticket from a second counter and collect from slot[ticket].  Both
   counters hand out each index exactly once, so every item is consumed
   exactly once, with all coordination spread across balancer words.

   Because counting networks are quiescently consistent rather than
   linearizable, this is a POOL (no FIFO order guarantee) — exactly the
   data structure the counting-network literature builds this way.

   Run with: dune exec examples/ticket_pool.exe *)

module SC = Cn_runtime.Shared_counter

let () =
  let producers = 3 and consumers = 3 in
  let items_per_producer = 4_000 in
  let total = producers * items_per_producer in

  let net () = Cn_core.Counting.network ~w:4 ~t:8 in
  let enq_tickets = SC.of_topology (net ()) in
  let deq_tickets = SC.of_topology (net ()) in

  (* slot.(i) = 0 when empty, v + 1 once item v is deposited. *)
  let slots = Array.init total (fun _ -> Atomic.make 0) in

  let produce pid () =
    for i = 0 to items_per_producer - 1 do
      let item = (pid * items_per_producer) + i in
      let ticket = SC.next enq_tickets ~pid in
      Atomic.set slots.(ticket) (item + 1)
    done
  in
  let consumed = Array.init consumers (fun _ -> Array.make total (-1)) in
  let consumed_count = Array.make consumers 0 in
  let consume cid () =
    let budget = total / consumers in
    for _ = 1 to budget do
      let ticket = SC.next deq_tickets ~pid:cid in
      (* Spin until the matching producer has deposited. *)
      let rec collect () =
        let v = Atomic.get slots.(ticket) in
        if v = 0 then begin
          Domain.cpu_relax ();
          collect ()
        end
        else v - 1
      in
      let item = collect () in
      consumed.(cid).(consumed_count.(cid)) <- item;
      consumed_count.(cid) <- consumed_count.(cid) + 1
    done
  in

  let producer_handles = Array.init producers (fun pid -> Domain.spawn (produce pid)) in
  let consumer_handles = Array.init consumers (fun cid -> Domain.spawn (consume cid)) in
  Array.iter Domain.join producer_handles;
  Array.iter Domain.join consumer_handles;

  (* Every produced item consumed exactly once. *)
  let seen = Array.make total 0 in
  Array.iteri
    (fun cid buf ->
      for i = 0 to consumed_count.(cid) - 1 do
        seen.(buf.(i)) <- seen.(buf.(i)) + 1
      done)
    consumed;
  let exactly_once = Array.for_all (fun c -> c = 1) seen in
  Printf.printf "%d producers, %d consumers, %d items through the pool\n" producers consumers
    total;
  Printf.printf "every item consumed exactly once: %b\n" exactly_once;
  Printf.printf "consumer shares: %s\n"
    (String.concat " " (Array.to_list (Array.map string_of_int consumed_count)));
  if not exactly_once then exit 1
