(* Unique-ID allocation service: many domains draw IDs concurrently; the
   service must never hand out a duplicate and, once quiet, must have
   used a dense prefix of the ID space (no leaked IDs).

   Exercises all three Shared_counter implementations and cross-checks
   their contracts; also shows the Cas-instrumented runtime reporting
   contention events.

   Run with: dune exec examples/id_server.exe *)

module SC = Cn_runtime.Shared_counter
module H = Cn_runtime.Harness

let exercise name make =
  let domains = 5 and ops = 2_000 in
  let values = H.run_collect ~make ~domains ~ops_per_domain:ops () in
  let ok = H.values_are_a_range values in
  Printf.printf "%-34s %d domains x %d ids: unique+dense = %b\n" name domains ops ok;
  ok

let () =
  let all_ok =
    List.for_all
      (fun (name, make) -> exercise name make)
      [
        ( "C(8,24) counting network (FAA)",
          fun () -> SC.of_topology (Cn_core.Counting.wide 8) );
        ( "C(8,24) counting network (CAS)",
          fun () ->
            SC.of_topology ~mode:Cn_runtime.Network_runtime.Cas (Cn_core.Counting.wide 8) );
        ("bitonic(8) counting network", fun () -> SC.of_topology (Cn_baselines.Bitonic.network 8));
        ("central fetch-and-add", fun () -> SC.central_faa ());
        ("mutex-protected integer", fun () -> SC.with_lock ());
      ]
  in
  (* Contention witness: the CAS-mode runtime counts retry failures. *)
  let rt =
    Cn_runtime.Network_runtime.compile ~mode:Cn_runtime.Network_runtime.Cas
      (Cn_core.Counting.wide 8)
  in
  let body pid () =
    for _ = 1 to 3_000 do
      ignore (Cn_runtime.Network_runtime.traverse rt ~wire:(pid mod 8))
    done
  in
  let handles = Array.init 5 (fun pid -> Domain.spawn (body pid)) in
  Array.iter Domain.join handles;
  Printf.printf "CAS retries per op at 5 domains: %.5f\n"
    (float_of_int (Cn_runtime.Network_runtime.cas_failures rt) /. 15_000.);
  Printf.printf "all implementations honoured the Fetch&Increment contract: %b\n" all_ok;
  if not all_ok then exit 1
