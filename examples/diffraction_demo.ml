(* The prism in action: the diffracting tree converts collisions into
   progress by pairing tokens that meet in a prism slot (Shavit-Zemach;
   paper, Section 1.4.1).  This demo drives the prism-equipped runtime
   with several domains and reports how many node visits were resolved
   by diffraction rather than by the serializing toggle bit.

   Run with: dune exec examples/diffraction_demo.exe *)

module D = Cn_runtime.Diffracting_runtime

let () =
  let width = 8 and domains = 6 and ops = 5_000 in
  let tree = D.create ~width ~prism_width:2 ~patience:2_000 () in
  let results = Array.init domains (fun _ -> Array.make ops (-1)) in
  let body pid () =
    for i = 0 to ops - 1 do
      results.(pid).(i) <- D.next tree
    done
  in
  let handles = Array.init domains (fun pid -> Domain.spawn (body pid)) in
  Array.iter Domain.join handles;

  let total = domains * ops in
  let seen = Array.make total false in
  let ok = ref true in
  Array.iter
    (Array.iter (fun v ->
         if v < 0 || v >= total || seen.(v) then ok := false else seen.(v) <- true))
    results;
  let visits = total * Cn_core.Params.ilog2 width in
  Printf.printf "%d domains x %d ops through a width-%d diffracting tree\n" domains ops width;
  Printf.printf "values unique and dense: %b\n" (!ok && Array.for_all (fun b -> b) seen);
  Printf.printf "node visits: %d = toggles %d + 2 x diffractions %d\n" visits
    (D.toggle_passes tree) (D.diffractions tree);
  Printf.printf "share of visits resolved by diffraction: %.1f%%\n"
    (200. *. float_of_int (D.diffractions tree) /. float_of_int visits);
  Printf.printf
    "(single-core host: few collisions overlap, so the share is small; on a real\n\
    \ multiprocessor the prism absorbs most of the root contention)\n"
