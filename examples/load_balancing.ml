(* Load balancing — the distributed problem the paper's introduction
   motivates counting with.

   n producers assign jobs to t worker queues.  Routing each job through
   a counting network C(w, t) guarantees the queues stay balanced (step
   property: lengths differ by at most one) without any producer
   coordinating with any other beyond the balancer words.  We compare
   against random assignment, whose imbalance grows with load.

   Run with: dune exec examples/load_balancing.exe *)

module S = Cn_sequence.Sequence

let spread_of_random_assignment ~queues ~jobs ~seed =
  let rng = Random.State.make [| seed |] in
  let lens = Array.make queues 0 in
  for _ = 1 to jobs do
    let q = Random.State.int rng queues in
    lens.(q) <- lens.(q) + 1
  done;
  (lens, S.spread lens)

let () =
  let w = 8 and t = 16 in
  let producers = 6 and jobs_per_producer = 500 in
  let jobs = producers * jobs_per_producer in
  let net = Cn_core.Counting.network ~w ~t in
  let rt = Cn_runtime.Network_runtime.compile net in

  (* Each producer domain routes its jobs through the network; the exit
     wire is the queue the job goes to. *)
  let queue_lengths = Array.init t (fun _ -> Atomic.make 0) in
  let producer pid () =
    for _ = 1 to jobs_per_producer do
      let value = Cn_runtime.Network_runtime.traverse rt ~wire:(pid mod w) in
      let queue = value mod t in
      Atomic.incr queue_lengths.(queue)
    done
  in
  let handles = Array.init producers (fun pid -> Domain.spawn (producer pid)) in
  Array.iter Domain.join handles;
  let lens = Array.map Atomic.get queue_lengths in

  Printf.printf "%d producers x %d jobs -> %d queues via C(%d,%d)\n" producers
    jobs_per_producer t w t;
  Printf.printf "  queue lengths %s\n" (S.to_string lens);
  Printf.printf "  max - min = %d (step: %b)\n" (S.spread lens) (S.is_step lens);

  let rand_lens, rand_spread = spread_of_random_assignment ~queues:t ~jobs ~seed:7 in
  Printf.printf "random assignment of the same %d jobs:\n" jobs;
  Printf.printf "  queue lengths %s\n" (S.to_string rand_lens);
  Printf.printf "  max - min = %d\n" rand_spread;
  Printf.printf "counting network imbalance stays <= 1 at any load; random grows like sqrt.\n"
