(* Tests for Cn_network.Render. *)

module T = Cn_network.Topology
module R = Cn_network.Render

let tc name f = Alcotest.test_case name `Quick f

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let describe_tests =
  [
    tc "describe mentions every balancer" (fun () ->
        let net = Cn_core.Counting.network ~w:4 ~t:8 in
        let text = R.describe net in
        for b = 0 to T.size net - 1 do
          Alcotest.(check bool)
            (Printf.sprintf "mentions b%d" b)
            true
            (contains text (Printf.sprintf "b%d " b))
        done);
    tc "describe shows summary line" (fun () ->
        let net = Cn_core.Counting.network ~w:4 ~t:8 in
        Alcotest.(check bool) "header" true (contains (R.describe net) "4 -> 8"));
    tc "describe shows irregular balancer shapes" (fun () ->
        let net = Cn_core.Counting.network ~w:4 ~t:8 in
        Alcotest.(check bool) "(2,4) appears" true (contains (R.describe net) "(2,4)"));
    tc "describe lists bare wires" (fun () ->
        let net = T.identity 2 in
        Alcotest.(check bool) "wire line" true (contains (R.describe net) "in0 -> out0"));
  ]

let ascii_tests =
  [
    tc "ascii has one row per channel" (fun () ->
        let net = Cn_baselines.Bitonic.network 4 in
        let lines = String.split_on_char '\n' (R.ascii net) in
        (* 2w-1 grid rows plus trailing empty split. *)
        Alcotest.(check int) "rows" 8 (List.length lines));
    tc "ascii balancer endpoints drawn" (fun () ->
        let net = Cn_core.Ladder.network 2 in
        Alcotest.(check bool) "has endpoints" true (contains (R.ascii net) "o"));
    Util.raises_invalid "ascii rejects irregular networks" (fun () ->
        ignore (R.ascii (Cn_core.Counting.network ~w:4 ~t:8)));
    tc "ascii column count tracks depth" (fun () ->
        let net = Cn_baselines.Bitonic.network 8 in
        let first_line = List.hd (String.split_on_char '\n' (R.ascii net)) in
        Alcotest.(check bool) "wide enough" true
          (String.length first_line >= 4 * T.depth net));
  ]

let profile_tests =
  [
    tc "layer_profile of C(4,8)" (fun () ->
        let profile = R.layer_profile (Cn_core.Counting.network ~w:4 ~t:8) in
        Alcotest.(check int) "layers" 3 (Array.length profile);
        (* Layer 1: the ladder (2,2)s; layer 2: two (2,4) balancers of the
           recursion base; layer 3: the M(8,2) layer of (2,2)s. *)
        Alcotest.(check bool) "layer2 irregular" true
          (Array.for_all (fun s -> s = (2, 4)) profile.(1));
        Alcotest.(check int) "layer3 size" 4 (Array.length profile.(2)));
    tc "layer_profile of ladder" (fun () ->
        let profile = R.layer_profile (Cn_core.Ladder.network 6) in
        Alcotest.(check int) "one layer" 1 (Array.length profile);
        Alcotest.(check int) "three balancers" 3 (Array.length profile.(0)));
  ]

let svg_tests =
  [
    tc "svg is a well-formed document" (fun () ->
        let s = R.svg (Cn_baselines.Bitonic.network 8) in
        Alcotest.(check bool) "opens" true (String.length s > 0 && String.sub s 0 4 = "<svg");
        Alcotest.(check bool) "closes" true (contains s "</svg>"));
    tc "svg has one connector line per balancer plus channels" (fun () ->
        let net = Cn_baselines.Bitonic.network 4 in
        let s = R.svg net in
        let count needle =
          let n = ref 0 and ln = String.length needle in
          for i = 0 to String.length s - ln do
            if String.sub s i ln = needle then incr n
          done;
          !n
        in
        Alcotest.(check int) "lines" (T.size net + T.input_width net) (count "<line");
        Alcotest.(check int) "endpoints" (2 * T.size net) (count "<circle"));
    Util.raises_invalid "svg rejects irregular networks" (fun () ->
        ignore (R.svg (Cn_core.Counting.network ~w:4 ~t:8)));
  ]

let dot_smoke =
  [
    tc "dot handles bare wires" (fun () ->
        Alcotest.(check bool) "in->out edge" true
          (contains (R.dot (T.identity 2)) "in1 -> out1"));
  ]

let suite =
  [
    ("render.describe", describe_tests);
    ("render.ascii", ascii_tests);
    ("render.profile", profile_tests);
    ("render.svg", svg_tests);
    ("render.dot", dot_smoke);
  ]
