(* Tests for Cn_analysis.Feasibility: the Aharonson–Attiya criterion
   (paper, Section 1.4.2). *)

module F = Cn_analysis.Feasibility

let tc name f = Alcotest.test_case name `Quick f

let primes =
  [
    tc "prime_factors of small values" (fun () ->
        List.iter
          (fun (v, expected) ->
            Alcotest.(check (list int)) (string_of_int v) expected (F.prime_factors v))
          [
            (1, []); (2, [ 2 ]); (3, [ 3 ]); (4, [ 2 ]); (6, [ 2; 3 ]); (12, [ 2; 3 ]);
            (360, [ 2; 3; 5 ]); (97, [ 97 ]); (1024, [ 2 ]); (210, [ 2; 3; 5; 7 ]);
          ]);
    Util.raises_invalid "zero" (fun () -> F.prime_factors 0);
    Util.raises_invalid "negative" (fun () -> F.prime_factors (-4));
    Util.qtest ~count:200 "factors multiply back into v"
      QCheck2.Gen.(int_range 1 100000)
      (fun v ->
        List.for_all (fun p -> v mod p = 0) (F.prime_factors v)
        && List.for_all
             (fun p -> List.for_all (fun q -> p = q || p mod q <> 0) (F.prime_factors v))
             (F.prime_factors v));
  ]

let criterion =
  [
    tc "powers of two from (·,2)-balancers" (fun () ->
        List.iter
          (fun w ->
            Alcotest.(check bool) (string_of_int w) true
              (F.is_constructible ~width:w ~balancer_outputs:[ 2 ]))
          [ 1; 2; 4; 8; 16; 1024 ]);
    tc "width 6 impossible from (·,2)-balancers" (fun () ->
        Alcotest.(check bool) "blocked" false
          (F.is_constructible ~width:6 ~balancer_outputs:[ 2 ]);
        Alcotest.(check (option int)) "witness" (Some 3)
          (F.blocking_prime ~width:6 ~balancer_outputs:[ 2 ]));
    tc "width 6 possible with a 3-output balancer" (fun () ->
        Alcotest.(check bool) "ok" true (F.is_constructible ~width:6 ~balancer_outputs:[ 2; 3 ]));
    tc "our irregular balancers admit t = p·w" (fun () ->
        (* C(w, t) uses (2,2)- and (2,2p)-balancers; every prime factor
           of t = p·2^k divides 2p. *)
        List.iter
          (fun (w, t) ->
            let p = t / w in
            Alcotest.(check bool)
              (Printf.sprintf "w=%d t=%d" w t)
              true
              (F.is_constructible ~width:t ~balancer_outputs:[ 2; 2 * p ]))
          [ (4, 8); (8, 24); (8, 40); (16, 48); (4, 28) ]);
    tc "blocking prime is the smallest" (fun () ->
        Alcotest.(check (option int)) "35 from 2s" (Some 5)
          (F.blocking_prime ~width:35 ~balancer_outputs:[ 2; 4; 8 ]));
    tc "constructible_widths enumerates" (fun () ->
        Alcotest.(check (list int)) "powers of 2 and 1" [ 1; 2; 4; 8; 16 ]
          (F.constructible_widths ~balancer_outputs:[ 2 ] ~limit:16);
        Alcotest.(check (list int)) "2,3-smooth" [ 1; 2; 3; 4; 6; 8; 9; 12; 16; 18 ]
          (List.filter (fun v -> v <= 18)
             (F.constructible_widths ~balancer_outputs:[ 2; 3 ] ~limit:18)));
    Util.raises_invalid "empty balancer set" (fun () ->
        ignore (F.is_constructible ~width:4 ~balancer_outputs:[]));
    Util.raises_invalid "bad width" (fun () ->
        ignore (F.is_constructible ~width:0 ~balancer_outputs:[ 2 ]));
  ]

let suite = [ ("feasibility.primes", primes); ("feasibility.criterion", criterion) ]
