(* Tests for Cn_core.Butterfly: D(w), E(w), Lemmas 5.1, 5.2. *)

module T = Cn_network.Topology
module E = Cn_network.Eval
module S = Cn_sequence.Sequence
module Bf = Cn_core.Butterfly

let tc name f = Alcotest.test_case name `Quick f

let structure =
  [
    tc "lemma 5.1: depth = lg w" (fun () ->
        List.iter
          (fun w ->
            Alcotest.(check int) (Printf.sprintf "D(%d)" w) (Bf.depth_formula ~w)
              (T.depth (Bf.forward w));
            Alcotest.(check int) (Printf.sprintf "E(%d)" w) (Bf.depth_formula ~w)
              (T.depth (Bf.backward w)))
          [ 2; 4; 8; 16; 32; 64 ]);
    tc "size is (w/2) lg w" (fun () ->
        List.iter
          (fun w ->
            let expected = w / 2 * Bf.depth_formula ~w in
            Alcotest.(check int) (Printf.sprintf "D(%d)" w) expected (T.size (Bf.forward w));
            Alcotest.(check int) (Printf.sprintf "E(%d)" w) expected (T.size (Bf.backward w)))
          [ 2; 4; 8; 16; 32 ]);
    tc "regular, width preserved" (fun () ->
        let net = Bf.forward 16 in
        Alcotest.(check bool) "regular" true (T.is_regular net);
        Alcotest.(check int) "w" 16 (T.input_width net);
        Alcotest.(check int) "t" 16 (T.output_width net));
    Util.raises_invalid "non power of two" (fun () -> Bf.forward 6);
    Util.raises_invalid "width 1 standalone" (fun () -> Bf.backward 1);
    tc "D(2) = E(2) = one balancer" (fun () ->
        Alcotest.(check bool) "equal" true (T.equal (Bf.forward 2) (Bf.backward 2)));
  ]

let smoothing_case name make w =
  tc
    (Printf.sprintf "lemma 5.2: %s(%d) is lg w-smoothing" name w)
    (fun () ->
      let net = make w in
      let bound = Bf.smoothness_bound ~w in
      Util.for_random_inputs ~trials:150 ~seed:w ~max_tokens:100 net
        (fun ~trial:_ ~x ~y ->
          Alcotest.(check int) "sum" (S.sum x) (S.sum y);
          Alcotest.(check bool)
            (Printf.sprintf "%d-smooth" bound)
            true (S.is_smooth bound y)))

let smoothing =
  [
    smoothing_case "D" Bf.forward 2;
    smoothing_case "D" Bf.forward 4;
    smoothing_case "D" Bf.forward 8;
    smoothing_case "D" Bf.forward 16;
    smoothing_case "D" Bf.forward 32;
    smoothing_case "E" Bf.backward 4;
    smoothing_case "E" Bf.backward 8;
    smoothing_case "E" Bf.backward 16;
    tc "butterflies do not count" (fun () ->
        (* lg w-smoothing is weaker than counting: find a non-step
           output.  (A fixed witness: a butterfly is not a counting
           network for w >= 4.) *)
        let net = Bf.forward 8 in
        let found = ref false in
        let rng = Random.State.make [| 5 |] in
        for _ = 1 to 500 do
          let x = Util.random_input rng 8 in
          if not (S.is_step (E.quiescent net x)) then found := true
        done;
        Alcotest.(check bool) "some non-step output" true !found);
    tc "uniform input passes through uniformly" (fun () ->
        let y = E.quiescent (Bf.forward 16) (Array.make 16 7) in
        Alcotest.check Util.seq "uniform" (Array.make 16 7) y);
  ]

let suite = [ ("butterfly.structure", structure); ("butterfly.smoothing", smoothing) ]
