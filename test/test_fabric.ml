(* Tests for the elastic sharded counter fabric: the consistent-hash
   router's stability properties, the certification gate, hot-resize
   under concurrent load, elastic rescale, the combining read, and the
   analytic auto-tuner's fabric hooks. *)

module Fab = Cn_fabric.Fabric
module Router = Cn_fabric.Router
module Counting = Cn_core.Counting
module T = Cn_network.Topology
module V = Cn_runtime.Validator
module P = Cn_analysis.Projection
module L = Cn_lint

let tc name f = Alcotest.test_case name `Quick f
let keys = 8192
let ids n = List.init n (fun i -> i)

(* C(4,4) with two output wires swapped: conserves tokens but breaks
   the step property — the certifier refutes it with a counterexample. *)
let broken_counting () =
  let net = Counting.network ~w:4 ~t:4 in
  let swap = Array.init 4 (fun i -> if i = 0 then 3 else if i = 3 then 0 else i) in
  T.permute_outputs (Cn_network.Permutation.of_array swap) net

let router =
  [
    tc "routing is deterministic and total" (fun () ->
        let r = Router.make (ids 4) in
        for k = 0 to 255 do
          let s = Router.route r k in
          Alcotest.(check bool) "in range" true (s >= 0 && s < 4);
          Alcotest.(check int) "stable" s (Router.route r k)
        done);
    tc "growing an n-ring remaps ~1/(n+1) keys, all to the new shard" (fun () ->
        List.iter
          (fun n ->
            let old_r = Router.make (ids n) in
            let new_r = Router.make (ids (n + 1)) in
            let moved = ref 0 in
            for k = 0 to keys - 1 do
              let a = Router.route old_r k and b = Router.route new_r k in
              if a <> b then begin
                incr moved;
                Alcotest.(check int) "moves only to the new shard" n b
              end
            done;
            let frac = float_of_int !moved /. float_of_int keys in
            let ideal = 1. /. float_of_int (n + 1) in
            Alcotest.(check bool)
              (Printf.sprintf "n=%d: fraction %.3f near %.3f" n frac ideal)
              true
              (frac > ideal /. 2.5 && frac < ideal *. 2.5))
          [ 1; 2; 4; 8 ]);
    tc "removing a shard remaps exactly its own keys" (fun () ->
        let full = Router.make (ids 4) in
        let without = Router.make [ 0; 1; 3 ] in
        for k = 0 to keys - 1 do
          let a = Router.route full k in
          let b = Router.route without k in
          if a <> 2 then
            Alcotest.(check int) "survivors keep their keys" a b
          else
            Alcotest.(check bool) "orphans go to survivors" true (b <> 2)
        done);
    tc "ring balances keys across shards" (fun () ->
        let r = Router.make (ids 4) in
        let counts = Array.make 4 0 in
        for k = 0 to keys - 1 do
          let s = Router.route r k in
          counts.(s) <- counts.(s) + 1
        done;
        let ideal = keys / 4 in
        Array.iteri
          (fun s c ->
            Alcotest.(check bool)
              (Printf.sprintf "shard %d holds %d (ideal %d)" s c ideal)
              true
              (c > ideal / 2 && c < ideal * 2))
          counts);
    tc "zipf-weighted remap mass is no worse than the key fraction" (fun () ->
        (* Hot keys are pinned like any other key: growing the ring must
           not preferentially remap the head of a Zipf key distribution.
           The moved probability mass stays in the same ballpark as the
           unweighted remap fraction (ideal 1/5 here). *)
        let alpha = 1.2 in
        let old_r = Router.make (ids 4) in
        let new_r = Router.make (ids 5) in
        let total = ref 0. and moved = ref 0. in
        for k = 0 to 1023 do
          let wgt = float_of_int (k + 1) ** -.alpha in
          total := !total +. wgt;
          if Router.route old_r k <> Router.route new_r k then
            moved := !moved +. wgt
        done;
        let frac = !moved /. !total in
        Alcotest.(check bool)
          (Printf.sprintf "moved mass %.3f" frac)
          true (frac < 0.5));
    tc "hot-key sessions share one shard's value stream" (fun () ->
        (* Two sessions with the same routing key hit the same shard, so
           with elimination off their interleaved increments read one
           duplicate-free counter stream: 0, 1, 2, ... *)
        let fab = Fab.create ~shards:4 ~elim:false (Counting.network ~w:4 ~t:4) in
        let hot = 17 in
        let s1 = Fab.session ~key:hot fab in
        let s2 = Fab.session ~key:hot fab in
        for i = 0 to 9 do
          let s = if i mod 2 = 0 then s1 else s2 in
          match Fab.increment s with
          | Ok v -> Alcotest.(check int) "one stream" i v
          | Error _ -> Alcotest.fail "unexpected error"
        done);
  ]

let certification =
  [
    tc "a broken initial topology is refused at create" (fun () ->
        match Fab.create ~shards:1 (broken_counting ()) with
        | _ -> Alcotest.fail "expected Rejected"
        | exception Fab.Rejected msg ->
            Alcotest.(check bool) "names the subject" true
              (String.length msg > 0));
    tc "a broken resize candidate aborts with no state change" (fun () ->
        let fab = Fab.create ~shards:1 ~elim:false (Counting.network ~w:4 ~t:4) in
        let s = Fab.session ~key:0 fab in
        (match Fab.increment s with
        | Ok 0 -> ()
        | _ -> Alcotest.fail "seed increment");
        (match Fab.resize fab ~shard:0 (broken_counting ()) with
        | Error (Fab.Cert_rejected _) -> ()
        | _ -> Alcotest.fail "expected Cert_rejected");
        Alcotest.(check int) "generation unchanged" 0 (Fab.shard_gen fab 0);
        Alcotest.(check int) "width unchanged" 4
          (T.input_width (Fab.shard_topology fab 0));
        Alcotest.(check int) "value unchanged" 1 (Fab.read fab);
        match Fab.increment s with
        | Ok v -> Alcotest.(check int) "stream continues" 1 v
        | Error _ -> Alcotest.fail "shard must still serve");
    tc "a broken grow target aborts the rescale" (fun () ->
        let fab = Fab.create ~shards:1 (Counting.network ~w:4 ~t:4) in
        (match Fab.set_shard_count ~topo:(broken_counting ()) fab 2 with
        | Error (Fab.Cert_rejected _) -> ()
        | _ -> Alcotest.fail "expected Cert_rejected");
        Alcotest.(check int) "still one shard" 1 (Fab.shard_count fab));
    tc "certify_topology accepts C(16,16) with non-refuted evidence" (fun () ->
        match Fab.certify_topology (Counting.network ~w:16 ~t:16) with
        | Error msg -> Alcotest.failf "unexpected rejection: %s" msg
        | Ok cert -> (
            Alcotest.(check bool) "ok" true (L.Cert.ok cert);
            match cert.L.Cert.evidence with
            | L.Cert.Refuted _ -> Alcotest.fail "refuted evidence"
            | _ -> ()));
  ]

let ops =
  [
    tc "combining read merges shards; rescale conserves it" (fun () ->
        let fab = Fab.create ~shards:4 ~elim:false (Counting.network ~w:4 ~t:4) in
        let total = ref 0 in
        List.iter
          (fun k ->
            let s = Fab.session ~key:k fab in
            for _ = 0 to k mod 5 do
              match Fab.increment s with
              | Ok _ -> incr total
              | Error _ -> Alcotest.fail "unexpected error"
            done)
          (ids 16);
        Alcotest.(check int) "read" !total (Fab.read fab);
        (match Fab.set_shard_count fab 2 with
        | Ok () -> ()
        | Error _ -> Alcotest.fail "shrink failed");
        Alcotest.(check int) "shards after shrink" 2 (Fab.shard_count fab);
        Alcotest.(check int) "read survives the retired fold" !total
          (Fab.read fab);
        (match Fab.set_shard_count fab 3 with
        | Ok () -> ()
        | Error _ -> Alcotest.fail "grow failed");
        Alcotest.(check int) "shards after grow" 3 (Fab.shard_count fab);
        Alcotest.(check int) "read survives the grow" !total (Fab.read fab);
        (* new traffic lands on the rescaled ring and still sums *)
        List.iter
          (fun k ->
            let s = Fab.session ~key:k fab in
            match Fab.increment s with
            | Ok _ -> incr total
            | Error _ -> Alcotest.fail "unexpected error")
          (ids 8);
        Alcotest.(check int) "read after new traffic" !total (Fab.read fab));
    tc "shrink-then-grow bumps the generation; a warm session recovers" (fun () ->
        let fab = Fab.create ~shards:2 ~elim:false (Counting.network ~w:4 ~t:4) in
        let key =
          let rec go k = if Fab.route fab k = 1 then k else go (k + 1) in
          go 0
        in
        let s = Fab.session ~key fab in
        (match Fab.increment s with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "warm-up increment");
        (match Fab.set_shard_count fab 1 with
        | Ok () -> ()
        | Error _ -> Alcotest.fail "shrink failed");
        (match Fab.set_shard_count fab 2 with
        | Ok () -> ()
        | Error _ -> Alcotest.fail "grow failed");
        (* the re-created slot continues, never restarts, the gen
           sequence, so the session's cached pre-shrink (shard, gen)
           pair misses instead of aliasing the shut-down service — the
           retire/respawn ABA the race checker pins *)
        Alcotest.(check int) "generation continues" 1 (Fab.shard_gen fab 1);
        (match Fab.increment s with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "warm session must recover");
        Alcotest.(check int) "count conserved across the cycle" 2 (Fab.read fab));
    tc "decrements flow through the routed shard" (fun () ->
        let fab = Fab.create ~shards:2 ~elim:false (Counting.network ~w:4 ~t:4) in
        let s = Fab.session ~key:3 fab in
        (match Fab.increment s with Ok _ -> () | Error _ -> Alcotest.fail "inc");
        (match Fab.increment s with Ok _ -> () | Error _ -> Alcotest.fail "inc");
        (match Fab.decrement s with Ok _ -> () | Error _ -> Alcotest.fail "dec");
        Alcotest.(check int) "net value" 1 (Fab.read fab));
    tc "shutdown is terminal and freezes the read" (fun () ->
        let fab = Fab.create ~shards:2 ~elim:false (Counting.network ~w:4 ~t:4) in
        let s = Fab.session ~key:0 fab in
        (match Fab.increment s with Ok _ -> () | Error _ -> Alcotest.fail "inc");
        let report = Fab.shutdown fab in
        Alcotest.(check bool) "quiescence validated" true (V.passed report);
        Alcotest.(check bool) "closed" true (Fab.closed fab);
        (match Fab.increment s with
        | Error Fab.Closed -> ()
        | _ -> Alcotest.fail "expected Closed");
        Alcotest.(check int) "frozen read" 1 (Fab.read fab));
    tc "drain merges shard-prefixed reports and re-admits" (fun () ->
        let fab = Fab.create ~shards:2 ~elim:false (Counting.network ~w:4 ~t:4) in
        let s = Fab.session ~key:0 fab in
        (match Fab.increment s with Ok _ -> () | Error _ -> Alcotest.fail "inc");
        let report = Fab.drain fab in
        Alcotest.(check bool) "passed" true (V.passed report);
        List.iter
          (fun prefix ->
            Alcotest.(check bool) (prefix ^ " present") true
              (List.exists
                 (fun (c : V.check) ->
                   String.length c.V.name > String.length prefix
                   && String.sub c.V.name 0 (String.length prefix) = prefix)
                 report.V.checks))
          [ "shard0."; "shard1." ];
        match Fab.increment s with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "drain must re-admit");
    tc "shard_infos reflect dimensions, generation and value" (fun () ->
        let fab = Fab.create ~shards:2 ~elim:false (Counting.network ~w:4 ~t:8) in
        let infos = Fab.shard_infos fab in
        Alcotest.(check int) "two shards" 2 (List.length infos);
        List.iter
          (fun (i : Fab.shard_info) ->
            Alcotest.(check int) "w" 4 i.Fab.width;
            Alcotest.(check int) "t" 8 i.Fab.out_width;
            Alcotest.(check int) "gen" 0 i.Fab.gen;
            Alcotest.(check int) "value" 0 i.Fab.value)
          infos);
  ]

(* The acceptance scenario: a Strict-validated hot-resize from C(8,8)
   to C(16,16) while worker domains hammer the shard.  Every operation
   completes (before the quiescent validation point, or parked and
   replayed on the new service); no token is lost, no value duplicated
   across the base fold. *)
let resize_under_load =
  [
    tc "strict hot-resize C(8,8) -> C(16,16) under concurrent load" (fun () ->
        let fab =
          Fab.create ~shards:1 ~elim:false ~validate:V.Strict
            (Counting.network ~w:8 ~t:8)
        in
        let workers = 4 and per = 2_000 in
        let vals = Array.init workers (fun _ -> Array.make per (-1)) in
        let resize_result = ref (Error Fab.Busy) in
        let doms =
          Array.init (workers + 1) (fun i ->
              Domain.spawn (fun () ->
                  if i = workers then begin
                    (* wait for live traffic, then swap mid-flight *)
                    while Fab.read fab < workers do
                      Domain.cpu_relax ()
                    done;
                    resize_result :=
                      Fab.resize fab ~shard:0 (Counting.network ~w:16 ~t:16)
                  end
                  else begin
                    let s = Fab.session ~key:i fab in
                    for j = 0 to per - 1 do
                      let rec go () =
                        match Fab.increment s with
                        | Ok v -> vals.(i).(j) <- v
                        | Error Fab.Overloaded ->
                            Domain.cpu_relax ();
                            go ()
                        | Error Fab.Closed ->
                            Alcotest.fail "refused while the fabric is open"
                      in
                      go ()
                    done
                  end))
        in
        Array.iter Domain.join doms;
        (match !resize_result with
        | Ok () -> ()
        | Error _ -> Alcotest.fail "resize failed");
        Alcotest.(check int) "generation bumped" 1 (Fab.shard_gen fab 0);
        Alcotest.(check int) "serving C(16,16)" 16
          (T.input_width (Fab.shard_topology fab 0));
        let total = workers * per in
        Alcotest.(check int) "no token lost across the swap" total
          (Fab.read fab);
        let all = Array.to_list (Array.concat (Array.to_list vals)) in
        Alcotest.(check bool) "every operation returned" true
          (List.for_all (fun v -> v >= 0) all);
        Alcotest.(check int) "no value duplicated across the base fold" total
          (List.length (List.sort_uniq compare all));
        (* Strict drain after the dust settles: the swapped-in service
           passes the same quiescence checks the old one validated. *)
        let report = Fab.drain fab in
        Alcotest.(check bool) "post-resize quiescence" true (V.passed report));
    tc "strict shrink under concurrent load conserves every token" (fun () ->
        let fab =
          Fab.create ~shards:4 ~elim:false ~validate:V.Strict
            (Counting.network ~w:4 ~t:4)
        in
        let workers = 4 and per = 1_000 in
        let counted = Array.make workers 0 in
        let rescale_result = ref (Error Fab.Busy) in
        let doms =
          Array.init (workers + 1) (fun i ->
              Domain.spawn (fun () ->
                  if i = workers then begin
                    while Fab.read fab < workers do
                      Domain.cpu_relax ()
                    done;
                    rescale_result := Fab.set_shard_count fab 2
                  end
                  else begin
                    let s = Fab.session ~key:i fab in
                    for _ = 1 to per do
                      let rec go () =
                        match Fab.increment s with
                        | Ok _ -> counted.(i) <- counted.(i) + 1
                        | Error Fab.Overloaded ->
                            Domain.cpu_relax ();
                            go ()
                        | Error Fab.Closed ->
                            Alcotest.fail "refused while the fabric is open"
                      in
                      go ()
                    done
                  end))
        in
        Array.iter Domain.join doms;
        (match !rescale_result with
        | Ok () -> ()
        | Error _ -> Alcotest.fail "shrink failed");
        Alcotest.(check int) "two shards remain" 2 (Fab.shard_count fab);
        Alcotest.(check int) "retired fold conserves the count"
          (Array.fold_left ( + ) 0 counted)
          (Fab.read fab));
  ]

let tuning =
  [
    tc "live_stall_scale is 1 without metrics and plan matches tune" (fun () ->
        let fab = Fab.create ~shards:1 (Counting.network ~w:4 ~t:4) in
        let cal = P.calibrate ~crossing_ns:20. () in
        Alcotest.(check bool) "unit scale" true
          (Fab.live_stall_scale fab ~shard:0 ~domains:8 = 1.);
        let w, t = Fab.plan fab cal ~shard:0 ~domains:8 in
        let w', t' = P.tune cal ~domains:8 in
        Alcotest.(check int) "same w" w' w;
        Alcotest.(check int) "same t" t' t);
    tc "retune hot-resizes to the plan, then reports Unchanged" (fun () ->
        let fab =
          Fab.create ~shards:1 ~elim:false (Counting.network ~w:16 ~t:16)
        in
        let s = Fab.session ~key:0 fab in
        for _ = 1 to 10 do
          ignore (Fab.increment s)
        done;
        let cal = P.calibrate ~crossing_ns:20. () in
        let planned_w, planned_t = P.tune cal ~domains:2 in
        (match Fab.retune fab cal ~shard:0 ~domains:2 with
        | Ok (`Resized (w, t)) ->
            Alcotest.(check int) "planned w" planned_w w;
            Alcotest.(check int) "planned t" planned_t t
        | Ok `Unchanged -> Alcotest.fail "expected a resize away from C(16,16)"
        | Error _ -> Alcotest.fail "retune failed");
        Alcotest.(check int) "value continues across the retune" 10
          (Fab.read fab);
        match Fab.retune fab cal ~shard:0 ~domains:2 with
        | Ok `Unchanged -> ()
        | _ -> Alcotest.fail "expected Unchanged on the second pass");
    tc "zero-traffic retune with metrics on is not degenerate" (fun () ->
        (* Regression: an idle metrics-on shard has stalls = 0 and
           tokens = 0; the stall profile must fall back to the analytic
           model (scale 1), not divide into a clamp edge and plan a
           degenerate geometry. *)
        let fab =
          Fab.create ~shards:1 ~metrics:true (Counting.network ~w:4 ~t:4)
        in
        let cal = P.calibrate ~crossing_ns:20. () in
        Alcotest.(check bool) "unit scale on idle shard" true
          (Fab.live_stall_scale fab ~shard:0 ~domains:8 = 1.);
        let w, t = Fab.plan fab cal ~shard:0 ~domains:8 in
        let w', t' = P.tune cal ~domains:8 in
        Alcotest.(check int) "plan w matches pure tune" w' w;
        Alcotest.(check int) "plan t matches pure tune" t' t);
    tc "sub-threshold traffic keeps the cold-start floor" (fun () ->
        (* A handful of crossings is sampling noise, not a stall
           profile: below [min_profile_tokens] the scale must stay 1
           even though stalls and tokens are both nonzero. *)
        let fab =
          Fab.create ~shards:1 ~metrics:true (Counting.network ~w:4 ~t:4)
        in
        let ops = Fab.min_profile_tokens / 4 in
        let s = Fab.session ~key:0 fab in
        for _ = 1 to ops do
          ignore (Fab.increment s)
        done;
        Alcotest.(check bool) "unit scale below the sample floor" true
          (Fab.live_stall_scale fab ~shard:0 ~domains:4 = 1.);
        let cal = P.calibrate ~crossing_ns:20. () in
        let w, t = Fab.plan fab cal ~shard:0 ~domains:4 in
        let w', t' = P.tune cal ~domains:4 in
        Alcotest.(check int) "plan unaffected by the noise sample w" w' w;
        Alcotest.(check int) "plan unaffected by the noise sample t" t' t;
        Alcotest.(check int) "count preserved" ops (Fab.read fab));
  ]

let profiled =
  (* The two-tier backend profile: billing keys on the exact fabric,
     telemetry keys on Cn_sketch lanes behind the router ring. *)
  let module SC = Cn_runtime.Shared_counter in
  let module Svc = Cn_service.Service in
  let classify pid = if pid land 1 = 0 then Fab.Billing else Fab.Telemetry in
  [
    tc "billing tier is exact, telemetry hll tier is within 2 sigma" (fun () ->
        let fab = Fab.create ~shards:2 (Counting.network ~w:4 ~t:4) in
        let p =
          Fab.profiled_counter ~backend:(Svc.Hll { precision = 12 }) ~classify
            fab
        in
        let billing_ops = 500 and telemetry_ops = 20_000 in
        for i = 1 to billing_ops do
          ignore (SC.next p.Fab.counter ~pid:(2 * (i mod 8)))
        done;
        for i = 1 to telemetry_ops do
          ignore (SC.next p.Fab.counter ~pid:((2 * (i mod 8)) + 1))
        done;
        Alcotest.(check int) "billing tier counts exactly" billing_ops
          (p.Fab.billing_value ());
        let est = p.Fab.telemetry_estimate () in
        let err =
          Float.abs (est -. float_of_int telemetry_ops)
          /. float_of_int telemetry_ops
        in
        (* What this pins is the routing (billing ops never leak into
           the sketch tier and vice versa), not estimator variance:
           this fixed stream draws 2.1 sigma at p = 12, and a routing
           bug would show up as a gross shortfall.  5% rejects that
           while tolerating the draw. *)
        Alcotest.(check bool)
          (Printf.sprintf "telemetry estimate %.0f tracks %d (err %.4f)" est
             telemetry_ops err)
          true (err <= 0.05);
        Alcotest.(check bool) "telemetry tier reports resident bytes" true
          (p.Fab.telemetry_memory_bytes () > 0);
        ignore (Fab.shutdown fab));
    tc "slot-sharing pids across lanes do not collapse the union" (fun () ->
        (* Regression: telemetry lanes mint from zero-based slot banks;
           pids that share [pid mod slots] but route to different lanes
           used to mint identical keys, and the union-merged estimate
           undercounted.  512 odd pids over 64 slots force heavy
           cross-lane slot sharing. *)
        let fab = Fab.create ~shards:1 (Counting.network ~w:4 ~t:4) in
        let p =
          Fab.profiled_counter ~backend:(Svc.Hll { precision = 12 }) ~lanes:4
            ~classify fab
        in
        let pids = 512 and per = 40 in
        for i = 0 to pids - 1 do
          for _ = 1 to per do
            ignore (SC.next p.Fab.counter ~pid:((2 * i) + 1))
          done
        done;
        let truth = float_of_int (pids * per) in
        let est = p.Fab.telemetry_estimate () in
        let err = Float.abs (est -. truth) /. truth in
        let sigma = 1.04 /. sqrt (float_of_int (1 lsl 12)) in
        Alcotest.(check bool)
          (Printf.sprintf "estimate %.0f of %.0f (err %.4f)" est truth err)
          true
          (err <= 2. *. sigma);
        ignore (Fab.shutdown fab));
    tc "sparse telemetry tier nets out exactly at quiescence" (fun () ->
        let fab = Fab.create ~shards:1 (Counting.network ~w:4 ~t:4) in
        let p =
          Fab.profiled_counter
            ~backend:(Svc.Sparse { counters = 1024; degree = 3 })
            ~lanes:2 ~classify fab
        in
        for i = 1 to 900 do
          ignore (SC.next p.Fab.counter ~pid:((2 * (i mod 16)) + 1))
        done;
        for _ = 1 to 300 do
          ignore (SC.prev p.Fab.counter ~pid:1)
        done;
        (* Sparse.total is exact whatever the collision structure. *)
        Alcotest.(check (float 0.)) "global net tally is exact" 600.
          (p.Fab.telemetry_estimate ());
        Alcotest.(check int) "billing tier untouched" 0 (p.Fab.billing_value ());
        ignore (Fab.shutdown fab));
    tc "billing conservation holds across 4 mixed domains" (fun () ->
        let fab = Fab.create ~shards:2 (Counting.network ~w:4 ~t:4) in
        let p = Fab.profiled_counter ~classify fab in
        let per = 500 in
        let doms =
          Array.init 4 (fun d ->
              Domain.spawn (fun () ->
                  (* Even pids bill, odd pids stream telemetry. *)
                  for k = 1 to per do
                    ignore (SC.next p.Fab.counter ~pid:((2 * d) + (k land 1)))
                  done))
        in
        Array.iter Domain.join doms;
        Alcotest.(check int) "every billing op counted exactly once"
          (4 * per / 2)
          (p.Fab.billing_value ());
        ignore (Fab.shutdown fab));
    Util.raises_invalid "profiled_counter rejects the Exact telemetry backend"
      (fun () ->
        let fab = Fab.create ~shards:1 (Counting.network ~w:4 ~t:4) in
        ignore (Fab.profiled_counter ~backend:Svc.Exact ~classify fab));
    Util.raises_invalid "profiled_counter rejects lanes < 1" (fun () ->
        let fab = Fab.create ~shards:1 (Counting.network ~w:4 ~t:4) in
        ignore (Fab.profiled_counter ~lanes:0 ~classify fab));
  ]

let suite =
  [
    ("fabric.router", router);
    ("fabric.certification", certification);
    ("fabric.ops", ops);
    ("fabric.resize", resize_under_load);
    ("fabric.tuning", tuning);
    ("fabric.profiled", profiled);
  ]
