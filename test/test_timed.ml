(* Tests for Cn_sim.Timed and Cn_sim.Event_heap: the latency model. *)

module Ti = Cn_sim.Timed
module H = Cn_sim.Event_heap
module T = Cn_network.Topology

let tc name f = Alcotest.test_case name `Quick f
let close a b = abs_float (a -. b) < 1e-9

let heap =
  [
    tc "pops in time order" (fun () ->
        let h = H.create () in
        H.push h ~time:3.0 "c";
        H.push h ~time:1.0 "a";
        H.push h ~time:2.0 "b";
        let order = List.init 3 (fun _ -> match H.pop h with Some (_, v) -> v | None -> "?") in
        Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] order);
    tc "equal times pop FIFO" (fun () ->
        let h = H.create () in
        H.push h ~time:1.0 "first";
        H.push h ~time:1.0 "second";
        H.push h ~time:1.0 "third";
        let order = List.init 3 (fun _ -> match H.pop h with Some (_, v) -> v | None -> "?") in
        Alcotest.(check (list string)) "fifo" [ "first"; "second"; "third" ] order);
    tc "empty pops None" (fun () ->
        let h : unit H.t = H.create () in
        Alcotest.(check bool) "none" true (H.pop h = None);
        Alcotest.(check bool) "empty" true (H.is_empty h));
    tc "size tracks pushes and pops" (fun () ->
        let h = H.create () in
        for i = 1 to 100 do
          H.push h ~time:(float_of_int ((i * 37) mod 19)) i
        done;
        Alcotest.(check int) "size" 100 (H.size h);
        let last = ref neg_infinity in
        for _ = 1 to 100 do
          match H.pop h with
          | Some (t, _) ->
              Alcotest.(check bool) "monotone" true (t >= !last);
              last := t
          | None -> Alcotest.fail "premature empty"
        done);
  ]

let open_runs =
  [
    tc "single token latency equals depth" (fun () ->
        List.iter
          (fun net ->
            let r = Ti.run net ~arrivals:[ (0, 0.0) ] in
            Alcotest.(check bool) "latency" true
              (close r.Ti.avg_latency (float_of_int (T.depth net))))
          [
            Cn_core.Counting.network ~w:8 ~t:8;
            Cn_core.Counting.network ~w:8 ~t:24;
            Cn_baselines.Bitonic.network 8;
            Cn_baselines.Periodic.network 8;
          ]);
    tc "wire delay adds per hop" (fun () ->
        let net = Cn_core.Counting.network ~w:4 ~t:4 in
        let r = Ti.run ~wire_delay:0.5 net ~arrivals:[ (0, 0.0) ] in
        (* depth hops of service 1 plus a trailing wire delay per hop *)
        Alcotest.(check bool) "latency" true
          (close r.Ti.avg_latency (float_of_int (T.depth net) *. 1.5)));
    tc "two tokens on one wire queue at the first balancer" (fun () ->
        let net = Cn_core.Ladder.network 2 in
        let r = Ti.run net ~arrivals:[ (0, 0.0); (0, 0.0) ] in
        Alcotest.(check bool) "avg wait 0.5" true (close r.Ti.avg_wait 0.5);
        Alcotest.(check bool) "makespan 2" true (close r.Ti.makespan 2.0));
    tc "custom service times honoured" (fun () ->
        let net = Cn_core.Ladder.network 2 in
        let r = Ti.run ~service:(fun _ -> 3.0) net ~arrivals:[ (0, 0.0) ] in
        Alcotest.(check bool) "latency 3" true (close r.Ti.avg_latency 3.0));
    Util.raises_invalid "negative arrival" (fun () ->
        ignore (Ti.run (Cn_core.Ladder.network 2) ~arrivals:[ (0, -1.0) ]));
    Util.raises_invalid "bad wire" (fun () ->
        ignore (Ti.run (Cn_core.Ladder.network 2) ~arrivals:[ (5, 0.0) ]));
    Util.raises_invalid "non-positive service" (fun () ->
        ignore (Ti.run ~service:(fun _ -> 0.0) (Cn_core.Ladder.network 2) ~arrivals:[]));
    tc "empty arrivals" (fun () ->
        let r = Ti.run (Cn_core.Ladder.network 2) ~arrivals:[] in
        Alcotest.(check int) "tokens" 0 r.Ti.tokens);
  ]

let closed_runs =
  [
    tc "closed loop completes all rounds" (fun () ->
        let net = Cn_core.Counting.network ~w:8 ~t:8 in
        let r = Ti.closed_loop net ~n:12 ~rounds:20 in
        Alcotest.(check int) "tokens" 240 r.Ti.tokens);
    tc "latency grows with concurrency" (fun () ->
        let net = Cn_core.Counting.network ~w:8 ~t:8 in
        let low = Ti.closed_loop net ~n:2 ~rounds:40 in
        let high = Ti.closed_loop net ~n:64 ~rounds:40 in
        Alcotest.(check bool) "monotone" true (high.Ti.avg_latency > low.Ti.avg_latency));
    tc "saturation throughput approaches first-layer capacity" (fun () ->
        (* w/2 unit-rate servers in the first layer cap throughput. *)
        let net = Cn_core.Counting.network ~w:8 ~t:8 in
        let r = Ti.closed_loop net ~n:128 ~rounds:50 in
        Alcotest.(check bool) "close to 4" true (r.Ti.throughput > 3.5 && r.Ti.throughput <= 4.01));
    tc "diffracting tree saturates at its root" (fun () ->
        let r = Ti.closed_loop (Cn_baselines.Diffracting.network 8) ~n:64 ~rounds:50 in
        Alcotest.(check bool) "capped at 1" true (r.Ti.throughput <= 1.01));
    tc "deeper periodic network has higher unloaded latency" (fun () ->
        let p = Ti.closed_loop (Cn_baselines.Periodic.network 16) ~n:1 ~rounds:30 in
        let c = Ti.closed_loop (Cn_core.Counting.network ~w:16 ~t:16) ~n:1 ~rounds:30 in
        Alcotest.(check bool) "16 > 10" true (p.Ti.avg_latency > c.Ti.avg_latency));
    tc "think time lowers throughput pressure" (fun () ->
        let net = Cn_core.Counting.network ~w:8 ~t:8 in
        let busy = Ti.closed_loop net ~n:16 ~rounds:40 in
        let idle = Ti.closed_loop ~think:10.0 net ~n:16 ~rounds:40 in
        Alcotest.(check bool) "less waiting" true (idle.Ti.avg_wait < busy.Ti.avg_wait));
    tc "jitter is reproducible per seed" (fun () ->
        let net = Cn_core.Counting.network ~w:8 ~t:8 in
        let a = Ti.closed_loop ~jitter:0.7 ~seed:5 net ~n:8 ~rounds:30 in
        let b = Ti.closed_loop ~jitter:0.7 ~seed:5 net ~n:8 ~rounds:30 in
        Alcotest.(check bool) "equal" true (a = b));
    Util.raises_invalid "zero processes" (fun () ->
        ignore (Ti.closed_loop (Cn_core.Ladder.network 2) ~n:0 ~rounds:1));
    Util.raises_invalid "negative think" (fun () ->
        ignore (Ti.closed_loop ~think:(-1.0) (Cn_core.Ladder.network 2) ~n:1 ~rounds:1));
  ]

let heap_properties =
  [
    Util.qtest ~count:200 "heap pops equal a stable sort"
      QCheck2.Gen.(list_size (int_range 0 60) (int_range 0 20))
      (fun times ->
        let h = H.create () in
        List.iteri (fun i t -> H.push h ~time:(float_of_int t) i) times;
        let popped = ref [] in
        let rec drain () =
          match H.pop h with
          | Some (t, v) ->
              popped := (t, v) :: !popped;
              drain ()
          | None -> ()
        in
        drain ();
        let got = List.rev !popped in
        let expected =
          List.mapi (fun i t -> (float_of_int t, i)) times
          |> List.stable_sort (fun (a, _) (b, _) -> compare a b)
        in
        got = expected);
  ]

let suite =
  [
    ("timed.heap", heap);
    ("timed.heap_properties", heap_properties);
    ("timed.open", open_runs);
    ("timed.closed", closed_runs);
  ]
