(* Tests for the higher-level concurrent components: Barrier and the
   prism-equipped diffracting tree. *)

module Barrier = Cn_runtime.Barrier
module D = Cn_runtime.Diffracting_runtime

let tc name f = Alcotest.test_case name `Quick f

let barrier =
  [
    tc "all parties synchronize across rounds" (fun () ->
        let parties = 6 and rounds = 100 in
        let b = Barrier.create ~parties () in
        let in_round = Array.init rounds (fun _ -> Atomic.make 0) in
        let violations = Atomic.make 0 in
        let body pid () =
          for r = 0 to rounds - 1 do
            Atomic.incr in_round.(r);
            if r > 0 && Atomic.get in_round.(r - 1) < parties then Atomic.incr violations;
            Barrier.await b ~pid
          done
        in
        let handles = Array.init parties (fun pid -> Domain.spawn (body pid)) in
        Array.iter Domain.join handles;
        Alcotest.(check int) "violations" 0 (Atomic.get violations);
        Alcotest.(check int) "rounds" rounds (Barrier.rounds_completed b);
        Alcotest.(check bool) "all arrived" true
          (Array.for_all (fun c -> Atomic.get c = parties) in_round));
    tc "custom network accepted when widths match" (fun () ->
        let net = Cn_core.Counting.network ~w:4 ~t:8 in
        let b = Barrier.create ~network:net ~parties:8 () in
        Alcotest.(check int) "parties" 8 (Barrier.parties b));
    Util.raises_invalid "custom network width mismatch" (fun () ->
        ignore (Barrier.create ~network:(Cn_core.Counting.network ~w:4 ~t:8) ~parties:6 ()));
    Util.raises_invalid "odd parties without network" (fun () ->
        ignore (Barrier.create ~parties:5 ()));
    Util.raises_invalid "fewer than two parties" (fun () ->
        ignore (Barrier.create ~parties:1 ()));
    tc "default network choice covers non-power-of-two parties" (fun () ->
        (* parties = 12: w = 4 (largest power of two dividing 12). *)
        let b = Barrier.create ~parties:12 () in
        let handles =
          Array.init 12 (fun pid ->
              Domain.spawn (fun () ->
                  for _ = 1 to 20 do
                    Barrier.await b ~pid
                  done))
        in
        Array.iter Domain.join handles;
        Alcotest.(check int) "rounds" 20 (Barrier.rounds_completed b));
  ]

let diffracting =
  [
    tc "sequential values are dense" (fun () ->
        let tree = D.create ~width:8 () in
        let vs = List.init 40 (fun _ -> D.next tree) in
        Alcotest.(check (list int)) "range" (List.init 40 (fun i -> i)) (List.sort compare vs));
    tc "sequential tokens never diffract" (fun () ->
        let tree = D.create ~width:8 () in
        for _ = 1 to 50 do
          ignore (D.next tree)
        done;
        Alcotest.(check int) "no pairs" 0 (D.diffractions tree);
        (* Every token toggles once per level. *)
        Alcotest.(check int) "toggles" (50 * 3) (D.toggle_passes tree));
    tc "exit distribution is step" (fun () ->
        let tree = D.create ~width:8 () in
        for _ = 1 to 37 do
          ignore (D.next tree)
        done;
        Util.check_step (D.exit_distribution tree));
    tc "concurrent uniqueness and density" (fun () ->
        let tree = D.create ~width:16 ~patience:100 () in
        let domains = 5 and ops = 3000 in
        let results = Array.init domains (fun _ -> Array.make ops (-1)) in
        let body pid () =
          for i = 0 to ops - 1 do
            results.(pid).(i) <- D.next tree
          done
        in
        let handles = Array.init domains (fun pid -> Domain.spawn (body pid)) in
        Array.iter Domain.join handles;
        let total = domains * ops in
        let seen = Array.make total false in
        let ok = ref true in
        Array.iter
          (Array.iter (fun v ->
               if v < 0 || v >= total || seen.(v) then ok := false else seen.(v) <- true))
          results;
        Alcotest.(check bool) "unique and dense" true
          (!ok && Array.for_all (fun b -> b) seen);
        Util.check_step (D.exit_distribution tree);
        (* Work conservation: each of the (total * lg w) node visits ends
           in a toggle or half a diffraction. *)
        Alcotest.(check int) "visits accounted" (total * 4)
          (D.toggle_passes tree + (2 * D.diffractions tree)));
    Util.raises_invalid "width not power of two" (fun () -> ignore (D.create ~width:6 ()));
    Util.raises_invalid "zero prism width" (fun () ->
        ignore (D.create ~prism_width:0 ~width:4 ()));
    Util.raises_invalid "negative patience" (fun () ->
        ignore (D.create ~patience:(-1) ~width:4 ()));
  ]

let suite = [ ("concurrency.barrier", barrier); ("concurrency.diffracting", diffracting) ]
