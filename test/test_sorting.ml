(* Tests for Cn_core.Sorting and Cn_baselines.Batcher: the Section 7
   sorting byproduct. *)

module Sorting = Cn_core.Sorting
module C = Cn_core.Counting

let tc name f = Alcotest.test_case name `Quick f

let extraction =
  [
    tc "width and depth preserved" (fun () ->
        let net = C.network ~w:8 ~t:8 in
        let s = Sorting.of_topology net in
        Alcotest.(check int) "width" 8 (Sorting.width s);
        Alcotest.(check int) "depth" (Cn_network.Topology.depth net) (Sorting.depth s);
        Alcotest.(check int) "comparators" (Cn_network.Topology.size net)
          (Sorting.comparator_count s));
    Util.raises_invalid "irregular network rejected" (fun () ->
        Sorting.of_topology (C.network ~w:4 ~t:8));
    Util.raises_invalid "wrong input length" (fun () ->
        let s = Sorting.of_topology (C.network ~w:4 ~t:4) in
        ignore (Sorting.apply s [| 1; 2 |]));
  ]

let sortedness =
  [
    tc "section 7: C(4,4) sorts (0-1 exhaustive)" (fun () ->
        Alcotest.(check bool) "sorts" true
          (Sorting.sorts_zero_one (Sorting.of_topology (C.network ~w:4 ~t:4))));
    tc "section 7: C(8,8) sorts (0-1 exhaustive)" (fun () ->
        Alcotest.(check bool) "sorts" true
          (Sorting.sorts_zero_one (Sorting.of_topology (C.network ~w:8 ~t:8))));
    tc "section 7: C(16,16) sorts (0-1 exhaustive)" (fun () ->
        Alcotest.(check bool) "sorts" true
          (Sorting.sorts_zero_one (Sorting.of_topology (C.network ~w:16 ~t:16))));
    tc "C(32,32) sorts (random)" (fun () ->
        Alcotest.(check bool) "sorts" true
          (Sorting.sorts_random ~trials:2000 (Sorting.of_topology (C.network ~w:32 ~t:32))));
    tc "bitonic counting network sorts" (fun () ->
        Alcotest.(check bool) "sorts" true
          (Sorting.sorts_zero_one (Sorting.of_topology (Cn_baselines.Bitonic.network 8))));
    tc "periodic counting network sorts" (fun () ->
        Alcotest.(check bool) "sorts" true
          (Sorting.sorts_zero_one (Sorting.of_topology (Cn_baselines.Periodic.network 8))));
    tc "butterfly does not sort" (fun () ->
        (* A butterfly is merely smoothing, hence its comparator network
           must fail on some 0-1 input. *)
        Alcotest.(check bool) "fails" false
          (Sorting.sorts_zero_one (Sorting.of_topology (Cn_core.Butterfly.forward 8))));
    Util.raises_invalid "exhaustive check caps width" (fun () ->
        ignore (Sorting.sorts_zero_one (Sorting.of_topology (C.network ~w:32 ~t:32))));
  ]

let application =
  [
    tc "apply returns a permutation of the input" (fun () ->
        let s = Sorting.of_topology (C.network ~w:8 ~t:8) in
        let input = [| 5; 3; 8; 1; 9; 2; 7; 4 |] in
        let out = Sorting.apply s input in
        Alcotest.(check (list int)) "multiset"
          (List.sort compare (Array.to_list input))
          (List.sort compare (Array.to_list out)));
    tc "apply is descending, apply_ascending ascending" (fun () ->
        let s = Sorting.of_topology (C.network ~w:8 ~t:8) in
        let input = [| 5; 3; 8; 1; 9; 2; 7; 4 |] in
        Alcotest.(check bool) "desc" true (Sorting.is_sorted_descending (Sorting.apply s input));
        Alcotest.(check (array int)) "asc" [| 1; 2; 3; 4; 5; 7; 8; 9 |]
          (Sorting.apply_ascending s input));
    tc "duplicates handled" (fun () ->
        let s = Sorting.of_topology (C.network ~w:4 ~t:4) in
        Alcotest.(check (array int)) "dups" [| 7; 7; 2; 2 |] (Sorting.apply s [| 2; 7; 2; 7 |]));
    Util.qtest ~count:300 "random arrays sort"
      QCheck2.Gen.(list_repeat 16 (int_range (-1000) 1000))
      (fun l ->
        let s = Sorting.of_topology (C.network ~w:16 ~t:16) in
        Sorting.is_sorted_descending (Sorting.apply s (Array.of_list l)));
  ]

let batcher =
  [
    tc "batcher sorts (0-1 exhaustive, w=8)" (fun () ->
        Alcotest.(check bool) "sorts" true
          (Sorting.sorts_zero_one (Cn_baselines.Batcher.network 8)));
    tc "batcher sorts (0-1 exhaustive, w=16)" (fun () ->
        Alcotest.(check bool) "sorts" true
          (Sorting.sorts_zero_one (Cn_baselines.Batcher.network 16)));
    tc "batcher depth formula" (fun () ->
        List.iter
          (fun w ->
            Alcotest.(check int) (Printf.sprintf "w=%d" w)
              (Cn_baselines.Batcher.depth_formula ~w)
              (Sorting.depth (Cn_baselines.Batcher.network w)))
          [ 2; 4; 8; 16; 32 ]);
    tc "batcher comparator count formula" (fun () ->
        List.iter
          (fun w ->
            Alcotest.(check int) (Printf.sprintf "w=%d" w)
              (Cn_baselines.Batcher.comparator_count_formula ~w)
              (Sorting.comparator_count (Cn_baselines.Batcher.network w)))
          [ 2; 4; 8; 16; 32 ]);
    tc "C(w,w) sorter has same depth as batcher" (fun () ->
        List.iter
          (fun w ->
            Alcotest.(check int) (Printf.sprintf "w=%d" w)
              (Sorting.depth (Cn_baselines.Batcher.network w))
              (Sorting.depth (Sorting.of_topology (C.network ~w ~t:w))))
          [ 4; 8; 16 ]);
  ]

let suite =
  [
    ("sorting.extraction", extraction);
    ("sorting.sortedness", sortedness);
    ("sorting.application", application);
    ("sorting.batcher", batcher);
  ]
