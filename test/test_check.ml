(* Tests for Cn_check: the deterministic race checker — engine
   plumbing, the selftest against the deliberately buggy pre-fix
   models, the pinned reproducer schedules, and the real service
   protocol passing under exploration. *)

module E = Cn_check.Engine
module Self = Cn_check.Selftest
module Sc = Cn_check.Scenarios
module Fsc = Cn_check.Fabric_scenarios

let tc name f = Alcotest.test_case name `Quick f

let engine =
  [
    tc "schedule strings round-trip" (fun () ->
        let s = [ 0; 2; 1; 1; 0; 3 ] in
        Alcotest.(check (list int))
          "round trip" s
          (E.schedule_of_string (E.schedule_to_string s));
        Alcotest.(check (list int)) "empty" [] (E.schedule_of_string ""));
    tc "explore is deterministic" (fun () ->
        let run () = E.explore ~preemptions:1 Self.lifecycle_race in
        let a = run () and b = run () in
        Alcotest.(check bool) "same failure" true (a.E.failure = b.E.failure);
        Alcotest.(check int) "same interleavings" a.E.stats.E.interleavings
          b.E.stats.E.interleavings);
  ]

let selftest =
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  [
    tc "explorer finds the lifecycle race (stopped resurrected)" (fun () ->
        let out = E.explore ~preemptions:2 Self.lifecycle_race in
        match out.E.failure with
        | None -> Alcotest.fail "planted lifecycle bug not found"
        | Some f ->
            Alcotest.(check bool) "reason" true (contains f.E.reason "resurrected"));
    tc "explorer finds the admission race (late traversal)" (fun () ->
        let out = E.explore ~preemptions:2 Self.admission_race in
        match out.E.failure with
        | None -> Alcotest.fail "planted admission bug not found"
        | Some f ->
            Alcotest.(check bool) "reason" true (contains f.E.reason "quiescence"));
    tc "pinned lifecycle schedule replays to the failure" (fun () ->
        match E.replay Self.lifecycle_race Self.lifecycle_schedule with
        | None -> Alcotest.fail "pinned lifecycle schedule no longer fails"
        | Some f ->
            Alcotest.(check bool) "reason" true (contains f.E.reason "resurrected"));
    tc "pinned admission schedule replays to the failure" (fun () ->
        match E.replay Self.admission_race Self.admission_schedule with
        | None -> Alcotest.fail "pinned admission schedule no longer fails"
        | Some f ->
            Alcotest.(check bool) "reason" true (contains f.E.reason "quiescence"));
    tc "a found failure's schedule replays to the same failure" (fun () ->
        let out = E.explore ~preemptions:2 Self.admission_race in
        match out.E.failure with
        | None -> Alcotest.fail "no failure to replay"
        | Some f -> (
            match E.replay Self.admission_race f.E.schedule with
            | None -> Alcotest.fail "explorer schedule did not replay"
            | Some f' ->
                Alcotest.(check string) "same reason" f.E.reason f'.E.reason));
  ]

let service_protocol =
  (* The real Service_core.Make body over the model network: every
     scenario must survive every interleaving within the preemption
     bound, and the exploration must be exhaustive (complete = true,
     no step-bound cutoffs). *)
  List.map
    (fun (name, mk) ->
      tc (Printf.sprintf "%s passes exhaustively at 2 preemptions" name)
        (fun () ->
          let out = E.explore ~preemptions:2 mk in
          (match out.E.failure with
          | None -> ()
          | Some f ->
              Alcotest.failf "%s: %s (schedule %s)" name f.E.reason
                (E.schedule_to_string f.E.schedule));
          Alcotest.(check bool) "complete" true out.E.stats.E.complete;
          Alcotest.(check int) "no cutoffs" 0 out.E.stats.E.cutoffs;
          Alcotest.(check bool) "explored something" true
            (out.E.stats.E.interleavings > 0)))
    Sc.all

let fabric_protocol =
  (* The real Fabric_core.Make body over instrumented model services:
     hot-resize, elastic rescale and the combining read must survive
     every interleaving within the preemption bound. *)
  List.map
    (fun (name, mk) ->
      tc (Printf.sprintf "%s passes exhaustively at 2 preemptions" name)
        (fun () ->
          let out = E.explore ~preemptions:2 mk in
          (match out.E.failure with
          | None -> ()
          | Some f ->
              Alcotest.failf "%s: %s (schedule %s)" name f.E.reason
                (E.schedule_to_string f.E.schedule));
          Alcotest.(check bool) "complete" true out.E.stats.E.complete;
          Alcotest.(check int) "no cutoffs" 0 out.E.stats.E.cutoffs;
          Alcotest.(check bool) "explored something" true
            (out.E.stats.E.interleavings > 0)))
    Fsc.all

let cooperative =
  [
    tc "empty schedule runs every scenario cooperatively clean" (fun () ->
        List.iter
          (fun (name, mk) ->
            match E.replay mk [] with
            | None -> ()
            | Some f -> Alcotest.failf "%s: %s" name f.E.reason)
          (Sc.all @ Fsc.all));
  ]

let suite =
  [
    ("check.engine", engine);
    ("check.selftest", selftest);
    ("check.service", service_protocol);
    ("check.fabric", fabric_protocol);
    ("check.cooperative", cooperative);
  ]
