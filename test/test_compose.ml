(* Composability of the wire-level construction API: the [*_wires]
   functions are meant to let users embed the paper's building blocks in
   custom networks; these tests build such hybrids and check their
   semantics. *)

module T = Cn_network.Topology
module E = Cn_network.Eval
module S = Cn_sequence.Sequence
module B = Cn_network.Builder

let tc name f = Alcotest.test_case name `Quick f

let compose =
  [
    tc "two counting networks merged by a bitonic merger count" (fun () ->
        (* The generalized bitonic recursion: (counting || counting) ;
           bitonic-merger is a counting network, whatever the counting
           sub-networks are — here the paper's C(4,8)s. *)
        let net =
          B.build ~input_width:8 (fun b ins ->
              let top = Cn_core.Counting.wires b ~t:8 (Array.sub ins 0 4) in
              let bottom = Cn_core.Counting.wires b ~t:8 (Array.sub ins 4 4) in
              Cn_baselines.Bitonic.merger_wires b (top, bottom))
        in
        Alcotest.(check int) "t" 16 (T.output_width net);
        Util.for_random_inputs ~trials:120 net (fun ~trial:_ ~x ~y ->
            Alcotest.(check int) "sum" (S.sum x) (S.sum y);
            Util.check_step y));
    tc "ladder + two counting halves + difference merger = C(w,t) by hand" (fun () ->
        (* Re-assemble the Fig. 10 recursion manually from the public
           combinators and compare behaviourally with the packaged
           constructor. *)
        let manual =
          B.build ~input_width:8 (fun b ins ->
              let l = Cn_core.Ladder.wires b ins in
              let g = Cn_core.Counting.wires b ~t:12 (Array.sub l 0 4) in
              let h = Cn_core.Counting.wires b ~t:12 (Array.sub l 4 4) in
              Cn_core.Merging.wires b ~delta:4 (g, h))
        in
        let packaged = Cn_core.Counting.network ~w:8 ~t:24 in
        Alcotest.(check bool) "identical topology" true (T.equal manual packaged));
    tc "butterfly before a counting network narrows its spread" (fun () ->
        (* A smoothing pre-stage cannot break counting: the composite
           still counts (counting of smoothed input counts). *)
        let net =
          B.build ~input_width:8 (fun b ins ->
              let smoothed = Cn_core.Butterfly.forward_wires b ins in
              Cn_core.Counting.wires b ~t:8 smoothed)
        in
        Util.for_random_inputs ~trials:100 net (fun ~trial:_ ~x ~y ->
            Alcotest.(check int) "sum" (S.sum x) (S.sum y);
            Util.check_step y));
    tc "counting network beside pass-through wires" (fun () ->
        (* Only half the wires go through the network; the rest pass
           straight through — sparse embedding. *)
        let net =
          B.build ~input_width:8 (fun b ins ->
              let counted = Cn_core.Counting.wires b ~t:4 (Array.sub ins 0 4) in
              Array.append counted (Array.sub ins 4 4))
        in
        let y = E.quiescent net [| 3; 1; 4; 1; 10; 20; 30; 40 |] in
        Util.check_step ~msg:"counted prefix" (Array.sub y 0 4);
        Alcotest.check Util.seq "untouched suffix" [| 10; 20; 30; 40 |] (Array.sub y 4 4));
    tc "periodic block after our ladder still preserves sums" (fun () ->
        let net =
          B.build ~input_width:8 (fun b ins ->
              Cn_baselines.Periodic.block_wires b (Cn_core.Ladder.wires b ins))
        in
        Util.for_random_inputs ~trials:80 net (fun ~trial:_ ~x ~y ->
            Alcotest.(check int) "sum" (S.sum x) (S.sum y)));
    tc "two stacked C(w,t) stay counting" (fun () ->
        (* Cascading counting networks through Topology.cascade: the
           second sees a step input, output must still be step. *)
        let c = Cn_core.Counting.network ~w:8 ~t:8 in
        let net = T.cascade c c in
        Util.for_random_inputs ~trials:80 net (fun ~trial:_ ~x:_ ~y -> Util.check_step y));
  ]

let suite = [ ("compose.builders", compose) ]
