(* Fuzz tests: framework invariants over randomly generated networks
   (Cn_network.Random_net), plus the Codec round trip. *)

module T = Cn_network.Topology
module E = Cn_network.Eval
module S = Cn_sequence.Sequence
module RN = Cn_network.Random_net
module Codec = Cn_network.Codec

let tc name f = Alcotest.test_case name `Quick f

let gen_layered =
  QCheck2.Gen.(
    bind (int_range 0 1000) (fun seed ->
        bind (map (fun h -> 2 * h) (int_range 1 8)) (fun width ->
            map (fun layers -> RN.layered ~seed ~layers width) (int_range 0 6))))

let gen_sparse =
  QCheck2.Gen.(
    bind (int_range 0 1000) (fun seed ->
        bind (map (fun h -> 2 * h) (int_range 1 8)) (fun width ->
            bind (int_range 0 6) (fun layers ->
                map
                  (fun d -> RN.sparse ~seed ~density:(float_of_int d /. 10.) ~layers width)
                  (int_range 0 10)))))

let gen_irregular =
  QCheck2.Gen.(
    bind (int_range 0 1000) (fun seed ->
        bind (int_range 2 10) (fun width ->
            map (fun layers -> RN.irregular ~seed ~layers width) (int_range 0 5))))

let load_for rng net = Array.init (T.input_width net) (fun _ -> Random.State.int rng 20)

let invariants =
  [
    Util.qtest ~count:150 "layered: sum preservation + 1-smooth closure" gen_layered
      (fun net ->
        let rng = Random.State.make [| T.size net |] in
        let x = load_for rng net in
        let y = E.quiescent net x in
        S.sum y = S.sum x
        &&
        (* A regular network never increases the spread beyond input
           spread + nothing is guaranteed, but uniform inputs must pass
           through uniformly. *)
        let u = Array.make (T.input_width net) 7 in
        E.quiescent net u = u);
    Util.qtest ~count:150 "layered: trace agrees with closed form" gen_layered (fun net ->
        let rng = Random.State.make [| T.size net + 1 |] in
        let x = load_for rng net in
        E.trace ~seed:(T.size net) net x = E.quiescent net x);
    Util.qtest ~count:150 "sparse: structural sanity" gen_sparse (fun net ->
        T.input_width net = T.output_width net
        && Array.fold_left (fun acc l -> acc + Array.length l) 0 (T.layers net) = T.size net);
    Util.qtest ~count:150 "sparse: sum preservation" gen_sparse (fun net ->
        let rng = Random.State.make [| 2 * T.size net |] in
        let x = load_for rng net in
        S.sum (E.quiescent net x) = S.sum x);
    Util.qtest ~count:150 "irregular: sum preservation" gen_irregular (fun net ->
        let rng = Random.State.make [| (3 * T.size net) + 1 |] in
        let x = load_for rng net in
        S.sum (E.quiescent net x) = S.sum x);
    Util.qtest ~count:100 "irregular: antitoken cancellation" gen_irregular (fun net ->
        let w = T.input_width net in
        let rng = Random.State.make [| (5 * T.size net) + 2 |] in
        let tokens = Array.init w (fun _ -> Random.State.int rng 8) in
        let antitokens = Array.init w (fun _ -> Random.State.int rng 8) in
        let nets = Array.init w (fun i -> tokens.(i) - antitokens.(i)) in
        E.trace_signed ~seed:(T.size net) net ~tokens ~antitokens = E.quiescent_net net nets);
    Util.qtest ~count:100 "self-isomorphism found on random layered nets"
      QCheck2.Gen.(
        bind (int_range 0 200) (fun seed ->
            map (fun layers -> RN.layered ~seed ~layers 6) (int_range 0 3)))
      (fun net -> match Cn_network.Iso.find net net with Some _ -> true | None -> false);
    Util.qtest ~count:120 "runtime agrees with evaluator on random nets" gen_layered
      (fun net ->
        let rt = Cn_runtime.Network_runtime.compile net in
        let rng = Random.State.make [| (7 * T.size net) + 3 |] in
        let x = load_for rng net in
        Array.iteri
          (fun wire count ->
            for _ = 1 to count do
              ignore (Cn_runtime.Network_runtime.traverse rt ~wire)
            done)
          x;
        Cn_runtime.Network_runtime.exit_distribution rt = E.quiescent net x);
  ]

let generator_validation =
  [
    Util.raises_invalid "layered odd width" (fun () -> RN.layered ~layers:2 5);
    Util.raises_invalid "layered negative layers" (fun () -> RN.layered ~layers:(-1) 4);
    Util.raises_invalid "sparse bad density" (fun () -> RN.sparse ~density:1.5 ~layers:2 4);
    Util.raises_invalid "irregular width 1" (fun () -> RN.irregular ~layers:2 1);
    tc "determinism under equal seeds" (fun () ->
        Alcotest.(check bool) "equal" true
          (T.equal (RN.layered ~seed:9 ~layers:4 8) (RN.layered ~seed:9 ~layers:4 8)));
    tc "different seeds differ" (fun () ->
        Alcotest.(check bool) "differ" false
          (T.equal (RN.layered ~seed:1 ~layers:4 8) (RN.layered ~seed:2 ~layers:4 8)));
  ]

let codec =
  [
    tc "round trip on hand-built networks" (fun () ->
        List.iter
          (fun net ->
            match Codec.of_string (Codec.to_string net) with
            | Ok net2 -> Alcotest.(check bool) "equal" true (T.equal net net2)
            | Error e -> Alcotest.failf "decode failed: %s" e)
          [
            Cn_core.Counting.network ~w:4 ~t:8;
            Cn_core.Counting.network ~w:8 ~t:8;
            Cn_baselines.Bitonic.network 8;
            Cn_baselines.Diffracting.network 8;
            Cn_core.Butterfly.forward 16;
            T.identity 3;
          ]);
    Util.qtest ~count:100 "round trip on random networks" gen_irregular (fun net ->
        match Codec.of_string (Codec.to_string net) with
        | Ok net2 -> T.equal net net2
        | Error _ -> false);
    tc "rejects missing header fields" (fun () ->
        (match Codec.of_string "counting-network v1\noutputs : in0\n" with
        | Error e -> Alcotest.(check bool) "mentions inputs" true (e = "missing 'inputs' line")
        | Ok _ -> Alcotest.fail "expected error"));
    tc "rejects bad token" (fun () ->
        match Codec.of_string "counting-network v1\ninputs 1\noutputs : wat\n" with
        | Error e -> Alcotest.(check bool) "has line no" true (String.length e > 0)
        | Ok _ -> Alcotest.fail "expected error");
    tc "rejects structural violations with pinned lint codes" (fun () ->
        match Codec.of_string "counting-network v1\ninputs 2\noutputs : in0 in0\n" with
        | Error e ->
            let has code =
              let n = String.length code in
              let rec go i =
                i + n <= String.length e && (String.sub e i n = code || go (i + 1))
              in
              go 0
            in
            Alcotest.(check bool) "NET006 consumed twice" true (has "NET006");
            Alcotest.(check bool) "NET007 never consumed" true (has "NET007")
        | Ok _ -> Alcotest.fail "expected error");
    tc "rejects out-of-order balancer ids" (fun () ->
        match
          Codec.of_string
            "counting-network v1\ninputs 2\nbalancer 1 2 2 0 : in0 in1\noutputs : b1.0 b1.1\n"
        with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected error");
    tc "round trip preserves randomized initial states" (fun () ->
        let net = T.randomize_states ~seed:21 (Cn_baselines.Bitonic.network 8) in
        (match Codec.of_string (Codec.to_string net) with
        | Ok net2 ->
            Alcotest.(check bool) "equal" true (T.equal net net2);
            (* Behavioural check: same outputs on a probe load. *)
            let x = Array.init 8 (fun i -> i + 1) in
            Alcotest.check Util.seq "behaviour"
              (Cn_network.Eval.quiescent net x)
              (Cn_network.Eval.quiescent net2 x)
        | Error e -> Alcotest.failf "decode failed: %s" e));
    tc "iso search respects its budget" (fun () ->
        let net = Cn_baselines.Bitonic.network 16 in
        Alcotest.(check bool) "budget 1 gives up" true
          (Cn_network.Iso.find ~budget:1 net net = None));
    tc "ignores comments and blank lines" (fun () ->
        let text =
          "counting-network v1\n# a comment\n\ninputs 2\nbalancer 0 2 2 0 : in0 in1\n\
           outputs : b0.0 b0.1\n"
        in
        match Codec.of_string text with
        | Ok net -> Alcotest.(check int) "size" 1 (T.size net)
        | Error e -> Alcotest.failf "decode failed: %s" e);
  ]

let suite =
  [
    ("fuzz.invariants", invariants);
    ("fuzz.generators", generator_validation);
    ("fuzz.codec", codec);
  ]
