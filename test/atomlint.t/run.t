The atomics lint walks the source AST and rejects raw concurrency
primitives outside lib/runtime.

A clean file: everything routed through the runtime's vocabulary, and
function-local refs are fine.

  $ cat > clean.ml <<'OCAML'
  > module A = Cn_runtime.Atomics.Real
  > let tally xs =
  >   let acc = ref 0 in
  >   List.iter (fun x -> acc := !acc + x) xs;
  >   !acc
  > OCAML
  $ atomlint clean.ml
  1 files scanned, 0 waived, 0 findings

Raw primitives and module-level state are each caught with their pinned
code, in source order.

  $ cat > dirty.ml <<'OCAML'
  > let hits = ref 0
  > let flag = Atomic.make false
  > let lock = Mutex.create ()
  > let bump () = incr hits; Atomic.set flag true
  > OCAML
  $ atomlint dirty.ml
  dirty.ml:1:11 ATOM003 module-level ref: shared mutable state belongs to lib/runtime
  dirty.ml:2:11 ATOM001 raw Atomic.make: route it through Cn_runtime.Atomics (Real or instrumented)
  dirty.ml:3:11 ATOM002 raw Mutex.create: blocking coordination belongs to lib/runtime
  dirty.ml:4:25 ATOM001 raw Atomic.set: route it through Cn_runtime.Atomics (Real or instrumented)
  1 files scanned, 0 waived, 4 findings
  [1]

Aliasing or opening a forbidden module is caught too, not just dotted
access.

  $ cat > alias.ml <<'OCAML'
  > module A = Atomic
  > open Mutex
  > OCAML
  $ atomlint alias.ml
  alias.ml:1:11 ATOM001 raw Atomic: route it through Cn_runtime.Atomics (Real or instrumented)
  alias.ml:2:5 ATOM002 raw Mutex: blocking coordination belongs to lib/runtime
  1 files scanned, 0 waived, 2 findings
  [1]

Waivers must carry a reason; a bare attribute is ignored (and said so).

  $ cat > waived.ml <<'OCAML'
  > let counter = (Atomic.make [@atomlint.allow "benchmark fixture; single domain"]) 0
  > OCAML
  $ atomlint waived.ml
  1 files scanned, 0 waived, 0 findings

  $ cat > noreason.ml <<'OCAML'
  > let counter = (Atomic.make [@atomlint.allow]) 0
  > OCAML
  $ atomlint noreason.ml
  noreason.ml:1:15 ATOM001 raw Atomic.make: route it through Cn_runtime.Atomics (Real or instrumented)
  1 files scanned, 0 waived, 1 findings
  noreason.ml: [@atomlint.allow] without a reason string is ignored
  [1]

A file-level waiver exempts the whole file, reason recorded.

  $ cat > filewaiver.ml <<'OCAML'
  > [@@@atomlint.allow "test scaffolding; runs on one domain"]
  > let state = ref []
  > let busy = Atomic.make false
  > OCAML
  $ atomlint filewaiver.ml
  filewaiver.ml: waived (test scaffolding; runs on one domain)
  1 files scanned, 1 waived, 0 findings

lib/runtime owns the primitives: anything under it is allowlisted.

  $ mkdir -p lib/runtime
  $ cp dirty.ml lib/runtime/owned.ml
  $ atomlint lib/runtime/owned.ml
  lib/runtime/owned.ml: waived (lib/runtime allowlist)
  1 files scanned, 1 waived, 0 findings

Directories are scanned recursively; missing roots are an error.

  $ atomlint no_such_dir
  atomlint: no such file or directory: no_such_dir
  [2]
