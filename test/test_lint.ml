(* Tests for Cn_lint: well-formedness codes, abstract-interpretation
   facts, the certification pipeline, CSR faithfulness, layer-prefix
   extraction, and the pinned mutant battery. *)

module T = Cn_network.Topology
module Raw = Cn_network.Raw
module Iso = Cn_network.Iso
module Rt = Cn_runtime.Network_runtime
module Counting = Cn_core.Counting
module Butterfly = Cn_core.Butterfly
module Blocks = Cn_core.Blocks
module Ladder = Cn_core.Ladder
module L = Cn_lint

let tc name f = Alcotest.test_case name `Quick f
let lg w = Cn_core.Params.ilog2 w

let codes_of_violations vs = List.map (fun (v : Raw.violation) -> v.code) vs

(* ---- well-formedness: pinned NET codes on hand-broken raws ---- *)

let raw_of net = Raw.of_topology net

let wellformed_tests =
  [
    tc "valid topologies have no violations" (fun () ->
        List.iter
          (fun net -> Alcotest.(check (list string)) "clean" [] (codes_of_violations (Raw.check (raw_of net))))
          [ Counting.network ~w:8 ~t:8; Butterfly.backward 16; Ladder.network 4 ]);
    tc "NET001 non-positive input width" (fun () ->
        let r = { (raw_of (Ladder.network 2)) with Raw.input_width = 0 } in
        Alcotest.(check bool) "has NET001" true
          (List.mem "NET001" (codes_of_violations (Raw.check r))));
    tc "NET003 init state out of range" (fun () ->
        let r = raw_of (Ladder.network 2) in
        let b = r.Raw.balancers.(0) in
        let r = { r with Raw.balancers = [| { b with Raw.init_state = b.Raw.fan_out } |] } in
        Alcotest.(check bool) "has NET003" true
          (List.mem "NET003" (codes_of_violations (Raw.check r))));
    tc "NET005 dangling balancer reference" (fun () ->
        let r = raw_of (Ladder.network 2) in
        let r = { r with Raw.outputs = [| T.Bal_output { bal = 7; port = 0 } |] } in
        Alcotest.(check bool) "has NET005" true
          (List.mem "NET005" (codes_of_violations (Raw.check r))));
    tc "NET006/NET007 duplicate and unconsumed" (fun () ->
        let r = raw_of (Ladder.network 2) in
        let r = { r with Raw.outputs = [| T.Net_input 0; T.Net_input 0 |] } in
        let cs = codes_of_violations (Raw.check r) in
        Alcotest.(check bool) "has NET006" true (List.mem "NET006" cs);
        Alcotest.(check bool) "has NET007" true (List.mem "NET007" cs));
    tc "validate round-trips clean raws" (fun () ->
        let net = Counting.network ~w:4 ~t:4 in
        match Raw.validate (raw_of net) with
        | Ok net2 -> Alcotest.(check bool) "equal" true (T.equal net net2)
        | Error _ -> Alcotest.fail "expected Ok");
  ]

(* ---- abstract interpretation: sound facts, exact pins ---- *)

let absint_tests =
  [
    tc "counting networks conserve flow and are uniform" (fun () ->
        List.iter
          (fun net ->
            let a = L.Absint.analyze net in
            Alcotest.(check bool) "conserves" true (L.Absint.conserves a);
            Alcotest.(check bool) "uniform" true (L.Absint.uniform a))
          [ Counting.network ~w:4 ~t:4; Counting.network ~w:8 ~t:8; Cn_baselines.Bitonic.network 8 ]);
    tc "abstract smoothness of D(w) re-derives the Lemma 5.2 bound" (fun () ->
        (* The interval envelope grows by at most 1 per layer, so the
           analyzer proves lg w-smoothness symbolically at every width. *)
        List.iter
          (fun w ->
            let a = L.Absint.analyze (Butterfly.forward w) in
            Alcotest.(check (option int))
              (Printf.sprintf "D(%d)" w)
              (Some (lg w))
              (L.Absint.smoothness_bound a))
          [ 2; 4; 8; 16; 32; 64 ]);
    tc "ladder pair difference is exactly [0,1]" (fun () ->
        let a = L.Absint.analyze (Ladder.network 4) in
        match L.Absint.output_difference a 0 2 with
        | Some (lo, hi) ->
            Alcotest.(check bool) "lo=0" true (L.Absint.Q.equal lo L.Absint.Q.zero);
            Alcotest.(check bool) "hi=1" true (L.Absint.Q.equal hi L.Absint.Q.one)
        | None -> Alcotest.fail "expected cancelling difference");
    tc "non-uniform network yields no spread bound" (fun () ->
        (* identity wiring is trivially conservative but not uniform *)
        let a = L.Absint.analyze (T.identity 3) in
        Alcotest.(check bool) "conserves" true (L.Absint.conserves a);
        Alcotest.(check bool) "not uniform" false (L.Absint.uniform a);
        Alcotest.(check bool) "no bound" true (L.Absint.spread_bound a = None));
  ]

(* ---- certification pipeline ---- *)

let cert_tests =
  [
    tc "C(4,4) certifies exhaustively" (fun () ->
        let c =
          L.Cert.certify
            ~reference:(Counting.network ~w:4 ~t:4, "Theorems 4.1/4.2")
            ~expected_depth:(Counting.depth_formula ~w:4)
            ~subject:"C(4,4)" ~expectation:L.Cert.Counting
            (Counting.network ~w:4 ~t:4)
        in
        Alcotest.(check bool) "ok" true (L.Cert.ok c);
        match c.L.Cert.evidence with
        | L.Cert.Exhaustive { max_tokens; vectors } ->
            Alcotest.(check int) "max_tokens" 4 max_tokens;
            Alcotest.(check int) "vectors" 625 vectors
        | _ -> Alcotest.fail "expected exhaustive evidence");
    tc "C(16,16) certifies by construction" (fun () ->
        let c =
          L.Cert.certify
            ~reference:(Counting.network ~w:16 ~t:16, "Theorems 4.1/4.2")
            ~expected_depth:(Counting.depth_formula ~w:16)
            ~subject:"C(16,16)" ~expectation:L.Cert.Counting
            (Counting.network ~w:16 ~t:16)
        in
        Alcotest.(check bool) "ok" true (L.Cert.ok c);
        match c.L.Cert.evidence with
        | L.Cert.By_construction cite -> Alcotest.(check string) "cite" "Theorems 4.1/4.2" cite
        | _ -> Alcotest.fail "expected by-construction evidence");
    tc "E(64) certifies through the Lemma 5.3 mapping" (fun () ->
        let c =
          L.Cert.certify
            ~reference:(Butterfly.forward 64, "Lemma 5.3")
            ~iso_hint:(Butterfly.lemma_5_3_mapping 64)
            ~expected_depth:6 ~subject:"E(64)"
            ~expectation:(L.Cert.Smoothing 6) (Butterfly.backward 64)
        in
        Alcotest.(check bool) "ok" true (L.Cert.ok c);
        match c.L.Cert.evidence with
        | L.Cert.By_isomorphism cite -> Alcotest.(check string) "cite" "Lemma 5.3" cite
        | _ -> Alcotest.fail "expected by-isomorphism evidence");
    tc "depth mismatch reports ABS003" (fun () ->
        let c =
          L.Cert.certify ~expected_depth:5 ~subject:"L(4)"
            ~expectation:L.Cert.Half_split (Ladder.network 4)
        in
        Alcotest.(check bool) "ABS003" true (List.mem "ABS003" (L.Cert.codes c)));
    tc "output swap is refuted with a concrete counterexample" (fun () ->
        let net = Counting.network ~w:4 ~t:4 in
        let swap = Array.init 4 (fun i -> if i = 0 then 3 else if i = 3 then 0 else i) in
        let broken = T.permute_outputs (Cn_network.Permutation.of_array swap) net in
        let c =
          L.Cert.certify ~reference:(net, "Theorems 4.1/4.2")
            ~subject:"swapped" ~expectation:L.Cert.Counting broken
        in
        Alcotest.(check bool) "not ok" false (L.Cert.ok c);
        match c.L.Cert.evidence with
        | L.Cert.Refuted cex ->
            (* the certificate carries a replayable input profile *)
            Alcotest.(check bool) "cex width" true (Cn_sequence.Sequence.length cex = 4)
        | _ -> Alcotest.fail "expected refutation");
  ]

(* ---- CSR faithfulness ---- *)

let csr_tests =
  [
    tc "faithful compilation in both layouts" (fun () ->
        let net = Counting.network ~w:8 ~t:8 in
        List.iter
          (fun layout ->
            let rt = Rt.compile ~layout net in
            Alcotest.(check (list string)) "clean" []
              (List.map
                 (fun (d : L.Diagnostic.t) -> d.L.Diagnostic.code)
                 (L.Csr_lint.check ~subject:"C(8,8)" net (Rt.view rt))))
          [ Rt.Padded_csr; Rt.Unpadded_nested ]);
    tc "output-width corruption is CSR008" (fun () ->
        let net = Counting.network ~w:8 ~t:8 in
        let v = Rt.view (Rt.compile ~layout:Rt.Padded_csr net) in
        let v = { v with Rt.v_output_width = v.Rt.v_output_width + 1 } in
        Alcotest.(check bool) "CSR008" true
          (List.exists
             (fun (d : L.Diagnostic.t) -> d.L.Diagnostic.code = "CSR008")
             (L.Csr_lint.check ~subject:"C(8,8)" net v)));
  ]

(* ---- layer-prefix extraction and block structure (Section 6.4) ---- *)

let slice_tests =
  [
    tc "first lg w layers of C(w,t) are exactly C'(w,t)" (fun () ->
        List.iter
          (fun w ->
            let net = Counting.network ~w ~t:w in
            let pre = L.Slice.prefix net ~layers:(lg w) in
            Alcotest.(check bool)
              (Printf.sprintf "w=%d" w)
              true
              (T.equal pre (Blocks.c_prime ~w ~t:w)))
          [ 4; 8; 16; 32; 64 ]);
    tc "full prefix is the network itself" (fun () ->
        let net = Counting.network ~w:8 ~t:8 in
        let all = L.Slice.prefix net ~layers:(T.depth net) in
        Alcotest.(check bool) "same size" true (T.size all = T.size net));
    tc "zero prefix is the identity wiring" (fun () ->
        let net = Counting.network ~w:4 ~t:4 in
        let z = L.Slice.prefix net ~layers:0 in
        Alcotest.(check int) "no balancers" 0 (T.size z);
        Alcotest.(check int) "outputs = inputs" 4 (T.output_width z));
  ]

(* ---- the pinned mutant table (the lint's own certification) ---- *)

(* Every mutant must be rejected, with exactly these diagnostics.  The
   got-lists are pinned, not just the primary code: a change here means
   the analyzers' coverage shifted and must be reviewed. *)
let pinned_mutants =
  [
    ("drop-balancer", "NET005", [ "NET005"; "NET007" ]);
    ("duplicate-wire", "NET006", [ "NET007"; "NET006" ]);
    ("unconsumed-input", "NET007", [ "NET007" ]);
    ("arity-corrupt", "NET002", [ "NET002" ]);
    ("init-out-of-range", "NET003", [ "NET003" ]);
    ("feeds-truncate", "NET004", [ "NET004"; "NET007" ]);
    ("self-loop", "NET009", [ "NET007"; "NET006"; "NET009" ]);
    ("output-swap", "ABS004", [ "ABS004"; "STEP002"; "STEP001" ]);
    ("wire-flip", "STEP002", [ "ABS004"; "STEP002"; "STEP001" ]);
    ("init-corrupt", "ABS004", [ "ABS004"; "STEP002"; "STEP001" ]);
    ("pad-layer", "ABS003", [ "ABS003"; "STEP001" ]);
    ("csr-truncate-row", "CSR001", [ "CSR001" ]);
    ("csr-mask-corrupt", "CSR002", [ "CSR002" ]);
    ("csr-dangling", "CSR003", [ "CSR003"; "CSR005" ]);
    ("csr-rewire", "CSR009", [ "CSR009" ]);
    ("csr-entry-corrupt", "CSR006", [ "CSR006"; "CSR004" ]);
    ("csr-init-corrupt", "CSR007", [ "CSR007" ]);
    ("csr-width", "CSR008", [ "CSR008" ]);
    ("csr-nested-diverge", "CSR005", [ "CSR005" ]);
    ("csr-route-strategy", "CSR010", [ "CSR010" ]);
    ("csr-route-shift", "CSR010", [ "CSR010" ]);
    ("csr-strategy-diverge", "CSR010", [ "CSR010" ]);
    ("csr-drop-output", "CSR004", [ "CSR009"; "CSR004" ]);
    ("periodic-wire-flip", "ABS004", [ "ABS004"; "STEP002" ]);
    ("periodic-init-corrupt", "STEP002", [ "STEP002" ]);
    ("periodic-dropped-round", "ABS003", [ "ABS003" ]);
    ("periodic-strategy-swap", "ABS003", [ "ABS003"; "ABS004"; "STEP002" ]);
  ]

let mutate_tests =
  [
    tc "every mutant is rejected with its pinned diagnostics" (fun () ->
        let outcomes = L.Mutate.battery () in
        Alcotest.(check int) "battery size" (List.length pinned_mutants) (List.length outcomes);
        Alcotest.(check bool) "all rejected" true (L.Mutate.all_rejected outcomes);
        List.iter
          (fun (o : L.Mutate.outcome) ->
            match List.assoc_opt o.name (List.map (fun (n, e, g) -> (n, (e, g))) pinned_mutants) with
            | None -> Alcotest.failf "unpinned mutant %s" o.name
            | Some (expected, got) ->
                Alcotest.(check string) (o.name ^ " expected") expected o.expected;
                Alcotest.(check (list string)) (o.name ^ " got") got o.got)
          outcomes);
  ]

(* ---- portfolio ---- *)

let portfolio_tests =
  [
    tc "portfolio covers the advertised families" (fun () ->
        let names = List.map (fun (e : L.Portfolio.entry) -> e.L.Portfolio.name) (L.Portfolio.entries ()) in
        List.iter
          (fun n -> Alcotest.(check bool) n true (List.mem n names))
          [ "C(2,2)"; "C(64,384)"; "C'(32,32)"; "D(64)"; "E(64)"; "L(16)";
            "BITONIC(8)"; "PERIODIC(64)"; "DIFF(4)"; "M(64,8)" ]);
    tc "small-width portfolio slice certifies" (fun () ->
        let certs =
          L.Portfolio.entries ()
          |> List.filter (fun (e : L.Portfolio.entry) ->
                 List.mem e.L.Portfolio.name [ "C(4,4)"; "E(16)"; "M(8,2)"; "L(8)" ])
          |> List.map (L.Portfolio.certify ~layouts:[ Rt.Padded_csr ])
        in
        Alcotest.(check int) "count" 4 (List.length certs);
        Alcotest.(check bool) "all ok" true (L.Portfolio.all_ok certs));
  ]

(* ---- the hybrid campaign (PAPER-adjacent negative results) ----

   The acceptance bar: every (strategy x scope x size) combination is
   adjudicated — certified bounded-exhaustively, or refuted with a
   concrete counterexample that replays.  The pinned verdicts below are
   genuine findings: the 3-periodic merger substitutes soundly at small
   widths, the pk prefixes do not. *)

let hybrid_tests =
  [
    tc "hybrid campaign covers every strategy x scope x size" (fun () ->
        let names =
          List.map (fun (e : L.Portfolio.entry) -> e.L.Portfolio.name) (L.Portfolio.hybrid_entries ())
        in
        Alcotest.(check int) "campaign size" 57 (List.length names);
        List.iter
          (fun n -> Alcotest.(check bool) n true (List.mem n names))
          [
            "C(4,4)[periodic3/top]"; "C(8,8)[pk2/all]"; "C(16,16)[periodic3/all]";
            "C(16,64)[pk6/top]"; "C(32,32)[periodic3/top]"; "C(64,64)[pk6/all]";
            "M(4,2)[periodic3]"; "M(16,8)[pk2]"; "M(64,32)[periodic3]";
          ]);
    tc "hybrid entries carry merger tags and no reference" (fun () ->
        List.iter
          (fun (e : L.Portfolio.entry) ->
            Alcotest.(check bool) (e.L.Portfolio.name ^ " tagged") true
              (e.L.Portfolio.merger <> None);
            Alcotest.(check bool) (e.L.Portfolio.name ^ " referee-less") true
              (e.L.Portfolio.reference = None))
          (L.Portfolio.hybrid_entries ()));
    tc "periodic3 hybrid C(8,8) certifies exhaustively, both scopes" (fun () ->
        List.iter
          (fun name ->
            let e =
              List.find
                (fun (e : L.Portfolio.entry) -> e.L.Portfolio.name = name)
                (L.Portfolio.hybrid_entries ())
            in
            let c = L.Portfolio.certify ~layouts:[ Rt.Padded_csr ] e in
            Alcotest.(check bool) (name ^ " ok") true (L.Cert.ok c);
            match c.L.Cert.evidence with
            | L.Cert.Exhaustive _ -> ()
            | _ -> Alcotest.failf "%s: expected exhaustive evidence" name)
          [ "C(8,8)[periodic3/top]"; "C(8,8)[periodic3/all]" ]);
    tc "pk hybrids are refuted with replayable counterexamples" (fun () ->
        List.iter
          (fun name ->
            let e =
              List.find
                (fun (e : L.Portfolio.entry) -> e.L.Portfolio.name = name)
                (L.Portfolio.hybrid_entries ())
            in
            let c = L.Portfolio.certify ~layouts:[ Rt.Padded_csr ] e in
            Alcotest.(check bool) (name ^ " refuted") true (L.Portfolio.refuted c);
            match c.L.Cert.evidence with
            | L.Cert.Refuted cex ->
                (* replay: the counterexample's quiescent output really
                   violates the step property *)
                let out = Cn_network.Eval.quiescent (e.L.Portfolio.build ()) cex in
                Alcotest.(check bool) (name ^ " replays") false
                  (Cn_sequence.Sequence.is_step out)
            | _ -> Alcotest.failf "%s: expected a refutation" name)
          [ "C(8,8)[pk2/top]"; "C(8,8)[pk6/all]"; "C(16,64)[periodic3/top]" ]);
    tc "over-budget hybrid escalates to the two-token battery" (fun () ->
        (* C(32,32)[periodic3/top] is over the exhaustive budget; the
           escalate pass refutes it with a STEP003 two-token load. *)
        let e =
          List.find
            (fun (e : L.Portfolio.entry) -> e.L.Portfolio.name = "C(32,32)[periodic3/top]")
            (L.Portfolio.hybrid_entries ())
        in
        let c = L.Portfolio.certify ~layouts:[ Rt.Padded_csr ] e in
        Alcotest.(check bool) "refuted" true (L.Portfolio.refuted c);
        Alcotest.(check bool) "STEP003" true (List.mem "STEP003" (L.Cert.codes c));
        match c.L.Cert.evidence with
        | L.Cert.Refuted cex ->
            Alcotest.(check bool) "two-token load" true
              (Cn_sequence.Sequence.sum cex <= 2)
        | _ -> Alcotest.fail "expected refutation");
    tc "small hybrid slice is fully adjudicated" (fun () ->
        let certs =
          L.Portfolio.hybrid_entries ()
          |> List.filter (fun (e : L.Portfolio.entry) ->
                 List.mem e.L.Portfolio.name
                   [
                     "C(4,4)[periodic3/top]"; "C(4,8)[pk2/all]"; "C(8,8)[periodic3/all]";
                     "M(8,4)[periodic3]"; "M(8,4)[pk6]";
                   ])
          |> List.map (L.Portfolio.certify ~layouts:[ Rt.Padded_csr ])
        in
        Alcotest.(check int) "count" 5 (List.length certs);
        Alcotest.(check bool) "all adjudicated" true (L.Portfolio.all_adjudicated certs);
        (* and not trivially: the slice mixes both verdicts *)
        Alcotest.(check bool) "has certified" true (List.exists L.Cert.ok certs);
        Alcotest.(check bool) "has refuted" true (List.exists L.Portfolio.refuted certs));
    tc "escalation battery has the closed-form size" (fun () ->
        List.iter
          (fun w ->
            Alcotest.(check int)
              (Printf.sprintf "w=%d" w)
              (1 + (2 * w) + (w * (w - 1) / 2))
              (List.length (L.Cert.escalation_loads w)))
          [ 2; 4; 8; 16; 64 ]);
  ]

let suite =
  [
    ("lint.wellformed", wellformed_tests);
    ("lint.absint", absint_tests);
    ("lint.cert", cert_tests);
    ("lint.csr", csr_tests);
    ("lint.slice", slice_tests);
    ("lint.mutate", mutate_tests);
    ("lint.portfolio", portfolio_tests);
    ("lint.hybrids", hybrid_tests);
  ]
