(* Tests for the runtime observability layer: Cn_runtime.Metrics and
   Cn_runtime.Validator, plus the simulator's shared snapshot type. *)

module RT = Cn_runtime.Network_runtime
module M = Cn_runtime.Metrics
module V = Cn_runtime.Validator
module DP = Cn_runtime.Domain_pool
module S = Cn_sequence.Sequence
module T = Cn_network.Topology

let tc name f = Alcotest.test_case name `Quick f

let net48 () = Cn_core.Counting.network ~w:4 ~t:8

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let recording =
  [
    tc "sequential tallies agree with the exit distribution" (fun () ->
        let rt = RT.compile ~metrics:true (net48 ()) in
        for i = 0 to 19 do
          ignore (RT.traverse rt ~wire:(i mod 4))
        done;
        let snap = M.snapshot (Option.get (RT.metrics rt)) in
        Alcotest.(check int) "version" M.schema_version snap.M.version;
        Alcotest.(check string) "source" "runtime" snap.M.source;
        Alcotest.(check int) "tokens" 20 snap.M.tokens;
        Alcotest.(check int) "antitokens" 0 snap.M.antitokens;
        Alcotest.check Util.seq "exits" (RT.exit_distribution rt) snap.M.exits;
        Alcotest.(check bool) "crossings recorded" true
          (Array.fold_left ( + ) 0 snap.M.crossings >= 20);
        Alcotest.(check bool) "no stalls sequentially" true
          (Array.for_all (( = ) 0) snap.M.stalls));
    tc "antitoken exits are net decrements" (fun () ->
        let rt = RT.compile ~metrics:true (net48 ()) in
        ignore (RT.traverse rt ~wire:0);
        ignore (RT.traverse rt ~wire:1);
        ignore (RT.traverse_decrement rt ~wire:1);
        let snap = M.snapshot (Option.get (RT.metrics rt)) in
        Alcotest.(check int) "tokens" 2 snap.M.tokens;
        Alcotest.(check int) "antitokens" 1 snap.M.antitokens;
        Alcotest.(check int) "net exits" 1 (S.sum snap.M.exits);
        Alcotest.check Util.seq "tally agreement" (RT.exit_distribution rt) snap.M.exits);
    tc "compiling without metrics yields none" (fun () ->
        Alcotest.(check bool) "none" true (RT.metrics (RT.compile (net48 ())) = None));
    tc "layer_stalls matches the snapshot folded by layer" (fun () ->
        let net = net48 () in
        let rt = RT.compile ~mode:RT.Cas ~metrics:true net in
        let m = Option.get (RT.metrics rt) in
        let layers = Array.init (T.size net) (T.balancer_depth net) in
        DP.with_pool 4 (fun pool ->
            ignore
              (DP.run pool ~domains:4 (fun pid ->
                   for _ = 1 to 500 do
                     ignore (RT.traverse rt ~wire:(pid mod 4))
                   done)));
        let live = M.layer_stalls m ~layers in
        let snap = M.snapshot m in
        Alcotest.check Util.seq "per-layer sums agree" (M.per_layer ~layers snap.M.stalls)
          live;
        Alcotest.(check int) "layer count" (Array.fold_left max 0 layers)
          (Array.length live));
    tc "layer_stalls rejects a mis-sized layer map" (fun () ->
        let rt = RT.compile ~metrics:true (net48 ()) in
        let m = Option.get (RT.metrics rt) in
        Alcotest.check_raises "invalid"
          (Invalid_argument
             "Metrics.layer_stalls: layers length must equal balancer count")
          (fun () -> ignore (M.layer_stalls m ~layers:[| 1 |])));
    tc "reset clears the recorder" (fun () ->
        let rt = RT.compile ~metrics:true (net48 ()) in
        for _ = 1 to 8 do
          ignore (RT.traverse rt ~wire:0)
        done;
        RT.reset rt;
        let snap = M.snapshot (Option.get (RT.metrics rt)) in
        Alcotest.(check int) "tokens" 0 snap.M.tokens;
        Alcotest.(check int) "crossings" 0 (Array.fold_left ( + ) 0 snap.M.crossings);
        Alcotest.(check bool) "latency" true (snap.M.latency = None));
    tc "reset regression: post-reset snapshots count only the new run" (fun () ->
        (* A reset that left the recorder (or cas_failures) dirty would
           make the second run's snapshot double-count the first and
           fail quiescence validation. *)
        let rt = RT.compile ~mode:RT.Cas ~metrics:true (net48 ()) in
        for i = 0 to 19 do
          ignore (RT.traverse rt ~wire:(i mod 4))
        done;
        RT.reset rt;
        Alcotest.(check int) "cas_failures cleared" 0 (RT.cas_failures rt);
        for i = 0 to 7 do
          ignore (RT.traverse rt ~wire:(i mod 4))
        done;
        let snap = M.snapshot (Option.get (RT.metrics rt)) in
        Alcotest.(check int) "tokens count the new run only" 8 snap.M.tokens;
        Alcotest.(check int) "net exits" 8 (S.sum snap.M.exits);
        Alcotest.check Util.seq "tally agreement survives reset"
          (RT.exit_distribution rt) snap.M.exits;
        V.enforce V.Strict (V.quiescent_runtime rt));
    tc "latency sampling produces ordered percentiles" (fun () ->
        let rt = RT.compile ~metrics:true (net48 ()) in
        (* The first token on a sink is always sampled (tick 0). *)
        for i = 0 to 99 do
          ignore (RT.traverse rt ~wire:(i mod 4))
        done;
        match (M.snapshot (Option.get (RT.metrics rt))).M.latency with
        | None -> Alcotest.fail "expected sampled latencies"
        | Some l ->
            Alcotest.(check string) "unit" "ns" l.M.time_unit;
            Alcotest.(check bool) "observed" true (l.M.observed >= 1);
            Alcotest.(check bool) "kept <= observed" true (l.M.kept <= l.M.observed);
            Alcotest.(check bool) "ordered" true
              (0. <= l.M.p50 && l.M.p50 <= l.M.p95 && l.M.p95 <= l.M.p99
             && l.M.p99 <= l.M.max));
  ]

let json =
  [
    tc "snapshot JSON carries the schema fields" (fun () ->
        let rt = RT.compile ~metrics:true (net48 ()) in
        for i = 0 to 15 do
          ignore (RT.traverse rt ~wire:(i mod 4))
        done;
        let s = M.to_json (M.snapshot (Option.get (RT.metrics rt))) in
        List.iter
          (fun field -> Alcotest.(check bool) field true (contains s field))
          [
            "\"schema_version\": 1"; "\"source\": \"runtime\""; "\"per_balancer_crossings\"";
            "\"per_balancer_stalls\""; "\"per_wire_exits\""; "\"latency\"";
          ];
        Alcotest.(check bool) "no per-layer without layers" false
          (contains s "per_layer_stalls"));
    tc "per-layer aggregates appear with ~layers" (fun () ->
        let net = net48 () in
        let rt = RT.compile ~metrics:true net in
        for i = 0 to 15 do
          ignore (RT.traverse rt ~wire:(i mod 4))
        done;
        let layers = Array.init (T.size net) (T.balancer_depth net) in
        let s = M.to_json ~layers (M.snapshot (Option.get (RT.metrics rt))) in
        Alcotest.(check bool) "crossings" true (contains s "per_layer_crossings");
        Alcotest.(check bool) "stalls" true (contains s "per_layer_stalls"));
    tc "per_layer sums by balancer depth" (fun () ->
        let got = M.per_layer ~layers:[| 1; 2; 2; 3 |] [| 5; 1; 2; 7 |] in
        Alcotest.check Util.seq "sums" [| 5; 3; 7 |] got);
  ]

let validator =
  [
    tc "policy round trip" (fun () ->
        List.iter
          (fun p ->
            Alcotest.(check bool) "round trip" true
              (V.policy_of_string (V.policy_to_string p) = Some p))
          [ V.Strict; V.Log; V.Off ];
        Alcotest.(check bool) "unknown" true (V.policy_of_string "frobnicate" = None));
    tc "strict passes on quiesced Faa and Cas C(16,16) at 4 domains" (fun () ->
        let net = Cn_core.Counting.network ~w:16 ~t:16 in
        List.iter
          (fun mode ->
            let rt = RT.compile ~mode ~metrics:true net in
            DP.with_pool 4 (fun pool ->
                ignore
                  (DP.run pool ~domains:4 (fun pid ->
                       RT.traverse_batch rt ~wire:pid ~n:250 ~f:(fun _ _ -> ()))));
            let report = V.quiescent_runtime rt in
            Alcotest.(check bool) "passes" true (V.passed report);
            V.enforce V.Strict report)
          [ RT.Faa; RT.Cas ]);
    tc "corrupted snapshot fails conservation and strict raises" (fun () ->
        let rt = RT.compile ~metrics:true (net48 ()) in
        for i = 0 to 11 do
          ignore (RT.traverse rt ~wire:(i mod 4))
        done;
        let snap = M.snapshot (Option.get (RT.metrics rt)) in
        Alcotest.(check bool) "intact passes" true (V.passed (V.snapshot_invariants snap));
        let exits = Array.copy snap.M.exits in
        exits.(0) <- exits.(0) + 1;
        let corrupted = { snap with M.exits } in
        let report = V.snapshot_invariants corrupted in
        Alcotest.(check bool) "fails" false (V.passed report);
        Alcotest.(check bool) "names the check" true
          (List.exists (fun (c : V.check) -> c.V.name = "token-conservation") (V.failures report));
        (match V.enforce V.Strict report with
        | () -> Alcotest.fail "expected Validator.Invalid"
        | exception V.Invalid _ -> ());
        (* Log and Off must not raise. *)
        V.enforce V.Off report);
    tc "non-counting network fails the step check" (fun () ->
        (* Butterfly D(4) on input wires 1 and 3 exits as [1;0;1;0]. *)
        let rt = RT.compile ~metrics:true (Cn_core.Butterfly.forward 4) in
        ignore (RT.traverse rt ~wire:1);
        ignore (RT.traverse rt ~wire:3);
        let report = V.quiescent_runtime rt in
        Alcotest.(check bool) "fails" false (V.passed report);
        Alcotest.(check bool) "step check named" true
          (List.exists (fun (c : V.check) -> c.V.name = "step-property") (V.failures report)));
    tc "collected values report mirrors the range check" (fun () ->
        Alcotest.(check bool) "good" true
          (V.passed (V.collected_values [| [| 2; 0 |]; [| 1; 3 |] |]));
        Alcotest.(check bool) "dup" false (V.passed (V.collected_values [| [| 0; 0 |] |])));
    tc "summary names the subject" (fun () ->
        let report = V.collected_values [| [| 0; 1 |] |] in
        Alcotest.(check bool) "subject" true (contains (V.summary report) "collected values"));
  ]

let simulator =
  [
    tc "simulator snapshot satisfies the invariants" (fun () ->
        let net = Cn_core.Counting.network ~w:4 ~t:4 in
        let s = Cn_sim.Stall_model.create net ~concurrency:6 ~tokens:60 in
        Cn_sim.Scheduler.run s Cn_sim.Scheduler.Round_robin;
        let snap = Cn_sim.Stall_model.snapshot s in
        Alcotest.(check string) "source" "sim" snap.M.source;
        Alcotest.(check int) "tokens" 60 snap.M.tokens;
        Alcotest.(check bool) "invariants" true (V.passed (V.snapshot_invariants snap));
        (match snap.M.latency with
        | None -> Alcotest.fail "expected tick latencies"
        | Some l ->
            Alcotest.(check string) "unit" "ticks" l.M.time_unit;
            Alcotest.(check int) "all tokens observed" 60 l.M.observed);
        (* Crossings: every completed token crossed depth-many balancers
           on the regular C(4,4). *)
        Alcotest.(check int) "crossings"
          (60 * T.depth net)
          (Array.fold_left ( + ) 0 snap.M.crossings));
    tc "simulator per-balancer stalls match the accessors" (fun () ->
        let net = Cn_core.Counting.network ~w:4 ~t:4 in
        let s = Cn_sim.Stall_model.create net ~concurrency:8 ~tokens:40 in
        Cn_sim.Scheduler.run s (Cn_sim.Scheduler.Herd 1);
        let snap = Cn_sim.Stall_model.snapshot s in
        Alcotest.(check int) "total stalls" (Cn_sim.Stall_model.total_stalls s)
          (Array.fold_left ( + ) 0 snap.M.stalls);
        Array.iteri
          (fun b c ->
            Alcotest.(check int)
              (Printf.sprintf "crossings at %d" b)
              (Cn_sim.Stall_model.crossings_at_balancer s b)
              c)
          snap.M.crossings);
  ]

let suite =
  [
    ("metrics.recording", recording);
    ("metrics.json", json);
    ("metrics.validator", validator);
    ("metrics.simulator", simulator);
  ]
