(* Unit and property tests for Cn_network.Balancer. *)

module B = Cn_network.Balancer
module S = Cn_sequence.Sequence

let tc name f = Alcotest.test_case name `Quick f
let check_int = Alcotest.(check int)

let construction =
  [
    tc "make regular" (fun () ->
        let b = B.make ~fan_in:2 ~fan_out:2 () in
        Alcotest.(check bool) "regular" true (B.is_regular b));
    tc "make irregular" (fun () ->
        let b = B.make ~fan_in:2 ~fan_out:6 () in
        Alcotest.(check bool) "regular" false (B.is_regular b));
    tc "fields" (fun () ->
        let b = B.make ~init_state:2 ~fan_in:4 ~fan_out:3 () in
        check_int "p" 4 b.B.fan_in;
        check_int "q" 3 b.B.fan_out;
        check_int "s" 2 b.B.init_state);
    Util.raises_invalid "zero fan_in" (fun () -> B.make ~fan_in:0 ~fan_out:2 ());
    Util.raises_invalid "zero fan_out" (fun () -> B.make ~fan_in:2 ~fan_out:0 ());
    Util.raises_invalid "negative init" (fun () ->
        B.make ~init_state:(-1) ~fan_in:2 ~fan_out:2 ());
    Util.raises_invalid "init too large" (fun () ->
        B.make ~init_state:2 ~fan_in:2 ~fan_out:2 ());
    tc "pp without state" (fun () ->
        Alcotest.(check string) "pp" "(2,4)"
          (Format.asprintf "%a" B.pp (B.make ~fan_in:2 ~fan_out:4 ())));
    tc "pp with state" (fun () ->
        Alcotest.(check string) "pp" "(2,4)@1"
          (Format.asprintf "%a" B.pp (B.make ~init_state:1 ~fan_in:2 ~fan_out:4 ())));
  ]

let routing =
  [
    tc "kth token round robin" (fun () ->
        let b = B.make ~fan_in:2 ~fan_out:3 () in
        check_int "t0" 0 (B.wire_of_kth_token b 0);
        check_int "t1" 1 (B.wire_of_kth_token b 1);
        check_int "t2" 2 (B.wire_of_kth_token b 2);
        check_int "t3" 0 (B.wire_of_kth_token b 3));
    tc "kth token with initial state" (fun () ->
        let b = B.make ~init_state:2 ~fan_in:2 ~fan_out:3 () in
        check_int "t0" 2 (B.wire_of_kth_token b 0);
        check_int "t1" 0 (B.wire_of_kth_token b 1));
    Util.raises_invalid "negative k" (fun () ->
        B.wire_of_kth_token (B.make ~fan_in:2 ~fan_out:2 ()) (-1));
    tc "state_after" (fun () ->
        let b = B.make ~fan_in:2 ~fan_out:4 () in
        check_int "after 6" 2 (B.state_after b ~tokens:6));
    tc "fig1 (4,6)-balancer" (fun () ->
        (* Fig. 1 left: 11 tokens through a (4,6)-balancer leave as
           2,2,2,2,2,1 wait: 11 tokens on 6 wires -> 2,2,2,2,2,1. *)
        let b = B.make ~fan_in:4 ~fan_out:6 () in
        Alcotest.check Util.seq "out" [| 2; 2; 2; 2; 2; 1 |] (B.output_counts b ~tokens:11));
  ]

let output_counts =
  [
    tc "zero tokens" (fun () ->
        let b = B.make ~fan_in:2 ~fan_out:4 () in
        Alcotest.check Util.seq "out" [| 0; 0; 0; 0 |] (B.output_counts b ~tokens:0));
    tc "exact multiple" (fun () ->
        let b = B.make ~fan_in:2 ~fan_out:4 () in
        Alcotest.check Util.seq "out" [| 3; 3; 3; 3 |] (B.output_counts b ~tokens:12));
    tc "remainder on top" (fun () ->
        let b = B.make ~fan_in:2 ~fan_out:4 () in
        Alcotest.check Util.seq "out" [| 4; 3; 3; 3 |] (B.output_counts b ~tokens:13));
    tc "initial state rotates" (fun () ->
        let b = B.make ~init_state:1 ~fan_in:2 ~fan_out:3 () in
        (* Tokens land on wires 1, 2, 0, 1 in order. *)
        Alcotest.check Util.seq "out" [| 1; 2; 1 |] (B.output_counts b ~tokens:4));
    Util.raises_invalid "negative tokens" (fun () ->
        B.output_counts (B.make ~fan_in:2 ~fan_out:2 ()) ~tokens:(-1));
  ]

let gen_bal_run =
  QCheck2.Gen.(
    bind (int_range 1 8) (fun q ->
        bind (int_range 0 (q - 1)) (fun s ->
            map (fun m -> (q, s, m)) (int_range 0 500))))

let properties =
  [
    Util.qtest "sum preservation" gen_bal_run (fun (q, s, m) ->
        let b = B.make ~init_state:s ~fan_in:2 ~fan_out:q () in
        S.sum (B.output_counts b ~tokens:m) = m);
    Util.qtest "output is step when init_state is 0"
      QCheck2.Gen.(bind (int_range 1 8) (fun q -> map (fun m -> (q, m)) (int_range 0 500)))
      (fun (q, m) ->
        let b = B.make ~fan_in:2 ~fan_out:q () in
        S.is_step (B.output_counts b ~tokens:m));
    Util.qtest "output is 1-smooth for any init state" gen_bal_run (fun (q, s, m) ->
        let b = B.make ~init_state:s ~fan_in:2 ~fan_out:q () in
        S.is_smooth 1 (B.output_counts b ~tokens:m));
    Util.qtest "counts agree with per-token routing" gen_bal_run (fun (q, s, m) ->
        let b = B.make ~init_state:s ~fan_in:2 ~fan_out:q () in
        let slow = Array.make q 0 in
        for k = 0 to m - 1 do
          let w = B.wire_of_kth_token b k in
          slow.(w) <- slow.(w) + 1
        done;
        S.equal slow (B.output_counts b ~tokens:m));
    Util.qtest "state_after matches token count" gen_bal_run (fun (q, s, m) ->
        let b = B.make ~init_state:s ~fan_in:2 ~fan_out:q () in
        B.state_after b ~tokens:m = (s + m) mod q);
  ]

let suite =
  [
    ("balancer.construction", construction);
    ("balancer.routing", routing);
    ("balancer.output_counts", output_counts);
    ("balancer.properties", properties);
  ]
