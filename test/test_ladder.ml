(* Tests for Cn_core.Ladder: L(w), Section 4.1. *)

module T = Cn_network.Topology
module E = Cn_network.Eval
module S = Cn_sequence.Sequence
module Ladder = Cn_core.Ladder

let tc name f = Alcotest.test_case name `Quick f

let structure =
  [
    tc "depth is 1" (fun () ->
        Alcotest.(check int) "depth" 1 (T.depth (Ladder.network 8)));
    tc "size is w/2" (fun () ->
        Alcotest.(check int) "size" 4 (T.size (Ladder.network 8)));
    tc "width preserved" (fun () ->
        let net = Ladder.network 6 in
        Alcotest.(check int) "w" 6 (T.input_width net);
        Alcotest.(check int) "t" 6 (T.output_width net));
    Util.raises_invalid "odd width" (fun () -> Ladder.network 5);
    Util.raises_invalid "width below 2" (fun () -> Ladder.network 0);
    tc "regular" (fun () -> Alcotest.(check bool) "reg" true (T.is_regular (Ladder.network 4)));
  ]

let behaviour =
  [
    tc "balancer i joins wires i and i+w/2" (fun () ->
        let net = Ladder.network 4 in
        (* Load only wire 0: its tokens split between outputs 0 and 2. *)
        Alcotest.check Util.seq "split" [| 3; 0; 2; 0 |] (E.quiescent net [| 5; 0; 0; 0 |]);
        Alcotest.check Util.seq "split" [| 0; 2; 0; 2 |] (E.quiescent net [| 0; 1; 0; 3 |]));
    tc "pair sums preserved" (fun () ->
        let net = Ladder.network 8 in
        let x = [| 9; 1; 0; 4; 4; 2; 7; 3 |] in
        let y = E.quiescent net x in
        for i = 0 to 3 do
          Alcotest.(check int) "pair sum" (x.(i) + x.(i + 4)) (y.(i) + y.(i + 4))
        done);
    tc "halves difference bounded by w/2" (fun () ->
        (* The property C(w, t) relies on: sum(first half) - sum(second
           half) of L(w)'s output lies in [0, w/2]. *)
        let net = Ladder.network 8 in
        Util.for_random_inputs ~trials:200 net (fun ~trial:_ ~x:_ ~y ->
            let d = S.sum (S.first_half y) - S.sum (S.second_half y) in
            Alcotest.(check bool) "0 <= d <= 4" true (0 <= d && d <= 4)));
    tc "each pair is top-heavy by at most one" (fun () ->
        let net = Ladder.network 8 in
        Util.for_random_inputs ~trials:200 net (fun ~trial:_ ~x:_ ~y ->
            for i = 0 to 3 do
              let d = y.(i) - y.(i + 4) in
              Alcotest.(check bool) "0 <= d <= 1" true (d = 0 || d = 1)
            done));
  ]

let suite = [ ("ladder.structure", structure); ("ladder.behaviour", behaviour) ]
