(* Unit and property tests for Cn_sequence.Sequence: the step / k-smooth
   algebra of Section 2.1, including the sequence lemmas 2.1-2.4. *)

module S = Cn_sequence.Sequence

let tc name f = Alcotest.test_case name `Quick f

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let basics =
  [
    tc "length" (fun () -> check_int "len" 4 (S.length [| 1; 2; 3; 4 |]));
    tc "sum" (fun () -> check_int "sum" 10 (S.sum [| 1; 2; 3; 4 |]));
    tc "sum empty" (fun () -> check_int "sum" 0 (S.sum [||]));
    tc "max_value" (fun () -> check_int "max" 9 (S.max_value [| 3; 9; 1 |]));
    tc "min_value" (fun () -> check_int "min" 1 (S.min_value [| 3; 9; 1 |]));
    tc "spread" (fun () -> check_int "spread" 8 (S.spread [| 3; 9; 1 |]));
    tc "spread singleton" (fun () -> check_int "spread" 0 (S.spread [| 7 |]));
    Util.raises_invalid "max_value empty" (fun () -> S.max_value [||]);
    Util.raises_invalid "min_value empty" (fun () -> S.min_value [||]);
    tc "equal" (fun () -> check_bool "eq" true (S.equal [| 1; 2 |] [| 1; 2 |]));
    tc "not equal" (fun () -> check_bool "ne" false (S.equal [| 1; 2 |] [| 2; 1 |]));
    tc "to_string" (fun () ->
        Alcotest.(check string) "fmt" "[1; 2]" (S.to_string [| 1; 2 |]));
  ]

let step_property =
  [
    tc "constant is step" (fun () -> check_bool "step" true (S.is_step [| 4; 4; 4 |]));
    tc "single drop is step" (fun () -> check_bool "step" true (S.is_step [| 5; 5; 4; 4 |]));
    tc "drop at head is step" (fun () -> check_bool "step" true (S.is_step [| 5; 4; 4; 4 |]));
    tc "drop at tail is step" (fun () -> check_bool "step" true (S.is_step [| 5; 5; 5; 4 |]));
    tc "two drops is not step" (fun () -> check_bool "step" false (S.is_step [| 5; 4; 3 |]));
    tc "increase is not step" (fun () -> check_bool "step" false (S.is_step [| 4; 5 |]));
    tc "rebound is not step" (fun () -> check_bool "step" false (S.is_step [| 5; 4; 5 |]));
    tc "drop by 2 is not step" (fun () -> check_bool "step" false (S.is_step [| 5; 3; 3 |]));
    tc "empty is step" (fun () -> check_bool "step" true (S.is_step [||]));
    tc "singleton is step" (fun () -> check_bool "step" true (S.is_step [| 0 |]));
    tc "step implies 1-smooth" (fun () ->
        check_bool "smooth" true (S.is_smooth 1 [| 5; 5; 4 |]));
    tc "fig1 output is step" (fun () ->
        (* The output distribution of Fig. 1's counting network. *)
        check_bool "step" true (S.is_step [| 3; 2; 2; 2; 2; 2; 2; 2 |]));
  ]

let smooth_property =
  [
    tc "0-smooth constant" (fun () -> check_bool "smooth" true (S.is_smooth 0 [| 2; 2 |]));
    tc "not 0-smooth" (fun () -> check_bool "smooth" false (S.is_smooth 0 [| 2; 3 |]));
    tc "2-smooth" (fun () -> check_bool "smooth" true (S.is_smooth 2 [| 1; 3; 2 |]));
    tc "not 2-smooth" (fun () -> check_bool "smooth" false (S.is_smooth 2 [| 1; 4 |]));
    tc "empty smooth" (fun () -> check_bool "smooth" true (S.is_smooth 0 [||]));
    tc "non-step can be smooth" (fun () ->
        check_bool "smooth" true (S.is_smooth 1 [| 4; 5; 4 |]));
  ]

let step_points =
  [
    tc "all equal -> w" (fun () -> check_int "sp" 3 (S.step_point [| 2; 2; 2 |]));
    tc "drop at 1" (fun () -> check_int "sp" 1 (S.step_point [| 3; 2; 2 |]));
    tc "drop at 2" (fun () -> check_int "sp" 2 (S.step_point [| 3; 3; 2 |]));
    tc "singleton -> 1" (fun () -> check_int "sp" 1 (S.step_point [| 5 |]));
    Util.raises_invalid "step_point of non-step" (fun () -> S.step_point [| 1; 2 |]);
    Util.raises_invalid "step_point of empty" (fun () -> S.step_point [||]);
  ]

let ceil_div =
  [
    tc "exact" (fun () -> check_int "cd" 3 (S.ceil_div 12 4));
    tc "round up" (fun () -> check_int "cd" 4 (S.ceil_div 13 4));
    tc "zero" (fun () -> check_int "cd" 0 (S.ceil_div 0 4));
    tc "negative small" (fun () -> check_int "cd" 0 (S.ceil_div (-3) 4));
    tc "negative exact" (fun () -> check_int "cd" (-1) (S.ceil_div (-4) 4));
    tc "negative round" (fun () -> check_int "cd" (-1) (S.ceil_div (-5) 4));
    Util.raises_invalid "zero divisor" (fun () -> S.ceil_div 1 0);
    Util.raises_invalid "negative divisor" (fun () -> S.ceil_div 1 (-2));
  ]

let make_step_tests =
  [
    tc "total 10 width 4" (fun () ->
        Alcotest.check Util.seq "seq" [| 3; 3; 2; 2 |] (S.make_step ~total:10 ~width:4));
    tc "total 0" (fun () ->
        Alcotest.check Util.seq "seq" [| 0; 0; 0 |] (S.make_step ~total:0 ~width:3));
    tc "total < width" (fun () ->
        Alcotest.check Util.seq "seq" [| 1; 1; 0; 0 |] (S.make_step ~total:2 ~width:4));
    tc "eq (1) closed form" (fun () ->
        (* Eq. (1): x_i = ceil((sum - i) / w). *)
        let x = S.make_step ~total:17 ~width:5 in
        Array.iteri
          (fun i v -> check_int "elt" (S.step_element ~total:17 ~width:5 i) v)
          x);
    Util.raises_invalid "width 0" (fun () -> S.make_step ~total:3 ~width:0);
    Util.raises_invalid "negative total" (fun () -> S.make_step ~total:(-1) ~width:2);
    Util.raises_invalid "step_element out of range" (fun () ->
        S.step_element ~total:3 ~width:2 2);
  ]

let slicing =
  [
    tc "even subsequence" (fun () ->
        Alcotest.check Util.seq "even" [| 0; 2; 4 |] (S.even_subsequence [| 0; 1; 2; 3; 4 |]));
    tc "odd subsequence" (fun () ->
        Alcotest.check Util.seq "odd" [| 1; 3 |] (S.odd_subsequence [| 0; 1; 2; 3; 4 |]));
    tc "halves" (fun () ->
        let a, b = S.halves [| 1; 2; 3; 4 |] in
        Alcotest.check Util.seq "first" [| 1; 2 |] a;
        Alcotest.check Util.seq "second" [| 3; 4 |] b);
    Util.raises_invalid "first_half odd length" (fun () -> S.first_half [| 1; 2; 3 |]);
    tc "interleave" (fun () ->
        Alcotest.check Util.seq "il" [| 0; 1; 2; 3 |] (S.interleave [| 0; 2 |] [| 1; 3 |]));
    Util.raises_invalid "interleave mismatch" (fun () -> S.interleave [| 1 |] [| 1; 2 |]);
    tc "interleave inverts even/odd" (fun () ->
        let x = [| 9; 4; 7; 7; 2; 0 |] in
        Alcotest.check Util.seq "roundtrip"
          x
          (S.interleave (S.even_subsequence x) (S.odd_subsequence x)));
    tc "concat" (fun () ->
        Alcotest.check Util.seq "cat" [| 1; 2; 3 |] (S.concat [| 1 |] [| 2; 3 |]));
    tc "subsequence" (fun () ->
        Alcotest.check Util.seq "sub" [| 10; 30 |] (S.subsequence [| 10; 20; 30 |] [| 0; 2 |]));
    Util.raises_invalid "subsequence non-increasing" (fun () ->
        S.subsequence [| 1; 2; 3 |] [| 2; 0 |]);
    Util.raises_invalid "subsequence out of range" (fun () ->
        S.subsequence [| 1; 2 |] [| 0; 5 |]);
  ]

(* Property tests: the sequence lemmas of Section 2. *)

let gen_step =
  (* A random step sequence of width 1..16. *)
  QCheck2.Gen.(
    bind (int_range 1 16) (fun w ->
        map (fun total -> S.make_step ~total ~width:w) (int_range 0 200)))

let gen_step_even_width =
  QCheck2.Gen.(
    bind (map (fun h -> 2 * h) (int_range 1 8)) (fun w ->
        map (fun total -> S.make_step ~total ~width:w) (int_range 0 200)))

let properties =
  [
    Util.qtest "make_step is step" gen_step (fun x -> S.is_step x);
    Util.qtest "make_step sums to total" gen_step (fun x ->
        S.equal x (S.make_step ~total:(S.sum x) ~width:(S.length x)));
    Util.qtest "lemma 2.1: subsequences of step are step" gen_step (fun x ->
        let w = S.length x in
        (* Take a random-ish deterministic subsequence: every other
           element starting at 0 and at 1. *)
        S.is_step (S.even_subsequence x) && S.is_step (S.odd_subsequence x)
        && S.is_step (S.subsequence x (Array.init ((w + 2) / 3) (fun i -> 3 * i))))
    ;
    Util.qtest "lemma 2.3: even minus odd in [0,1]" gen_step_even_width (fun x ->
        let d = S.sum (S.even_subsequence x) - S.sum (S.odd_subsequence x) in
        d = 0 || d = 1);
    Util.qtest "lemma 2.2: max difference bound"
      QCheck2.Gen.(
        bind (map (fun h -> 2 * h) (int_range 1 8)) (fun w ->
            bind (int_range 0 100) (fun sy ->
                map
                  (fun d -> (S.make_step ~total:(sy + d) ~width:w, S.make_step ~total:sy ~width:w, d))
                  (int_range 0 40))))
      (fun (x, y, d) ->
        let a = S.max_value x and b = S.min_value y in
        let diff = S.max_value x - S.max_value y in
        ignore a;
        ignore b;
        0 <= diff && diff <= (d / S.length x) + 1);
    Util.qtest "lemma 2.4: even/odd halves split the difference"
      QCheck2.Gen.(
        bind (map (fun h -> 2 * h) (int_range 1 8)) (fun w ->
            bind (int_range 0 100) (fun sy ->
                map
                  (fun half_d ->
                    let d = 2 * half_d in
                    (S.make_step ~total:(sy + d) ~width:w, S.make_step ~total:sy ~width:w, d))
                  (int_range 0 20))))
      (fun (x, y, d) ->
        let de = S.sum (S.even_subsequence x) - S.sum (S.even_subsequence y) in
        let dd = S.sum (S.odd_subsequence x) - S.sum (S.odd_subsequence y) in
        0 <= de && de <= d / 2 && 0 <= dd && dd <= d / 2);
    Util.qtest "step point indexes the drop" gen_step (fun x ->
        let k = S.step_point x in
        let w = S.length x in
        if k = w then S.spread x = 0
        else x.(k) = x.(k - 1) - 1);
  ]

(* The step property, checked against its definition: 0 <= xi - xj <= 1
   for ALL i < j, not just adjacent pairs.  The generator mixes arbitrary
   small arrays with step sequences perturbed at one position, so both
   verdicts are exercised. *)

let brute_force_is_step x =
  let n = Array.length x in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let d = x.(i) - x.(j) in
      if d < 0 || d > 1 then ok := false
    done
  done;
  !ok

let gen_near_step =
  QCheck2.Gen.(
    oneof
      [
        array_size (int_range 0 12) (int_range 0 4);
        map2
          (fun x (pos, delta) ->
            let y = Array.copy x in
            let i = pos mod Array.length y in
            y.(i) <- y.(i) + delta - 1;
            y)
          gen_step
          (pair (int_range 0 15) (int_range 0 2));
      ])

let step_definition =
  [
    Util.qtest ~count:500 "is_step equals the all-pairs definition" gen_near_step (fun x ->
        S.is_step x = brute_force_is_step x);
    Util.qtest "make_step round-trips a step sequence" gen_step (fun x ->
        S.equal x (S.make_step ~total:(S.sum x) ~width:(S.length x)));
    Util.qtest "step_point closed form: sum mod width" gen_step (fun x ->
        let m = S.sum x and w = S.length x in
        S.step_point x = (if m mod w = 0 then w else m mod w));
    Util.qtest "step_point reconstructs the sequence" gen_step (fun x ->
        (* A step sequence is determined by its head and its step point:
           x.(0) up to (excluding) the drop, one less after. *)
        let k = S.step_point x in
        S.equal x (Array.init (S.length x) (fun i -> if i < k then x.(0) else x.(0) - 1)));
  ]

let suite =
  [
    ("sequence.basics", basics);
    ("sequence.step", step_property);
    ("sequence.smooth", smooth_property);
    ("sequence.step_point", step_points);
    ("sequence.ceil_div", ceil_div);
    ("sequence.make_step", make_step_tests);
    ("sequence.slicing", slicing);
    ("sequence.lemmas", properties);
    ("sequence.step_definition", step_definition);
  ]
