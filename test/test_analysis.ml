(* Tests for Cn_analysis.Bounds and Cn_core.Params. *)

module B = Cn_analysis.Bounds
module P = Cn_core.Params

let tc name f = Alcotest.test_case name `Quick f
let close a b = abs_float (a -. b) < 1e-9

let params =
  [
    tc "is_power_of_two" (fun () ->
        List.iter
          (fun (v, expected) ->
            Alcotest.(check bool) (string_of_int v) expected (P.is_power_of_two v))
          [ (1, true); (2, true); (4, true); (1024, true); (0, false); (-4, false);
            (3, false); (12, false) ]);
    tc "ilog2" (fun () ->
        List.iter
          (fun (v, expected) -> Alcotest.(check int) (string_of_int v) expected (P.ilog2 v))
          [ (1, 0); (2, 1); (4, 2); (8, 3); (1024, 10) ]);
    Util.raises_invalid "ilog2 non power" (fun () -> P.ilog2 3);
    Util.raises_invalid "ilog2 zero" (fun () -> P.ilog2 0);
  ]

let bounds =
  [
    tc "lg" (fun () ->
        Alcotest.(check bool) "lg 8 = 3" true (close (B.lg 8) 3.);
        Alcotest.(check bool) "lg 1 = 0" true (close (B.lg 1) 0.));
    Util.raises_invalid "lg non-positive" (fun () -> ignore (B.lg 0));
    tc "theorem 6.7 bound at t=w reduces correctly" (fun () ->
        (* With w=t=8, n=8: 4n lgw/w + n lg2w/t + w lg3w/t + 4lg2w + lgw
           = 12 + 9 + 27 + 36 + 3 = 87. *)
        Alcotest.(check bool) "value" true (close (B.contention_c ~w:8 ~t:8 ~n:8) 87.));
    tc "bitonic bound" (fun () ->
        Alcotest.(check bool) "value" true (close (B.contention_bitonic ~w:8 ~n:16) 18.));
    tc "periodic bound dominates bitonic" (fun () ->
        Alcotest.(check bool) "dominates" true
          (B.contention_periodic ~w:16 ~n:100 > B.contention_bitonic ~w:16 ~n:100));
    tc "increasing t lowers the C bound" (fun () ->
        let w = 16 and n = 512 in
        Alcotest.(check bool) "monotone" true
          (B.contention_c ~w ~t:(16 * 4) ~n < B.contention_c ~w ~t:16 ~n));
    tc "crossover at w lg w" (fun () ->
        Alcotest.(check int) "w=16" 64 (B.crossover_concurrency ~w:16));
    tc "asymptotic bound below constant-carrying bound" (fun () ->
        let w = 32 and t = 64 and n = 100 in
        Alcotest.(check bool) "below" true
          (B.contention_c_asymptotic ~w ~t ~n < B.contention_c ~w ~t ~n));
    tc "at high n the wide network beats bitonic by ~lg w" (fun () ->
        (* n >= w lg w, t = w lg w: bound O(n lg w / w) vs bitonic
           n lg2 w / w — ratio approaches lg w / 4 (constants aside). *)
        let w = 64 in
        let t = w * P.ilog2 w in
        let n = 100 * w * P.ilog2 w in
        let ours = B.contention_c ~w ~t ~n in
        let bitonic = B.contention_bitonic ~w ~n in
        Alcotest.(check bool) "ours lower" true (ours < bitonic));
    tc "butterfly bound linear term" (fun () ->
        let w = 16 in
        let base = B.contention_butterfly ~w ~n:0 in
        let slope = B.contention_butterfly ~w ~n:w -. base in
        Alcotest.(check bool) "4 lg w per w procs" true (close slope (4. *. B.lg w)));
    tc "diffracting bound is n" (fun () ->
        Alcotest.(check bool) "n" true (close (B.contention_diffracting ~n:42) 42.));
  ]

let suite = [ ("analysis.params", params); ("analysis.bounds", bounds) ]
