(* Tests for Cn_analysis.Bounds and Cn_core.Params. *)

module B = Cn_analysis.Bounds
module P = Cn_core.Params

let tc name f = Alcotest.test_case name `Quick f
let close a b = abs_float (a -. b) < 1e-9

let params =
  [
    tc "is_power_of_two" (fun () ->
        List.iter
          (fun (v, expected) ->
            Alcotest.(check bool) (string_of_int v) expected (P.is_power_of_two v))
          [ (1, true); (2, true); (4, true); (1024, true); (0, false); (-4, false);
            (3, false); (12, false) ]);
    tc "ilog2" (fun () ->
        List.iter
          (fun (v, expected) -> Alcotest.(check int) (string_of_int v) expected (P.ilog2 v))
          [ (1, 0); (2, 1); (4, 2); (8, 3); (1024, 10) ]);
    Util.raises_invalid "ilog2 non power" (fun () -> P.ilog2 3);
    Util.raises_invalid "ilog2 zero" (fun () -> P.ilog2 0);
  ]

let bounds =
  [
    tc "lg" (fun () ->
        Alcotest.(check bool) "lg 8 = 3" true (close (B.lg 8) 3.);
        Alcotest.(check bool) "lg 1 = 0" true (close (B.lg 1) 0.));
    Util.raises_invalid "lg non-positive" (fun () -> ignore (B.lg 0));
    tc "theorem 6.7 bound at t=w reduces correctly" (fun () ->
        (* With w=t=8, n=8: 4n lgw/w + n lg2w/t + w lg3w/t + 4lg2w + lgw
           = 12 + 9 + 27 + 36 + 3 = 87. *)
        Alcotest.(check bool) "value" true (close (B.contention_c ~w:8 ~t:8 ~n:8) 87.));
    tc "bitonic bound" (fun () ->
        Alcotest.(check bool) "value" true (close (B.contention_bitonic ~w:8 ~n:16) 18.));
    tc "periodic bound dominates bitonic" (fun () ->
        Alcotest.(check bool) "dominates" true
          (B.contention_periodic ~w:16 ~n:100 > B.contention_bitonic ~w:16 ~n:100));
    tc "increasing t lowers the C bound" (fun () ->
        let w = 16 and n = 512 in
        Alcotest.(check bool) "monotone" true
          (B.contention_c ~w ~t:(16 * 4) ~n < B.contention_c ~w ~t:16 ~n));
    tc "crossover at w lg w" (fun () ->
        Alcotest.(check int) "w=16" 64 (B.crossover_concurrency ~w:16));
    tc "asymptotic bound below constant-carrying bound" (fun () ->
        let w = 32 and t = 64 and n = 100 in
        Alcotest.(check bool) "below" true
          (B.contention_c_asymptotic ~w ~t ~n < B.contention_c ~w ~t ~n));
    tc "at high n the wide network beats bitonic by ~lg w" (fun () ->
        (* n >= w lg w, t = w lg w: bound O(n lg w / w) vs bitonic
           n lg2 w / w — ratio approaches lg w / 4 (constants aside). *)
        let w = 64 in
        let t = w * P.ilog2 w in
        let n = 100 * w * P.ilog2 w in
        let ours = B.contention_c ~w ~t ~n in
        let bitonic = B.contention_bitonic ~w ~n in
        Alcotest.(check bool) "ours lower" true (ours < bitonic));
    tc "butterfly bound linear term" (fun () ->
        let w = 16 in
        let base = B.contention_butterfly ~w ~n:0 in
        let slope = B.contention_butterfly ~w ~n:w -. base in
        Alcotest.(check bool) "4 lg w per w procs" true (close slope (4. *. B.lg w)));
    tc "diffracting bound is n" (fun () ->
        Alcotest.(check bool) "n" true (close (B.contention_diffracting ~n:42) 42.));
  ]

(* ------------------------------------------------------------------ *)
(* Contention-model projection (Projection): the model that turns one
   measured crossing cost plus simulated stalls into multicore curves. *)

module Pr = Cn_analysis.Projection

let projection =
  let cal = Pr.calibrate ~crossing_ns:20. () in
  [
    tc "calibration validates and derives stall cost" (fun () ->
        Alcotest.(check bool) "default factor" true
          (close cal.Pr.stall_factor Pr.default_stall_factor);
        Alcotest.(check bool) "stall_ns" true (close (Pr.stall_ns cal) 160.);
        let explicit = Pr.calibrate ~stall_factor:3. ~crossing_ns:10. () in
        Alcotest.(check bool) "explicit" true (close (Pr.stall_ns explicit) 30.));
    Util.raises_invalid "non-positive crossing" (fun () ->
        ignore (Pr.calibrate ~crossing_ns:0. ()));
    Util.raises_invalid "non-positive stall factor" (fun () ->
        ignore (Pr.calibrate ~stall_factor:(-1.) ~crossing_ns:1. ()));
    tc "of_throughput inverts the rate" (fun () ->
        (* 1e6 ops of depth 4 in one second: 250 ns/op, 62.5 ns/crossing. *)
        let c = Pr.of_throughput ~depth:4 ~ops:1_000_000 ~seconds:0.25 () in
        Alcotest.(check bool) "crossing" true (close c.Pr.crossing_ns 62.5));
    tc "central counter: one domain pays no stalls, rate saturates" (fun () ->
        let p1 = Pr.project_central cal ~domains:1 in
        Alcotest.(check bool) "no stalls" true (close p1.Pr.stalls_per_token 0.);
        Alcotest.(check bool) "token = crossing" true (close p1.Pr.token_ns 20.);
        (* At large n the rate decays toward the hot-spot ceiling
           1 / stall_ns from above: adding domains stops helping. *)
        let p64 = Pr.project_central cal ~domains:64 in
        let p128 = Pr.project_central cal ~domains:128 in
        let ceiling = 1e9 /. Pr.stall_ns cal in
        Alcotest.(check bool) "monotone decay" true
          (p1.Pr.ops_per_sec > p64.Pr.ops_per_sec
          && p64.Pr.ops_per_sec > p128.Pr.ops_per_sec);
        Alcotest.(check bool) "saturating at the ceiling" true
          (p128.Pr.ops_per_sec > ceiling
          && p128.Pr.ops_per_sec -. ceiling < 0.02 *. ceiling));
    tc "network projection scales while central saturates" (fun () ->
        let net = Cn_core.Counting.network ~w:16 ~t:16 in
        let hi_net = Pr.project_network cal net ~domains:64 in
        let hi_ctr = Pr.project_central cal ~domains:64 in
        Alcotest.(check bool) "network wins at n=64" true
          (hi_net.Pr.ops_per_sec > hi_ctr.Pr.ops_per_sec));
    tc "crossover exists and is where the curves actually cross" (fun () ->
        let net = Cn_core.Counting.network ~w:16 ~t:16 in
        match Pr.crossover cal net with
        | None -> Alcotest.fail "expected a crossover within range"
        | Some n ->
            Alcotest.(check bool) "past it, network wins" true
              ((Pr.project_network cal net ~domains:n).Pr.ops_per_sec
              > (Pr.project_central cal ~domains:n).Pr.ops_per_sec);
            Alcotest.(check bool) "sane range" true (n > 1 && n <= 1024));
    tc "projection is deterministic (seeded schedule)" (fun () ->
        let net = Cn_core.Counting.network ~w:4 ~t:8 in
        let a = Pr.project_network ~seed:7 cal net ~domains:8 in
        let b = Pr.project_network ~seed:7 cal net ~domains:8 in
        Alcotest.(check bool) "same stalls" true
          (close a.Pr.stalls_per_token b.Pr.stalls_per_token));
    tc "sweeps mirror the pointwise projections" (fun () ->
        let net = Cn_core.Counting.network ~w:4 ~t:8 in
        let doms = [ 1; 2; 4 ] in
        let sc = Pr.sweep_central cal ~domains_list:doms in
        let sn = Pr.sweep_network cal net ~domains_list:doms in
        Alcotest.(check (list int)) "central domains" doms
          (List.map (fun p -> p.Pr.domains) sc);
        Alcotest.(check (list int)) "network domains" doms
          (List.map (fun p -> p.Pr.domains) sn));
    Util.raises_invalid "project_central rejects n = 0" (fun () ->
        ignore (Pr.project_central cal ~domains:0));
  ]

let tune =
  let cal = Pr.calibrate ~crossing_ns:20. () in
  [
    tc "predicted stalls are the amortized Theorem 6.7 bound" (fun () ->
        (* contention_c(8,8,8) = 87 (see the bounds suite), so 87/8. *)
        Alcotest.(check bool) "value" true
          (close (Pr.predicted_stalls_per_token ~w:8 ~t:8 ~domains:8) (87. /. 8.)));
    tc "tuned point prices depth from Theorem 4.1" (fun () ->
        (* depth(C(8,t)) = (lg2 8 + lg 8)/2 = 6, independent of t; an
           uncontended token therefore costs 6 crossings. *)
        let p = Pr.tuned_point cal ~w:8 ~t:8 ~domains:1 ~stall_scale:1e-9 in
        Alcotest.(check bool) "token ns ~ depth x crossing" true
          (abs_float (p.Pr.token_ns -. (6. *. 20.)) < 1e-3));
    tc "tune_t pins t = w lg w at w = 4, 8, 16" (fun () ->
        (* Depth is t-free (Theorem 4.1) while the Theorem 6.7 bound is
           strictly decreasing in t, so the widest legal spread always
           wins: t = w lg w (the paper's recommendation). *)
        List.iter
          (fun (w, expected) ->
            Alcotest.(check int)
              (Printf.sprintf "w=%d" w)
              expected
              (Pr.tune_t cal ~w ~domains:64))
          [ (4, 8); (8, 24); (16, 64) ]);
    tc "tune_t is stall-scale invariant" (fun () ->
        (* Scaling all stalls can move the w choice, never the t choice:
           t only sheds contention. *)
        List.iter
          (fun scale ->
            Alcotest.(check int) (Printf.sprintf "scale %g" scale) 24
              (Pr.tune_t ~stall_scale:scale cal ~w:8 ~domains:128))
          [ 0.25; 1.; 4. ]);
    tc "tune picks shallow networks at low concurrency, wide at high" (fun () ->
        let w_lo, _ = Pr.tune cal ~domains:1 in
        let w_hi, t_hi = Pr.tune cal ~domains:1024 in
        Alcotest.(check int) "n=1 favours the smallest width" 2 w_lo;
        Alcotest.(check bool) "n=1024 favours a wider network" true (w_hi > w_lo);
        Alcotest.(check int) "its t is w lg w" (w_hi * Cn_core.Params.ilog2 w_hi) t_hi);
    tc "tune respects a custom width grid" (fun () ->
        let w, t = Pr.tune ~widths:[ 8 ] cal ~domains:4 in
        Alcotest.(check int) "w" 8 w;
        Alcotest.(check int) "t" 24 t);
    Util.raises_invalid "tune_t rejects non-power-of-two widths" (fun () ->
        ignore (Pr.tune_t cal ~w:12 ~domains:4));
    Util.raises_invalid "predicted stalls reject n = 0" (fun () ->
        ignore (Pr.predicted_stalls_per_token ~w:8 ~t:8 ~domains:0));
  ]

let suite =
  [
    ("analysis.params", params);
    ("analysis.bounds", bounds);
    ("analysis.projection", projection);
    ("analysis.tune", tune);
  ]
