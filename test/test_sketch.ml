(* Tests for the approximate counting tier (Cn_sketch): HyperLogLog
   accuracy against the 1.04/sqrt(m) theory, union algebra, the
   sparse-graph counters' peeling decode below the load threshold and
   graceful degradation above it, multi-domain safety of both hot
   paths, and the Shared_counter.Custom adapters. *)

module Hll = Cn_sketch.Hll
module Sparse = Cn_sketch.Sparse
module Backend = Cn_sketch.Backend
module SC = Cn_runtime.Shared_counter

let tc name f = Alcotest.test_case name `Quick f

let rel_err ~truth est = abs_float (est -. truth) /. truth

let hll_accuracy =
  [
    tc "relative error within the 1.04/sqrt m bound on 1e6 keys" (fun () ->
        let t = Hll.create ~precision:14 () in
        let n = 1_000_000 in
        for i = 0 to n - 1 do
          Hll.add t i
        done;
        let err = rel_err ~truth:(float_of_int n) (Hll.cardinality t) in
        (* sigma = 1.04/sqrt(16384) = 0.81%; the estimator is a random
           variable over the hash choice, which is fixed here, so this
           deterministic stream must land within ~1 sigma of truth. *)
        Alcotest.(check bool)
          (Printf.sprintf "err %.4f <= std error %.4f" err (Hll.std_error t))
          true
          (err <= Hll.std_error t));
    tc "linear-counting regime is near exact at small cardinality" (fun () ->
        let t = Hll.create ~precision:12 () in
        for i = 0 to 99 do
          Hll.add t i
        done;
        let err = rel_err ~truth:100. (Hll.cardinality t) in
        Alcotest.(check bool) (Printf.sprintf "err %.4f <= 0.05" err) true (err <= 0.05));
    tc "adds are idempotent" (fun () ->
        let t = Hll.create ~precision:10 () in
        for i = 0 to 999 do
          Hll.add t i
        done;
        let before = Hll.cardinality t in
        for _ = 1 to 3 do
          for i = 0 to 999 do
            Hll.add t i
          done
        done;
        Alcotest.(check (float 0.)) "unchanged" before (Hll.cardinality t));
    tc "error stays within bound across precisions at 1e5 keys" (fun () ->
        List.iter
          (fun p ->
            let t = Hll.create ~precision:p () in
            for i = 0 to 99_999 do
              Hll.add t i
            done;
            let err = rel_err ~truth:1e5 (Hll.cardinality t) in
            (* 2 sigma: the 95% envelope.  Each precision is one fixed
               draw of the hash-induced estimator, and the p=10 draw on
               this stream sits at 1.6 sigma. *)
            Alcotest.(check bool)
              (Printf.sprintf "p=%d: err %.4f <= %.4f" p err (2. *. Hll.std_error t))
              true
              (err <= 2. *. Hll.std_error t))
          [ 10; 12; 14 ]);
    tc "multi-domain adds observe every key" (fun () ->
        let t = Hll.create ~precision:12 () in
        let domains = 4 and per = 50_000 in
        let workers =
          List.init domains (fun d ->
              Domain.spawn (fun () ->
                  for i = d * per to ((d + 1) * per) - 1 do
                    Hll.add t i
                  done))
        in
        List.iter Domain.join workers;
        (* CAS-max never loses a maximum, so the registers — and hence
           the estimate — must be *identical* to a sequential build of
           the same key set, under any interleaving. *)
        let seq = Hll.create ~precision:12 () in
        for i = 0 to (domains * per) - 1 do
          Hll.add seq i
        done;
        Alcotest.(check (float 0.))
          "identical to sequential" (Hll.cardinality seq) (Hll.cardinality t));
  ]

let gen_key_list = QCheck2.Gen.(list_size (int_range 0 400) (int_range 0 5000))

let hll_union =
  [
    Util.qtest "union is commutative (register-exact)" QCheck2.Gen.(pair gen_key_list gen_key_list)
      (fun (ka, kb) ->
        let a = Hll.create ~precision:8 () and b = Hll.create ~precision:8 () in
        List.iter (Hll.add a) ka;
        List.iter (Hll.add b) kb;
        Hll.cardinality (Hll.union a b) = Hll.cardinality (Hll.union b a));
    Util.qtest "union is idempotent" gen_key_list (fun ks ->
        let a = Hll.create ~precision:8 () in
        List.iter (Hll.add a) ks;
        Hll.cardinality (Hll.union a a) = Hll.cardinality a);
    Util.qtest "union absorbs the empty sketch" gen_key_list (fun ks ->
        let a = Hll.create ~precision:8 () in
        List.iter (Hll.add a) ks;
        Hll.cardinality (Hll.union a (Hll.create ~precision:8 ())) = Hll.cardinality a);
    Util.qtest "union = sketch of the concatenated stream" QCheck2.Gen.(pair gen_key_list gen_key_list)
      (fun (ka, kb) ->
        let a = Hll.create ~precision:8 () and b = Hll.create ~precision:8 () in
        let both = Hll.create ~precision:8 () in
        List.iter (Hll.add a) ka;
        List.iter (Hll.add b) kb;
        List.iter (Hll.add both) (ka @ kb);
        Hll.cardinality (Hll.union a b) = Hll.cardinality both);
    tc "union rejects mismatched precision" (fun () ->
        Alcotest.check_raises "precision mismatch"
          (Invalid_argument "Hll.union: precision mismatch") (fun () ->
            ignore (Hll.union (Hll.create ~precision:8 ()) (Hll.create ~precision:10 ()))));
  ]

let sparse_tallies n ~seed =
  let rng = Random.State.make [| seed |] in
  List.init n (fun k -> (k, 1 + Random.State.int rng 1000))

let sparse =
  [
    tc "edges are k distinct in-range counters" (fun () ->
        let t = Sparse.create ~degree:3 ~counters:64 () in
        for key = 0 to 9999 do
          let es = Sparse.edges t key in
          Alcotest.(check int) "degree" 3 (Array.length es);
          Array.iter
            (fun e -> Alcotest.(check bool) "in range" true (e >= 0 && e < 64))
            es;
          let sorted = Array.copy es in
          Array.sort compare sorted;
          Alcotest.(check bool) "distinct" true
            (sorted.(0) <> sorted.(1) && sorted.(1) <> sorted.(2))
        done);
    tc "decode is exact below the peeling threshold" (fun () ->
        (* n = 1000 keys into m = 2048 >= 1.23n counters at k = 3: the
           LMP regime where peeling recovers every tally exactly. *)
        let t = Sparse.create ~degree:3 ~counters:2048 () in
        let tallies = sparse_tallies 1000 ~seed:42 in
        List.iter (fun (k, v) -> Sparse.add t k v) tallies;
        let decoded = Sparse.decode t (List.map fst tallies) in
        List.iter2
          (fun (k, truth) (k', { Sparse.value; exact }) ->
            Alcotest.(check int) "same key" k k';
            Alcotest.(check bool) (Printf.sprintf "key %d exact" k) true exact;
            Alcotest.(check int) (Printf.sprintf "key %d value" k) truth value)
          tallies decoded);
    tc "decode degrades to upper bounds above the threshold" (fun () ->
        (* 4096 keys into 512 counters: far past the 2-core threshold;
           peeling stalls and survivors fall back to min-estimates,
           which must still bound the truth from above. *)
        let t = Sparse.create ~degree:3 ~counters:512 () in
        let tallies = sparse_tallies 4096 ~seed:7 in
        List.iter (fun (k, v) -> Sparse.add t k v) tallies;
        let decoded = Sparse.decode t (List.map fst tallies) in
        let inexact = ref 0 in
        List.iter2
          (fun (_, truth) (_, { Sparse.value; exact }) ->
            if not exact then incr inexact;
            Alcotest.(check bool) "estimate bounds truth" true (value >= truth))
          tallies decoded;
        Alcotest.(check bool) "overload actually degraded some keys" true (!inexact > 0));
    tc "estimate bounds the true tally" (fun () ->
        let t = Sparse.create ~degree:3 ~counters:256 () in
        let tallies = sparse_tallies 500 ~seed:3 in
        List.iter (fun (k, v) -> Sparse.add t k v) tallies;
        List.iter
          (fun (k, truth) ->
            Alcotest.(check bool) "upper bound" true (Sparse.estimate t k >= truth))
          tallies);
    tc "multi-domain FAA updates conserve every edge" (fun () ->
        let t = Sparse.create ~degree:3 ~counters:1024 () in
        let domains = 4 and per_key = 1000 and keys = 64 in
        let workers =
          List.init domains (fun _ ->
              Domain.spawn (fun () ->
                  for _ = 1 to per_key do
                    for k = 0 to keys - 1 do
                      Sparse.add t k 1
                    done
                  done))
        in
        List.iter Domain.join workers;
        (* Quiescent decode must see the exact per-key totals: FAA
           never loses an update. *)
        let decoded = Sparse.decode t (List.init keys (fun k -> k)) in
        List.iter
          (fun (k, { Sparse.value; exact }) ->
            Alcotest.(check bool) (Printf.sprintf "key %d exact" k) true exact;
            Alcotest.(check int) (Printf.sprintf "key %d total" k) (domains * per_key) value)
          decoded);
    tc "memory stays sublinear in keys" (fun () ->
        let t = Sparse.create ~degree:3 ~counters:1024 () in
        for k = 0 to 99_999 do
          Sparse.add t k 1
        done;
        (* 100k keys leave no per-key residue: footprint is the fixed
           counter bank, not the key set. *)
        Alcotest.(check bool) "bounded" true (Sparse.memory_bytes t < 200_000));
  ]

let backends =
  [
    tc "hll backend estimates the increment count" (fun () ->
        let b = Backend.hll ~precision:12 () in
        let n = 20_000 in
        for i = 0 to n - 1 do
          ignore (SC.next b.Backend.counter ~pid:(i mod 8))
        done;
        let err = rel_err ~truth:(float_of_int n) (Hll.cardinality b.Backend.incs) in
        Alcotest.(check bool)
          (Printf.sprintf "err %.4f within 2 sigma" err)
          true
          (err <= 2. *. Hll.std_error b.Backend.incs));
    tc "hll backend nets decrements against increments" (fun () ->
        let b = Backend.hll ~precision:12 () in
        for i = 0 to 9_999 do
          ignore (SC.next b.Backend.counter ~pid:(i mod 4))
        done;
        for i = 0 to 3_999 do
          ignore (SC.prev b.Backend.counter ~pid:(i mod 4))
        done;
        let net =
          Hll.cardinality b.Backend.incs -. Hll.cardinality b.Backend.decs
        in
        (* The net divides the *difference* of two estimates by a
           smaller truth, so its relative error is wider than either
           sketch's: 10% still cleanly separates 6000 from the 10000
           (lost decs) and 2000 (double-counted decs) failure modes. *)
        let err = rel_err ~truth:6_000. net in
        Alcotest.(check bool) (Printf.sprintf "net err %.4f" err) true (err <= 0.10));
    tc "hll backend tickets are unique and slot-monotone" (fun () ->
        let b = Backend.hll ~precision:10 ~slots:8 () in
        let seen = Hashtbl.create 1024 in
        let last = Array.make 8 (-1) in
        for i = 0 to 4_095 do
          let pid = i mod 13 in
          let ticket = SC.next b.Backend.counter ~pid in
          Alcotest.(check bool) "fresh" false (Hashtbl.mem seen ticket);
          Hashtbl.add seen ticket ();
          let slot = pid mod 8 in
          Alcotest.(check bool) "monotone within slot" true (ticket > last.(slot));
          last.(slot) <- ticket
        done);
    tc "hll backend mints unique keys across slot-sharing pids" (fun () ->
        (* pids 3 and 67 share slot 3 of 64; the minted keys must still
           all be distinct, which the estimate reflects. *)
        let b = Backend.hll ~precision:12 ~slots:64 () in
        for _ = 1 to 5_000 do
          ignore (SC.next b.Backend.counter ~pid:3);
          ignore (SC.next b.Backend.counter ~pid:67)
        done;
        (* What this pins is uniqueness, not estimator variance: if
           slot-sharing pids minted colliding keys the estimate would
           collapse toward 5000.  10% rejects that decisively while
           tolerating this stream's 2.6-sigma draw. *)
        let err = rel_err ~truth:10_000. (Hll.cardinality b.Backend.incs) in
        Alcotest.(check bool) (Printf.sprintf "err %.4f" err) true (err <= 0.10));
    tc "lane residue classes keep sibling mints disjoint under union" (fun () ->
        (* Regression: two sibling backends (the fabric's telemetry
           lanes) both mint from zero-based slot banks, so without the
           lane residue class the same-slot keys collide and the union
           counts half the events. *)
        let a = Backend.hll ~precision:12 ~lane:(0, 2) () in
        let b = Backend.hll ~precision:12 ~lane:(1, 2) () in
        for _ = 1 to 5_000 do
          ignore (SC.next a.Backend.counter ~pid:3);
          ignore (SC.next b.Backend.counter ~pid:3)
        done;
        let u = Hll.union a.Backend.incs b.Backend.incs in
        let err = rel_err ~truth:10_000. (Hll.cardinality u) in
        (* A collision collapse reads ~5000 (err 0.5); 10% rejects it
           while tolerating estimator variance on this fixed stream. *)
        Alcotest.(check bool) (Printf.sprintf "union err %.4f" err) true
          (err <= 0.10));
    Util.raises_invalid "hll backend rejects a malformed lane" (fun () ->
        ignore (Backend.hll ~lane:(2, 2) ()));
    tc "sparse backend tallies per-pid flows" (fun () ->
        let b = Backend.sparse ~counters:4096 () in
        for pid = 0 to 7 do
          for _ = 1 to (pid + 1) * 100 do
            ignore (SC.next b.Backend.counter ~pid)
          done
        done;
        (* Only 8 flows in 4096 counters: min-estimates are exact. *)
        let decoded = Sparse.decode b.Backend.sketch (List.init 8 (fun p -> p)) in
        List.iter
          (fun (pid, { Sparse.value; exact }) ->
            Alcotest.(check bool) "exact" true exact;
            Alcotest.(check int) (Printf.sprintf "pid %d" pid) ((pid + 1) * 100) value)
          decoded);
    tc "sparse backend prev retires tokens" (fun () ->
        let b = Backend.sparse ~counters:1024 () in
        for _ = 1 to 500 do
          ignore (SC.next b.Backend.counter ~pid:1)
        done;
        for _ = 1 to 200 do
          ignore (SC.prev b.Backend.counter ~pid:1)
        done;
        Alcotest.(check int) "net flow" 300 (Sparse.estimate b.Backend.sketch 1));
  ]

let suite =
  [
    ("sketch.hll", hll_accuracy);
    ("sketch.hll-union", hll_union);
    ("sketch.sparse", sparse);
    ("sketch.backends", backends);
  ]
