(* Allocation regressions for the token hot path.

   The runtime promises a GC-free traversal: once a runtime (and, for
   the pipelined walks, a buffer) exists, crossing tokens allocates
   zero minor-heap words per token — no closures, no boxed floats, no
   tuples.  These tests pin that with [Gc.minor_words] deltas: a run of
   many tokens may cost at most a small constant (the boxed float the
   measurement itself creates), never a per-token amount.

   The second half checks that the layer-pipelined batch walk is an
   observational refinement of the sequential one: same quiescent
   distribution as the combinatorial evaluator, and the multiset of
   values handed out is exactly the range a counter must produce. *)

module RT = Cn_runtime.Network_runtime
module E = Cn_network.Eval

let tc name f = Alcotest.test_case name `Quick f
let net48 () = Cn_core.Counting.network ~w:4 ~t:8
let sink _ _ = ()

(* Warm once (faults in anything lazily created), then measure a long
   run.  The slack of 64 words absorbs the boxed float [Gc.minor_words]
   itself allocates; one word per token would show up as 10_000. *)
let tokens = 10_000

let delta_words run =
  run 64;
  let before = Gc.minor_words () in
  run tokens;
  Gc.minor_words () -. before

let check_gc_free run =
  let d = delta_words run in
  Alcotest.(check bool)
    (Printf.sprintf "allocated %.0f minor words for %d tokens" d tokens)
    true (d < 64.)

let zero_alloc =
  let case name ~mode ~layout ~metrics run =
    tc name (fun () ->
        let rt = RT.compile ~mode ~layout ~metrics (net48 ()) in
        check_gc_free (run rt))
  in
  let traverse rt n =
    for i = 0 to n - 1 do
      ignore (RT.traverse rt ~wire:(i land 3))
    done
  in
  let traverse_dec rt n =
    for i = 0 to n - 1 do
      ignore (RT.traverse rt ~wire:(i land 3));
      ignore (RT.traverse_decrement rt ~wire:(i land 3))
    done
  in
  let batch rt n = RT.traverse_batch rt ~wire:1 ~n ~f:sink in
  let batch_dec rt n =
    RT.traverse_batch rt ~wire:1 ~n ~f:sink;
    RT.traverse_batch_decrement rt ~wire:1 ~n ~f:sink
  in
  [
    case "traverse, faa, padded csr" ~mode:RT.Faa ~layout:RT.Padded_csr ~metrics:false traverse;
    case "traverse, faa, unpadded nested" ~mode:RT.Faa ~layout:RT.Unpadded_nested ~metrics:false
      traverse;
    case "traverse, cas, padded csr" ~mode:RT.Cas ~layout:RT.Padded_csr ~metrics:false traverse;
    case "traverse, cas, unpadded nested" ~mode:RT.Cas ~layout:RT.Unpadded_nested ~metrics:false
      traverse;
    case "traverse + antitoken, faa, padded csr" ~mode:RT.Faa ~layout:RT.Padded_csr
      ~metrics:false traverse_dec;
    case "batch, faa, padded csr" ~mode:RT.Faa ~layout:RT.Padded_csr ~metrics:false batch;
    case "batch, faa, unpadded nested" ~mode:RT.Faa ~layout:RT.Unpadded_nested ~metrics:false
      batch;
    case "batch + batched antitokens, cas, padded csr" ~mode:RT.Cas ~layout:RT.Padded_csr
      ~metrics:false batch_dec;
    case "metered traverse, faa, padded csr" ~mode:RT.Faa ~layout:RT.Padded_csr ~metrics:true
      traverse;
    case "metered batch, faa, unpadded nested" ~mode:RT.Faa ~layout:RT.Unpadded_nested
      ~metrics:true batch;
    tc "pipelined batch, both layouts" (fun () ->
        List.iter
          (fun layout ->
            let rt = RT.compile ~layout (net48 ()) in
            let buf = RT.buffer ~capacity:32 () in
            check_gc_free (fun n -> RT.traverse_batch_pipelined rt buf ~wire:2 ~n ~f:sink))
          [ RT.Padded_csr; RT.Unpadded_nested ]);
    tc "pipelined batched antitokens" (fun () ->
        let rt = RT.compile (net48 ()) in
        let buf = RT.buffer ~capacity:32 () in
        check_gc_free (fun n ->
            RT.traverse_batch_pipelined rt buf ~wire:0 ~n ~f:sink;
            RT.traverse_batch_pipelined_decrement rt buf ~wire:0 ~n ~f:sink));
  ]

(* ------------------------------------------------------------------ *)
(* Pipelined walks against the evaluator and the sequential batch. *)

let sorted_values collect =
  let out = ref [] in
  collect (fun (_ : int) v -> out := v :: !out);
  List.sort compare !out

let pipelined =
  [
    tc "pipelined batch matches the evaluator's quiescent distribution" (fun () ->
        let net = Cn_core.Counting.network ~w:8 ~t:16 in
        let x = [| 5; 2; 0; 9; 3; 1; 7; 4 |] in
        List.iter
          (fun layout ->
            let rt = RT.compile ~layout net in
            let buf = RT.buffer ~capacity:4 () in
            Array.iteri
              (fun wire n ->
                if n > 0 then RT.traverse_batch_pipelined rt buf ~wire ~n ~f:sink)
              x;
            Alcotest.check Util.seq "distribution" (E.quiescent net x)
              (RT.exit_distribution rt))
          [ RT.Padded_csr; RT.Unpadded_nested ]);
    tc "pipelined batch hands out the same value multiset as traverse_batch" (fun () ->
        let net = net48 () in
        let n = 77 in
        let seq =
          let rt = RT.compile net in
          sorted_values (fun f -> RT.traverse_batch rt ~wire:1 ~n ~f)
        in
        let pip =
          let rt = RT.compile net in
          let buf = RT.buffer ~capacity:8 () in
          sorted_values (fun f -> RT.traverse_batch_pipelined rt buf ~wire:1 ~n ~f)
        in
        Alcotest.(check (list int)) "same values" seq pip;
        Alcotest.(check (list int)) "a fresh counter hands out 0..n-1" (List.init n Fun.id) pip);
    tc "pipelined decrement reclaims every value and re-quiesces" (fun () ->
        let net = net48 () in
        let rt = RT.compile net in
        let buf = RT.buffer ~capacity:8 () in
        let n = 41 in
        RT.traverse_batch_pipelined rt buf ~wire:3 ~n ~f:sink;
        let reclaimed =
          sorted_values (fun f -> RT.traverse_batch_pipelined_decrement rt buf ~wire:3 ~n ~f)
        in
        Alcotest.(check (list int)) "reclaimed 0..n-1" (List.init n Fun.id) reclaimed;
        Alcotest.check Util.seq "back to empty"
          (Array.make (RT.output_width rt) 0)
          (RT.exit_distribution rt));
    tc "batched decrement agrees with per-op traverse_decrement" (fun () ->
        let net = net48 () in
        let a = RT.compile net and b = RT.compile net in
        let n = 29 in
        RT.traverse_batch a ~wire:2 ~n ~f:sink;
        RT.traverse_batch b ~wire:2 ~n ~f:sink;
        let batched = sorted_values (fun f -> RT.traverse_batch_decrement a ~wire:2 ~n ~f) in
        let one_by_one =
          List.sort compare (List.init n (fun _ -> RT.traverse_decrement b ~wire:2))
        in
        Alcotest.(check (list int)) "same values" one_by_one batched;
        Alcotest.check Util.seq "same distribution" (RT.exit_distribution b)
          (RT.exit_distribution a));
    tc "buffer capacity is validated and reported" (fun () ->
        Alcotest.(check int) "default" 64 (RT.buffer_capacity (RT.buffer ()));
        Alcotest.(check int) "explicit" 7 (RT.buffer_capacity (RT.buffer ~capacity:7 ()));
        Alcotest.check_raises "zero capacity"
          (Invalid_argument "Network_runtime.buffer: capacity must be positive") (fun () ->
            ignore (RT.buffer ~capacity:0 ())));
    tc "pipelined batch validates its arguments" (fun () ->
        let rt = RT.compile (net48 ()) in
        let buf = RT.buffer () in
        Alcotest.check_raises "wire"
          (Invalid_argument "Network_runtime.traverse_batch_pipelined: wire out of range")
          (fun () -> RT.traverse_batch_pipelined rt buf ~wire:4 ~n:1 ~f:sink);
        Alcotest.check_raises "negative n"
          (Invalid_argument "Network_runtime.traverse_batch_pipelined: negative batch size")
          (fun () -> RT.traverse_batch_pipelined rt buf ~wire:0 ~n:(-1) ~f:sink));
  ]

let suite = [ ("gcfree.zero_alloc", zero_alloc); ("gcfree.pipelined", pipelined) ]
