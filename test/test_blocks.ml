(* Tests for Cn_core.Blocks: the N_a / N_b / N_c decomposition of C(w,t)
   (Sections 1.3.2 and 6.4, Lemma 6.6). *)

module T = Cn_network.Topology
module E = Cn_network.Eval
module S = Cn_sequence.Sequence
module Blocks = Cn_core.Blocks
module C = Cn_core.Counting

let tc name f = Alcotest.test_case name `Quick f

let structure =
  [
    tc "c_prime depth is lg w" (fun () ->
        List.iter
          (fun (w, t) ->
            Alcotest.(check int)
              (Printf.sprintf "C'(%d,%d)" w t)
              (Cn_core.Params.ilog2 w)
              (T.depth (Blocks.c_prime ~w ~t)))
          [ (2, 4); (4, 8); (8, 8); (8, 24); (16, 32) ]);
    tc "c_prime widths" (fun () ->
        let net = Blocks.c_prime ~w:8 ~t:24 in
        Alcotest.(check int) "w" 8 (T.input_width net);
        Alcotest.(check int) "t" 24 (T.output_width net));
    tc "c_second equals backward butterfly" (fun () ->
        List.iter
          (fun w ->
            Alcotest.(check bool)
              (Printf.sprintf "C''(%d) = E(%d)" w w)
              true
              (T.equal (Blocks.c_second w) (Cn_core.Butterfly.backward w)))
          [ 2; 4; 8; 16 ]);
    tc "n_c depth is (lg2 w - lg w)/2" (fun () ->
        List.iter
          (fun (w, t) ->
            Alcotest.(check int)
              (Printf.sprintf "N_c(%d,%d)" w t)
              (Blocks.n_c_depth ~w)
              (T.depth (Blocks.n_c ~w ~t)))
          [ (2, 2); (4, 4); (4, 8); (8, 8); (8, 16); (16, 16); (16, 64) ]);
    tc "block depths sum to the network depth" (fun () ->
        List.iter
          (fun w ->
            (* depth(N_a) + depth(N_b) + depth(N_c) = depth(C). *)
            Alcotest.(check int) (Printf.sprintf "w=%d" w)
              (C.depth_formula ~w)
              (Blocks.n_a_depth ~w + 1 + Blocks.n_c_depth ~w))
          [ 2; 4; 8; 16; 32; 64 ]);
    tc "n_c of w=2 is bare wires" (fun () ->
        Alcotest.(check int) "no balancers" 0 (T.size (Blocks.n_c ~w:2 ~t:6)));
  ]

let composition =
  [
    tc "C'(w,t) ; N_c(w,t) behaves as C(w,t)" (fun () ->
        List.iter
          (fun (w, t) ->
            let composed = T.cascade (Blocks.c_prime ~w ~t) (Blocks.n_c ~w ~t) in
            let whole = C.network ~w ~t in
            let rng = Random.State.make [| w * t |] in
            for _ = 1 to 60 do
              let x = Util.random_input rng w in
              Alcotest.check Util.seq
                (Printf.sprintf "C(%d,%d)" w t)
                (E.quiescent whole x) (E.quiescent composed x)
            done)
          [ (2, 2); (4, 4); (4, 8); (8, 8); (8, 16); (16, 16); (16, 32) ]);
    tc "balancer counts add up" (fun () ->
        List.iter
          (fun (w, t) ->
            Alcotest.(check int)
              (Printf.sprintf "C(%d,%d)" w t)
              (T.size (C.network ~w ~t))
              (T.size (Blocks.c_prime ~w ~t) + T.size (Blocks.n_c ~w ~t)))
          [ (4, 4); (8, 8); (8, 16); (16, 48) ]);
  ]

let smoothing =
  [
    tc "lemma 6.6: N_ab is s-smoothing" (fun () ->
        List.iter
          (fun (w, t) ->
            let s = Blocks.smoothing_parameter ~w ~t in
            let net = Blocks.c_prime ~w ~t in
            Util.for_random_inputs ~trials:150 ~seed:(w * 31 + t) ~max_tokens:80 net
              (fun ~trial:_ ~x:_ ~y ->
                Alcotest.(check bool)
                  (Printf.sprintf "C'(%d,%d) %d-smooth" w t s)
                  true (S.is_smooth s y)))
          [ (4, 4); (4, 8); (8, 8); (8, 16); (8, 24); (16, 16); (16, 64) ]);
    tc "smoothing parameter values" (fun () ->
        List.iter
          (fun ((w, t), expected) ->
            Alcotest.(check int) (Printf.sprintf "s(%d,%d)" w t) expected
              (Blocks.smoothing_parameter ~w ~t))
          [
            ((8, 8), 5); (* ⌊24/8⌋+2 *)
            ((8, 24), 3); (* ⌊24/24⌋+2 *)
            ((8, 48), 2); (* ⌊24/48⌋+2 *)
            ((16, 16), 6);
            ((16, 64), 3);
          ]);
    tc "wider t smooths N_ab more" (fun () ->
        Alcotest.(check bool) "monotone" true
          (Blocks.smoothing_parameter ~w:16 ~t:64
          < Blocks.smoothing_parameter ~w:16 ~t:16));
  ]

let suite =
  [
    ("blocks.structure", structure);
    ("blocks.composition", composition);
    ("blocks.smoothing", smoothing);
  ]
