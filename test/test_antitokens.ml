(* Tests for antitoken / Fetch&Decrement support (paper, Section 1.4.2;
   Aiello et al., "Supporting increment and decrement operations in
   balancing networks"). *)

module B = Cn_network.Balancer
module T = Cn_network.Topology
module E = Cn_network.Eval
module S = Cn_sequence.Sequence
module RT = Cn_runtime.Network_runtime
module SC = Cn_runtime.Shared_counter

let tc name f = Alcotest.test_case name `Quick f

let balancer_level =
  [
    tc "net counts agree with token counts when net >= 0" (fun () ->
        let b = B.make ~init_state:1 ~fan_in:2 ~fan_out:3 () in
        for m = 0 to 20 do
          Alcotest.check Util.seq
            (Printf.sprintf "m=%d" m)
            (B.output_counts b ~tokens:m)
            (B.net_output_counts b ~net:m)
        done);
    tc "pure antitoken run walks wires backwards" (fun () ->
        let b = B.make ~fan_in:2 ~fan_out:4 () in
        (* From state 0, antitokens exit wires 3, 2, 1, 0, 3, ... *)
        Alcotest.check Util.seq "one" [| 0; 0; 0; -1 |] (B.net_output_counts b ~net:(-1));
        Alcotest.check Util.seq "three" [| 0; -1; -1; -1 |] (B.net_output_counts b ~net:(-3));
        Alcotest.check Util.seq "five" [| -1; -1; -1; -2 |] (B.net_output_counts b ~net:(-5)));
    tc "net counts sum to net" (fun () ->
        let b = B.make ~init_state:2 ~fan_in:2 ~fan_out:5 () in
        for net = -30 to 30 do
          Alcotest.(check int) (Printf.sprintf "net=%d" net) net
            (S.sum (B.net_output_counts b ~net))
        done);
    tc "token then antitoken cancels (simulated pairwise)" (fun () ->
        (* Explicit small interleavings through a single balancer: apply
           +1/-1 in every order of a 4-element mixed sequence and compare
           quiescent counts. *)
        let q = 3 in
        let apply signs =
          let state = ref 0 and counts = Array.make q 0 in
          List.iter
            (fun sign ->
              if sign > 0 then begin
                counts.(!state) <- counts.(!state) + 1;
                state := (!state + 1) mod q
              end
              else begin
                state := (!state - 1 + q) mod q;
                counts.(!state) <- counts.(!state) - 1
              end)
            signs;
          (!state, counts)
        in
        let rec interleavings tokens antis =
          match (tokens, antis) with
          | 0, 0 -> [ [] ]
          | 0, a -> List.map (fun l -> -1 :: l) (interleavings 0 (a - 1))
          | t, 0 -> List.map (fun l -> 1 :: l) (interleavings (t - 1) 0)
          | t, a ->
              List.map (fun l -> 1 :: l) (interleavings (t - 1) a)
              @ List.map (fun l -> -1 :: l) (interleavings t (a - 1))
        in
        List.iter
          (fun (t, a) ->
            let b = B.make ~fan_in:2 ~fan_out:q () in
            let expected_counts = B.net_output_counts b ~net:(t - a) in
            let expected_state = B.state_after_net b ~net:(t - a) in
            List.iter
              (fun signs ->
                let state, counts = apply signs in
                Alcotest.(check int) "state" expected_state state;
                Alcotest.check Util.seq "counts" expected_counts counts)
              (interleavings t a))
          [ (2, 2); (3, 1); (1, 3); (3, 2); (0, 4) ]);
    tc "state_after_net normalizes" (fun () ->
        let b = B.make ~fan_in:2 ~fan_out:4 () in
        Alcotest.(check int) "-1" 3 (B.state_after_net b ~net:(-1));
        Alcotest.(check int) "-9" 3 (B.state_after_net b ~net:(-9));
        Alcotest.(check int) "+6" 2 (B.state_after_net b ~net:6));
  ]

let network_level =
  [
    tc "quiescent_net = quiescent on all-token loads" (fun () ->
        let net = Cn_core.Counting.network ~w:8 ~t:16 in
        Util.for_random_inputs ~trials:80 net (fun ~trial:_ ~x ~y ->
            Alcotest.check Util.seq "agree" y (E.quiescent_net net x)));
    tc "trace_signed matches quiescent_net (C(8,16))" (fun () ->
        let net = Cn_core.Counting.network ~w:8 ~t:16 in
        let rng = Random.State.make [| 23 |] in
        for seed = 0 to 40 do
          let tokens = Array.init 8 (fun _ -> Random.State.int rng 15) in
          let antitokens = Array.init 8 (fun _ -> Random.State.int rng 15) in
          let net_in = Array.init 8 (fun i -> tokens.(i) - antitokens.(i)) in
          Alcotest.check Util.seq
            (Printf.sprintf "seed %d" seed)
            (E.quiescent_net net net_in)
            (E.trace_signed ~seed net ~tokens ~antitokens)
        done);
    tc "trace_signed matches quiescent_net (bitonic 8)" (fun () ->
        let net = Cn_baselines.Bitonic.network 8 in
        let rng = Random.State.make [| 29 |] in
        for seed = 0 to 40 do
          let tokens = Array.init 8 (fun _ -> Random.State.int rng 10) in
          let antitokens = Array.init 8 (fun _ -> Random.State.int rng 10) in
          let net_in = Array.init 8 (fun i -> tokens.(i) - antitokens.(i)) in
          Alcotest.check Util.seq
            (Printf.sprintf "seed %d" seed)
            (E.quiescent_net net net_in)
            (E.trace_signed ~seed net ~tokens ~antitokens)
        done);
    tc "counting networks count net flows (non-negative nets)" (fun () ->
        (* With every input net >= 0 the net output is a step sequence
           (the all-token equivalent load). *)
        let net = Cn_core.Counting.network ~w:8 ~t:24 in
        let rng = Random.State.make [| 31 |] in
        for _ = 1 to 60 do
          let x = Array.init 8 (fun _ -> Random.State.int rng 12) in
          Util.check_step (E.quiescent_net net x)
        done);
    tc "all-antitoken load mirrors the token load" (fun () ->
        (* Pushing k antitokens everywhere is the time-reverse of pushing
           k tokens: net outputs are <= 0 and sum to the negated total. *)
        let net = Cn_core.Counting.network ~w:4 ~t:8 in
        let x = [| -3; -5; -2; -7 |] in
        let y = E.quiescent_net net x in
        Alcotest.(check int) "sum" (-17) (S.sum y);
        Alcotest.(check bool) "all non-positive" true (Array.for_all (fun v -> v <= 0) y));
    Util.raises_invalid "trace_signed rejects negative counts" (fun () ->
        ignore
          (E.trace_signed (Cn_core.Ladder.network 2) ~tokens:[| -1; 0 |] ~antitokens:[| 0; 0 |]));
  ]

let runtime_level =
  [
    tc "sequential inc/dec round trip" (fun () ->
        let rt = RT.compile (Cn_core.Counting.network ~w:4 ~t:8) in
        let v0 = RT.traverse rt ~wire:0 in
        let v1 = RT.traverse rt ~wire:1 in
        Alcotest.(check int) "v0" 0 v0;
        Alcotest.(check int) "v1" 1 v1;
        let back = RT.traverse_decrement rt ~wire:1 in
        Alcotest.(check int) "reclaimed" 1 back;
        Alcotest.(check int) "reissued" 1 (RT.traverse rt ~wire:1));
    tc "dec to negative and back" (fun () ->
        let rt = RT.compile (Cn_core.Counting.network ~w:4 ~t:8) in
        let d = RT.traverse_decrement rt ~wire:0 in
        Alcotest.(check bool) "below zero" true (d < 0);
        (* Inc after dec returns the same value. *)
        Alcotest.(check int) "reissue" d (RT.traverse rt ~wire:0));
    tc "exit distribution reflects net flow" (fun () ->
        let rt = RT.compile (Cn_core.Counting.network ~w:4 ~t:8) in
        for i = 0 to 9 do
          ignore (RT.traverse rt ~wire:(i mod 4))
        done;
        for i = 0 to 3 do
          ignore (RT.traverse_decrement rt ~wire:(i mod 4))
        done;
        let dist = RT.exit_distribution rt in
        Alcotest.(check int) "net sum" 6 (S.sum dist);
        Util.check_step dist);
    tc "shared counter prev/next contract (all impls)" (fun () ->
        List.iter
          (fun (label, c) ->
            let a = SC.next c ~pid:0 in
            let b = SC.next c ~pid:1 in
            let r = SC.prev c ~pid:1 in
            let b' = SC.next c ~pid:2 in
            Alcotest.(check int) (label ^ " a") 0 a;
            Alcotest.(check int) (label ^ " b") 1 b;
            Alcotest.(check int) (label ^ " reclaim") 1 r;
            Alcotest.(check int) (label ^ " reissue") 1 b')
          [
            ("network", SC.of_topology (Cn_core.Counting.network ~w:4 ~t:8));
            ("central", SC.central_faa ());
            ("lock", SC.with_lock ());
          ]);
    tc "concurrent matched inc/dec nets to zero" (fun () ->
        let rt = RT.compile (Cn_core.Counting.network ~w:8 ~t:16) in
        let body pid () =
          for _ = 1 to 500 do
            ignore (RT.traverse rt ~wire:(pid mod 8));
            ignore (RT.traverse_decrement rt ~wire:(pid mod 8))
          done
        in
        let handles = Array.init 4 (fun pid -> Domain.spawn (body pid)) in
        Array.iter Domain.join handles;
        Alcotest.(check int) "net zero" 0 (S.sum (RT.exit_distribution rt)));
    tc "concurrent mixed traffic holds step + conservation (C(4,4), C(8,8))"
      (fun () ->
        (* Multi-domain interleavings of traverse / traverse_decrement,
           validated under Strict at quiescence: with metrics compiled
           in, quiescent_runtime checks the step property AND token
           conservation AND tally agreement (satellite of ISSUE 3). *)
        List.iter
          (fun (w, t) ->
            let rt =
              RT.compile ~metrics:true (Cn_core.Counting.network ~w ~t)
            in
            let domains = 4 and ops = 300 in
            let body pid () =
              (* Randomized mix with non-negative prefixes: a domain
                 never retires more than it has issued. *)
              let rng = Random.State.make [| 97; w; pid |] in
              let balance = ref 0 in
              for k = 0 to ops - 1 do
                let wire = (pid + k) mod w in
                if !balance > 0 && Random.State.bool rng then begin
                  ignore (RT.traverse_decrement rt ~wire);
                  decr balance
                end
                else begin
                  ignore (RT.traverse rt ~wire);
                  incr balance
                end
              done
            in
            let handles =
              Array.init domains (fun pid -> Domain.spawn (body pid))
            in
            Array.iter Domain.join handles;
            let report = Cn_runtime.Validator.quiescent_runtime rt in
            Cn_runtime.Validator.enforce Cn_runtime.Validator.Strict report;
            let snap =
              Cn_runtime.Metrics.snapshot (Option.get (RT.metrics rt))
            in
            Alcotest.(check bool)
              (Printf.sprintf "C(%d,%d) antitokens flowed" w t)
              true
              (snap.Cn_runtime.Metrics.antitokens > 0);
            Alcotest.(check int)
              (Printf.sprintf "C(%d,%d) conservation" w t)
              (snap.Cn_runtime.Metrics.tokens
              - snap.Cn_runtime.Metrics.antitokens)
              (S.sum (RT.exit_distribution rt)))
          [ (4, 4); (8, 8) ]);
    Util.raises_invalid "decrement wire out of range" (fun () ->
        ignore
          (RT.traverse_decrement (RT.compile (Cn_core.Ladder.network 2)) ~wire:5));
  ]

let suite =
  [
    ("antitokens.balancer", balancer_level);
    ("antitokens.network", network_level);
    ("antitokens.runtime", runtime_level);
  ]
