(* Tests for the Cn_service combining front-end: sessions, flat
   combining, inc/dec elimination (paper, Section 1.4.2), backpressure
   and lifecycle. *)

module Svc = Cn_service.Service
module W = Cn_service.Workload
module RT = Cn_runtime.Network_runtime
module SC = Cn_runtime.Shared_counter
module H = Cn_runtime.Harness
module V = Cn_runtime.Validator
module S = Cn_sequence.Sequence

let tc name f = Alcotest.test_case name `Quick f
let net48 () = Cn_core.Counting.network ~w:4 ~t:8
let net816 () = Cn_core.Counting.network ~w:8 ~t:16

let check_ok label = function
  | Ok v -> v
  | Error Svc.Overloaded -> Alcotest.failf "%s: unexpected Overloaded" label
  | Error Svc.Closed -> Alcotest.failf "%s: unexpected Closed" label

let sessions =
  [
    tc "sessions are pinned round-robin over input wires" (fun () ->
        let svc = Svc.create (net48 ()) in
        let wires =
          List.init 6 (fun _ -> Svc.session_wire (Svc.session svc))
        in
        Alcotest.(check (list int)) "round robin" [ 0; 1; 2; 3; 0; 1 ] wires);
    tc "explicit wire pinning" (fun () ->
        let svc = Svc.create (net48 ()) in
        Alcotest.(check int) "pinned" 2 (Svc.session_wire (Svc.session ~wire:2 svc)));
    Util.raises_invalid "session wire out of range" (fun () ->
        ignore (Svc.session ~wire:4 (Svc.create (net48 ()))));
    Util.raises_invalid "create rejects max_batch 0" (fun () ->
        ignore (Svc.create ~max_batch:0 (net48 ())));
    Util.raises_invalid "create rejects queue 0" (fun () ->
        ignore (Svc.create ~queue:0 (net48 ())));
    Util.raises_invalid "shared_counter rejects sessions 0" (fun () ->
        ignore (Svc.shared_counter ~sessions:0 (Svc.create (net48 ()))));
  ]

let sequential =
  [
    tc "sequential increments hand out 0.." (fun () ->
        let svc = Svc.create (net48 ()) in
        let s = Svc.session svc in
        for expect = 0 to 19 do
          Alcotest.(check int)
            (Printf.sprintf "value %d" expect)
            expect
            (check_ok "inc" (Svc.increment s))
        done;
        let st = Svc.stats svc in
        Alcotest.(check int) "all ops served" 20 st.Svc.total_ops);
    tc "increment/decrement round trip matches the raw runtime" (fun () ->
        let svc = Svc.create (net48 ()) in
        let s0 = Svc.session ~wire:0 svc and s1 = Svc.session ~wire:1 svc in
        Alcotest.(check int) "a" 0 (check_ok "a" (Svc.increment s0));
        Alcotest.(check int) "b" 1 (check_ok "b" (Svc.increment s1));
        Alcotest.(check int) "reclaim" 1 (check_ok "r" (Svc.decrement s1));
        Alcotest.(check int) "reissue" 1 (check_ok "b'" (Svc.increment s1)));
    tc "drain validates and the service stays usable" (fun () ->
        let svc = Svc.create ~metrics:true (net48 ()) in
        let s = Svc.session svc in
        ignore (check_ok "inc" (Svc.increment s));
        let report = Svc.drain svc in
        Alcotest.(check bool) "drain passed" true (V.passed report);
        Alcotest.(check int) "usable after drain" 1
          (check_ok "inc" (Svc.increment s)));
    tc "shutdown closes the service, idempotently" (fun () ->
        let svc = Svc.create (net48 ()) in
        let s = Svc.session svc in
        ignore (check_ok "inc" (Svc.increment s));
        ignore (Svc.shutdown svc);
        ignore (Svc.shutdown svc);
        (match Svc.increment s with
        | Error Svc.Closed -> ()
        | Ok _ | Error Svc.Overloaded -> Alcotest.fail "expected Closed");
        (match Svc.submit s Svc.Inc with
        | Error Svc.Closed -> ()
        | Ok _ | Error Svc.Overloaded -> Alcotest.fail "expected Closed");
        (* Drain on a stopped service validates but does not re-open. *)
        ignore (Svc.drain svc);
        match Svc.increment s with
        | Error Svc.Closed -> ()
        | Ok _ | Error Svc.Overloaded -> Alcotest.fail "still closed");
  ]

let elimination =
  [
    tc "matched batch eliminates all but an anchor pair" (fun () ->
        (* Park 2 decrements and 2 increments on one wire, then combine:
           one inc/dec pair stays real (the anchor traverses and its
           antitoken reclaims the same value), the other pair eliminates
           locally.  Every operation returns the anchor value 0. *)
        let svc = Svc.create ~metrics:true (net48 ()) in
        let ss = Array.init 4 (fun _ -> Svc.session ~wire:0 svc) in
        let ops = [| Svc.Dec; Svc.Dec; Svc.Inc; Svc.Inc |] in
        Array.iteri
          (fun i op ->
            match Svc.submit ss.(i) op with
            | Ok () -> ()
            | Error _ -> Alcotest.fail "submit failed")
          ops;
        let values = Array.map Svc.await ss in
        Alcotest.check Util.seq "all borrow the anchor value" [| 0; 0; 0; 0 |]
          values;
        let st = Svc.stats svc in
        Alcotest.(check int) "one pair eliminated" 1 st.Svc.total_eliminated_pairs;
        Alcotest.(check int) "one batch" 1 st.Svc.total_batches;
        Alcotest.(check int) "four ops served" 4 st.Svc.total_ops;
        Alcotest.(check int) "net zero" 0 (S.sum (RT.exit_distribution (Svc.runtime svc)));
        V.enforce V.Strict (V.quiescent_runtime (Svc.runtime svc)));
    tc "unbalanced batch eliminates min(incs, decs)" (fun () ->
        let svc = Svc.create ~metrics:true (net48 ()) in
        let ss = Array.init 4 (fun _ -> Svc.session ~wire:1 svc) in
        let ops = [| Svc.Inc; Svc.Inc; Svc.Inc; Svc.Dec |] in
        Array.iteri (fun i op -> ignore (Svc.submit ss.(i) op)) ops;
        let _values = Array.map Svc.await ss in
        let st = Svc.stats svc in
        Alcotest.(check int) "one pair eliminated" 1 st.Svc.total_eliminated_pairs;
        Alcotest.(check int) "net two" 2 (S.sum (RT.exit_distribution (Svc.runtime svc)));
        V.enforce V.Strict (V.quiescent_runtime (Svc.runtime svc)));
    tc "elim:false sends everything through the network" (fun () ->
        let svc = Svc.create ~metrics:true ~elim:false (net48 ()) in
        let ss = Array.init 4 (fun _ -> Svc.session ~wire:0 svc) in
        let ops = [| Svc.Dec; Svc.Dec; Svc.Inc; Svc.Inc |] in
        Array.iteri (fun i op -> ignore (Svc.submit ss.(i) op)) ops;
        ignore (Array.map Svc.await ss);
        let st = Svc.stats svc in
        Alcotest.(check int) "nothing eliminated" 0 st.Svc.total_eliminated_pairs;
        (* All four ops really traversed: 2 tokens + 2 antitokens. *)
        let m = Option.get (RT.metrics (Svc.runtime svc)) in
        let snap = Cn_runtime.Metrics.snapshot m in
        Alcotest.(check int) "tokens" 2 snap.Cn_runtime.Metrics.tokens;
        Alcotest.(check int) "antitokens" 2 snap.Cn_runtime.Metrics.antitokens;
        V.enforce V.Strict (V.quiescent_runtime (Svc.runtime svc)));
    tc "eliminated ops never reach the network" (fun () ->
        let svc = Svc.create ~metrics:true (net48 ()) in
        let ss = Array.init 4 (fun _ -> Svc.session ~wire:0 svc) in
        let ops = [| Svc.Dec; Svc.Dec; Svc.Inc; Svc.Inc |] in
        Array.iteri (fun i op -> ignore (Svc.submit ss.(i) op)) ops;
        ignore (Array.map Svc.await ss);
        let m = Option.get (RT.metrics (Svc.runtime svc)) in
        let snap = Cn_runtime.Metrics.snapshot m in
        (* Only the anchor pair traversed. *)
        Alcotest.(check int) "tokens" 1 snap.Cn_runtime.Metrics.tokens;
        Alcotest.(check int) "antitokens" 1 snap.Cn_runtime.Metrics.antitokens);
    Util.raises_invalid "double submit on one session" (fun () ->
        let svc = Svc.create (net48 ()) in
        let s = Svc.session svc in
        ignore (Svc.submit s Svc.Inc);
        ignore (Svc.submit s Svc.Inc));
    Util.raises_invalid "await without submit" (fun () ->
        ignore (Svc.await (Svc.session (Svc.create (net48 ())))));
  ]

let backpressure =
  [
    tc "full lane rejects with Overloaded and recovers" (fun () ->
        let svc = Svc.create ~max_batch:8 ~queue:2 (net48 ()) in
        let s1 = Svc.session ~wire:0 svc
        and s2 = Svc.session ~wire:0 svc
        and s3 = Svc.session ~wire:0 svc in
        Alcotest.(check bool) "s1 parked" true (Svc.submit s1 Svc.Inc = Ok ());
        Alcotest.(check bool) "s2 parked" true (Svc.submit s2 Svc.Inc = Ok ());
        (match Svc.submit s3 Svc.Inc with
        | Error Svc.Overloaded -> ()
        | Ok () | Error Svc.Closed -> Alcotest.fail "expected Overloaded");
        let st = Svc.stats svc in
        Alcotest.(check int) "rejection counted" 1 st.Svc.total_rejected;
        (* Completing the parked ops frees the lane. *)
        let v1 = Svc.await s1 and v2 = Svc.await s2 in
        Alcotest.(check bool) "distinct values" true (v1 <> v2);
        Alcotest.(check bool) "s3 retries fine" true (Svc.submit s3 Svc.Inc = Ok ());
        Alcotest.(check int) "third value" 2 (Svc.await s3);
        ignore (Svc.drain svc));
    tc "rejections appear in the JSON report" (fun () ->
        let svc = Svc.create ~queue:1 (net48 ()) in
        let s1 = Svc.session ~wire:0 svc and s2 = Svc.session ~wire:0 svc in
        ignore (Svc.submit s1 Svc.Inc);
        ignore (Svc.submit s2 Svc.Inc);
        ignore (Svc.await s1);
        let json = Svc.stats_json svc in
        let contains hay needle =
          let lh = String.length hay and ln = String.length needle in
          let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "rejected field" true (contains json "\"rejected\": 1");
        Alcotest.(check bool) "elimination_rate field" true
          (contains json "\"elimination_rate\""));
  ]

(* The pipelined drain (create ~pipeline:true) must be observationally
   the same service: same values, same elimination accounting, same
   quiescent distribution — only the walk the combiner uses differs. *)
let pipelined =
  [
    tc "pipelined service hands out 0.. sequentially" (fun () ->
        let svc = Svc.create ~pipeline:true (net48 ()) in
        let s = Svc.session svc in
        for expect = 0 to 19 do
          Alcotest.(check int)
            (Printf.sprintf "value %d" expect)
            expect
            (check_ok "inc" (Svc.increment s))
        done);
    tc "pipelined combined batch keeps elimination semantics" (fun () ->
        let svc = Svc.create ~pipeline:true ~metrics:true (net48 ()) in
        let ss = Array.init 4 (fun _ -> Svc.session ~wire:0 svc) in
        let ops = [| Svc.Dec; Svc.Dec; Svc.Inc; Svc.Inc |] in
        Array.iteri (fun i op -> ignore (Svc.submit ss.(i) op)) ops;
        let values = Array.map Svc.await ss in
        Alcotest.check Util.seq "all borrow the anchor value" [| 0; 0; 0; 0 |] values;
        let st = Svc.stats svc in
        Alcotest.(check int) "one pair eliminated" 1 st.Svc.total_eliminated_pairs;
        Alcotest.(check int) "net zero" 0 (S.sum (RT.exit_distribution (Svc.runtime svc)));
        V.enforce V.Strict (V.quiescent_runtime (Svc.runtime svc)));
    tc "a pure-decrement batch reclaims issued values (batched antitokens)" (fun () ->
        (* Fill the counter, then park 3 decrements on one lane and
           combine them in a single batch: the drain runs the batched
           antitoken walk, and the reclaimed values are 3 of the issued
           ones with the distribution still a step afterwards. *)
        let svc = Svc.create ~elim:false (net48 ()) in
        let s = Svc.session ~wire:0 svc in
        for _ = 1 to 8 do
          ignore (check_ok "fill" (Svc.increment s))
        done;
        let ds = Array.init 3 (fun _ -> Svc.session ~wire:0 svc) in
        Array.iter (fun d -> ignore (Svc.submit d Svc.Dec)) ds;
        let reclaimed = Array.map Svc.await ds in
        Array.iter
          (fun v -> Alcotest.(check bool) "reclaimed an issued value" true (v >= 0 && v < 8))
          reclaimed;
        Alcotest.(check int) "net five" 5 (S.sum (RT.exit_distribution (Svc.runtime svc)));
        V.enforce V.Strict (V.quiescent_runtime (Svc.runtime svc)));
    tc "pipelined workload: concurrent mixed traffic drains clean" (fun () ->
        let svc = Svc.create ~pipeline:true ~metrics:true (net48 ()) in
        let spec =
          { W.default with W.domains = 4; ops_per_domain = 300; dec_ratio = 0.5 }
        in
        let st = W.run svc spec in
        Alcotest.(check int) "nothing lost" (4 * 300) (st.W.completed + st.W.rejected);
        let report = Svc.drain svc in
        Alcotest.(check bool) "strict drain" true (V.passed report);
        Alcotest.(check int) "net flow matches accounting"
          (st.W.increments - st.W.decrements)
          (S.sum (RT.exit_distribution (Svc.runtime svc))));
  ]

let concurrent =
  [
    tc "range contract through the service (4 domains)" (fun () ->
        let svc = Svc.create ~metrics:true (net816 ()) in
        let counter = Svc.shared_counter ~sessions:8 svc in
        let values =
          H.run_collect ~validate:V.Strict
            ~make:(fun () -> counter)
            ~domains:4 ~ops_per_domain:200 ()
        in
        Alcotest.(check bool) "range" true (H.values_are_a_range values);
        let report = Svc.drain svc in
        Alcotest.(check bool) "quiescent after drain" true (V.passed report));
    tc "concurrent mixed inc/dec drains clean under Strict" (fun () ->
        let svc = Svc.create ~metrics:true (net48 ()) in
        (* Two domains per wire so inc/dec traffic can pair off. *)
        let ss = Array.init 4 (fun pid -> Svc.session ~wire:(pid mod 2) svc) in
        let ops = 200 in
        let body pid () =
          let s = ss.(pid) in
          for k = 0 to ops - 1 do
            let r = if k land 1 = 0 then Svc.increment s else Svc.decrement s in
            ignore (check_ok "op" r)
          done
        in
        let handles = Array.init 4 (fun pid -> Domain.spawn (body pid)) in
        Array.iter Domain.join handles;
        let report = Svc.drain svc in
        Alcotest.(check bool) "strict drain" true (V.passed report);
        let st = Svc.stats svc in
        Alcotest.(check int) "every op served exactly once" (4 * ops)
          st.Svc.total_ops;
        Alcotest.(check int) "net zero" 0
          (S.sum (RT.exit_distribution (Svc.runtime svc))));
    tc "workload: closed loop, mixed, zipf-skewed" (fun () ->
        let svc = Svc.create ~metrics:true (net48 ()) in
        let spec =
          {
            W.default with
            W.domains = 4;
            ops_per_domain = 300;
            sessions_per_domain = 2;
            dec_ratio = 0.5;
            skew = W.Zipf 1.2;
          }
        in
        let st = W.run svc spec in
        Alcotest.(check int) "nothing lost" (4 * 300)
          (st.W.completed + st.W.rejected);
        let report = Svc.drain svc in
        Alcotest.(check bool) "strict drain" true (V.passed report);
        Alcotest.(check int) "net flow matches workload accounting"
          (st.W.increments - st.W.decrements)
          (S.sum (RT.exit_distribution (Svc.runtime svc))));
    tc "workload: bursty arrivals complete" (fun () ->
        let svc = Svc.create (net48 ()) in
        let spec =
          {
            W.default with
            W.domains = 2;
            ops_per_domain = 64;
            arrival = W.Bursty { burst = 16; pause = 0.0005 };
          }
        in
        let st = W.run svc spec in
        Alcotest.(check int) "all completed or shed" 128
          (st.W.completed + st.W.rejected);
        ignore (Svc.drain svc));
  ]

let races =
  (* Multi-domain stress over the two protocol paths the deterministic
     checker (Cn_check, `make check-races`) verifies exhaustively at
     model scale: drain/shutdown lifecycle racing live traffic, and
     admission racing the quiescence validation point. *)
  [
    tc "drain races live increments across 4 domains (strict)" (fun () ->
        let svc = Svc.create (net48 ()) in
        let ok = Array.make 4 0 in
        let stopping = Atomic.make false in
        let body pid () =
          let s = Svc.session svc in
          try
            for _ = 1 to 400 do
              match Svc.increment s with
              | Ok _ -> ok.(pid) <- ok.(pid) + 1
              | Error Svc.Overloaded -> Domain.cpu_relax ()
              | Error Svc.Closed ->
                  (* Mid-drain rejection: retry unless shutting down. *)
                  if Atomic.get stopping then raise Exit else Domain.cpu_relax ()
            done
          with Exit -> ()
        in
        let hs = Array.init 4 (fun pid -> Domain.spawn (body pid)) in
        for _ = 1 to 3 do
          Alcotest.(check bool) "interleaved drain strict" true
            (V.passed (Svc.drain svc))
        done;
        Atomic.set stopping true;
        Alcotest.(check bool) "shutdown strict" true (V.passed (Svc.shutdown svc));
        Array.iter Domain.join hs;
        Alcotest.(check bool) "stopped terminal" true
          (Svc.lifecycle svc = `Stopped);
        (* No admitted op traversed past the shutdown's validation:
           tokens out of the network = successful increments. *)
        Alcotest.(check int) "conservation"
          (Array.fold_left ( + ) 0 ok)
          (S.sum (RT.exit_distribution (Svc.runtime svc))));
    tc "concurrent drains and shutdowns: stopped is terminal" (fun () ->
        let svc = Svc.create (net48 ()) in
        let s = Svc.session svc in
        ignore (check_ok "seed" (Svc.increment s));
        let reports = Array.make 6 None in
        let body i () =
          let r = if i land 1 = 0 then Svc.drain svc else Svc.shutdown svc in
          reports.(i) <- Some r
        in
        let hs = Array.init 6 (fun i -> Domain.spawn (body i)) in
        Array.iter Domain.join hs;
        Alcotest.(check bool) "stopped" true (Svc.lifecycle svc = `Stopped);
        Array.iteri
          (fun i -> function
            | Some r ->
                Alcotest.(check bool)
                  (Printf.sprintf "caller %d got a quiescent report" i)
                  true (V.passed r)
            | None -> Alcotest.failf "caller %d has no report" i)
          reports;
        match Svc.increment s with
        | Error Svc.Closed -> ()
        | Ok _ | Error Svc.Overloaded -> Alcotest.fail "expected Closed");
    tc "shared_counter grows its session pool past the preallocation"
      (fun () ->
        (* 6 process ids against a 2-session pool: the pool must grow
           rather than alias sessions (aliased sessions corrupt the
           single-owner cell protocol and break the range contract). *)
        let svc = Svc.create (net816 ()) in
        let counter = Svc.shared_counter ~sessions:2 svc in
        let values =
          H.run_collect ~validate:V.Strict
            ~make:(fun () -> counter)
            ~domains:6 ~ops_per_domain:50 ()
        in
        Alcotest.(check bool) "range, no aliasing" true
          (H.values_are_a_range values);
        Alcotest.(check bool) "strict drain" true (V.passed (Svc.drain svc)));
    tc "pool growth races 8 domains from a 1-session pool" (fun () ->
        (* Regression for the growth lock: 8 domains all miss the
           1-session pool at once and race the double-read miss path;
           any lost or aliased session breaks the range contract. *)
        let svc = Svc.create (net816 ()) in
        let counter = Svc.shared_counter ~sessions:1 svc in
        let values =
          H.run_collect ~validate:V.Strict
            ~make:(fun () -> counter)
            ~domains:8 ~ops_per_domain:100 ()
        in
        Alcotest.(check bool) "range, no aliasing under racing growth" true
          (H.values_are_a_range values);
        Alcotest.(check bool) "strict drain" true (V.passed (Svc.drain svc)));
  ]

let workload_spec =
  [
    Util.raises_invalid "workload rejects dec_ratio > 1" (fun () ->
        ignore
          (W.run (Svc.create (net48 ())) { W.default with W.dec_ratio = 1.5 }));
    Util.raises_invalid "workload rejects zipf alpha 0" (fun () ->
        ignore
          (W.run (Svc.create (net48 ())) { W.default with W.skew = W.Zipf 0. }));
    Util.raises_invalid "workload rejects burst 0" (fun () ->
        ignore
          (W.run
             (Svc.create (net48 ()))
             { W.default with W.arrival = W.Bursty { burst = 0; pause = 0. } }));
    Util.raises_invalid "workload rejects domains 0" (fun () ->
        ignore (W.run (Svc.create (net48 ())) { W.default with W.domains = 0 }));
    Util.raises_invalid "workload rejects negative think time" (fun () ->
        ignore
          (W.run
             (Svc.create (net48 ()))
             { W.default with W.arrival = W.Closed (-1.) }));
    tc "achieved dec ratio converges on the spec ratio" (fun () ->
        (* Regression for the dec-ratio drift: a drawn decrement that
           landed on a zero balance used to be silently replaced by an
           increment, biasing the emitted mix well below the spec on
           bursty-balance runs.  Banked-decrement accounting pays every
           draw, so long runs converge. *)
        let svc = Svc.create (net48 ()) in
        let spec =
          { W.default with W.domains = 2; ops_per_domain = 10_000; dec_ratio = 0.3 }
        in
        let st = W.run svc spec in
        Alcotest.(check bool)
          (Printf.sprintf "achieved %.4f within 0.02 of 0.3"
             st.W.achieved_dec_ratio)
          true
          (Float.abs (st.W.achieved_dec_ratio -. 0.3) <= 0.02);
        ignore (Svc.drain svc));
    tc "dec ratios above one half cap near one half" (fun () ->
        (* Prefix non-negativity makes every decrement consume a prior
           increment, so 0.5 is the inherent ceiling, not drift. *)
        let svc = Svc.create (net48 ()) in
        let spec =
          { W.default with W.domains = 2; ops_per_domain = 10_000; dec_ratio = 0.9 }
        in
        let st = W.run svc spec in
        Alcotest.(check bool)
          (Printf.sprintf "achieved %.4f in [0.45, 0.5]" st.W.achieved_dec_ratio)
          true
          (st.W.achieved_dec_ratio >= 0.45 && st.W.achieved_dec_ratio <= 0.5);
        ignore (Svc.drain svc));
    Util.qtest ~count:20 "achieved dec ratio tracks any spec ratio below 0.45"
      QCheck2.Gen.(float_range 0. 0.45)
      (fun ratio ->
        let svc = Svc.create (net48 ()) in
        let spec =
          {
            W.default with
            W.domains = 1;
            ops_per_domain = 4_000;
            dec_ratio = ratio;
          }
        in
        let st = W.run svc spec in
        ignore (Svc.drain svc);
        (* Binomial noise at n = 4000 is sigma ~0.008; 0.05 is ~6
           sigma plus the bounded end-of-run banked remainder. *)
        Float.abs (st.W.achieved_dec_ratio -. ratio) <= 0.05);
  ]

let suite =
  [
    ("service.sessions", sessions);
    ("service.sequential", sequential);
    ("service.elimination", elimination);
    ("service.pipelined", pipelined);
    ("service.backpressure", backpressure);
    ("service.concurrent", concurrent);
    ("service.races", races);
    ("service.workload", workload_spec);
  ]
