Deterministic experiment tables, pinned as regression goldens (E5 and
micro are timing-dependent and excluded).

  $ cn-bench e8
  
  === E8  Fig. 1 reproduction: (4,6)-balancer and C(4,8) token values ===
  (4,6)-balancer, 11 tokens in -> per-wire exits [2; 2; 2; 2; 2; 1]
  C(4,8): w=4 t=8 depth=3 size=8
  17 sequential tokens (entry wire -> exit wire = counter value):
    token  0: in 0 -> out 0, value  0
    token  1: in 1 -> out 1, value  1
    token  2: in 2 -> out 2, value  2
    token  3: in 3 -> out 3, value  3
    token  4: in 0 -> out 4, value  4
    token  5: in 1 -> out 5, value  5
    token  6: in 2 -> out 6, value  6
    token  7: in 3 -> out 7, value  7
    token  8: in 0 -> out 0, value  8
    token  9: in 1 -> out 1, value  9
    token 10: in 2 -> out 2, value 10
    token 11: in 3 -> out 3, value 11
    token 12: in 0 -> out 4, value 12
    token 13: in 1 -> out 5, value 13
    token 14: in 2 -> out 6, value 14
    token 15: in 3 -> out 7, value 15
    token 16: in 0 -> out 0, value 16
  exit distribution [3; 2; 2; 2; 2; 2; 2; 2] (step: true)

  $ cn-bench e14
  
  === E14  exact cont(B,n,m) by exhaustive schedule search vs heuristic adversaries (Sect 1.2) ===
  network        n   m | exact max exact min | heuristic max/token
  C(2,2)         3   6 |         9         6 |         9         4
  C(2,2)         4   8 |        18        12 |        18         6
  C(4,4)         3   6 |         8         1 |         6         2
  C(4,8)         3   6 |         7         1 |         6         2
  L(4)           4   8 |         6         4 |         6         2
  difftree-4     3   6 |        10         5 |         8         3
  the widened C(4,8) already beats C(4,4) in the EXACT worst case (7 vs 8);
  heuristics lower-bound the exact adversary (and match it on single balancers).

  $ cn-bench e2 | head -n 8
  
  === E2  depth(M(t,delta)) = lg delta (Lemma 3.1; Figs 5,6) ===
       t  delta |  measured  lg delta |   size
       8      2 |         1         1 |      4
       8      4 |         2         2 |      8
      16      2 |         1         1 |      8
      16      4 |         2         2 |     16
      16      8 |         3         3 |     24
