(* Tests for Cn_core.Merging: the difference merging network M(t, δ) of
   Section 3 (Lemmas 3.1-3.3). *)

module T = Cn_network.Topology
module E = Cn_network.Eval
module S = Cn_sequence.Sequence
module M = Cn_core.Merging

let tc name f = Alcotest.test_case name `Quick f

let validity =
  [
    tc "valid pairs" (fun () ->
        List.iter
          (fun (t, delta) ->
            Alcotest.(check bool) (Printf.sprintf "t=%d d=%d" t delta) true
              (M.valid ~t ~delta))
          [ (4, 2); (8, 2); (8, 4); (12, 2); (16, 8); (24, 4); (64, 32) ]);
    tc "invalid pairs" (fun () ->
        List.iter
          (fun (t, delta) ->
            Alcotest.(check bool) (Printf.sprintf "t=%d d=%d" t delta) false
              (M.valid ~t ~delta))
          [ (4, 4); (8, 3); (8, 8); (6, 2); (10, 4); (8, 1); (0, 2); (8, 0) ]);
    Util.raises_invalid "network rejects invalid" (fun () -> M.network ~t:8 ~delta:8);
    Util.raises_invalid "network rejects odd delta" (fun () -> M.network ~t:12 ~delta:3);
  ]

let structure =
  [
    tc "lemma 3.1: depth = lg delta" (fun () ->
        List.iter
          (fun (t, delta) ->
            Alcotest.(check int)
              (Printf.sprintf "depth M(%d,%d)" t delta)
              (M.depth_formula ~delta)
              (T.depth (M.network ~t ~delta)))
          [ (4, 2); (8, 2); (8, 4); (16, 4); (16, 8); (32, 4); (64, 16); (48, 8) ]);
    tc "regular of width t" (fun () ->
        let net = M.network ~t:16 ~delta:4 in
        Alcotest.(check bool) "regular" true (T.is_regular net);
        Alcotest.(check int) "w" 16 (T.input_width net);
        Alcotest.(check int) "t" 16 (T.output_width net));
    tc "M(t,2) is a single layer of t/2 balancers" (fun () ->
        let net = M.network ~t:12 ~delta:2 in
        Alcotest.(check int) "size" 6 (T.size net);
        Alcotest.(check int) "depth" 1 (T.depth net));
    tc "size is (t/2) lg delta" (fun () ->
        List.iter
          (fun (t, delta) ->
            Alcotest.(check int)
              (Printf.sprintf "size M(%d,%d)" t delta)
              (t / 2 * M.depth_formula ~delta)
              (T.size (M.network ~t ~delta)))
          [ (8, 4); (16, 8); (32, 4) ]);
  ]

(* Feed M(t, δ) two step sequences with 0 <= Σx - Σy <= δ and check the
   output is step (the merging contract). *)
let merge_contract_case ~t ~delta ~sx ~sy () =
  let net = M.network ~t ~delta in
  let x = S.make_step ~total:sx ~width:(t / 2) in
  let y = S.make_step ~total:sy ~width:(t / 2) in
  let out = E.quiescent net (S.concat x y) in
  Alcotest.(check int) "sum" (sx + sy) (S.sum out);
  Util.check_step ~msg:(Printf.sprintf "M(%d,%d) Σx=%d Σy=%d" t delta sx sy) out

let contract =
  [
    tc "base layer merges (exhaustive small)" (fun () ->
        for sy = 0 to 12 do
          for d = 0 to 2 do
            merge_contract_case ~t:8 ~delta:2 ~sx:(sy + d) ~sy ()
          done
        done);
    tc "M(8,4) merges" (fun () ->
        for sy = 0 to 10 do
          for d = 0 to 4 do
            merge_contract_case ~t:8 ~delta:4 ~sx:(sy + d) ~sy ()
          done
        done);
    tc "M(16,4) merges (Fig. 6 right)" (fun () ->
        for sy = 0 to 8 do
          for d = 0 to 4 do
            merge_contract_case ~t:16 ~delta:4 ~sx:(sy + d) ~sy ()
          done
        done);
    tc "M(16,8) merges" (fun () ->
        for sy = 0 to 6 do
          for d = 0 to 8 do
            merge_contract_case ~t:16 ~delta:8 ~sx:(sy + d) ~sy ()
          done
        done);
    tc "irregular width M(24,4) merges" (fun () ->
        for sy = 0 to 5 do
          for d = 0 to 4 do
            merge_contract_case ~t:24 ~delta:4 ~sx:(sy + d) ~sy ()
          done
        done);
    Util.qtest ~count:300 "merging contract (random)"
      QCheck2.Gen.(
        bind
          (oneofl [ (8, 2); (8, 4); (16, 2); (16, 4); (16, 8); (32, 8); (24, 4); (48, 8) ])
          (fun (t, delta) ->
            bind (int_range 0 300) (fun sy ->
                map (fun d -> (t, delta, sy + d, sy)) (int_range 0 delta))))
      (fun (t, delta, sx, sy) ->
        let net = M.network ~t ~delta in
        let x = S.make_step ~total:sx ~width:(t / 2) in
        let y = S.make_step ~total:sy ~width:(t / 2) in
        S.is_step (E.quiescent net (S.concat x y)));
  ]

(* Beyond the contract the output need not be step, but sums are always
   preserved. *)
let beyond_contract =
  [
    tc "sum preserved on arbitrary inputs" (fun () ->
        let net = M.network ~t:16 ~delta:4 in
        Util.for_random_inputs ~trials:100 net (fun ~trial:_ ~x ~y ->
            Alcotest.(check int) "sum" (S.sum x) (S.sum y)));
    tc "contract violation can break step" (fun () ->
        (* Witness that the delta bound is tight enough to matter: with
           Σx - Σy far above δ the output fails the step property. *)
        let net = M.network ~t:8 ~delta:2 in
        let x = S.make_step ~total:5 ~width:4 in
        let y = S.make_step ~total:0 ~width:4 in
        Alcotest.(check bool) "not step" false (S.is_step (E.quiescent net (S.concat x y))));
  ]

(* Periodic merger stages (Cn_core.Merger).  Balancers only route
   tokens, so on valid step-input pairs the difference merger and every
   periodic strategy produce the same output *multiset* — even the pk
   strategies that scramble the order.  The step property itself is
   what separates them: brute force certifies periodic3 up to t = 16
   and refutes the pk strategies at every t >= 8. *)

module Mg = Cn_core.Merger
module V = Cn_core.Verify

let multiset a = List.sort compare (Array.to_list a)

let periodic =
  [
    Util.qtest ~count:300 "difference and periodic mergers agree as output multisets"
      QCheck2.Gen.(
        bind
          (oneofl [ (4, 2); (8, 2); (8, 4); (16, 2); (16, 4); (16, 8) ])
          (fun (t, delta) ->
            bind
              (oneofl [ Mg.Periodic3; Mg.Periodic_k 2; Mg.Periodic_k 6 ])
              (fun strategy ->
                bind (int_range 0 100) (fun sy ->
                    map (fun d -> (t, delta, strategy, sy + d, sy)) (int_range 0 delta)))))
      (fun (t, delta, strategy, sx, sy) ->
        let x = S.make_step ~total:sx ~width:(t / 2) in
        let y = S.make_step ~total:sy ~width:(t / 2) in
        let input = S.concat x y in
        multiset (E.quiescent (M.network ~t ~delta) input)
        = multiset (E.quiescent (Mg.network ~strategy ~t ~delta) input));
    tc "periodic3 satisfies the merging contract at t <= 16 (brute force)" (fun () ->
        List.iter
          (fun t ->
            let delta = t / 2 in
            let net = Mg.network ~strategy:Mg.Periodic3 ~t ~delta in
            match V.merging ~delta ~max_half_sum:(2 * t) net with
            | V.Verified n ->
                Alcotest.(check bool) (Printf.sprintf "t=%d (%d loads)" t n) true (n > 0)
            | V.Counterexample cex ->
                Alcotest.failf "periodic3 t=%d refuted on %s" t (S.to_string cex))
          [ 4; 8; 16 ]);
    tc "pk strategies merge only at t = 4 (clamped period)" (fun () ->
        List.iter
          (fun strategy ->
            match V.merging ~delta:2 ~max_half_sum:8 (Mg.network ~strategy ~t:4 ~delta:2) with
            | V.Verified _ -> ()
            | V.Counterexample cex ->
                Alcotest.failf "%s t=4 refuted on %s" (Mg.strategy_name strategy)
                  (S.to_string cex))
          [ Mg.Periodic_k 2; Mg.Periodic_k 6 ]);
    tc "pk strategies are refuted at t >= 8 (brute force, replayed)" (fun () ->
        List.iter
          (fun (strategy, t) ->
            let delta = t / 2 in
            let net = Mg.network ~strategy ~t ~delta in
            match V.merging ~delta ~max_half_sum:(2 * t) net with
            | V.Counterexample cex ->
                (* The counterexample must replay: a genuinely non-step
                   output, not a verifier artifact. *)
                Alcotest.(check bool)
                  (Printf.sprintf "%s t=%d counterexample replays" (Mg.strategy_name strategy) t)
                  false
                  (S.is_step (E.quiescent net cex))
            | V.Verified n ->
                Alcotest.failf "%s t=%d unexpectedly verified (%d loads)"
                  (Mg.strategy_name strategy) t n)
          [ (Mg.Periodic_k 2, 8); (Mg.Periodic_k 2, 16); (Mg.Periodic_k 6, 8); (Mg.Periodic_k 6, 16) ]);
  ]

let suite =
  [
    ("merging.validity", validity);
    ("merging.structure", structure);
    ("merging.contract", contract);
    ("merging.beyond", beyond_contract);
    ("merging.periodic", periodic);
  ]
