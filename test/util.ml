(* Shared helpers for the test suites. *)

module S = Cn_sequence.Sequence
module T = Cn_network.Topology
module E = Cn_network.Eval

let check_step ?(msg = "output is step") y = Alcotest.(check bool) msg true (S.is_step y)

let seq = Alcotest.testable S.pp S.equal

let random_input ?(max_tokens = 50) rng w =
  Array.init w (fun _ -> Random.State.int rng (max_tokens + 1))

(* Run [trials] random quiescent evaluations and assert a predicate on
   (input, output). *)
let for_random_inputs ?(trials = 100) ?(seed = 0) ?max_tokens net assert_io =
  let rng = Random.State.make [| seed |] in
  let w = T.input_width net in
  for i = 1 to trials do
    let x = random_input ?max_tokens rng w in
    let y = E.quiescent net x in
    assert_io ~trial:i ~x ~y
  done

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let raises_invalid name f =
  Alcotest.test_case name `Quick (fun () ->
      match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "%s: expected Invalid_argument" name)
