(* Cross-module consistency: the four execution engines (closed-form
   evaluator, token-level trace, stall-model simulator, multicore
   runtime) must produce identical quiescent results on identical loads,
   across the whole parameter grid. *)

module T = Cn_network.Topology
module E = Cn_network.Eval
module S = Cn_sequence.Sequence
module SM = Cn_sim.Stall_model

let tc name f = Alcotest.test_case name `Quick f

(* All valid (w, t) pairs with w <= 16 and t <= 64. *)
let grid =
  List.concat_map
    (fun w -> List.filter_map (fun p -> if p * w <= 64 then Some (w, p * w) else None) [ 1; 2; 3; 4 ])
    [ 2; 4; 8; 16 ]

let gen_wt = QCheck2.Gen.oneofl grid

let engines_agree =
  [
    Util.qtest ~count:120 "evaluator = trace = runtime on C(w,t)"
      QCheck2.Gen.(
        bind gen_wt (fun (w, t) ->
            map (fun seed -> (w, t, seed)) (int_range 0 10000)))
      (fun (w, t, seed) ->
        let net = Cn_core.Counting.network ~w ~t in
        let rng = Random.State.make [| seed |] in
        let x = Array.init w (fun _ -> Random.State.int rng 20) in
        let reference = E.quiescent net x in
        let traced = E.trace ~seed net x in
        let rt = Cn_runtime.Network_runtime.compile net in
        Array.iteri
          (fun wire count ->
            for _ = 1 to count do
              ignore (Cn_runtime.Network_runtime.traverse rt ~wire)
            done)
          x;
        S.equal reference traced
        && S.equal reference (Cn_runtime.Network_runtime.exit_distribution rt));
    Util.qtest ~count:60 "simulator reaches the same quiescent distribution"
      QCheck2.Gen.(
        bind gen_wt (fun (w, t) -> map (fun seed -> (w, t, seed)) (int_range 0 1000)))
      (fun (w, t, seed) ->
        (* The sim injects tokens on wire (pid mod w); mirror that load in
           the evaluator. *)
        let net = Cn_core.Counting.network ~w ~t in
        let n = 1 + (seed mod 13) in
        let m = 5 * n in
        let s = SM.create net ~concurrency:n ~tokens:m in
        Cn_sim.Scheduler.run s (Cn_sim.Scheduler.Random seed);
        let x = Array.make w 0 in
        for p = 0 to n - 1 do
          let share = (m / n) + (if p < m mod n then 1 else 0) in
          x.(p mod w) <- x.(p mod w) + share
        done;
        S.equal (E.quiescent net x) (SM.output_counts s));
    Util.qtest ~count:100 "counting property across the full grid"
      QCheck2.Gen.(
        bind gen_wt (fun (w, t) -> map (fun seed -> (w, t, seed)) (int_range 0 10000)))
      (fun (w, t, seed) ->
        let net = Cn_core.Counting.network ~w ~t in
        let rng = Random.State.make [| seed |] in
        let x = Array.init w (fun _ -> Random.State.int rng 40) in
        S.is_step (E.quiescent net x));
    Util.qtest ~count:60 "antitoken nets across the grid"
      QCheck2.Gen.(
        bind gen_wt (fun (w, t) -> map (fun seed -> (w, t, seed)) (int_range 0 10000)))
      (fun (w, t, seed) ->
        let net = Cn_core.Counting.network ~w ~t in
        let rng = Random.State.make [| seed |] in
        let tokens = Array.init w (fun _ -> Random.State.int rng 10) in
        let antitokens = Array.init w (fun _ -> Random.State.int rng 10) in
        let nets = Array.init w (fun i -> tokens.(i) - antitokens.(i)) in
        S.equal
          (E.trace_signed ~seed net ~tokens ~antitokens)
          (E.quiescent_net net nets));
  ]

let large_scale =
  [
    tc "C(64,64) counts (smoke)" (fun () ->
        let net = Cn_core.Counting.network ~w:64 ~t:64 in
        Util.for_random_inputs ~trials:25 net (fun ~trial:_ ~x ~y ->
            Alcotest.(check int) "sum" (S.sum x) (S.sum y);
            Util.check_step y));
    tc "C(64,128) counts (smoke)" (fun () ->
        let net = Cn_core.Counting.network ~w:64 ~t:128 in
        Util.for_random_inputs ~trials:15 net (fun ~trial:_ ~x:_ ~y -> Util.check_step y));
    tc "C(128,128) structural sanity" (fun () ->
        let net = Cn_core.Counting.network ~w:128 ~t:128 in
        Alcotest.(check int) "depth" 28 (T.depth net);
        Alcotest.(check int) "size" (Cn_core.Counting.size_formula ~w:128 ~t:128) (T.size net);
        Util.check_step (E.quiescent net (Array.init 128 (fun i -> (i * 13) mod 29))));
    tc "C(256,512) builds and evaluates" (fun () ->
        let net = Cn_core.Counting.network ~w:256 ~t:512 in
        Alcotest.(check int) "depth" 36 (T.depth net);
        Util.check_step (E.quiescent net (Array.init 256 (fun i -> (i * 7) mod 23))));
    tc "deep bitonic matches C(w,w) contention class on big run" (fun () ->
        (* One heavier sim run pinning the E4 headline at w=16, n=128. *)
        let bitonic = Cn_baselines.Bitonic.network 16 in
        let wide = Cn_core.Counting.network ~w:16 ~t:64 in
        let strategies = [ Cn_sim.Scheduler.Random 7 ] in
        let rb = Cn_sim.Contention.worst ~strategies bitonic ~n:128 ~m:2560 in
        let rw = Cn_sim.Contention.worst ~strategies wide ~n:128 ~m:2560 in
        Alcotest.(check bool) "wide at most half of bitonic" true
          (rw.Cn_sim.Contention.per_token *. 1.8 < rb.Cn_sim.Contention.per_token));
  ]

let suite = [ ("grid.engines", engines_agree); ("grid.scale", large_scale) ]
