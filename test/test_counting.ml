(* Tests for Cn_core.Counting: C(w, t), Theorems 4.1 and 4.2, plus the
   figure networks of the paper. *)

module T = Cn_network.Topology
module E = Cn_network.Eval
module S = Cn_sequence.Sequence
module C = Cn_core.Counting

let tc name f = Alcotest.test_case name `Quick f

let validity =
  [
    tc "valid pairs" (fun () ->
        List.iter
          (fun (w, t) ->
            Alcotest.(check bool) (Printf.sprintf "w=%d t=%d" w t) true (C.valid ~w ~t))
          [ (2, 2); (2, 6); (4, 4); (4, 8); (8, 8); (8, 24); (16, 64); (32, 32) ]);
    tc "invalid pairs" (fun () ->
        List.iter
          (fun (w, t) ->
            Alcotest.(check bool) (Printf.sprintf "w=%d t=%d" w t) false (C.valid ~w ~t))
          [ (3, 3); (6, 6); (4, 2); (4, 6); (8, 12); (1, 1); (0, 4); (4, 0) ]);
    Util.raises_invalid "network rejects non-power-of-two w" (fun () ->
        C.network ~w:6 ~t:6);
    Util.raises_invalid "network rejects t not multiple of w" (fun () ->
        C.network ~w:4 ~t:6);
    Util.raises_invalid "wide rejects w=2" (fun () -> C.wide 2);
  ]

let depth_tests =
  [
    tc "theorem 4.1: depth = (lg2 w + lg w)/2, independent of t" (fun () ->
        List.iter
          (fun (w, t) ->
            Alcotest.(check int)
              (Printf.sprintf "depth C(%d,%d)" w t)
              (C.depth_formula ~w)
              (T.depth (C.network ~w ~t)))
          [
            (2, 2); (2, 8); (4, 4); (4, 8); (4, 16); (8, 8); (8, 16); (8, 24);
            (16, 16); (16, 32); (16, 64); (32, 32); (32, 160); (64, 64);
          ]);
    tc "depth formula values" (fun () ->
        List.iter
          (fun (w, expected) ->
            Alcotest.(check int) (Printf.sprintf "w=%d" w) expected (C.depth_formula ~w))
          [ (2, 1); (4, 3); (8, 6); (16, 10); (32, 15); (64, 21); (128, 28); (256, 36) ]);
    tc "same depth as bitonic of equal width" (fun () ->
        List.iter
          (fun w ->
            Alcotest.(check int) (Printf.sprintf "w=%d" w)
              (Cn_baselines.Bitonic.depth_formula ~w)
              (C.depth_formula ~w))
          [ 2; 4; 8; 16; 32; 64 ]);
  ]

let size_tests =
  [
    tc "size formula matches structure" (fun () ->
        List.iter
          (fun (w, t) ->
            Alcotest.(check int)
              (Printf.sprintf "size C(%d,%d)" w t)
              (C.size_formula ~w ~t)
              (T.size (C.network ~w ~t)))
          [ (2, 2); (2, 10); (4, 4); (4, 8); (8, 8); (8, 16); (16, 16); (16, 48); (32, 32) ]);
    tc "C(w,w) has same size as bitonic" (fun () ->
        (* Both are (w/2) balancers per layer times the same depth. *)
        List.iter
          (fun w ->
            Alcotest.(check int) (Printf.sprintf "w=%d" w)
              (Cn_baselines.Bitonic.size_formula ~w)
              (C.size_formula ~w ~t:w))
          [ 4; 8; 16; 32 ]);
    tc "increasing t grows only block N_c" (fun () ->
        let s1 = C.size_formula ~w:8 ~t:8 in
        let s2 = C.size_formula ~w:8 ~t:16 in
        let s3 = C.size_formula ~w:8 ~t:24 in
        Alcotest.(check bool) "monotone" true (s1 < s2 && s2 < s3);
        (* Increments are uniform: each extra w of output width adds the
           same number of merger balancers. *)
        Alcotest.(check int) "linear in t" (s2 - s1) (s3 - s2));
  ]

let step_cases ~w ~t =
  tc
    (Printf.sprintf "theorem 4.2: C(%d,%d) counts" w t)
    (fun () ->
      let net = C.network ~w ~t in
      Util.for_random_inputs ~trials:120 ~seed:(w + t) net (fun ~trial:_ ~x ~y ->
          Alcotest.(check int) "sum" (S.sum x) (S.sum y);
          Util.check_step y))

let counting_tests =
  [
    step_cases ~w:2 ~t:2;
    step_cases ~w:2 ~t:8;
    step_cases ~w:4 ~t:4;
    step_cases ~w:4 ~t:8;
    step_cases ~w:4 ~t:12;
    step_cases ~w:8 ~t:8;
    step_cases ~w:8 ~t:16;
    step_cases ~w:8 ~t:24;
    step_cases ~w:16 ~t:16;
    step_cases ~w:16 ~t:32;
    step_cases ~w:16 ~t:64;
    step_cases ~w:32 ~t:32;
    step_cases ~w:32 ~t:64;
    tc "exhaustive small loads on C(4,8)" (fun () ->
        let net = C.network ~w:4 ~t:8 in
        for a = 0 to 3 do
          for b = 0 to 3 do
            for c = 0 to 3 do
              for d = 0 to 3 do
                let y = E.quiescent net [| a; b; c; d |] in
                Util.check_step ~msg:(Printf.sprintf "%d,%d,%d,%d" a b c d) y
              done
            done
          done
        done);
    tc "single heavy wire" (fun () ->
        let net = C.network ~w:8 ~t:16 in
        let x = Array.make 8 0 in
        x.(5) <- 1000;
        Util.check_step (E.quiescent net x));
    tc "all wires equal" (fun () ->
        let net = C.network ~w:8 ~t:16 in
        let y = E.quiescent net (Array.make 8 16) in
        Alcotest.check Util.seq "uniform" (Array.make 16 8) y);
    tc "zero tokens" (fun () ->
        let net = C.network ~w:8 ~t:16 in
        Alcotest.check Util.seq "zeros" (Array.make 16 0) (E.quiescent net (Array.make 8 0)));
  ]

let convenience =
  [
    tc "regular w = C(w,w)" (fun () ->
        Alcotest.(check bool) "equal" true
          (T.equal (C.regular 8) (C.network ~w:8 ~t:8)));
    tc "wide w = C(w, w lg w)" (fun () ->
        Alcotest.(check bool) "equal" true (T.equal (C.wide 8) (C.network ~w:8 ~t:24)));
    tc "irregular balancers appear exactly when t > w" (fun () ->
        Alcotest.(check bool) "C(8,8) regular" true (T.is_regular (C.network ~w:8 ~t:8));
        Alcotest.(check bool) "C(8,16) irregular" false
          (T.is_regular (C.network ~w:8 ~t:16)));
  ]

let figures =
  [
    tc "fig 1: C(4,8) input/output widths" (fun () ->
        let net = C.network ~w:4 ~t:8 in
        Alcotest.(check int) "w" 4 (T.input_width net);
        Alcotest.(check int) "t" 8 (T.output_width net));
    tc "fig 1: 17 tokens emerge 3,2,2,2,2,2,2,2" (fun () ->
        (* Fig. 1 right shows a C(4,8) in a quiescent state with 17 tokens
           having traversed; the step distribution on 8 wires is
           3,2,2,2,2,2,2,2. *)
        let net = C.network ~w:4 ~t:8 in
        let y = E.quiescent net [| 5; 4; 4; 4 |] in
        Alcotest.check Util.seq "distribution" [| 3; 2; 2; 2; 2; 2; 2; 2 |] y);
    tc "fig 11-13: depths of the figure networks" (fun () ->
        List.iter
          (fun ((w, t), expected) ->
            Alcotest.(check int)
              (Printf.sprintf "C(%d,%d)" w t)
              expected
              (T.depth (C.network ~w ~t)))
          [ ((4, 4), 3); ((4, 8), 3); ((8, 8), 6); ((8, 16), 6) ]);
    tc "layer structure: lg w ladder layers then mergers" (fun () ->
        let profile = Cn_network.Render.layer_profile (C.network ~w:8 ~t:16) in
        Alcotest.(check int) "layers" 6 (Array.length profile);
        (* Layers 1-2: (2,2); layer 3: (2,4) transition; layers 4-6: (2,2). *)
        Alcotest.(check bool) "layer 3 irregular" true
          (Array.for_all (fun s -> s = (2, 4)) profile.(2));
        Alcotest.(check bool) "other layers regular" true
          (Array.for_all (fun s -> s = (2, 2)) profile.(0)
          && Array.for_all (fun s -> s = (2, 2)) profile.(5)));
  ]

(* Merger-substituted hybrids: C(w,t) with a periodic merger in place
   of M(t, delta).  The difference strategy must be the identity
   substitution; periodic3 hybrids still count at the widths the lint
   campaign certifies (the pk hybrids do not — that negative result
   lives in test_lint and the portfolio, not here). *)

module Mg = Cn_core.Merger
module V = Cn_core.Verify

let hybrids =
  [
    tc "difference strategy is the identity substitution" (fun () ->
        List.iter
          (fun (w, t) ->
            Alcotest.(check bool)
              (Printf.sprintf "C(%d,%d)" w t)
              true
              (T.equal (C.network ~w ~t)
                 (C.network_with ~merger:Mg.Difference ~scope:Mg.All_levels ~w ~t)))
          [ (4, 4); (8, 8); (16, 16); (4, 8) ]);
    tc "depth_formula_with matches the built topology" (fun () ->
        List.iter
          (fun (w, t, merger, scope) ->
            Alcotest.(check int)
              (Printf.sprintf "C(%d,%d)[%s/%s]" w t (Mg.strategy_name merger)
                 (Mg.scope_name scope))
              (C.depth_formula_with ~merger ~scope ~w ~t)
              (T.depth (C.network_with ~merger ~scope ~w ~t)))
          [
            (4, 4, Mg.Periodic3, Mg.Top_only);
            (8, 8, Mg.Periodic3, Mg.All_levels);
            (16, 16, Mg.Periodic3, Mg.Top_only);
            (16, 16, Mg.Periodic_k 2, Mg.All_levels);
            (32, 32, Mg.Periodic_k 6, Mg.Top_only);
            (4, 8, Mg.Periodic3, Mg.All_levels);
          ]);
    tc "periodic3 hybrid C(8,8) counts (brute force)" (fun () ->
        List.iter
          (fun scope ->
            let net = C.network_with ~merger:Mg.Periodic3 ~scope ~w:8 ~t:8 in
            match V.counting ~max_tokens:2 net with
            | V.Verified n ->
                Alcotest.(check bool)
                  (Printf.sprintf "scope %s (%d loads)" (Mg.scope_name scope) n)
                  true (n > 0)
            | V.Counterexample cex ->
                Alcotest.failf "C(8,8)[periodic3/%s] refuted on %s" (Mg.scope_name scope)
                  (S.to_string cex))
          [ Mg.Top_only; Mg.All_levels ]);
    tc "hybrids conserve tokens" (fun () ->
        List.iter
          (fun (merger, scope) ->
            let net = C.network_with ~merger ~scope ~w:16 ~t:16 in
            let load = Array.init 16 (fun i -> i mod 5) in
            Alcotest.(check int)
              (Printf.sprintf "[%s/%s]" (Mg.strategy_name merger) (Mg.scope_name scope))
              (S.sum load)
              (S.sum (E.quiescent net load)))
          [
            (Mg.Periodic3, Mg.Top_only);
            (Mg.Periodic3, Mg.All_levels);
            (Mg.Periodic_k 2, Mg.Top_only);
            (Mg.Periodic_k 6, Mg.All_levels);
          ]);
  ]

let suite =
  [
    ("counting.validity", validity);
    ("counting.depth", depth_tests);
    ("counting.size", size_tests);
    ("counting.step", counting_tests);
    ("counting.convenience", convenience);
    ("counting.figures", figures);
    ("counting.hybrids", hybrids);
  ]
