(* Unit and property tests for Cn_network.Permutation (Section 2.3). *)

module P = Cn_network.Permutation
module S = Cn_sequence.Sequence

let tc name f = Alcotest.test_case name `Quick f

let perm = Alcotest.testable P.pp P.equal

let construction =
  [
    tc "identity" (fun () ->
        Alcotest.(check bool) "id" true (P.is_identity (P.identity 5)));
    tc "of_array valid" (fun () ->
        let p = P.of_array [| 2; 0; 1 |] in
        Alcotest.(check int) "apply" 2 (P.apply_index p 0));
    Util.raises_invalid "of_array duplicate" (fun () -> P.of_array [| 0; 0 |]);
    Util.raises_invalid "of_array out of range" (fun () -> P.of_array [| 0; 2 |]);
    Util.raises_invalid "identity negative" (fun () -> P.identity (-1));
    Util.raises_invalid "apply_index out of range" (fun () ->
        P.apply_index (P.identity 2) 5);
    tc "size" (fun () -> Alcotest.(check int) "size" 4 (P.size (P.identity 4)));
  ]

let operations =
  [
    tc "inverse of cycle" (fun () ->
        let p = P.of_array [| 1; 2; 0 |] in
        Alcotest.check perm "inv" (P.of_array [| 2; 0; 1 |]) (P.inverse p));
    tc "compose" (fun () ->
        let a = P.of_array [| 1; 0 |] and b = P.of_array [| 1; 0 |] in
        Alcotest.(check bool) "a.b = id" true (P.is_identity (P.compose a b)));
    tc "permute moves element i to pi(i)" (fun () ->
        (* paper convention: pi(x) = y with x_i = y_{pi(i)} *)
        let p = P.of_array [| 2; 0; 1 |] in
        Alcotest.check Util.seq "moved" [| 20; 30; 10 |] (P.permute p [| 10; 20; 30 |]));
    Util.raises_invalid "permute length mismatch" (fun () ->
        ignore (P.permute (P.identity 2) [| 1; 2; 3 |]));
    tc "reverse" (fun () ->
        Alcotest.check Util.seq "rev" [| 3; 2; 1 |] (P.permute (P.reverse 3) [| 1; 2; 3 |]));
    tc "rotate" (fun () ->
        let p = P.rotate 4 1 in
        Alcotest.check Util.seq "rot" [| 4; 1; 2; 3 |] (P.permute p [| 1; 2; 3; 4 |]));
    tc "rotate negative" (fun () ->
        let p = P.rotate 4 (-1) in
        Alcotest.check Util.seq "rot" [| 2; 3; 4; 1 |] (P.permute p [| 1; 2; 3; 4 |]));
    tc "riffle splits halves to even/odd slots" (fun () ->
        let p = P.riffle 6 in
        Alcotest.check Util.seq "riffle" [| 1; 4; 2; 5; 3; 6 |]
          (P.permute p [| 1; 2; 3; 4; 5; 6 |]));
    Util.raises_invalid "riffle odd" (fun () -> P.riffle 3);
  ]

let gen_perm =
  QCheck2.Gen.(
    bind (int_range 1 16) (fun n -> map (fun seed -> P.random ~seed n) (int_range 0 10000)))

let gen_perm_and_seq =
  QCheck2.Gen.(
    bind (int_range 1 16) (fun n ->
        bind (int_range 0 10000) (fun seed ->
            map
              (fun elts -> (P.random ~seed n, Array.of_list elts))
              (list_repeat n (int_range 0 100)))))

let properties =
  [
    Util.qtest "inverse . apply = identity" gen_perm_and_seq (fun (p, x) ->
        S.equal x (P.permute (P.inverse p) (P.permute p x)));
    Util.qtest "compose associates with apply" gen_perm_and_seq (fun (p, x) ->
        let q = P.reverse (P.size p) in
        S.equal (P.permute q (P.permute p x)) (P.permute (P.compose q p) x));
    Util.qtest "random is a bijection" gen_perm (fun p ->
        let n = P.size p in
        let seen = Array.make n false in
        Array.iter (fun v -> seen.(v) <- true) (P.to_array p);
        Array.for_all (fun b -> b) seen);
    Util.qtest "lemma 2.6: permutation preserves smoothness" gen_perm_and_seq
      (fun (p, x) ->
        let k = S.spread x in
        S.is_smooth k (P.permute p x));
    Util.qtest "permute preserves multiset sum" gen_perm_and_seq (fun (p, x) ->
        S.sum (P.permute p x) = S.sum x);
  ]

let suite =
  [
    ("permutation.construction", construction);
    ("permutation.operations", operations);
    ("permutation.properties", properties);
  ]
