(* Tests for Cn_sim.Linearizability and Cn_core.Verify. *)

module SM = Cn_sim.Stall_model
module L = Cn_sim.Linearizability
module V = Cn_core.Verify

let tc name f = Alcotest.test_case name `Quick f

let op ~pid ~invoke ~response ~value = { SM.pid; invoke; response; value; stalls = 0 }

let checker =
  [
    tc "empty history is linearizable" (fun () ->
        Alcotest.(check bool) "lin" true (L.is_linearizable [||]));
    tc "sequential history is linearizable" (fun () ->
        let ops =
          [|
            op ~pid:0 ~invoke:0 ~response:1 ~value:0;
            op ~pid:1 ~invoke:2 ~response:3 ~value:1;
            op ~pid:0 ~invoke:4 ~response:5 ~value:2;
          |]
        in
        Alcotest.(check bool) "lin" true (L.is_linearizable ops);
        Alcotest.(check bool) "dense" true (L.is_dense ops));
    tc "overlapping out-of-order values are fine" (fun () ->
        (* Two concurrent ops may be linearized either way. *)
        let ops =
          [|
            op ~pid:0 ~invoke:0 ~response:10 ~value:1;
            op ~pid:1 ~invoke:1 ~response:9 ~value:0;
          |]
        in
        Alcotest.(check bool) "lin" true (L.is_linearizable ops));
    tc "inversion across a response is a violation" (fun () ->
        let a = op ~pid:0 ~invoke:0 ~response:2 ~value:5 in
        let b = op ~pid:1 ~invoke:4 ~response:6 ~value:3 in
        (match L.violation [| a; b |] with
        | Some (x, y) ->
            Alcotest.(check int) "big value" 5 x.SM.value;
            Alcotest.(check int) "small value" 3 y.SM.value
        | None -> Alcotest.fail "expected violation"));
    tc "violation found through interleaved noise" (fun () ->
        let ops =
          [|
            op ~pid:0 ~invoke:0 ~response:1 ~value:0;
            op ~pid:1 ~invoke:0 ~response:3 ~value:4 (* responds at 3 *);
            op ~pid:2 ~invoke:5 ~response:7 ~value:2 (* invoked at 5 > 3 *);
            op ~pid:3 ~invoke:2 ~response:8 ~value:1;
            op ~pid:4 ~invoke:6 ~response:9 ~value:3;
          |]
        in
        Alcotest.(check bool) "not lin" false (L.is_linearizable ops));
    tc "is_dense rejects gaps and duplicates" (fun () ->
        Alcotest.(check bool) "gap" false
          (L.is_dense [| op ~pid:0 ~invoke:0 ~response:1 ~value:0; op ~pid:1 ~invoke:2 ~response:3 ~value:2 |]);
        Alcotest.(check bool) "dup" false
          (L.is_dense [| op ~pid:0 ~invoke:0 ~response:1 ~value:0; op ~pid:1 ~invoke:2 ~response:3 ~value:0 |]));
  ]

let networks =
  [
    tc "counting networks are not linearizable (C(4,4))" (fun () ->
        match L.find_violation (Cn_core.Counting.network ~w:4 ~t:4) ~n:8 ~m:80 with
        | Some (a, b) ->
            Alcotest.(check bool) "real-time order" true (a.SM.response < b.SM.invoke);
            Alcotest.(check bool) "value inversion" true (a.SM.value > b.SM.value)
        | None -> Alcotest.fail "expected a violation within the seed budget");
    tc "counting networks are not linearizable (bitonic 8)" (fun () ->
        Alcotest.(check bool) "violation exists" true
          (L.find_violation (Cn_baselines.Bitonic.network 8) ~n:12 ~m:120 <> None));
    tc "every sim history is quiescently consistent" (fun () ->
        let net = Cn_core.Counting.network ~w:8 ~t:16 in
        List.iter
          (fun seed ->
            let s = SM.create net ~concurrency:10 ~tokens:200 in
            Cn_sim.Scheduler.run s (Cn_sim.Scheduler.Random seed);
            Alcotest.(check bool) "dense" true (L.is_dense (SM.history s)))
          [ 0; 1; 2; 3; 4 ]);
    tc "a single balancer is linearizable" (fun () ->
        (* Depth-1 networks serialize on one location, so value order is
           completion order. *)
        Alcotest.(check (option (pair int int))) "no violation" None
          (Option.map
             (fun (a, b) -> (a.SM.value, b.SM.value))
             (L.find_violation ~seeds:(List.init 30 (fun i -> i)) (Cn_core.Counting.network ~w:2 ~t:2)
                ~n:8 ~m:80)));
    tc "history length equals completed tokens" (fun () ->
        let s = SM.create (Cn_core.Counting.network ~w:4 ~t:8) ~concurrency:5 ~tokens:50 in
        Cn_sim.Scheduler.run s Cn_sim.Scheduler.Round_robin;
        Alcotest.(check int) "ops" 50 (Array.length (SM.history s)));
  ]

let verify =
  [
    tc "exhaustive counting certificate for C(4,8)" (fun () ->
        match V.counting ~max_tokens:4 (Cn_core.Counting.network ~w:4 ~t:8) with
        | V.Verified n -> Alcotest.(check int) "space" 625 n
        | V.Counterexample x -> Alcotest.failf "unexpected: %s" (Util.S.to_string x));
    tc "exhaustive counting certificate for C(8,8)" (fun () ->
        match V.counting ~max_tokens:2 (Cn_core.Counting.network ~w:8 ~t:8) with
        | V.Verified n -> Alcotest.(check int) "space" 6561 n
        | V.Counterexample x -> Alcotest.failf "unexpected: %s" (Util.S.to_string x));
    tc "butterfly yields a counterexample to counting" (fun () ->
        match V.counting ~max_tokens:3 (Cn_core.Butterfly.forward 4) with
        | V.Counterexample x ->
            Alcotest.(check bool) "witness fails" false
              (Util.S.is_step (Cn_network.Eval.quiescent (Cn_core.Butterfly.forward 4) x))
        | V.Verified _ -> Alcotest.fail "butterfly should not count");
    tc "exhaustive smoothing certificate for D(4)" (fun () ->
        match V.smoothing ~k:2 ~max_tokens:5 (Cn_core.Butterfly.forward 4) with
        | V.Verified _ -> ()
        | V.Counterexample x -> Alcotest.failf "unexpected: %s" (Util.S.to_string x));
    tc "exhaustive merging certificate for M(8,4)" (fun () ->
        match V.merging ~delta:4 ~max_half_sum:30 (Cn_core.Merging.network ~t:8 ~delta:4) with
        | V.Verified n -> Alcotest.(check int) "cases" (31 * 5) n
        | V.Counterexample x -> Alcotest.failf "unexpected: %s" (Util.S.to_string x));
    tc "merging beyond delta yields a counterexample" (fun () ->
        match V.merging ~delta:16 ~max_half_sum:20 (Cn_core.Merging.network ~t:8 ~delta:2) with
        | V.Counterexample _ -> ()
        | V.Verified _ -> Alcotest.fail "M(8,2) should not merge difference 16");
    Util.raises_invalid "input space cap" (fun () ->
        ignore (V.counting ~max_tokens:50 (Cn_core.Counting.network ~w:8 ~t:8)));
    Util.raises_invalid "negative bound" (fun () ->
        ignore (V.counting ~max_tokens:(-1) (Cn_core.Counting.network ~w:4 ~t:4)));
  ]

let suite =
  [
    ("linearizability.checker", checker);
    ("linearizability.networks", networks);
    ("verify.exhaustive", verify);
  ]
