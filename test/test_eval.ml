(* Tests for Cn_network.Eval: closed-form quiescent evaluation, the
   token-level stepper, sequential token runs and counter values
   (Fig. 1 reproduction). *)

module T = Cn_network.Topology
module E = Cn_network.Eval
module S = Cn_sequence.Sequence

let tc name f = Alcotest.test_case name `Quick f

(* The irregular counting network of Fig. 1 (right): C(4, 8). *)
let fig1_network () = Cn_core.Counting.network ~w:4 ~t:8

let quiescent =
  [
    tc "identity passes through" (fun () ->
        Alcotest.check Util.seq "id" [| 1; 2; 3 |] (E.quiescent (T.identity 3) [| 1; 2; 3 |]));
    tc "single balancer splits" (fun () ->
        let net = Cn_core.Ladder.network 2 in
        Alcotest.check Util.seq "split" [| 3; 2 |] (E.quiescent net [| 5; 0 |]));
    tc "sum preservation" (fun () ->
        let net = fig1_network () in
        let x = [| 13; 3; 0; 7 |] in
        Alcotest.(check int) "sum" (S.sum x) (S.sum (E.quiescent net x)));
    Util.raises_invalid "wrong input length" (fun () ->
        E.quiescent (T.identity 2) [| 1 |]);
    Util.raises_invalid "negative input" (fun () ->
        E.quiescent (T.identity 2) [| 1; -1 |]);
    tc "final states reported" (fun () ->
        let net = Cn_core.Ladder.network 2 in
        let _, states = E.quiescent_full net [| 3; 0 |] in
        (* 3 tokens through one (2,2)-balancer leave it in state 1. *)
        Alcotest.check Util.seq "states" [| 1 |] states);
  ]

let trace_agreement =
  [
    tc "trace equals quiescent on C(4,8)" (fun () ->
        let net = fig1_network () in
        let x = [| 9; 2; 5; 1 |] in
        Alcotest.check Util.seq "agree" (E.quiescent net x) (E.trace ~seed:11 net x));
    tc "trace seed independence" (fun () ->
        let net = Cn_baselines.Bitonic.network 8 in
        let x = Array.init 8 (fun i -> (i * 7) mod 5) in
        let reference = E.trace ~seed:0 net x in
        for seed = 1 to 10 do
          Alcotest.check Util.seq "same result" reference (E.trace ~seed net x)
        done);
    Util.qtest ~count:60 "trace = quiescent on random loads"
      QCheck2.Gen.(
        bind (int_range 0 1000) (fun seed ->
            map (fun l -> (seed, Array.of_list l)) (list_repeat 8 (int_range 0 30))))
      (fun (seed, x) ->
        let net = Cn_core.Counting.network ~w:8 ~t:16 in
        S.equal (E.trace ~seed net x) (E.quiescent net x));
  ]

let token_runs =
  [
    tc "counter values are 0..m-1 in some order" (fun () ->
        let net = fig1_network () in
        let entries = List.init 17 (fun i -> i mod 4) in
        let values = List.sort compare (E.counter_values net entries) in
        Alcotest.(check (list int)) "range" (List.init 17 (fun i -> i)) values);
    tc "sequential tokens get increasing values" (fun () ->
        (* When tokens traverse one at a time, values are handed out in
           arrival order: token j gets value j. *)
        let net = fig1_network () in
        let entries = List.init 12 (fun i -> i mod 4) in
        Alcotest.(check (list int)) "in order" (List.init 12 (fun i -> i))
          (E.counter_values net entries));
    tc "exit wires cycle through outputs" (fun () ->
        let net = fig1_network () in
        let entries = List.init 16 (fun i -> i mod 4) in
        let wires = List.map fst (E.token_run net entries) in
        (* Sequential tokens of a counting network exit wires 0,1,2,... mod t. *)
        Alcotest.(check (list int)) "round robin" (List.init 16 (fun i -> i mod 8)) wires);
    Util.raises_invalid "entry wire out of range" (fun () ->
        E.token_run (fig1_network ()) [ 4 ]);
    tc "token_run then quiescent distribution" (fun () ->
        let net = fig1_network () in
        let entries = List.init 11 (fun i -> i mod 3) in
        let runs = E.token_run net entries in
        let per_wire = Array.make 8 0 in
        List.iter (fun (wire, _) -> per_wire.(wire) <- per_wire.(wire) + 1) runs;
        Util.check_step per_wire);
  ]

let single_process_order =
  [
    tc "values respect per-wire arithmetic" (fun () ->
        let net = fig1_network () in
        let runs = E.token_run net (List.init 20 (fun i -> i mod 4)) in
        (* Value v handed out on wire i satisfies v mod t = i. *)
        List.iter
          (fun (wire, v) -> Alcotest.(check int) "congruent" wire (v mod 8))
          runs);
  ]

let suite =
  [
    ("eval.quiescent", quiescent);
    ("eval.trace", trace_agreement);
    ("eval.token_runs", token_runs);
    ("eval.values", single_process_order);
  ]
