Flag validation for the wire-protocol subcommands: `countnet serve`,
`countnet load`, and the standalone `countnetd` daemon.  These are the
paths a deployment script would hit first, so the messages are pinned.

Serve rejects out-of-range ports (0 means "ephemeral", 65535 is the cap):

  $ countnet serve --port 70000
  countnet serve: --port must be in [0, 65535] (got 70000)
  [2]

  $ countnet serve --port=-1
  countnet serve: --port must be in [0, 65535] (got -1)
  [2]

Service-lane knobs must be positive:

  $ countnet serve --queue 0
  countnet serve: --queue must be positive (got 0)
  [2]

  $ countnet serve --max-batch=-2
  countnet serve: --max-batch must be positive (got -2)
  [2]

Degenerate network shapes are caught before the runtime is built:

  $ countnet serve --width 0
  countnet serve: --width must be positive (got 0)
  [2]

  $ countnet serve -w 16 --out-width 0
  countnet serve: --out-width must be positive (got 0)
  [2]

The load rig requires an explicit server port (0 is not connectable):

  $ countnet load --clients 2
  countnet load: --port must be in [1, 65535] (got 0)
  [2]

  $ countnet load --port 0
  countnet load: --port must be in [1, 65535] (got 0)
  [2]

Population shape is validated before any socket is opened:

  $ countnet load --port 9 --clients 0
  countnet load: --clients must be positive (got 0)
  [2]

  $ countnet load --port 9 --conns 0
  countnet load: --conns must be positive (got 0)
  [2]

  $ countnet load --port 9 --ops 0
  countnet load: --ops must be positive (got 0)
  [2]

  $ countnet load --port 9 --dec-ratio 1.5
  countnet load: --dec-ratio must be in [0, 1] (got 1.5)
  [2]

Skew/arrival specs reuse the throughput-command grammar:

  $ countnet load --port 9 --skew zipf:bad
  countnet load: --skew zipf exponent must be positive (got "bad")
  [2]

  $ countnet load --port 9 --arrival nonsense
  countnet load: unknown arrival "nonsense" (expected closed[:THINK] or burst:N:PAUSE)
  [2]

A rig pointed at a port nobody is listening on fails loudly rather than
reporting a zero-op "success" (the wall/busy timing line is elided —
its digits are not deterministic):

  $ countnet load --port 1 --clients 1 --conns 1 --ops 10 >out.txt 2>err.txt || echo "exit $?"
  exit 1
  $ grep -v 'wall' out.txt
  load: 1 clients x 1 conns x 10 ops -> 0 completed (0 inc, 0 dec), 0 overloaded, 0 closed, 1 disconnects
  load: no completed operations; no latency summary
  $ cat err.txt
  countnet load: no operations completed against 127.0.0.1:1

The standalone daemon shares the same validation surface:

  $ countnetd --port 70000
  countnetd: --port must be in [0, 65535] (got 70000)
  [2]

  $ countnetd --width 0
  countnetd: --width must be positive (got 0)
  [2]

  $ countnetd --max-batch 0
  countnetd: --max-batch must be positive (got 0)
  [2]

A sharded fabric daemon needs at least one shard, in both spellings:

  $ countnet serve --shards 0
  countnet serve: --shards must be positive (got 0)
  [2]

  $ countnetd --shards 0
  countnetd: --shards must be positive (got 0)
  [2]
