(* Tests for the extension features: the Section 3.3 merger ablation,
   randomized initial states (Section 7), the threshold property, and
   DOT rendering. *)

module T = Cn_network.Topology
module E = Cn_network.Eval
module S = Cn_sequence.Sequence
module A = Cn_core.Ablation

let tc name f = Alcotest.test_case name `Quick f

let ablation =
  [
    tc "ablated network still counts" (fun () ->
        List.iter
          (fun (w, t) ->
            let net = A.network ~w ~t in
            Util.for_random_inputs ~trials:80 ~seed:(w + t) net (fun ~trial:_ ~x ~y ->
                Alcotest.(check int) "sum" (S.sum x) (S.sum y);
                Util.check_step y))
          [ (4, 4); (4, 8); (8, 8); (8, 16); (16, 16) ]);
    tc "ablated depth matches its recurrence" (fun () ->
        List.iter
          (fun (w, t) ->
            Alcotest.(check int)
              (Printf.sprintf "w=%d t=%d" w t)
              (A.depth_formula ~w ~t)
              (T.depth (A.network ~w ~t)))
          [ (2, 2); (2, 8); (4, 4); (4, 16); (8, 8); (8, 32); (16, 16); (16, 64) ]);
    tc "section 3.3: ablated depth grows with t, ours does not" (fun () ->
        let w = 8 in
        let ours_narrow = T.depth (Cn_core.Counting.network ~w ~t:8) in
        let ours_wide = T.depth (Cn_core.Counting.network ~w ~t:64) in
        let abl_narrow = T.depth (A.network ~w ~t:8) in
        let abl_wide = T.depth (A.network ~w ~t:64) in
        Alcotest.(check int) "ours is t-independent" ours_narrow ours_wide;
        Alcotest.(check bool) "ablation pays for t" true (abl_wide > abl_narrow);
        Alcotest.(check bool) "ablation never shallower" true (abl_narrow >= ours_narrow));
    tc "ablation is never shallower than bitonic at w = t" (fun () ->
        (* The ablated construction keeps C(w,t)'s ladder layers on top
           of bitonic mergers, so at w = t it is strictly deeper than
           the bitonic network for w >= 4 (and equal at w = 2). *)
        List.iter
          (fun w ->
            let abl = T.depth (A.network ~w ~t:w) in
            let bit = Cn_baselines.Bitonic.depth_formula ~w in
            Alcotest.(check bool) (Printf.sprintf "w=%d" w) true
              (if w = 2 then abl = bit else abl > bit))
          [ 2; 4; 8; 16 ]);
    Util.raises_invalid "rejects non-power-of-two t" (fun () -> A.network ~w:8 ~t:24);
    Util.raises_invalid "rejects t < w" (fun () -> A.network ~w:8 ~t:4);
    tc "cross-parity merger is NOT a difference merger" (fun () ->
        (* Section 3.3, third bullet: pairing evens with odds breaks the
           halving of the difference bound. *)
        List.iter
          (fun (t, delta) ->
            match
              Cn_core.Verify.merging ~delta ~max_half_sum:60
                (A.cross_parity_merger ~t ~delta)
            with
            | Cn_core.Verify.Counterexample _ -> ()
            | Cn_core.Verify.Verified _ ->
                Alcotest.failf "M'(%d,%d) unexpectedly merged all cases" t delta)
          [ (8, 4); (16, 4); (16, 8); (32, 8) ]);
    tc "cross-parity merger has the same shape as M(t,delta)" (fun () ->
        let faithful = Cn_core.Merging.network ~t:16 ~delta:4 in
        let wrong = A.cross_parity_merger ~t:16 ~delta:4 in
        Alcotest.(check int) "depth" (T.depth faithful) (T.depth wrong);
        Alcotest.(check int) "size" (T.size faithful) (T.size wrong));
    Util.raises_invalid "cross-parity validates parameters" (fun () ->
        A.cross_parity_merger ~t:8 ~delta:8);
  ]

let randomized =
  [
    tc "randomize_states preserves structure" (fun () ->
        let net = Cn_core.Butterfly.forward 16 in
        let rnd = T.randomize_states ~seed:5 net in
        Alcotest.(check int) "size" (T.size net) (T.size rnd);
        Alcotest.(check int) "depth" (T.depth net) (T.depth rnd);
        Alcotest.(check int) "w" (T.input_width net) (T.input_width rnd));
    tc "randomized butterfly keeps the lg w smoothing bound" (fun () ->
        (* A (2,2)-balancer's outputs are {floor, ceil} of half its load
           whatever its initial state, so the Lemma 5.2 induction is
           state-independent. *)
        List.iter
          (fun seed ->
            let net = T.randomize_states ~seed (Cn_core.Butterfly.forward 16) in
            Util.for_random_inputs ~trials:100 ~seed net (fun ~trial:_ ~x:_ ~y ->
                Alcotest.(check bool) "4-smooth" true (S.is_smooth 4 y)))
          [ 1; 2; 3 ]);
    tc "randomized counting network is not counting but stays smooth" (fun () ->
        let net = T.randomize_states ~seed:11 (Cn_core.Counting.network ~w:8 ~t:8) in
        let rng = Random.State.make [| 4 |] in
        let broke_step = ref false in
        for _ = 1 to 300 do
          let x = Util.random_input rng 8 in
          let y = E.quiescent net x in
          if not (S.is_step y) then broke_step := true;
          Alcotest.(check bool) "still 2-smooth" true (S.is_smooth 2 y)
        done;
        Alcotest.(check bool) "step property lost" true !broke_step);
    tc "with_init_states validates range" (fun () ->
        let net = Cn_core.Ladder.network 4 in
        match T.with_init_states (fun _ _ -> 7) net with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    tc "seeded randomization is deterministic" (fun () ->
        let net = Cn_core.Counting.network ~w:8 ~t:8 in
        Alcotest.(check bool) "equal" true
          (T.equal (T.randomize_states ~seed:3 net) (T.randomize_states ~seed:3 net)));
  ]

(* The threshold property: the k-th token to exit the LAST output wire
   does so only once k*t tokens have entered the network.  Validated on
   random executions by checking after every transition. *)
let threshold_check net ~n ~m ~seed =
  let module SM = Cn_sim.Stall_model in
  let t_width = T.output_width net in
  let s = SM.create net ~concurrency:n ~tokens:m in
  let rng = Random.State.make [| seed |] in
  let violations = ref 0 in
  while not (SM.finished s) do
    let waiting = Array.of_list (SM.waiting_processes s) in
    if Array.length waiting > 0 then begin
      let p = waiting.(Random.State.int rng (Array.length waiting)) in
      SM.fire s p;
      let k = (SM.output_counts s).(t_width - 1) in
      if k > 0 && SM.injected_tokens s < k * t_width then incr violations
    end
  done;
  !violations

let threshold =
  [
    tc "threshold property of C(4,8)" (fun () ->
        for seed = 0 to 9 do
          Alcotest.(check int)
            (Printf.sprintf "seed %d" seed)
            0
            (threshold_check (Cn_core.Counting.network ~w:4 ~t:8) ~n:7 ~m:140 ~seed)
        done);
    tc "threshold property of C(8,8)" (fun () ->
        for seed = 0 to 9 do
          Alcotest.(check int)
            (Printf.sprintf "seed %d" seed)
            0
            (threshold_check (Cn_core.Counting.network ~w:8 ~t:8) ~n:13 ~m:260 ~seed)
        done);
    tc "threshold property of bitonic(8)" (fun () ->
        for seed = 0 to 9 do
          Alcotest.(check int)
            (Printf.sprintf "seed %d" seed)
            0
            (threshold_check (Cn_baselines.Bitonic.network 8) ~n:13 ~m:260 ~seed)
        done);
    tc "injected counts completed plus in-flight" (fun () ->
        let module SM = Cn_sim.Stall_model in
        let s = SM.create (Cn_core.Ladder.network 2) ~concurrency:3 ~tokens:9 in
        Alcotest.(check int) "initial" 3 (SM.injected_tokens s);
        SM.fire s 0;
        (* token 0 exited; process 0 immediately injected its next. *)
        Alcotest.(check int) "after fire" 4 (SM.injected_tokens s));
  ]

let dot_render =
  [
    tc "dot output is a digraph with all nodes" (fun () ->
        let net = Cn_core.Counting.network ~w:4 ~t:8 in
        let s = Cn_network.Render.dot net in
        let contains needle =
          let lh = String.length s and ln = String.length needle in
          let rec go i = i + ln <= lh && (String.sub s i ln = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "digraph" true (contains "digraph");
        Alcotest.(check bool) "inputs" true (contains "in3 [shape=diamond");
        Alcotest.(check bool) "outputs" true (contains "out7 [shape=diamond");
        Alcotest.(check bool) "irregular balancer label" true (contains "(2,4)");
        for b = 0 to T.size net - 1 do
          Alcotest.(check bool) (Printf.sprintf "b%d" b) true
            (contains (Printf.sprintf "b%d [label=" b))
        done);
    tc "dot edge count equals wire count" (fun () ->
        let net = Cn_core.Counting.network ~w:4 ~t:8 in
        let s = Cn_network.Render.dot net in
        let arrows = ref 0 in
        String.iteri
          (fun i c -> if c = '>' && i > 0 && s.[i - 1] = '-' then incr arrows)
          s;
        (* wires = balancer inputs + network outputs *)
        let expected =
          Array.to_seq (Array.init (T.size net) (fun b -> Array.length (T.feeds net b)))
          |> Seq.fold_left ( + ) (T.output_width net)
        in
        Alcotest.(check int) "edges" expected !arrows);
  ]

(* Fault injection in the spirit of the self-stabilization work the paper
   cites ([18], Herlihy–Tirthapura): corrupt every balancer state between
   batches and check the smoothing guarantees of the *subsequent* traffic
   degrade gracefully (each corrupted (2,2)-balancer still emits
   ceil/floor halves, so a butterfly stays lg w-smoothing of totals and
   per-batch deltas stay 2·lg w-smooth). *)
let fault_injection =
  [
    tc "corrupted butterfly still smooths totals" (fun () ->
        let rng = Random.State.make [| 3 |] in
        for seed = 1 to 20 do
          let net = T.randomize_states ~seed (Cn_core.Butterfly.forward 16) in
          let x = Array.init 16 (fun _ -> Random.State.int rng 60) in
          Alcotest.(check bool) "lg w smooth" true
            (S.is_smooth 4 (E.quiescent net x))
        done);
    tc "per-batch deltas after corruption are 2 lg w smooth" (fun () ->
        let rng = Random.State.make [| 9 |] in
        for seed = 1 to 20 do
          let base = Cn_core.Butterfly.forward 16 in
          (* First batch through a fresh network... *)
          let x1 = Array.init 16 (fun _ -> Random.State.int rng 30) in
          let _, states = E.quiescent_full base x1 in
          ignore states;
          let y1 = E.quiescent base x1 in
          (* ...then the adversary corrupts all states; the second batch's
             delta is the difference of two lg w-smooth totals. *)
          let corrupted = T.randomize_states ~seed base in
          let x2 = Array.init 16 (fun _ -> Random.State.int rng 30) in
          let y2 = E.quiescent corrupted x2 in
          let delta = Array.init 16 (fun i -> y1.(i) + y2.(i)) in
          Alcotest.(check bool) "8-smooth" true (S.is_smooth 8 delta)
        done);
    tc "corrupted counting network stays within spread 2" (fun () ->
        (* The step property dies under corruption but 2-smoothness
           survives for C(w,w) (measured bound; cf. E10). *)
        let rng = Random.State.make [| 13 |] in
        for seed = 1 to 20 do
          let net = T.randomize_states ~seed (Cn_core.Counting.network ~w:8 ~t:8) in
          let x = Array.init 8 (fun _ -> Random.State.int rng 50) in
          Alcotest.(check bool) "2-smooth" true (S.is_smooth 2 (E.quiescent net x))
        done);
  ]

let suite =
  [
    ("extensions.ablation", ablation);
    ("extensions.randomized", randomized);
    ("extensions.threshold", threshold);
    ("extensions.dot", dot_render);
    ("extensions.faults", fault_injection);
  ]
