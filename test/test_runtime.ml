(* Tests for Cn_runtime: concurrent traversals with OCaml 5 domains. *)

module RT = Cn_runtime.Network_runtime
module SC = Cn_runtime.Shared_counter
module H = Cn_runtime.Harness
module DP = Cn_runtime.Domain_pool
module PA = Cn_runtime.Padded_atomic
module S = Cn_sequence.Sequence

let tc name f = Alcotest.test_case name `Quick f

let net48 () = Cn_core.Counting.network ~w:4 ~t:8

let single_threaded =
  [
    tc "traverse returns counter values in order" (fun () ->
        let rt = RT.compile (net48 ()) in
        let values = List.init 12 (fun i -> RT.traverse rt ~wire:(i mod 4)) in
        Alcotest.(check (list int)) "sequential" (List.init 12 (fun i -> i)) values);
    tc "exit distribution is step after quiescence" (fun () ->
        let rt = RT.compile (net48 ()) in
        for i = 0 to 20 do
          ignore (RT.traverse rt ~wire:(i mod 4))
        done;
        Util.check_step (RT.exit_distribution rt));
    tc "matches the combinatorial evaluator" (fun () ->
        let net = Cn_core.Counting.network ~w:8 ~t:16 in
        let rt = RT.compile net in
        let x = [| 4; 1; 0; 7; 3; 3; 2; 5 |] in
        Array.iteri
          (fun wire count ->
            for _ = 1 to count do
              ignore (RT.traverse rt ~wire)
            done)
          x;
        Alcotest.check Util.seq "distribution" (Cn_network.Eval.quiescent net x)
          (RT.exit_distribution rt));
    tc "reset restores initial state" (fun () ->
        let rt = RT.compile (net48 ()) in
        ignore (RT.traverse rt ~wire:0);
        ignore (RT.traverse rt ~wire:1);
        RT.reset rt;
        Alcotest.(check int) "value restarts" 0 (RT.traverse rt ~wire:0);
        Alcotest.(check int) "failures cleared" 0 (RT.cas_failures rt));
    tc "faa mode reports no failures" (fun () ->
        let rt = RT.compile ~mode:RT.Faa (net48 ()) in
        for i = 0 to 9 do
          ignore (RT.traverse rt ~wire:(i mod 4))
        done;
        Alcotest.(check int) "zero" 0 (RT.cas_failures rt));
    tc "cas mode sequential also clean" (fun () ->
        let rt = RT.compile ~mode:RT.Cas (net48 ()) in
        for i = 0 to 9 do
          ignore (RT.traverse rt ~wire:(i mod 4))
        done;
        Alcotest.(check int) "zero" 0 (RT.cas_failures rt));
    Util.raises_invalid "wire out of range" (fun () ->
        ignore (RT.traverse (RT.compile (net48 ())) ~wire:9));
    tc "modes and widths exposed" (fun () ->
        let rt = RT.compile ~mode:RT.Cas (net48 ()) in
        Alcotest.(check bool) "mode" true (RT.mode rt = RT.Cas);
        Alcotest.(check bool) "layout" true (RT.layout rt = RT.Padded_csr);
        Alcotest.(check int) "w" 4 (RT.input_width rt);
        Alcotest.(check int) "t" 8 (RT.output_width rt));
  ]

(* ------------------------------------------------------------------ *)
(* Memory layouts: the padded+CSR and seed layouts are observationally
   identical; both agree with the combinatorial evaluator token for
   token, including on randomly generated wiring. *)

let drain rt ~tokens =
  List.init tokens (fun i -> RT.traverse rt ~wire:(i mod RT.input_width rt))

let layouts =
  [
    tc "unpadded-nested layout exposed" (fun () ->
        let rt = RT.compile ~layout:RT.Unpadded_nested (net48 ()) in
        Alcotest.(check bool) "layout" true (RT.layout rt = RT.Unpadded_nested));
    tc "layouts agree token-for-token on C(8,16)" (fun () ->
        let net = Cn_core.Counting.network ~w:8 ~t:16 in
        let padded = RT.compile ~layout:RT.Padded_csr net in
        let nested = RT.compile ~layout:RT.Unpadded_nested net in
        Alcotest.(check (list int)) "same values" (drain padded ~tokens:64)
          (drain nested ~tokens:64));
    tc "csr runtime = Eval token run on C(4,8)" (fun () ->
        let net = net48 () in
        let rt = RT.compile net in
        let entries = List.init 23 (fun i -> i mod 4) in
        let expected = List.map snd (Cn_network.Eval.token_run net entries) in
        let got = List.map (fun wire -> RT.traverse rt ~wire) entries in
        Alcotest.(check (list int)) "values" expected got);
    tc "csr runtime = Eval.quiescent on random layered nets" (fun () ->
        List.iter
          (fun seed ->
            let net = Cn_network.Random_net.layered ~seed ~layers:5 8 in
            let x = Array.init 8 (fun i -> (i * 7 * (seed + 1)) mod 11) in
            List.iter
              (fun layout ->
                let rt = RT.compile ~layout net in
                Array.iteri
                  (fun wire count ->
                    for _ = 1 to count do
                      ignore (RT.traverse rt ~wire)
                    done)
                  x;
                Alcotest.check Util.seq
                  (Printf.sprintf "seed %d" seed)
                  (Cn_network.Eval.quiescent net x)
                  (RT.exit_distribution rt))
              [ RT.Padded_csr; RT.Unpadded_nested ])
          [ 0; 1; 2; 3; 4 ]);
    tc "csr runtime = Eval.quiescent on random sparse nets" (fun () ->
        List.iter
          (fun seed ->
            let net = Cn_network.Random_net.sparse ~seed ~layers:6 10 in
            let x = Array.init 10 (fun i -> (i + (3 * seed)) mod 7) in
            let rt = RT.compile net in
            Array.iteri
              (fun wire count ->
                for _ = 1 to count do
                  ignore (RT.traverse rt ~wire)
                done)
              x;
            Alcotest.check Util.seq
              (Printf.sprintf "seed %d" seed)
              (Cn_network.Eval.quiescent net x)
              (RT.exit_distribution rt))
          [ 5; 6; 7 ]);
    tc "traverse_batch equals repeated traverse" (fun () ->
        let net = Cn_core.Counting.network ~w:8 ~t:8 in
        let one = RT.compile net in
        let batch = RT.compile net in
        let singles = List.init 30 (fun _ -> RT.traverse one ~wire:3) in
        let collected = Array.make 30 (-1) in
        RT.traverse_batch batch ~wire:3 ~n:30 ~f:(fun i v -> collected.(i) <- v);
        Alcotest.(check (list int)) "same values" singles (Array.to_list collected));
    tc "traverse_batch validates arguments" (fun () ->
        let rt = RT.compile (net48 ()) in
        Alcotest.check_raises "wire" (Invalid_argument "Network_runtime.traverse_batch: wire out of range")
          (fun () -> RT.traverse_batch rt ~wire:4 ~n:1 ~f:(fun _ _ -> ()));
        Alcotest.check_raises "n" (Invalid_argument "Network_runtime.traverse_batch: negative batch size")
          (fun () -> RT.traverse_batch rt ~wire:0 ~n:(-1) ~f:(fun _ _ -> ())));
    tc "padded atomic bank semantics" (fun () ->
        List.iter
          (fun padded ->
            let bank = PA.make ~padded 4 ~init:(fun i -> 10 * i) in
            Alcotest.(check int) "length" 4 (PA.length bank);
            Alcotest.(check bool) "padded" padded (PA.is_padded bank);
            Alcotest.(check int) "init" 20 (PA.get bank 2);
            Alcotest.(check int) "faa returns previous" 20 (PA.fetch_and_add bank 2 5);
            Alcotest.(check int) "faa applied" 25 (PA.get bank 2);
            Alcotest.(check bool) "cas hit" true (PA.compare_and_set bank 2 25 7);
            Alcotest.(check bool) "cas miss" false (PA.compare_and_set bank 2 25 9);
            PA.incr bank 0;
            Alcotest.(check int) "incr" 1 (PA.get bank 0);
            PA.set bank 3 (-4);
            Alcotest.(check int) "set" (-4) (PA.get bank 3))
          [ true; false ]);
  ]

let counters =
  [
    tc "central faa hands out 0.." (fun () ->
        let c = SC.central_faa () in
        let a = SC.next c ~pid:0 in
        let b = SC.next c ~pid:1 in
        let d = SC.next c ~pid:0 in
        Alcotest.(check (list int)) "seq" [ 0; 1; 2 ] [ a; b; d ]);
    tc "lock counter hands out 0.." (fun () ->
        let c = SC.with_lock () in
        let a = SC.next c ~pid:0 in
        let b = SC.next c ~pid:5 in
        let d = SC.next c ~pid:2 in
        Alcotest.(check (list int)) "seq" [ 0; 1; 2 ] [ a; b; d ]);
    tc "network counter values congruent to exit wire" (fun () ->
        let c = SC.of_topology (net48 ()) in
        for i = 0 to 15 do
          let v = SC.next c ~pid:(i mod 3) in
          Alcotest.(check bool) "in range" true (v >= 0 && v < 16 + 8)
        done);
    Util.raises_invalid "negative pid" (fun () ->
        ignore (SC.next (SC.central_faa ()) ~pid:(-1)));
    tc "names" (fun () ->
        Alcotest.(check string) "net" "network" (SC.name (SC.of_topology (net48 ())));
        Alcotest.(check string) "faa" "central-faa" (SC.name (SC.central_faa ()));
        Alcotest.(check string) "lock" "lock" (SC.name (SC.with_lock ())));
  ]

let concurrent_case name make =
  tc name (fun () ->
      let vss = H.run_collect ~make ~domains:4 ~ops_per_domain:400 () in
      Alcotest.(check bool) "values form 0..m-1" true (H.values_are_a_range vss))

let concurrent =
  [
    concurrent_case "network counter C(4,8), 4 domains" (fun () ->
        SC.of_topology (net48 ()));
    concurrent_case "network counter C(8,8) faa" (fun () ->
        SC.of_topology (Cn_core.Counting.network ~w:8 ~t:8));
    concurrent_case "network counter C(8,24) cas" (fun () ->
        SC.of_topology ~mode:RT.Cas (Cn_core.Counting.network ~w:8 ~t:24));
    concurrent_case "network counter C(8,8) unpadded layout" (fun () ->
        SC.of_topology ~layout:RT.Unpadded_nested (Cn_core.Counting.network ~w:8 ~t:8));
    concurrent_case "bitonic-backed counter" (fun () ->
        SC.of_topology (Cn_baselines.Bitonic.network 8));
    concurrent_case "periodic-backed counter" (fun () ->
        SC.of_topology (Cn_baselines.Periodic.network 8));
    concurrent_case "diffracting-backed counter" (fun () ->
        SC.of_topology (Cn_baselines.Diffracting.network 8));
    concurrent_case "central faa counter" (fun () -> SC.central_faa ());
    concurrent_case "lock counter" (fun () -> SC.with_lock ());
    tc "concurrent quiescent distribution is step" (fun () ->
        let net = Cn_core.Counting.network ~w:8 ~t:16 in
        let rt = RT.compile net in
        let body pid () =
          for i = 0 to 199 do
            ignore (RT.traverse rt ~wire:((pid + (i * 0)) mod 8))
          done
        in
        let handles = Array.init 4 (fun pid -> Domain.spawn (body pid)) in
        Array.iter Domain.join handles;
        Util.check_step (RT.exit_distribution rt);
        Alcotest.(check int) "token total" 800 (S.sum (RT.exit_distribution rt)));
    tc "throughput harness returns sane numbers" (fun () ->
        let r =
          H.throughput
            ~make:(fun () -> SC.central_faa ())
            ~domains:2 ~ops_per_domain:1000 ()
        in
        Alcotest.(check int) "ops" 2000 r.H.total_ops;
        Alcotest.(check bool) "positive time" true (r.H.seconds > 0.);
        Alcotest.(check bool) "positive rate" true (r.H.ops_per_sec > 0.));
    Util.raises_invalid "throughput rejects zero domains" (fun () ->
        ignore
          (H.throughput ~make:(fun () -> SC.central_faa ()) ~domains:0 ~ops_per_domain:1 ()));
    Util.raises_invalid "throughput rejects overflowing totals" (fun () ->
        ignore
          (H.throughput
             ~make:(fun () -> SC.central_faa ())
             ~domains:4
             ~ops_per_domain:(max_int / 2)
             ()));
    tc "throughput calibrates instead of reporting zero rate" (fun () ->
        (* ops_per_domain:0 used to yield seconds = 0 and a reported
           throughput of 0 ops/s; the harness must escalate until the
           clock resolves. *)
        let r =
          H.throughput ~make:(fun () -> SC.central_faa ()) ~domains:1 ~ops_per_domain:0 ()
        in
        Alcotest.(check bool) "ops ran" true (r.H.total_ops > 0);
        Alcotest.(check bool) "time measured" true (r.H.seconds > 0.);
        Alcotest.(check bool) "positive rate" true (r.H.ops_per_sec > 0.));
    tc "values_are_a_range rejects duplicates" (fun () ->
        Alcotest.(check bool) "dup" false (H.values_are_a_range [| [| 0; 1 |]; [| 1 |] |]));
    tc "values_are_a_range rejects gaps" (fun () ->
        Alcotest.(check bool) "gap" false (H.values_are_a_range [| [| 0; 3 |]; [| 1 |] |]));
    tc "values_are_a_range accepts a shuffled range" (fun () ->
        Alcotest.(check bool) "ok" true (H.values_are_a_range [| [| 2; 0 |]; [| 1; 3 |] |]));
    tc "values_are_a_range edge cases" (fun () ->
        (* Zero domains, domains that collected nothing, single values,
           and duplicates split across domains. *)
        Alcotest.(check bool) "no domains" true (H.values_are_a_range [||]);
        Alcotest.(check bool) "empty domains" true
          (H.values_are_a_range [| [||]; [||] |]);
        Alcotest.(check bool) "single zero" true (H.values_are_a_range [| [| 0 |] |]);
        Alcotest.(check bool) "single nonzero" false
          (H.values_are_a_range [| [| 1 |] |]);
        Alcotest.(check bool) "single negative" false
          (H.values_are_a_range [| [| -1 |] |]);
        Alcotest.(check bool) "duplicate across domains" false
          (H.values_are_a_range [| [| 0 |]; [| 0 |] |]);
        Alcotest.(check bool) "range split across empty and full domains" true
          (H.values_are_a_range [| [||]; [| 1; 0 |]; [||] |]));
  ]

(* ------------------------------------------------------------------ *)
(* Multi-domain sweeps: the Fetch&Increment contract must hold at 2, 4
   and 8 domains in both balancer modes, on the paper's network and on
   the bitonic baseline.  One warmed pool serves the whole sweep. *)

let multi_domain =
  [
    tc "range contract at 2/4/8 domains, Faa and Cas, C(8,16) and bitonic" (fun () ->
        DP.with_pool 8 (fun pool ->
            List.iter
              (fun (net_name, net) ->
                List.iter
                  (fun (mode_name, mode) ->
                    List.iter
                      (fun domains ->
                        let vss =
                          H.run_collect ~pool ~validate:Cn_runtime.Validator.Strict
                            ~make:(fun () -> SC.of_topology ~mode ~metrics:true net)
                            ~domains ~ops_per_domain:(400 / domains) ()
                        in
                        Alcotest.(check bool)
                          (Printf.sprintf "%s %s %dd" net_name mode_name domains)
                          true (H.values_are_a_range vss))
                      [ 2; 4; 8 ])
                  [ ("faa", RT.Faa); ("cas", RT.Cas) ])
              [
                ("C(8,16)", Cn_core.Counting.network ~w:8 ~t:16);
                ("bitonic-8", Cn_baselines.Bitonic.network 8);
              ]));
    tc "pool runs are reusable across counters and domain counts" (fun () ->
        DP.with_pool 4 (fun pool ->
            Alcotest.(check int) "size" 4 (DP.size pool);
            let r1 =
              H.throughput ~pool ~make:(fun () -> SC.central_faa ()) ~domains:4
                ~ops_per_domain:200 ()
            in
            let r2 =
              H.throughput ~pool
                ~make:(fun () -> SC.of_topology (net48 ()))
                ~domains:2 ~ops_per_domain:200 ()
            in
            Alcotest.(check int) "ops 1" 800 r1.H.total_ops;
            Alcotest.(check int) "ops 2" 400 r2.H.total_ops;
            Alcotest.(check bool) "rate 1" true (r1.H.ops_per_sec > 0.);
            Alcotest.(check bool) "rate 2" true (r2.H.ops_per_sec > 0.)));
    tc "pool rejects out-of-range rounds" (fun () ->
        DP.with_pool 2 (fun pool ->
            Alcotest.check_raises "too many"
              (Invalid_argument "Domain_pool.run: domains out of range for this pool") (fun () ->
                ignore (DP.run pool ~domains:3 ignore));
            Alcotest.check_raises "zero"
              (Invalid_argument "Domain_pool.run: domains out of range for this pool") (fun () ->
                ignore (DP.run pool ~domains:0 ignore))));
    tc "a raising job poisons the round, not the pool" (fun () ->
        DP.with_pool 2 (fun pool ->
            Alcotest.check_raises "exception propagates" (Failure "boom") (fun () ->
                ignore (DP.run pool ~domains:2 (fun pid -> if pid = 1 then failwith "boom")));
            (* The failed round checked out cleanly; later rounds must
               run on all workers, including the one that raised. *)
            let count = Atomic.make 0 in
            ignore (DP.run pool ~domains:2 (fun _ -> Atomic.incr count));
            Alcotest.(check int) "pool reusable" 2 (Atomic.get count);
            Alcotest.check_raises "fails again when jobs fail again" (Failure "boom2")
              (fun () -> ignore (DP.run pool ~domains:1 (fun _ -> failwith "boom2")));
            let r =
              H.throughput ~pool ~make:(fun () -> SC.central_faa ()) ~domains:2
                ~ops_per_domain:100 ()
            in
            Alcotest.(check bool) "harness still works" true (r.H.ops_per_sec > 0.)));
    tc "pool shutdown is idempotent and detected" (fun () ->
        let pool = DP.create 2 in
        ignore (DP.run pool ~domains:2 ignore);
        DP.shutdown pool;
        DP.shutdown pool;
        Alcotest.check_raises "run after shutdown"
          (Invalid_argument "Domain_pool.run: pool is shut down") (fun () ->
            ignore (DP.run pool ~domains:1 ignore)));
    tc "concurrent batch traversals keep the range contract" (fun () ->
        let net = Cn_core.Counting.network ~w:8 ~t:16 in
        let rt = RT.compile net in
        let domains = 4 and n = 150 in
        let values = Array.init domains (fun _ -> Array.make n (-1)) in
        DP.with_pool domains (fun pool ->
            ignore
              (DP.run pool ~domains (fun pid ->
                   RT.traverse_batch rt ~wire:pid ~n ~f:(fun i v -> values.(pid).(i) <- v))));
        Alcotest.(check bool) "range" true (H.values_are_a_range values);
        Util.check_step (RT.exit_distribution rt));
  ]

let suite =
  [
    ("runtime.single", single_threaded);
    ("runtime.layouts", layouts);
    ("runtime.counters", counters);
    ("runtime.concurrent", concurrent);
    ("runtime.multi_domain", multi_domain);
  ]
