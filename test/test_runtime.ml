(* Tests for Cn_runtime: concurrent traversals with OCaml 5 domains. *)

module RT = Cn_runtime.Network_runtime
module SC = Cn_runtime.Shared_counter
module H = Cn_runtime.Harness
module S = Cn_sequence.Sequence

let tc name f = Alcotest.test_case name `Quick f

let net48 () = Cn_core.Counting.network ~w:4 ~t:8

let single_threaded =
  [
    tc "traverse returns counter values in order" (fun () ->
        let rt = RT.compile (net48 ()) in
        let values = List.init 12 (fun i -> RT.traverse rt ~wire:(i mod 4)) in
        Alcotest.(check (list int)) "sequential" (List.init 12 (fun i -> i)) values);
    tc "exit distribution is step after quiescence" (fun () ->
        let rt = RT.compile (net48 ()) in
        for i = 0 to 20 do
          ignore (RT.traverse rt ~wire:(i mod 4))
        done;
        Util.check_step (RT.exit_distribution rt));
    tc "matches the combinatorial evaluator" (fun () ->
        let net = Cn_core.Counting.network ~w:8 ~t:16 in
        let rt = RT.compile net in
        let x = [| 4; 1; 0; 7; 3; 3; 2; 5 |] in
        Array.iteri
          (fun wire count ->
            for _ = 1 to count do
              ignore (RT.traverse rt ~wire)
            done)
          x;
        Alcotest.check Util.seq "distribution" (Cn_network.Eval.quiescent net x)
          (RT.exit_distribution rt));
    tc "reset restores initial state" (fun () ->
        let rt = RT.compile (net48 ()) in
        ignore (RT.traverse rt ~wire:0);
        ignore (RT.traverse rt ~wire:1);
        RT.reset rt;
        Alcotest.(check int) "value restarts" 0 (RT.traverse rt ~wire:0);
        Alcotest.(check int) "failures cleared" 0 (RT.cas_failures rt));
    tc "faa mode reports no failures" (fun () ->
        let rt = RT.compile ~mode:RT.Faa (net48 ()) in
        for i = 0 to 9 do
          ignore (RT.traverse rt ~wire:(i mod 4))
        done;
        Alcotest.(check int) "zero" 0 (RT.cas_failures rt));
    tc "cas mode sequential also clean" (fun () ->
        let rt = RT.compile ~mode:RT.Cas (net48 ()) in
        for i = 0 to 9 do
          ignore (RT.traverse rt ~wire:(i mod 4))
        done;
        Alcotest.(check int) "zero" 0 (RT.cas_failures rt));
    Util.raises_invalid "wire out of range" (fun () ->
        ignore (RT.traverse (RT.compile (net48 ())) ~wire:9));
    tc "modes and widths exposed" (fun () ->
        let rt = RT.compile ~mode:RT.Cas (net48 ()) in
        Alcotest.(check bool) "mode" true (RT.mode rt = RT.Cas);
        Alcotest.(check int) "w" 4 (RT.input_width rt);
        Alcotest.(check int) "t" 8 (RT.output_width rt));
  ]

let counters =
  [
    tc "central faa hands out 0.." (fun () ->
        let c = SC.central_faa () in
        let a = SC.next c ~pid:0 in
        let b = SC.next c ~pid:1 in
        let d = SC.next c ~pid:0 in
        Alcotest.(check (list int)) "seq" [ 0; 1; 2 ] [ a; b; d ]);
    tc "lock counter hands out 0.." (fun () ->
        let c = SC.with_lock () in
        let a = SC.next c ~pid:0 in
        let b = SC.next c ~pid:5 in
        let d = SC.next c ~pid:2 in
        Alcotest.(check (list int)) "seq" [ 0; 1; 2 ] [ a; b; d ]);
    tc "network counter values congruent to exit wire" (fun () ->
        let c = SC.of_topology (net48 ()) in
        for i = 0 to 15 do
          let v = SC.next c ~pid:(i mod 3) in
          Alcotest.(check bool) "in range" true (v >= 0 && v < 16 + 8)
        done);
    Util.raises_invalid "negative pid" (fun () ->
        ignore (SC.next (SC.central_faa ()) ~pid:(-1)));
    tc "names" (fun () ->
        Alcotest.(check string) "net" "network" (SC.name (SC.of_topology (net48 ())));
        Alcotest.(check string) "faa" "central-faa" (SC.name (SC.central_faa ()));
        Alcotest.(check string) "lock" "lock" (SC.name (SC.with_lock ())));
  ]

let concurrent_case name make =
  tc name (fun () ->
      let vss = H.run_collect ~make ~domains:4 ~ops_per_domain:400 in
      Alcotest.(check bool) "values form 0..m-1" true (H.values_are_a_range vss))

let concurrent =
  [
    concurrent_case "network counter C(4,8), 4 domains" (fun () ->
        SC.of_topology (net48 ()));
    concurrent_case "network counter C(8,8) faa" (fun () ->
        SC.of_topology (Cn_core.Counting.network ~w:8 ~t:8));
    concurrent_case "network counter C(8,24) cas" (fun () ->
        SC.of_topology ~mode:RT.Cas (Cn_core.Counting.network ~w:8 ~t:24));
    concurrent_case "bitonic-backed counter" (fun () ->
        SC.of_topology (Cn_baselines.Bitonic.network 8));
    concurrent_case "periodic-backed counter" (fun () ->
        SC.of_topology (Cn_baselines.Periodic.network 8));
    concurrent_case "diffracting-backed counter" (fun () ->
        SC.of_topology (Cn_baselines.Diffracting.network 8));
    concurrent_case "central faa counter" (fun () -> SC.central_faa ());
    concurrent_case "lock counter" (fun () -> SC.with_lock ());
    tc "concurrent quiescent distribution is step" (fun () ->
        let net = Cn_core.Counting.network ~w:8 ~t:16 in
        let rt = RT.compile net in
        let body pid () =
          for i = 0 to 199 do
            ignore (RT.traverse rt ~wire:((pid + (i * 0)) mod 8))
          done
        in
        let handles = Array.init 4 (fun pid -> Domain.spawn (body pid)) in
        Array.iter Domain.join handles;
        Util.check_step (RT.exit_distribution rt);
        Alcotest.(check int) "token total" 800 (S.sum (RT.exit_distribution rt)));
    tc "throughput harness returns sane numbers" (fun () ->
        let r =
          H.throughput
            ~make:(fun () -> SC.central_faa ())
            ~domains:2 ~ops_per_domain:1000
        in
        Alcotest.(check int) "ops" 2000 r.H.total_ops;
        Alcotest.(check bool) "positive time" true (r.H.seconds > 0.);
        Alcotest.(check bool) "positive rate" true (r.H.ops_per_sec > 0.));
    Util.raises_invalid "throughput rejects zero domains" (fun () ->
        ignore
          (H.throughput ~make:(fun () -> SC.central_faa ()) ~domains:0 ~ops_per_domain:1));
    tc "values_are_a_range rejects duplicates" (fun () ->
        Alcotest.(check bool) "dup" false (H.values_are_a_range [| [| 0; 1 |]; [| 1 |] |]));
    tc "values_are_a_range rejects gaps" (fun () ->
        Alcotest.(check bool) "gap" false (H.values_are_a_range [| [| 0; 3 |]; [| 1 |] |]));
    tc "values_are_a_range accepts a shuffled range" (fun () ->
        Alcotest.(check bool) "ok" true (H.values_are_a_range [| [| 2; 0 |]; [| 1; 3 |] |]));
  ]

let suite =
  [
    ("runtime.single", single_threaded);
    ("runtime.counters", counters);
    ("runtime.concurrent", concurrent);
  ]
