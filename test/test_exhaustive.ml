(* Tests for Cn_sim.Exhaustive: exact worst/best-case contention. *)

module X = Cn_sim.Exhaustive
module Cont = Cn_sim.Contention

let tc name f = Alcotest.test_case name `Quick f

let single_balancer =
  [
    tc "n tokens on one balancer: forced triangle" (fun () ->
        (* All n tokens are injected waiting at the same balancer, so the
           first fire charges n-1, the next n-2, ...: min = max =
           n(n-1)/2 when m = n. *)
        let net = Cn_core.Counting.network ~w:2 ~t:2 in
        List.iter
          (fun n ->
            let expected = n * (n - 1) / 2 in
            Alcotest.(check int) (Printf.sprintf "max n=%d" n) expected
              (X.max_contention net ~n ~m:n);
            Alcotest.(check int) (Printf.sprintf "min n=%d" n) expected
              (X.min_contention net ~n ~m:n))
          [ 1; 2; 3; 4; 5 ]);
    tc "reissued tokens keep colliding" (fun () ->
        (* n=3 processes, 2 tokens each: each batch costs at least 3
           pairwise stalls; the adversary can stagger reinjections to add
           more. *)
        let net = Cn_core.Counting.network ~w:2 ~t:2 in
        Alcotest.(check int) "min" 6 (X.min_contention net ~n:3 ~m:6);
        Alcotest.(check int) "max" 9 (X.max_contention net ~n:3 ~m:6));
    tc "single process never stalls" (fun () ->
        let net = Cn_core.Counting.network ~w:4 ~t:4 in
        Alcotest.(check int) "max" 0 (X.max_contention net ~n:1 ~m:6);
        Alcotest.(check int) "min" 0 (X.min_contention net ~n:1 ~m:6));
    tc "zero tokens" (fun () ->
        let net = Cn_core.Counting.network ~w:2 ~t:2 in
        Alcotest.(check int) "max" 0 (X.max_contention net ~n:2 ~m:0));
    tc "per-process quotas above 255 stay exact" (fun () ->
        (* Regression: the memo key used to pack each remaining quota
           into 8 bits, so m = 520 over n = 2 (quota 259) silently
           collided distinct states.  Closed forms for C(2,2), n = 2:
           max = m - 1 (the adversary keeps both processes colliding on
           the entry balancer), min = m / 2 (perfect alternation). *)
        let net = Cn_core.Counting.network ~w:2 ~t:2 in
        Alcotest.(check int) "max m=20" 19 (X.max_contention net ~n:2 ~m:20);
        Alcotest.(check int) "min m=20" 10 (X.min_contention net ~n:2 ~m:20);
        Alcotest.(check int) "max m=520" 519 (X.max_contention net ~n:2 ~m:520);
        Alcotest.(check int) "min m=520" 260 (X.min_contention net ~n:2 ~m:520));
  ]

let properties =
  [
    tc "heuristics never exceed the exact maximum" (fun () ->
        List.iter
          (fun (net, n, m) ->
            let exact = X.max_contention net ~n ~m in
            let heur = Cont.worst net ~n ~m in
            Alcotest.(check bool) "bounded" true
              (float_of_int heur.Cont.stalls <= float_of_int exact +. 1e-9))
          [
            (Cn_core.Counting.network ~w:2 ~t:2, 3, 6);
            (Cn_core.Counting.network ~w:4 ~t:4, 3, 6);
            (Cn_core.Counting.network ~w:4 ~t:8, 3, 6);
            (Cn_core.Ladder.network 4, 4, 8);
          ]);
    tc "min <= max" (fun () ->
        List.iter
          (fun (net, n, m) ->
            Alcotest.(check bool) "ordered" true
              (X.min_contention net ~n ~m <= X.max_contention net ~n ~m))
          [
            (Cn_core.Counting.network ~w:4 ~t:4, 3, 6);
            (Cn_baselines.Diffracting.network 4, 3, 6);
          ]);
    tc "separated processes can avoid all stalls" (fun () ->
        (* L(4) with 2 processes on disjoint balancers: wires 0,1 enter
           different ladder balancers. *)
        let net = Cn_core.Ladder.network 4 in
        Alcotest.(check int) "min 0" 0 (X.min_contention net ~n:2 ~m:4));
    tc "exact worst case: wide beats narrow already at w=4" (fun () ->
        (* The paper's claim holds in the exact model at toy scale. *)
        let narrow = X.max_contention (Cn_core.Counting.network ~w:4 ~t:4) ~n:3 ~m:6 in
        let wide = X.max_contention (Cn_core.Counting.network ~w:4 ~t:8) ~n:3 ~m:6 in
        Alcotest.(check bool) "wide <= narrow" true (wide < narrow));
    tc "diffracting tree is worst at equal size" (fun () ->
        let tree = X.max_contention (Cn_baselines.Diffracting.network 4) ~n:3 ~m:6 in
        let ours = X.max_contention (Cn_core.Counting.network ~w:4 ~t:4) ~n:3 ~m:6 in
        Alcotest.(check bool) "tree worse" true (tree > ours));
    Util.raises_invalid "state limit enforced" (fun () ->
        ignore
          (X.max_contention ~limit_states:10 (Cn_core.Counting.network ~w:8 ~t:8) ~n:6 ~m:18));
    Util.raises_invalid "bad concurrency" (fun () ->
        ignore (X.max_contention (Cn_core.Ladder.network 2) ~n:0 ~m:1));
  ]

let fairness =
  [
    tc "max_token_stalls at least the average" (fun () ->
        let net = Cn_core.Counting.network ~w:8 ~t:8 in
        let r = Cont.worst net ~n:32 ~m:320 in
        Alcotest.(check bool) "max >= avg" true
          (float_of_int r.Cont.max_token_stalls >= r.Cont.per_token));
    tc "park adversary starves its victim" (fun () ->
        (* The parked token of process 0 suffers far more stalls than the
           average token: stalls concentrate on the victim. *)
        let net = Cn_core.Counting.network ~w:8 ~t:8 in
        let r = Cont.measure net ~n:16 ~m:160 (Cn_sim.Scheduler.Park 1) in
        Alcotest.(check bool) "starved" true
          (float_of_int r.Cont.max_token_stalls > 2. *. r.Cont.per_token));
    tc "round robin on one process has zero token stalls" (fun () ->
        let net = Cn_core.Counting.network ~w:4 ~t:4 in
        let r = Cont.measure net ~n:1 ~m:20 Cn_sim.Scheduler.Round_robin in
        Alcotest.(check int) "none" 0 r.Cont.max_token_stalls);
  ]

let suite =
  [
    ("exhaustive.single", single_balancer);
    ("exhaustive.properties", properties);
    ("exhaustive.fairness", fairness);
  ]
