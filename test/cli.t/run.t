The countnet CLI, exercised end to end.

Structural statistics of the flagship network:

  $ countnet depth -f counting -w 16 -t 64
  input width   16
  output width  64
  depth         10
  balancers     224
  regular       false

The depth never depends on t (Theorem 4.1):

  $ countnet depth -f counting -w 16 -t 16 | grep depth
  depth         10

Verification, randomized and exhaustive:

  $ countnet verify -f counting -w 8 -t 24 --trials 200
  ok: 200 random loads produced step outputs

  $ countnet verify -f counting -w 4 -t 8 --exhaustive 5
  certified: step property on all 1296 loads with <= 5 tokens/wire

A butterfly is smoothing but not counting:

  $ countnet verify -f butterfly -w 8 --trials 300
  FAILED on 250/300 loads (not a counting network?)
  [1]

Drawing (the layer listing shows the irregular transition layer):

  $ countnet draw -f counting -w 4 -t 8 | head -n 8
  network 4 -> 8, size 8, depth 3
  layer 1:
    b0 (2,2)  <- [in0 in2]  -> [b2.0 b3.0]
    b1 (2,2)  <- [in1 in3]  -> [b2.1 b3.1]
  layer 2:
    b2 (2,4)  <- [b0.0 b1.0]  -> [b4.0 b5.1 b6.1 b7.1]
    b3 (2,4)  <- [b0.1 b1.1]  -> [b5.0 b6.0 b7.0 b4.1]
  layer 3:

Sequential counting, Fig. 1 style:

  $ countnet count -f counting -w 4 -t 8 --tokens 6
  token  0: in wire 0, out wire 0, counter value 0
  token  1: in wire 1, out wire 1, counter value 1
  token  2: in wire 2, out wire 2, counter value 2
  token  3: in wire 3, out wire 3, counter value 3
  token  4: in wire 0, out wire 4, counter value 4
  token  5: in wire 1, out wire 5, counter value 5

Sorting through the Section 7 comparator network:

  $ countnet sort -f counting -w 8 "9,2,5,1,8,3,7,4"
  input:  [9; 2; 5; 1; 8; 3; 7; 4]
  sorted: [1; 2; 3; 4; 5; 7; 8; 9]

The butterfly isomorphism of Lemma 5.3 is the bit-reversal permutation:

  $ countnet iso -f bbutterfly --against butterfly -w 8
  isomorphic
  pi_in:  [0; 4; 2; 6; 1; 5; 3; 7]
  pi_out: [0; 4; 2; 6; 1; 5; 3; 7]

Serialization round trip:

  $ countnet save -f counting -w 2 -t 4
  counting-network v1
  inputs 2
  balancer 0 2 4 0 : in0 in1
  outputs : b0.0 b0.1 b0.2 b0.3

  $ countnet save -f counting -w 4 -t 8 > net.cn
  $ countnet restore net.cn --trials 50
  loaded: 4 -> 8, size 8, depth 3
  step property held on 50/50 random loads (counting network)

The Aharonson-Attiya impossibility criterion:

  $ countnet feasible 6 --balancers 2
  impossible: prime 3 divides width 6 but none of the balancer outputs {2}
  [1]

  $ countnet feasible 6 --balancers 2,3
  width 6 passes the Aharonson-Attiya criterion for balancer outputs {2, 3}

Contention simulation is deterministic under a named strategy:

  $ countnet simulate -f counting -w 4 -t 4 -n 4 -m 40 --strategy round-robin | head -n 4
  strategy      round-robin
  tokens        40
  stalls        60
  stalls/token  1.500

Invalid parameters are rejected with a clear message:

  $ countnet depth -f counting -w 6 -t 6
  countnet: Counting.network: invalid parameters w=6 t=6
  [124]

Throughput arguments are validated before any domain is spawned:

  $ countnet throughput -f counting -w 4 --domains 0
  countnet throughput: --domains must be positive (got 0)
  [2]

  $ countnet throughput -f counting -w 4 --domains 2 --ops=-5
  countnet throughput: --ops must be positive (got -5)
  [2]

  $ countnet throughput -f counting -w 4 --domains 2 --ops 100 --batch 0
  countnet throughput: --batch must be positive (got 0)
  [2]

  $ countnet throughput -f counting -w 4 --validate frobnicate 2>&1 \
  >   | grep -c 'unknown policy "frobnicate"'
  1

The observability layer emits schema-versioned JSON (strict validation on):

  $ countnet throughput -f counting -w 16 --domains 4 --ops 500 --mode cas \
  >   --metrics --validate strict | grep -o '"schema_version": 1'
  "schema_version": 1

  $ countnet throughput -f counting -w 16 --domains 4 --ops 500 --metrics \
  >   | grep -c 'per_layer_stalls\|per_wire_exits\|latency'
  3

The combining service front-end: sessions, batching stats, strict drain:

  $ countnet throughput -f counting -w 8 --service --domains 2 --ops 300 \
  >   --validate strict | grep -c '^service: \|^combining: '
  2

With --metrics the report carries the service stats and the network snapshot:

  $ countnet throughput -f counting -w 8 --service --domains 2 --ops 200 \
  >   --dec-ratio 0.5 --skew zipf:1.2 --metrics --validate strict \
  >   | grep -c '"elimination_rate"\|"schema_version"'
  2

Service flags are validated before anything runs:

  $ countnet throughput -f counting -w 4 --service --domains 2 --ops 10 --max-batch 0
  countnet throughput: --max-batch must be positive (got 0)
  [2]

  $ countnet throughput -f counting -w 4 --domains 2 --ops 10 --max-batch 8
  countnet throughput: --max-batch requires --service or --fabric
  [2]

  $ countnet throughput -f counting -w 4 --domains 2 --ops 10 --dec-ratio 0.5
  countnet throughput: --dec-ratio requires --service
  [2]

  $ countnet throughput -f counting -w 4 --service --domains 2 --ops 10 --dec-ratio 1.5
  countnet throughput: --dec-ratio must be in [0, 1] (got 1.5)
  [2]

  $ countnet throughput -f counting -w 4 --service --domains 2 --ops 10 --skew zipf:0
  countnet throughput: --skew zipf exponent must be positive (got "0")
  [2]

  $ countnet throughput -f counting -w 4 --service --domains 2 --ops 10 --skew frob
  countnet throughput: unknown skew "frob" (expected uniform or zipf:ALPHA)
  [2]

  $ countnet throughput -f counting -w 4 --service --domains 2 --ops 10 --arrival burst:0:0.1
  countnet throughput: --arrival burst needs N >= 1 and PAUSE >= 0 (got "burst:0:0.1")
  [2]

  $ countnet throughput -f counting -w 4 --service --domains 2 --ops 10 --arrival sometimes
  countnet throughput: unknown arrival "sometimes" (expected closed[:THINK] or burst:N:PAUSE)
  [2]

  $ countnet throughput -f counting -w 4 --service --domains 2 --ops 10 --batch 4
  countnet throughput: --batch and --service/--fabric are mutually exclusive (they batch internally)
  [2]

  $ countnet throughput -f counting -w 4 --service --domains 2 --ops 10 --sessions 0
  countnet throughput: --sessions must be positive (got 0)
  [2]

The sharded fabric driver: N certified shards behind the consistent
ring, a summary line plus the per-shard table, and the global value
conserved (2 domains x 200 ops = 400):

  $ countnet throughput -f counting -w 4 --fabric --shards 2 --domains 2 \
  >   --ops 200 --validate strict | grep -c '^fabric: 2 shards, 2 domains x 200 ops = 400 completed\|^fabric value 400; shards: 0:C(4,4) gen 0'
  2

Fabric flags are validated before anything runs:

  $ countnet throughput -f counting -w 4 --domains 2 --ops 10 --shards 2
  countnet throughput: --shards requires --fabric
  [2]

  $ countnet throughput -f counting -w 4 --domains 2 --ops 10 --autotune
  countnet throughput: --autotune requires --fabric
  [2]

  $ countnet throughput -f counting -w 4 --service --fabric --domains 2 --ops 10
  countnet throughput: --service and --fabric are mutually exclusive (pick one front-end)
  [2]

  $ countnet throughput -f counting -w 4 --fabric --shards 0 --domains 2 --ops 10
  countnet throughput: --shards must be positive (got 0)
  [2]

  $ countnet throughput -f counting -w 4 --fabric --domains 2 --ops 10 --dec-ratio 0.5
  countnet throughput: --dec-ratio requires --service
  [2]

The approximate backend tiers behind Shared_counter.Custom: --backend
hll reports the distinct-count estimate against the true op count,
--backend sparse the exact global tally plus per-flow error, and
--backend exact is the default network driver spelled out:

  $ countnet throughput -f counting -w 4 --backend hll --domains 2 --ops 200 \
  >   | grep -c '^hll: estimate'
  1

  $ countnet throughput -f counting -w 4 --backend sparse --domains 2 --ops 200 \
  >   | grep -c '^sparse: global tally'
  1

  $ countnet throughput -f counting -w 4 --backend exact --domains 2 --ops 200 \
  >   | grep -c '^network: 2 domains x 200 ops'
  1

Backend flags are validated before anything runs:

  $ countnet throughput -f counting -w 4 --backend bogus --domains 2 --ops 10
  countnet throughput: unknown backend "bogus" (expected exact|hll|sparse)
  [2]

  $ countnet throughput -f counting -w 4 --backend hll --service --domains 2 --ops 10
  countnet throughput: --backend hll/sparse and --service/--fabric are mutually exclusive (the sketch tiers bypass the combining front-ends)
  [2]

  $ countnet throughput -f counting -w 4 --backend hll --metrics --domains 2 --ops 10
  countnet throughput: --metrics requires the exact backend (sketches have no network runtime)
  [2]

  $ countnet throughput -f counting -w 4 --backend sparse --projected --domains 2 --ops 10
  countnet throughput: --projected requires the exact backend (no network to project)
  [2]

The layer-pipelined batch driver: bare --pipeline picks the default
wavefront capacity, an explicit capacity is accepted, and the measured
line is the same shape as the plain drivers':

  $ countnet throughput -f counting -w 4 --domains 2 --ops 200 --pipeline \
  >   --validate strict | grep -c '^network: 2 domains x 200 ops = 400 ops'
  1

  $ countnet throughput -f counting -w 4 --domains 2 --ops 200 --pipeline 16 \
  >   --metrics --validate strict | grep -o '"schema_version": 1'
  "schema_version": 1

With --service it flips the combiner onto the pipelined drain:

  $ countnet throughput -f counting -w 8 --service --pipeline --domains 2 \
  >   --ops 200 --dec-ratio 0.5 --validate strict | grep -c '^service: \|^combining: '
  2

Pipeline flags are validated before anything runs:

  $ countnet throughput -f counting -w 4 --domains 2 --ops 10 --pipeline 0
  countnet throughput: --pipeline capacity must be positive (got 0)
  [2]

  $ countnet throughput -f counting -w 4 --domains 2 --ops 10 --batch 4 --pipeline 4
  countnet throughput: --batch and --pipeline are mutually exclusive (pick one batched driver)
  [2]

Contention-model projection: --projected appends calibrated projection
rows and the crossover line after the measured run (numbers are
host-dependent; check the shape):

  $ countnet throughput -f counting -w 8 -t 16 --domains 2 --ops 2000 --projected \
  >   | grep -c '^projected: crossing \|^  n=[248]: central \|^projected crossover: '
  5

  $ countnet throughput -f counting -w 4 --domains 2 --ops 1000 --projected \
  >   --stall-factor 4 | grep -c 'stall factor 4.0'
  1

  $ countnet throughput -f counting -w 4 --domains 2 --ops 10 --stall-factor 4
  countnet throughput: --stall-factor requires --projected or --autotune
  [2]

  $ countnet throughput -f counting -w 4 --domains 2 --ops 10 --projected --stall-factor 0
  countnet throughput: --stall-factor must be positive (got 0)
  [2]

Static certification: one family, full pass/fact report.

  $ countnet lint -f counting -w 4
  C(4,4)             ok   counting           exhaustive (max_tokens 4, 625 loads)
    shape/width: 4 -> 4
    shape/size: 6
    shape/depth: 3
    shape/regular: true
    shape/expected_depth: 3
    absint/conserves: true
    absint/uniform: true
    absint/abstract_smoothness: 2
    probe/loads: 9
    exhaustive/loads: 625
    escalate/skipped: bounded-exhaustive check was conclusive
    structural/equal: reference construction
    csr/layouts: padded-csr, unpadded-nested

The backward butterfly at full width certifies through the constructed
Lemma 5.3 mapping (the generic isomorphism search would exhaust its
budget here).

  $ countnet lint -f bbutterfly -w 64
  E(64)              ok   6-smoothing        by isomorphism (Lemma 5.3)
    shape/width: 64 -> 64
    shape/size: 192
    shape/depth: 6
    shape/regular: true
    shape/expected_depth: 6
    absint/conserves: true
    absint/uniform: true
    absint/abstract_smoothness: 6
    probe/loads: 9
    exhaustive/skipped: input space exceeds budget
    escalate/battery: <= 2 tokens on <= 2 wires
    escalate/loads: 2145
    structural/isomorphic: reference construction (Lemma 2.7)
    csr/layouts: padded-csr, unpadded-nested

Merger-substituted hybrids: a periodic3 merger inside C(8,8) is
certified bounded-exhaustively, referee-less (no theorem covers a
substituted merger, so structural evidence is unavailable by design).

  $ countnet lint -f counting -w 8 --merger periodic3
  C(8,8)[periodic3/all] ok   counting           exhaustive (max_tokens 2, 6561 loads)
    shape/width: 8 -> 8
    shape/size: 65
    shape/depth: 18
    shape/regular: true
    shape/expected_depth: 18
    absint/conserves: true
    absint/uniform: true
    absint/abstract_smoothness: 9
    probe/loads: 9
    exhaustive/loads: 6561
    escalate/skipped: bounded-exhaustive check was conclusive
    structural/skipped: no reference construction
    csr/layouts: padded-csr, unpadded-nested

A pk2 merging stage is refuted with a concrete, replayable load.  The
nonzero exit is the single-network verdict; inside the campaign a
refutation is an adjudicated result, not a failure.

  $ countnet lint -f merging -w 8 --delta 4 --merger pk2
  M(8,4)[pk2]        FAIL merging(delta=4)   refuted by load [3; 2; 2; 2; 2; 1; 1; 1]
    shape/width: 8 -> 8
    shape/size: 16
    shape/depth: 4
    shape/regular: true
    shape/expected_depth: 4
    absint/conserves: true
    absint/uniform: false
    probe/loads: 4
    ABS004 error [probe] M(8,4)[pk2]: load [3; 2; 2; 2; 2; 1; 1; 1] produces [2; 2; 2; 2; 2; 1; 1; 2], violating the merging(delta=4) property
    STEP002 error [exhaustive] M(8,4)[pk2]: refuted on load [1; 0; 0; 0; 1; 0; 0; 0] (checked up to 10 tokens per wire)
    escalate/skipped: merging loads are enumerable within budget
    structural/skipped: no reference construction
    csr/layouts: padded-csr, unpadded-nested
  [1]

Past the exhaustive budget the certificate cannot rest on the
inconclusive interval domain: the escalate pass runs the directed
two-token battery and refutes with a STEP003 counterexample.

  $ countnet lint -f counting -w 32 --merger periodic3 --merger-scope top 2>&1 | grep -c STEP003
  1

The whole campaign — every strategy x scope x size combination —
adjudicates in seconds: refuted hybrids carry pinned counterexamples.

  $ countnet lint --hybrids | tail -n 1
  57 hybrid certificates: 17 certified, 40 refuted with pinned counterexamples

Construction errors name the actual offending parameter values.

  $ countnet draw -f ladder -w 3
  countnet: Ladder.wires: width must be even and >= 2 (got w=3)
  [124]

  $ countnet draw -f bitonic -w 6
  countnet: Bitonic.network: width must be a power of two >= 2 (got w=6)
  [124]

  $ countnet draw -f periodic -w 12
  countnet: Periodic.network: width must be a power of two >= 2 (got w=12)
  [124]

  $ countnet draw -f bitonic -w 8 --merger periodic3
  countnet: --merger applies to the counting and merging families only
  [124]

The seeded mutant battery: every mutant must be rejected, with pinned
diagnostics (this output is the certification of the lint itself).

  $ countnet lint --mutate
  drop-balancer      expect NET005, got [NET005; NET007] — rejected
  duplicate-wire     expect NET006, got [NET007; NET006] — rejected
  unconsumed-input   expect NET007, got [NET007] — rejected
  arity-corrupt      expect NET002, got [NET002] — rejected
  init-out-of-range  expect NET003, got [NET003] — rejected
  feeds-truncate     expect NET004, got [NET004; NET007] — rejected
  self-loop          expect NET009, got [NET007; NET006; NET009] — rejected
  output-swap        expect ABS004, got [ABS004; STEP002; STEP001] — rejected
  wire-flip          expect STEP002, got [ABS004; STEP002; STEP001] — rejected
  init-corrupt       expect ABS004, got [ABS004; STEP002; STEP001] — rejected
  pad-layer          expect ABS003, got [ABS003; STEP001] — rejected
  periodic-wire-flip expect ABS004, got [ABS004; STEP002] — rejected
  periodic-init-corrupt expect STEP002, got [STEP002] — rejected
  periodic-dropped-round expect ABS003, got [ABS003] — rejected
  periodic-strategy-swap expect ABS003, got [ABS003; ABS004; STEP002] — rejected
  csr-truncate-row   expect CSR001, got [CSR001] — rejected
  csr-mask-corrupt   expect CSR002, got [CSR002] — rejected
  csr-dangling       expect CSR003, got [CSR003; CSR005] — rejected
  csr-rewire         expect CSR009, got [CSR009] — rejected
  csr-entry-corrupt  expect CSR006, got [CSR006; CSR004] — rejected
  csr-init-corrupt   expect CSR007, got [CSR007] — rejected
  csr-width          expect CSR008, got [CSR008] — rejected
  csr-nested-diverge expect CSR005, got [CSR005] — rejected
  csr-route-strategy expect CSR010, got [CSR010] — rejected
  csr-route-shift    expect CSR010, got [CSR010] — rejected
  csr-strategy-diverge expect CSR010, got [CSR010] — rejected
  csr-drop-output    expect CSR004, got [CSR009; CSR004] — rejected
  27 mutants, all rejected

Serialized networks get the full well-formedness diagnosis, every
violation reported with its pinned code.

  $ printf 'counting-network v1\ninputs 2\noutputs : in0 in0\n' > bad.net
  $ countnet lint --file bad.net
  NET006 error [wellformed] bad.net: network input 0 consumed 2 times
  NET007 error [wellformed] bad.net: network input 1 is never consumed
  [1]
