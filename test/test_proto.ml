(* Tests for the countnetd wire layer (Cn_proto): frame codec under
   arbitrary byte splits, hostile-input rejection, the loopback TCP
   server mapped onto service sessions, and the satellite regressions
   (Workload.session_cdf clamping, Harness calibration overflow,
   busy-time accounting). *)

module F = Cn_proto.Frame
module Server = Cn_proto.Server
module Client = Cn_proto.Client
module Load = Cn_proto.Load
module Svc = Cn_service.Service
module W = Cn_service.Workload
module H = Cn_runtime.Harness
module M = Cn_runtime.Metrics
module V = Cn_runtime.Validator

let tc name f = Alcotest.test_case name `Quick f
let net44 () = Cn_core.Counting.network ~w:4 ~t:4
let net1616 () = Cn_core.Counting.network ~w:16 ~t:16

let frame = Alcotest.testable F.pp ( = )

let sample_frames =
  [
    F.Request F.Inc;
    F.Request F.Dec;
    F.Request F.Read;
    F.Request F.Drain;
    F.Request F.Stats;
    F.Response (F.Value 0);
    F.Response (F.Value 123456789);
    F.Response (F.Value (-42));
    F.Response (F.Value max_int);
    F.Response (F.Value min_int);
    F.Response F.Overloaded;
    F.Response F.Closed;
    F.Response (F.Drained { ok = true; summary = "all checks passed" });
    F.Response (F.Drained { ok = false; summary = "" });
    F.Response (F.Stats_reply "{\"connections\": 3}");
    F.Response (F.Error_reply { code = F.Bad_magic; message = "nope" });
    F.Response (F.Error_reply { code = F.Too_large; message = "" });
  ]

(* Feed [wire] to a fresh decoder in chunks of [chunk] bytes and pull
   everything; returns (frames, leftover event). *)
let decode_chunked ?max_payload wire chunk =
  let d = F.decoder ?max_payload () in
  let out = ref [] in
  let corrupt = ref None in
  let n = String.length wire in
  let off = ref 0 in
  while !off < n && !corrupt = None do
    let len = min chunk (n - !off) in
    F.feed d (Bytes.of_string wire) ~off:!off ~len;
    off := !off + len;
    let draining = ref true in
    while !draining do
      match F.next d with
      | F.Frame f -> out := f :: !out
      | F.Need_more -> draining := false
      | F.Corrupt _ as e ->
          corrupt := Some e;
          draining := false
    done
  done;
  (List.rev !out, !corrupt, d)

let wire_of frames = String.concat "" (List.map F.to_string frames)

let codec =
  [
    tc "every frame kind round-trips" (fun () ->
        List.iter
          (fun f ->
            let got, corrupt, _ = decode_chunked (F.to_string f) 4096 in
            Alcotest.(check bool) "no corruption" true (corrupt = None);
            Alcotest.(check (list frame)) "roundtrip" [ f ] got)
          sample_frames);
    tc "pipelined frames come back one next at a time" (fun () ->
        let d = F.decoder () in
        let wire = wire_of sample_frames in
        F.feed d (Bytes.of_string wire) ~off:0 ~len:(String.length wire);
        List.iter
          (fun expect ->
            match F.next d with
            | F.Frame f -> Alcotest.check frame "in order" expect f
            | _ -> Alcotest.fail "expected a frame")
          sample_frames;
        Alcotest.(check bool) "then Need_more" true (F.next d = F.Need_more);
        Alcotest.(check int) "nothing buffered" 0 (F.buffered d));
    tc "decoding is split-invariant at every chunk size" (fun () ->
        let wire = wire_of sample_frames in
        for chunk = 1 to min 64 (String.length wire) do
          let got, corrupt, _ = decode_chunked wire chunk in
          Alcotest.(check bool)
            (Printf.sprintf "chunk %d clean" chunk)
            true (corrupt = None);
          Alcotest.(check (list frame))
            (Printf.sprintf "chunk %d frames" chunk)
            sample_frames got
        done);
    tc "split at every two-chunk boundary" (fun () ->
        let wire = wire_of [ F.Request F.Inc; F.Response (F.Value (-7)) ] in
        let n = String.length wire in
        for cut = 0 to n do
          let d = F.decoder () in
          F.feed d (Bytes.of_string wire) ~off:0 ~len:cut;
          F.feed d (Bytes.of_string wire) ~off:cut ~len:(n - cut);
          (match F.next d with
          | F.Frame f -> Alcotest.check frame "first" (F.Request F.Inc) f
          | _ -> Alcotest.failf "cut %d: expected first frame" cut);
          (match F.next d with
          | F.Frame f -> Alcotest.check frame "second" (F.Response (F.Value (-7))) f
          | _ -> Alcotest.failf "cut %d: expected second frame" cut);
          Alcotest.(check int) "drained" 0 (F.buffered d)
        done);
    tc "truncated frame never yields and never over-reads" (fun () ->
        let wire = F.to_string (F.Response (F.Drained { ok = true; summary = "x" })) in
        for keep = 0 to String.length wire - 1 do
          let d = F.decoder () in
          F.feed d (Bytes.of_string wire) ~off:0 ~len:keep;
          Alcotest.(check bool)
            (Printf.sprintf "prefix %d is Need_more" keep)
            true
            (F.next d = F.Need_more);
          Alcotest.(check int) "buffers only what was fed" keep (F.buffered d)
        done);
    tc "feed range checks" (fun () ->
        let d = F.decoder () in
        let b = Bytes.create 4 in
        List.iter
          (fun (off, len) ->
            match F.feed d b ~off ~len with
            | exception Invalid_argument _ -> ()
            | () -> Alcotest.failf "feed ~off:%d ~len:%d accepted" off len)
          [ (-1, 1); (0, -1); (2, 3); (5, 0) ]);
    Util.raises_invalid "decoder rejects max_payload below the header" (fun () ->
        ignore (F.decoder ~max_payload:2 ()));
  ]

let expect_corrupt name wire code =
  tc name (fun () ->
      let got, corrupt, d = decode_chunked wire 4096 in
      Alcotest.(check (list frame)) "no frames accepted" [] got;
      (match corrupt with
      | Some (F.Corrupt { code = c; _ }) ->
          Alcotest.(check string)
            "error code" (F.error_code_to_string code) (F.error_code_to_string c)
      | _ -> Alcotest.fail "expected Corrupt");
      (* Terminal: stays corrupt, drops backlog, ignores later feeds. *)
      (match F.next d with
      | F.Corrupt _ -> ()
      | _ -> Alcotest.fail "poison must be sticky");
      let good = F.to_string (F.Request F.Inc) in
      F.feed d (Bytes.of_string good) ~off:0 ~len:(String.length good);
      (match F.next d with
      | F.Corrupt _ -> ()
      | _ -> Alcotest.fail "poisoned decoder must ignore later input");
      Alcotest.(check int) "backlog dropped" 0 (F.buffered d))

(* Hand-build a wire image: length prefix + raw payload bytes. *)
let raw ~len payload =
  let b = Buffer.create 16 in
  Buffer.add_char b (Char.chr ((len lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((len lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((len lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (len land 0xff));
  Buffer.add_string b payload;
  Buffer.contents b

let hostile =
  [
    expect_corrupt "oversized length prefix is rejected from 4 bytes"
      (raw ~len:(F.default_max_payload + 1) "")
      F.Too_large;
    expect_corrupt "huge u32 length cannot force buffering"
      (raw ~len:0xFFFFFFFF "")
      F.Too_large;
    expect_corrupt "length below the header is rejected" (raw ~len:2 "\xC7\x01") F.Bad_body;
    expect_corrupt "garbage magic" (raw ~len:3 "\x00\x01\x01") F.Bad_magic;
    expect_corrupt "unknown version" (raw ~len:3 "\xC7\x63\x01") F.Bad_version;
    expect_corrupt "unknown opcode" (raw ~len:3 "\xC7\x01\x7F") F.Bad_opcode;
    expect_corrupt "inc with a body is malformed" (raw ~len:4 "\xC7\x01\x01x") F.Bad_body;
    expect_corrupt "value with short body is malformed"
      (raw ~len:7 "\xC7\x01\x81zzzz")
      F.Bad_body;
    expect_corrupt "drained ok byte outside {0,1}"
      (raw ~len:4 "\xC7\x01\x84\x02")
      F.Bad_body;
    expect_corrupt "error reply with unknown code byte"
      (raw ~len:4 "\xC7\x01\x86\x09")
      F.Bad_body;
    tc "oversized frame respects a custom cap" (fun () ->
        let wire = raw ~len:64 ("\xC7\x01\x85" ^ String.make 61 'j') in
        let _, corrupt, _ = decode_chunked ~max_payload:32 wire 4096 in
        match corrupt with
        | Some (F.Corrupt { code = F.Too_large; _ }) -> ()
        | _ -> Alcotest.fail "expected Too_large under the 32-byte cap");
  ]

(* Random well-formed frame streams, random split points: the decoder
   must return exactly the encoded frames whatever the chunking. *)
let gen_frames =
  QCheck2.Gen.(
    list_size (int_range 1 12)
      (oneof
         [
           oneofl
             [ F.Request F.Inc; F.Request F.Dec; F.Request F.Read; F.Request F.Stats ];
           map (fun v -> F.Response (F.Value v)) int;
           map
             (fun s -> F.Response (F.Drained { ok = true; summary = s }))
             (string_size ~gen:printable (int_range 0 40));
           map (fun s -> F.Response (F.Stats_reply s)) (string_size (int_range 0 64));
         ]))

let fuzz =
  [
    Util.qtest ~count:300 "fuzz: split-invariant decoding"
      QCheck2.Gen.(pair gen_frames (int_range 1 17))
      (fun (frames, chunk) ->
        let got, corrupt, _ = decode_chunked (wire_of frames) chunk in
        corrupt = None && got = frames);
    Util.qtest ~count:300 "fuzz: random garbage never crashes or blocks"
      QCheck2.Gen.(string_size (int_range 0 200))
      (fun junk ->
        let d = F.decoder () in
        F.feed d (Bytes.of_string junk) ~off:0 ~len:(String.length junk);
        let rec drain n =
          if n > 300 then false (* must reach Need_more or Corrupt *)
          else
            match F.next d with
            | F.Frame _ -> drain (n + 1)
            | F.Need_more | F.Corrupt _ -> true
        in
        drain 0);
  ]

(* ---------------------------------------------------------------- *)
(* Satellite regressions. *)

let satellite =
  [
    Util.qtest ~count:300 "session_cdf: monotone, bounded, ends at exactly 1.0"
      QCheck2.Gen.(
        pair (int_range 1 96)
          (oneof [ return None; map (fun a -> Some (0.05 +. (4. *. a))) (float_bound_inclusive 1.) ]))
      (fun (n, alpha) ->
        let skew = match alpha with None -> W.Uniform | Some a -> W.Zipf a in
        let cdf = W.session_cdf skew n in
        Array.length cdf = n
        && cdf.(n - 1) = 1.0
        && Array.for_all (fun p -> p >= 0. && p <= 1.) cdf
        &&
        let mono = ref true in
        for i = 1 to n - 1 do
          if cdf.(i) < cdf.(i - 1) then mono := false
        done;
        !mono);
    tc "session_cdf: high-alpha Zipf rounding residue is clamped" (fun () ->
        (* Steep exponents concentrate the mass and leave the largest
           float residue on the tail — exactly the case the clamp is
           for; before the fix this could sit strictly below 1.0. *)
        List.iter
          (fun (n, a) ->
            let cdf = W.session_cdf (W.Zipf a) n in
            Alcotest.(check (float 0.)) (Printf.sprintf "w=%d a=%g" n a) 1.0 cdf.(n - 1))
          [ (3, 1.1); (7, 0.9); (33, 2.5); (64, 3.7); (96, 0.3) ]);
    Util.qtest ~count:500 "pick always lands in range and can reach the last session"
      QCheck2.Gen.(pair (int_range 1 32) (int_range 0 10_000))
      (fun (n, seed) ->
        let rng = Random.State.make [| seed |] in
        let cdf = W.session_cdf (W.Zipf 1.2) n in
        let hit_last = ref (n = 1) in
        let ok = ref true in
        for _ = 1 to 200 do
          let i = W.pick rng cdf in
          if i < 0 || i >= n then ok := false;
          if i = n - 1 then hit_last := true
        done;
        !ok && (n > 8 || !hit_last));
    tc "next_calibration_ops: doubles until the cap" (fun () ->
        Alcotest.(check (option int))
          "1 -> 2" (Some 2)
          (H.next_calibration_ops ~domains:4 ~ops_per_domain:1);
        Alcotest.(check (option int))
          "just under the cap still doubles"
          (Some (2 * (H.max_calibration_ops - 1)))
          (H.next_calibration_ops ~domains:1 ~ops_per_domain:(H.max_calibration_ops - 1));
        Alcotest.(check (option int))
          "at the cap stops" None
          (H.next_calibration_ops ~domains:1 ~ops_per_domain:H.max_calibration_ops));
    tc "next_calibration_ops: near max_int nothing overflows" (fun () ->
        (* The old guard computed ops*2 first; ops > max_int/2 made the
           product wrap negative and the comparison nonsense.  Every
           case below must return None, not a wrapped Some. *)
        List.iter
          (fun (domains, ops) ->
            Alcotest.(check (option int))
              (Printf.sprintf "domains=%d ops near max_int" domains)
              None
              (H.next_calibration_ops ~domains ~ops_per_domain:ops))
          [
            (1, max_int); (2, max_int - 1); (1, (max_int / 2) + 1);
            (max_int, 1); (max_int / 2, 4);
          ]);
    tc "next_calibration_ops: overflow-bounded doubling below the cap" (fun () ->
        (* domains large enough that doubling once more would overflow
           the total: must stop rather than wrap. *)
        let domains = max_int / H.max_calibration_ops in
        match H.next_calibration_ops ~domains ~ops_per_domain:(H.max_calibration_ops / 2) with
        | None -> ()
        | Some ops ->
            Alcotest.(check bool)
              "returned total stays representable" true
              (ops > 0 && domains <= max_int / ops));
    tc "workload busy-time accounting separates injected idle" (fun () ->
        let svc = Svc.create (net44 ()) in
        let spec =
          {
            W.default with
            W.domains = 2;
            ops_per_domain = 20;
            arrival = W.Closed 0.002;
          }
        in
        let st = W.run svc spec in
        ignore (Svc.shutdown ~policy:V.Off svc);
        Alcotest.(check bool)
          "slept time excluded" true
          (st.W.busy_seconds < st.W.seconds);
        Alcotest.(check bool)
          "busy rate at least the wall rate" true
          (st.W.busy_ops_per_sec >= st.W.ops_per_sec);
        Alcotest.(check bool) "busy_seconds nonnegative" true (st.W.busy_seconds >= 0.));
    tc "reservoir: keeps everything under capacity, caps over it" (fun () ->
        let r = M.Reservoir.create ~capacity:8 () in
        for i = 1 to 5 do
          M.Reservoir.add r i
        done;
        Alcotest.(check int) "observed" 5 (M.Reservoir.observed r);
        Alcotest.(check int) "kept" 5 (M.Reservoir.kept r);
        for i = 6 to 1000 do
          M.Reservoir.add r i
        done;
        Alcotest.(check int) "observed all" 1000 (M.Reservoir.observed r);
        Alcotest.(check int) "kept capacity" 8 (M.Reservoir.kept r);
        match M.reservoir_summary [ r ] with
        | None -> Alcotest.fail "summary expected"
        | Some l ->
            Alcotest.(check int) "summary observed" 1000 l.M.observed;
            Alcotest.(check int) "summary kept" 8 l.M.kept;
            Alcotest.(check bool) "percentiles within range" true
              (l.M.p50 >= 1. && l.M.max <= 1000.));
    Util.raises_invalid "reservoir rejects capacity 0" (fun () ->
        ignore (M.Reservoir.create ~capacity:0 ()));
  ]

(* ---------------------------------------------------------------- *)
(* Loopback server. *)

let with_server ?(net = net44) ?queue f =
  let svc = Svc.create ?queue ~validate:V.Strict (net ()) in
  let server = Server.start svc in
  Fun.protect
    ~finally:(fun () ->
      match Server.stop ~policy:V.Off server with
      | _ -> ()
      | exception _ -> ())
    (fun () -> f server)

let connect server = Client.connect ~port:(Server.port server) ()

let server_tests =
  [
    tc "inc/dec/read over the wire" (fun () ->
        with_server (fun server ->
            let c = connect server in
            Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
            for expect = 0 to 9 do
              match Client.increment c with
              | Ok v -> Alcotest.(check int) "fetch&inc" expect v
              | Error _ -> Alcotest.fail "unexpected refusal"
            done;
            Alcotest.(check int) "read sees the tokens" 10 (Client.read c);
            (match Client.decrement c with
            | Ok v -> Alcotest.(check bool) "dec hands back a taken value" true (v >= 0 && v < 10)
            | Error _ -> Alcotest.fail "unexpected refusal");
            Alcotest.(check int) "net count after dec" 9 (Client.read c)));
    tc "concurrent clients count without duplicates" (fun () ->
        with_server ~net:net1616 (fun server ->
            let per = 50 and threads = 4 in
            let got = Array.make (per * threads) 0 in
            let ts =
              Array.init threads (fun _ ->
                  Thread.create
                    (fun () ->
                      let c = connect server in
                      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
                      for _ = 1 to per do
                        match Client.increment c with
                        | Ok v -> got.(v) <- got.(v) + 1
                        | Error _ -> ()
                      done)
                    ())
            in
            Array.iter Thread.join ts;
            (* Quiescently consistent Fetch&Increment: all handed-out
               values distinct, forming exactly 0..n-1. *)
            Alcotest.(check bool)
              "every value handed out exactly once" true
              (Array.for_all (fun k -> k = 1) got)));
    tc "drain over the wire validates and re-admits" (fun () ->
        with_server (fun server ->
            let c = connect server in
            Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
            for _ = 1 to 5 do
              ignore (Client.increment c)
            done;
            let ok, summary = Client.drain c in
            Alcotest.(check bool) ("drain verdict: " ^ summary) true ok;
            (match Client.increment c with
            | Ok _ -> ()
            | Error _ -> Alcotest.fail "service must re-admit after drain")));
    tc "stats reply is JSON with server and service sections" (fun () ->
        with_server (fun server ->
            let c = connect server in
            Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
            ignore (Client.increment c);
            let json = Client.stats c in
            let contains needle =
              let nl = String.length needle and hl = String.length json in
              let rec go i = i + nl <= hl && (String.sub json i nl = needle || go (i + 1)) in
              go 0
            in
            List.iter
              (fun needle ->
                Alcotest.(check bool)
                  (Printf.sprintf "stats carries %S" needle)
                  true (contains needle))
              [ "\"server\""; "\"connections\""; "\"value\""; "\"report\"" ]));
    tc "a framing error gets an error reply and only kills that connection" (fun () ->
        with_server (fun server ->
            let good = connect server in
            Fun.protect ~finally:(fun () -> Client.close good) @@ fun () ->
            ignore (Client.increment good);
            (* Hand-roll a bad frame on a second connection. *)
            let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
            Unix.connect fd
              (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", Server.port server));
            let junk = raw ~len:3 "\x00\x01\x01" in
            ignore (Unix.write fd (Bytes.of_string junk) 0 (String.length junk));
            (* The server answers Error_reply then closes: read until EOF
               and decode what came back. *)
            let d = F.decoder () in
            let buf = Bytes.create 256 in
            let rec slurp acc =
              match Unix.read fd buf 0 256 with
              | 0 -> acc
              | n ->
                  F.feed d buf ~off:0 ~len:n;
                  slurp acc
              | exception Unix.Unix_error _ -> acc
            in
            ignore (slurp ());
            (match F.next d with
            | F.Frame (F.Response (F.Error_reply { code = F.Bad_magic; _ })) -> ()
            | _ -> Alcotest.fail "expected a Bad_magic error reply");
            Unix.close fd;
            (* The well-behaved connection is unaffected. *)
            match Client.increment good with
            | Ok _ -> ()
            | Error _ -> Alcotest.fail "good connection must survive"));
    tc "connection churn: sessions outnumber connections harmlessly" (fun () ->
        with_server ~net:net1616 (fun server ->
            for _ = 1 to 30 do
              let c = connect server in
              ignore (Client.increment c);
              Client.close c
            done;
            let c = connect server in
            Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
            Alcotest.(check int) "value survived the churn" 30 (Client.read c);
            Alcotest.(check bool) "accepted counts churn" true (Server.accepted server >= 31)));
    tc "graceful stop: Strict quiescent drain, clients see EOF" (fun () ->
        let svc = Svc.create ~validate:V.Strict (net44 ()) in
        let server = Server.start svc in
        let c = connect server in
        for _ = 1 to 8 do
          ignore (Client.increment c)
        done;
        Server.request_stop server;
        let report = Server.stop ~policy:V.Strict server in
        Alcotest.(check bool) "strict drain passed" true (V.passed report);
        (match Client.increment c with
        | exception Client.Disconnected -> ()
        | Ok _ -> Alcotest.fail "server gone; increment cannot succeed"
        | Error `Closed -> ()
        | Error `Overloaded -> Alcotest.fail "unexpected Overloaded");
        Client.close c;
        (* stop is idempotent and returns the memoized report. *)
        let again = Server.stop ~policy:V.Strict server in
        Alcotest.(check bool) "same verdict" (V.passed report) (V.passed again));
    tc "load rig against a live server, with decrements" (fun () ->
        with_server ~net:net1616 (fun server ->
            let spec =
              {
                Load.default with
                Load.clients = 2;
                conns_per_client = 2;
                ops_per_client = 150;
                dec_ratio = 0.3;
                skew = W.Zipf 1.1;
              }
            in
            let st = Load.run ~port:(Server.port server) spec in
            Alcotest.(check int) "nothing lost" 300 st.Load.completed;
            Alcotest.(check int) "no disconnects" 0 st.Load.disconnects;
            Alcotest.(check int)
              "inc/dec split covers everything" 300
              (st.Load.increments + st.Load.decrements);
            (match st.Load.latency with
            | Some l ->
                Alcotest.(check bool) "latency sane" true (l.M.p50 > 0. && l.M.p99 >= l.M.p50);
                Alcotest.(check int) "every op observed" 300 l.M.observed
            | None -> Alcotest.fail "expected a latency summary");
            let c = connect server in
            Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
            Alcotest.(check int)
              "token conservation over the wire"
              (st.Load.increments - st.Load.decrements)
              (Client.read c)));
    tc "mid-load stop: rig survives, drain stays quiescent" (fun () ->
        let svc = Svc.create ~validate:V.Strict (net1616 ()) in
        let server = Server.start svc in
        let spec =
          {
            Load.default with
            Load.clients = 2;
            conns_per_client = 2;
            ops_per_client = 5_000;
            arrival = W.Closed 0.0002;
          }
        in
        let stats = ref None in
        let rig = Thread.create (fun () -> stats := Some (Load.run ~port:(Server.port server) spec)) () in
        Thread.delay 0.05;
        let report = Server.stop ~policy:V.Strict server in
        Thread.join rig;
        Alcotest.(check bool) "strict mid-load drain passed" true (V.passed report);
        match !stats with
        | None -> Alcotest.fail "rig must return stats"
        | Some st ->
            Alcotest.(check bool) "rig observed the shutdown" true
              (st.Load.disconnects > 0 || st.Load.closed > 0);
            Alcotest.(check bool) "rig made progress first" true (st.Load.completed > 0));
  ]

let suite =
  [
    ("proto codec", codec);
    ("proto hostile input", hostile);
    ("proto fuzz", fuzz);
    ("proto satellites", satellite);
    ("proto server", server_tests);
  ]
