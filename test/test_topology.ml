(* Unit tests for Cn_network.Topology and Builder: structural invariants,
   validation failures, combinators. *)

module T = Cn_network.Topology
module B = Cn_network.Balancer
module Builder = Cn_network.Builder
module P = Cn_network.Permutation
module E = Cn_network.Eval

let tc name f = Alcotest.test_case name `Quick f
let check_int = Alcotest.(check int)

let bal22 = B.make ~fan_in:2 ~fan_out:2 ()

(* A single (2,2)-balancer as a network. *)
let one_balancer () =
  T.create ~input_width:2 ~balancers:[| bal22 |]
    ~feeds:[| [| T.Net_input 0; T.Net_input 1 |] |]
    ~outputs:[| T.Bal_output { bal = 0; port = 0 }; T.Bal_output { bal = 0; port = 1 } |]

let construction =
  [
    tc "single balancer" (fun () ->
        let net = one_balancer () in
        check_int "w" 2 (T.input_width net);
        check_int "t" 2 (T.output_width net);
        check_int "size" 1 (T.size net);
        check_int "depth" 1 (T.depth net));
    tc "identity network" (fun () ->
        let net = T.identity 3 in
        check_int "w" 3 (T.input_width net);
        check_int "depth" 0 (T.depth net);
        Alcotest.check Util.seq "passthrough" [| 4; 5; 6 |] (E.quiescent net [| 4; 5; 6 |]));
    Util.raises_invalid "identity non-positive" (fun () -> T.identity 0);
    tc "is_regular" (fun () ->
        Alcotest.(check bool) "regular" true (T.is_regular (one_balancer ())));
    tc "irregular network flagged" (fun () ->
        let b26 = B.make ~fan_in:2 ~fan_out:6 () in
        let net =
          T.create ~input_width:2 ~balancers:[| b26 |]
            ~feeds:[| [| T.Net_input 0; T.Net_input 1 |] |]
            ~outputs:(Array.init 6 (fun port -> T.Bal_output { bal = 0; port }))
        in
        Alcotest.(check bool) "regular" false (T.is_regular net));
  ]

let validation =
  [
    Util.raises_invalid "input consumed twice" (fun () ->
        T.create ~input_width:1 ~balancers:[| bal22 |]
          ~feeds:[| [| T.Net_input 0; T.Net_input 0 |] |]
          ~outputs:
            [| T.Bal_output { bal = 0; port = 0 }; T.Bal_output { bal = 0; port = 1 } |]);
    Util.raises_invalid "input never consumed" (fun () ->
        T.create ~input_width:3 ~balancers:[| bal22 |]
          ~feeds:[| [| T.Net_input 0; T.Net_input 1 |] |]
          ~outputs:
            [| T.Bal_output { bal = 0; port = 0 }; T.Bal_output { bal = 0; port = 1 } |]);
    Util.raises_invalid "balancer output dangling" (fun () ->
        T.create ~input_width:2 ~balancers:[| bal22 |]
          ~feeds:[| [| T.Net_input 0; T.Net_input 1 |] |]
          ~outputs:[| T.Bal_output { bal = 0; port = 0 } |]);
    Util.raises_invalid "balancer output consumed twice" (fun () ->
        T.create ~input_width:2 ~balancers:[| bal22 |]
          ~feeds:[| [| T.Net_input 0; T.Net_input 1 |] |]
          ~outputs:
            [| T.Bal_output { bal = 0; port = 0 }; T.Bal_output { bal = 0; port = 0 } |]);
    Util.raises_invalid "wrong arity feeds" (fun () ->
        T.create ~input_width:2 ~balancers:[| bal22 |]
          ~feeds:[| [| T.Net_input 0 |] |]
          ~outputs:
            [| T.Bal_output { bal = 0; port = 0 }; T.Bal_output { bal = 0; port = 1 } |]);
    Util.raises_invalid "unknown balancer reference" (fun () ->
        T.create ~input_width:2 ~balancers:[| bal22 |]
          ~feeds:[| [| T.Net_input 0; T.Bal_output { bal = 7; port = 0 } |] |]
          ~outputs:
            [| T.Bal_output { bal = 0; port = 0 }; T.Bal_output { bal = 0; port = 1 };
               T.Net_input 1 |]);
    Util.raises_invalid "port out of range" (fun () ->
        T.create ~input_width:2 ~balancers:[| bal22 |]
          ~feeds:[| [| T.Net_input 0; T.Net_input 1 |] |]
          ~outputs:
            [| T.Bal_output { bal = 0; port = 0 }; T.Bal_output { bal = 0; port = 5 } |]);
    Util.raises_invalid "cycle detected" (fun () ->
        (* Two balancers feeding each other. *)
        T.create ~input_width:2 ~balancers:[| bal22; bal22 |]
          ~feeds:
            [|
              [| T.Net_input 0; T.Bal_output { bal = 1; port = 0 } |];
              [| T.Net_input 1; T.Bal_output { bal = 0; port = 0 } |];
            |]
          ~outputs:
            [| T.Bal_output { bal = 0; port = 1 }; T.Bal_output { bal = 1; port = 1 } |]);
    Util.raises_invalid "no outputs" (fun () ->
        T.create ~input_width:1 ~balancers:[||] ~feeds:[||] ~outputs:[||]);
    Util.raises_invalid "non-positive input width" (fun () ->
        T.create ~input_width:0 ~balancers:[||] ~feeds:[||] ~outputs:[||]);
  ]

let structure =
  [
    tc "depth and layers of cascade" (fun () ->
        let net = T.cascade (one_balancer ()) (one_balancer ()) in
        check_int "depth" 2 (T.depth net);
        let layers = T.layers net in
        check_int "n layers" 2 (Array.length layers);
        check_int "layer 1 size" 1 (Array.length layers.(0));
        check_int "layer 2 size" 1 (Array.length layers.(1)));
    tc "parallel widens" (fun () ->
        let net = T.parallel (one_balancer ()) (one_balancer ()) in
        check_int "w" 4 (T.input_width net);
        check_int "t" 4 (T.output_width net);
        check_int "depth" 1 (T.depth net);
        check_int "size" 2 (T.size net));
    Util.raises_invalid "cascade width mismatch" (fun () ->
        T.cascade (one_balancer ()) (T.identity 3));
    tc "cascade behaves as composition" (fun () ->
        let l4 = Cn_core.Ladder.network 4 in
        let net = T.cascade l4 l4 in
        let x = [| 5; 1; 2; 2 |] in
        Alcotest.check Util.seq "compose" (E.quiescent l4 (E.quiescent l4 x))
          (E.quiescent net x));
    tc "layers partition balancers" (fun () ->
        let net = Cn_core.Counting.network ~w:8 ~t:8 in
        let total = Array.fold_left (fun acc l -> acc + Array.length l) 0 (T.layers net) in
        check_int "partition" (T.size net) total);
    tc "balancer_depth consistent with layers" (fun () ->
        let net = Cn_core.Counting.network ~w:8 ~t:16 in
        Array.iteri
          (fun li layer ->
            Array.iter (fun b -> check_int "depth" (li + 1) (T.balancer_depth net b)) layer)
          (T.layers net));
    tc "topo_order respects dependencies" (fun () ->
        let net = Cn_core.Counting.network ~w:8 ~t:8 in
        let pos = Array.make (T.size net) (-1) in
        Array.iteri (fun i b -> pos.(b) <- i) (T.topo_order net);
        Array.iteri
          (fun b feeds ->
            Array.iter
              (function
                | T.Bal_output { bal; _ } ->
                    Alcotest.(check bool) "producer first" true (pos.(bal) < pos.(b))
                | T.Net_input _ -> ())
              feeds)
          (Array.init (T.size net) (T.feeds net)));
    tc "consumer round trip" (fun () ->
        let net = one_balancer () in
        (match T.consumer net (T.Net_input 0) with
        | T.Bal_input { bal = 0; port = 0 } -> ()
        | _ -> Alcotest.fail "wrong consumer");
        match T.consumer net (T.Bal_output { bal = 0; port = 1 }) with
        | T.Net_output 1 -> ()
        | _ -> Alcotest.fail "wrong consumer");
  ]

let permuting =
  [
    tc "permute_inputs reroutes tokens" (fun () ->
        let net = T.identity 3 in
        let p = P.of_array [| 1; 2; 0 |] in
        let net' = T.permute_inputs p net in
        (* Wire pi(i) of net' behaves like wire i of net: token entering
           net' on wire 1 exits where net's wire 0 led, i.e. output 0. *)
        Alcotest.check Util.seq "routed" [| 7; 0; 0 |] (E.quiescent net' [| 0; 7; 0 |]));
    tc "permute_outputs relabels outputs" (fun () ->
        let net = T.identity 3 in
        let p = P.of_array [| 1; 2; 0 |] in
        let net' = T.permute_outputs p net in
        Alcotest.check Util.seq "relabelled" [| 9; 7; 8 |] (E.quiescent net' [| 7; 8; 9 |]));
    Util.raises_invalid "permute_inputs size mismatch" (fun () ->
        T.permute_inputs (P.identity 2) (T.identity 3));
    Util.raises_invalid "permute_outputs size mismatch" (fun () ->
        T.permute_outputs (P.identity 2) (T.identity 3));
  ]

let builder =
  [
    Util.raises_invalid "wire consumed twice" (fun () ->
        let b, ins = Builder.create ~input_width:2 in
        let _ = Builder.balancer2 b ins.(0) ins.(1) in
        Builder.balancer2 b ins.(0) ins.(1));
    Util.raises_invalid "foreign wire rejected" (fun () ->
        let b1, ins1 = Builder.create ~input_width:2 in
        let _b2, ins2 = Builder.create ~input_width:2 in
        ignore (Builder.balancer2 b1 ins1.(0) ins2.(0)));
    Util.raises_invalid "dangling wire rejected at finish" (fun () ->
        let b, ins = Builder.create ~input_width:2 in
        let top, _bottom = Builder.balancer2 b ins.(0) ins.(1) in
        Builder.finish b [| top |]);
    tc "build round trip" (fun () ->
        let net =
          Builder.build ~input_width:2 (fun b ins ->
              let top, bottom = Builder.balancer2 b ins.(0) ins.(1) in
              [| top; bottom |])
        in
        Alcotest.(check bool) "equal" true (T.equal net (one_balancer ())));
  ]

let suite =
  [
    ("topology.construction", construction);
    ("topology.validation", validation);
    ("topology.structure", structure);
    ("topology.permutations", permuting);
    ("topology.builder", builder);
  ]
