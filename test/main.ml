(* Aggregated test runner: one alcotest "suite" per library module. *)

let () =
  Alcotest.run "counting_networks"
    (List.concat
       [
         Test_sequence.suite;
         Test_balancer.suite;
         Test_permutation.suite;
         Test_topology.suite;
         Test_eval.suite;
         Test_iso.suite;
         Test_render.suite;
         Test_ladder.suite;
         Test_merging.suite;
         Test_counting.suite;
         Test_butterfly.suite;
         Test_blocks.suite;
         Test_sorting.suite;
         Test_baselines.suite;
         Test_sim.suite;
         Test_runtime.suite;
         Test_gcfree.suite;
         Test_metrics.suite;
         Test_analysis.suite;
         Test_antitokens.suite;
         Test_service.suite;
         Test_extensions.suite;
         Test_fuzz.suite;
         Test_timed.suite;
         Test_concurrency.suite;
         Test_feasibility.suite;
         Test_linearizability.suite;
         Test_grid.suite;
         Test_exhaustive.suite;
         Test_compose.suite;
         Test_check.suite;
         Test_lint.suite;
         Test_fabric.suite;
         Test_proto.suite;
         Test_sketch.suite;
       ])
