(* Tests for Cn_sim: the stall-accounting execution model and schedulers. *)

module SM = Cn_sim.Stall_model
module Sched = Cn_sim.Scheduler
module Cont = Cn_sim.Contention
module S = Cn_sequence.Sequence

let tc name f = Alcotest.test_case name `Quick f

let ladder2 () = Cn_core.Ladder.network 2

let model =
  [
    tc "creation injects first tokens" (fun () ->
        let s = SM.create (ladder2 ()) ~concurrency:3 ~tokens:9 in
        Alcotest.(check (list int)) "waiting" [ 0; 1; 2 ] (SM.waiting_processes s);
        Alcotest.(check int) "queue at b0" 3 (SM.queue_length s 0));
    tc "fire moves a token through" (fun () ->
        let s = SM.create (ladder2 ()) ~concurrency:2 ~tokens:2 in
        SM.fire s 0;
        (* token 0 crossed the single balancer and exited; process 0 has
           no quota left. *)
        Alcotest.(check int) "completed" 1 (SM.completed_tokens s);
        Alcotest.(check bool) "p0 done" false (SM.is_waiting s 0);
        Alcotest.(check bool) "p1 waiting" true (SM.is_waiting s 1));
    tc "stall accounting: k-1 others charged" (fun () ->
        let s = SM.create (ladder2 ()) ~concurrency:4 ~tokens:4 in
        (* 4 tokens wait at the same balancer; the first fire charges 3
           stalls, the next 2, then 1, then 0. *)
        SM.fire s 0;
        Alcotest.(check int) "after first" 3 (SM.total_stalls s);
        SM.fire s 1;
        Alcotest.(check int) "after second" 5 (SM.total_stalls s);
        SM.fire s 2;
        SM.fire s 3;
        Alcotest.(check int) "after all" 6 (SM.total_stalls s);
        Alcotest.(check bool) "finished" true (SM.finished s));
    tc "sequential execution has zero stalls" (fun () ->
        let s = SM.create (ladder2 ()) ~concurrency:1 ~tokens:10 in
        Sched.run s Sched.Round_robin;
        Alcotest.(check int) "no stalls" 0 (SM.total_stalls s);
        Alcotest.(check int) "completed" 10 (SM.completed_tokens s));
    tc "quota reinjection" (fun () ->
        let s = SM.create (ladder2 ()) ~concurrency:1 ~tokens:5 in
        (* One process shepherds 5 tokens one after another. *)
        let fired = ref 0 in
        while not (SM.finished s) do
          SM.fire s 0;
          incr fired
        done;
        Alcotest.(check int) "one crossing per token" 5 !fired);
    tc "uneven quotas distribute tokens" (fun () ->
        let s = SM.create (ladder2 ()) ~concurrency:3 ~tokens:7 in
        Sched.run s (Sched.Random 3);
        Alcotest.(check int) "completed" 7 (SM.completed_tokens s));
    Util.raises_invalid "fire non-waiting" (fun () ->
        let s = SM.create (ladder2 ()) ~concurrency:2 ~tokens:1 in
        SM.fire s 1);
    Util.raises_invalid "non-positive concurrency" (fun () ->
        ignore (SM.create (ladder2 ()) ~concurrency:0 ~tokens:3));
    tc "crowded balancer found" (fun () ->
        let s = SM.create (ladder2 ()) ~concurrency:2 ~tokens:2 in
        Alcotest.(check (option int)) "b0" (Some 0) (SM.crowded_balancer s));
  ]

let strategies_finish =
  List.map
    (fun strategy ->
      tc
        (Printf.sprintf "%s completes and counts" (Sched.strategy_name strategy))
        (fun () ->
          let net = Cn_core.Counting.network ~w:8 ~t:16 in
          let s = SM.create net ~concurrency:12 ~tokens:240 in
          Sched.run s strategy;
          Alcotest.(check bool) "finished" true (SM.finished s);
          Alcotest.(check int) "all tokens" 240 (SM.completed_tokens s);
          Util.check_step (SM.output_counts s)))
    (Sched.all ~seed:7)

let measurements =
  [
    tc "measure reports stalls per token" (fun () ->
        let net = Cn_core.Counting.network ~w:8 ~t:8 in
        let r = Cont.measure net ~n:8 ~m:160 (Sched.Random 5) in
        Alcotest.(check bool) "per_token consistent" true
          (abs_float (r.Cont.per_token -. (float_of_int r.Cont.stalls /. 160.)) < 1e-9);
        Alcotest.(check bool) "step" true r.Cont.step_ok);
    tc "per-layer stalls sum to total" (fun () ->
        let net = Cn_baselines.Bitonic.network 8 in
        let r = Cont.measure net ~n:16 ~m:160 (Sched.Random 1) in
        Alcotest.(check int) "sum" r.Cont.stalls
          (Array.fold_left ( + ) 0 r.Cont.per_layer));
    tc "worst takes the max over strategies" (fun () ->
        let net = Cn_core.Counting.network ~w:4 ~t:4 in
        let worst = Cont.worst net ~n:8 ~m:80 in
        List.iter
          (fun strategy ->
            let r = Cont.measure net ~n:8 ~m:80 strategy in
            Alcotest.(check bool) "dominated" true
              (r.Cont.per_token <= worst.Cont.per_token +. 1e-9))
          (Cn_sim.Scheduler.all ~seed:1));
    tc "contention grows with concurrency" (fun () ->
        let net = Cn_baselines.Bitonic.network 8 in
        let low = Cont.worst net ~n:2 ~m:200 in
        let high = Cont.worst net ~n:64 ~m:640 in
        Alcotest.(check bool) "monotone-ish" true
          (high.Cont.per_token > low.Cont.per_token));
    tc "diffracting tree suffers ~n stalls per token" (fun () ->
        (* Section 1.4.1: all tokens serialize at the root. *)
        let net = Cn_baselines.Diffracting.network 8 in
        let n = 32 in
        let r = Cont.worst net ~n ~m:(10 * n) in
        Alcotest.(check bool) "order n" true (r.Cont.per_token > float_of_int n /. 4.));
    tc "wider output reduces contention" (fun () ->
        (* The paper's headline: C(w, w lg w) beats C(w, w) at high
           concurrency. *)
        let narrow = Cn_core.Counting.network ~w:8 ~t:8 in
        let wide = Cn_core.Counting.network ~w:8 ~t:24 in
        let n = 64 in
        let rn = Cont.worst ~strategies:[ Sched.Random 2 ] narrow ~n ~m:(20 * n) in
        let rw = Cont.worst ~strategies:[ Sched.Random 2 ] wide ~n ~m:(20 * n) in
        Alcotest.(check bool) "wide wins" true (rw.Cont.per_token < rn.Cont.per_token));
    tc "worst_over_seeds dominates single-seed worst" (fun () ->
        let net = Cn_core.Counting.network ~w:4 ~t:4 in
        let single = Cont.worst net ~n:8 ~m:80 in
        let multi = Cont.worst_over_seeds ~seeds:[ 1; 2; 3 ] net ~n:8 ~m:80 in
        Alcotest.(check bool) "dominates" true
          (multi.Cont.per_token >= single.Cont.per_token -. 1e-9));
    tc "quiescent states agree with per-balancer net arithmetic" (fun () ->
        (* Eval.quiescent_full's final states must equal state_after of
           each balancer's total throughput. *)
        let net = Cn_core.Counting.network ~w:4 ~t:8 in
        let x = [| 7; 2; 9; 4 |] in
        let _, states = Cn_network.Eval.quiescent_full net x in
        (* Re-derive each balancer's token count by summing its feeds'
           flows via a fresh evaluation of the prefix: simplest check is
           that replaying the same run yields identical states. *)
        let _, states' = Cn_network.Eval.quiescent_full net x in
        Alcotest.check Util.seq "deterministic" states states';
        (* And that the total transitions match the sim's fire count. *)
        let s = SM.create net ~concurrency:1 ~tokens:22 in
        Sched.run s Sched.Round_robin;
        Alcotest.(check int) "fires = tokens x depth" (22 * 3)
          (Array.length (SM.fire_trace s)));
    tc "sweep returns one row per concurrency" (fun () ->
        let net = Cn_core.Counting.network ~w:4 ~t:8 in
        let rows = Cont.sweep ~strategies:[ Sched.Random 0 ] net ~ns:[ 1; 4; 16 ] ~m_per_n:10 in
        Alcotest.(check (list int)) "ns" [ 1; 4; 16 ] (List.map fst rows));
  ]

let replay =
  [
    tc "replaying a trace reproduces the execution exactly" (fun () ->
        let net = Cn_core.Counting.network ~w:8 ~t:8 in
        let original = SM.create net ~concurrency:10 ~tokens:100 in
        Sched.run original (Sched.Random 13);
        let trace = SM.fire_trace original in
        let replayed = SM.create net ~concurrency:10 ~tokens:100 in
        Sched.run replayed (Sched.Replay trace);
        Alcotest.(check int) "stalls" (SM.total_stalls original) (SM.total_stalls replayed);
        Alcotest.check Util.seq "outputs" (SM.output_counts original)
          (SM.output_counts replayed);
        Alcotest.(check bool) "histories" true
          (SM.history original = SM.history replayed));
    tc "trace length equals total transitions" (fun () ->
        (* Every token crosses depth balancers. *)
        let net = Cn_core.Counting.network ~w:4 ~t:4 in
        let s = SM.create net ~concurrency:4 ~tokens:40 in
        Sched.run s Sched.Round_robin;
        Alcotest.(check int) "fires" (40 * 3) (Array.length (SM.fire_trace s)));
    tc "partial replay finishes round-robin" (fun () ->
        let net = Cn_core.Counting.network ~w:4 ~t:4 in
        let s = SM.create net ~concurrency:4 ~tokens:20 in
        Sched.run s (Sched.Replay [| 0; 1; 2 |]);
        Alcotest.(check bool) "finished" true (SM.finished s);
        Util.check_step (SM.output_counts s));
    tc "park strategy completes and counts" (fun () ->
        let net = Cn_core.Counting.network ~w:8 ~t:16 in
        let s = SM.create net ~concurrency:9 ~tokens:180 in
        Sched.run s (Sched.Park 3);
        Alcotest.(check bool) "finished" true (SM.finished s);
        Util.check_step (SM.output_counts s));
    tc "park starves one output wire while active" (fun () ->
        (* With process 0 parked, run everyone else to completion: the
           output distribution misses the parked token and is not
           step-balanced around it in general, but total = m - 1. *)
        let net = Cn_core.Counting.network ~w:4 ~t:4 in
        let s = SM.create net ~concurrency:4 ~tokens:4 in
        SM.fire s 0;
        (* fire others fully *)
        let rec go () =
          match List.filter (fun p -> p <> 0) (SM.waiting_processes s) with
          | [] -> ()
          | p :: _ ->
              SM.fire s p;
              go ()
        in
        go ();
        Alcotest.(check int) "one token in flight" 3 (SM.completed_tokens s));
  ]

let suite =
  [
    ("sim.model", model);
    ("sim.strategies", strategies_finish);
    ("sim.contention", measurements);
    ("sim.replay", replay);
  ]
