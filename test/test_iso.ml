(* Tests for Cn_network.Iso: the Section 2.3 isomorphism definition,
   Lemma 2.7 consequences, and the constrained search. *)

module T = Cn_network.Topology
module B = Cn_network.Balancer
module P = Cn_network.Permutation
module Iso = Cn_network.Iso
module E = Cn_network.Eval

let tc name f = Alcotest.test_case name `Quick f

let ladder4 () = Cn_core.Ladder.network 4

let check_tests =
  [
    tc "identity mapping on itself" (fun () ->
        let net = ladder4 () in
        match Iso.check net net ~mapping:[| 0; 1 |] with
        | Ok (pi_in, pi_out) ->
            Alcotest.(check bool) "pi_in id" true (P.is_identity pi_in);
            Alcotest.(check bool) "pi_out id" true (P.is_identity pi_out)
        | Error e -> Alcotest.failf "expected iso: %s" e);
    tc "swapped ladder balancers" (fun () ->
        (* L(4)'s two balancers are interchangeable: mapping 0<->1 is an
           isomorphism whose wire permutations swap the wire pairs. *)
        let net = ladder4 () in
        match Iso.check net net ~mapping:[| 1; 0 |] with
        | Ok (pi_in, pi_out) ->
            Alcotest.(check bool) "equiv" true
              (Iso.equivalent_under ~pi_in ~pi_out net net)
        | Error e -> Alcotest.failf "expected iso: %s" e);
    tc "shape mismatch rejected" (fun () ->
        let reg = ladder4 () in
        let irr = Cn_core.Counting.network ~w:2 ~t:4 in
        ignore irr;
        (* compare L(4) with a same-size network of different balancer
           shapes: C(4,4) truncated is complex; instead compare L(4) with
           itself under a non-bijection. *)
        match Iso.check reg reg ~mapping:[| 0; 0 |] with
        | Ok _ -> Alcotest.fail "expected rejection"
        | Error _ -> ());
    tc "width mismatch rejected" (fun () ->
        match Iso.check (ladder4 ()) (Cn_core.Ladder.network 6) ~mapping:[| 0; 1 |] with
        | Ok _ -> Alcotest.fail "expected rejection"
        | Error _ -> ());
    tc "wiring mismatch rejected" (fun () ->
        (* Cascade vs parallel of two balancers: same shapes, different
           connectivity. *)
        let single = Cn_core.Ladder.network 2 in
        let casc = T.cascade single single in
        let par = T.parallel single single in
        ignore
          (Alcotest.(check bool) "differ" true
             (match Iso.check casc par ~mapping:[| 0; 1 |] with
             | Ok _ -> false
             | Error _ -> true)));
  ]

let find_tests =
  [
    tc "find on identical networks" (fun () ->
        let net = Cn_baselines.Bitonic.network 8 in
        match Iso.find net net with
        | Some mapping -> (
            match Iso.check net net ~mapping with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "check failed: %s" e)
        | None -> Alcotest.fail "no isomorphism found");
    tc "find rejects different networks" (fun () ->
        (* BITONIC(8) and PERIODIC(8) at equal size differ in depth. *)
        let a = Cn_baselines.Bitonic.network 8 in
        let b = Cn_baselines.Periodic.network 8 in
        Alcotest.(check bool) "different sizes or no iso" true
          (T.size a <> T.size b || Iso.find a b = None));
    tc "find input-permuted ladder" (fun () ->
        let net = ladder4 () in
        let net' = T.permute_inputs (P.of_array [| 2; 1; 0; 3 |]) net in
        match Iso.find net net' with
        | Some mapping -> (
            match Iso.check net net' ~mapping with
            | Ok (pi_in, pi_out) ->
                Alcotest.(check bool) "equiv" true
                  (Iso.equivalent_under ~pi_in ~pi_out net net')
            | Error e -> Alcotest.failf "check failed: %s" e)
        | None -> Alcotest.fail "no isomorphism found");
  ]

let butterfly_iso =
  [
    tc "lemma 5.3: E(4) isomorphic to D(4)" (fun () ->
        match Cn_core.Butterfly.isomorphism 4 with
        | Some (pi_in, pi_out) ->
            Alcotest.(check bool) "equiv" true
              (Iso.equivalent_under ~pi_in ~pi_out (Cn_core.Butterfly.backward 4)
                 (Cn_core.Butterfly.forward 4))
        | None -> Alcotest.fail "no isomorphism found");
    tc "lemma 5.3: E(8) isomorphic to D(8)" (fun () ->
        match Cn_core.Butterfly.isomorphism 8 with
        | Some (pi_in, pi_out) ->
            Alcotest.(check bool) "equiv" true
              (Iso.equivalent_under ~pi_in ~pi_out (Cn_core.Butterfly.backward 8)
                 (Cn_core.Butterfly.forward 8))
        | None -> Alcotest.fail "no isomorphism found");
    tc "lemma 5.3: E(16) isomorphic to D(16)" (fun () ->
        match Cn_core.Butterfly.isomorphism 16 with
        | Some (pi_in, pi_out) ->
            Alcotest.(check bool) "equiv" true
              (Iso.equivalent_under ~pi_in ~pi_out (Cn_core.Butterfly.backward 16)
                 (Cn_core.Butterfly.forward 16))
        | None -> Alcotest.fail "no isomorphism found");
    tc "lemma 5.3 mapping: E(w) isomorphic to D(w) up to w = 64" (fun () ->
        (* The constructed bit-reversal mapping makes the large widths
           tractable: Iso.find's generic search exhausts its budget at
           w >= 32, Iso.check validates the explicit witness in linear
           time. *)
        List.iter
          (fun w ->
            let e = Cn_core.Butterfly.backward w and d = Cn_core.Butterfly.forward w in
            match Iso.check e d ~mapping:(Cn_core.Butterfly.lemma_5_3_mapping w) with
            | Ok (pi_in, pi_out) ->
                Alcotest.(check bool)
                  (Printf.sprintf "equiv w=%d" w)
                  true
                  (Iso.equivalent_under ~pi_in ~pi_out e d)
            | Error msg -> Alcotest.failf "w=%d: %s" w msg)
          [ 2; 4; 8; 16; 32; 64 ]);
    tc "lemma 5.3 mapping agrees with the search where both run" (fun () ->
        List.iter
          (fun w ->
            let e = Cn_core.Butterfly.backward w and d = Cn_core.Butterfly.forward w in
            match Iso.find e d with
            | Some m ->
                Alcotest.(check bool)
                  (Printf.sprintf "constructed is valid w=%d" w)
                  true
                  (Result.is_ok (Iso.check e d ~mapping:(Cn_core.Butterfly.lemma_5_3_mapping w)));
                Alcotest.(check bool)
                  (Printf.sprintf "search is valid w=%d" w)
                  true
                  (Result.is_ok (Iso.check e d ~mapping:m))
            | None -> Alcotest.failf "search failed at w=%d" w)
          [ 2; 4; 8; 16 ]);
    tc "isomorphism at w = 64" (fun () ->
        match Cn_core.Butterfly.isomorphism 64 with
        | Some (pi_in, pi_out) ->
            Alcotest.(check bool) "equiv" true
              (Iso.equivalent_under ~trials:16 ~pi_in ~pi_out
                 (Cn_core.Butterfly.backward 64) (Cn_core.Butterfly.forward 64))
        | None -> Alcotest.fail "no isomorphism found");
    tc "lemma 2.8: smoothing transfers across isomorphism" (fun () ->
        (* E(8) inherits lg(8)-smoothing from D(8). *)
        let e = Cn_core.Butterfly.backward 8 in
        Util.for_random_inputs ~trials:150 e (fun ~trial:_ ~x:_ ~y ->
            Alcotest.(check bool) "3-smooth" true (Cn_sequence.Sequence.is_smooth 3 y)));
  ]

let section33 =
  [
    tc "C(w,w) is not isomorphic to the bitonic network" (fun () ->
        (* Section 3.3: the different merger bases and output layers
           "result in non-isomorphic counting networks" even at w = t,
           despite identical layer profiles. *)
        List.iter
          (fun w ->
            let c = Cn_core.Counting.network ~w ~t:w in
            let b = Cn_baselines.Bitonic.network w in
            Alcotest.(check bool)
              (Printf.sprintf "profiles agree w=%d" w)
              true
              (Cn_network.Render.layer_profile c = Cn_network.Render.layer_profile b);
            Alcotest.(check bool)
              (Printf.sprintf "no isomorphism w=%d" w)
              true
              (Iso.find c b = None))
          [ 4; 8 ]);
    tc "C(w,w) and bitonic still compute the same quiescent function" (fun () ->
        (* Both count, so their quiescent outputs coincide everywhere —
           non-isomorphic networks, same input/output behaviour. *)
        let c = Cn_core.Counting.network ~w:8 ~t:8 in
        let b = Cn_baselines.Bitonic.network 8 in
        Util.for_random_inputs ~trials:100 c (fun ~trial:_ ~x ~y ->
            Alcotest.check Util.seq "same function" (E.quiescent b x) y));
  ]

let lemma27 =
  [
    tc "lemma 2.7 on permuted bitonic" (fun () ->
        let net = Cn_baselines.Bitonic.network 4 in
        let pi = P.of_array [| 3; 1; 0; 2 |] in
        let net' = T.permute_inputs pi net in
        match Iso.find net net' with
        | Some mapping -> (
            match Iso.check net net' ~mapping with
            | Ok (pi_in, pi_out) ->
                let x = [| 5; 0; 2; 7 |] in
                Alcotest.check Util.seq "lemma 2.7"
                  (P.permute pi_out (E.quiescent net x))
                  (E.quiescent net' (P.permute pi_in x))
            | Error e -> Alcotest.failf "check failed: %s" e)
        | None -> Alcotest.fail "no isomorphism found");
  ]

let suite =
  [
    ("iso.check", check_tests);
    ("iso.find", find_tests);
    ("iso.butterfly", butterfly_iso);
    ("iso.section33", section33);
    ("iso.lemma27", lemma27);
  ]
