(* Tests for Cn_baselines: bitonic, periodic, diffracting tree. *)

module T = Cn_network.Topology
module E = Cn_network.Eval
module S = Cn_sequence.Sequence

let tc name f = Alcotest.test_case name `Quick f

let step_suite name make widths =
  List.map
    (fun w ->
      tc
        (Printf.sprintf "%s(%d) counts" name w)
        (fun () ->
          let net = make w in
          Util.for_random_inputs ~trials:120 ~seed:w net (fun ~trial:_ ~x ~y ->
              Alcotest.(check int) "sum" (S.sum x) (S.sum y);
              Util.check_step y)))
    widths

let bitonic =
  step_suite "bitonic" Cn_baselines.Bitonic.network [ 2; 4; 8; 16; 32 ]
  @ [
      tc "depth lgw(lgw+1)/2" (fun () ->
          List.iter
            (fun w ->
              Alcotest.(check int) (Printf.sprintf "w=%d" w)
                (Cn_baselines.Bitonic.depth_formula ~w)
                (T.depth (Cn_baselines.Bitonic.network w)))
            [ 2; 4; 8; 16; 32; 64 ]);
      tc "size (w/2) x depth" (fun () ->
          List.iter
            (fun w ->
              Alcotest.(check int) (Printf.sprintf "w=%d" w)
                (Cn_baselines.Bitonic.size_formula ~w)
                (T.size (Cn_baselines.Bitonic.network w)))
            [ 2; 4; 8; 16; 32 ]);
      tc "merger merges step halves" (fun () ->
          let m = Cn_baselines.Bitonic.merger 16 in
          for sx = 0 to 12 do
            for sy = 0 to 12 do
              let x = S.make_step ~total:sx ~width:8 in
              let y = S.make_step ~total:sy ~width:8 in
              Util.check_step
                ~msg:(Printf.sprintf "merger sx=%d sy=%d" sx sy)
                (E.quiescent m (S.concat x y))
            done
          done);
      tc "merger merges any steps (no difference bound)" (fun () ->
          (* Unlike M(t, delta), the bitonic merger accepts arbitrary
             step-sum differences — the price is depth lg t. *)
          let m = Cn_baselines.Bitonic.merger 8 in
          let x = S.make_step ~total:50 ~width:4 in
          let y = S.make_step ~total:0 ~width:4 in
          Util.check_step (E.quiescent m (S.concat x y)));
      Util.raises_invalid "merger odd width" (fun () ->
          ignore (Cn_baselines.Bitonic.merger 6));
      Util.raises_invalid "network non power of two" (fun () ->
          ignore (Cn_baselines.Bitonic.network 12));
    ]

let periodic =
  step_suite "periodic" Cn_baselines.Periodic.network [ 2; 4; 8; 16; 32 ]
  @ [
      tc "depth lg2 w" (fun () ->
          List.iter
            (fun w ->
              Alcotest.(check int) (Printf.sprintf "w=%d" w)
                (Cn_baselines.Periodic.depth_formula ~w)
                (T.depth (Cn_baselines.Periodic.network w)))
            [ 2; 4; 8; 16; 32 ]);
      tc "size (w/2) lg2 w" (fun () ->
          List.iter
            (fun w ->
              Alcotest.(check int) (Printf.sprintf "w=%d" w)
                (Cn_baselines.Periodic.size_formula ~w)
                (T.size (Cn_baselines.Periodic.network w)))
            [ 2; 4; 8; 16 ]);
      tc "single block does not count" (fun () ->
          let net = Cn_baselines.Periodic.block 8 in
          let found = ref false in
          let rng = Random.State.make [| 3 |] in
          for _ = 1 to 500 do
            if not (S.is_step (E.quiescent net (Util.random_input rng 8))) then
              found := true
          done;
          Alcotest.(check bool) "non-step exists" true !found);
      tc "block preserves sums" (fun () ->
          let net = Cn_baselines.Periodic.block 16 in
          Util.for_random_inputs ~trials:100 net (fun ~trial:_ ~x ~y ->
              Alcotest.(check int) "sum" (S.sum x) (S.sum y)));
      tc "block is lg w-smoothing on step-ish inputs" (fun () ->
          (* The block smooths; full smoothing bound exercised via the
             periodic cascade counting above. *)
          let net = Cn_baselines.Periodic.block 8 in
          Util.for_random_inputs ~trials:200 ~max_tokens:30 net (fun ~trial:_ ~x:_ ~y ->
              Alcotest.(check bool) "smooth" true (S.is_smooth 3 y)));
    ]

let diffracting =
  [
    tc "diffracting tree counts" (fun () ->
        let net = Cn_baselines.Diffracting.network 8 in
        let rng = Random.State.make [| 17 |] in
        for _ = 1 to 50 do
          let x = [| Random.State.int rng 200 |] in
          Util.check_step (E.quiescent net x)
        done);
    tc "depth lg w" (fun () ->
        List.iter
          (fun w ->
            Alcotest.(check int) (Printf.sprintf "w=%d" w)
              (Cn_baselines.Diffracting.depth_formula ~w)
              (T.depth (Cn_baselines.Diffracting.network w)))
          [ 2; 4; 8; 16; 32; 64 ]);
    tc "size w-1" (fun () ->
        List.iter
          (fun w ->
            Alcotest.(check int) (Printf.sprintf "w=%d" w)
              (Cn_baselines.Diffracting.size_formula ~w)
              (T.size (Cn_baselines.Diffracting.network w)))
          [ 2; 4; 8; 16; 32 ]);
    tc "single input wire" (fun () ->
        let net = Cn_baselines.Diffracting.network 16 in
        Alcotest.(check int) "w" 1 (T.input_width net);
        Alcotest.(check int) "t" 16 (T.output_width net));
    tc "tokens cycle leaves in wire order" (fun () ->
        let net = Cn_baselines.Diffracting.network 4 in
        let wires = List.map fst (E.token_run net [ 0; 0; 0; 0; 0; 0; 0; 0 ]) in
        Alcotest.(check (list int)) "round robin" [ 0; 1; 2; 3; 0; 1; 2; 3 ] wires);
    Util.raises_invalid "width not a power of two" (fun () ->
        ignore (Cn_baselines.Diffracting.network 6));
  ]

let suite =
  [
    ("baselines.bitonic", bitonic);
    ("baselines.periodic", periodic);
    ("baselines.diffracting", diffracting);
  ]
