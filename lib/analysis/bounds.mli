(** Closed-form bounds from the paper's theorems, used by the benchmark
    harness to plot measured values against predictions. *)

val lg : int -> float
(** [lg v] is [log2 v] as a float.  @raise Invalid_argument if
    [v <= 0]. *)

val contention_c : w:int -> t:int -> n:int -> float
(** Theorem 6.7 upper bound on the amortized contention of [C(w, t)]:
    [4n·lgw/w + n·lg²w/t + w·lg³w/t + 4·lg²w + lgw]. *)

val contention_c_asymptotic : w:int -> t:int -> n:int -> float
(** The [O(·)] expression of the abstract, without constant factors:
    [n·lgw/w + n·lg²w/t + w·lg³w/t + lg²w]. *)

val contention_bitonic : w:int -> n:int -> float
(** Dwork–Herlihy–Waarts bound shape for the bitonic network:
    [n·lg²w/w]. *)

val contention_periodic : w:int -> n:int -> float
(** Bound shape for the periodic network: [n·lg³w/w]. *)

val contention_butterfly : w:int -> n:int -> float
(** Lemma 6.5 upper bound for the forward butterfly:
    [4n·lgw/w + lg²w + lgw]. *)

val contention_diffracting : n:int -> float
(** The diffracting tree's adversarial amortized contention: [Θ(n)]
    (Section 1.4.1); reported as [n]. *)

val crossover_concurrency : w:int -> int
(** [w·lgw] — the concurrency beyond which [C(w, w·lgw)]'s advantage
    over the bitonic network kicks in (Section 1.3.1). *)
