module Topology = Cn_network.Topology
module Contention = Cn_sim.Contention
module Scheduler = Cn_sim.Scheduler

let default_stall_factor = 8.

type calibration = { crossing_ns : float; stall_factor : float }

let calibrate ?(stall_factor = default_stall_factor) ~crossing_ns () =
  if not (crossing_ns > 0.) then
    invalid_arg "Projection.calibrate: crossing_ns must be positive";
  if not (stall_factor > 0.) then
    invalid_arg "Projection.calibrate: stall_factor must be positive";
  { crossing_ns; stall_factor }

let of_throughput ?stall_factor ~depth ~ops ~seconds () =
  if depth <= 0 then invalid_arg "Projection.of_throughput: depth must be positive";
  if ops <= 0 then invalid_arg "Projection.of_throughput: ops must be positive";
  if not (seconds > 0.) then invalid_arg "Projection.of_throughput: seconds must be positive";
  calibrate ?stall_factor ~crossing_ns:(seconds *. 1e9 /. (float_of_int ops *. float_of_int depth)) ()

let stall_ns c = c.stall_factor *. c.crossing_ns

type point = {
  domains : int;
  stalls_per_token : float;
  token_ns : float;
  ops_per_sec : float;
}

let point c ~domains ~depth ~stalls_per_token =
  let token_ns = (float_of_int depth *. c.crossing_ns) +. (stalls_per_token *. stall_ns c) in
  { domains; stalls_per_token; token_ns; ops_per_sec = float_of_int domains *. 1e9 /. token_ns }

(* The central counter serializes: a token's FAA waits behind every
   other concurrent process at the same word, so stalls/token is [n - 1]
   by the memory-contention accounting of Dwork-Herlihy-Waarts.  As
   [n] grows the projected rate saturates at [1/stall_ns] — the
   hot-spot ceiling Theorem 6.7's O(n·lg w / w) amortized bound is
   measured against. *)
let project_central c ~domains =
  if domains <= 0 then invalid_arg "Projection.project_central: domains must be positive";
  point c ~domains ~depth:1 ~stalls_per_token:(float_of_int (domains - 1))

(* Network stalls/token comes from the stall-counting simulator under a
   fair randomized schedule — the honest-average adversary, not the
   worst case [Contention.worst] reports — at the projected concurrency.
   The projection composes it with the measured crossing cost:
   token time = depth·crossing_ns + stalls/token·stall_ns. *)
let project_network ?(seed = 1) ?(m_per_n = 64) c net ~domains =
  if domains <= 0 then invalid_arg "Projection.project_network: domains must be positive";
  if m_per_n <= 0 then invalid_arg "Projection.project_network: m_per_n must be positive";
  let m = m_per_n * domains in
  let meas = Contention.measure net ~n:domains ~m (Scheduler.Random seed) in
  point c ~domains ~depth:(Topology.depth net) ~stalls_per_token:meas.Contention.per_token

let sweep_central c ~domains_list = List.map (fun n -> project_central c ~domains:n) domains_list

let sweep_network ?seed ?m_per_n c net ~domains_list =
  List.map (fun n -> project_network ?seed ?m_per_n c net ~domains:n) domains_list

(* ------------------------------------------------------------------ *)
(* Analytic (w, t) tuning — the fabric's auto-tuner.

   Simulation-backed projections are the honest tool for one known
   topology; a tuner comparing dozens of candidates wants the closed
   forms instead: Theorem 6.7's contention bound gives stalls/token
   amortized over n processes, Theorem 4.1's depth formula gives the
   crossing count, and the calibration prices both.  Everything is
   deterministic — same calibration, same answer — which is what a
   resize decision should be. *)

let predicted_stalls_per_token ~w ~t ~domains =
  if domains <= 0 then
    invalid_arg "Projection.predicted_stalls_per_token: domains must be positive";
  Bounds.contention_c ~w ~t ~n:domains /. float_of_int domains

let tuned_point ?(stall_scale = 1.) c ~w ~t ~domains =
  if not (stall_scale > 0.) then
    invalid_arg "Projection.tuned_point: stall_scale must be positive";
  point c ~domains
    ~depth:(Cn_core.Counting.depth_formula ~w)
    ~stalls_per_token:(stall_scale *. predicted_stalls_per_token ~w ~t ~domains)

(* Candidate outputs are t = p·w for p in [1, lg w] — the paper's
   operating envelope, whose upper end (t = w·lg w) is exactly where
   Theorem 6.7's amortized bound reaches O(n·lg w / w).  Within the
   envelope the depth term is t-free (Theorem 4.1), so widening the
   output side only sheds contention; the tuner picks the widest t
   whenever the model says contention matters at all, which is the
   t = w·lg w recommendation the unit tests pin. *)
let tune_t ?stall_scale c ~w ~domains =
  if w < 2 || not (Cn_core.Params.is_power_of_two w) then
    invalid_arg "Projection.tune_t: w must be a power of two >= 2";
  let lgw = Cn_core.Params.ilog2 w in
  let best = ref (w, nan) in
  for p = 1 to max 1 lgw do
    let t = p * w in
    let pt = tuned_point ?stall_scale c ~w ~t ~domains in
    let _, best_rate = !best in
    (* strict improvement required: ties keep the narrower output side *)
    if Float.is_nan best_rate || pt.ops_per_sec > best_rate then
      best := (t, pt.ops_per_sec)
  done;
  fst !best

let tune ?stall_scale ?(widths = [ 2; 4; 8; 16; 32 ]) c ~domains =
  if widths = [] then invalid_arg "Projection.tune: empty width list";
  let scored =
    List.map
      (fun w ->
        let t = tune_t ?stall_scale c ~w ~domains in
        ((w, t), (tuned_point ?stall_scale c ~w ~t ~domains).ops_per_sec))
      widths
  in
  fst
    (List.fold_left
       (fun (best, best_rate) (cand, rate) ->
         if rate > best_rate then (cand, rate) else (best, best_rate))
       (List.hd scored) (List.tl scored))

(* Smallest concurrency (by doubling then linear scan, capped) at which
   the projected network rate overtakes the projected central rate —
   the projection's answer to the paper's crossover question. *)
let crossover ?seed ?m_per_n ?(max_domains = 1024) c net =
  let rec scan n =
    if n > max_domains then None
    else if
      (project_network ?seed ?m_per_n c net ~domains:n).ops_per_sec
      > (project_central c ~domains:n).ops_per_sec
    then Some n
    else scan (n + max 1 (n / 4))
  in
  scan 1
