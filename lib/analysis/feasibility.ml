let prime_factors v =
  if v < 1 then invalid_arg "Feasibility.prime_factors: non-positive";
  let rec go acc p v =
    if v = 1 then List.rev acc
    else if p * p > v then List.rev (v :: acc)
    else if v mod p = 0 then begin
      let rec strip v = if v mod p = 0 then strip (v / p) else v in
      go (p :: acc) (p + 1) (strip v)
    end
    else go acc (p + 1) v
  in
  go [] 2 v

let validate ~width ~balancer_outputs =
  if width < 1 then invalid_arg "Feasibility: non-positive width";
  if balancer_outputs = [] then invalid_arg "Feasibility: empty balancer set";
  List.iter (fun b -> if b < 1 then invalid_arg "Feasibility: non-positive balancer width") balancer_outputs

let blocking_prime ~width ~balancer_outputs =
  validate ~width ~balancer_outputs;
  List.find_opt
    (fun p -> not (List.exists (fun b -> b mod p = 0) balancer_outputs))
    (prime_factors width)

let is_constructible ~width ~balancer_outputs =
  blocking_prime ~width ~balancer_outputs = None

let constructible_widths ~balancer_outputs ~limit =
  List.filter
    (fun width -> is_constructible ~width ~balancer_outputs)
    (List.init limit (fun i -> i + 1))
