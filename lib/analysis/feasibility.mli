(** Feasibility of counting-network widths (paper, Section 1.4.2).

    Aharonson and Attiya proved that no counting network (indeed, no
    smoothing network) of output width [w] can be built from balancers
    whose output widths are [b1, ..., bk] if some prime factor of [w]
    divides none of the [bi].  This module implements that test, plus
    the prime machinery it needs. *)

val prime_factors : int -> int list
(** [prime_factors v] is the list of distinct prime factors of [v] in
    increasing order.  @raise Invalid_argument if [v < 1]. *)

val is_constructible : width:int -> balancer_outputs:int list -> bool
(** [is_constructible ~width ~balancer_outputs] applies the
    Aharonson–Attiya criterion: [true] iff every prime factor of
    [width] divides at least one of the balancer output widths.  [true]
    is necessary, not sufficient.
    @raise Invalid_argument if [width < 1], the list is empty, or some
    output width is [< 1]. *)

val blocking_prime : width:int -> balancer_outputs:int list -> int option
(** [blocking_prime ~width ~balancer_outputs] is the smallest prime
    factor of [width] dividing none of the balancer output widths, if
    any — the witness of impossibility. *)

val constructible_widths : balancer_outputs:int list -> limit:int -> int list
(** [constructible_widths ~balancer_outputs ~limit] lists the widths in
    [\[1, limit\]] passing the criterion. *)
