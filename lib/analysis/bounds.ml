let lg v =
  if v <= 0 then invalid_arg "Bounds.lg: non-positive";
  log (float_of_int v) /. log 2.

let contention_c ~w ~t ~n =
  let fw = float_of_int w and ft = float_of_int t and fn = float_of_int n in
  let l = lg w in
  (4. *. fn *. l /. fw)
  +. (fn *. l *. l /. ft)
  +. (fw *. l *. l *. l /. ft)
  +. (4. *. l *. l)
  +. l

let contention_c_asymptotic ~w ~t ~n =
  let fw = float_of_int w and ft = float_of_int t and fn = float_of_int n in
  let l = lg w in
  (fn *. l /. fw) +. (fn *. l *. l /. ft) +. (fw *. l *. l *. l /. ft) +. (l *. l)

let contention_bitonic ~w ~n =
  let l = lg w in
  float_of_int n *. l *. l /. float_of_int w

let contention_periodic ~w ~n =
  let l = lg w in
  float_of_int n *. l *. l *. l /. float_of_int w

let contention_butterfly ~w ~n =
  let l = lg w in
  (4. *. float_of_int n *. l /. float_of_int w) +. (l *. l) +. l

let contention_diffracting ~n = float_of_int n

let crossover_concurrency ~w = w * Cn_core.Params.ilog2 w
