(** Contention-model projection of multicore throughput from single-core
    measurements.

    The repo's benchmarks run on hosts where OCaml domains may timeshare
    one core, so measured multi-domain curves understate contention.
    This module combines the two things that {e are} trustworthy on such
    a host — the measured single-domain cost of a balancer crossing, and
    the stall-counting contention simulator ({!Cn_sim.Contention}, after
    Dwork-Herlihy-Waarts) — into projected throughput curves:

    {v token time(n) = depth · crossing_ns
                     + stalls/token(n) · stall_factor · crossing_ns v}

    For the central [Fetch&Increment] counter, stalls/token is [n - 1]
    (every concurrent process stalls the winner's word), so the
    projected rate saturates at the hot-spot ceiling; for a counting
    network, stalls/token comes from simulating the network at
    concurrency [n] under a fair randomized schedule.  Plotting both
    reproduces the paper's crossover story (Theorem 6.7: amortized
    contention O(n·lg w / w)) from first principles plus one measured
    number.

    [stall_factor] — the cost of one stall (a cache-line transfer to a
    contended word) in units of an uncontended crossing — is the
    model's one free knob.  The default ({!default_stall_factor} = 8)
    is in the range reported for cross-core transfers on commodity
    multicores; benchmarks record the factor they used alongside every
    projected row so the model is auditable. *)

val default_stall_factor : float
(** [8.] — stall cost in crossings when the caller does not override. *)

type calibration = {
  crossing_ns : float;  (** measured cost of one uncontended crossing *)
  stall_factor : float;  (** stall cost as a multiple of [crossing_ns] *)
}

val calibrate : ?stall_factor:float -> crossing_ns:float -> unit -> calibration
(** Build a calibration from an already-computed per-crossing cost (see
    [Cn_runtime.Harness.calibrate_crossing_ns]).
    @raise Invalid_argument unless both parameters are positive. *)

val of_throughput : ?stall_factor:float -> depth:int -> ops:int -> seconds:float -> unit -> calibration
(** [of_throughput ~depth ~ops ~seconds ()] derives [crossing_ns] from a
    single-domain throughput measurement of [ops] operations, each
    crossing [depth] balancers, taking [seconds].
    @raise Invalid_argument on non-positive parameters. *)

val stall_ns : calibration -> float
(** Projected cost of one stall, [stall_factor · crossing_ns]. *)

type point = {
  domains : int;  (** projected concurrency [n] *)
  stalls_per_token : float;  (** model stalls per operation at [n] *)
  token_ns : float;  (** projected per-operation latency *)
  ops_per_sec : float;  (** projected aggregate rate, [n · 10⁹ / token_ns] *)
}

val project_central : calibration -> domains:int -> point
(** Projected throughput of the central single-word counter at [domains]
    concurrent processes (stalls/token [= domains - 1]).
    @raise Invalid_argument if [domains <= 0]. *)

val project_network :
  ?seed:int -> ?m_per_n:int -> calibration -> Cn_network.Topology.t -> domains:int -> point
(** Projected throughput of a balancing network at [domains] concurrent
    processes.  Stalls/token is measured by running
    [?m_per_n · domains] tokens (default 64) through
    {!Cn_sim.Contention.measure} under [Scheduler.Random ?seed]
    (default 1) — the fair-average schedule, not the adversarial worst
    case.
    @raise Invalid_argument if [domains <= 0] or [m_per_n <= 0]. *)

val sweep_central : calibration -> domains_list:int list -> point list
(** {!project_central} at each concurrency. *)

val sweep_network :
  ?seed:int -> ?m_per_n:int -> calibration -> Cn_network.Topology.t -> domains_list:int list -> point list
(** {!project_network} at each concurrency. *)

(** {2 Analytic [(w, t)] tuning}

    The shard fabric's auto-tuner: instead of simulating every
    candidate topology, price Theorem 6.7's closed-form contention
    bound and Theorem 4.1's depth formula with the calibration and
    compare.  Deterministic — same calibration, same answer. *)

val predicted_stalls_per_token : w:int -> t:int -> domains:int -> float
(** Amortized stalls per token from the Theorem 6.7 bound,
    [contention_c(w,t,n) / n].
    @raise Invalid_argument if [domains <= 0]. *)

val tuned_point : ?stall_scale:float -> calibration -> w:int -> t:int -> domains:int -> point
(** The projected throughput point of [C(w,t)] at [domains] processes
    under the analytic stall model.  [?stall_scale] (default [1.])
    multiplies the predicted stalls — the hook the fabric uses to fold
    a live measured stall profile into the prediction.
    @raise Invalid_argument on non-positive [stall_scale] or
    [domains]. *)

val tune_t : ?stall_scale:float -> calibration -> w:int -> domains:int -> int
(** Predicted-best output width for a fixed input width: the [t = p·w]
    with [p] in [[1, lg w]] maximizing projected throughput (ties keep
    the narrower [t]).  Whenever contention is visible at all this is
    the paper's [t = w·lg w] recommendation (Theorem 6.7) — the unit
    tests pin exactly that at [w = 4, 8, 16].
    @raise Invalid_argument unless [w] is a power of two [>= 2]. *)

val tune : ?stall_scale:float -> ?widths:int list -> calibration -> domains:int -> int * int
(** Predicted-best [(w, t)] over [?widths] (default
    [[2; 4; 8; 16; 32]]), each width paired with its {!tune_t} choice.
    Low concurrency favours shallow networks (small [w]); past the
    crossover the contention relief of wider networks wins. *)

val crossover : ?seed:int -> ?m_per_n:int -> ?max_domains:int -> calibration -> Cn_network.Topology.t -> int option
(** [crossover c net] is the smallest projected concurrency (scanned up
    to [?max_domains], default 1024) at which the network's projected
    rate beats the central counter's, or [None] if it never does in
    range — the projection's answer to the paper's crossover question
    (compare [Bounds.crossover_concurrency]). *)
