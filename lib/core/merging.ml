open Cn_network

let valid = Params.valid_merging

(* The single layer M(t, 2) (paper, Fig. 5 top): balancer b_0 takes
   (x_0, y_{t/2-1}) to (z_0, z_{t-1}); balancer b_i, 1 <= i < t/2, takes
   (y_{i-1}, x_i) to (z_{2i-1}, z_{2i}). *)
let base_layer b (x, y) =
  let half = Array.length x in
  let t = 2 * half in
  let z = Array.make t x.(0) in
  let top0, bottom0 = Builder.balancer2 b x.(0) y.(half - 1) in
  z.(0) <- top0;
  z.(t - 1) <- bottom0;
  for i = 1 to half - 1 do
    let top, bottom = Builder.balancer2 b y.(i - 1) x.(i) in
    z.((2 * i) - 1) <- top;
    z.(2 * i) <- bottom
  done;
  z

let even a = Array.init ((Array.length a + 1) / 2) (fun i -> a.(2 * i))
let odd a = Array.init (Array.length a / 2) (fun i -> a.((2 * i) + 1))

let rec wires b ~delta (x, y) =
  let half = Array.length x in
  if Array.length y <> half then
    invalid_arg
      (Printf.sprintf "Merging.wires: halves have different lengths (%d and %d)" half
         (Array.length y));
  let t = 2 * half in
  if not (valid ~t ~delta) then
    invalid_arg (Printf.sprintf "Merging.wires: invalid parameters t=%d delta=%d" t delta);
  if delta = 2 then base_layer b (x, y)
  else begin
    let g = wires b ~delta:(delta / 2) (even x, even y) in
    let h = wires b ~delta:(delta / 2) (odd x, odd y) in
    base_layer b (g, h)
  end

let network ~t ~delta =
  if not (valid ~t ~delta) then
    invalid_arg (Printf.sprintf "Merging.network: invalid parameters t=%d delta=%d" t delta);
  Builder.build ~input_width:t (fun b ins ->
      let half = t / 2 in
      let x = Array.sub ins 0 half and y = Array.sub ins half half in
      wires b ~delta (x, y))

let depth_formula ~delta = Params.ilog2 delta
