open Cn_network

type comparator = { top : int; bottom : int }

type t = {
  width : int;
  comparators : comparator array;
  out_channels : int array; (* channel carrying output wire i *)
  depth : int;
}

let of_topology net =
  let n = Topology.size net in
  let chan = Array.make n [| 0; 0 |] in
  let of_source = function
    | Topology.Net_input i -> i
    | Topology.Bal_output { bal; port } -> chan.(bal).(port)
  in
  let order = Topology.topo_order net in
  let comparators =
    Array.map
      (fun b ->
        let descriptor = Topology.balancer net b in
        if descriptor.Balancer.fan_in <> 2 || descriptor.Balancer.fan_out <> 2 then
          invalid_arg "Sorting.of_topology: network contains a balancer that is not (2,2)";
        let feeds = Topology.feeds net b in
        let c = Array.map of_source feeds in
        chan.(b) <- c;
        { top = c.(0); bottom = c.(1) })
      order
  in
  let out_channels = Array.map of_source (Topology.outputs net) in
  {
    width = Topology.input_width net;
    comparators;
    out_channels;
    depth = Topology.depth net;
  }

let width net = net.width
let depth net = net.depth
let comparator_count net = Array.length net.comparators
let comparators net = Array.copy net.comparators

let apply net values =
  if Array.length values <> net.width then invalid_arg "Sorting.apply: wrong input length";
  let v = Array.copy values in
  Array.iter
    (fun { top; bottom } ->
      if v.(top) < v.(bottom) then begin
        let tmp = v.(top) in
        v.(top) <- v.(bottom);
        v.(bottom) <- tmp
      end)
    net.comparators;
  Array.map (fun c -> v.(c)) net.out_channels

let apply_ascending net values =
  let out = apply net values in
  let n = Array.length out in
  Array.init n (fun i -> out.(n - 1 - i))

let is_sorted_descending a =
  let ok = ref true in
  for i = 1 to Array.length a - 1 do
    if a.(i - 1) < a.(i) then ok := false
  done;
  !ok

let sorts_zero_one net =
  let w = net.width in
  if w > 24 then invalid_arg "Sorting.sorts_zero_one: width too large for exhaustive check";
  let ok = ref true in
  for mask = 0 to (1 lsl w) - 1 do
    if !ok then begin
      let input = Array.init w (fun i -> (mask lsr i) land 1) in
      if not (is_sorted_descending (apply net input)) then ok := false
    end
  done;
  !ok

let sorts_random ?(trials = 1000) ?(seed = 0) net =
  let rng = Random.State.make [| seed |] in
  let ok = ref true in
  for _ = 1 to trials do
    if !ok then begin
      let input = Array.init net.width (fun _ -> Random.State.int rng 1_000_000) in
      if not (is_sorted_descending (apply net input)) then ok := false
    end
  done;
  !ok
