(** Bounded exhaustive verification of network properties.

    Because a balancing network's quiescent output is a deterministic
    function of its input counts (Section 2.2), checking a property for
    *every input vector* up to a per-wire bound certifies it for every
    execution over those loads — a small-scope model check that
    complements the randomized property tests. *)

type outcome =
  | Verified of int  (** property held on all [n] input vectors checked *)
  | Counterexample of Cn_sequence.Sequence.t
      (** an input vector violating the property *)

val forall_inputs :
  max_tokens:int ->
  Cn_network.Topology.t ->
  (Cn_sequence.Sequence.t -> Cn_sequence.Sequence.t -> bool) ->
  outcome
(** [forall_inputs ~max_tokens net p] evaluates [p input output] on every
    input vector with entries in [\[0, max_tokens\]] — all
    [(max_tokens+1)^w] of them.
    @raise Invalid_argument if [max_tokens < 0] or the input space
    exceeds [10^7] vectors. *)

val counting : max_tokens:int -> Cn_network.Topology.t -> outcome
(** [counting ~max_tokens net] certifies the step property on every
    bounded load. *)

val smoothing : k:int -> max_tokens:int -> Cn_network.Topology.t -> outcome
(** [smoothing ~k ~max_tokens net] certifies the [k]-smooth property on
    every bounded load. *)

val merging :
  delta:int -> max_half_sum:int -> Cn_network.Topology.t -> outcome
(** [merging ~delta ~max_half_sum net] certifies the difference-merging
    contract: for every pair of step input halves with sums
    [sy <= max_half_sum] and [sx = sy + d], [0 <= d <= delta], the
    output is step.  The returned counterexample, if any, is the full
    input vector.
    @raise Invalid_argument if the network width is odd. *)
