open Cn_network

let wires b ins =
  let w = Array.length ins in
  if w < 2 || w mod 2 <> 0 then
    invalid_arg (Printf.sprintf "Ladder.wires: width must be even and >= 2 (got w=%d)" w);
  let half = w / 2 in
  let outs = Array.copy ins in
  for i = 0 to half - 1 do
    let top, bottom = Builder.balancer2 b ins.(i) ins.(i + half) in
    outs.(i) <- top;
    outs.(i + half) <- bottom
  done;
  outs

let network w = Builder.build ~input_width:w (fun b ins -> wires b ins)
