(** Parameter arithmetic shared by the constructions. *)

val is_power_of_two : int -> bool
(** [is_power_of_two v] holds iff [v = 2^k] for some [k >= 0]. *)

val ilog2 : int -> int
(** [ilog2 v] is [lg v] for a positive power of two.
    @raise Invalid_argument otherwise. *)

val valid_counting : w:int -> t:int -> bool
(** [valid_counting ~w ~t] holds iff [w = 2^k] and [t = p·w] with
    [k, p >= 1] — the valid parameters of [C(w, t)] (Section 4). *)

val valid_merging : t:int -> delta:int -> bool
(** [valid_merging ~t ~delta] holds iff [delta = 2^j >= 2] and [2·delta]
    divides [t] — the valid parameters of [M(t, δ)] (Section 3). *)
