(** Ablation of the paper's key design choice (Section 3.3): what happens
    to [C(w, t)] if the difference merging network [M(t, w/2)] (depth
    [lg(w/2)]) is replaced by the classical bitonic merger of width [t]
    (depth [lg t])?

    The result is still a counting network, but its depth becomes
    [Θ(lg w · lg t)] — it now *grows with the output width*, defeating
    the paper's central point that latency should depend on [w] alone.
    The benchmark harness (experiment E9) tabulates the depth gap. *)

open Cn_network

val valid : w:int -> t:int -> bool
(** [valid ~w ~t]: both [w] and [t] must be powers of two with
    [2 <= w <= t] (the bitonic merger needs power-of-two widths, so the
    ablation is restricted to [p] a power of two). *)

val network : w:int -> t:int -> Topology.t
(** [network ~w ~t] is the ablated network: the [C(w, t)] recursion with
    every [M(t', δ)] replaced by a bitonic merger of width [t'].
    @raise Invalid_argument on invalid parameters. *)

val depth_formula : w:int -> t:int -> int
(** Closed form of the ablated depth:
    [D(2, t) = 1], [D(w, t) = 1 + D(w/2, t/2) + lg t]. *)

val cross_parity_merger : t:int -> delta:int -> Topology.t
(** The *wrong* difference merger (cf. Section 3.3, third bullet): the
    recursion wired like the bitonic merger — [M0] on
    [(x_even, y_odd)], [M1] on [(x_odd, y_even)] — but still recursing
    on [δ] with the [M(t, 2)] combining layer.  With cross-parity
    wiring the sub-merger difference bound does not halve (it can reach
    [δ/2 + 1]), so the construction is NOT a difference merging network
    for its claimed parameters; the test suite exhibits counterexample
    loads.  Kept as an executable explanation of why the paper pairs
    even with even.
    @raise Invalid_argument on parameters invalid for [M(t, δ)]. *)
