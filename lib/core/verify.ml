module T = Cn_network.Topology
module E = Cn_network.Eval
module S = Cn_sequence.Sequence

type outcome = Verified of int | Counterexample of S.t

let forall_inputs ~max_tokens net p =
  if max_tokens < 0 then invalid_arg "Verify.forall_inputs: negative bound";
  let w = T.input_width net in
  let space = float_of_int (max_tokens + 1) ** float_of_int w in
  if space > 1e7 then invalid_arg "Verify.forall_inputs: input space too large";
  let x = Array.make w 0 in
  let checked = ref 0 in
  (* Odometer enumeration of all vectors in [0, max_tokens]^w. *)
  let rec advance i = if i >= w then false
    else if x.(i) < max_tokens then begin
      x.(i) <- x.(i) + 1;
      true
    end
    else begin
      x.(i) <- 0;
      advance (i + 1)
    end
  in
  let rec loop () =
    incr checked;
    if not (p x (E.quiescent net x)) then Counterexample (Array.copy x)
    else if advance 0 then loop ()
    else Verified !checked
  in
  loop ()

let counting ~max_tokens net = forall_inputs ~max_tokens net (fun _ y -> S.is_step y)

let smoothing ~k ~max_tokens net = forall_inputs ~max_tokens net (fun _ y -> S.is_smooth k y)

let merging ~delta ~max_half_sum net =
  let t = T.input_width net in
  if t mod 2 <> 0 then invalid_arg "Verify.merging: odd input width";
  let half = t / 2 in
  let checked = ref 0 in
  let rec loop sy d =
    if sy > max_half_sum then Verified !checked
    else if d > delta then loop (sy + 1) 0
    else begin
      incr checked;
      let x = S.make_step ~total:(sy + d) ~width:half in
      let y = S.make_step ~total:sy ~width:half in
      let input = S.concat x y in
      if S.is_step (E.quiescent net input) then loop sy (d + 1) else Counterexample input
    end
  in
  loop 0 0
