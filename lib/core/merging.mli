(** The difference merging network [M(t, δ)] (paper, Section 3).

    [M(t, δ)] is a regular network of width [t] and depth [lg δ] that
    merges two step input sequences [x], [y] (the first and second half
    of its input) into one step output sequence, provided
    [0 <= Σx − Σy <= δ].  Valid parameters are [t = p·2^i], [δ = 2^j]
    with [p >= 1] and [1 <= j < i] — equivalently [2δ] divides [t].

    The construction recurses on [δ]: two copies of [M(t/2, δ/2)] on the
    even and odd subsequences, combined by the single layer [M(t, 2)]
    (Lemma 3.3).  Its depth [lg δ] — rather than the bitonic merger's
    [lg t] — is what makes the depth of [C(w, t)] independent of [t]
    (Section 3.3). *)

open Cn_network

val valid : t:int -> delta:int -> bool
(** [valid ~t ~delta] holds iff [(t, delta)] is a valid parameter pair:
    [delta] is a power of two, [delta >= 2], and [2·delta] divides [t]. *)

val wires :
  Builder.t ->
  delta:int ->
  Builder.wire array * Builder.wire array ->
  Builder.wire array
(** [wires b ~delta (x, y)] appends [M(t, delta)] (where
    [t = length x + length y]) to builder [b]; [x] is the first input
    sequence and [y] the second.  Returns the [t] output wires in order.
    @raise Invalid_argument if lengths differ or the parameters are not
    valid. *)

val network : t:int -> delta:int -> Topology.t
(** [network ~t ~delta] is the standalone topology of [M(t, delta)]; its
    first [t/2] input wires carry [x] and the rest carry [y].
    @raise Invalid_argument on invalid parameters. *)

val depth_formula : delta:int -> int
(** [depth_formula ~delta = lg delta] (Lemma 3.1). *)
