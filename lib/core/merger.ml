open Cn_network

type strategy = Difference | Periodic3 | Periodic_k of int
type scope = All_levels | Top_only

let strategy_name = function
  | Difference -> "difference"
  | Periodic3 -> "periodic3"
  | Periodic_k k -> Printf.sprintf "pk%d" k

let strategy_of_string s =
  match String.lowercase_ascii s with
  | "difference" | "m" -> Some Difference
  | "periodic3" | "p3" -> Some Periodic3
  | s when String.length s > 2 && String.sub s 0 2 = "pk" -> (
      match int_of_string_opt (String.sub s 2 (String.length s - 2)) with
      | Some k when k >= 1 -> Some (Periodic_k k)
      | _ -> None)
  | _ -> None

let scope_name = function All_levels -> "all" | Top_only -> "top"

let scope_of_string s =
  match String.lowercase_ascii s with
  | "all" | "all-levels" -> Some All_levels
  | "top" | "top-only" -> Some Top_only
  | _ -> None

let valid ~strategy ~t ~delta =
  match strategy with
  | Difference -> Params.valid_merging ~t ~delta
  | Periodic3 -> Params.is_power_of_two t && t >= 4 && delta >= 1 && delta <= t / 2
  | Periodic_k k -> Params.is_power_of_two t && t >= 4 && delta >= 1 && delta <= t / 2 && k >= 1

(* A layer is a matching over the t wires; wires left out of the
   matching fall through to the next layer untouched. *)
let apply_matching b z pairs =
  let z' = Array.copy z in
  List.iter
    (fun (i, j) ->
      let top, bottom = Builder.balancer2 b z.(i) z.(j) in
      z'.(i) <- top;
      z'.(j) <- bottom)
    pairs;
  z'

(* The three matchings the periodic candidates are assembled from. *)

let mirror t = List.init (t / 2) (fun i -> (i, t - 1 - i))

let brick_even t = List.init (t / 2) (fun i -> (2 * i, (2 * i) + 1))

let brick_odd t = List.init ((t / 2) - 1) (fun i -> ((2 * i) + 1, (2 * i) + 2))

(* Balanced layer l (1-based) of the Dowd-Perl-Rudolph-Saks block:
   wire i meets the wire whose low (lg t - l + 1) bits are complemented.
   Layer 1 is the full mirror; layer lg t pairs adjacent wires. *)
let balanced t l =
  let mask = (1 lsl (Params.ilog2 t - l + 1)) - 1 in
  List.filter_map
    (fun i -> if i < i lxor mask then Some (i, i lxor mask) else None)
    (List.init t Fun.id)

let period ~strategy ~t =
  match strategy with
  | Difference -> invalid_arg "Merger.period: the difference merger is not periodic"
  | Periodic3 -> [ mirror t; brick_even t; brick_odd t ]
  | Periodic_k k ->
      (* The period is the first k balanced layers, clamped at lg t so
         the same strategy stays valid at every recursion level. *)
      List.init (min k (Params.ilog2 t)) (fun i -> balanced t (i + 1))

let rounds ~strategy ~t =
  let lgt = Params.ilog2 t in
  match strategy with
  | Difference -> invalid_arg "Merger.rounds: the difference merger is not periodic"
  | Periodic3 -> lgt
  | Periodic_k k ->
      let k = min k lgt in
      (lgt + k - 1) / k

let check_valid ~who ~strategy ~t ~delta =
  if not (valid ~strategy ~t ~delta) then
    invalid_arg
      (Printf.sprintf "%s: invalid parameters strategy=%s t=%d delta=%d" who
         (strategy_name strategy) t delta)

let wires strategy b ~delta (x, y) =
  match strategy with
  | Difference -> Merging.wires b ~delta (x, y)
  | Periodic3 | Periodic_k _ ->
      let half = Array.length x in
      if Array.length y <> half then
        invalid_arg
          (Printf.sprintf "Merger.wires: halves have different lengths (%d and %d)" half
             (Array.length y));
      let t = 2 * half in
      check_valid ~who:"Merger.wires" ~strategy ~t ~delta;
      let layers = period ~strategy ~t in
      let r = rounds ~strategy ~t in
      let z = ref (Array.append x y) in
      for _ = 1 to r do
        List.iter (fun pairs -> z := apply_matching b !z pairs) layers
      done;
      !z

let network ~strategy ~t ~delta =
  check_valid ~who:"Merger.network" ~strategy ~t ~delta;
  match strategy with
  | Difference -> Merging.network ~t ~delta
  | Periodic3 | Periodic_k _ ->
      Builder.build ~input_width:t (fun b ins ->
          let half = t / 2 in
          let x = Array.sub ins 0 half and y = Array.sub ins half half in
          wires strategy b ~delta (x, y))

let depth_formula ~strategy ~t ~delta =
  match strategy with
  | Difference -> Merging.depth_formula ~delta
  | Periodic3 | Periodic_k _ ->
      let layers = List.length (period ~strategy ~t) in
      layers * rounds ~strategy ~t

let size_formula ~strategy ~t ~delta =
  match strategy with
  | Difference -> t / 2 * Merging.depth_formula ~delta
  | Periodic3 | Periodic_k _ ->
      let per_period =
        List.fold_left (fun acc pairs -> acc + List.length pairs) 0 (period ~strategy ~t)
      in
      per_period * rounds ~strategy ~t
