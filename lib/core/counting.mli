(** The irregular counting network [C(w, t)] (paper, Section 4) — the
    paper's primary contribution.

    [C(w, t)] has input width [w = 2^k] and output width [t = p·w]
    ([k, p >= 1]); it is built from [(2,2)]- and [(2,2p)]-balancers.  The
    recursion (Fig. 10) is

    {v C(w, t) = L(w) ; ( C(w/2, t/2) || C(w/2, t/2) ) ; M(t, w/2) v}

    with base case [C(2, 2p)] a single [(2, 2p)]-balancer.  Its depth is
    [(lg²w + lgw)/2] (Theorem 4.1) — independent of [t] — and its output
    sequence satisfies the step property in every quiescent state
    (Theorem 4.2).  Increasing [t] lowers amortized contention at equal
    depth (Theorem 6.7). *)

open Cn_network

val valid : w:int -> t:int -> bool
(** [valid ~w ~t] holds iff [(w, t)] is a valid parameter pair. *)

val wires : Builder.t -> t:int -> Builder.wire array -> Builder.wire array
(** [wires b ~t ins] appends [C(w, t)] ([w = Array.length ins]) to
    builder [b] and returns the [t] output wires in order.
    @raise Invalid_argument on invalid parameters. *)

val network : w:int -> t:int -> Topology.t
(** [network ~w ~t] is the standalone topology of [C(w, t)].
    @raise Invalid_argument on invalid parameters. *)

val wires_with :
  Builder.t ->
  merger:Merger.strategy ->
  scope:Merger.scope ->
  t:int ->
  Builder.wire array ->
  Builder.wire array
(** [wires_with b ~merger ~scope ~t ins] is {!wires} with the merger
    stage of each recursion level replaced according to [merger] and
    [scope]: [All_levels] substitutes the strategy at every level,
    [Top_only] only at the outermost merger (inner levels keep the
    paper's [M(t, δ)]).  With [merger = Difference] this is exactly
    {!wires}.  {b The step property of the hybrid is not guaranteed} —
    it is certified or refuted by the {!Cn_lint} pipeline.
    @raise Invalid_argument on invalid parameters, including a level
    whose output width is not a power of two under a periodic
    strategy. *)

val network_with :
  merger:Merger.strategy -> scope:Merger.scope -> w:int -> t:int -> Topology.t
(** Standalone topology of the merger-substituted hybrid.
    @raise Invalid_argument on invalid parameters. *)

val regular : int -> Topology.t
(** [regular w = network ~w ~t:w] — the new regular family [C(w, w)]
    (Section 1.3.1, first bullet). *)

val wide : int -> Topology.t
(** [wide w = network ~w ~t:(w·lgw)] — the recommended high-concurrency
    configuration [t = w·lgw] (Section 1.3.1, second bullet), for
    [w >= 4].  @raise Invalid_argument if [w < 4] (for [w = 2],
    [w·lgw = w] carries no extra width). *)

val depth_formula : w:int -> int
(** [depth_formula ~w = (lg²w + lgw)/2] (Theorem 4.1). *)

val depth_formula_with :
  merger:Merger.strategy -> scope:Merger.scope -> w:int -> t:int -> int
(** Closed-form depth of the merger-substituted hybrid, by the
    recurrence [D(2, t) = 1],
    [D(w, t) = 1 + D(w/2, t/2) + depth(merger at width t)].  Unlike
    Theorem 4.1's bound this depends on [t] for the periodic
    strategies.  @raise Invalid_argument on invalid parameters. *)

val size_formula : w:int -> t:int -> int
(** [size_formula ~w ~t] is the number of balancers of [C(w, t)], by the
    recurrence [S(2, 2p) = 1],
    [S(w, t) = w/2 + 2·S(w/2, t/2) + (t/2)·lg(w/2)]. *)
