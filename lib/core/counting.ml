open Cn_network

let valid = Params.valid_counting

let rec wires_with b ~merger ~scope ~t ins =
  let w = Array.length ins in
  if not (valid ~w ~t) then
    invalid_arg (Printf.sprintf "Counting.wires: invalid parameters w=%d t=%d" w t);
  if w = 2 then Builder.add_balancer b ~fan_out:t ins
  else begin
    let inner =
      match scope with Merger.All_levels -> merger | Merger.Top_only -> Merger.Difference
    in
    let l = Ladder.wires b ins in
    let half = w / 2 in
    let e = Array.sub l 0 half and f = Array.sub l half half in
    let g = wires_with b ~merger:inner ~scope ~t:(t / 2) e in
    let h = wires_with b ~merger:inner ~scope ~t:(t / 2) f in
    Merger.wires merger b ~delta:half (g, h)
  end

let wires b ~t ins = wires_with b ~merger:Merger.Difference ~scope:Merger.All_levels ~t ins

let network_with ~merger ~scope ~w ~t =
  if not (valid ~w ~t) then
    invalid_arg (Printf.sprintf "Counting.network: invalid parameters w=%d t=%d" w t);
  Builder.build ~input_width:w (fun b ins -> wires_with b ~merger ~scope ~t ins)

let network ~w ~t = network_with ~merger:Merger.Difference ~scope:Merger.All_levels ~w ~t

let regular w = network ~w ~t:w

let wide w =
  if w < 4 then
    invalid_arg (Printf.sprintf "Counting.wide: requires w >= 4 (got w=%d)" w);
  network ~w ~t:(w * Params.ilog2 w)

let depth_formula ~w =
  let k = Params.ilog2 w in
  ((k * k) + k) / 2

let rec size_formula ~w ~t =
  if not (valid ~w ~t) then
    invalid_arg (Printf.sprintf "Counting.size_formula: invalid parameters w=%d t=%d" w t);
  if w = 2 then 1
  else (w / 2) + (2 * size_formula ~w:(w / 2) ~t:(t / 2)) + (t / 2 * Params.ilog2 (w / 2))

let rec depth_formula_with ~merger ~scope ~w ~t =
  if not (valid ~w ~t) then
    invalid_arg
      (Printf.sprintf "Counting.depth_formula_with: invalid parameters w=%d t=%d" w t);
  if w = 2 then 1
  else begin
    let inner =
      match scope with Merger.All_levels -> merger | Merger.Top_only -> Merger.Difference
    in
    1
    + depth_formula_with ~merger:inner ~scope ~w:(w / 2) ~t:(t / 2)
    + Merger.depth_formula ~strategy:merger ~t ~delta:(w / 2)
  end
