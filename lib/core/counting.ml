open Cn_network

let valid = Params.valid_counting

let rec wires b ~t ins =
  let w = Array.length ins in
  if not (valid ~w ~t) then
    invalid_arg (Printf.sprintf "Counting.wires: invalid parameters w=%d t=%d" w t);
  if w = 2 then Builder.add_balancer b ~fan_out:t ins
  else begin
    let l = Ladder.wires b ins in
    let half = w / 2 in
    let e = Array.sub l 0 half and f = Array.sub l half half in
    let g = wires b ~t:(t / 2) e in
    let h = wires b ~t:(t / 2) f in
    Merging.wires b ~delta:half (g, h)
  end

let network ~w ~t =
  if not (valid ~w ~t) then
    invalid_arg (Printf.sprintf "Counting.network: invalid parameters w=%d t=%d" w t);
  Builder.build ~input_width:w (fun b ins -> wires b ~t ins)

let regular w = network ~w ~t:w

let wide w =
  if w < 4 then invalid_arg "Counting.wide: requires w >= 4";
  network ~w ~t:(w * Params.ilog2 w)

let depth_formula ~w =
  let k = Params.ilog2 w in
  ((k * k) + k) / 2

let rec size_formula ~w ~t =
  if not (valid ~w ~t) then
    invalid_arg (Printf.sprintf "Counting.size_formula: invalid parameters w=%d t=%d" w t);
  if w = 2 then 1
  else (w / 2) + (2 * size_formula ~w:(w / 2) ~t:(t / 2)) + (t / 2 * Params.ilog2 (w / 2))
