open Cn_network

let valid ~w ~t =
  Params.is_power_of_two w && Params.is_power_of_two t && w >= 2 && t >= w

(* The bitonic merger, duplicated minimally here to avoid a dependency
   cycle with cn_baselines: MERGER(t) merges two step halves (x, y) via
   M0 on (x_even, y_odd), M1 on (x_odd, y_even) and a final pairing
   layer. *)
let even a = Array.init ((Array.length a + 1) / 2) (fun i -> a.(2 * i))
let odd a = Array.init (Array.length a / 2) (fun i -> a.((2 * i) + 1))

let rec bitonic_merger b (x, y) =
  let half = Array.length x in
  if half = 1 then begin
    let top, bottom = Builder.balancer2 b x.(0) y.(0) in
    [| top; bottom |]
  end
  else begin
    let g = bitonic_merger b (even x, odd y) in
    let h = bitonic_merger b (odd x, even y) in
    let t = 2 * half in
    let z = Array.make t x.(0) in
    for i = 0 to half - 1 do
      let top, bottom = Builder.balancer2 b g.(i) h.(i) in
      z.(2 * i) <- top;
      z.((2 * i) + 1) <- bottom
    done;
    z
  end

let rec wires b ~t ins =
  let w = Array.length ins in
  if w = 2 then Builder.add_balancer b ~fan_out:t ins
  else begin
    let l = Ladder.wires b ins in
    let half = w / 2 in
    let g = wires b ~t:(t / 2) (Array.sub l 0 half) in
    let h = wires b ~t:(t / 2) (Array.sub l half half) in
    bitonic_merger b (g, h)
  end

let network ~w ~t =
  if not (valid ~w ~t) then
    invalid_arg (Printf.sprintf "Ablation.network: invalid parameters w=%d t=%d" w t);
  Builder.build ~input_width:w (fun b ins -> wires b ~t ins)

(* The M(t,2) base layer, shared with the faithful construction. *)
let base_layer b (x, y) =
  let half = Array.length x in
  let t = 2 * half in
  let z = Array.make t x.(0) in
  let top0, bottom0 = Builder.balancer2 b x.(0) y.(half - 1) in
  z.(0) <- top0;
  z.(t - 1) <- bottom0;
  for i = 1 to half - 1 do
    let top, bottom = Builder.balancer2 b y.(i - 1) x.(i) in
    z.((2 * i) - 1) <- top;
    z.(2 * i) <- bottom
  done;
  z

let rec cross_parity_wires b ~delta (x, y) =
  if delta = 2 then base_layer b (x, y)
  else begin
    (* Bitonic-style input wiring: evens of x with odds of y, and
       vice-versa — this is the deliberate mistake. *)
    let g = cross_parity_wires b ~delta:(delta / 2) (even x, odd y) in
    let h = cross_parity_wires b ~delta:(delta / 2) (odd x, even y) in
    base_layer b (g, h)
  end

let cross_parity_merger ~t ~delta =
  if not (Params.valid_merging ~t ~delta) then
    invalid_arg
      (Printf.sprintf "Ablation.cross_parity_merger: invalid parameters t=%d delta=%d" t delta);
  Builder.build ~input_width:t (fun b ins ->
      let half = t / 2 in
      cross_parity_wires b ~delta (Array.sub ins 0 half, Array.sub ins half half))

let rec depth_formula ~w ~t =
  if not (valid ~w ~t) then
    invalid_arg (Printf.sprintf "Ablation.depth_formula: invalid parameters w=%d t=%d" w t);
  if w = 2 then 1 else 1 + depth_formula ~w:(w / 2) ~t:(t / 2) + Params.ilog2 t
