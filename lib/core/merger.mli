(** Merger strategies for the [C(w, t)] recursion.

    The paper's difference merger [M(t, δ)] (Section 3, {!Merging}) is
    the depth bottleneck of [C(w, t)].  Piotrów's periodic merging
    networks ("Faster 3-Periodic Merging Networks", "Faster
    Small-Constant-Periodic Merging Networks") suggest drop-in
    replacement stages built from a small fixed {e period} of layers
    applied repeatedly.  This module implements two such candidate
    stages for balancing networks and exposes them — together with the
    classic difference merger — behind one {!strategy} type that
    {!Counting.network} threads through its recursion.

    {b Correctness is not assumed.}  The periodic constructions are
    comparator-network ideas transplanted to balancers; nothing
    guarantees a substituted merger preserves the step property.  Every
    hybrid is adjudicated by the {!Cn_lint} certification pipeline,
    which either certifies it (bounded-exhaustively) or refutes it with
    a concrete counterexample token profile.  Refutations are
    first-class results and ship in the certificate portfolio.

    The candidate periods:

    - [Periodic3] — a 3-layer period in the style of the
      Kutyłowski–Loryś–Oesterdiekhoff / Piotrów 3-periodic mergers:
      a full mirror matching ([i ↔ t−1−i]) followed by the two brick
      (odd-even transposition) matchings, repeated [lg t] times.
    - [Periodic_k k] — a period made of the first [min k (lg t)]
      balanced layers of the Dowd–Perl–Rudolph–Saks block (layer [l]
      complements the low [lg t − l + 1] index bits), repeated
      [⌈lg t / k⌉] times.  With [k >= lg t] the network is exactly one
      balanced block — the DPRS periodic-merge stage, and the balancer
      analogue of the block AHS cascade in their periodic counting
      network.  [k] is clamped per width so one strategy value stays
      valid at every recursion level of [C(w, t)]. *)

open Cn_network

type strategy =
  | Difference  (** the paper's [M(t, δ)] — {!Merging} *)
  | Periodic3  (** 3-layer mirror+brick period, [lg t] rounds *)
  | Periodic_k of int
      (** [min k (lg t)]-layer balanced-block prefix period,
          [⌈lg t / k⌉] rounds *)

type scope =
  | All_levels  (** substitute the merger at every recursion level *)
  | Top_only  (** substitute only the outermost merger *)

val strategy_name : strategy -> string
(** ["difference"], ["periodic3"] or ["pk<k>"] — the token used in
    certificate rows, CLI flags and portfolio entry names. *)

val strategy_of_string : string -> strategy option
(** Inverse of {!strategy_name}; also accepts ["m"] and ["p3"]. *)

val scope_name : scope -> string
(** ["all"] or ["top"]. *)

val scope_of_string : string -> scope option

val valid : strategy:strategy -> t:int -> delta:int -> bool
(** Parameter validity.  [Difference] defers to
    {!Params.valid_merging}; the periodic strategies require [t] a
    power of two [>= 4], [1 <= delta <= t/2], and for [Periodic_k k]
    additionally [k >= 1]. *)

val period : strategy:strategy -> t:int -> (int * int) list list
(** The fixed layer period at width [t]: one matching per layer.
    @raise Invalid_argument on [Difference]. *)

val rounds : strategy:strategy -> t:int -> int
(** How many times the period is applied.
    @raise Invalid_argument on [Difference]. *)

val wires :
  strategy ->
  Builder.t ->
  delta:int ->
  Builder.wire array * Builder.wire array ->
  Builder.wire array
(** [wires strategy b ~delta (x, y)] appends the chosen merger stage to
    builder [b].  For [Difference] this is exactly {!Merging.wires}.
    @raise Invalid_argument on invalid parameters or halves of
    different lengths. *)

val network : strategy:strategy -> t:int -> delta:int -> Topology.t
(** Standalone topology of the merger stage; the first [t/2] inputs
    carry [x], the rest [y].  [delta] records the merging contract the
    stage is certified against (the difference bound [0 <= Σx − Σy <=
    δ]); the periodic constructions do not read it structurally. *)

val depth_formula : strategy:strategy -> t:int -> delta:int -> int
(** Closed-form depth: [lg δ] for [Difference], [3·lg t] for
    [Periodic3], [k'·⌈lg t / k'⌉] with [k' = min k (lg t)] for
    [Periodic_k k]. *)

val size_formula : strategy:strategy -> t:int -> delta:int -> int
(** Number of balancers of the stage. *)
