(** Forward and backward butterfly networks (paper, Section 5).

    The forward butterfly [D(w)] recursively runs two copies of [D(w/2)]
    on the two halves of its input and finishes with the ladder [L(w)];
    the backward butterfly [E(w)] starts with [L(w)] and recurses on the
    two halves of its output.  Both have depth [lg w]; [D(w)] is
    [lg w]-smoothing (Lemma 5.2) and [E(w)] is isomorphic to [D(w)]
    (Lemma 5.3), hence also [lg w]-smoothing.  The first [lg w] layers of
    [C(w, t)] are a backward butterfly whose last layer uses
    [(2, 2p)]-balancers (Section 6.4). *)

open Cn_network

val forward_wires : Builder.t -> Builder.wire array -> Builder.wire array
(** [forward_wires b ins] appends [D(w)] ([w = Array.length ins], a power
    of two) to builder [b].  @raise Invalid_argument if [w] is not a
    power of two. *)

val backward_wires : Builder.t -> Builder.wire array -> Builder.wire array
(** [backward_wires b ins] appends [E(w)] to builder [b].
    @raise Invalid_argument if [w] is not a power of two. *)

val forward : int -> Topology.t
(** [forward w] is the standalone topology of [D(w)], [w >= 2] a power of
    two.  @raise Invalid_argument otherwise. *)

val backward : int -> Topology.t
(** [backward w] is the standalone topology of [E(w)], [w >= 2] a power
    of two.  @raise Invalid_argument otherwise. *)

val depth_formula : w:int -> int
(** [depth_formula ~w = lg w] (Lemma 5.1). *)

val smoothness_bound : w:int -> int
(** [smoothness_bound ~w = lg w]: in any quiescent state the outputs of
    [D(w)] (and [E(w)]) are [lg w]-smooth (Lemma 5.2). *)

val lemma_5_3_mapping : int -> int array
(** [lemma_5_3_mapping w] is the explicit balancer mapping witnessing
    [E(w) ≅ D(w)] (Lemma 5.3): layer [l] of [E(w)] joins wires differing
    in bit [lg w - l] while layer [l] of [D(w)] joins wires differing in
    bit [l - 1], so reversing the bits of the wire index carries the
    balancers of one onto the other.  Entry [i] is the balancer of
    [forward w] corresponding to balancer [i] of [backward w].  The
    mapping is constructed, not searched for, so it is cheap at any
    width; validate it with [Iso.check].
    @raise Invalid_argument if [w] is not a power of two [>= 2]. *)

val isomorphism : int -> (Permutation.t * Permutation.t) option
(** [isomorphism w] is a wire correspondence [(pi_in, pi_out)] realizing
    [E(w) ≅ D(w)] (Lemma 5.3), obtained by validating
    [lemma_5_3_mapping w] with [Iso.check] (falling back to [Iso.find]'s
    constrained search); by Lemma 2.7 it satisfies
    [quiescent (forward w) (permute pi_in x)
     = permute pi_out (quiescent (backward w) x)]. *)
