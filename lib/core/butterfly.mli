(** Forward and backward butterfly networks (paper, Section 5).

    The forward butterfly [D(w)] recursively runs two copies of [D(w/2)]
    on the two halves of its input and finishes with the ladder [L(w)];
    the backward butterfly [E(w)] starts with [L(w)] and recurses on the
    two halves of its output.  Both have depth [lg w]; [D(w)] is
    [lg w]-smoothing (Lemma 5.2) and [E(w)] is isomorphic to [D(w)]
    (Lemma 5.3), hence also [lg w]-smoothing.  The first [lg w] layers of
    [C(w, t)] are a backward butterfly whose last layer uses
    [(2, 2p)]-balancers (Section 6.4). *)

open Cn_network

val forward_wires : Builder.t -> Builder.wire array -> Builder.wire array
(** [forward_wires b ins] appends [D(w)] ([w = Array.length ins], a power
    of two) to builder [b].  @raise Invalid_argument if [w] is not a
    power of two. *)

val backward_wires : Builder.t -> Builder.wire array -> Builder.wire array
(** [backward_wires b ins] appends [E(w)] to builder [b].
    @raise Invalid_argument if [w] is not a power of two. *)

val forward : int -> Topology.t
(** [forward w] is the standalone topology of [D(w)], [w >= 2] a power of
    two.  @raise Invalid_argument otherwise. *)

val backward : int -> Topology.t
(** [backward w] is the standalone topology of [E(w)], [w >= 2] a power
    of two.  @raise Invalid_argument otherwise. *)

val depth_formula : w:int -> int
(** [depth_formula ~w = lg w] (Lemma 5.1). *)

val smoothness_bound : w:int -> int
(** [smoothness_bound ~w = lg w]: in any quiescent state the outputs of
    [D(w)] (and [E(w)]) are [lg w]-smooth (Lemma 5.2). *)

val isomorphism : int -> (Permutation.t * Permutation.t) option
(** [isomorphism w] is a wire correspondence [(pi_in, pi_out)] realizing
    [E(w) ≅ D(w)] (Lemma 5.3), obtained by [Iso.find]'s constrained
    search; by Lemma 2.7 it satisfies
    [quiescent (forward w) (permute pi_in x)
     = permute pi_out (quiescent (backward w) x)].
    [None] only if the search fails (it never does for the widths the
    tests exercise). *)
