let is_power_of_two v = v > 0 && v land (v - 1) = 0

let ilog2 v =
  if not (is_power_of_two v) then
    invalid_arg (Printf.sprintf "Params.ilog2: not a positive power of two (got %d)" v);
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v / 2) in
  go 0 v

let valid_counting ~w ~t = is_power_of_two w && w >= 2 && t >= w && t mod w = 0

let valid_merging ~t ~delta =
  is_power_of_two delta && delta >= 2 && t > 0 && t mod (2 * delta) = 0
