open Cn_network

let check_width name w =
  if not (Params.is_power_of_two w) || w < 2 then
    invalid_arg (name ^ ": width must be a power of two >= 2")

let rec forward_wires b ins =
  let w = Array.length ins in
  if w = 1 then ins
  else begin
    if not (Params.is_power_of_two w) then
      invalid_arg "Butterfly.forward_wires: width must be a power of two";
    let half = w / 2 in
    let top = forward_wires b (Array.sub ins 0 half) in
    let bottom = forward_wires b (Array.sub ins half half) in
    Ladder.wires b (Array.append top bottom)
  end

let rec backward_wires b ins =
  let w = Array.length ins in
  if w = 1 then ins
  else begin
    if not (Params.is_power_of_two w) then
      invalid_arg "Butterfly.backward_wires: width must be a power of two";
    let half = w / 2 in
    let l = Ladder.wires b ins in
    let top = backward_wires b (Array.sub l 0 half) in
    let bottom = backward_wires b (Array.sub l half half) in
    Array.append top bottom
  end

let forward w =
  check_width "Butterfly.forward" w;
  Builder.build ~input_width:w (fun b ins -> forward_wires b ins)

let backward w =
  check_width "Butterfly.backward" w;
  Builder.build ~input_width:w (fun b ins -> backward_wires b ins)

let depth_formula ~w = Params.ilog2 w

let smoothness_bound ~w = Params.ilog2 w

let isomorphism w =
  let e = backward w and d = forward w in
  match Iso.find e d with
  | None -> None
  | Some mapping -> (
      match Iso.check e d ~mapping with Ok pair -> Some pair | Error _ -> None)
