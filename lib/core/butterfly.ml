open Cn_network

let check_width name w =
  if not (Params.is_power_of_two w) || w < 2 then
    invalid_arg (Printf.sprintf "%s: width must be a power of two >= 2 (got w=%d)" name w)

let rec forward_wires b ins =
  let w = Array.length ins in
  if w = 1 then ins
  else begin
    if not (Params.is_power_of_two w) then
      invalid_arg "Butterfly.forward_wires: width must be a power of two";
    let half = w / 2 in
    let top = forward_wires b (Array.sub ins 0 half) in
    let bottom = forward_wires b (Array.sub ins half half) in
    Ladder.wires b (Array.append top bottom)
  end

let rec backward_wires b ins =
  let w = Array.length ins in
  if w = 1 then ins
  else begin
    if not (Params.is_power_of_two w) then
      invalid_arg "Butterfly.backward_wires: width must be a power of two";
    let half = w / 2 in
    let l = Ladder.wires b ins in
    let top = backward_wires b (Array.sub l 0 half) in
    let bottom = backward_wires b (Array.sub l half half) in
    Array.append top bottom
  end

let forward w =
  check_width "Butterfly.forward" w;
  Builder.build ~input_width:w (fun b ins -> forward_wires b ins)

let backward w =
  check_width "Butterfly.backward" w;
  Builder.build ~input_width:w (fun b ins -> backward_wires b ins)

let depth_formula ~w = Params.ilog2 w

let smoothness_bound ~w = Params.ilog2 w

(* Replays of the two recursions above over global wire positions.
   [Ladder.wires] keeps each output at its input's position, so a
   balancer is identified by the position pair it joins; in a butterfly
   every pair occurs at most once, making the pair a unique key.  [emit]
   is called in balancer-creation order, which is id order in
   [Builder]. *)
let rec replay_forward emit positions =
  let n = Array.length positions in
  if n > 1 then begin
    let half = n / 2 in
    replay_forward emit (Array.sub positions 0 half);
    replay_forward emit (Array.sub positions half half);
    for i = 0 to half - 1 do
      emit positions.(i) positions.(i + half)
    done
  end

let rec replay_backward emit positions =
  let n = Array.length positions in
  if n > 1 then begin
    let half = n / 2 in
    for i = 0 to half - 1 do
      emit positions.(i) positions.(i + half)
    done;
    replay_backward emit (Array.sub positions 0 half);
    replay_backward emit (Array.sub positions half half)
  end

let lemma_5_3_mapping w =
  check_width "Butterfly.lemma_5_3_mapping" w;
  let lgw = Params.ilog2 w in
  (* Layer l of E(w) joins wires differing in bit [lgw - l]; layer l of
     D(w) joins wires differing in bit [l - 1].  Reversing the bits of
     the wire index therefore carries E-balancers onto D-balancers. *)
  let rev i =
    let r = ref 0 in
    for b = 0 to lgw - 1 do
      if i land (1 lsl b) <> 0 then r := !r lor (1 lsl (lgw - 1 - b))
    done;
    !r
  in
  let positions = Array.init w (fun i -> i) in
  let d_id = Hashtbl.create (w * lgw) in
  let next = ref 0 in
  replay_forward
    (fun p q ->
      Hashtbl.replace d_id (p, q) !next;
      incr next)
    positions;
  let mapping = Array.make !next (-1) in
  next := 0;
  replay_backward
    (fun p q ->
      let p' = rev p and q' = rev q in
      mapping.(!next) <- Hashtbl.find d_id (min p' q', max p' q');
      incr next)
    positions;
  mapping

let isomorphism w =
  let e = backward w and d = forward w in
  match Iso.check e d ~mapping:(lemma_5_3_mapping w) with
  | Ok pair -> Some pair
  | Error _ -> (
      (* The constructed mapping is validated, never trusted; if it ever
         fails, fall back to the generic search. *)
      match Iso.find e d with
      | None -> None
      | Some mapping -> (
          match Iso.check e d ~mapping with Ok pair -> Some pair | Error _ -> None))
