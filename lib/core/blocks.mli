(** The block decomposition of [C(w, t)] (paper, Sections 1.3.2 and 6.4,
    Figs. 3 and 16).

    Unfolding the recursion, [C(w, t)] splits into three cascaded blocks:
    [N_a] (regular, width [w], depth [lg w − 1], all the ladders), [N_b]
    (the irregular transition layer of [(2, 2p)]-balancers at the bases
    of the recursion, depth 1), and [N_c] (all the merging networks,
    regular of width [t], depth [(lg²w − lgw)/2]).

    [C'(w, t)] is [N_ab = N_a ; N_b] — the first [lg w] layers of
    [C(w, t)] — and is [s]-smoothing for [s = ⌊w·lgw/t⌋ + 2]
    (Lemma 6.6).  [C''(w)] replaces the [(2, 2p)]-balancers of the last
    layer by [(2,2)]-balancers and is exactly the backward butterfly
    [E(w)].  [N_c] alone is the stack of mergers; cascading
    [C'(w,t) ; N_c(w,t)] reproduces [C(w, t)] behaviourally (a tested
    property). *)

open Cn_network

val c_prime : w:int -> t:int -> Topology.t
(** [c_prime ~w ~t] is [C'(w, t) = N_ab]: input width [w], output width
    [t], depth [lg w].  @raise Invalid_argument on invalid [(w, t)]. *)

val c_second : int -> Topology.t
(** [c_second w] is [C''(w)]: [c_prime] with the last layer regularized
    to [(2,2)]-balancers; structurally a backward butterfly [E(w)].
    @raise Invalid_argument if [w] is not a power of two [>= 2]. *)

val n_c : w:int -> t:int -> Topology.t
(** [n_c ~w ~t] is the merger block [N_c]: regular of width [t], depth
    [(lg²w − lgw)/2]; for [w = 2] it is the [t]-wire identity network.
    @raise Invalid_argument on invalid [(w, t)]. *)

val smoothing_parameter : w:int -> t:int -> int
(** [smoothing_parameter ~w ~t = ⌊w·lgw/t⌋ + 2], the smoothness [s] of
    [N_ab] from Lemma 6.6. *)

val n_a_depth : w:int -> int
(** Depth of block [N_a]: [lg w − 1]. *)

val n_c_depth : w:int -> int
(** Depth of block [N_c]: [(lg²w − lgw)/2]. *)
