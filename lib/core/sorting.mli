(** Comparator networks extracted from balancing networks (paper,
    Section 7).

    Substituting a comparator for every balancer of a regular balancing
    network built from [(2,2)]-balancers yields a comparator network; if
    the balancing network counts, the comparator network sorts
    (Aspnes–Herlihy–Shavit).  Applied to [C(w, w)] this gives the paper's
    novel [O(lg²w)]-depth sorting network.

    The faithful translation of a balancer — which hands the ceiling half
    of its tokens to output port 0 — is a comparator that forwards the
    {e larger} value to its top channel.  On 0-1 inputs this coincides
    with the balancer on 0-1 token counts, so by the 0-1 principle a
    counting network yields outputs sorted in {e non-increasing}
    output-wire order. *)

type comparator = { top : int; bottom : int }
(** A comparator between two channels: the larger value continues on
    [top], the smaller on [bottom] — mirroring a balancer forwarding its
    first token to output port 0. *)

type t
(** A comparator network over [width] channels. *)

val of_topology : Cn_network.Topology.t -> t
(** [of_topology net] extracts the comparator network of [net]: channel
    [i] starts at network input wire [i]; output port [k] of a balancer
    continues on the channel of its input port [k].
    @raise Invalid_argument if [net] contains a balancer that is not a
    [(2,2)]-balancer. *)

val width : t -> int
(** Number of channels. *)

val depth : t -> int
(** Comparator depth (same as the balancing network's depth). *)

val comparator_count : t -> int
(** Number of comparators. *)

val comparators : t -> comparator array
(** The comparators in dependency order. *)

val apply : t -> int array -> int array
(** [apply net values] runs the comparator network and reads the result
    in output-wire order of the originating balancing network; for a
    counting-derived network the result is non-increasing.
    @raise Invalid_argument if [values] has the wrong length. *)

val apply_ascending : t -> int array -> int array
(** [apply_ascending net values] is [apply net values] reversed — the
    conventional ascending presentation. *)

val is_sorted_descending : int array -> bool
(** [is_sorted_descending a] holds iff [a] is non-increasing. *)

val sorts_zero_one : t -> bool
(** [sorts_zero_one net] checks the 0-1 principle exhaustively: the
    network sorts (descending) every 0-1 input iff it sorts every input.
    Exponential in the width;
    @raise Invalid_argument if [width net > 24]. *)

val sorts_random : ?trials:int -> ?seed:int -> t -> bool
(** [sorts_random net] checks descending sortedness on [trials] (default
    1000) random integer inputs. *)
