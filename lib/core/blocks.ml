open Cn_network

(* C'(w, t): the recursion of C(w, t) with the merging networks removed —
   ladders all the way down to (2, 2p)-balancer leaves (Fig. 16 left). *)
let rec c_prime_wires b ~p ins =
  let w = Array.length ins in
  if w = 2 then Builder.add_balancer b ~fan_out:(2 * p) ins
  else begin
    let l = Ladder.wires b ins in
    let half = w / 2 in
    let top = c_prime_wires b ~p (Array.sub l 0 half) in
    let bottom = c_prime_wires b ~p (Array.sub l half half) in
    Array.append top bottom
  end

let c_prime ~w ~t =
  if not (Params.valid_counting ~w ~t) then
    invalid_arg (Printf.sprintf "Blocks.c_prime: invalid parameters w=%d t=%d" w t);
  Builder.build ~input_width:w (fun b ins -> c_prime_wires b ~p:(t / w) ins)

let c_second w =
  if not (Params.is_power_of_two w) || w < 2 then
    invalid_arg
      (Printf.sprintf "Blocks.c_second: width must be a power of two >= 2 (got w=%d)" w);
  Builder.build ~input_width:w (fun b ins -> c_prime_wires b ~p:1 ins)

(* N_c: the stack of mergers, mirroring the recursive split of C(w, t):
   recursively merge the first and second halves, then M(t, w/2). *)
let rec n_c_wires b ~w ins =
  if w = 2 then ins
  else begin
    let t = Array.length ins in
    let half = t / 2 in
    let g = n_c_wires b ~w:(w / 2) (Array.sub ins 0 half) in
    let h = n_c_wires b ~w:(w / 2) (Array.sub ins half half) in
    Merging.wires b ~delta:(w / 2) (g, h)
  end

let n_c ~w ~t =
  if not (Params.valid_counting ~w ~t) then
    invalid_arg (Printf.sprintf "Blocks.n_c: invalid parameters w=%d t=%d" w t);
  if w = 2 then Topology.identity t
  else Builder.build ~input_width:t (fun b ins -> n_c_wires b ~w ins)

let smoothing_parameter ~w ~t =
  if not (Params.valid_counting ~w ~t) then
    invalid_arg (Printf.sprintf "Blocks.smoothing_parameter: invalid parameters w=%d t=%d" w t);
  (w * Params.ilog2 w / t) + 2

let n_a_depth ~w = Params.ilog2 w - 1

let n_c_depth ~w =
  let k = Params.ilog2 w in
  ((k * k) - k) / 2
