(** The ladder network [L(w)] (paper, Section 4.1 and Fig. 10).

    One layer of [w/2] [(2,2)]-balancers in which balancer [b_i] joins
    wires [i] and [i + w/2]; its outputs return to the same positions.
    [L(w)] bounds the difference of the token counts entering the two
    recursive halves of [C(w, t)] by [w/2]. *)

open Cn_network

val wires : Builder.t -> Builder.wire array -> Builder.wire array
(** [wires b ins] appends [L(w)] to builder [b] on the [w = Array.length
    ins] wires [ins] and returns the output wires in position order.
    @raise Invalid_argument if [w] is odd or [w < 2]. *)

val network : int -> Topology.t
(** [network w] is the standalone topology of [L(w)].
    @raise Invalid_argument if [w] is odd or [w < 2]. *)
