(** Exact worst-case contention by exhaustive schedule exploration.

    The paper's [cont(B, n, m)] is a maximum over *all* schedules
    (Section 1.2); the heuristic adversaries in {!Scheduler} only lower
    bound it.  For small instances this module computes it exactly: a
    depth-first search over every scheduling decision, memoized on the
    execution state (balancer states plus each process's position and
    remaining quota — future stalls depend on nothing else).

    State spaces blow up quickly; the [limit_states] cap (default
    [2_000_000] memo entries) turns runaway instances into
    [Invalid_argument] rather than memory exhaustion. *)

val max_contention :
  ?limit_states:int -> Cn_network.Topology.t -> n:int -> m:int -> int
(** [max_contention net ~n ~m] is the exact [cont(net, n, m)]: the
    maximum total number of stalls over every schedule of [m] tokens
    issued by [n] processes (process [l] on wire [l mod w], quotas as in
    {!Stall_model.create}).
    @raise Invalid_argument if [n <= 0], [m < 0], or the memo table
    exceeds [limit_states]. *)

val min_contention :
  ?limit_states:int -> Cn_network.Topology.t -> n:int -> m:int -> int
(** [min_contention net ~n ~m] is the best-case total stalls over every
    schedule — usually [0], but not always: tokens forced through a
    shared entry balancer must collide. *)
