module Sequence = Cn_sequence.Sequence

type measurement = {
  strategy : string;
  stalls : int;
  tokens : int;
  per_token : float;
  per_layer : int array;
  max_token_stalls : int;
  step_ok : bool;
}

let measure net ~n ~m strategy =
  let s = Stall_model.create net ~concurrency:n ~tokens:m in
  Scheduler.run s strategy;
  let stalls = Stall_model.total_stalls s in
  let max_token_stalls =
    Array.fold_left (fun acc op -> max acc op.Stall_model.stalls) 0 (Stall_model.history s)
  in
  {
    strategy = Scheduler.strategy_name strategy;
    stalls;
    tokens = m;
    per_token = (if m = 0 then 0. else float_of_int stalls /. float_of_int m);
    per_layer = Stall_model.stalls_per_layer s;
    max_token_stalls;
    step_ok = Sequence.is_step (Stall_model.output_counts s);
  }

let worst ?strategies net ~n ~m =
  let strategies = match strategies with Some l -> l | None -> Scheduler.all ~seed:1 in
  match strategies with
  | [] -> invalid_arg "Contention.worst: empty strategy list"
  | first :: rest ->
      List.fold_left
        (fun acc strategy ->
          let r = measure net ~n ~m strategy in
          if r.per_token > acc.per_token then r else acc)
        (measure net ~n ~m first) rest

let worst_over_seeds ?(seeds = [ 1; 2; 3; 4; 5 ]) net ~n ~m =
  let strategies = List.concat_map (fun seed -> Scheduler.all ~seed) seeds in
  worst ~strategies net ~n ~m

let sweep ?strategies net ~ns ~m_per_n =
  List.map (fun n -> (n, worst ?strategies net ~n ~m:(m_per_n * n))) ns
