(** Amortized-contention estimation (paper, Sections 1.2 and 6).

    [cont(B, n, m)] is approximated by running [m] tokens at concurrency
    [n] under each strategy of a portfolio and reporting the worst
    stalls/token observed; [cont(B, n)] is approximated by choosing
    [m >> n]. *)

type measurement = {
  strategy : string;
  stalls : int;
  tokens : int;
  per_token : float;  (** [stalls / tokens] *)
  per_layer : int array;  (** stalls per network layer *)
  max_token_stalls : int;
      (** worst stalls suffered by any single token — the fairness view:
          amortized contention bounds the average, but an adversary can
          concentrate stalls on one victim token *)
  step_ok : bool;  (** final output distribution satisfied the step property *)
}

val measure :
  Cn_network.Topology.t -> n:int -> m:int -> Scheduler.strategy -> measurement
(** [measure net ~n ~m strategy] runs one execution to completion and
    reports its stall statistics.  [step_ok] applies the step check to
    the final output counts (meaningful for counting networks). *)

val worst :
  ?strategies:Scheduler.strategy list ->
  Cn_network.Topology.t ->
  n:int ->
  m:int ->
  measurement
(** [worst net ~n ~m] is the measurement with the highest stalls/token
    across the portfolio (default [Scheduler.all ~seed:1]). *)

val worst_over_seeds :
  ?seeds:int list ->
  Cn_network.Topology.t ->
  n:int ->
  m:int ->
  measurement
(** [worst_over_seeds net ~n ~m] runs the whole portfolio once per seed
    (default seeds [1..5]) and keeps the global worst — a sturdier
    adversary estimate at ~5x the cost. *)

val sweep :
  ?strategies:Scheduler.strategy list ->
  Cn_network.Topology.t ->
  ns:int list ->
  m_per_n:int ->
  (int * measurement) list
(** [sweep net ~ns ~m_per_n] measures [worst] at each concurrency
    [n ∈ ns] with [m = m_per_n · n] tokens, so the token load scales with
    the concurrency. *)
