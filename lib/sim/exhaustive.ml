module Topology = Cn_network.Topology
module Balancer = Cn_network.Balancer

(* Execution state for the search: balancer states, plus per process its
   position (balancer id, or -1 when done) and remaining quota.  Output
   counters are not part of the state: stalls depend only on token
   positions. *)
type state = { bals : int array; pos : int array; quota : int array }

(* The memo is keyed on the state itself: the record's arrays are
   frozen once built (transitions copy), so structural hashing and
   equality are exact.  An earlier byte-packed string key truncated
   every component with [land 0xff], silently merging states whose
   quotas (or antitoken-driven positions) differed by a multiple of
   256 — which made large-token searches prune distinct states and
   report unsound optima. *)

let search ~better ~limit_states net ~n ~m =
  if n <= 0 then invalid_arg "Exhaustive: concurrency must be positive";
  if m < 0 then invalid_arg "Exhaustive: negative token count";
  let w = Topology.input_width net in
  let entry_of wire =
    match Topology.consumer net (Topology.Net_input wire) with
    | Topology.Bal_input { bal; port = _ } -> bal
    | Topology.Net_output _ -> -1 (* bare wire: tokens never wait *)
  in
  let entries = Array.init w entry_of in
  (* Initial state mirrors Stall_model.create. *)
  let pos = Array.make n (-1) in
  let quota = Array.make n 0 in
  for p = 0 to n - 1 do
    let share = (m / n) + (if p < m mod n then 1 else 0) in
    if share > 0 then begin
      quota.(p) <- share - 1;
      pos.(p) <- entries.(p mod w)
      (* A bare entry wire completes the token instantly; consume the
         whole quota with zero stalls. *)
    end
  done;
  (* Normalize: processes sitting on bare wires (-1 position but quota
     left) contribute nothing. *)
  for p = 0 to n - 1 do
    if pos.(p) = -1 then quota.(p) <- 0
  done;
  let init = { bals = Array.init (Topology.size net) (fun b -> (Topology.balancer net b).Balancer.init_state); pos; quota } in
  let memo : (state, int) Hashtbl.t = Hashtbl.create 4096 in
  let rec solve state =
    let k = state in
    match Hashtbl.find_opt memo k with
    | Some v -> v
    | None ->
        if Hashtbl.length memo >= limit_states then
          invalid_arg "Exhaustive: state-space limit exceeded";
        (* Count waiters per balancer once. *)
        let waiting = Array.make (Topology.size net) 0 in
        Array.iter (fun b -> if b >= 0 then waiting.(b) <- waiting.(b) + 1) state.pos;
        let best = ref None in
        Array.iteri
          (fun p b ->
            if b >= 0 then begin
              let stalls_now = waiting.(b) - 1 in
              (* Fire process p at balancer b. *)
              let descriptor = Topology.balancer net b in
              let port = state.bals.(b) in
              let bals = Array.copy state.bals in
              bals.(b) <- (port + 1) mod descriptor.Balancer.fan_out;
              let pos = Array.copy state.pos in
              let quota = Array.copy state.quota in
              (match Topology.consumer net (Topology.Bal_output { bal = b; port }) with
              | Topology.Bal_input { bal = next; port = _ } -> pos.(p) <- next
              | Topology.Net_output _ ->
                  if quota.(p) > 0 then begin
                    quota.(p) <- quota.(p) - 1;
                    pos.(p) <- entries.(p mod w)
                  end
                  else pos.(p) <- -1);
              let v = stalls_now + solve { bals; pos; quota } in
              best := Some (match !best with None -> v | Some b -> better b v)
            end)
          state.pos;
        let v = match !best with None -> 0 (* quiescent *) | Some v -> v in
        Hashtbl.replace memo k v;
        v
  in
  solve init

let max_contention ?(limit_states = 2_000_000) net ~n ~m =
  search ~better:max ~limit_states net ~n ~m

let min_contention ?(limit_states = 2_000_000) net ~n ~m =
  search ~better:min ~limit_states net ~n ~m
