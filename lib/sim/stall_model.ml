module Topology = Cn_network.Topology
module Balancer = Cn_network.Balancer

type pstate = Waiting of int | Done

type op = { pid : int; invoke : int; response : int; value : int; stalls : int }

(* Wiring is precompiled once at [create] into flat jump tables — the
   same CSR encoding as [Cn_runtime.Network_runtime] — so [fire] and
   [inject], the simulation's hot path, never query the topology.
   Destinations are encoded as ints: a non-negative value is a balancer
   id; a negative value [-(wire + 1)] is a network output wire. *)

type t = {
  net : Topology.t;
  entry : int array; (* per input wire: encoded destination *)
  next : int array; (* CSR: port p of balancer b at offsets.(b) + p *)
  offsets : int array; (* CSR row starts; length (size net) + 1 *)
  bal_states : int array;
  queues : int Queue.t array; (* waiting processes per balancer, FIFO *)
  pstates : pstate array;
  quota : int array; (* tokens still to inject per process, excluding the in-flight one *)
  mutable total_stalls : int;
  mutable completed : int;
  mutable injected : int;
  tokens : int;
  stalls_at : int array;
  crossings_at : int array; (* balancer transitions, the sim's "crossings" *)
  out_counts : int array;
  mutable clock : int; (* logical time: one tick per balancer transition *)
  invoke_at : int array; (* per process: injection time of in-flight token *)
  mutable history : op list; (* completed ops, most recent first *)
  mutable fired : int list; (* fired process ids, most recent first *)
  received : int array; (* stalls received by each process's current token *)
}

let encode_dest = function
  | Topology.Bal_input { bal; port = _ } -> bal
  | Topology.Net_output i -> -(i + 1)

(* Entry point of process [p]: the consumer of network input wire
   [p mod w].  A bare wire (no balancer) means the token exits
   immediately. *)
let rec inject s p =
  s.injected <- s.injected + 1;
  s.invoke_at.(p) <- s.clock;
  let w = Array.length s.entry in
  let dest = s.entry.(p mod w) in
  if dest >= 0 then begin
    Queue.add p s.queues.(dest);
    s.pstates.(p) <- Waiting dest
  end
  else exit_token s p (-dest - 1)

and exit_token s p wire =
  let value = wire + (s.out_counts.(wire) * Array.length s.out_counts) in
  s.history <-
    { pid = p; invoke = s.invoke_at.(p); response = s.clock; value; stalls = s.received.(p) }
    :: s.history;
  s.received.(p) <- 0;
  s.out_counts.(wire) <- s.out_counts.(wire) + 1;
  s.completed <- s.completed + 1;
  if s.quota.(p) > 0 then begin
    s.quota.(p) <- s.quota.(p) - 1;
    inject s p
  end
  else s.pstates.(p) <- Done

let create net ~concurrency ~tokens =
  if concurrency <= 0 then invalid_arg "Stall_model.create: concurrency must be positive";
  if tokens < 0 then invalid_arg "Stall_model.create: negative token count";
  let n = Topology.size net in
  (* One topology pass: descriptors, then the flattened jump tables. *)
  let descriptors = Array.init n (Topology.balancer net) in
  let offsets = Array.make (n + 1) 0 in
  for b = 0 to n - 1 do
    offsets.(b + 1) <- offsets.(b) + descriptors.(b).Balancer.fan_out
  done;
  let next = Array.make offsets.(n) 0 in
  for b = 0 to n - 1 do
    for port = 0 to descriptors.(b).Balancer.fan_out - 1 do
      next.(offsets.(b) + port) <-
        encode_dest (Topology.consumer net (Topology.Bal_output { bal = b; port }))
    done
  done;
  let s =
    {
      net;
      entry =
        Array.init (Topology.input_width net) (fun i ->
            encode_dest (Topology.consumer net (Topology.Net_input i)));
      next;
      offsets;
      bal_states = Array.map (fun d -> d.Balancer.init_state) descriptors;
      queues = Array.init n (fun _ -> Queue.create ());
      pstates = Array.make concurrency Done;
      quota = Array.make concurrency 0;
      total_stalls = 0;
      completed = 0;
      injected = 0;
      tokens;
      stalls_at = Array.make n 0;
      crossings_at = Array.make n 0;
      out_counts = Array.make (Topology.output_width net) 0;
      clock = 0;
      invoke_at = Array.make concurrency 0;
      history = [];
      fired = [];
      received = Array.make concurrency 0;
    }
  in
  (* Distribute [tokens] across processes: the first [tokens mod
     concurrency] processes get one extra. *)
  for p = 0 to concurrency - 1 do
    let share = (tokens / concurrency) + (if p < tokens mod concurrency then 1 else 0) in
    if share > 0 then begin
      s.quota.(p) <- share - 1;
      inject s p
    end
  done;
  s

let concurrency s = Array.length s.pstates

let finished s = s.completed >= s.tokens

let waiting_processes s =
  let acc = ref [] in
  for p = Array.length s.pstates - 1 downto 0 do
    match s.pstates.(p) with Waiting _ -> acc := p :: !acc | Done -> ()
  done;
  !acc

let is_waiting s p = match s.pstates.(p) with Waiting _ -> true | Done -> false

let balancer_of s p =
  match s.pstates.(p) with
  | Waiting b -> b
  | Done -> invalid_arg "Stall_model.balancer_of: process is not waiting"

let queue_length s b = Queue.length s.queues.(b)

let crowded_balancer s =
  let best = ref (-1) and best_len = ref 0 in
  Array.iteri
    (fun b q ->
      let len = Queue.length q in
      if len > !best_len then begin
        best := b;
        best_len := len
      end)
    s.queues;
  if !best < 0 then None else Some !best

let process_at s b = Queue.peek_opt s.queues.(b)

let fire s p =
  match s.pstates.(p) with
  | Done -> invalid_arg "Stall_model.fire: process is not waiting"
  | Waiting b ->
      (* Remove [p] from the queue of [b] (it may not be at the head if
         the scheduler chose a later arrival to win the balancer). *)
      let q = s.queues.(b) in
      let others = Queue.length q - 1 in
      let keep = Queue.create () in
      Queue.iter (fun x -> if x <> p then Queue.add x keep) q;
      Queue.clear q;
      Queue.transfer keep q;
      s.total_stalls <- s.total_stalls + others;
      s.stalls_at.(b) <- s.stalls_at.(b) + others;
      s.crossings_at.(b) <- s.crossings_at.(b) + 1;
      (* Charge one stall to every other token waiting at [b]. *)
      Queue.iter (fun x -> if x <> p then s.received.(x) <- s.received.(x) + 1) q;
      s.clock <- s.clock + 1;
      s.fired <- p :: s.fired;
      let base = s.offsets.(b) in
      let fan_out = s.offsets.(b + 1) - base in
      let port = s.bal_states.(b) in
      s.bal_states.(b) <- (port + 1) mod fan_out;
      let dest = s.next.(base + port) in
      if dest >= 0 then begin
        Queue.add p s.queues.(dest);
        s.pstates.(p) <- Waiting dest
      end
      else exit_token s p (-dest - 1)

let total_stalls s = s.total_stalls
let completed_tokens s = s.completed
let injected_tokens s = s.injected
let stalls_at_balancer s b = s.stalls_at.(b)
let crossings_at_balancer s b = s.crossings_at.(b)

let stalls_per_layer s =
  let d = Topology.depth s.net in
  let per = Array.make d 0 in
  Array.iteri
    (fun b stalls ->
      let l = Topology.balancer_depth s.net b - 1 in
      per.(l) <- per.(l) + stalls)
    s.stalls_at;
  per

let output_counts s = Array.copy s.out_counts

let history s = Array.of_list (List.rev s.history)

let fire_trace s = Array.of_list (List.rev s.fired)

(* The simulator's view in the runtime's snapshot type: logical-time
   latencies (response - invoke, in balancer-transition ticks) over the
   complete history rather than a sampled reservoir.  The sim has no
   antitokens, so the net exits are just the output counts. *)
let snapshot s =
  let module M = Cn_runtime.Metrics in
  let lats =
    Array.map (fun (op : op) -> float_of_int (op.response - op.invoke)) (history s)
  in
  {
    M.version = M.schema_version;
    source = "sim";
    balancers = Topology.size s.net;
    wires = Array.length s.out_counts;
    tokens = s.completed;
    antitokens = 0;
    crossings = Array.copy s.crossings_at;
    stalls = Array.copy s.stalls_at;
    exits = Array.copy s.out_counts;
    latency = M.percentiles ~time_unit:"ticks" lats;
  }
