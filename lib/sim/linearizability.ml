let violation ops =
  let sorted = Array.copy ops in
  Array.sort (fun a b -> compare a.Stall_model.value b.Stall_model.value) sorted;
  let n = Array.length sorted in
  if n = 0 then None
  else begin
    (* The value order is the only candidate linearization; it is
       consistent with real time iff no operation responds before a
       smaller-valued operation is invoked.  Scan values in decreasing
       order keeping the earliest response seen; a violation pairs that
       response with a later invocation of a smaller value. *)
    let best = ref None in
    let min_resp = ref sorted.(n - 1) in
    for i = n - 2 downto 0 do
      let a = !min_resp and b = sorted.(i) in
      (* a has larger value than b *)
      if a.Stall_model.response < b.Stall_model.invoke then best := Some (a, b);
      if sorted.(i).Stall_model.response < (!min_resp).Stall_model.response then
        min_resp := sorted.(i)
    done;
    !best
  end

let is_linearizable ops = violation ops = None

let is_dense ops =
  let m = Array.length ops in
  let seen = Array.make m false in
  let ok = ref true in
  Array.iter
    (fun op ->
      let v = op.Stall_model.value in
      if v < 0 || v >= m || seen.(v) then ok := false else seen.(v) <- true)
    ops;
  !ok && Array.for_all (fun b -> b) seen

let find_violation ?(seeds = List.init 50 (fun i -> i)) net ~n ~m =
  let attempt strategy =
    let s = Stall_model.create net ~concurrency:n ~tokens:m in
    Scheduler.run s strategy;
    violation (Stall_model.history s)
  in
  let rec try_seeds = function
    | [] -> None
    | seed :: rest -> (
        (* The parking adversary finds inversions by construction; random
           schedules occasionally do. *)
        match attempt (Scheduler.Park seed) with
        | Some pair -> Some pair
        | None -> (
            match attempt (Scheduler.Random seed) with
            | Some pair -> Some pair
            | None -> try_seeds rest))
  in
  try_seeds seeds
