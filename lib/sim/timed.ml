module Topology = Cn_network.Topology
module Balancer = Cn_network.Balancer

type result = {
  tokens : int;
  makespan : float;
  avg_latency : float;
  max_latency : float;
  avg_wait : float;
  throughput : float;
}

(* A pending event: token [token] reaches [dest] (balancer input or
   network output). *)
type event = { token : int; dest : Topology.dest }

type engine = {
  net : Topology.t;
  service : int -> float;
  wire_delay : float;
  heap : event Event_heap.t;
  states : int array; (* balancer routing state *)
  free_at : float array; (* per balancer: when the server frees up *)
  mutable completed : int;
  mutable makespan : float;
  mutable total_latency : float;
  mutable max_latency : float;
  mutable total_wait : float;
  birth : (int, float) Hashtbl.t; (* token -> arrival time *)
  on_exit : engine -> token:int -> time:float -> unit;
}

let make_engine ?(service = fun _ -> 1.0) ?(wire_delay = 0.0) ~on_exit net =
  if wire_delay < 0. then invalid_arg "Timed: negative wire delay";
  let n = Topology.size net in
  for b = 0 to n - 1 do
    if service b <= 0. then invalid_arg "Timed: non-positive service time"
  done;
  {
    net;
    service;
    wire_delay;
    heap = Event_heap.create ();
    states = Array.init n (fun b -> (Topology.balancer net b).Balancer.init_state);
    free_at = Array.make n 0.0;
    completed = 0;
    makespan = 0.0;
    total_latency = 0.0;
    max_latency = 0.0;
    total_wait = 0.0;
    birth = Hashtbl.create 64;
    on_exit;
  }

let inject engine ~token ~wire ~time =
  if wire < 0 || wire >= Topology.input_width engine.net then
    invalid_arg "Timed: entry wire out of range";
  if time < 0. then invalid_arg "Timed: negative arrival time";
  Hashtbl.replace engine.birth token time;
  Event_heap.push engine.heap ~time
    { token; dest = Topology.consumer engine.net (Topology.Net_input wire) }

let step engine =
  match Event_heap.pop engine.heap with
  | None -> false
  | Some (time, { token; dest }) ->
      (match dest with
      | Topology.Bal_input { bal; port = _ } ->
          let start = Float.max time engine.free_at.(bal) in
          engine.total_wait <- engine.total_wait +. (start -. time);
          let depart = start +. engine.service bal in
          engine.free_at.(bal) <- depart;
          let q = (Topology.balancer engine.net bal).Balancer.fan_out in
          let port = engine.states.(bal) in
          engine.states.(bal) <- (port + 1) mod q;
          Event_heap.push engine.heap
            ~time:(depart +. engine.wire_delay)
            { token; dest = Topology.consumer engine.net (Topology.Bal_output { bal; port }) }
      | Topology.Net_output _ ->
          let born = Hashtbl.find engine.birth token in
          let latency = time -. born in
          engine.completed <- engine.completed + 1;
          engine.makespan <- Float.max engine.makespan time;
          engine.total_latency <- engine.total_latency +. latency;
          engine.max_latency <- Float.max engine.max_latency latency;
          engine.on_exit engine ~token ~time);
      true

let drain engine =
  while step engine do
    ()
  done

let summary engine =
  let tokens = engine.completed in
  let ftokens = float_of_int (max tokens 1) in
  {
    tokens;
    makespan = engine.makespan;
    avg_latency = engine.total_latency /. ftokens;
    max_latency = engine.max_latency;
    avg_wait = engine.total_wait /. ftokens;
    throughput = (if engine.makespan <= 0. then 0. else float_of_int tokens /. engine.makespan);
  }

let run ?service ?wire_delay net ~arrivals =
  let engine = make_engine ?service ?wire_delay ~on_exit:(fun _ ~token:_ ~time:_ -> ()) net in
  List.iteri (fun token (wire, time) -> inject engine ~token ~wire ~time) arrivals;
  drain engine;
  summary engine

let closed_loop ?service ?wire_delay ?(think = 0.0) ?(jitter = 0.0) ?(seed = 0) net ~n ~rounds =
  if n <= 0 then invalid_arg "Timed.closed_loop: n must be positive";
  if rounds < 0 then invalid_arg "Timed.closed_loop: negative rounds";
  if think < 0. then invalid_arg "Timed.closed_loop: negative think time";
  if jitter < 0. then invalid_arg "Timed.closed_loop: negative jitter";
  let rng = Random.State.make [| seed |] in
  let noise () = if jitter = 0. then 0. else Random.State.float rng jitter in
  let w = Topology.input_width net in
  let remaining = Array.make n (rounds - 1) in
  let on_exit engine ~token ~time =
    let p = token mod n in
    if remaining.(p) > 0 then begin
      remaining.(p) <- remaining.(p) - 1;
      (* Re-issue under a fresh token id so birth times stay distinct. *)
      let fresh = token + n in
      inject engine ~token:fresh ~wire:(p mod w) ~time:(time +. think +. noise ())
    end
  in
  let engine = make_engine ?service ?wire_delay ~on_exit net in
  if rounds > 0 then
    for p = 0 to n - 1 do
      inject engine ~token:p ~wire:(p mod w) ~time:(noise ())
    done;
  drain engine;
  summary engine
