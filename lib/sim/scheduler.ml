type strategy = Random of int | Round_robin | Max_queue | Herd of int | Replay of int array | Park of int

let strategy_name = function
  | Random _ -> "random"
  | Round_robin -> "round-robin"
  | Max_queue -> "max-queue"
  | Herd _ -> "herd"
  | Park _ -> "park"
  | Replay _ -> "replay"

let all ~seed = [ Random seed; Round_robin; Max_queue; Herd seed; Park seed ]

let run_random s seed =
  let rng = Random.State.make [| seed |] in
  (* Snapshot the waiting set, fire it in a random order, re-snapshot:
     firing never removes *other* processes from the waiting set, so each
     sampled entry only needs re-validation, not re-lookup. *)
  while not (Stall_model.finished s) do
    let waiting = Array.of_list (Stall_model.waiting_processes s) in
    let batch = Array.length waiting in
    (* Fire a whole random permutation of the current waiting set between
       re-snapshots; each fire keeps the chosen process valid because
       firing never removes *other* processes from waiting. *)
    let order = Array.init batch (fun i -> i) in
    for i = batch - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let tmp = order.(i) in
      order.(i) <- order.(j);
      order.(j) <- tmp
    done;
    Array.iter
      (fun idx ->
        let p = waiting.(idx) in
        if Stall_model.is_waiting s p then Stall_model.fire s p)
      order
  done

let run_round_robin s =
  let n = Stall_model.concurrency s in
  let p = ref 0 in
  while not (Stall_model.finished s) do
    if Stall_model.is_waiting s !p then Stall_model.fire s !p;
    p := (!p + 1) mod n
  done

let run_max_queue s =
  while not (Stall_model.finished s) do
    match Stall_model.crowded_balancer s with
    | None -> ()
    | Some b -> (
        match Stall_model.process_at s b with
        | Some p -> Stall_model.fire s p
        | None -> ())
  done

let run_herd s seed =
  let rng = Random.State.make [| seed |] in
  while not (Stall_model.finished s) do
    let waiting = Array.of_list (Stall_model.waiting_processes s) in
    if Array.length waiting > 0 then begin
      let p = waiting.(Random.State.int rng (Array.length waiting)) in
      let b = Stall_model.balancer_of s p in
      (* Drain balancer [b] completely: every fire charges the full
         remaining queue, manufacturing a convoy. *)
      let rec drain () =
        match Stall_model.process_at s b with
        | Some q ->
            Stall_model.fire s q;
            drain ()
        | None -> ()
      in
      drain ()
    end
  done

(* Park process 0 one hop into the network while everyone else runs to
   completion, then release it: the classic schedule showing counting
   networks are not linearizable (the parked token keeps one output
   wire's values unclaimed while later-invoked tokens overtake it). *)
let run_park s seed =
  let rng = Random.State.make [| seed |] in
  if Stall_model.is_waiting s 0 then Stall_model.fire s 0;
  let rec others () =
    let ws = List.filter (fun p -> p <> 0) (Stall_model.waiting_processes s) in
    match ws with
    | [] -> ()
    | _ ->
        let arr = Array.of_list ws in
        Stall_model.fire s arr.(Random.State.int rng (Array.length arr));
        others ()
  in
  others ();
  while not (Stall_model.finished s) do
    if Stall_model.is_waiting s 0 then Stall_model.fire s 0
    else begin
      (* Process 0 re-injected and other processes are done; drain any
         stragglers. *)
      match Stall_model.waiting_processes s with
      | p :: _ -> Stall_model.fire s p
      | [] -> ()
    end
  done

let run_replay s trace =
  Array.iter
    (fun p -> if Stall_model.is_waiting s p then Stall_model.fire s p)
    trace;
  (* Finish any remainder fairly so the execution always completes. *)
  run_round_robin s

let run s = function
  | Random seed -> run_random s seed
  | Round_robin -> run_round_robin s
  | Max_queue -> run_max_queue s
  | Herd seed -> run_herd s seed
  | Park seed -> run_park s seed
  | Replay trace -> run_replay s trace
