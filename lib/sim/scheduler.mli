(** Schedules driving {!Stall_model} executions.

    Amortized contention is a supremum over adversary schedules; no
    executable scheduler realizes the formal adversary, so this module
    offers a spread of strategies — a fair baseline, randomized
    schedules, and greedy adversarial heuristics — whose worst observed
    stalls/token is reported by {!Contention}. *)

type strategy =
  | Random of int
      (** Fire a uniformly random waiting token; the seed makes runs
          reproducible. *)
  | Round_robin  (** Cycle over processes, firing each waiting one in turn. *)
  | Max_queue
      (** Always fire at a balancer with the longest waiting queue —
          a greedy adversary that maximizes immediate stall charges. *)
  | Herd of int
      (** Let queues build: repeatedly pick a random balancer among those
          with waiting tokens, then drain it completely before moving
          on — an adversary that manufactures convoys (seeded). *)
  | Replay of int array
      (** Fire exactly the given process ids in order (skipping any that
          are not waiting), then finish round-robin: replays a schedule
          captured with [Stall_model.fire_trace] for regression
          pinning. *)
  | Park of int
      (** Park process 0 one hop into the network while every other
          process runs to completion (randomly, seeded), then release
          it — the schedule that witnesses non-linearizability
          (Section 1.4.2) and starves one output wire. *)

val strategy_name : strategy -> string
(** Short printable name ("random", "round-robin", ...). *)

val all : seed:int -> strategy list
(** The standard strategy portfolio used by the contention benchmarks. *)

val run : Stall_model.t -> strategy -> unit
(** [run s strategy] drives the execution to completion. *)
