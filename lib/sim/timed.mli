(** Discrete-event latency simulation of balancing networks.

    The paper identifies two delay sources (Section 1.1): latency —
    proportional to the network depth — and contention — waiting behind
    other tokens at balancers.  This simulator models both: each
    balancer is a FIFO single server with a service time; a token's
    latency is its exit time minus its arrival time, and its waiting
    time is the part of that spent queued behind other tokens.

    Two drivers are provided: an open workload with explicit arrival
    times, and a closed loop of [n] processes that matches the paper's
    execution model (each process re-issues a token a think-time after
    its previous token exits). *)

type result = {
  tokens : int;  (** tokens completed *)
  makespan : float;  (** last exit time *)
  avg_latency : float;  (** mean (exit - arrival) per token *)
  max_latency : float;
  avg_wait : float;  (** mean time spent queued behind other tokens *)
  throughput : float;  (** tokens / makespan *)
}

val run :
  ?service:(int -> float) ->
  ?wire_delay:float ->
  Cn_network.Topology.t ->
  arrivals:(int * float) list ->
  result
(** [run net ~arrivals] processes one token per [(wire, time)] pair.
    [service] gives each balancer's service time (default: 1.0 for
    all); [wire_delay] is added per wire hop (default 0).
    @raise Invalid_argument on an out-of-range wire, a negative arrival
    time, a negative delay, or a non-positive service time. *)

val closed_loop :
  ?service:(int -> float) ->
  ?wire_delay:float ->
  ?think:float ->
  ?jitter:float ->
  ?seed:int ->
  Cn_network.Topology.t ->
  n:int ->
  rounds:int ->
  result
(** [closed_loop net ~n ~rounds] runs [n] processes, process [l]
    entering on wire [l mod w], each issuing [rounds] tokens
    back-to-back separated by [think] (default 0) — the paper's
    concurrency model with the schedule induced by the timing.

    A perfectly deterministic loop settles into lockstep waves in which
    balancers alternate tokens with no queueing beyond the first layer;
    [jitter] (default 0) adds a uniform [\[0, jitter)] random delay to
    every re-issue (drawn from [seed], default 0), which breaks the
    lockstep and exposes the queueing differences between networks.
    @raise Invalid_argument if [n <= 0], [rounds < 0], or a negative
    [think]/[jitter]. *)
