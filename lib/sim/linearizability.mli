(** Linearizability analysis of [Fetch&Increment] histories (paper,
    Section 1.4.2; Herlihy–Shavit–Waarts, “Linearizable counting
    networks”).

    For a shared counter the only candidate linearization is the value
    order, so a history is linearizable iff the value order never
    contradicts real time: whenever operation [a] responds before [b] is
    invoked, [a]'s value must be smaller.  Counting networks are
    quiescently consistent but *not* linearizable — an adversary can
    park a token in the network while later tokens overtake it and drain
    smaller values — and the Herlihy–Shavit–Waarts lower bound says
    fixing this costs [Ω(n)] depth.  These checkers make the violation
    concrete. *)

val violation :
  Stall_model.op array -> (Stall_model.op * Stall_model.op) option
(** [violation ops] is a pair [(a, b)] with [a.response < b.invoke] yet
    [a.value > b.value], if one exists: a witness that no linearization
    exists.  [None] means the history is linearizable. *)

val is_linearizable : Stall_model.op array -> bool
(** [is_linearizable ops = (violation ops = None)]. *)

val is_dense : Stall_model.op array -> bool
(** [is_dense ops] holds iff the values are exactly [{0, ..., m-1}] —
    the quiescent-consistency contract every counting network does
    satisfy. *)

val find_violation :
  ?seeds:int list ->
  Cn_network.Topology.t ->
  n:int ->
  m:int ->
  (Stall_model.op * Stall_model.op) option
(** [find_violation net ~n ~m] searches random schedules (default seeds
    [0..49]) for a non-linearizable history of the network used as a
    counter at concurrency [n] with [m] tokens.  For counting networks
    of depth [>= 2] a violation typically surfaces within a few seeds;
    for an actually linearizable counter it returns [None]. *)
