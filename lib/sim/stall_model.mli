(** Execution-level contention accounting for balancing networks, after
    Dwork, Herlihy and Waarts (“Contention in shared memory algorithms”,
    JACM 44(6)) as used by the paper (Sections 1.2 and 6.1).

    [n] asynchronous processes each shepherd one token at a time through
    the network; process [l] enters on input wire [l mod w].  Every time
    a token passes through a balancer it incurs one stall to each other
    token currently waiting at that balancer.  A schedule chooses which
    waiting token advances next; the contention of an execution is its
    total number of stalls.

    This module is the passive execution state; strategies that drive it
    live in {!Scheduler}. *)

type t
(** Mutable execution state. *)

type op = { pid : int; invoke : int; response : int; value : int; stalls : int }
(** One completed [Fetch&Increment]: the token of process [pid] was
    injected at logical time [invoke] (one tick per balancer
    transition), exited at time [response], obtained [value] from its
    exit wire's assignment cell, and personally suffered [stalls] stalls
    while waiting at balancers — the per-token view of contention
    (amortized contention averages this; an adversary can starve one
    token far beyond the average). *)

val create : Cn_network.Topology.t -> concurrency:int -> tokens:int -> t
(** [create net ~concurrency ~tokens] prepares an execution of [tokens]
    total tokens issued by [concurrency] processes (process quotas differ
    by at most one; process [l] enters on wire [l mod w]).  All processes
    with a non-zero quota start with their first token already waiting at
    its entry balancer.
    @raise Invalid_argument if [concurrency <= 0] or [tokens < 0]. *)

val concurrency : t -> int
(** Number of processes. *)

val finished : t -> bool
(** [finished s] holds when every token has exited the network. *)

val waiting_processes : t -> int list
(** Processes whose token is currently waiting at some balancer
    (ascending order). *)

val is_waiting : t -> int -> bool
(** [is_waiting s p] holds iff process [p]'s token is waiting at a
    balancer. *)

val balancer_of : t -> int -> int
(** [balancer_of s p] is the balancer process [p]'s token waits at.
    @raise Invalid_argument if [p] is not waiting. *)

val queue_length : t -> int -> int
(** [queue_length s b] is the number of tokens waiting at balancer
    [b]. *)

val crowded_balancer : t -> int option
(** [crowded_balancer s] is a balancer holding the longest waiting queue,
    or [None] when no token is waiting. *)

val process_at : t -> int -> int option
(** [process_at s b] is some process waiting at balancer [b] (the one
    waiting longest), if any. *)

val fire : t -> int -> unit
(** [fire s p] advances process [p]'s waiting token through its balancer,
    charging one stall to every other token waiting there; the token
    moves to the next balancer, or exits — in which case the process
    immediately injects its next token if its quota allows.
    @raise Invalid_argument if [p] is not currently waiting. *)

val total_stalls : t -> int
(** Stalls accumulated so far across the whole execution. *)

val completed_tokens : t -> int
(** Tokens that have fully exited so far. *)

val injected_tokens : t -> int
(** Tokens that have entered the network so far (completed plus
    in-flight).  Used to validate the {e threshold property} of counting
    networks — a token exits the last output wire for the [k]-th time
    only once [k·t] tokens have entered — which is what makes
    counting-network barriers sound (see examples/barrier_sync.ml). *)

val stalls_at_balancer : t -> int -> int
(** Stalls charged at a given balancer so far. *)

val crossings_at_balancer : t -> int -> int
(** Balancer transitions fired at a given balancer so far — the
    simulator's analogue of the runtime's per-balancer crossing
    counter. *)

val stalls_per_layer : t -> int array
(** Stalls aggregated by balancer depth (index 0 = layer 1). *)

val output_counts : t -> Cn_sequence.Sequence.t
(** Tokens that have exited on each output wire so far; in a finished
    execution of a counting network this is a step sequence. *)

val fire_trace : t -> int array
(** The process ids fired so far, in order — a complete, replayable
    record of the schedule (see [Scheduler.Replay]).  Replaying a trace
    on a fresh model of the same network and parameters reproduces the
    execution exactly, stalls and history included. *)

val history : t -> op array
(** Completed operations in completion order, with the counter values
    the standard output-wire scheme assigns (wire [i] hands out
    [i, i + t, ...]).  Feed to {!Linearizability} to study consistency
    (paper, Section 1.4.2). *)

val snapshot : t -> Cn_runtime.Metrics.snapshot
(** [snapshot s] renders the execution state in the runtime's snapshot
    type ([source = "sim"]): per-balancer crossings and stalls, net
    exits, and latency percentiles over {e all} completed tokens in
    logical ticks ([response - invoke]).  At a finished execution of a
    counting network it satisfies
    [Cn_runtime.Validator.snapshot_invariants], making simulated and
    measured contention profiles directly comparable. *)
