(** A minimal binary min-heap keyed by [(time, sequence)] used by the
    discrete-event simulator.  The sequence number makes the order of
    simultaneous events deterministic (FIFO). *)

type 'a t
(** Mutable heap of events carrying payloads of type ['a]. *)

val create : unit -> 'a t
(** An empty heap. *)

val push : 'a t -> time:float -> 'a -> unit
(** [push h ~time payload] inserts an event.  Events pushed with equal
    [time] pop in push order. *)

val pop : 'a t -> (float * 'a) option
(** [pop h] removes and returns the earliest event, or [None] when
    empty. *)

val size : 'a t -> int
(** Number of pending events. *)

val is_empty : 'a t -> bool
(** [is_empty h] iff no event is pending. *)
