(** Integer sequences and the step / [k]-smooth properties (paper, Section
    2.1).

    A sequence of length [w] represents the number of tokens observed on
    each of [w] wires of a balancing network in a quiescent state.  All
    functions treat the underlying [int array] as immutable; none of them
    mutates its argument. *)

type t = int array
(** A sequence [x(w) = x0, x1, ..., x_{w-1}].  Elements are token counts
    and are normally non-negative, but the algebra below does not require
    it. *)

val length : t -> int
(** [length x] is the number of elements [w] of [x]. *)

val sum : t -> int
(** [sum x] is [x0 + x1 + ... + x_{w-1}], written [Σ(x)] in the paper. *)

val max_value : t -> int
(** [max_value x] is the largest element of [x].
    @raise Invalid_argument on the empty sequence. *)

val min_value : t -> int
(** [min_value x] is the smallest element of [x].
    @raise Invalid_argument on the empty sequence. *)

val spread : t -> int
(** [spread x = max_value x - min_value x]; the smallest [k] for which [x]
    is [k]-smooth.  @raise Invalid_argument on the empty sequence. *)

val is_smooth : int -> t -> bool
(** [is_smooth k x] holds iff [|xi - xj| <= k] for all pairs [i, j] — the
    [k]-smooth property.  The empty sequence is vacuously smooth. *)

val is_step : t -> bool
(** [is_step x] holds iff [0 <= xi - xj <= 1] for all [i < j] — the step
    property.  Every step sequence is 1-smooth. *)

val step_point : t -> int
(** [step_point x] is the unique index [i] with [x_i < x_{i-1}], or
    [length x] when all elements are equal (paper convention:
    [1 <= step_point x <= length x]).
    @raise Invalid_argument if [x] is not step or is empty. *)

val step_element : total:int -> width:int -> int -> int
(** [step_element ~total ~width i] is the closed form of Eq. (1):
    [ceil ((total - i) / width)] — element [i] of the unique step sequence
    of length [width] summing to [total].
    @raise Invalid_argument if [width <= 0] or [i] is out of range. *)

val make_step : total:int -> width:int -> t
(** [make_step ~total ~width] is the unique step sequence of length
    [width] whose elements sum to [total >= 0].
    @raise Invalid_argument if [width <= 0] or [total < 0]. *)

val even_subsequence : t -> t
(** [even_subsequence x] is [x0, x2, x4, ...]. *)

val odd_subsequence : t -> t
(** [odd_subsequence x] is [x1, x3, x5, ...]. *)

val first_half : t -> t
(** [first_half x] is [x0 ... x_{w/2-1}].
    @raise Invalid_argument if the length is odd. *)

val second_half : t -> t
(** [second_half x] is [x_{w/2} ... x_{w-1}].
    @raise Invalid_argument if the length is odd. *)

val halves : t -> t * t
(** [halves x = (first_half x, second_half x)]. *)

val interleave : t -> t -> t
(** [interleave e o] is the sequence whose even subsequence is [e] and odd
    subsequence is [o].  @raise Invalid_argument if lengths differ. *)

val concat : t -> t -> t
(** [concat x y] appends [y] after [x]. *)

val subsequence : t -> int array -> t
(** [subsequence x idx] extracts elements at strictly increasing indices
    [idx].  @raise Invalid_argument if indices are not strictly
    increasing or out of range. *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is [⌈a / b⌉] for [b > 0] and any sign of [a].
    @raise Invalid_argument if [b <= 0]. *)

val equal : t -> t -> bool
(** Structural equality of sequences. *)

val pp : Format.formatter -> t -> unit
(** Prints as [[x0; x1; ...]]. *)

val to_string : t -> string
(** [to_string x] is [Format.asprintf "%a" pp x]. *)
