type t = int array

let length = Array.length

let sum x = Array.fold_left ( + ) 0 x

let require_nonempty name x =
  if Array.length x = 0 then invalid_arg (name ^ ": empty sequence")

let max_value x =
  require_nonempty "Sequence.max_value" x;
  Array.fold_left max x.(0) x

let min_value x =
  require_nonempty "Sequence.min_value" x;
  Array.fold_left min x.(0) x

let spread x = max_value x - min_value x

let is_smooth k x = Array.length x = 0 || spread x <= k

let is_step x =
  let w = Array.length x in
  let rec check i =
    if i >= w then true
    else
      let d = x.(i - 1) - x.(i) in
      if d = 0 || d = 1 then
        (* Elements never increase along a step sequence, and a drop is
           final: once the value has dropped, all later elements equal the
           smaller value.  Checking adjacent pairs plus the global bound
           is equivalent to checking all pairs. *)
        check (i + 1)
      else false
  in
  w = 0 || (check 1 && x.(0) - x.(w - 1) <= 1)

let step_point x =
  require_nonempty "Sequence.step_point" x;
  if not (is_step x) then invalid_arg "Sequence.step_point: not a step sequence";
  let w = Array.length x in
  let rec find i = if i >= w then w else if x.(i) < x.(i - 1) then i else find (i + 1) in
  find 1

let ceil_div a b =
  if b <= 0 then invalid_arg "Sequence.ceil_div: non-positive divisor";
  if a >= 0 then (a + b - 1) / b else -(-a / b)

let step_element ~total ~width i =
  if width <= 0 then invalid_arg "Sequence.step_element: width <= 0";
  if i < 0 || i >= width then invalid_arg "Sequence.step_element: index out of range";
  ceil_div (total - i) width

let make_step ~total ~width =
  if width <= 0 then invalid_arg "Sequence.make_step: width <= 0";
  if total < 0 then invalid_arg "Sequence.make_step: total < 0";
  Array.init width (fun i -> step_element ~total ~width i)

let even_subsequence x =
  Array.init ((Array.length x + 1) / 2) (fun i -> x.(2 * i))

let odd_subsequence x = Array.init (Array.length x / 2) (fun i -> x.((2 * i) + 1))

let first_half x =
  let w = Array.length x in
  if w mod 2 <> 0 then invalid_arg "Sequence.first_half: odd length";
  Array.sub x 0 (w / 2)

let second_half x =
  let w = Array.length x in
  if w mod 2 <> 0 then invalid_arg "Sequence.second_half: odd length";
  Array.sub x (w / 2) (w / 2)

let halves x = (first_half x, second_half x)

let interleave e o =
  let ne = Array.length e and no = Array.length o in
  if ne <> no then invalid_arg "Sequence.interleave: length mismatch";
  Array.init (ne + no) (fun i -> if i mod 2 = 0 then e.(i / 2) else o.(i / 2))

let concat = Array.append

let subsequence x idx =
  let w = Array.length x in
  let last = ref (-1) in
  Array.map
    (fun i ->
      if i <= !last || i >= w then
        invalid_arg "Sequence.subsequence: indices must be strictly increasing and in range";
      last := i;
      x.(i))
    idx

let equal a b = a = b

let pp ppf x =
  Format.fprintf ppf "[@[%a@]]"
    (Format.pp_print_array ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") Format.pp_print_int)
    x

let to_string x = Format.asprintf "%a" pp x
