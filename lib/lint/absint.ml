module Topology = Cn_network.Topology
module Balancer = Cn_network.Balancer

module Q = struct
  (* Invariant: den > 0 and gcd (|num|) den = 1.  Sums and comparisons
     go through the lcm of the denominators, never their product, so
     intermediate magnitudes stay within num_max · den_max — safe for
     the path-product denominators this analysis produces. *)
  type t = { num : int; den : int }

  let rec gcd a b = if b = 0 then a else gcd b (a mod b)

  let make num den =
    if den = 0 then invalid_arg "Absint.Q.make: zero denominator";
    let s = if den < 0 then -1 else 1 in
    let num = s * num and den = s * den in
    let g = gcd (abs num) den in
    if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }

  let zero = { num = 0; den = 1 }
  let one = { num = 1; den = 1 }
  let of_int n = { num = n; den = 1 }

  let add a b =
    let g = gcd a.den b.den in
    let l = a.den / g * b.den in
    make ((a.num * (l / a.den)) + (b.num * (l / b.den))) l

  let sub a b = add a { b with num = -b.num }

  (* gcd (num + n·den) den = gcd num den = 1, so no renormalization. *)
  let add_int a n = { a with num = a.num + (n * a.den) }

  let div_int a q =
    if q <= 0 then invalid_arg "Absint.Q.div_int: non-positive divisor";
    make a.num (a.den * q)

  let compare a b =
    let g = gcd a.den b.den in
    let l = a.den / g * b.den in
    Stdlib.compare (a.num * (l / a.den)) (b.num * (l / b.den))

  let equal a b = a.num = b.num && a.den = b.den
  let leq a b = compare a b <= 0

  let floor a = if a.num >= 0 then a.num / a.den else -((-a.num + a.den - 1) / a.den)
  let to_float a = float_of_int a.num /. float_of_int a.den

  let pp ppf a =
    if a.den = 1 then Format.fprintf ppf "%d" a.num else Format.fprintf ppf "%d/%d" a.num a.den
end

type wire = { coeffs : Q.t array; lo : Q.t; hi : Q.t }

type t = { input_width : int; outs : wire array }

let analyze net =
  let w = Topology.input_width net in
  let n = Topology.size net in
  let bal_out = Array.make n [||] in
  let value_of = function
    | Topology.Net_input i ->
        {
          coeffs = Array.init w (fun j -> if i = j then Q.one else Q.zero);
          lo = Q.zero;
          hi = Q.zero;
        }
    | Topology.Bal_output { bal; port } -> bal_out.(bal).(port)
  in
  Array.iter
    (fun b ->
      let d = Topology.balancer net b in
      let q = d.Balancer.fan_out in
      let init = d.Balancer.init_state in
      let ins = Array.map value_of (Topology.feeds net b) in
      (* Total tokens T seen by the balancer: sum of its input wires. *)
      let total =
        Array.fold_left
          (fun acc v ->
            {
              coeffs = Array.map2 Q.add acc.coeffs v.coeffs;
              lo = Q.add acc.lo v.lo;
              hi = Q.add acc.hi v.hi;
            })
          { coeffs = Array.make w Q.zero; lo = Q.zero; hi = Q.zero }
          ins
      in
      (* Port r emits ⌈(T − d_r)/q⌉ tokens (clamped at 0), with
         d_r = (r − init) mod q; both the exact value and the clamp lie
         in [(T − d_r)/q, (T − d_r + q − 1)/q]. *)
      bal_out.(b) <-
        Array.init q (fun r ->
            let dr = (((r - init) mod q) + q) mod q in
            {
              coeffs = Array.map (fun c -> Q.div_int c q) total.coeffs;
              lo = Q.div_int (Q.add_int total.lo (-dr)) q;
              hi = Q.div_int (Q.add_int total.hi (q - 1 - dr)) q;
            }))
    (Topology.topo_order net);
  { input_width = w; outs = Array.map value_of (Topology.outputs net) }

let output a i = a.outs.(i)
let outputs a = Array.copy a.outs

let conserves a =
  let ok = ref true in
  for j = 0 to a.input_width - 1 do
    let s = Array.fold_left (fun acc v -> Q.add acc v.coeffs.(j)) Q.zero a.outs in
    if not (Q.equal s Q.one) then ok := false
  done;
  !ok

let uniform a =
  let t = Array.length a.outs in
  t > 0
  &&
  let share = Q.make 1 t in
  Array.for_all (fun v -> Array.for_all (Q.equal share) v.coeffs) a.outs

let spread_bound a =
  if not (uniform a) then None
  else begin
    let hi = Array.fold_left (fun acc v -> if Q.leq acc v.hi then v.hi else acc) a.outs.(0).hi a.outs in
    let lo = Array.fold_left (fun acc v -> if Q.leq v.lo acc then v.lo else acc) a.outs.(0).lo a.outs in
    Some (Q.sub hi lo)
  end

let smoothness_bound a = Option.map Q.floor (spread_bound a)

let output_difference a i j =
  let vi = a.outs.(i) and vj = a.outs.(j) in
  if Array.for_all2 Q.equal vi.coeffs vj.coeffs then Some (Q.sub vi.lo vj.hi, Q.sub vi.hi vj.lo)
  else None

let half_split_bound a =
  let t = Array.length a.outs in
  if t = 0 || t mod 2 <> 0 then None
  else begin
    let half = t / 2 in
    let sum_coeff from_ j =
      let s = ref Q.zero in
      for i = from_ to from_ + half - 1 do
        s := Q.add !s a.outs.(i).coeffs.(j)
      done;
      !s
    in
    let cancels = ref true in
    for j = 0 to a.input_width - 1 do
      if not (Q.equal (sum_coeff 0 j) (sum_coeff half j)) then cancels := false
    done;
    if not !cancels then None
    else begin
      let sum_lo from_ =
        let s = ref Q.zero in
        for i = from_ to from_ + half - 1 do
          s := Q.add !s a.outs.(i).lo
        done;
        !s
      and sum_hi from_ =
        let s = ref Q.zero in
        for i = from_ to from_ + half - 1 do
          s := Q.add !s a.outs.(i).hi
        done;
        !s
      in
      Some (Q.sub (sum_lo 0) (sum_hi half), Q.sub (sum_hi 0) (sum_lo half))
    end
  end
