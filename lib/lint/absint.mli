(** Abstract interpretation of balancing networks over an exact
    affine-form / interval domain.

    The quiescent output of every balancer port is a deterministic
    function of the input token counts [x = (x_0, ..., x_{w-1})]
    (paper, Section 2.2): port [r] of a [(p,q)]-balancer with initial
    state [s] that has seen [T] tokens in total emits exactly
    [⌈(T − d_r)/q⌉] tokens, where [d_r = (r − s) mod q].  The analyzer
    abstracts each wire by an {e affine form with an interval error}:

    {v count(wire) ∈ Σ_j c_j·x_j + [lo, hi] v}

    with exact rational coefficients [c_j] and bounds [lo, hi].  The
    transfer function for a port divides the incoming coefficients by
    [q] and widens the error interval by the rounding slack: since
    [(T − d_r)/q ≤ ⌈(T − d_r)/q⌉ ≤ (T − d_r + q − 1)/q], the output
    error is [[(lo − d_r)/q, (hi − d_r + q − 1)/q]].  All arithmetic is
    exact (normalized [int] rationals), so the derived facts are sound
    for {e every} input load — they are small theorems about the
    topology, not samples:

    - {b flow conservation}: each input's coefficients sum to 1 across
      the outputs — tokens are neither created nor destroyed;
    - {b uniformity}: every output coefficient equals [1/t] — each
      output wire carries an exact [t]-th of the traffic, the
      first-order content of the step property;
    - {b smoothness}: when uniform, the affine parts cancel pairwise and
      [max hi − min lo] bounds the output spread; for the butterfly the
      interval grows by at most 1 per layer, so the analyzer re-derives
      the [lg w] bound of Lemma 5.2 abstractly;
    - {b half-split}: pairwise output differences with cancelling
      coefficients get exact interval bounds — the ladder invariant of
      Section 4.1 ([out_i − out_{i+w/2} ∈ [0,1]]).

    The interval domain deliberately drops correlations between wires,
    so it cannot by itself certify the full step property (an
    order-sensitive, correlation-heavy invariant); {!Cert} combines
    these facts with bounded-exhaustive and structural evidence. *)

(** Exact rational arithmetic on normalized [int] fractions.  Intended
    range: denominators are products of balancer fan-outs along a path
    (at most [2^depth] for the networks here), well inside 63-bit
    overflow for every network in the portfolio. *)
module Q : sig
  type t

  val zero : t
  val one : t
  val of_int : int -> t
  val make : int -> int -> t
  (** [make num den] is [num/den] normalized. @raise Invalid_argument on
      zero denominator. *)

  val add : t -> t -> t
  val sub : t -> t -> t
  val add_int : t -> int -> t
  val div_int : t -> int -> t
  (** @raise Invalid_argument on non-positive divisor. *)

  val compare : t -> t -> int
  val equal : t -> t -> bool
  val leq : t -> t -> bool
  val floor : t -> int
  val to_float : t -> float
  val pp : Format.formatter -> t -> unit
end

type wire = { coeffs : Q.t array; lo : Q.t; hi : Q.t }
(** Abstract value of one wire: token count lies in
    [Σ_j coeffs.(j)·x_j + [lo, hi]] for every input load [x]. *)

type t
(** Analysis result for one topology. *)

val analyze : Cn_network.Topology.t -> t
(** Propagate abstract values through the network in topological
    order.  Cost: [O(size · width)] exact rational operations. *)

val output : t -> int -> wire
(** Abstract value of network output wire [i]. *)

val outputs : t -> wire array

val conserves : t -> bool
(** Flow conservation: for every input [j], the output coefficients on
    [x_j] sum to exactly 1. *)

val uniform : t -> bool
(** Every output coefficient is exactly [1/t]. *)

val spread_bound : t -> Q.t option
(** When {!uniform}, a sound bound on [max_i out_i − min_j out_j] over
    all loads: [max_i hi_i − min_j lo_j].  [None] when the affine parts
    do not cancel (non-uniform network). *)

val smoothness_bound : t -> int option
(** [⌊spread_bound⌋] — output counts are integers, so the network is
    abstractly [k]-smooth for this [k]. *)

val output_difference : t -> int -> int -> (Q.t * Q.t) option
(** [output_difference a i j] is an exact interval for [out_i − out_j]
    when their coefficient vectors cancel; [None] otherwise. *)

val half_split_bound : t -> (Q.t * Q.t) option
(** Exact interval for [Σ first half − Σ second half] of the outputs
    when the summed coefficients cancel; [None] otherwise (or on odd
    output width). *)
