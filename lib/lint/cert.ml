module Topology = Cn_network.Topology
module Raw = Cn_network.Raw
module Eval = Cn_network.Eval
module Iso = Cn_network.Iso
module Permutation = Cn_network.Permutation
module Sequence = Cn_sequence.Sequence
module Verify = Cn_core.Verify
module Rt = Cn_runtime.Network_runtime

type expectation = Counting | Smoothing of int | Merging of int | Half_split

type evidence =
  | Exhaustive of { max_tokens : int; vectors : int }
  | By_construction of string
  | By_isomorphism of string
  | Refuted of Sequence.t
  | Unverified

type pass_report = {
  pass : string;
  facts : (string * string) list;
  diagnostics : Diagnostic.t list;
}

type t = {
  subject : string;
  expectation : expectation;
  merger : string option;
  passes : pass_report list;
  evidence : evidence;
}

let expectation_string = function
  | Counting -> "counting"
  | Smoothing k -> Printf.sprintf "%d-smoothing" k
  | Merging delta -> Printf.sprintf "merging(delta=%d)" delta
  | Half_split -> "half-split"

let evidence_string = function
  | Exhaustive { max_tokens; vectors } ->
      Printf.sprintf "exhaustive (max_tokens %d, %d loads)" max_tokens vectors
  | By_construction cite -> Printf.sprintf "by construction (%s)" cite
  | By_isomorphism cite -> Printf.sprintf "by isomorphism (%s)" cite
  | Refuted cex -> Printf.sprintf "refuted by load %s" (Sequence.to_string cex)
  | Unverified -> "unverified"

(* The ladder contract, checked on a concrete output profile: outputs i
   and i + w/2 come from the same (2,2)-balancer, so they differ by 0
   or 1 and the halves by at most w/2 (Section 4.1). *)
let half_split_holds out =
  let t = Array.length out in
  t mod 2 = 0
  &&
  let half = t / 2 in
  let pairs_ok = ref true in
  for i = 0 to half - 1 do
    let d = out.(i) - out.(i + half) in
    if d < 0 || d > 1 then pairs_ok := false
  done;
  let d = Sequence.sum (Sequence.first_half out) - Sequence.sum (Sequence.second_half out) in
  !pairs_ok && d >= 0 && d <= half

let property_holds expectation out =
  match expectation with
  | Counting -> Sequence.is_step out
  | Smoothing k -> Sequence.is_smooth k out
  | Merging _ -> Sequence.is_step out
  | Half_split -> half_split_holds out

(* Deterministic probe loads.  A tiny LCG stands in for Random so the
   battery is reproducible and pinnable in cram output. *)
let lcg s = ((s * 48271) + 1) land 0x3FFFFFFF

let probe_loads expectation w =
  match expectation with
  | Merging delta ->
      (* Valid merging inputs only: two step halves x, y with
         0 <= Σx − Σy <= delta. *)
      let half = w / 2 in
      List.map
        (fun (sy, d) ->
          Array.append (Sequence.make_step ~total:(sy + d) ~width:half)
            (Sequence.make_step ~total:sy ~width:half))
        [
          (0, 0);
          (0, delta);
          (3, 1);
          (5, delta);
          (7, delta / 2);
          ((2 * delta) + 1, delta);
          (13, 0);
        ]
  | Counting | Smoothing _ | Half_split ->
      let seeded seed = Array.init w (fun i -> lcg (seed + (31 * i)) mod 7) in
      [
        Array.make w 0;
        Array.make w 1;
        Array.make w 3;
        Array.init w (fun i -> i);
        Array.init w (fun i -> w - 1 - i);
        Array.init w (fun i -> if i = 0 then (3 * w) + 1 else 0);
        seeded 1;
        seeded 2;
        seeded 3;
      ]

(* Bounded-exhaustive plan: largest per-wire bound whose input space
   fits the budget (never above Verify's own 10^7 hard cap). *)
let exhaustive_plan expectation w budget =
  match expectation with
  | Merging delta ->
      let max_half_sum = max ((2 * delta) + 2) 8 in
      let vectors = (max_half_sum + 1) * (delta + 1) in
      if vectors <= budget then Some (`Merging (delta, max_half_sum), vectors) else None
  | Counting | Smoothing _ | Half_split ->
      let space max_tokens =
        let rec go acc i = if i = 0 then acc else if acc > budget then acc else go (acc * (max_tokens + 1)) (i - 1) in
        go 1 w
      in
      let rec pick = function
        | [] -> None
        | mt :: rest ->
            let vectors = space mt in
            if vectors <= budget then Some (`Bounded mt, vectors) else pick rest
      in
      pick [ 4; 3; 2; 1 ]

(* The escalation battery: every load placing at most two tokens on at
   most two input wires.  Sparse low-weight loads are exactly where a
   wrong merger stage first leaves the step regime (a single balancer
   pair sends both tokens the same way), and the battery stays tiny —
   1 + 2w + w(w−1)/2 loads — even at w = 64. *)
let escalation_loads w =
  let load pairs =
    let a = Array.make w 0 in
    List.iter (fun (i, n) -> a.(i) <- n) pairs;
    a
  in
  (load []
  :: List.concat_map
       (fun i -> [ load [ (i, 1) ]; load [ (i, 2) ] ])
       (List.init w Fun.id))
  @ List.concat_map
      (fun i ->
        List.filter_map
          (fun j -> if j > i then Some (load [ (i, 1); (j, 1) ]) else None)
          (List.init w Fun.id))
      (List.init w Fun.id)

let certify ?reference ?iso_hint ?expected_depth ?merger ?(exhaustive_budget = 20_000)
    ?(layouts = [ Rt.Padded_csr; Rt.Unpadded_nested ]) ~subject ~expectation net =
  let w = Topology.input_width net in
  let t_out = Topology.output_width net in
  let refuted = ref None in
  let refute cex = if !refuted = None then refuted := Some cex in
  let diag ?severity pass code fmt = Diagnostic.make ?severity ~pass ~subject code fmt in
  (* 1. Well-formedness. *)
  let wellformed =
    {
      pass = "wellformed";
      facts = [];
      diagnostics =
        List.map (Diagnostic.of_violation ~pass:"wellformed" ~subject) (Raw.check (Raw.of_topology net));
    }
  in
  (* 2. Shape. *)
  let shape =
    let depth = Topology.depth net in
    let diags =
      match expected_depth with
      | Some d when d <> depth ->
          [ diag "shape" "ABS003" "depth is %d, the closed form for this family gives %d" depth d ]
      | _ -> []
    in
    {
      pass = "shape";
      facts =
        [
          ("width", Printf.sprintf "%d -> %d" w t_out);
          ("size", string_of_int (Topology.size net));
          ("depth", string_of_int depth);
          ("regular", string_of_bool (Topology.is_regular net));
        ]
      @ (match expected_depth with Some d -> [ ("expected_depth", string_of_int d) ] | None -> []);
      diagnostics = diags;
    }
  in
  (* 3. Abstract interpretation. *)
  let absint =
    let a = Absint.analyze net in
    let facts = ref [] in
    let diags = ref [] in
    let fact k v = facts := (k, v) :: !facts in
    let emit d = diags := d :: !diags in
    let conserves = Absint.conserves a in
    fact "conserves" (string_of_bool conserves);
    if not conserves then
      emit (diag "absint" "ABS001" "flow conservation fails: some input's output coefficients do not sum to 1");
    let uniform = Absint.uniform a in
    fact "uniform" (string_of_bool uniform);
    (match Absint.smoothness_bound a with
    | Some k -> fact "abstract_smoothness" (string_of_int k)
    | None -> ());
    (match expectation with
    | Counting | Smoothing _ ->
        if not uniform then
          emit
            (diag "absint" "ABS005" "outputs do not mix uniformly: some coefficient differs from 1/%d"
               t_out);
        (match (expectation, Absint.smoothness_bound a) with
        | Smoothing k, Some kh when kh > k ->
            emit
              (diag "absint" "ABS002" "abstract smoothness bound is %d, expected at most %d" kh k)
        | _ -> ())
    | Half_split ->
        let half = t_out / 2 in
        let pair_ok = ref true in
        for i = 0 to half - 1 do
          match Absint.output_difference a i (i + half) with
          | Some (lo, hi) ->
              if Absint.Q.compare lo Absint.Q.zero < 0 || Absint.Q.compare hi Absint.Q.one > 0 then
                pair_ok := false
          | None -> pair_ok := false
        done;
        if not !pair_ok then
          emit
            (diag "absint" "ABS006"
               "paired outputs i, i+%d are not confined to a difference in [0, 1]" half)
        else fact "pair_difference" "[0, 1]";
        (match Absint.half_split_bound a with
        | Some (lo, hi)
          when Absint.Q.compare lo Absint.Q.zero >= 0
               && Absint.Q.leq hi (Absint.Q.of_int half) ->
            fact "half_split" (Format.asprintf "[%a, %a]" Absint.Q.pp lo Absint.Q.pp hi)
        | Some (lo, hi) ->
            emit
              (diag "absint" "ABS006" "half sums differ by [%a, %a], expected within [0, %d]"
                 Absint.Q.pp lo Absint.Q.pp hi half)
        | None ->
            emit (diag "absint" "ABS006" "half-sum coefficients do not cancel"))
    | Merging _ -> ());
    { pass = "absint"; facts = List.rev !facts; diagnostics = List.rev !diags }
  in
  (* 4. Deterministic probes. *)
  let probe =
    let loads = probe_loads expectation w in
    let diags = ref [] in
    let checked = ref 0 in
    (try
       List.iter
         (fun load ->
           incr checked;
           let out = Eval.quiescent net load in
           if not (property_holds expectation out) then begin
             refute load;
             diags :=
               [
                 diag "probe" "ABS004" "load %s produces %s, violating the %s property"
                   (Sequence.to_string load) (Sequence.to_string out)
                   (expectation_string expectation);
               ];
             raise Exit
           end)
         loads
     with Exit -> ());
    {
      pass = "probe";
      facts = [ ("loads", string_of_int !checked) ];
      diagnostics = !diags;
    }
  in
  (* 5. Bounded-exhaustive model check. *)
  let exhaustive_evidence = ref None in
  let exhaustive =
    match exhaustive_plan expectation w exhaustive_budget with
    | None ->
        { pass = "exhaustive"; facts = [ ("skipped", "input space exceeds budget") ]; diagnostics = [] }
    | Some (plan, _vectors) ->
        let outcome, max_tokens =
          match plan with
          | `Merging (delta, max_half_sum) ->
              (Verify.merging ~delta ~max_half_sum net, max_half_sum)
          | `Bounded max_tokens -> (
              ( (match expectation with
                | Counting -> Verify.counting ~max_tokens net
                | Smoothing k -> Verify.smoothing ~k ~max_tokens net
                | Half_split ->
                    Verify.forall_inputs ~max_tokens net (fun _in out -> half_split_holds out)
                | Merging _ -> assert false),
                max_tokens ))
        in
        (match outcome with
        | Verify.Verified n ->
            exhaustive_evidence := Some (Exhaustive { max_tokens; vectors = n });
            { pass = "exhaustive"; facts = [ ("loads", string_of_int n) ]; diagnostics = [] }
        | Verify.Counterexample cex ->
            refute cex;
            {
              pass = "exhaustive";
              facts = [];
              diagnostics =
                [
                  diag "exhaustive" "STEP002" "refuted on load %s (checked up to %d tokens per wire)"
                    (Sequence.to_string cex) max_tokens;
                ];
            })
  in
  (* 6. Escalation.  The interval domain is inconclusive for
     order-sensitive properties — for a counting expectation absint
     proves uniform 1/t mixing at best, never the step property — so
     when the bounded-exhaustive pass was skipped over budget the
     certificate would otherwise rest on structural evidence alone.
     A hybrid with a substituted merger has no trusted reference, so
     escalate to the directed two-token battery; a violation is a
     concrete replayable counterexample (STEP003). *)
  let escalate =
    let skipped reason =
      { pass = "escalate"; facts = [ ("skipped", reason) ]; diagnostics = [] }
    in
    match expectation with
    | Merging _ -> skipped "merging loads are enumerable within budget"
    | Counting | Smoothing _ | Half_split ->
        if !refuted <> None then skipped "already refuted"
        else if !exhaustive_evidence <> None then skipped "bounded-exhaustive check was conclusive"
        else begin
          let loads = escalation_loads w in
          let diags = ref [] in
          let checked = ref 0 in
          (try
             List.iter
               (fun load ->
                 incr checked;
                 let out = Eval.quiescent net load in
                 if not (property_holds expectation out) then begin
                   refute load;
                   diags :=
                     [
                       diag "escalate" "STEP003"
                         "two-token load %s produces %s, violating the %s property"
                         (Sequence.to_string load) (Sequence.to_string out)
                         (expectation_string expectation);
                     ];
                   raise Exit
                 end)
               loads
           with Exit -> ());
          {
            pass = "escalate";
            facts =
              [ ("battery", "<= 2 tokens on <= 2 wires"); ("loads", string_of_int !checked) ];
            diagnostics = !diags;
          }
        end
  in
  (* 7. Structural certification against the reference construction. *)
  let structural_evidence = ref None in
  let structural =
    match reference with
    | None -> { pass = "structural"; facts = [ ("skipped", "no reference construction") ]; diagnostics = [] }
    | Some (ref_net, cite) ->
        if Topology.equal net ref_net then begin
          structural_evidence := Some (By_construction cite);
          { pass = "structural"; facts = [ ("equal", "reference construction") ]; diagnostics = [] }
        end
        else begin
          (* A constructed mapping (e.g. Lemma 5.3's bit-reversal) is
             validated before falling back to the generic search, which
             exhausts its budget on backward butterflies at w >= 32. *)
          let mapping =
            match iso_hint with
            | Some m when Result.is_ok (Iso.check net ref_net ~mapping:m) -> Some m
            | _ -> Iso.find net ref_net
          in
          match mapping with
          | None ->
              {
                pass = "structural";
                facts = [];
                diagnostics =
                  [
                    diag "structural" "STEP001"
                      "neither structurally equal nor isomorphic to the reference construction (%s)"
                      cite;
                  ];
              }
          | Some mapping -> (
              match Iso.check net ref_net ~mapping with
              | Error reason ->
                  {
                    pass = "structural";
                    facts = [];
                    diagnostics =
                      [ diag "structural" "STEP001" "isomorphism search returned an invalid mapping: %s" reason ];
                  }
              | Ok (_pi_in, pi_out) ->
                  (* Lemma 2.7 transports quiescent outputs along pi_out.
                     Smoothness is invariant under output permutation;
                     the step property is not. *)
                  let order_insensitive =
                    match expectation with Smoothing _ -> true | _ -> false
                  in
                  if order_insensitive || Permutation.is_identity pi_out then begin
                    structural_evidence := Some (By_isomorphism cite);
                    {
                      pass = "structural";
                      facts = [ ("isomorphic", "reference construction (Lemma 2.7)") ];
                      diagnostics = [];
                    }
                  end
                  else
                    {
                      pass = "structural";
                      facts = [];
                      diagnostics =
                        [
                          diag "structural" "STEP001"
                            "isomorphic to the reference only modulo output permutation %a, which does not preserve the %s property"
                            Permutation.pp pi_out
                            (expectation_string expectation);
                        ];
                    })
        end
  in
  (* 8. Compiled-runtime faithfulness, per layout. *)
  let csr =
    let diags =
      List.concat_map
        (fun layout ->
          let rt = Rt.compile ~layout net in
          Csr_lint.check ~subject net (Rt.view rt))
        layouts
    in
    let names =
      List.map (function Rt.Padded_csr -> "padded-csr" | Rt.Unpadded_nested -> "unpadded-nested") layouts
    in
    { pass = "csr"; facts = [ ("layouts", String.concat ", " names) ]; diagnostics = diags }
  in
  let passes = [ wellformed; shape; absint; probe; exhaustive; escalate; structural; csr ] in
  let evidence =
    match !refuted with
    | Some cex -> Refuted cex
    | None -> (
        match !exhaustive_evidence with
        | Some e -> e
        | None -> ( match !structural_evidence with Some e -> e | None -> Unverified))
  in
  { subject; expectation; merger; passes; evidence }

let diagnostics c = List.concat_map (fun p -> p.diagnostics) c.passes

let ok c = not (List.exists Diagnostic.is_error (diagnostics c))

let codes c =
  List.fold_left
    (fun acc (d : Diagnostic.t) -> if List.mem d.Diagnostic.code acc then acc else acc @ [ d.Diagnostic.code ])
    [] (diagnostics c)

let pp_line ppf c =
  Format.fprintf ppf "%-18s %-4s %-18s %s" c.subject
    (if ok c then "ok" else "FAIL")
    (expectation_string c.expectation)
    (evidence_string c.evidence)

let pp ppf c =
  pp_line ppf c;
  List.iter
    (fun p ->
      List.iter (fun (k, v) -> Format.fprintf ppf "@\n  %s/%s: %s" p.pass k v) p.facts;
      List.iter (fun d -> Format.fprintf ppf "@\n  %a" Diagnostic.pp d) p.diagnostics)
    c.passes

let to_json c =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{";
  Buffer.add_string buf (Printf.sprintf "\"subject\":%s," (Diagnostic.json_string c.subject));
  Buffer.add_string buf
    (Printf.sprintf "\"merger\":%s,"
       (match c.merger with Some m -> Diagnostic.json_string m | None -> "null"));
  Buffer.add_string buf
    (Printf.sprintf "\"expectation\":%s," (Diagnostic.json_string (expectation_string c.expectation)));
  Buffer.add_string buf (Printf.sprintf "\"ok\":%b," (ok c));
  Buffer.add_string buf
    (Printf.sprintf "\"evidence\":%s," (Diagnostic.json_string (evidence_string c.evidence)));
  Buffer.add_string buf "\"passes\":[";
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "{\"pass\":%s," (Diagnostic.json_string p.pass));
      Buffer.add_string buf "\"facts\":{";
      List.iteri
        (fun j (k, v) ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf "%s:%s" (Diagnostic.json_string k) (Diagnostic.json_string v)))
        p.facts;
      Buffer.add_string buf "},\"diagnostics\":[";
      List.iteri
        (fun j d ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Diagnostic.to_json d))
        p.diagnostics;
      Buffer.add_string buf "]}")
    c.passes;
  Buffer.add_string buf "]}";
  Buffer.contents buf
