type severity = Error | Warning | Info

type t = {
  code : string;
  severity : severity;
  pass : string;
  subject : string;
  message : string;
}

let make ?(severity = Error) ~pass ~subject code fmt =
  Format.kasprintf (fun message -> { code; severity; pass; subject; message }) fmt

let of_violation ~pass ~subject (v : Cn_network.Raw.violation) =
  { code = v.Cn_network.Raw.code; severity = Error; pass; subject; message = v.Cn_network.Raw.message }

let severity_string = function Error -> "error" | Warning -> "warning" | Info -> "info"
let is_error d = d.severity = Error

let pp ppf d =
  Format.fprintf ppf "%s %s [%s] %s: %s" d.code (severity_string d.severity) d.pass d.subject
    d.message

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_json d =
  Printf.sprintf "{\"code\":%s,\"severity\":%s,\"pass\":%s,\"subject\":%s,\"message\":%s}"
    (json_string d.code)
    (json_string (severity_string d.severity))
    (json_string d.pass) (json_string d.subject) (json_string d.message)
