(** Step-property certification: the multi-pass certifier.

    [certify] runs a fixed pipeline of analyses over one topology and
    produces a certificate — a per-pass report plus the strongest piece
    of {e semantic evidence} established for the expected property:

    + {b wellformed} — the complete {!Cn_network.Raw.check} pass
      ([NETnnn]; vacuous for a [Topology.t], which is valid by
      construction, but load-bearing for decoded or mutated inputs).
    + {b shape} — width/size/depth facts; when [expected_depth] is
      given (the closed forms of Theorem 4.1, Lemmas 3.1/5.1), a
      mismatch is [ABS003].
    + {b absint} — the {!Absint} interval facts: flow conservation
      ([ABS001] when broken), uniform [1/t] mixing ([ABS005] when a
      counting expectation lacks it), abstract smoothness against the
      expected bound ([ABS002]), ladder half-split intervals
      ([ABS006]).
    + {b probe} — deterministic quiescent loads (ramps, spikes, seeded
      pseudo-random, and for merging: step-half grids); a violating
      load is reported as [ABS004] {e with the concrete input profile}.
    + {b exhaustive} — bounded-exhaustive model check
      ({!Cn_core.Verify}) whenever the input space fits the budget;
      refutation is [STEP002] with the counterexample profile.
    + {b escalate} — the explicit "absint inconclusive" path.  The
      interval domain cannot decide an order-sensitive property (for a
      counting expectation it proves uniform [1/t] mixing at best), so
      when the bounded-exhaustive pass was skipped over budget the
      certifier escalates to a directed battery: every load placing at
      most two tokens on at most two input wires
      ([1 + 2w + w(w−1)/2] loads).  Empirically this refutes every
      broken merger hybrid in the portfolio at widths the exhaustive
      pass cannot reach; a violation is [STEP003] with the concrete
      replayable profile.  Skipped (with the reason on record) when
      the exhaustive pass was conclusive or a refutation already
      exists.
    + {b structural} — against a [reference] construction: structural
      equality certifies by construction; otherwise an isomorphism
      ({!Cn_network.Iso}, Lemma 2.7) certifies order-insensitive
      expectations (smoothing) outright and order-sensitive ones
      (counting, merging, half-split) only when the derived output
      correspondence is the identity — an output permutation preserves
      smoothness but not the step property.  Failure is [STEP001].
    + {b csr} — compile with each requested layout and run
      {!Csr_lint.check} on the {!Cn_runtime.Network_runtime.view}.

    The evidence order is [Refuted > Exhaustive > By_construction >
    By_isomorphism > Unverified]: a concrete counterexample trumps
    everything; a completed exhaustive check outranks citation-backed
    structural identity; a certificate with no semantic evidence at
    all remains honest about it. *)

type expectation =
  | Counting  (** step property on every quiescent load (Theorem 4.2) *)
  | Smoothing of int  (** [k]-smooth outputs (Lemmas 5.2, 6.6) *)
  | Merging of int
      (** [M(t, δ)] contract: step halves with [0 ≤ Σx − Σy ≤ δ] merge
          to a step output (Lemma 3.1) *)
  | Half_split
      (** the ladder contract (Section 4.1): paired outputs differ by 0
          or 1, halves by at most [w/2] *)

type evidence =
  | Exhaustive of { max_tokens : int; vectors : int }
      (** property checked on every load with per-wire counts in
          [[0, max_tokens]] *)
  | By_construction of string  (** structurally equal to the cited reference *)
  | By_isomorphism of string
      (** isomorphic to the cited reference, soundly for this
          expectation (Lemma 2.7) *)
  | Refuted of Cn_sequence.Sequence.t  (** concrete violating input profile *)
  | Unverified

type pass_report = {
  pass : string;
  facts : (string * string) list;  (** key/value findings, for the report *)
  diagnostics : Diagnostic.t list;
}

type t = {
  subject : string;
  expectation : expectation;
  merger : string option;
      (** merger strategy/scope token for hybrid subjects
          (e.g. ["periodic3/top"]); [None] for the classic families *)
  passes : pass_report list;
  evidence : evidence;
}

val escalation_loads : int -> Cn_sequence.Sequence.t list
(** The directed two-token battery for width [w]: every quiescent load
    of at most two tokens spread over at most two wires ([1 + 2w +
    w(w-1)/2] loads).  This is the input set the escalate pass runs when
    the bounded-exhaustive check is over budget; exposed so benches and
    tests can replay the exact battery. *)

val certify :
  ?reference:Cn_network.Topology.t * string ->
  ?iso_hint:int array ->
  ?expected_depth:int ->
  ?merger:string ->
  ?exhaustive_budget:int ->
  ?layouts:Cn_runtime.Network_runtime.layout list ->
  subject:string ->
  expectation:expectation ->
  Cn_network.Topology.t ->
  t
(** [certify ~subject ~expectation net] runs the pipeline.
    [reference] is the trusted reconstruction and its citation
    (e.g. rebuilding [C(w,t)] and citing Theorem 4.2).
    [iso_hint] is a candidate balancer mapping onto the reference
    (e.g. [Butterfly.lemma_5_3_mapping]); it is validated with
    [Iso.check] before [Iso.find]'s search is attempted, which keeps the
    structural pass cheap where the generic search would blow up
    (backward butterflies at [w >= 32]).
    [merger] tags the certificate with the merger strategy/scope token
    of a hybrid subject; it flows into the JSON row as the top-level
    ["merger"] field ([null] for classic families).
    [exhaustive_budget] (default [20_000]) caps the bounded-exhaustive
    input space.  [layouts] (default both) selects the compiled
    representations to certify. *)

val ok : t -> bool
(** No error-severity diagnostic in any pass. *)

val diagnostics : t -> Diagnostic.t list
(** All diagnostics, in pass order. *)

val codes : t -> string list
(** Deduplicated diagnostic codes, in first-occurrence order. *)

val expectation_string : expectation -> string
val evidence_string : evidence -> string

val pp : Format.formatter -> t -> unit
(** Human-readable certificate: verdict line, evidence, key facts, then
    any diagnostics. *)

val pp_line : Format.formatter -> t -> unit
(** One-line summary: [subject: ok expectation evidence]. *)

val to_json : t -> string
