module Topology = Cn_network.Topology
module Raw = Cn_network.Raw
module Builder = Cn_network.Builder
module Permutation = Cn_network.Permutation
module Counting = Cn_core.Counting
module Ladder = Cn_core.Ladder
module Merger = Cn_core.Merger
module Rt = Cn_runtime.Network_runtime

type outcome = {
  name : string;
  description : string;
  expected : string;
  got : string list;
  rejected : bool;
}

let dedup codes =
  List.fold_left (fun acc c -> if List.mem c acc then acc else acc @ [ c ]) [] codes

let finish ~name ~description ~expected got =
  let got = dedup got in
  { name; description; expected; got; rejected = List.mem expected got }

(* --- Raw-description mutants: must be rejected by Raw.check. ------- *)

let raw_mutant ~name ~description ~expected base mutate =
  let raw = mutate base in
  finish ~name ~description ~expected
    (List.map (fun v -> v.Raw.code) (Raw.check raw))

let copy_raw (r : Raw.t) =
  {
    r with
    Raw.balancers = Array.copy r.Raw.balancers;
    feeds = Array.map Array.copy r.Raw.feeds;
    outputs = Array.copy r.Raw.outputs;
  }

let raw_mutants net =
  let base = Raw.of_topology net in
  let n = Array.length base.Raw.balancers in
  [
    raw_mutant ~name:"drop-balancer" ~expected:"NET005"
      ~description:(Printf.sprintf "delete balancer %d; wires into it now dangle" (n - 1))
      base
      (fun r ->
        {
          (copy_raw r) with
          Raw.balancers = Array.sub r.Raw.balancers 0 (n - 1);
          feeds = Array.map Array.copy (Array.sub r.Raw.feeds 0 (n - 1));
        });
    raw_mutant ~name:"duplicate-wire" ~expected:"NET006"
      ~description:"output 0 rewired to output 1's source; one wire consumed twice" base
      (fun r ->
        let r = copy_raw r in
        r.Raw.outputs.(0) <- r.Raw.outputs.(1);
        r);
    raw_mutant ~name:"unconsumed-input" ~expected:"NET007"
      ~description:"input width enlarged by one; the extra wire is never consumed" base
      (fun r -> { (copy_raw r) with Raw.input_width = r.Raw.input_width + 1 });
    raw_mutant ~name:"arity-corrupt" ~expected:"NET002"
      ~description:"balancer 0 declared with fan-in 0" base
      (fun r ->
        let r = copy_raw r in
        r.Raw.balancers.(0) <- { r.Raw.balancers.(0) with Raw.fan_in = 0 };
        r);
    raw_mutant ~name:"init-out-of-range" ~expected:"NET003"
      ~description:"balancer 0's initial state set to its fan-out" base
      (fun r ->
        let r = copy_raw r in
        let b = r.Raw.balancers.(0) in
        r.Raw.balancers.(0) <- { b with Raw.init_state = b.Raw.fan_out };
        r);
    raw_mutant ~name:"feeds-truncate" ~expected:"NET004"
      ~description:"balancer 0's feed row truncated to one entry" base
      (fun r ->
        let r = copy_raw r in
        r.Raw.feeds.(0) <- [| r.Raw.feeds.(0).(0) |];
        r);
    raw_mutant ~name:"self-loop" ~expected:"NET009"
      ~description:(Printf.sprintf "balancer %d fed from its own output port 0" (n - 1))
      base
      (fun r ->
        let r = copy_raw r in
        r.Raw.feeds.(n - 1).(0) <- Topology.Bal_output { bal = n - 1; port = 0 };
        r);
  ]

(* --- Semantic mutants: well-formed topologies whose quiescent
   behaviour (or shape) breaks the contract; must be rejected by the
   certifier. ------------------------------------------------------- *)

let semantic_mutant ~name ~description ~expected ~w ~t mutant =
  let reference = (Counting.network ~w ~t, "Theorem 4.2") in
  let cert =
    Cert.certify ~reference ~expected_depth:(Counting.depth_formula ~w) ~subject:name
      ~expectation:Cert.Counting mutant
  in
  finish ~name ~description ~expected (Cert.codes cert)

let semantic_mutants ~w ~t net =
  let swap_ends =
    let a = Array.init t Fun.id in
    a.(0) <- t - 1;
    a.(t - 1) <- 0;
    Permutation.of_array a
  in
  let cross_last_layer () =
    (* Swap the first feed of the first two balancers of the deepest
       layer: same layer, so the result stays acyclic and well-formed,
       but the merger joins the wrong wires. *)
    let layers = Topology.layers net in
    let last = layers.(Array.length layers - 1) in
    let b1 = last.(0) and b2 = last.(1) in
    let r = Raw.of_topology net in
    let tmp = r.Raw.feeds.(b1).(0) in
    r.Raw.feeds.(b1).(0) <- r.Raw.feeds.(b2).(0);
    r.Raw.feeds.(b2).(0) <- tmp;
    match Raw.validate r with Ok net' -> net' | Error _ -> assert false
  in
  [
    semantic_mutant ~name:"output-swap" ~expected:"ABS004" ~w ~t
      ~description:(Printf.sprintf "output wires 0 and %d exchanged" (t - 1))
      (Topology.permute_outputs swap_ends net);
    semantic_mutant ~name:"wire-flip" ~expected:"STEP002" ~w ~t
      ~description:"two feeds crossed inside the last merging layer"
      (cross_last_layer ());
    semantic_mutant ~name:"init-corrupt" ~expected:"ABS004" ~w ~t
      ~description:"balancer 0 starts in state 1 instead of 0"
      (Topology.with_init_states (fun b _ -> if b = 0 then 1 else 0) net);
    semantic_mutant ~name:"pad-layer" ~expected:"ABS003" ~w ~t
      ~description:"an extra ladder cascaded after the network (depth bound broken)"
      (Topology.cascade net (Ladder.network t));
  ]

(* --- Periodic-stage mutants: corruptions inside a substituted merger
   stage of a certified hybrid; must be rejected by the same pipeline
   that certifies the intact hybrid (no reference construction — the
   evidence is exhaustive/shape, exactly as for real hybrids). ------- *)

let hybrid_mutant ~name ~description ~expected ~w ~t mutant =
  let merger = Merger.Periodic3 and scope = Merger.Top_only in
  let cert =
    Cert.certify ~merger:"periodic3/top"
      ~expected_depth:(Counting.depth_formula_with ~merger ~scope ~w ~t)
      ~subject:name ~expectation:Cert.Counting mutant
  in
  finish ~name ~description ~expected (Cert.codes cert)

let hybrid_mutants ~w ~t =
  let merger = Merger.Periodic3 and scope = Merger.Top_only in
  let net = Counting.network_with ~merger ~scope ~w ~t in
  let cross_merger_layer () =
    (* Swap the first feed of the first two balancers of the deepest
       layer — the last brick matching of the periodic stage. *)
    let layers = Topology.layers net in
    let last = layers.(Array.length layers - 1) in
    let b1 = last.(0) and b2 = last.(1) in
    let r = Raw.of_topology net in
    let tmp = r.Raw.feeds.(b1).(0) in
    r.Raw.feeds.(b1).(0) <- r.Raw.feeds.(b2).(0);
    r.Raw.feeds.(b2).(0) <- tmp;
    match Raw.validate r with Ok net' -> net' | Error _ -> assert false
  in
  let apply_matching b z pairs =
    let z' = Array.copy z in
    List.iter
      (fun (i, j) ->
        let top, bottom = Builder.balancer2 b z.(i) z.(j) in
        z'.(i) <- top;
        z'.(j) <- bottom)
      pairs;
    z'
  in
  let dropped_round () =
    (* Rebuild the hybrid with one round of the period omitted. *)
    Builder.build ~input_width:w (fun b ins ->
        let l = Ladder.wires b ins in
        let half = w / 2 in
        let e = Array.sub l 0 half and f = Array.sub l half half in
        let g = Counting.wires b ~t:(t / 2) e and h = Counting.wires b ~t:(t / 2) f in
        let z = ref (Array.append g h) in
        let layers = Merger.period ~strategy:merger ~t in
        for _ = 1 to Merger.rounds ~strategy:merger ~t - 1 do
          List.iter (fun pairs -> z := apply_matching b !z pairs) layers
        done;
        !z)
  in
  [
    hybrid_mutant ~name:"periodic-wire-flip" ~expected:"ABS004" ~w ~t
      ~description:"two feeds crossed inside the last periodic merger layer"
      (cross_merger_layer ());
    hybrid_mutant ~name:"periodic-init-corrupt" ~expected:"STEP002" ~w ~t
      ~description:"deepest merger balancer starts in state 1 instead of 0"
      (Topology.with_init_states
         (fun b _ -> if b = Topology.size net - 1 then 1 else 0)
         net);
    hybrid_mutant ~name:"periodic-dropped-round" ~expected:"ABS003" ~w ~t
      ~description:"one round of the 3-layer period omitted from the merger stage"
      (dropped_round ());
    hybrid_mutant ~name:"periodic-strategy-swap" ~expected:"ABS003" ~w ~t
      ~description:"pk2 merger substituted where the periodic3 hybrid was declared"
      (Counting.network_with ~merger:(Merger.Periodic_k 2) ~scope ~w ~t);
  ]

(* --- Compiled-runtime mutants: corrupted views; must be rejected by
   the CSR faithfulness pass. --------------------------------------- *)

let csr_mutant ~name ~description ~expected net mutate =
  let v = mutate (Rt.view (Rt.compile ~layout:Rt.Padded_csr net)) in
  finish ~name ~description ~expected
    (List.map (fun d -> d.Diagnostic.code) (Csr_lint.check ~subject:name net v))

(* Flat index -> (balancer, port) under intact offsets. *)
let locate (v : Rt.view) idx =
  let b = ref 0 in
  while v.Rt.v_offsets.(!b + 1) <= idx do
    incr b
  done;
  (!b, idx - v.Rt.v_offsets.(!b))

let csr_mutants net =
  let n = Topology.size net in
  [
    csr_mutant ~name:"csr-truncate-row" ~expected:"CSR001"
      ~description:"last offsets entry shortened; flat table length no longer matches" net
      (fun v ->
        v.Rt.v_offsets.(n) <- v.Rt.v_offsets.(n) - 1;
        v);
    csr_mutant ~name:"csr-mask-corrupt" ~expected:"CSR002"
      ~description:"balancer 0's port-mask base raised above its fan-out" net
      (fun v ->
        v.Rt.v_fan_out.(0) <- v.Rt.v_fan_out.(0) + 1;
        v);
    csr_mutant ~name:"csr-dangling" ~expected:"CSR003"
      ~description:"one jump-table entry redirected to a balancer id past the end" net
      (fun v ->
        v.Rt.v_next.(0) <- n + 3;
        v);
    csr_mutant ~name:"csr-rewire" ~expected:"CSR009"
      ~description:"two jump-table entries with different targets swapped (flat and nested)" net
      (fun v ->
        let j = ref 1 in
        while v.Rt.v_next.(!j) = v.Rt.v_next.(0) do
          incr j
        done;
        let b0, p0 = locate v 0 and b1, p1 = locate v !j in
        let tmp = v.Rt.v_next.(0) in
        v.Rt.v_next.(0) <- v.Rt.v_next.(!j);
        v.Rt.v_next.(!j) <- tmp;
        v.Rt.v_next_nested.(b0).(p0) <- v.Rt.v_next.(0);
        v.Rt.v_next_nested.(b1).(p1) <- v.Rt.v_next.(!j);
        v);
    csr_mutant ~name:"csr-entry-corrupt" ~expected:"CSR006"
      ~description:"input wire 0 enters at input wire 1's balancer" net
      (fun v ->
        v.Rt.v_entry.(0) <- v.Rt.v_entry.(1);
        v);
    csr_mutant ~name:"csr-init-corrupt" ~expected:"CSR007"
      ~description:"balancer 0 compiled with initial state 1" net
      (fun v ->
        v.Rt.v_init_states.(0) <- 1;
        v);
    csr_mutant ~name:"csr-width" ~expected:"CSR008"
      ~description:"compiled output width off by one" net
      (fun v -> { v with Rt.v_output_width = v.Rt.v_output_width + 1 });
    csr_mutant ~name:"csr-nested-diverge" ~expected:"CSR005"
      ~description:"nested layout of one port disagrees with the CSR table" net
      (fun v ->
        let b, p = locate v 0 in
        let e = v.Rt.v_next_nested.(b).(p) in
        v.Rt.v_next_nested.(b).(p) <- (if e >= 0 then -1 else 0);
        v);
    csr_mutant ~name:"csr-route-strategy" ~expected:"CSR010"
      ~description:"balancer 0's precompiled port strategy downgraded to the double-mod path" net
      (fun v ->
        v.Rt.v_route.(1) <- -v.Rt.v_fan_out.(0);
        v);
    csr_mutant ~name:"csr-route-shift" ~expected:"CSR010"
      ~description:"routing base of balancer 1 shifted off its CSR row" net
      (fun v ->
        v.Rt.v_route.(2) <- v.Rt.v_route.(2) + 1;
        v);
    csr_mutant ~name:"csr-strategy-diverge" ~expected:"CSR010"
      ~description:"nested-walk strategy of balancer 0 widened past its fan-out" net
      (fun v ->
        v.Rt.v_strategy.(0) <- (2 * v.Rt.v_fan_out.(0)) - 1;
        v);
    csr_mutant ~name:"csr-drop-output" ~expected:"CSR004"
      ~description:"the jump to output wire 0 redirected to output wire 1" net
      (fun v ->
        let j = ref 0 in
        while v.Rt.v_next.(!j) <> -1 do
          incr j
        done;
        v.Rt.v_next.(!j) <- -2;
        let b, p = locate v !j in
        v.Rt.v_next_nested.(b).(p) <- -2;
        v);
  ]

let battery ?(w = 8) ?(t = 8) () =
  let net = Counting.network ~w ~t in
  raw_mutants net @ semantic_mutants ~w ~t net @ hybrid_mutants ~w ~t @ csr_mutants net

let all_rejected outcomes = List.for_all (fun o -> o.rejected) outcomes

let pp_outcome ppf o =
  Format.fprintf ppf "%-18s expect %s, got [%s] — %s" o.name o.expected
    (String.concat "; " o.got)
    (if o.rejected then "rejected" else "ESCAPED")

let to_json outcomes =
  let buf = Buffer.create 512 in
  Buffer.add_char buf '[';
  List.iteri
    (fun i o ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":%s,\"description\":%s,\"expected\":%s,\"got\":[%s],\"rejected\":%b}"
           (Diagnostic.json_string o.name)
           (Diagnostic.json_string o.description)
           (Diagnostic.json_string o.expected)
           (String.concat "," (List.map Diagnostic.json_string o.got))
           o.rejected))
    outcomes;
  Buffer.add_char buf ']';
  Buffer.contents buf
