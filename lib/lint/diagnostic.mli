(** Lint diagnostics: pinned machine-readable codes with provenance.

    Every finding of the static analyzer is a value of this type.  The
    [code] is part of the tool's contract — tests and the mutant battery
    pin exact codes, so codes are never renumbered, only added:

    - [NET001]–[NET009]: structural well-formedness ({!Cn_network.Raw}).
    - [ABS001]–[ABS006]: abstract-interpretation and probe findings
      ({!Absint}, {!Cert}): broken flow conservation, smoothness bound
      exceeded, depth-formula mismatch, concrete counterexample load,
      non-uniform output mixing, half-split violation.
    - [STEP001]–[STEP003]: step-certification findings ({!Cert}):
      structural mismatch against the reference construction,
      refutation by bounded-exhaustive model check, and refutation by
      the two-token escalation battery (the over-budget path).
    - [CSR001]–[CSR009]: compiled-runtime faithfulness ({!Csr_lint}).
    - [ATOM001]–[ATOM003]: source-level atomics discipline ([atomlint]).

    A diagnostic also records the [pass] that produced it and the
    [subject] (network or file) it concerns, so reports from a whole
    portfolio run remain attributable. *)

type severity = Error | Warning | Info

type t = {
  code : string;  (** pinned code, e.g. ["NET005"] *)
  severity : severity;
  pass : string;  (** producing pass, e.g. ["wellformed"], ["csr"] *)
  subject : string;  (** what was analyzed, e.g. ["C(8,8)"] *)
  message : string;
}

val make :
  ?severity:severity ->
  pass:string ->
  subject:string ->
  string ->
  ('a, Format.formatter, unit, t) format4 ->
  'a
(** [make ~pass ~subject code fmt ...] builds a diagnostic (default
    severity [Error]) with a formatted message. *)

val of_violation : pass:string -> subject:string -> Cn_network.Raw.violation -> t
(** Lift a {!Cn_network.Raw} well-formedness violation. *)

val severity_string : severity -> string
(** ["error"], ["warning"] or ["info"]. *)

val is_error : t -> bool

val pp : Format.formatter -> t -> unit
(** One line: [CODE severity [pass] subject: message]. *)

val json_string : string -> string
(** [json_string s] is [s] as a quoted JSON string literal (escaped). *)

val to_json : t -> string
(** One JSON object with fields [code], [severity], [pass], [subject],
    [message]. *)
