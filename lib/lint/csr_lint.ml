module Topology = Cn_network.Topology
module Balancer = Cn_network.Balancer
module Rt = Cn_runtime.Network_runtime

(* Mirrors the runtime's destination encoding; the round-trip is pinned
   by the compile → view → check tests. *)
let encode = function
  | Topology.Bal_input { bal; port = _ } -> bal
  | Topology.Net_output i -> -(i + 1)

let pp_dest ppf e = if e >= 0 then Format.fprintf ppf "balancer %d" e else Format.fprintf ppf "output wire %d" (-e - 1)

let check ~subject net (v : Rt.view) =
  let out = ref [] in
  let emit code fmt =
    Format.kasprintf (fun message -> out := Diagnostic.make ~pass:"csr" ~subject code "%s" message :: !out) fmt
  in
  let n = Topology.size net in
  let w = Topology.input_width net in
  let t = Topology.output_width net in
  if v.Rt.v_input_width <> w then
    emit "CSR008" "compiled input width %d but the topology has %d" v.Rt.v_input_width w;
  if v.Rt.v_output_width <> t then
    emit "CSR008" "compiled output width %d but the topology has %d" v.Rt.v_output_width t;
  let offsets = v.Rt.v_offsets in
  let next = v.Rt.v_next in
  let nested = v.Rt.v_next_nested in
  (* Structural soundness of the tables themselves (CSR001). *)
  let offsets_ok = ref (Array.length offsets = n + 1) in
  if not !offsets_ok then
    emit "CSR001" "offsets table has %d entries for %d balancers (want %d)" (Array.length offsets)
      n (n + 1);
  if !offsets_ok && offsets.(0) <> 0 then begin
    offsets_ok := false;
    emit "CSR001" "offsets table starts at %d, not 0" offsets.(0)
  end;
  if !offsets_ok then
    for b = 0 to n - 1 do
      if offsets.(b + 1) < offsets.(b) && !offsets_ok then begin
        offsets_ok := false;
        emit "CSR001" "offsets table decreases at balancer %d (%d -> %d)" b offsets.(b)
          offsets.(b + 1)
      end
    done;
  if !offsets_ok && offsets.(n) <> Array.length next then begin
    offsets_ok := false;
    emit "CSR001" "flat jump table has %d entries but offsets end at %d" (Array.length next)
      offsets.(n)
  end;
  if Array.length v.Rt.v_init_states <> n then
    emit "CSR001" "initial-state table has %d entries for %d balancers"
      (Array.length v.Rt.v_init_states) n;
  if Array.length v.Rt.v_fan_out <> n then
    emit "CSR001" "fan-out table has %d entries for %d balancers" (Array.length v.Rt.v_fan_out) n;
  if Array.length nested <> n then
    emit "CSR001" "nested jump table has %d rows for %d balancers" (Array.length nested) n;
  if Array.length v.Rt.v_entry <> w then
    emit "CSR001" "entry table has %d entries for input width %d" (Array.length v.Rt.v_entry) w;
  (* Per-balancer metadata: initial states (CSR007) and row widths /
     port-mask bases (CSR002). *)
  let descriptor = Array.init n (Topology.balancer net) in
  if Array.length v.Rt.v_init_states = n then
    Array.iteri
      (fun b d ->
        if v.Rt.v_init_states.(b) <> d.Balancer.init_state then
          emit "CSR007" "balancer %d compiled with initial state %d, topology says %d" b
            v.Rt.v_init_states.(b) d.Balancer.init_state)
      descriptor;
  if Array.length v.Rt.v_fan_out = n then
    Array.iteri
      (fun b d ->
        if v.Rt.v_fan_out.(b) <> d.Balancer.fan_out then
          emit "CSR002" "balancer %d has port-mask base %d, topology fan-out is %d" b
            v.Rt.v_fan_out.(b) d.Balancer.fan_out)
      descriptor;
  let rows_ok = Array.make n false in
  if !offsets_ok then
    Array.iteri
      (fun b d ->
        let width = offsets.(b + 1) - offsets.(b) in
        if width <> d.Balancer.fan_out then
          emit "CSR002" "CSR row of balancer %d has width %d, topology fan-out is %d" b width
            d.Balancer.fan_out
        else rows_ok.(b) <- true)
      descriptor;
  let nested_ok = Array.make n false in
  if Array.length nested = n then
    Array.iteri
      (fun b d ->
        let width = Array.length nested.(b) in
        if width <> d.Balancer.fan_out then
          emit "CSR002" "nested row of balancer %d has width %d, topology fan-out is %d" b width
            d.Balancer.fan_out
        else nested_ok.(b) <- true)
      descriptor;
  (* Precompiled routing table (CSR010): the stride-2 route image must
     carry each balancer's CSR row base and its port strategy — the mask
     [fan_out - 1] exactly when the fan-out is a power of two,
     [-fan_out] otherwise — and the per-balancer strategy table read by
     the nested walk must agree with it.  Expectations are re-derived
     from the topology, independent of the (possibly corrupted)
     [v_offsets]. *)
  let strategy_of q = if q land (q - 1) = 0 then q - 1 else -q in
  let route = v.Rt.v_route in
  let strategy = v.Rt.v_strategy in
  let route_ok = ref (Array.length route = 2 * n) in
  if not !route_ok then
    emit "CSR010" "routing table has %d entries for %d balancers (want %d)" (Array.length route) n
      (2 * n);
  let strategy_ok = Array.length strategy = n in
  if not strategy_ok then
    emit "CSR010" "strategy table has %d entries for %d balancers" (Array.length strategy) n;
  let ex_base = ref 0 in
  Array.iteri
    (fun b d ->
      let q = d.Balancer.fan_out in
      if !route_ok then begin
        if route.(2 * b) <> !ex_base then
          emit "CSR010" "routing base of balancer %d is %d, its CSR row starts at %d" b
            route.(2 * b) !ex_base;
        if route.((2 * b) + 1) <> strategy_of q then
          emit "CSR010" "balancer %d compiled with port strategy %d, fan-out %d wants %d" b
            route.((2 * b) + 1) q (strategy_of q)
      end;
      if strategy_ok && strategy.(b) <> strategy_of q then
        emit "CSR010" "balancer %d: nested-walk port strategy %d, fan-out %d wants %d" b
          strategy.(b) q (strategy_of q);
      ex_base := !ex_base + q)
    descriptor;
  (* Destination range (CSR003), topology diff (CSR006/CSR009), layout
     agreement (CSR005).  [in_range] is against the topology's widths:
     the runtime may only jump to an existing balancer or exit on an
     existing output wire. *)
  let in_range e = e < n && e >= -t in
  let dangling = ref false in
  let check_dest ~where actual =
    if not (in_range actual) then begin
      dangling := true;
      emit "CSR003" "%s jumps to %a, which does not exist" where pp_dest actual;
      false
    end
    else true
  in
  if Array.length v.Rt.v_entry = w then
    for i = 0 to w - 1 do
      let actual = v.Rt.v_entry.(i) in
      let expected = encode (Topology.consumer net (Topology.Net_input i)) in
      if check_dest ~where:(Printf.sprintf "entry of input wire %d" i) actual && actual <> expected
      then
        emit "CSR006" "input wire %d enters at %a, topology says %a" i pp_dest actual pp_dest
          expected
    done;
  for b = 0 to n - 1 do
    let fan_out = descriptor.(b).Balancer.fan_out in
    for port = 0 to fan_out - 1 do
      let expected = encode (Topology.consumer net (Topology.Bal_output { bal = b; port })) in
      let where = Printf.sprintf "port %d of balancer %d" port b in
      let flat = if rows_ok.(b) then Some next.(offsets.(b) + port) else None in
      (match flat with
      | Some actual ->
          if check_dest ~where actual && actual <> expected then
            emit "CSR009" "%s jumps to %a, topology says %a" where pp_dest actual pp_dest expected
      | None -> ());
      if nested_ok.(b) then begin
        let nv = nested.(b).(port) in
        match flat with
        | Some actual when nv <> actual ->
            emit "CSR005" "%s: nested layout jumps to %a but the CSR table says %a" where pp_dest
              nv pp_dest actual
        | Some _ -> ()
        | None ->
            if check_dest ~where:(where ^ " (nested)") nv && nv <> expected then
              emit "CSR009" "%s (nested) jumps to %a, topology says %a" where pp_dest nv pp_dest
                expected
      end
    done
  done;
  (* Coverage (CSR004): over the in-range targets of the entry table
     and the flat rows, each balancer must be reached on exactly fan-in
     wires and each output wire exactly once.  Skipped entirely when a
     dangling destination was found — the counts would only repeat the
     CSR003 finding. *)
  if (not !dangling) && Array.length v.Rt.v_entry = w && Array.for_all Fun.id rows_ok then begin
    let bal_targets = Array.make n 0 in
    let out_targets = Array.make t 0 in
    let target e = if e >= 0 then bal_targets.(e) <- bal_targets.(e) + 1 else out_targets.(-e - 1) <- out_targets.(-e - 1) + 1 in
    Array.iter target v.Rt.v_entry;
    for b = 0 to n - 1 do
      for port = 0 to descriptor.(b).Balancer.fan_out - 1 do
        target next.(offsets.(b) + port)
      done
    done;
    Array.iteri
      (fun b c ->
        let fan_in = descriptor.(b).Balancer.fan_in in
        if c <> fan_in then
          emit "CSR004" "balancer %d is reached by %d wires, fan-in is %d" b c fan_in)
      bal_targets;
    Array.iteri
      (fun i c ->
        if c <> 1 then emit "CSR004" "output wire %d is reached by %d wires, want exactly 1" i c)
      out_targets
  end;
  List.rev !out
