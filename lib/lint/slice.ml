module Topology = Cn_network.Topology

let prefix net ~layers =
  let n = Topology.size net in
  let w = Topology.input_width net in
  if layers < 0 || layers > Topology.depth net then
    invalid_arg "Slice.prefix: layer count out of range";
  let keep = Array.init n (fun b -> Topology.balancer_depth net b <= layers) in
  let remap = Array.make n (-1) in
  let count = ref 0 in
  Array.iteri
    (fun b kept ->
      if kept then begin
        remap.(b) <- !count;
        incr count
      end)
    keep;
  let kept_ids = Array.of_list (List.filter (fun b -> keep.(b)) (List.init n Fun.id)) in
  let remap_source = function
    | Topology.Net_input _ as s -> s
    (* Any feeder of a kept balancer is strictly shallower, hence kept. *)
    | Topology.Bal_output { bal; port } -> Topology.Bal_output { bal = remap.(bal); port }
  in
  (* A wire crosses the cut when its consumer is not a kept balancer. *)
  let crosses s =
    match Topology.consumer net s with
    | Topology.Net_output _ -> true
    | Topology.Bal_input { bal; _ } -> not keep.(bal)
  in
  let outputs = ref [] in
  for k = Array.length kept_ids - 1 downto 0 do
    let b = kept_ids.(k) in
    let fan_out = (Topology.balancer net b).Cn_network.Balancer.fan_out in
    for port = fan_out - 1 downto 0 do
      let s = Topology.Bal_output { bal = b; port } in
      if crosses s then outputs := remap_source s :: !outputs
    done
  done;
  for i = w - 1 downto 0 do
    if crosses (Topology.Net_input i) then outputs := Topology.Net_input i :: !outputs
  done;
  Topology.create ~input_width:w
    ~balancers:(Array.map (Topology.balancer net) kept_ids)
    ~feeds:(Array.map (fun b -> Array.map remap_source (Topology.feeds net b)) kept_ids)
    ~outputs:(Array.of_list !outputs)
