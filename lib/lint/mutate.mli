(** Seeded mutant battery: the lint's own certification.

    A static certifier is only trustworthy if it demonstrably rejects
    broken artifacts.  [battery] derives a fixed set of mutants from
    [C(w, t)] at four levels — the raw description (well-formedness),
    the topology's quiescent semantics (certification), the periodic
    merger stage of the [C(w, t)[periodic3/top]] hybrid (crossed
    wires, corrupted initial state, a dropped period round, a swapped
    strategy — certified referee-less, exactly as real hybrids are),
    and the compiled runtime's jump tables (CSR faithfulness) — and
    records,
    for each, the diagnostics actually emitted.  Every mutant carries a
    {e pinned} expected code; the test suite and the [--mutate] CLI
    mode fail if any mutant escapes or reports a different primary
    code.

    The battery is deterministic: mutation sites are chosen
    structurally (first/last balancer, first port, paired layers), not
    randomly, so the expected codes can be pinned exactly. *)

type outcome = {
  name : string;  (** stable mutant identifier, e.g. ["csr-rewire"] *)
  description : string;  (** what was corrupted *)
  expected : string;  (** pinned diagnostic code that must appear *)
  got : string list;  (** codes actually emitted, deduplicated, in order *)
  rejected : bool;  (** [expected] appears in [got] *)
}

val battery : ?w:int -> ?t:int -> unit -> outcome list
(** Run the full battery against mutants of [C(w, t)] (default
    [C(8, 8)]).  [w] must admit bounded-exhaustive checking for the
    semantic mutants to be decidable ([w <= 8] recommended). *)

val all_rejected : outcome list -> bool

val pp_outcome : Format.formatter -> outcome -> unit
(** One line: [name: expected CODE, got CODES — verdict]. *)

val to_json : outcome list -> string
