(** The built-in certification portfolio: every constructible family at
    the standard widths, certified in both compiled layouts — plus the
    merger-substituted hybrid campaign.

    [entries] covers, for [w ∈ {2, 4, 8, 16, 32, 64}]:

    - [C(w, w)] and [C(w, w·lgw)] — counting, depth
      [(lg²w + lgw)/2] (Theorems 4.1/4.2);
    - [C'(w, w)] — [s]-smoothing for [s = ⌊w·lgw/w⌋ + 2] (Lemma 6.6),
      depth [lg w];
    - [D(w)] and [E(w)] — [lg w]-smoothing (Lemma 5.2), with [E(w)]
      certified against [D(w)] through the Lemma 5.3 isomorphism;
    - [L(w)] — the half-split contract (Section 4.1), depth 1;
    - [M(t, δ)] — difference merging (Lemma 3.1), depth [lg δ];
    - [BITONIC(w)] and [PERIODIC(w)] — the regular baselines
      (Aspnes–Herlihy–Shavit), counting;
    - [DIFF(w)] — the diffracting-tree core, counting.

    [hybrid_entries] is the certification campaign for the periodic
    merger strategies of {!Cn_core.Merger}: every
    [(w, t) × strategy × scope] combination with [t] a power of two up
    to width 64 — [C(w,t)[periodic3/top]], [C(w,t)[pk2/all]], … — plus
    the standalone periodic merger stages [M(t, t/2)[periodic3]] etc.
    against the Lemma 3.1 merging contract.  Hybrid entries carry {b no
    reference construction} (no theorem covers a substituted merger):
    their evidence comes from the bounded-exhaustive and two-token
    escalation passes alone, and a [Refuted] certificate with a
    replayable counterexample is a first-class campaign result, not a
    failure.

    [run] certifies every classic entry and is the engine behind
    [countnet lint --all] and [make lint]; [run_hybrids] is the engine
    behind [countnet lint --hybrids] and [make lint-hybrids]. *)

type entry = {
  name : string;
  expectation : Cert.expectation;
  expected_depth : int;
  build : unit -> Cn_network.Topology.t;
  reference : ((unit -> Cn_network.Topology.t) * string) option;
      (** trusted reconstruction and the theorem it carries; [None] for
          hybrids, which have no covering theorem *)
  iso_hint : (unit -> int array) option;
      (** constructed balancer mapping onto the reference, when one is
          known (the Lemma 5.3 bit-reversal for [E(w)]) *)
  merger : string option;
      (** merger strategy/scope token for hybrid entries,
          e.g. ["periodic3/top"]; [None] for classic families *)
}

val schema_version : int
(** Version of the [LINT_certificates.json] payload (2: adds the
    top-level [schema_version] and per-row [merger] fields). *)

val entries : unit -> entry list

val hybrid_entries : unit -> entry list

val certify :
  ?exhaustive_budget:int ->
  ?layouts:Cn_runtime.Network_runtime.layout list ->
  entry ->
  Cert.t

val run :
  ?exhaustive_budget:int ->
  ?layouts:Cn_runtime.Network_runtime.layout list ->
  unit ->
  Cert.t list

val run_hybrids :
  ?exhaustive_budget:int ->
  ?layouts:Cn_runtime.Network_runtime.layout list ->
  unit ->
  Cert.t list

val all_ok : Cert.t list -> bool

val refuted : Cert.t -> bool
(** The certificate's evidence is a concrete counterexample. *)

val adjudicated : Cert.t -> bool
(** The pipeline reached a decision either way: clean, or refuted with
    a concrete counterexample.  A diagnostic without a refutation
    (e.g. a depth-formula mismatch) is a pipeline failure, not an
    adjudication. *)

val all_adjudicated : Cert.t list -> bool
(** Success criterion for the hybrid campaign: refutations are results,
    unexplained diagnostics are not. *)

val pp_summary : Format.formatter -> Cert.t list -> unit
(** One line per certificate plus a final tally. *)

val pp_hybrid_summary : Format.formatter -> Cert.t list -> unit
(** One line per certificate plus a certified/refuted tally. *)

val to_json : Cert.t list -> string
(** [{"schema_version": 2, "certificates": [...], "ok": bool}] — the CI
    artifact payload.  Each row carries a top-level ["merger"] field:
    the strategy/scope token for hybrids, [null] for classic rows. *)
