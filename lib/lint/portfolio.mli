(** The built-in certification portfolio: every constructible family at
    the standard widths, certified in both compiled layouts.

    [entries] covers, for [w ∈ {2, 4, 8, 16, 32, 64}]:

    - [C(w, w)] and [C(w, w·lgw)] — counting, depth
      [(lg²w + lgw)/2] (Theorems 4.1/4.2);
    - [C'(w, w)] — [s]-smoothing for [s = ⌊w·lgw/w⌋ + 2] (Lemma 6.6),
      depth [lg w];
    - [D(w)] and [E(w)] — [lg w]-smoothing (Lemma 5.2), with [E(w)]
      certified against [D(w)] through the Lemma 5.3 isomorphism;
    - [L(w)] — the half-split contract (Section 4.1), depth 1;
    - [M(t, δ)] — difference merging (Lemma 3.1), depth [lg δ];
    - [BITONIC(w)] and [PERIODIC(w)] — the regular baselines
      (Aspnes–Herlihy–Shavit), counting;
    - [DIFF(w)] — the diffracting-tree core, counting.

    [run] certifies every entry and is the engine behind
    [countnet lint --all] and [make lint]. *)

type entry = {
  name : string;
  expectation : Cert.expectation;
  expected_depth : int;
  build : unit -> Cn_network.Topology.t;
  reference : (unit -> Cn_network.Topology.t) * string;
      (** trusted reconstruction and the theorem it carries *)
  iso_hint : (unit -> int array) option;
      (** constructed balancer mapping onto the reference, when one is
          known (the Lemma 5.3 bit-reversal for [E(w)]) *)
}

val entries : unit -> entry list

val certify :
  ?exhaustive_budget:int ->
  ?layouts:Cn_runtime.Network_runtime.layout list ->
  entry ->
  Cert.t

val run :
  ?exhaustive_budget:int ->
  ?layouts:Cn_runtime.Network_runtime.layout list ->
  unit ->
  Cert.t list

val all_ok : Cert.t list -> bool

val pp_summary : Format.formatter -> Cert.t list -> unit
(** One line per certificate plus a final tally. *)

val to_json : Cert.t list -> string
(** [{"certificates": [...], "ok": bool}] — the CI artifact payload. *)
