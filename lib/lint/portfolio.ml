module Topology = Cn_network.Topology
module Counting = Cn_core.Counting
module Ladder = Cn_core.Ladder
module Merging = Cn_core.Merging
module Butterfly = Cn_core.Butterfly
module Blocks = Cn_core.Blocks
module Bitonic = Cn_baselines.Bitonic
module Periodic = Cn_baselines.Periodic
module Diffracting = Cn_baselines.Diffracting
module Rt = Cn_runtime.Network_runtime

type entry = {
  name : string;
  expectation : Cert.expectation;
  expected_depth : int;
  build : unit -> Topology.t;
  reference : (unit -> Topology.t) * string;
  iso_hint : (unit -> int array) option;
}

let widths = [ 2; 4; 8; 16; 32; 64 ]

let lg w =
  let rec go acc w = if w <= 1 then acc else go (acc + 1) (w / 2) in
  go 0 w

let entries () =
  List.concat_map
    (fun w ->
      let lgw = lg w in
      let counting_entries =
        List.filter_map
          (fun (suffix, t) ->
            if Counting.valid ~w ~t then
              Some
                {
                  name = Printf.sprintf "C(%d,%s)" w suffix;
                  expectation = Cert.Counting;
                  expected_depth = Counting.depth_formula ~w;
                  build = (fun () -> Counting.network ~w ~t);
                  reference = ((fun () -> Counting.network ~w ~t), "Theorems 4.1/4.2");
                  iso_hint = None;
                }
            else None)
          ([ (string_of_int w, w) ] @ if w >= 4 then [ (Printf.sprintf "%d" (w * lgw), w * lgw) ] else [])
      in
      counting_entries
      @ [
          {
            name = Printf.sprintf "C'(%d,%d)" w w;
            expectation = Cert.Smoothing (Blocks.smoothing_parameter ~w ~t:w);
            expected_depth = lgw;
            build = (fun () -> Blocks.c_prime ~w ~t:w);
            reference = ((fun () -> Blocks.c_prime ~w ~t:w), "Lemma 6.6");
                  iso_hint = None;
          };
          {
            name = Printf.sprintf "D(%d)" w;
            expectation = Cert.Smoothing (Butterfly.smoothness_bound ~w);
            expected_depth = Butterfly.depth_formula ~w;
            build = (fun () -> Butterfly.forward w);
            reference = ((fun () -> Butterfly.forward w), "Lemma 5.2");
                  iso_hint = None;
          };
          {
            (* E(w) is certified against D(w): structural equality fails
               and the Lemma 5.3 isomorphism carries the evidence. *)
            name = Printf.sprintf "E(%d)" w;
            expectation = Cert.Smoothing (Butterfly.smoothness_bound ~w);
            expected_depth = Butterfly.depth_formula ~w;
            build = (fun () -> Butterfly.backward w);
            reference = ((fun () -> Butterfly.forward w), "Lemma 5.3");
            iso_hint = Some (fun () -> Butterfly.lemma_5_3_mapping w);
          };
          {
            name = Printf.sprintf "L(%d)" w;
            expectation = Cert.Half_split;
            expected_depth = 1;
            build = (fun () -> Ladder.network w);
            reference = ((fun () -> Ladder.network w), "Section 4.1");
                  iso_hint = None;
          };
          {
            name = Printf.sprintf "BITONIC(%d)" w;
            expectation = Cert.Counting;
            expected_depth = Bitonic.depth_formula ~w;
            build = (fun () -> Bitonic.network w);
            reference = ((fun () -> Bitonic.network w), "Aspnes-Herlihy-Shavit, Section 3");
                  iso_hint = None;
          };
          {
            name = Printf.sprintf "PERIODIC(%d)" w;
            expectation = Cert.Counting;
            expected_depth = Periodic.depth_formula ~w;
            build = (fun () -> Periodic.network w);
            reference = ((fun () -> Periodic.network w), "Aspnes-Herlihy-Shavit, Section 4");
                  iso_hint = None;
          };
          {
            name = Printf.sprintf "DIFF(%d)" w;
            expectation = Cert.Counting;
            expected_depth = Diffracting.depth_formula ~w;
            build = (fun () -> Diffracting.network w);
            reference = ((fun () -> Diffracting.network w), "Shavit-Zemach");
                  iso_hint = None;
          };
        ])
    widths
  @ List.filter_map
      (fun (t, delta) ->
        if Merging.valid ~t ~delta then
          Some
            {
              name = Printf.sprintf "M(%d,%d)" t delta;
              expectation = Cert.Merging delta;
              expected_depth = Merging.depth_formula ~delta;
              build = (fun () -> Merging.network ~t ~delta);
              reference = ((fun () -> Merging.network ~t ~delta), "Lemma 3.1");
                  iso_hint = None;
            }
        else None)
      [ (8, 2); (16, 2); (16, 4); (32, 4); (64, 8) ]

let certify ?exhaustive_budget ?layouts entry =
  Cert.certify
    ~reference:((fst entry.reference) (), snd entry.reference)
    ?iso_hint:(Option.map (fun f -> f ()) entry.iso_hint)
    ~expected_depth:entry.expected_depth ?exhaustive_budget ?layouts ~subject:entry.name
    ~expectation:entry.expectation (entry.build ())

let run ?exhaustive_budget ?layouts () =
  List.map (certify ?exhaustive_budget ?layouts) (entries ())

let all_ok certs = List.for_all Cert.ok certs

let pp_summary ppf certs =
  List.iter (fun c -> Format.fprintf ppf "%a@\n" Cert.pp_line c) certs;
  let failed = List.filter (fun c -> not (Cert.ok c)) certs in
  if failed = [] then Format.fprintf ppf "%d certificates, all ok@\n" (List.length certs)
  else
    Format.fprintf ppf "%d certificates, %d FAILED@\n" (List.length certs) (List.length failed)

let to_json certs =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"certificates\":[";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Cert.to_json c))
    certs;
  Buffer.add_string buf (Printf.sprintf "],\"ok\":%b}" (all_ok certs));
  Buffer.contents buf
