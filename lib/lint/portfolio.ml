module Topology = Cn_network.Topology
module Counting = Cn_core.Counting
module Ladder = Cn_core.Ladder
module Merging = Cn_core.Merging
module Merger = Cn_core.Merger
module Butterfly = Cn_core.Butterfly
module Blocks = Cn_core.Blocks
module Bitonic = Cn_baselines.Bitonic
module Periodic = Cn_baselines.Periodic
module Diffracting = Cn_baselines.Diffracting
module Rt = Cn_runtime.Network_runtime

type entry = {
  name : string;
  expectation : Cert.expectation;
  expected_depth : int;
  build : unit -> Topology.t;
  reference : ((unit -> Topology.t) * string) option;
  iso_hint : (unit -> int array) option;
  merger : string option;
}

let schema_version = 2

let widths = [ 2; 4; 8; 16; 32; 64 ]

let lg w =
  let rec go acc w = if w <= 1 then acc else go (acc + 1) (w / 2) in
  go 0 w

let entries () =
  List.concat_map
    (fun w ->
      let lgw = lg w in
      let counting_entries =
        List.filter_map
          (fun (suffix, t) ->
            if Counting.valid ~w ~t then
              Some
                {
                  name = Printf.sprintf "C(%d,%s)" w suffix;
                  expectation = Cert.Counting;
                  expected_depth = Counting.depth_formula ~w;
                  build = (fun () -> Counting.network ~w ~t);
                  reference = Some ((fun () -> Counting.network ~w ~t), "Theorems 4.1/4.2");
                  iso_hint = None;
                  merger = None;
                }
            else None)
          ([ (string_of_int w, w) ] @ if w >= 4 then [ (Printf.sprintf "%d" (w * lgw), w * lgw) ] else [])
      in
      counting_entries
      @ [
          {
            name = Printf.sprintf "C'(%d,%d)" w w;
            expectation = Cert.Smoothing (Blocks.smoothing_parameter ~w ~t:w);
            expected_depth = lgw;
            build = (fun () -> Blocks.c_prime ~w ~t:w);
            reference = Some ((fun () -> Blocks.c_prime ~w ~t:w), "Lemma 6.6");
            iso_hint = None;
            merger = None;
          };
          {
            name = Printf.sprintf "D(%d)" w;
            expectation = Cert.Smoothing (Butterfly.smoothness_bound ~w);
            expected_depth = Butterfly.depth_formula ~w;
            build = (fun () -> Butterfly.forward w);
            reference = Some ((fun () -> Butterfly.forward w), "Lemma 5.2");
            iso_hint = None;
            merger = None;
          };
          {
            (* E(w) is certified against D(w): structural equality fails
               and the Lemma 5.3 isomorphism carries the evidence. *)
            name = Printf.sprintf "E(%d)" w;
            expectation = Cert.Smoothing (Butterfly.smoothness_bound ~w);
            expected_depth = Butterfly.depth_formula ~w;
            build = (fun () -> Butterfly.backward w);
            reference = Some ((fun () -> Butterfly.forward w), "Lemma 5.3");
            iso_hint = Some (fun () -> Butterfly.lemma_5_3_mapping w);
            merger = None;
          };
          {
            name = Printf.sprintf "L(%d)" w;
            expectation = Cert.Half_split;
            expected_depth = 1;
            build = (fun () -> Ladder.network w);
            reference = Some ((fun () -> Ladder.network w), "Section 4.1");
            iso_hint = None;
            merger = None;
          };
          {
            name = Printf.sprintf "BITONIC(%d)" w;
            expectation = Cert.Counting;
            expected_depth = Bitonic.depth_formula ~w;
            build = (fun () -> Bitonic.network w);
            reference = Some ((fun () -> Bitonic.network w), "Aspnes-Herlihy-Shavit, Section 3");
            iso_hint = None;
            merger = None;
          };
          {
            name = Printf.sprintf "PERIODIC(%d)" w;
            expectation = Cert.Counting;
            expected_depth = Periodic.depth_formula ~w;
            build = (fun () -> Periodic.network w);
            reference = Some ((fun () -> Periodic.network w), "Aspnes-Herlihy-Shavit, Section 4");
            iso_hint = None;
            merger = None;
          };
          {
            name = Printf.sprintf "DIFF(%d)" w;
            expectation = Cert.Counting;
            expected_depth = Diffracting.depth_formula ~w;
            build = (fun () -> Diffracting.network w);
            reference = Some ((fun () -> Diffracting.network w), "Shavit-Zemach");
            iso_hint = None;
            merger = None;
          };
        ])
    widths
  @ List.filter_map
      (fun (t, delta) ->
        if Merging.valid ~t ~delta then
          Some
            {
              name = Printf.sprintf "M(%d,%d)" t delta;
              expectation = Cert.Merging delta;
              expected_depth = Merging.depth_formula ~delta;
              build = (fun () -> Merging.network ~t ~delta);
              reference = Some ((fun () -> Merging.network ~t ~delta), "Lemma 3.1");
              iso_hint = None;
              merger = None;
            }
        else None)
      [ (8, 2); (16, 2); (16, 4); (32, 4); (64, 8) ]

(* ---- the hybrid campaign -------------------------------------------

   Merger-substituted C(w, t) plus the standalone periodic merger
   stages.  Hybrids carry no reference construction — no theorem of the
   paper covers a substituted merger — so their evidence comes from the
   exhaustive and escalate passes alone, and a pinned [Refuted]
   certificate with its replayable counterexample is as much a result
   as a certification. *)

let hybrid_strategies = [ Merger.Periodic3; Merger.Periodic_k 2; Merger.Periodic_k 6 ]
let hybrid_scopes = [ Merger.Top_only; Merger.All_levels ]

(* A periodic merger needs a power-of-two width at every substituted
   level, so only (w, t) pairs with t a power of two qualify; the wide
   t = w·lgw configurations survive at w = 4 and w = 16. *)
let hybrid_sizes = [ (4, 4); (4, 8); (8, 8); (16, 16); (16, 64); (32, 32); (64, 64) ]

let hybrid_entries () =
  List.concat_map
    (fun (w, t) ->
      List.concat_map
        (fun strategy ->
          List.map
            (fun scope ->
              let tag = Merger.strategy_name strategy ^ "/" ^ Merger.scope_name scope in
              {
                name = Printf.sprintf "C(%d,%d)[%s]" w t tag;
                expectation = Cert.Counting;
                expected_depth = Counting.depth_formula_with ~merger:strategy ~scope ~w ~t;
                build = (fun () -> Counting.network_with ~merger:strategy ~scope ~w ~t);
                reference = None;
                iso_hint = None;
                merger = Some tag;
              })
            hybrid_scopes)
        hybrid_strategies)
    hybrid_sizes
  @ List.concat_map
      (fun t ->
        List.map
          (fun strategy ->
            let delta = t / 2 in
            let tag = Merger.strategy_name strategy in
            {
              name = Printf.sprintf "M(%d,%d)[%s]" t delta tag;
              expectation = Cert.Merging delta;
              expected_depth = Merger.depth_formula ~strategy ~t ~delta;
              build = (fun () -> Merger.network ~strategy ~t ~delta);
              reference = None;
              iso_hint = None;
              merger = Some tag;
            })
          hybrid_strategies)
      [ 4; 8; 16; 32; 64 ]

let certify ?exhaustive_budget ?layouts entry =
  Cert.certify
    ?reference:(Option.map (fun (f, cite) -> (f (), cite)) entry.reference)
    ?iso_hint:(Option.map (fun f -> f ()) entry.iso_hint)
    ?merger:entry.merger ~expected_depth:entry.expected_depth ?exhaustive_budget ?layouts
    ~subject:entry.name ~expectation:entry.expectation (entry.build ())

let run ?exhaustive_budget ?layouts () =
  List.map (certify ?exhaustive_budget ?layouts) (entries ())

let run_hybrids ?exhaustive_budget ?layouts () =
  List.map (certify ?exhaustive_budget ?layouts) (hybrid_entries ())

let all_ok certs = List.for_all Cert.ok certs

let refuted c = match c.Cert.evidence with Cert.Refuted _ -> true | _ -> false

(* A hybrid certificate is adjudicated when the pipeline reached a
   decision either way: certified clean, or refuted with a concrete
   counterexample.  Anything else (a diagnostic without a refutation,
   e.g. a depth-formula mismatch) is a pipeline failure, not a result. *)
let adjudicated c = Cert.ok c || refuted c

let all_adjudicated certs = List.for_all adjudicated certs

let pp_summary ppf certs =
  List.iter (fun c -> Format.fprintf ppf "%a@\n" Cert.pp_line c) certs;
  let failed = List.filter (fun c -> not (Cert.ok c)) certs in
  if failed = [] then Format.fprintf ppf "%d certificates, all ok@\n" (List.length certs)
  else
    Format.fprintf ppf "%d certificates, %d FAILED@\n" (List.length certs) (List.length failed)

let pp_hybrid_summary ppf certs =
  List.iter (fun c -> Format.fprintf ppf "%a@\n" Cert.pp_line c) certs;
  let nref = List.length (List.filter refuted certs) in
  let bad = List.filter (fun c -> not (adjudicated c)) certs in
  if bad = [] then
    Format.fprintf ppf "%d hybrid certificates: %d certified, %d refuted with pinned counterexamples@\n"
      (List.length certs)
      (List.length certs - nref)
      nref
  else
    Format.fprintf ppf "%d hybrid certificates, %d UNADJUDICATED@\n" (List.length certs)
      (List.length bad)

let to_json certs =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "{\"schema_version\":%d,\"certificates\":[" schema_version);
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Cert.to_json c))
    certs;
  Buffer.add_string buf (Printf.sprintf "],\"ok\":%b}" (all_ok certs));
  Buffer.contents buf
