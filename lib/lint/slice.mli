(** Layer-prefix extraction.

    [prefix net ~layers:k] is the sub-network formed by the balancers of
    depth at most [k], with the wires crossing the cut exposed as
    network outputs.  Output ordering is canonical but arbitrary —
    unconsumed network inputs first (ascending), then surviving balancer
    ports in (new id, port) order — so prefix networks are meant to be
    compared up to isomorphism ({!Cn_network.Iso}), which derives wire
    correspondences itself.

    The block-structure certification of [C(w, t)] (paper, Section 6.4)
    uses this: its first [lg w] layers must be isomorphic to
    [C'(w, t) = N_ab] ({!Cn_core.Blocks.c_prime}), and with the last
    layer regularized, to the backward butterfly [E(w)]. *)

val prefix : Cn_network.Topology.t -> layers:int -> Cn_network.Topology.t
(** @raise Invalid_argument if [layers] is negative or exceeds the
    network depth. *)
