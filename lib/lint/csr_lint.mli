(** CSR faithfulness: certify that a compiled runtime is a faithful
    encoding of its source topology.

    {!Cn_runtime.Network_runtime.view} exposes everything the walk loops
    read — CSR offsets, the flat and nested jump tables, port-mask
    bases, entry table, initial states — as plain arrays.  {!check}
    decompiles that representation and diffs it against the source
    topology, emitting pinned diagnostics:

    - [CSR001] malformed tables (offset monotonicity, table lengths);
    - [CSR002] row width or port-mask base disagrees with the
      balancer's fan-out;
    - [CSR003] dangling encoded destination (outside both the balancer
      range and the output-wire range);
    - [CSR004] coverage: a balancer is targeted by a number of wires
      other than its fan-in, or an output wire by other than exactly
      one;
    - [CSR005] the flat CSR table and the nested layout disagree;
    - [CSR006] entry table does not match the topology's input wiring;
    - [CSR007] initial state mismatch;
    - [CSR008] input/output width mismatch;
    - [CSR009] jump-table wiring differs from the topology (the
      decompiled network is not the source network);
    - [CSR010] the precompiled routing image is wrong: a stride-2
      route entry carries a row base off its CSR row, or a port
      strategy that is not the mask [fan_out - 1] for a power-of-two
      fan-out (resp. [-fan_out] for the double-[mod] path), in either
      the route table or the nested walk's strategy table.

    The destination encoding mirrors the runtime's: a non-negative
    entry is a balancer id, a negative entry [-(wire + 1)] is network
    output wire [wire].  Input-port assignment is not represented in
    the compiled form (a token entering any port of a balancer is
    indistinguishable), so faithfulness is naturally modulo input-port
    permutation — exactly the equivalence the runtime semantics
    quotient by.

    All findings are collected; checks that would read out of range on
    already-malformed tables are skipped rather than crashing, so a
    corrupted view yields its complete diagnosis. *)

val check :
  subject:string ->
  Cn_network.Topology.t ->
  Cn_runtime.Network_runtime.view ->
  Diagnostic.t list
(** [check ~subject net view] is the complete list of faithfulness
    violations of [view] against [net]; [[]] iff the compiled form is
    faithful. *)
