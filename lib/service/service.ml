module RT = Cn_runtime.Network_runtime
module V = Cn_runtime.Validator
module Metrics = Cn_runtime.Metrics

(* The production service is Service_core's protocol instantiated with
   the real atomics and the compiled runtime; the deterministic race
   checker (Cn_check) instantiates the same functor with instrumented
   atomics, so the code below is exactly what gets model-checked. *)

module Rt_real = struct
  type t = RT.t
  type buffer = RT.buffer

  let input_width = RT.input_width
  let traverse = RT.traverse
  let traverse_decrement = RT.traverse_decrement
  let traverse_batch = RT.traverse_batch
  let traverse_batch_decrement = RT.traverse_batch_decrement
  let buffer ~capacity = RT.buffer ~capacity ()
  let traverse_batch_pipelined = RT.traverse_batch_pipelined
  let traverse_batch_pipelined_decrement = RT.traverse_batch_pipelined_decrement
  let quiescent = V.quiescent_runtime
end

module Core = Service_core.Make (Cn_runtime.Atomics.Real) (Rt_real)
include Core

let create ?mode ?layout ?metrics ?max_batch ?queue ?elim ?pipeline ?validate net =
  let rt = RT.compile ?mode ?layout ?metrics net in
  let layers =
    let module T = Cn_network.Topology in
    Array.init (T.size net) (T.balancer_depth net)
  in
  Core.make ?max_batch ?queue ?elim ?pipeline ?validate ~layers rt

let report_json t =
  let network =
    match RT.metrics (Core.runtime t) with
    | Some m -> Metrics.to_json ~layers:(Core.layers t) (Metrics.snapshot m)
    | None -> "null"
  in
  Printf.sprintf "{\n\"service\": %s,\n\"network\": %s\n}" (stats_json t)
    (String.trim network)

let shared_counter ?(sessions = 64) t =
  if sessions < 1 then
    invalid_arg "Service.shared_counter: sessions must be at least 1";
  (* Sessions are single-owner (mutable cell, outstanding flag), so two
     processes must never share one: the pool holds one session per
     process id and grows on demand — [sessions] only sizes the
     pre-allocated prefix.  Growth is rare (once per high-water pid),
     so a plain mutex is fine; readers go through the atomic snapshot
     and never lock. *)
  let module A = Cn_runtime.Atomics.Real in
  let pool = A.make (Array.init sessions (fun _ -> session t)) in
  let lock =
    (Mutex.create
    [@atomlint.allow
      "growth-path-only lock: taken once per high-water pid, never on \
       the operation fast path, which reads the atomic pool snapshot"])
      ()
  in
  (* The lock is confined to the miss path: a covered pid costs one
     atomic snapshot read and an array index, never the mutex.  On a
     miss the pool length is re-read under the lock (double-read) so
     racing growers serialize and only the first one actually grows;
     the session is then returned straight from the post-grow
     snapshot — no retry loop, so a grower can never be starved by a
     stream of concurrent misses. *)
  let session_for pid =
    let p = A.get pool in
    if pid < Array.length p then p.(pid)
    else begin
      (Mutex.lock [@atomlint.allow "growth path, see create above"]) lock;
      let p = A.get pool in
      let q =
        if pid < Array.length p then p
        else begin
          let n = max (pid + 1) (2 * Array.length p) in
          let q =
            Array.init n (fun i ->
                if i < Array.length p then p.(i) else session t)
          in
          A.set pool q;
          q
        end
      in
      (Mutex.unlock [@atomlint.allow "growth path, see create above"]) lock;
      q.(pid)
    end
  in
  let rec op f ~pid =
    match f (session_for pid) with
    | Ok v -> v
    | Error Overloaded ->
        Domain.cpu_relax ();
        op f ~pid
    | Error Closed -> failwith "Service.shared_counter: service is closed"
  in
  Cn_runtime.Shared_counter.custom ~name:"service" ~runtime:(Core.runtime t)
    ~next:(fun ~pid -> op increment ~pid)
    ~prev:(fun ~pid -> op decrement ~pid)
    ()

(* ------------------------------------------------------------------ *)
(* Backend profiles: exact network-backed counting vs the Cn_sketch
   approximate tiers, behind one Shared_counter surface. *)

type backend =
  | Exact
  | Hll of { precision : int }
  | Sparse of { counters : int; degree : int }

let backend_of_string = function
  | "exact" -> Ok Exact
  | "hll" -> Ok (Hll { precision = 14 })
  | "sparse" -> Ok (Sparse { counters = 4096; degree = 3 })
  | s -> Error (Printf.sprintf "unknown backend %S (expected exact|hll|sparse)" s)

let backend_name = function
  | Exact -> "exact"
  | Hll _ -> "hll"
  | Sparse _ -> "sparse"

let backend_counter ?sessions t = function
  | Exact -> shared_counter ?sessions t
  | Hll { precision } -> (Cn_sketch.Backend.hll ~precision ()).Cn_sketch.Backend.counter
  | Sparse { counters; degree } ->
      (Cn_sketch.Backend.sparse ~counters ~degree ()).Cn_sketch.Backend.counter
