module RT = Cn_runtime.Network_runtime
module V = Cn_runtime.Validator
module Metrics = Cn_runtime.Metrics

type op = Inc | Dec

type error = Overloaded | Closed

(* One parked operation.  [state] is 0 while pending, 1 once [result]
   holds the operation's value; the combiner writes [result] before the
   atomic flip, so a client that observes state = 1 reads a published
   result.  Cells are owned by sessions and reused across operations. *)
type cell = { mutable kind : op; mutable result : int; done_ : int Atomic.t }

(* A combining lane, one per input wire.  [slots] is the bounded
   submission queue: publish = CAS [empty] -> cell, take = CAS cell ->
   [empty] (physical equality on the shared sentinel).  [combining] is
   the combiner-election flag; everything suffixed [_scr] is scratch
   owned by whoever holds it.  Stats atomics are single-writer (the
   flag holder) so plain get/set suffices. *)
type lane = {
  wire : int;
  slots : cell Atomic.t array;
  combining : bool Atomic.t;
  parked : int Atomic.t;  (* cells currently in [slots] *)
  mutable next_scan : int;  (* rotating scan start, combiner-owned *)
  cells_scr : cell array;
  inc_scr : int array;
  dec_scr : int array;
  batches : int Atomic.t;
  ops_combined : int Atomic.t;
  max_batch_observed : int Atomic.t;
  eliminated_pairs : int Atomic.t;
  rejected : int Atomic.t;
}

let st_running = 0
let st_draining = 1
let st_stopped = 2

type t = {
  rt : RT.t;
  lanes : lane array;
  empty : cell;  (* shared slot sentinel, never a real operation *)
  max_batch : int;
  elim : bool;
  validate : V.policy;
  state : int Atomic.t;
  next_wire : int Atomic.t;
  next_session : int Atomic.t;
  layers : int array;  (* per-balancer 1-based depth, for metrics JSON *)
}

type session = {
  svc : t;
  lane : lane;
  cell : cell;
  slot_base : int;  (* where this session starts its slot scan *)
  mutable outstanding : bool;
}

type stats = {
  wires : int;
  batches : int array;
  ops_combined : int array;
  max_batch_observed : int array;
  eliminated_pairs : int array;
  rejected : int array;
  total_batches : int;
  total_ops : int;
  total_eliminated_pairs : int;
  total_rejected : int;
  mean_batch : float;
  elimination_rate : float;
}

let dummy_cell () = { kind = Inc; result = 0; done_ = Atomic.make 1 }

let make_lane ~empty ~wire ~queue ~max_batch =
  {
    wire;
    slots = Array.init queue (fun _ -> Atomic.make empty);
    combining = Atomic.make false;
    parked = Atomic.make 0;
    next_scan = 0;
    cells_scr = Array.make max_batch empty;
    inc_scr = Array.make max_batch 0;
    dec_scr = Array.make max_batch 0;
    batches = Atomic.make 0;
    ops_combined = Atomic.make 0;
    max_batch_observed = Atomic.make 0;
    eliminated_pairs = Atomic.make 0;
    rejected = Atomic.make 0;
  }

let create ?mode ?layout ?metrics ?(max_batch = 64) ?queue ?(elim = true)
    ?(validate = V.Strict) net =
  if max_batch < 1 then
    invalid_arg "Service.create: max_batch must be at least 1";
  let queue = Option.value queue ~default:max_batch in
  if queue < 1 then invalid_arg "Service.create: queue must be at least 1";
  let rt = RT.compile ?mode ?layout ?metrics net in
  let empty = dummy_cell () in
  let w = RT.input_width rt in
  let layers =
    let module T = Cn_network.Topology in
    Array.init (T.size net) (T.balancer_depth net)
  in
  {
    rt;
    lanes = Array.init w (fun wire -> make_lane ~empty ~wire ~queue ~max_batch);
    empty;
    max_batch;
    elim;
    validate;
    state = Atomic.make st_running;
    next_wire = Atomic.make 0;
    next_session = Atomic.make 0;
    layers;
  }

let runtime t = t.rt
let input_width t = Array.length t.lanes

let session ?wire t =
  let w = input_width t in
  let wire =
    match wire with
    | Some x ->
        if x < 0 || x >= w then
          invalid_arg
            (Printf.sprintf "Service.session: wire %d out of range [0, %d)" x w);
        x
    | None -> Atomic.fetch_and_add t.next_wire 1 mod w
  in
  let lane = t.lanes.(wire) in
  {
    svc = t;
    lane;
    cell = dummy_cell ();
    (* Pre-reduced so the publish probe loop never divides. *)
    slot_base = Atomic.fetch_and_add t.next_session 1 mod Array.length lane.slots;
    outstanding = false;
  }

let session_wire s = s.lane.wire

(* Single-writer counter bump: only the lane's flag holder calls these,
   so get/set is enough — Atomic only for cross-domain visibility. *)
let bump a n = Atomic.set a (Atomic.get a + n)
let raise_to a n = if n > Atomic.get a then Atomic.set a n

(* Drain the lane's slots into [cells_scr] (slot [own] first, when the
   combiner brought its own operation), run the survivors through the
   network as one batch, eliminate matched inc/dec pairs, publish
   results.  Caller holds [lane.combining]. *)
let combine svc lane own =
  let cells = lane.cells_scr in
  let n = ref 0 in
  (match own with
  | Some c ->
      cells.(0) <- c;
      n := 1
  | None -> ());
  let cap = Array.length lane.slots in
  let own_n = !n in
  (* Keep sweeping while new arrivals land and the batch has room: the
     batch grows with the arrival rate, up to [max_batch]. *)
  let grabbed = ref true in
  while !grabbed && !n < svc.max_batch do
    grabbed := false;
    let start = lane.next_scan in
    let j = ref 0 in
    while !j < cap && !n < svc.max_batch do
      let i = start + !j in
      let i = if i >= cap then i - cap else i in
      let slot = lane.slots.(i) in
      let c = Atomic.get slot in
      if c != svc.empty && Atomic.compare_and_set slot c svc.empty then begin
        cells.(!n) <- c;
        incr n;
        grabbed := true
      end;
      incr j
    done;
    lane.next_scan <- (if start + 1 >= cap then 0 else start + 1)
  done;
  (* One aggregate update instead of a fenced decrement per take; the
     combiner still holds the flag, so quiescence checks stay sound. *)
  if !n > own_n then ignore (Atomic.fetch_and_add lane.parked (own_n - !n));
  let n = !n in
  if n > 0 then begin
    let incs = ref 0 in
    for k = 0 to n - 1 do
      if cells.(k).kind = Inc then incr incs
    done;
    let incs = !incs in
    let decs = n - incs in
    (* Eliminate matched pairs locally; when the batch is perfectly
       matched keep one pair real so an anchor value exists. *)
    let elim =
      if (not svc.elim) || incs = 0 || decs = 0 then 0
      else if incs = decs then incs - 1
      else min incs decs
    in
    let run_incs = incs - elim and run_decs = decs - elim in
    let inc_vals = lane.inc_scr and dec_vals = lane.dec_scr in
    if run_incs > 0 then
      RT.traverse_batch svc.rt ~wire:lane.wire ~n:run_incs ~f:(fun i v ->
          inc_vals.(i) <- v);
    for i = 0 to run_decs - 1 do
      dec_vals.(i) <- RT.traverse_decrement svc.rt ~wire:lane.wire
    done;
    let anchor =
      if run_incs > 0 then inc_vals.(0)
      else if run_decs > 0 then dec_vals.(0)
      else 0 (* unreachable: elim > 0 forces run_incs > 0 or run_decs > 0 *)
    in
    let ii = ref 0 and di = ref 0 in
    for k = 0 to n - 1 do
      let c = cells.(k) in
      let v =
        match c.kind with
        | Inc ->
            if !ii < run_incs then (
              let v = inc_vals.(!ii) in
              incr ii;
              v)
            else anchor
        | Dec ->
            if !di < run_decs then (
              let v = dec_vals.(!di) in
              incr di;
              v)
            else anchor
      in
      c.result <- v;
      Atomic.set c.done_ 1;
      cells.(k) <- svc.empty (* drop the reference; cells are session-owned *)
    done;
    bump lane.batches 1;
    bump lane.ops_combined n;
    bump lane.eliminated_pairs elim;
    raise_to lane.max_batch_observed n
  end

let spin_limit = 1024
let nap = 0.0002 (* seconds; same patience as Domain_pool's waiters *)

(* Publish the session's cell into a free slot, or fail Overloaded. *)
let publish sess op =
  let lane = sess.lane and svc = sess.svc in
  let cell = sess.cell in
  cell.kind <- op;
  Atomic.set cell.done_ 0;
  let cap = Array.length lane.slots in
  let rec find j =
    if j >= cap then begin
      Atomic.incr lane.rejected;
      Error Overloaded
    end
    else
      let i = sess.slot_base + j in
      let i = if i >= cap then i - cap else i in
      let slot = lane.slots.(i) in
      if
        Atomic.get slot == svc.empty
        && Atomic.compare_and_set slot svc.empty cell
      then begin
        Atomic.incr lane.parked;
        Ok ()
      end
      else find (j + 1)
  in
  find 0

(* Wait for the cell's result, helping combine whenever the lane has no
   combiner.  A combiner that took the cell but has not yet published
   holds [combining], so helping cannot race with it. *)
let wait_for sess =
  let lane = sess.lane and svc = sess.svc in
  let cell = sess.cell in
  let spins = ref 0 in
  while Atomic.get cell.done_ = 0 do
    if Atomic.compare_and_set lane.combining false true then begin
      if Atomic.get cell.done_ = 0 then combine svc lane None;
      Atomic.set lane.combining false
    end
    else begin
      incr spins;
      if !spins < spin_limit then Domain.cpu_relax ()
      else begin
        spins := 0;
        Unix.sleepf nap
      end
    end
  done;
  cell.result

let run_op sess op =
  if sess.outstanding then
    invalid_arg "Service: session has an outstanding submit";
  let svc = sess.svc in
  if Atomic.get svc.state <> st_running then Error Closed
  else begin
    let lane = sess.lane in
    if Atomic.compare_and_set lane.combining false true then
      (* Re-check under the flag: a drain that flipped the state after
         our admission check will wait for the flag, so aborting here
         guarantees no traversal slips past a draining service. *)
      if Atomic.get svc.state <> st_running then begin
        Atomic.set lane.combining false;
        Error Closed
      end
      else begin
        let v =
          if Atomic.get lane.parked = 0 then begin
            (* Uncontended fast path: a batch of one, straight through. *)
            bump lane.batches 1;
            bump lane.ops_combined 1;
            raise_to lane.max_batch_observed 1;
            match op with
            | Inc -> RT.traverse svc.rt ~wire:lane.wire
            | Dec -> RT.traverse_decrement svc.rt ~wire:lane.wire
          end
          else begin
            let cell = sess.cell in
            cell.kind <- op;
            Atomic.set cell.done_ 0;
            combine svc lane (Some cell);
            cell.result
          end
        in
        Atomic.set lane.combining false;
        Ok v
      end
    else
      match publish sess op with
      | Error _ as e -> e
      | Ok () -> Ok (wait_for sess)
  end

let increment s = run_op s Inc
let decrement s = run_op s Dec

let submit sess op =
  if sess.outstanding then
    invalid_arg "Service.submit: session already has an outstanding submit";
  if Atomic.get sess.svc.state <> st_running then Error Closed
  else
    match publish sess op with
    | Error _ as e -> e
    | Ok () ->
        sess.outstanding <- true;
        Ok ()

let await sess =
  if not sess.outstanding then
    invalid_arg "Service.await: nothing submitted on this session";
  let v = wait_for sess in
  sess.outstanding <- false;
  v

let quiesced t =
  Array.for_all
    (fun lane ->
      Atomic.get lane.parked = 0 && not (Atomic.get lane.combining))
    t.lanes

(* Help every lane run dry: elect ourselves combiner wherever work is
   parked, then wait out in-flight combiners. *)
let sweep_until_quiet t =
  let spins = ref 0 in
  while not (quiesced t) do
    let progressed = ref false in
    Array.iter
      (fun lane ->
        if
          Atomic.get lane.parked > 0
          && Atomic.compare_and_set lane.combining false true
        then begin
          combine t lane None;
          Atomic.set lane.combining false;
          progressed := true
        end)
      t.lanes;
    if not !progressed then begin
      incr spins;
      if !spins < spin_limit then Domain.cpu_relax ()
      else begin
        spins := 0;
        Unix.sleepf nap
      end
    end
  done

let drain_to ~final ?policy t =
  let policy = Option.value policy ~default:t.validate in
  let prior = Atomic.exchange t.state st_draining in
  sweep_until_quiet t;
  let report = V.quiescent_runtime t.rt in
  V.enforce policy report;
  (* Only reached when the report passed (or the policy tolerates
     failure): re-open, unless the service was already stopped. *)
  Atomic.set t.state (if prior = st_stopped then st_stopped else final);
  report

let drain ?policy t = drain_to ~final:st_running ?policy t
let shutdown ?policy t = drain_to ~final:st_stopped ?policy t

let stats t =
  let per f = Array.map (fun l -> Atomic.get (f l)) t.lanes in
  let sum a = Array.fold_left ( + ) 0 a in
  let batches = per (fun l -> l.batches) in
  let ops_combined = per (fun l -> l.ops_combined) in
  let eliminated_pairs = per (fun l -> l.eliminated_pairs) in
  let rejected = per (fun l -> l.rejected) in
  let total_batches = sum batches in
  let total_ops = sum ops_combined in
  let total_eliminated_pairs = sum eliminated_pairs in
  {
    wires = Array.length t.lanes;
    batches;
    ops_combined;
    max_batch_observed = per (fun l -> l.max_batch_observed);
    eliminated_pairs;
    rejected;
    total_batches;
    total_ops;
    total_eliminated_pairs;
    total_rejected = sum rejected;
    mean_batch =
      (if total_batches = 0 then 0.
       else float_of_int total_ops /. float_of_int total_batches);
    elimination_rate =
      (if total_ops = 0 then 0.
       else float_of_int (2 * total_eliminated_pairs) /. float_of_int total_ops);
  }

let json_int_array a =
  "["
  ^ String.concat ", " (Array.to_list (Array.map string_of_int a))
  ^ "]"

let stats_json t =
  let s = stats t in
  let b = Buffer.create 512 in
  Buffer.add_string b "{\n";
  Printf.bprintf b "  \"wires\": %d,\n" s.wires;
  Printf.bprintf b "  \"batches\": %d,\n" s.total_batches;
  Printf.bprintf b "  \"ops_combined\": %d,\n" s.total_ops;
  Printf.bprintf b "  \"mean_batch\": %.3f,\n" s.mean_batch;
  Printf.bprintf b "  \"eliminated_pairs\": %d,\n" s.total_eliminated_pairs;
  Printf.bprintf b "  \"elimination_rate\": %.4f,\n" s.elimination_rate;
  Printf.bprintf b "  \"rejected\": %d,\n" s.total_rejected;
  Printf.bprintf b "  \"per_wire_batches\": %s,\n" (json_int_array s.batches);
  Printf.bprintf b "  \"per_wire_ops\": %s,\n" (json_int_array s.ops_combined);
  Printf.bprintf b "  \"per_wire_max_batch\": %s,\n"
    (json_int_array s.max_batch_observed);
  Printf.bprintf b "  \"per_wire_eliminated\": %s,\n"
    (json_int_array s.eliminated_pairs);
  Printf.bprintf b "  \"per_wire_rejected\": %s\n" (json_int_array s.rejected);
  Buffer.add_string b "}";
  Buffer.contents b

let report_json t =
  let network =
    match RT.metrics t.rt with
    | Some m -> Metrics.to_json ~layers:t.layers (Metrics.snapshot m)
    | None -> "null"
  in
  Printf.sprintf "{\n\"service\": %s,\n\"network\": %s\n}" (stats_json t)
    (String.trim network)

let shared_counter ?(sessions = 64) t =
  if sessions < 1 then
    invalid_arg "Service.shared_counter: sessions must be at least 1";
  let ss = Array.init sessions (fun _ -> session t) in
  let rec op f ~pid =
    match f ss.(pid mod sessions) with
    | Ok v -> v
    | Error Overloaded ->
        Domain.cpu_relax ();
        op f ~pid
    | Error Closed -> failwith "Service.shared_counter: service is closed"
  in
  Cn_runtime.Shared_counter.custom ~name:"service" ~runtime:t.rt
    ~next:(fun ~pid -> op increment ~pid)
    ~prev:(fun ~pid -> op decrement ~pid)
    ()
