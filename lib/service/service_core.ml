module V = Cn_runtime.Validator

module type RUNTIME = sig
  type t

  type buffer
  (** Caller-owned scratch for the pipelined batch walks; each combining
      lane holds one. *)

  val input_width : t -> int
  val traverse : t -> wire:int -> int
  val traverse_decrement : t -> wire:int -> int
  val traverse_batch : t -> wire:int -> n:int -> f:(int -> int -> unit) -> unit
  val traverse_batch_decrement : t -> wire:int -> n:int -> f:(int -> int -> unit) -> unit
  val buffer : capacity:int -> buffer
  val traverse_batch_pipelined : t -> buffer -> wire:int -> n:int -> f:(int -> int -> unit) -> unit

  val traverse_batch_pipelined_decrement :
    t -> buffer -> wire:int -> n:int -> f:(int -> int -> unit) -> unit

  val quiescent : t -> V.report
end

module type S = sig
  type rt
  type t
  type session
  type op = Inc | Dec
  type error = Overloaded | Closed

  type stats = {
    wires : int;
    batches : int array;
    ops_combined : int array;
    max_batch_observed : int array;
    eliminated_pairs : int array;
    rejected : int array;
    total_batches : int;
    total_ops : int;
    total_eliminated_pairs : int;
    total_rejected : int;
    mean_batch : float;
    elimination_rate : float;
  }

  val make :
    ?max_batch:int ->
    ?queue:int ->
    ?elim:bool ->
    ?pipeline:bool ->
    ?validate:V.policy ->
    ?layers:int array ->
    rt ->
    t

  val runtime : t -> rt
  val layers : t -> int array
  val input_width : t -> int
  val session : ?wire:int -> t -> session
  val session_wire : session -> int
  val increment : session -> (int, error) result
  val decrement : session -> (int, error) result
  val submit : session -> op -> (unit, error) result
  val await : session -> int
  val lifecycle : t -> [ `Running | `Draining | `Stopped ]
  val drain : ?policy:V.policy -> t -> V.report
  val shutdown : ?policy:V.policy -> t -> V.report
  val stats : t -> stats
  val stats_json : t -> string
end

module Make (A : Cn_runtime.Atomics.S) (R : RUNTIME) = struct
  type rt = R.t
  type op = Inc | Dec
  type error = Overloaded | Closed

  (* One parked operation.  [state] is 0 while pending, 1 once [result]
     holds the operation's value; the combiner writes [result] before
     the atomic flip, so a client that observes state = 1 reads a
     published result.  Cells are owned by sessions and reused across
     operations. *)
  type cell = { mutable kind : op; mutable result : int; done_ : int A.t }

  (* A combining lane, one per input wire.  [slots] is the bounded
     submission queue: publish = CAS [empty] -> cell, take = CAS cell ->
     [empty] (physical equality on the shared sentinel).  [combining] is
     the combiner-election flag; everything suffixed [_scr] is scratch
     owned by whoever holds it.  Stats atomics are single-writer (the
     flag holder) so plain get/set suffices. *)
  type lane = {
    wire : int;
    slots : cell A.t array;
    combining : bool A.t;
    parked : int A.t;
        (* cells in [slots] plus publishers committed to parking one:
           incremented before the slot probe so a quiescence check never
           passes while a publisher is mid-flight *)
    mutable next_scan : int;  (* rotating scan start, combiner-owned *)
    cells_scr : cell array;
    inc_scr : int array;
    dec_scr : int array;
    pipe_scr : R.buffer;
    batches : int A.t;
    ops_combined : int A.t;
    max_batch_observed : int A.t;
    eliminated_pairs : int A.t;
    rejected : int A.t;
  }

  let st_running = 0
  let st_draining = 1
  let st_stopped = 2

  type t = {
    rt : R.t;
    lanes : lane array;
    empty : cell;  (* shared slot sentinel, never a real operation *)
    max_batch : int;
    elim : bool;
    pipeline : bool;  (* drain combined runs through the pipelined batch walks *)
    validate : V.policy;
    state : int A.t;
    stop_requested : bool A.t;
        (* sticky shutdown intent: set before competing for the drain,
           read by whoever owns it, so a drain racing a shutdown can
           never re-open a service the shutdown is about to stop *)
    next_wire : int A.t;
    next_session : int A.t;
    layers : int array;  (* per-balancer 1-based depth, for metrics JSON *)
  }

  type session = {
    svc : t;
    lane : lane;
    cell : cell;
    slot_base : int;  (* where this session starts its slot scan *)
    mutable outstanding : bool;
  }

  type stats = {
    wires : int;
    batches : int array;
    ops_combined : int array;
    max_batch_observed : int array;
    eliminated_pairs : int array;
    rejected : int array;
    total_batches : int;
    total_ops : int;
    total_eliminated_pairs : int;
    total_rejected : int;
    mean_batch : float;
    elimination_rate : float;
  }

  let dummy_cell () = { kind = Inc; result = 0; done_ = A.make 1 }

  let make_lane ~empty ~wire ~queue ~max_batch =
    {
      wire;
      slots = Array.init queue (fun _ -> A.make empty);
      combining = A.make false;
      parked = A.make 0;
      next_scan = 0;
      cells_scr = Array.make max_batch empty;
      inc_scr = Array.make max_batch 0;
      dec_scr = Array.make max_batch 0;
      pipe_scr = R.buffer ~capacity:max_batch;
      batches = A.make_stat 0;
      ops_combined = A.make_stat 0;
      max_batch_observed = A.make_stat 0;
      eliminated_pairs = A.make_stat 0;
      rejected = A.make_stat 0;
    }

  let make ?(max_batch = 64) ?queue ?(elim = true) ?(pipeline = false)
      ?(validate = V.Strict) ?(layers = [||]) rt =
    if max_batch < 1 then
      invalid_arg "Service.create: max_batch must be at least 1";
    let queue = Option.value queue ~default:max_batch in
    if queue < 1 then invalid_arg "Service.create: queue must be at least 1";
    let empty = dummy_cell () in
    let w = R.input_width rt in
    {
      rt;
      lanes = Array.init w (fun wire -> make_lane ~empty ~wire ~queue ~max_batch);
      empty;
      max_batch;
      elim;
      pipeline;
      validate;
      state = A.make st_running;
      stop_requested = A.make false;
      next_wire = A.make 0;
      next_session = A.make 0;
      layers;
    }

  let runtime t = t.rt
  let layers t = t.layers
  let input_width t = Array.length t.lanes

  let session ?wire t =
    let w = input_width t in
    let wire =
      match wire with
      | Some x ->
          if x < 0 || x >= w then
            invalid_arg
              (Printf.sprintf "Service.session: wire %d out of range [0, %d)" x w);
          x
      | None -> A.fetch_and_add t.next_wire 1 mod w
    in
    let lane = t.lanes.(wire) in
    {
      svc = t;
      lane;
      cell = dummy_cell ();
      (* Pre-reduced so the publish probe loop never divides. *)
      slot_base = A.fetch_and_add t.next_session 1 mod Array.length lane.slots;
      outstanding = false;
    }

  let session_wire s = s.lane.wire

  let lifecycle t =
    let s = A.get t.state in
    if s = st_running then `Running
    else if s = st_draining then `Draining
    else `Stopped

  (* Single-writer counter bump: only the lane's flag holder calls these,
     so get/set is enough — Atomic only for cross-domain visibility. *)
  let bump a n = A.set a (A.get a + n)
  let raise_to a n = if n > A.get a then A.set a n

  (* Drain the lane's slots into [cells_scr] (slot [own] first, when the
     combiner brought its own operation), run the survivors through the
     network as one batch, eliminate matched inc/dec pairs, publish
     results.  Caller holds [lane.combining].  Returns how many cells
     were grabbed from the slots, so a sweeper can tell an actual grab
     from a fruitless scan and back off instead of hammering the flag. *)
  let combine svc lane own =
    let cells = lane.cells_scr in
    let n = ref 0 in
    (match own with
    | Some c ->
        cells.(0) <- c;
        n := 1
    | None -> ());
    let cap = Array.length lane.slots in
    let own_n = !n in
    (* Keep sweeping while new arrivals land and the batch has room: the
       batch grows with the arrival rate, up to [max_batch]. *)
    let grabbed = ref true in
    while !grabbed && !n < svc.max_batch do
      grabbed := false;
      let start = lane.next_scan in
      let j = ref 0 in
      while !j < cap && !n < svc.max_batch do
        let i = start + !j in
        let i = if i >= cap then i - cap else i in
        let slot = lane.slots.(i) in
        let c = A.get slot in
        if c != svc.empty && A.compare_and_set slot c svc.empty then begin
          cells.(!n) <- c;
          incr n;
          grabbed := true
        end;
        incr j
      done;
      lane.next_scan <- (if start + 1 >= cap then 0 else start + 1)
    done;
    (* One aggregate update instead of a fenced decrement per take; the
       combiner still holds the flag, so quiescence checks stay sound. *)
    if !n > own_n then ignore (A.fetch_and_add lane.parked (own_n - !n));
    let n = !n in
    if n > 0 then begin
      let incs = ref 0 in
      for k = 0 to n - 1 do
        if cells.(k).kind = Inc then incr incs
      done;
      let incs = !incs in
      let decs = n - incs in
      (* Eliminate matched pairs locally; when the batch is perfectly
         matched keep one pair real so an anchor value exists. *)
      let elim =
        if (not svc.elim) || incs = 0 || decs = 0 then 0
        else if incs = decs then incs - 1
        else min incs decs
      in
      let run_incs = incs - elim and run_decs = decs - elim in
      let inc_vals = lane.inc_scr and dec_vals = lane.dec_scr in
      (* Both halves of a mixed batch drain through batched walks — the
         decrement run no longer falls back to per-operation
         traversals — and with [pipeline] the lane's preallocated
         wavefront buffer overlaps the crossings layer by layer. *)
      if run_incs > 0 then
        if svc.pipeline then
          R.traverse_batch_pipelined svc.rt lane.pipe_scr ~wire:lane.wire ~n:run_incs
            ~f:(fun i v -> inc_vals.(i) <- v)
        else
          R.traverse_batch svc.rt ~wire:lane.wire ~n:run_incs ~f:(fun i v ->
              inc_vals.(i) <- v);
      if run_decs > 0 then
        if svc.pipeline then
          R.traverse_batch_pipelined_decrement svc.rt lane.pipe_scr ~wire:lane.wire
            ~n:run_decs ~f:(fun i v -> dec_vals.(i) <- v)
        else
          R.traverse_batch_decrement svc.rt ~wire:lane.wire ~n:run_decs ~f:(fun i v ->
              dec_vals.(i) <- v);
      let anchor =
        if run_incs > 0 then inc_vals.(0)
        else if run_decs > 0 then dec_vals.(0)
        else 0 (* unreachable: elim > 0 forces run_incs > 0 or run_decs > 0 *)
      in
      let ii = ref 0 and di = ref 0 in
      for k = 0 to n - 1 do
        let c = cells.(k) in
        let v =
          match c.kind with
          | Inc ->
              if !ii < run_incs then (
                let v = inc_vals.(!ii) in
                incr ii;
                v)
              else anchor
          | Dec ->
              if !di < run_decs then (
                let v = dec_vals.(!di) in
                incr di;
                v)
              else anchor
        in
        c.result <- v;
        A.set c.done_ 1;
        cells.(k) <- svc.empty (* drop the reference; cells are session-owned *)
      done;
      bump lane.batches 1;
      bump lane.ops_combined n;
      bump lane.eliminated_pairs elim;
      raise_to lane.max_batch_observed n
    end;
    n - own_n

  let spin_limit = 1024

  (* Publish the session's cell into a free slot, or fail Overloaded.
     The parked count is raised BEFORE the slot probe and the service
     state re-checked AFTER the slot CAS: together these close the
     admission hole where a client that passed the [st_running] check
     could park after [sweep_until_quiet] saw the lane empty, handing a
     traversal to a helper past the validated quiescence point.  A
     publisher that parked against a draining or stopped service
     withdraws its cell (unless a combiner already took it, in which
     case the operation was folded into a pre-validation batch and
     completes normally). *)
  let publish sess op =
    let lane = sess.lane and svc = sess.svc in
    let cell = sess.cell in
    cell.kind <- op;
    A.set cell.done_ 0;
    A.incr lane.parked;
    let cap = Array.length lane.slots in
    let rec find j =
      if j >= cap then begin
        ignore (A.fetch_and_add lane.parked (-1));
        A.incr lane.rejected;
        Error Overloaded
      end
      else
        let i = sess.slot_base + j in
        let i = if i >= cap then i - cap else i in
        let slot = lane.slots.(i) in
        if A.get slot == svc.empty && A.compare_and_set slot svc.empty cell
        then
          if A.get svc.state <> st_running then
            if A.compare_and_set slot cell svc.empty then begin
              ignore (A.fetch_and_add lane.parked (-1));
              Error Closed
            end
            else Ok () (* a combiner already owns it; result incoming *)
          else Ok ()
        else find (j + 1)
    in
    find 0

  (* Wait for the cell's result, helping combine whenever the lane has no
     combiner.  A combiner that took the cell but has not yet published
     holds [combining], so helping cannot race with it. *)
  let wait_for sess =
    let lane = sess.lane and svc = sess.svc in
    let cell = sess.cell in
    let spins = ref 0 in
    while A.get cell.done_ = 0 do
      if A.compare_and_set lane.combining false true then begin
        if A.get cell.done_ = 0 then ignore (combine svc lane None);
        A.set lane.combining false
      end
      else begin
        incr spins;
        if !spins < spin_limit then A.relax ()
        else begin
          spins := 0;
          A.nap ()
        end
      end
    done;
    cell.result

  let run_op sess op =
    if sess.outstanding then
      invalid_arg "Service: session has an outstanding submit";
    let svc = sess.svc in
    if A.get svc.state <> st_running then Error Closed
    else begin
      let lane = sess.lane in
      if A.compare_and_set lane.combining false true then
        (* Re-check under the flag: a drain that flipped the state after
           our admission check will wait for the flag, so aborting here
           guarantees no traversal slips past a draining service. *)
        if A.get svc.state <> st_running then begin
          A.set lane.combining false;
          Error Closed
        end
        else begin
          let v =
            if A.get lane.parked = 0 then begin
              (* Uncontended fast path: a batch of one, straight through. *)
              bump lane.batches 1;
              bump lane.ops_combined 1;
              raise_to lane.max_batch_observed 1;
              match op with
              | Inc -> R.traverse svc.rt ~wire:lane.wire
              | Dec -> R.traverse_decrement svc.rt ~wire:lane.wire
            end
            else begin
              let cell = sess.cell in
              cell.kind <- op;
              A.set cell.done_ 0;
              ignore (combine svc lane (Some cell));
              cell.result
            end
          in
          A.set lane.combining false;
          Ok v
        end
      else
        match publish sess op with
        | Error _ as e -> e
        | Ok () -> Ok (wait_for sess)
    end

  let increment s = run_op s Inc
  let decrement s = run_op s Dec

  let submit sess op =
    if sess.outstanding then
      invalid_arg "Service.submit: session already has an outstanding submit";
    if A.get sess.svc.state <> st_running then Error Closed
    else
      match publish sess op with
      | Error _ as e -> e
      | Ok () ->
          sess.outstanding <- true;
          Ok ()

  let await sess =
    if not sess.outstanding then
      invalid_arg "Service.await: nothing submitted on this session";
    let v = wait_for sess in
    sess.outstanding <- false;
    v

  let quiesced t =
    Array.for_all
      (fun lane -> A.get lane.parked = 0 && not (A.get lane.combining))
      t.lanes

  (* Help every lane run dry: elect ourselves combiner wherever work is
     parked, then wait out in-flight combiners.  [parked] counts
     mid-flight publishers as well as parked cells, so this cannot
     declare quiescence while an admitted operation is still hunting for
     a slot — such a publisher either parks (and is swept or withdraws)
     or fails Overloaded, both of which drop the count. *)
  let sweep_until_quiet t =
    let spins = ref 0 in
    while not (quiesced t) do
      let progressed = ref false in
      Array.iter
        (fun lane ->
          if
            A.get lane.parked > 0
            && A.compare_and_set lane.combining false true
          then begin
            if combine t lane None > 0 then progressed := true;
            A.set lane.combining false
          end)
        t.lanes;
      if not !progressed then begin
        incr spins;
        if !spins < spin_limit then A.relax ()
        else begin
          spins := 0;
          A.nap ()
        end
      end
    done

  (* Lifecycle transitions are CAS-elected and [st_stopped] is terminal:
     exactly one caller owns a running -> draining transition; everyone
     else waits for the owner to finish and then takes its own turn (or
     observes the terminal stop).  A shutdown publishes its sticky
     [stop_requested] intent first, so an owner that validated before
     the shutdown could compete never resurrects the service — it reads
     the intent after validation and closes instead of re-opening. *)
  let rec drain_to ~final ~policy t =
    if final = st_stopped then A.set t.stop_requested true;
    let s = A.get t.state in
    if s = st_stopped then begin
      (* Terminal: the network is quiesced and frozen; validate and
         report without touching the lifecycle. *)
      let report = R.quiescent t.rt in
      V.enforce policy report;
      report
    end
    else if s = st_running && A.compare_and_set t.state st_running st_draining
    then begin
      sweep_until_quiet t;
      let report = R.quiescent t.rt in
      (match V.enforce policy report with
      | () ->
          let final' =
            if A.get t.stop_requested then st_stopped else final
          in
          A.set t.state final'
      | exception e ->
          (* Strict failure: close terminally rather than leaving the
             service draining — a stuck intermediate state concurrent
             drains would wait on forever. *)
          A.set t.state st_stopped;
          raise e);
      report
    end
    else begin
      (* Someone else owns the drain; wait it out, then retry. *)
      let spins = ref 0 in
      while A.get t.state = st_draining do
        incr spins;
        if !spins < spin_limit then A.relax ()
        else begin
          spins := 0;
          A.nap ()
        end
      done;
      drain_to ~final ~policy t
    end

  let drain ?policy t =
    drain_to ~final:st_running ~policy:(Option.value policy ~default:t.validate) t

  let shutdown ?policy t =
    drain_to ~final:st_stopped ~policy:(Option.value policy ~default:t.validate) t

  let stats t =
    let per f = Array.map (fun l -> A.get (f l)) t.lanes in
    let sum a = Array.fold_left ( + ) 0 a in
    let batches = per (fun l -> l.batches) in
    let ops_combined = per (fun l -> l.ops_combined) in
    let eliminated_pairs = per (fun l -> l.eliminated_pairs) in
    let rejected = per (fun l -> l.rejected) in
    let total_batches = sum batches in
    let total_ops = sum ops_combined in
    let total_eliminated_pairs = sum eliminated_pairs in
    {
      wires = Array.length t.lanes;
      batches;
      ops_combined;
      max_batch_observed = per (fun l -> l.max_batch_observed);
      eliminated_pairs;
      rejected;
      total_batches;
      total_ops;
      total_eliminated_pairs;
      total_rejected = sum rejected;
      mean_batch =
        (if total_batches = 0 then 0.
         else float_of_int total_ops /. float_of_int total_batches);
      elimination_rate =
        (if total_ops = 0 then 0.
         else
           float_of_int (2 * total_eliminated_pairs) /. float_of_int total_ops);
    }

  let json_int_array a =
    "[" ^ String.concat ", " (Array.to_list (Array.map string_of_int a)) ^ "]"

  let stats_json t =
    let s = stats t in
    let b = Buffer.create 512 in
    Buffer.add_string b "{\n";
    Printf.bprintf b "  \"wires\": %d,\n" s.wires;
    Printf.bprintf b "  \"batches\": %d,\n" s.total_batches;
    Printf.bprintf b "  \"ops_combined\": %d,\n" s.total_ops;
    Printf.bprintf b "  \"mean_batch\": %.3f,\n" s.mean_batch;
    Printf.bprintf b "  \"eliminated_pairs\": %d,\n" s.total_eliminated_pairs;
    Printf.bprintf b "  \"elimination_rate\": %.4f,\n" s.elimination_rate;
    Printf.bprintf b "  \"rejected\": %d,\n" s.total_rejected;
    Printf.bprintf b "  \"per_wire_batches\": %s,\n" (json_int_array s.batches);
    Printf.bprintf b "  \"per_wire_ops\": %s,\n" (json_int_array s.ops_combined);
    Printf.bprintf b "  \"per_wire_max_batch\": %s,\n"
      (json_int_array s.max_batch_observed);
    Printf.bprintf b "  \"per_wire_eliminated\": %s,\n"
      (json_int_array s.eliminated_pairs);
    Printf.bprintf b "  \"per_wire_rejected\": %s\n" (json_int_array s.rejected);
    Buffer.add_string b "}";
    Buffer.contents b
end
