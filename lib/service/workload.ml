module DP = Cn_runtime.Domain_pool

type skew = Uniform | Zipf of float
type arrival = Closed of float | Bursty of { burst : int; pause : float }

type spec = {
  domains : int;
  ops_per_domain : int;
  sessions_per_domain : int;
  dec_ratio : float;
  skew : skew;
  arrival : arrival;
  seed : int;
}

let default =
  {
    domains = 4;
    ops_per_domain = 1000;
    sessions_per_domain = 2;
    dec_ratio = 0.;
    skew = Uniform;
    arrival = Closed 0.;
    seed = 42;
  }

type stats = {
  completed : int;
  increments : int;
  decrements : int;
  rejected : int;
  achieved_dec_ratio : float;
  seconds : float;
  ops_per_sec : float;
  busy_seconds : float;
  busy_ops_per_sec : float;
}

let check spec =
  if spec.domains < 1 then invalid_arg "Workload: domains must be positive";
  if spec.ops_per_domain < 0 then
    invalid_arg "Workload: negative ops_per_domain";
  if spec.sessions_per_domain < 1 then
    invalid_arg "Workload: sessions_per_domain must be positive";
  if spec.dec_ratio < 0. || spec.dec_ratio > 1. then
    invalid_arg "Workload: dec_ratio must be in [0, 1]";
  (match spec.skew with
  | Uniform -> ()
  | Zipf alpha ->
      if alpha <= 0. then invalid_arg "Workload: Zipf exponent must be positive");
  match spec.arrival with
  | Closed think ->
      if think < 0. then invalid_arg "Workload: negative think time"
  | Bursty { burst; pause } ->
      if burst < 1 then invalid_arg "Workload: burst must be positive";
      if pause < 0. then invalid_arg "Workload: negative pause"

(* Cumulative distribution over session popularity.  Uniform is the
   identity CDF; Zipf weights session i+1 as 1/(i+1)^alpha.  Summing
   w.(i)/total accumulates float rounding error, so the running sum can
   land strictly below (or above) 1.0 at the last entry; [pick] scans
   with [cdf.(i) <= u], so a final entry below 1.0 would silently
   underweight the last session whenever u falls in the gap.  Clamp
   every entry into [0, 1] and pin the last to exactly 1.0. *)
let session_cdf skew n =
  if n < 1 then invalid_arg "Workload.session_cdf: width must be positive";
  match skew with
  | Uniform -> Array.init n (fun i -> float_of_int (i + 1) /. float_of_int n)
  | Zipf alpha ->
      if alpha <= 0. then
        invalid_arg "Workload.session_cdf: Zipf exponent must be positive";
      let w = Array.init n (fun i -> (1. /. float_of_int (i + 1)) ** alpha) in
      let total = Array.fold_left ( +. ) 0. w in
      let acc = ref 0. in
      let cdf =
        Array.map
          (fun x ->
            acc := !acc +. (x /. total);
            Float.min !acc 1.0)
          w
      in
      cdf.(n - 1) <- 1.0;
      cdf

let pick rng cdf =
  let u = Random.State.float rng 1.0 in
  let n = Array.length cdf in
  let i = ref 0 in
  while !i < n - 1 && cdf.(!i) <= u do
    incr i
  done;
  !i

(* Same barrier discipline as Harness.timed_round: all participants
   released together, seconds cover the concurrent region only. *)
let timed_round ?pool ~domains body =
  match pool with
  | Some pool -> DP.run pool ~domains body
  | None ->
      let module A = Cn_runtime.Atomics.Real in
      let ready = A.make 0 in
      let go = A.make false in
      let gated pid () =
        A.incr ready;
        while not (A.get go) do
          A.relax ()
        done;
        body pid
      in
      let handles = Array.init domains (fun pid -> Domain.spawn (gated pid)) in
      while A.get ready < domains do
        A.relax ()
      done;
      let t0 = Unix.gettimeofday () in
      A.set go true;
      Array.iter Domain.join handles;
      Unix.gettimeofday () -. t0

let run ?pool svc spec =
  check spec;
  let spd = spec.sessions_per_domain in
  (* Domain-major registration so session wires follow the service's
     round-robin: domain d, local session j sits on wire
     (d * spd + j) mod w. *)
  let sessions =
    Array.init spec.domains (fun _ ->
        Array.init spd (fun _ -> Service.session svc))
  in
  let completed = Array.make spec.domains 0 in
  let increments = Array.make spec.domains 0 in
  let decrements = Array.make spec.domains 0 in
  let rejected = Array.make spec.domains 0 in
  let slept = Array.make spec.domains 0. in
  let body pid =
    let rng = Random.State.make [| spec.seed; pid |] in
    let cdf = session_cdf spec.skew spd in
    let mine = sessions.(pid) in
    let balance = ref 0 in
    let owed = ref 0 in
    (* Injected idle time is measured (not just the requested amount:
       sleepf oversleeps) so busy-time throughput can back it out. *)
    let sleep d =
      let t0 = Unix.gettimeofday () in
      Unix.sleepf d;
      slept.(pid) <- slept.(pid) +. (Unix.gettimeofday () -. t0)
    in
    for k = 0 to spec.ops_per_domain - 1 do
      (match spec.arrival with
      | Closed think -> if think > 0. then sleep think
      | Bursty { burst; pause } ->
          if k > 0 && k mod burst = 0 then sleep pause);
      let s = mine.(pick rng cdf) in
      (* Draw first, pay later: a drawn decrement that lands while the
         client's balance is zero cannot be emitted (prefix
         non-negativity — a client never hands back more than it has
         taken), so it is banked in [owed] and emitted as soon as the
         balance allows.  Every draw is eventually paid with exactly
         one decrement, so the achieved dec fraction converges on
         [spec.dec_ratio] instead of undershooting it on every
         zero-balance conversion (the old behaviour silently emitted
         an increment and forgot the draw). *)
      if Random.State.float rng 1.0 < spec.dec_ratio then incr owed;
      let dec = !owed > 0 && !balance > 0 in
      match (if dec then Service.decrement s else Service.increment s) with
      | Ok _ ->
          completed.(pid) <- completed.(pid) + 1;
          if dec then begin
            decrements.(pid) <- decrements.(pid) + 1;
            decr owed;
            decr balance
          end
          else begin
            increments.(pid) <- increments.(pid) + 1;
            incr balance
          end
      | Error _ ->
          (* A rejected decrement leaves both the balance and the debt
             untouched; the draw is retried on a later operation. *)
          rejected.(pid) <- rejected.(pid) + 1
    done
  in
  let seconds = timed_round ?pool ~domains:spec.domains body in
  let sum a = Array.fold_left ( + ) 0 a in
  let completed = sum completed in
  let decrements = sum decrements in
  let achieved_dec_ratio =
    if completed = 0 then 0. else float_of_int decrements /. float_of_int completed
  in
  (* The domains sleep concurrently, so wall-clock idle per run is the
     mean injected idle across domains, not the sum. *)
  let mean_slept = Array.fold_left ( +. ) 0. slept /. float_of_int spec.domains in
  let busy_seconds = Float.max 0. (seconds -. mean_slept) in
  let rate s = if s > 0. then float_of_int completed /. s else 0. in
  {
    completed;
    increments = sum increments;
    decrements;
    rejected = sum rejected;
    achieved_dec_ratio;
    seconds;
    ops_per_sec = rate seconds;
    busy_seconds;
    busy_ops_per_sec = rate busy_seconds;
  }
