(** The combining-service protocol, factored out as a functor over its
    atomic operations and the network runtime it drives.

    {!Service} instantiates {!Make} with {!Cn_runtime.Atomics.Real} and
    the compiled {!Cn_runtime.Network_runtime} — that instantiation IS
    the production service; there is no second copy of the protocol.
    The deterministic race checker ([Cn_check]) instantiates the same
    functor with instrumented atomics and a model runtime, so every
    interleaving it explores exercises the exact code production runs.

    The protocol invariants the functorization exists to check:

    - {b lifecycle}: [`Stopped] is terminal; a [drain] racing a
      [shutdown] can never re-open a stopped service (transitions are
      CAS-elected, shutdown intent is sticky);
    - {b admission}: no operation's network traversal happens after the
      quiescent validation of a [drain]/[shutdown] that rejected it —
      a publisher that parked against a closing service withdraws its
      cell unless a pre-validation combiner already took it;
    - {b liveness}: every accepted operation's [await] completes; no
      cell stays parked forever. *)

module type RUNTIME = sig
  type t

  type buffer
  (** Caller-owned scratch for the pipelined batch walks; each combining
      lane holds one (a model runtime may use [unit]). *)

  val input_width : t -> int
  val traverse : t -> wire:int -> int
  val traverse_decrement : t -> wire:int -> int
  val traverse_batch : t -> wire:int -> n:int -> f:(int -> int -> unit) -> unit

  val traverse_batch_decrement : t -> wire:int -> n:int -> f:(int -> int -> unit) -> unit
  (** Batched antitoken runs: the combiner drains the decrement half of
      a mixed batch through this instead of per-operation traversals. *)

  val buffer : capacity:int -> buffer

  val traverse_batch_pipelined : t -> buffer -> wire:int -> n:int -> f:(int -> int -> unit) -> unit
  (** Layer-pipelined batch walk used when the service is built with
      [~pipeline:true]; may be implemented as [traverse_batch] by model
      runtimes. *)

  val traverse_batch_pipelined_decrement :
    t -> buffer -> wire:int -> n:int -> f:(int -> int -> unit) -> unit

  val quiescent : t -> Cn_runtime.Validator.report
  (** Quiescent-state validation ({!Cn_runtime.Validator}-shaped): only
      called by [drain]/[shutdown] once every lane is quiet. *)
end

module type S = sig
  type rt
  type t
  type session
  type op = Inc | Dec
  type error = Overloaded | Closed

  type stats = {
    wires : int;
    batches : int array;
    ops_combined : int array;
    max_batch_observed : int array;
    eliminated_pairs : int array;
    rejected : int array;
    total_batches : int;
    total_ops : int;
    total_eliminated_pairs : int;
    total_rejected : int;
    mean_batch : float;
    elimination_rate : float;
  }

  val make :
    ?max_batch:int ->
    ?queue:int ->
    ?elim:bool ->
    ?pipeline:bool ->
    ?validate:Cn_runtime.Validator.policy ->
    ?layers:int array ->
    rt ->
    t
  (** Build a service over an already-compiled runtime.  [?pipeline]
      (default [false]) drains combined runs through the runtime's
      layer-pipelined batch walks.  [?layers] is opaque per-balancer
      depth metadata carried for reporting (default [[||]]). *)

  val runtime : t -> rt
  val layers : t -> int array
  val input_width : t -> int
  val session : ?wire:int -> t -> session
  val session_wire : session -> int
  val increment : session -> (int, error) result
  val decrement : session -> (int, error) result
  val submit : session -> op -> (unit, error) result
  val await : session -> int

  val lifecycle : t -> [ `Running | `Draining | `Stopped ]
  (** The service's current lifecycle state.  [`Stopped] is terminal. *)

  val drain : ?policy:Cn_runtime.Validator.policy -> t -> Cn_runtime.Validator.report
  val shutdown : ?policy:Cn_runtime.Validator.policy -> t -> Cn_runtime.Validator.report
  val stats : t -> stats
  val stats_json : t -> string
end

module Make (A : Cn_runtime.Atomics.S) (R : RUNTIME) : S with type rt = R.t
