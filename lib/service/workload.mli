(** Synthetic client populations for driving a {!Service.t} — the
    knobs experiments care about when reproducing the paper's
    high-contention regime ([n] processes ≫ [w] wires).

    A workload spawns [domains] clients; each owns
    [sessions_per_domain] service sessions and performs
    [ops_per_domain] operations, choosing a session per operation
    according to [skew] and pacing itself according to [arrival].
    [dec_ratio] is the probability an operation is a
    [Fetch&Decrement]; the generator never lets a client's decrements
    outnumber its increments (every prefix is non-negative), so the
    network-wide token count stays legal for the step property.

    [Overloaded] rejections are counted and the operation dropped —
    the open-loop "shed on backpressure" discipline; [Closed] is also
    counted under [rejected]. *)

type skew =
  | Uniform  (** every session equally likely *)
  | Zipf of float
      (** Zipf-distributed session popularity with the given exponent
          [alpha > 0]; larger skews traffic onto fewer wires, raising
          combining and elimination opportunities *)

type arrival =
  | Closed of float
      (** closed loop: think for the given seconds ([0.] = back to
          back) between an operation's completion and the next
          submission *)
  | Bursty of { burst : int; pause : float }
      (** open-loop bursts: [burst] back-to-back operations, then a
          pause of [pause] seconds *)

type spec = {
  domains : int;
  ops_per_domain : int;
  sessions_per_domain : int;
  dec_ratio : float;  (** in [[0, 1]] *)
  skew : skew;
  arrival : arrival;
  seed : int;
}

val default : spec
(** [{ domains = 4; ops_per_domain = 1000; sessions_per_domain = 2;
      dec_ratio = 0.; skew = Uniform; arrival = Closed 0.; seed = 42 }] *)

type stats = {
  completed : int;  (** operations that returned a value *)
  increments : int;
  decrements : int;
  rejected : int;  (** operations shed on [Overloaded]/[Closed] *)
  achieved_dec_ratio : float;
      (** [decrements /. completed] ([0.] when nothing completed) —
          the decrement fraction actually emitted.  A drawn decrement
          that lands on a zero balance is banked and paid as soon as
          the balance allows (never dropped), so on long runs this
          converges on [spec.dec_ratio] for ratios below [0.5]; above
          [0.5] prefix non-negativity caps it near [0.5] (each
          decrement needs a preceding increment), which is inherent,
          not drift. *)
  seconds : float;  (** wall-clock time of the concurrent phase *)
  ops_per_sec : float;
      (** [completed /. seconds] — the {e offered}-load rate, including
          injected think/burst idle time.  Bench rows report this one
          (it is what an operator observes) with [busy_ops_per_sec]
          alongside. *)
  busy_seconds : float;
      (** wall-clock seconds minus the mean measured sleep time across
          domains — the time actually spent in service code *)
  busy_ops_per_sec : float;
      (** [completed /. busy_seconds] — the service-time rate; equals
          [ops_per_sec] when the arrival process injects no idle time *)
}

val session_cdf : skew -> int -> float array
(** [session_cdf skew n] is the cumulative distribution over [n]
    sessions that {!run} samples from: entry [i] is the probability of
    choosing a session [<= i].  Entries are nondecreasing, within
    [[0, 1]], and the last entry is exactly [1.0] (Zipf weights are
    normalised in floating point; the rounding residue is clamped so
    the last session is never underweighted).  Exposed for the TCP
    load rig and for property tests.
    @raise Invalid_argument if [n < 1] or a [Zipf] exponent is [<= 0.]. *)

val pick : Random.State.t -> float array -> int
(** [pick rng cdf] samples an index from a {!session_cdf} by inverse
    transform: the first [i] with [u < cdf.(i)] for a uniform [u]. *)

val run : ?pool:Cn_runtime.Domain_pool.t -> Service.t -> spec -> stats
(** [run svc spec] drives [svc] with the population described by
    [spec] and reports what happened.  Sessions are registered up
    front (round-robin over the wires, in domain-major order) and each
    domain's random stream is derived from [spec.seed] and its id, so
    a run is reproducible up to scheduling.  With [?pool] the pool's
    warmed workers are used instead of spawning
    (requires [spec.domains <= Domain_pool.size pool]).

    The service is {e not} drained here; callers decide when to
    {!Service.drain} and with which policy.
    @raise Invalid_argument on a malformed spec ([domains < 1],
    [ops_per_domain < 0], [sessions_per_domain < 1], [dec_ratio]
    outside [[0, 1]], [Zipf] exponent [<= 0.], [burst < 1], negative
    pause/think time). *)
