(** A long-lived counting {e service} in front of a compiled network —
    the front-end for the paper's target regime of [n] processes sharing
    [w] input wires (Theorem 6.7's contention bounds assume exactly this
    many-clients-per-wire pressure).

    Instead of every caller picking a wire and traversing on its own,
    clients hold {!session}s pinned to input wires and the service runs
    a {e flat-combining} lane per wire:

    - a session's operation first tries to become the lane's combiner
      (one CAS); an uncontended lane degenerates to a plain
      per-operation traversal, so the service costs almost nothing when
      idle;
    - under contention, operations park in a bounded array of lock-free
      submission slots and the current combiner drains them into a
      single {!Network_runtime.traverse_batch} call — batch sizes adapt
      to the arrival rate and are bounded by [max_batch];
    - pending [Fetch&Increment] / [Fetch&Decrement] operations in the
      same batch {e eliminate} in pairs using the antitoken semantics
      (paper, Section 1.4.2; Shavit-Zemach elimination): a token and an
      antitoken that would have cancelled inside the network instead
      pair off locally and never touch it.

    {2 Elimination value semantics}

    The network is quiescently consistent, not linearizable
    (Section 1.4.2), and elimination preserves exactly that contract.
    An eliminated pair borrows the value [v] of an {e anchor} operation
    that did traverse in the same batch: ordering the batch as
    [... anchor-inc(v) · elim-dec(v) · elim-inc(v) ...] is a valid
    sequential counter history (the decrement hands back [v], the
    increment immediately re-takes it), so both halves of the pair may
    return [v].  When a batch is perfectly matched (same number of
    increments and decrements), one pair is kept real to serve as the
    anchor — a batch never eliminates down to zero network work with
    results left to invent.

    {2 Backpressure and lifecycle}

    Each lane's slot array is bounded ([queue] slots); when it is full,
    submission fails fast with [Error Overloaded] instead of queueing
    unboundedly — the caller decides whether to retry, shed, or back
    off.  {!drain} stops admissions, helps every lane run dry, then
    checks {!Validator.quiescent_runtime} on the quiesced network;
    {!shutdown} does the same and leaves the service closed
    ([Error Closed] thereafter).

    A [session] is owned by one domain at a time and carries at most one
    outstanding operation; distinct sessions are safe to use from
    distinct domains concurrently.

    {2 Checked concurrency}

    The protocol itself lives in {!Service_core.Make}, a functor over
    its atomic operations; this module is the instantiation with the
    real atomics.  The [Cn_check] library instantiates the same functor
    with instrumented atomics and model-checks the drain/shutdown and
    admission protocols over every bounded-preemption interleaving —
    see [make check-races]. *)

type t
(** A counting service: a compiled network plus one combining lane per
    input wire. *)

type session
(** A client handle pinned to one input wire. *)

type op = Inc | Dec
(** The two counter operations: [Fetch&Increment] (a token) and
    [Fetch&Decrement] (an antitoken). *)

type error =
  | Overloaded  (** The session's lane has no free submission slot. *)
  | Closed  (** The service is draining or shut down. *)

type stats = {
  wires : int;  (** number of lanes = input width [w] *)
  batches : int array;  (** per-wire combined batches executed *)
  ops_combined : int array;  (** per-wire operations served by batches *)
  max_batch_observed : int array;  (** per-wire largest batch seen *)
  eliminated_pairs : int array;  (** per-wire inc/dec pairs eliminated *)
  rejected : int array;  (** per-wire [Overloaded] rejections *)
  total_batches : int;
  total_ops : int;
  total_eliminated_pairs : int;
  total_rejected : int;
  mean_batch : float;  (** [total_ops /. total_batches] ([0.] if idle) *)
  elimination_rate : float;
      (** fraction of served operations that never entered the network:
          [2 * total_eliminated_pairs / total_ops] ([0.] if idle) *)
}
(** Cumulative combining statistics, readable at any time; exact at
    quiescence. *)

val create :
  ?mode:Cn_runtime.Network_runtime.mode ->
  ?layout:Cn_runtime.Network_runtime.layout ->
  ?metrics:bool ->
  ?max_batch:int ->
  ?queue:int ->
  ?elim:bool ->
  ?pipeline:bool ->
  ?validate:Cn_runtime.Validator.policy ->
  Cn_network.Topology.t ->
  t
(** [create net] compiles [net] and builds a lane per input wire.
    [?mode], [?layout], [?metrics] pass through to
    {!Network_runtime.compile}.  [?max_batch] (default [64]) bounds the
    operations one combined batch may serve; [?queue] (default
    [max_batch]) is the submission-slot count per lane; [?elim]
    (default [true]) enables inc/dec elimination; [?pipeline] (default
    [false]) drains combined runs through the runtime's layer-pipelined
    batch walks ({!Network_runtime.traverse_batch_pipelined}) using a
    per-lane preallocated wavefront buffer; [?validate] (default
    [Strict]) is the policy {!drain} and {!shutdown} apply when not
    overridden.
    @raise Invalid_argument if [max_batch < 1] or [queue < 1]. *)

val runtime : t -> Cn_runtime.Network_runtime.t
(** The compiled network behind the service. *)

val input_width : t -> int
(** Input width [w] of the wrapped network (= number of lanes). *)

val layers : t -> int array
(** Per-balancer 1-based depth of the compiled network
    ([Topology.balancer_depth] captured at {!create}) — the layer map
    {!Cn_runtime.Metrics.per_layer} and {!Cn_runtime.Metrics.layer_stalls}
    consume. *)

val session : ?wire:int -> t -> session
(** [session t] registers a client, pinned round-robin over the input
    wires; [~wire] pins explicitly (useful to colocate inc/dec traffic
    so elimination can pair it).  Sessions may be created on a closed
    service; their operations just fail with [Error Closed].

    {b Ownership rule}: a session is single-owner state (its submission
    cell and outstanding flag are unsynchronized); at any moment at most
    one domain may be running an operation on it.  Two domains sharing a
    session corrupt the cell protocol — give each concurrent client its
    own session ({!shared_counter} does this per process id).
    @raise Invalid_argument if [wire] is out of range. *)

val session_wire : session -> int
(** The input wire this session is pinned to. *)

val increment : session -> (int, error) result
(** [increment s] performs one [Fetch&Increment] through the session's
    lane, blocking (spinning, then sleeping) until a combiner delivers
    the value.  Fails fast with [Error Overloaded] under backpressure
    and [Error Closed] once the service is draining or stopped.
    @raise Invalid_argument if the session has an outstanding
    {!submit}. *)

val decrement : session -> (int, error) result
(** [decrement s] performs one [Fetch&Decrement]; same contract as
    {!increment}.  Returns the value handed back to the counter. *)

val submit : session -> op -> (unit, error) result
(** [submit s op] publishes [op] into the lane without waiting and
    without electing a combiner — the asynchronous half of
    {!increment}/{!decrement}.  At most one outstanding operation per
    session; complete it with {!await}.
    @raise Invalid_argument if the session already has one. *)

val await : session -> int
(** [await s] completes the session's outstanding {!submit}: helps
    combine if the lane has no combiner, then returns the operation's
    value.
    @raise Invalid_argument if nothing was submitted. *)

val lifecycle : t -> [ `Running | `Draining | `Stopped ]
(** The service's current lifecycle state.  [`Stopped] is terminal: no
    interleaving of {!drain} and {!shutdown} calls can re-open a
    stopped service. *)

val drain :
  ?policy:Cn_runtime.Validator.policy -> t -> Cn_runtime.Validator.report
(** [drain t] stops admitting operations, helps every lane run dry
    (combining any parked submissions), then runs
    {!Validator.quiescent_runtime} on the quiesced network, applies
    [?policy] (default: the service's [validate] policy) and re-opens
    the service.  Callers should quiesce their own sessions first:
    operations racing with the admission flip either fail with
    [Error Closed] or complete before the validation point — never
    after it.

    Lifecycle transitions are CAS-elected and compose: exactly one
    caller owns the drain at a time; a concurrent [drain]/[shutdown]
    waits for the owner to finish and then performs its own
    drain-and-validate cycle (so every caller still receives a report
    for a quiescent point).  A [drain] racing a [shutdown] never
    re-opens the service: stopped is terminal.
    @raise Validator.Invalid under [Strict] when a check fails (the
    service is left terminally stopped). *)

val shutdown :
  ?policy:Cn_runtime.Validator.policy -> t -> Cn_runtime.Validator.report
(** [shutdown t] drains, validates, and leaves the service closed:
    every subsequent operation returns [Error Closed].  Idempotent, and
    sticky against concurrent {!drain}s — whichever of the two racing
    calls validates last, the service ends stopped. *)

val stats : t -> stats
(** Combining statistics so far (batches, batch sizes, eliminations,
    rejections — per wire and aggregated). *)

val stats_json : t -> string
(** {!stats} rendered as a JSON object. *)

val report_json : t -> string
(** A combined JSON report: [{"service": <stats>, "network": <metrics
    snapshot>}] — the network half is [null] unless the service was
    created with [~metrics:true]. *)

val shared_counter : ?sessions:int -> t -> Cn_runtime.Shared_counter.t
(** [shared_counter t] adapts the service to the {!Shared_counter}
    interface so it slots into {!Harness} runs.  Sessions are
    single-owner (see {!session}), so each process id gets a session of
    its own: [sessions] (default [64]) only sizes the pre-allocated
    pool, which grows on demand when a higher [pid] appears — processes
    never alias a session, whatever the process count.  A covered pid
    costs one atomic snapshot read (no lock); the growth mutex is
    taken only on the miss path, with the pool length double-read
    under it.  [Overloaded] is retried after a backoff; [Closed]
    raises [Failure].
    @raise Invalid_argument if [sessions < 1]. *)

(** {2 Backend profiles}

    The per-session accuracy tier.  Billing-grade keys need the exact,
    conservation-checked counting network behind this service;
    high-cardinality telemetry tolerates a bounded-error estimate in
    exchange for bounded memory.  {!backend_counter} maps a profile to
    a {!Cn_runtime.Shared_counter.t} so harnesses, benches, and the
    CLI ([countnet throughput --backend exact|hll|sparse]) switch tiers
    without touching call sites; the fabric routes whole key classes
    across tiers (see [Fabric.profiled_counter]). *)

type backend =
  | Exact  (** this service's counting network: exact, GC-free hot path *)
  | Hll of { precision : int }
      (** HyperLogLog distinct-count estimate, [2^precision] registers,
          relative error ~[1.04 / sqrt (2^precision)] *)
  | Sparse of { counters : int; degree : int }
      (** Lu–Montanari–Prabhakar sparse-graph per-flow tallies keyed by
          [pid]: [counters] shared cells, [degree] edges per key *)

val backend_of_string : string -> (backend, string) result
(** Parses the CLI spellings: ["exact"], ["hll"] (precision 14),
    ["sparse"] (4096 counters, degree 3). *)

val backend_name : backend -> string

val backend_counter : ?sessions:int -> t -> backend -> Cn_runtime.Shared_counter.t
(** [backend_counter t b] is the counter for tier [b]: [Exact] is
    {!shared_counter} on [t]; the sketch tiers are
    {!Cn_sketch.Backend} adapters (the service parameter sizes nothing
    for them — they are memory-bounded by construction).
    @raise Invalid_argument on a malformed profile ([precision]
    outside [[4, 16]], [counters < degree], [degree < 1]). *)
