exception Disconnected
exception Protocol_error of string

type t = {
  fd : Unix.file_descr;
  dec : Frame.decoder;
  buf : Bytes.t;
  mutable closed : bool;
}

let connect ?(host = "127.0.0.1") ~port () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; dec = Frame.decoder (); buf = Bytes.create 4096; closed = false }

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let write_all t s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  try
    while !off < n do
      let k = Unix.write t.fd b !off (n - !off) in
      if k = 0 then raise Disconnected;
      off := !off + k
    done
  with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
    raise Disconnected

let rec read_frame t =
  match Frame.next t.dec with
  | Frame.Frame f -> f
  | Frame.Corrupt { code; detail } ->
      raise
        (Protocol_error
           (Printf.sprintf "%s: %s" (Frame.error_code_to_string code) detail))
  | Frame.Need_more ->
      let n =
        try Unix.read t.fd t.buf 0 (Bytes.length t.buf)
        with Unix.Unix_error ((Unix.ECONNRESET | Unix.EBADF), _, _) ->
          raise Disconnected
      in
      if n = 0 then raise Disconnected;
      Frame.feed t.dec t.buf ~off:0 ~len:n;
      read_frame t

let request t req =
  if t.closed then raise Disconnected;
  write_all t (Frame.to_string (Frame.Request req));
  match read_frame t with
  | Frame.Response r -> r
  | Frame.Request _ ->
      raise (Protocol_error "server sent a request frame as a reply")

let op t req =
  match request t req with
  | Frame.Value v -> Ok v
  | Frame.Overloaded -> Error `Overloaded
  | Frame.Closed -> Error `Closed
  | r ->
      raise
        (Protocol_error
           (Format.asprintf "unexpected reply %a" Frame.pp (Frame.Response r)))

let increment t = op t Frame.Inc
let decrement t = op t Frame.Dec

let read t =
  match request t Frame.Read with
  | Frame.Value v -> v
  | r ->
      raise
        (Protocol_error
           (Format.asprintf "unexpected reply %a" Frame.pp (Frame.Response r)))

let drain t =
  match request t Frame.Drain with
  | Frame.Drained { ok; summary } -> (ok, summary)
  | r ->
      raise
        (Protocol_error
           (Format.asprintf "unexpected reply %a" Frame.pp (Frame.Response r)))

let stats t =
  match request t Frame.Stats with
  | Frame.Stats_reply json -> json
  | r ->
      raise
        (Protocol_error
           (Format.asprintf "unexpected reply %a" Frame.pp (Frame.Response r)))
