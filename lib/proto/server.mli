(** [countnetd]'s engine: a TCP front-end for a {!Cn_service.Service}
    or a sharded {!Cn_fabric.Fabric}.

    Each accepted connection gets a dedicated handler thread and its
    own backend {e session} (sessions are single-owner, so the mapping
    is exactly one-to-one); request frames are served in order on that
    session:

    - [Inc]/[Dec] run {!Service.increment}/{!Service.decrement} and
      reply [Value]; the service's bounded-queue backpressure
      ([Error Overloaded]) and lifecycle refusals ([Error Closed])
      surface as the protocol-level [Overloaded]/[Closed] replies —
      the client decides whether to retry, shed, or back off;
    - [Read] replies with the counter's current value (net tokens
      handed out, derived from the runtime's assignment cells) without
      traversing;
    - [Drain] runs {!Service.drain} — quiesce, validate the step
      property and token conservation, re-admit — and replies
      [Drained] with the validator's verdict;
    - [Stats] replies with a JSON document nesting the server's
      connection counters and {!Service.report_json}.

    A framing error from a connection is answered with a best-effort
    [Error_reply] and the connection is dropped; other connections are
    unaffected.

    {2 Graceful shutdown}

    {!request_stop} is the SIGTERM entry point (async-signal-safe in
    the OCaml sense: it flips an atomic flag and writes one byte to a
    self-pipe).  The accept loop wakes, stops admitting connections,
    and {!stop} then walks the drain path every other harness uses:
    {!Service.shutdown} sweeps the combining lanes dry and runs
    {!Validator.quiescent_runtime} on the quiesced network, so the
    exact quiescence guarantees of Theorem 4.2's step property hold at
    the moment the server goes dark.  In-flight operations either
    complete before the validation point or fail [Closed] — never
    after it.  Handler threads are then woken and joined. *)

type t

type backend
(** What the wire protocol serves: per-connection sessions, the counter
    read, the drain/shutdown lifecycle and the stats document —
    abstracted so a single combining service and the sharded fabric
    plug into the same accept/handler/stop machinery. *)

val service_backend : Cn_service.Service.t -> backend
(** [Inc]/[Dec] run on a per-connection {!Cn_service.Service.session};
    [Read] is the runtime's net exit count. *)

val fabric_backend : Cn_fabric.Fabric.t -> backend
(** [Inc]/[Dec] run on a per-connection {!Cn_fabric.Fabric.session}
    (round-robin routing keys, so connections spread over the shards);
    [Read] is the fabric's second-level combining {!Cn_fabric.Fabric.read};
    [Drain]/stop walk every shard's validated quiescence path. *)

val start_backend :
  ?host:string ->
  ?port:int ->
  ?backlog:int ->
  ?max_payload:int ->
  backend ->
  t
(** [start_backend be] binds a listening socket ([?host] default
    ["127.0.0.1"], [?port] default [0] = kernel-assigned; read it back
    with {!port}) and spawns the accept thread.  [?backlog] (default
    [64]) is the listen queue; [?max_payload] (default
    {!Frame.default_max_payload}) caps accepted frame payloads.
    @raise Unix.Unix_error when the socket cannot be bound. *)

val start :
  ?host:string ->
  ?port:int ->
  ?backlog:int ->
  ?max_payload:int ->
  Cn_service.Service.t ->
  t
(** [start svc] is [start_backend (service_backend svc)]. *)

val start_fabric :
  ?host:string ->
  ?port:int ->
  ?backlog:int ->
  ?max_payload:int ->
  Cn_fabric.Fabric.t ->
  t
(** [start_fabric fab] is [start_backend (fabric_backend fab)]. *)

val port : t -> int
(** The bound TCP port (useful with [~port:0]). *)

val connections : t -> int
(** Currently open connections. *)

val accepted : t -> int
(** Connections accepted since {!start} (monotone; churn shows up as
    [accepted] far above [connections]). *)

val request_stop : t -> unit
(** Ask the server to stop: admission ends as soon as the accept loop
    wakes.  Idempotent, callable from a signal handler.  Does not
    block; follow with {!stop} (or {!wait_stop_request} + {!stop} from
    the thread that owns the server). *)

val stop_requested : t -> bool

val wait_stop_request : t -> unit
(** Block (politely, in slices, so signal handlers run) until
    {!request_stop} has been called. *)

val stop :
  ?policy:Cn_runtime.Validator.policy -> t -> Cn_runtime.Validator.report
(** [stop t] performs the graceful drain: stop accepting, shut the
    backend down through the Validator quiescence path, wake and join
    every handler thread, close all sockets, and return the quiescent
    report.  [?policy] defaults to the backend's validate policy.
    Idempotent: later calls return the first report.
    @raise Validator.Invalid under [Strict] when a quiescence check
    fails (sockets are still torn down first). *)
