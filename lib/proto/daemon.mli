(** The countnetd process body, shared by the [countnetd] executable
    and [countnet serve]: build the paper's C(w,t), put a
    {!Cn_service.Service} — or, with [shards], a sharded
    {!Cn_fabric.Fabric} — in front of it, serve it with {!Server}, and
    on SIGTERM/SIGINT walk the graceful drain and report the
    validator's verdict.

    Stdout contract (the smoke test scrapes it): the first line is

    {v countnetd: listening on HOST:PORT (C(w,t), pid PID) v}

    (with [shards = Some n], the parenthetical reads
    [C(w,t) xN shards] — same [listening on HOST:PORT (] prefix, so
    port scrapers keep working) and the last line on a clean stop is
    [countnetd: drain ok — ...] (exit 0) or
    [countnetd: drain FAILED — ...] (exit 1). *)

type config = {
  host : string;
  port : int;  (** [0] picks an ephemeral port (printed on stdout) *)
  width : int;
  out_width : int option;  (** default [width] (the regular network) *)
  queue : int option;  (** per-lane submission slots; service default *)
  max_batch : int option;
  metrics : bool;
  validate : Cn_runtime.Validator.policy;
      (** policy applied at the SIGTERM drain *)
  shards : int option;
      (** [Some n]: serve an [n]-shard {!Cn_fabric.Fabric} instead of a
          single service (every shard the same certified C(w,t)) *)
}

val default : config
(** [{ host = "127.0.0.1"; port = 0; width = 16; out_width = None;
      queue = None; max_batch = None; metrics = false;
      validate = Strict; shards = None }] *)

val serve : config -> int
(** Run until SIGTERM/SIGINT, then drain and return the process exit
    code ([0] clean, [1] when the quiescence checks fail).  Installs
    handlers for both signals; restores nothing (the process is about
    to exit).
    @raise Invalid_argument on a malformed width pair. *)
