module W = Cn_service.Workload
module M = Cn_runtime.Metrics
module Clock = Cn_runtime.Clock

type spec = {
  clients : int;
  conns_per_client : int;
  ops_per_client : int;
  dec_ratio : float;
  skew : W.skew;
  arrival : W.arrival;
  seed : int;
}

let default =
  {
    clients = 2;
    conns_per_client = 2;
    ops_per_client = 1000;
    dec_ratio = 0.;
    skew = W.Uniform;
    arrival = W.Closed 0.;
    seed = 42;
  }

type stats = {
  completed : int;
  increments : int;
  decrements : int;
  rejected : int;
  closed : int;
  disconnects : int;
  seconds : float;
  ops_per_sec : float;
  busy_seconds : float;
  busy_ops_per_sec : float;
  latency : M.latency option;
}

let check spec =
  if spec.clients < 1 then invalid_arg "Load: clients must be positive";
  if spec.conns_per_client < 1 then
    invalid_arg "Load: conns_per_client must be positive";
  if spec.ops_per_client < 0 then invalid_arg "Load: negative ops_per_client";
  if spec.dec_ratio < 0. || spec.dec_ratio > 1. then
    invalid_arg "Load: dec_ratio must be in [0, 1]";
  (match spec.skew with
  | W.Uniform -> ()
  | W.Zipf alpha ->
      if alpha <= 0. then invalid_arg "Load: Zipf exponent must be positive");
  match spec.arrival with
  | W.Closed think -> if think < 0. then invalid_arg "Load: negative think time"
  | W.Bursty { burst; pause } ->
      if burst < 1 then invalid_arg "Load: burst must be positive";
      if pause < 0. then invalid_arg "Load: negative pause"

(* Per-thread tallies; merged single-threaded after the joins. *)
type tally = {
  mutable completed : int;
  mutable increments : int;
  mutable decrements : int;
  mutable rejected : int;
  mutable closed : int;
  mutable disconnects : int;
  mutable slept : float;
  reservoir : M.Reservoir.t;
}

let client_body ~host ~port spec idx tally =
  let rng = Random.State.make [| spec.seed; idx |] in
  let cdf = W.session_cdf spec.skew spec.conns_per_client in
  (* A refused connect marks the slot dead instead of killing the
     thread: the rig must outlive a server that is already draining. *)
  let conns =
    Array.init spec.conns_per_client (fun _ ->
        try Some (Client.connect ~host ~port ())
        with Unix.Unix_error _ ->
          tally.disconnects <- tally.disconnects + 1;
          None)
  in
  let live = ref (Array.fold_left (fun n c -> if c = None then n else n + 1) 0 conns) in
  let drop i =
    (match conns.(i) with
    | Some c ->
        Client.close c;
        conns.(i) <- None;
        tally.disconnects <- tally.disconnects + 1;
        decr live
    | None -> ());
  in
  let sleep d =
    let t0 = Unix.gettimeofday () in
    Unix.sleepf d;
    tally.slept <- tally.slept +. (Unix.gettimeofday () -. t0)
  in
  let balance = ref 0 in
  (try
     let k = ref 0 in
     while !k < spec.ops_per_client && !live > 0 do
       (match spec.arrival with
       | W.Closed think -> if think > 0. then sleep think
       | W.Bursty { burst; pause } ->
           if !k > 0 && !k mod burst = 0 then sleep pause);
       (* Pick a live connection: sample the CDF, then scan forward so
          a dead connection's traffic spills onto its neighbours. *)
       let start = W.pick rng cdf in
       let i = ref start in
       while conns.(!i) = None do
         i := (!i + 1) mod spec.conns_per_client
       done;
       let c = Option.get conns.(!i) in
       let dec = !balance > 0 && Random.State.float rng 1.0 < spec.dec_ratio in
       (match
          let t0 = Clock.now_ns () in
          let r = if dec then Client.decrement c else Client.increment c in
          M.Reservoir.add tally.reservoir (Clock.now_ns () - t0);
          r
        with
       | Ok _ ->
           tally.completed <- tally.completed + 1;
           if dec then begin
             tally.decrements <- tally.decrements + 1;
             decr balance
           end
           else begin
             tally.increments <- tally.increments + 1;
             incr balance
           end
       | Error `Overloaded -> tally.rejected <- tally.rejected + 1
       | Error `Closed -> tally.closed <- tally.closed + 1
       | exception (Client.Disconnected | Client.Protocol_error _) -> drop !i);
       incr k
     done
   with Unix.Unix_error _ ->
     (* A connection died in a way [drop] didn't see (e.g. EPIPE on
        send); close everything and let the thread finish. *)
     ());
  Array.iteri
    (fun i c -> if c <> None then (Client.close (Option.get c); conns.(i) <- None))
    conns

let run ?(host = "127.0.0.1") ~port spec =
  check spec;
  let tallies =
    Array.init spec.clients (fun _ ->
        {
          completed = 0;
          increments = 0;
          decrements = 0;
          rejected = 0;
          closed = 0;
          disconnects = 0;
          slept = 0.;
          reservoir = M.Reservoir.create ();
        })
  in
  let t0 = Unix.gettimeofday () in
  let threads =
    Array.init spec.clients (fun idx ->
        Thread.create (fun () -> client_body ~host ~port spec idx tallies.(idx)) ())
  in
  Array.iter Thread.join threads;
  let seconds = Unix.gettimeofday () -. t0 in
  let sum f = Array.fold_left (fun acc t -> acc + f t) 0 tallies in
  let completed = sum (fun t -> t.completed) in
  let mean_slept =
    Array.fold_left (fun acc t -> acc +. t.slept) 0. tallies
    /. float_of_int spec.clients
  in
  let busy_seconds = Float.max 0. (seconds -. mean_slept) in
  let rate s = if s > 0. then float_of_int completed /. s else 0. in
  {
    completed;
    increments = sum (fun t -> t.increments);
    decrements = sum (fun t -> t.decrements);
    rejected = sum (fun t -> t.rejected);
    closed = sum (fun t -> t.closed);
    disconnects = sum (fun t -> t.disconnects);
    seconds;
    ops_per_sec = rate seconds;
    busy_seconds;
    busy_ops_per_sec = rate busy_seconds;
    latency =
      M.reservoir_summary
        (Array.to_list (Array.map (fun t -> t.reservoir) tallies));
  }
