module Svc = Cn_service.Service
module V = Cn_runtime.Validator

type config = {
  host : string;
  port : int;
  width : int;
  out_width : int option;
  queue : int option;
  max_batch : int option;
  metrics : bool;
  validate : V.policy;
  shards : int option;
}

let default =
  {
    host = "127.0.0.1";
    port = 0;
    width = 16;
    out_width = None;
    queue = None;
    max_batch = None;
    metrics = false;
    validate = V.Strict;
    shards = None;
  }

let serve cfg =
  let t = Option.value cfg.out_width ~default:cfg.width in
  let net = Cn_core.Counting.network ~w:cfg.width ~t in
  let server, shape =
    match cfg.shards with
    | None ->
        let svc =
          Svc.create ~metrics:cfg.metrics ?queue:cfg.queue
            ?max_batch:cfg.max_batch ~validate:cfg.validate net
        in
        ( Server.start ~host:cfg.host ~port:cfg.port svc,
          Printf.sprintf "C(%d,%d)" cfg.width t )
    | Some n ->
        let fab =
          Cn_fabric.Fabric.create ~metrics:cfg.metrics ?queue:cfg.queue
            ?max_batch:cfg.max_batch ~validate:cfg.validate ~shards:n net
        in
        ( Server.start_fabric ~host:cfg.host ~port:cfg.port fab,
          Printf.sprintf "C(%d,%d) x%d shards" cfg.width t n )
  in
  Printf.printf "countnetd: listening on %s:%d (%s, pid %d)\n%!" cfg.host
    (Server.port server) shape (Unix.getpid ());
  let on_signal _ = Server.request_stop server in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  Server.wait_stop_request server;
  Printf.printf "countnetd: stop requested, draining\n%!";
  (* Policy Off here so a failed check reports through the exit code
     instead of an escaping exception; cfg.validate chose how strictly
     the service itself polices intermediate drains. *)
  let report = Server.stop ~policy:V.Off server in
  let ok = V.passed report in
  Printf.printf "countnetd: drain %s — %s\n%!"
    (if ok then "ok" else "FAILED")
    (V.summary report);
  if ok then 0 else 1
