(** A blocking countnetd client: one TCP connection, one outstanding
    request at a time (the load rig runs many connections instead of
    pipelining one).

    Failure surfaces as exceptions rather than results because every
    one of them is connection-fatal: [Disconnected] when the peer
    closed (a drained server closing sockets lands here),
    [Protocol_error] when the byte stream stopped being the protocol.
    Application-level outcomes ([Overloaded], [Closed]) are values —
    see {!Frame.response}. *)

type t

exception Disconnected
(** The peer closed the connection (or the socket died mid-exchange). *)

exception Protocol_error of string
(** The reply stream failed frame validation, or a request frame
    arrived where a response belonged.  The connection is unusable. *)

val connect : ?host:string -> port:int -> unit -> t
(** TCP-connect to a countnetd ([?host] default ["127.0.0.1"]).
    @raise Unix.Unix_error when the connection is refused. *)

val request : t -> Frame.request -> Frame.response
(** Send one request and block for its reply.
    @raise Disconnected / [Protocol_error] as above. *)

val close : t -> unit
(** Close the connection.  Idempotent. *)

(** {2 Convenience wrappers} *)

val increment : t -> (int, [ `Overloaded | `Closed ]) result
val decrement : t -> (int, [ `Overloaded | `Closed ]) result
(** [Inc]/[Dec] with the service-style result shape: [Ok value], or the
    backpressure/lifecycle refusal.
    @raise Protocol_error on a reply that fits neither. *)

val read : t -> int
(** Current counter value. *)

val drain : t -> bool * string
(** Ask the server to drain + validate; the validator's verdict and
    its summary line. *)

val stats : t -> string
(** The server's stats JSON. *)
