(* Wire format: | u32 BE payload length | 0xC7 | version | opcode | body |.

   The decoder is a hand-rolled byte-at-a-time state machine over a
   sliding buffer.  Two properties the tests pin down:

   - it consumes input independently of how the bytes were split
     (kernel reads can land anywhere, including inside the length
     prefix), and
   - validation is front-loaded: a hostile length prefix is refused
     from the 4 length bytes alone, so a peer cannot make the server
     buffer more than [max_payload] bytes per frame, and a bad header
     poisons the decoder before any body is interpreted. *)

let magic = '\xC7'
let version = 1
let default_max_payload = 65536
let header_bytes = 3

type request = Inc | Dec | Read | Drain | Stats

type error_code = Bad_magic | Bad_version | Bad_opcode | Bad_body | Too_large

type response =
  | Value of int
  | Overloaded
  | Closed
  | Drained of { ok : bool; summary : string }
  | Stats_reply of string
  | Error_reply of { code : error_code; message : string }

type frame = Request of request | Response of response

let error_code_to_string = function
  | Bad_magic -> "bad-magic"
  | Bad_version -> "bad-version"
  | Bad_opcode -> "bad-opcode"
  | Bad_body -> "bad-body"
  | Too_large -> "too-large"

let pp ppf = function
  | Request Inc -> Format.pp_print_string ppf "inc"
  | Request Dec -> Format.pp_print_string ppf "dec"
  | Request Read -> Format.pp_print_string ppf "read"
  | Request Drain -> Format.pp_print_string ppf "drain"
  | Request Stats -> Format.pp_print_string ppf "stats"
  | Response (Value v) -> Format.fprintf ppf "value %d" v
  | Response Overloaded -> Format.pp_print_string ppf "overloaded"
  | Response Closed -> Format.pp_print_string ppf "closed"
  | Response (Drained { ok; _ }) -> Format.fprintf ppf "drained ok=%b" ok
  | Response (Stats_reply _) -> Format.pp_print_string ppf "stats-reply"
  | Response (Error_reply { code; _ }) ->
      Format.fprintf ppf "error %s" (error_code_to_string code)

(* Opcodes.  Requests are < 0x80, responses have the high bit set. *)

let op_inc = 0x01
let op_dec = 0x02
let op_read = 0x03
let op_drain = 0x04
let op_stats = 0x05
let op_value = 0x81
let op_overloaded = 0x82
let op_closed = 0x83
let op_drained = 0x84
let op_stats_reply = 0x85
let op_error = 0x86

let error_code_byte = function
  | Bad_magic -> 1
  | Bad_version -> 2
  | Bad_opcode -> 3
  | Bad_body -> 4
  | Too_large -> 5

let error_code_of_byte = function
  | 1 -> Some Bad_magic
  | 2 -> Some Bad_version
  | 3 -> Some Bad_opcode
  | 4 -> Some Bad_body
  | 5 -> Some Too_large
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Encoding. *)

let add_u32 b v =
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (v land 0xff))

let add_i64 b v =
  for shift = 7 downto 0 do
    Buffer.add_char b (Char.chr ((v asr (shift * 8)) land 0xff))
  done

let opcode_of_frame = function
  | Request Inc -> op_inc
  | Request Dec -> op_dec
  | Request Read -> op_read
  | Request Drain -> op_drain
  | Request Stats -> op_stats
  | Response (Value _) -> op_value
  | Response Overloaded -> op_overloaded
  | Response Closed -> op_closed
  | Response (Drained _) -> op_drained
  | Response (Stats_reply _) -> op_stats_reply
  | Response (Error_reply _) -> op_error

let body_of_frame f =
  let b = Buffer.create 16 in
  (match f with
  | Request (Inc | Dec | Read | Drain | Stats) | Response (Overloaded | Closed)
    ->
      ()
  | Response (Value v) -> add_i64 b v
  | Response (Drained { ok; summary }) ->
      Buffer.add_char b (if ok then '\001' else '\000');
      Buffer.add_string b summary
  | Response (Stats_reply json) -> Buffer.add_string b json
  | Response (Error_reply { code; message }) ->
      Buffer.add_char b (Char.chr (error_code_byte code));
      Buffer.add_string b message);
  Buffer.contents b

let encode buf f =
  let body = body_of_frame f in
  add_u32 buf (header_bytes + String.length body);
  Buffer.add_char buf magic;
  Buffer.add_char buf (Char.chr version);
  Buffer.add_char buf (Char.chr (opcode_of_frame f));
  Buffer.add_string buf body

let to_string f =
  let b = Buffer.create 32 in
  encode b f;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Body parsing: payload (magic/version already checked) -> frame. *)

let get_i64 s off =
  let v = ref 0 in
  for i = 0 to 7 do
    v := (!v lsl 8) lor Char.code s.[off + i]
  done;
  (* Sign-extend from 64 bits down to the OCaml int. *)
  !v

let parse_body ~opcode ~body =
  let len = String.length body in
  let fixed op want made =
    if len = want then Ok made
    else
      Error
        (Printf.sprintf "%s body must be %d bytes, got %d" op want len)
  in
  match opcode with
  | op when op = op_inc -> fixed "inc" 0 (Request Inc)
  | op when op = op_dec -> fixed "dec" 0 (Request Dec)
  | op when op = op_read -> fixed "read" 0 (Request Read)
  | op when op = op_drain -> fixed "drain" 0 (Request Drain)
  | op when op = op_stats -> fixed "stats" 0 (Request Stats)
  | op when op = op_overloaded -> fixed "overloaded" 0 (Response Overloaded)
  | op when op = op_closed -> fixed "closed" 0 (Response Closed)
  | op when op = op_value ->
      if len <> 8 then
        Error (Printf.sprintf "value body must be 8 bytes, got %d" len)
      else Ok (Response (Value (get_i64 body 0)))
  | op when op = op_drained ->
      if len < 1 then Error "drained body must carry the ok byte"
      else
        let ok =
          match body.[0] with
          | '\000' -> Some false
          | '\001' -> Some true
          | _ -> None
        in
        (match ok with
        | None -> Error "drained ok byte must be 0 or 1"
        | Some ok ->
            Ok
              (Response
                 (Drained { ok; summary = String.sub body 1 (len - 1) })))
  | op when op = op_stats_reply -> Ok (Response (Stats_reply body))
  | op when op = op_error ->
      if len < 1 then Error "error body must carry the code byte"
      else (
        match error_code_of_byte (Char.code body.[0]) with
        | None -> Error "unknown error code byte"
        | Some code ->
            Ok
              (Response
                 (Error_reply { code; message = String.sub body 1 (len - 1) })))
  | _ -> Error "unreachable: opcode validated before body parse"

(* ------------------------------------------------------------------ *)
(* Incremental decoder. *)

type event =
  | Frame of frame
  | Need_more
  | Corrupt of { code : error_code; detail : string }

type decoder = {
  max_payload : int;
  mutable buf : Bytes.t;  (* fed-but-unconsumed bytes, [lo, hi) *)
  mutable lo : int;
  mutable hi : int;
  mutable poisoned : event option;  (* a Corrupt, sticky once set *)
}

let decoder ?(max_payload = default_max_payload) () =
  if max_payload < header_bytes then
    invalid_arg
      (Printf.sprintf "Frame.decoder: max_payload must be >= %d" header_bytes);
  { max_payload; buf = Bytes.create 256; lo = 0; hi = 0; poisoned = None }

let buffered d = d.hi - d.lo

let feed d src ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length src then
    invalid_arg "Frame.feed: range out of bounds";
  if d.poisoned = None && len > 0 then begin
    let used = buffered d in
    if used + len > Bytes.length d.buf - d.lo then begin
      (* Compact, growing only when the live region itself outgrows the
         buffer.  The payload cap bounds growth at 4 + max_payload plus
         whatever one feed call delivered. *)
      let need = used + len in
      let cap = max (Bytes.length d.buf) 256 in
      let cap = if need > cap then max need (2 * cap) else cap in
      let nbuf = if cap > Bytes.length d.buf then Bytes.create cap else d.buf in
      Bytes.blit d.buf d.lo nbuf 0 used;
      d.buf <- nbuf;
      d.lo <- 0;
      d.hi <- used
    end;
    Bytes.blit src off d.buf d.hi len;
    d.hi <- d.hi + len
  end

let poison d code detail =
  let e = Corrupt { code; detail } in
  d.poisoned <- Some e;
  (* Drop the backlog: nothing after a framing error is trustworthy. *)
  d.lo <- 0;
  d.hi <- 0;
  e

let peek_u32 d =
  let b i = Char.code (Bytes.get d.buf (d.lo + i)) in
  (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3

let next d =
  match d.poisoned with
  | Some e -> e
  | None ->
      if buffered d < 4 then Need_more
      else begin
        let len = peek_u32 d in
        if len > d.max_payload then
          poison d Too_large
            (Printf.sprintf "payload length %d exceeds cap %d" len
               d.max_payload)
        else if len < header_bytes then
          poison d Bad_body
            (Printf.sprintf "payload length %d below the %d-byte header" len
               header_bytes)
        else if buffered d < 4 + len then Need_more
        else begin
          let payload = Bytes.sub_string d.buf (d.lo + 4) len in
          if payload.[0] <> magic then
            poison d Bad_magic
              (Printf.sprintf "payload starts with 0x%02x, not 0x%02x"
                 (Char.code payload.[0]) (Char.code magic))
          else if Char.code payload.[1] <> version then
            poison d Bad_version
              (Printf.sprintf "peer speaks version %d, this library %d"
                 (Char.code payload.[1]) version)
          else begin
            let opcode = Char.code payload.[2] in
            let known =
              List.mem opcode
                [
                  op_inc; op_dec; op_read; op_drain; op_stats; op_value;
                  op_overloaded; op_closed; op_drained; op_stats_reply;
                  op_error;
                ]
            in
            if not known then
              poison d Bad_opcode (Printf.sprintf "unknown opcode 0x%02x" opcode)
            else
              let body = String.sub payload header_bytes (len - header_bytes) in
              match parse_body ~opcode ~body with
              | Error detail -> poison d Bad_body detail
              | Ok frame ->
                  d.lo <- d.lo + 4 + len;
                  if d.lo = d.hi then begin
                    d.lo <- 0;
                    d.hi <- 0
                  end;
                  Frame frame
          end
        end
      end
