(** The countnetd wire format: length-prefixed binary frames.

    Every frame on the wire is a 4-byte big-endian payload length
    followed by the payload itself:

    {v
      +--------------+--------------------------------------+
      | length (u32) | payload (length bytes)               |
      +--------------+--------------------------------------+
      payload = | magic 0xC7 | version u8 | opcode u8 | body |
    v}

    The 3-byte header (magic, protocol {!version}, opcode) is part of
    the payload so a single length read bounds everything that follows;
    the body layout depends on the opcode (see [doc/protocol.md] for
    the normative table).  Request opcodes occupy [0x01..0x7f],
    response opcodes [0x81..0xff], so a peer can reject a frame sent in
    the wrong direction without tracking conversation state.

    Integers ride as 8-byte big-endian two's complement; OCaml's 63-bit
    [int] always fits.

    {2 Decoding}

    {!decoder} is a push-based incremental decoder: {!feed} it raw
    bytes exactly as they came off the socket — at any split, one byte
    at a time if the kernel so delivers — and pull parsed frames with
    {!next}.  It never blocks (it has no I/O), never reads past the
    frame the length prefix promised, and never yields a frame that
    failed validation: an oversized length prefix is rejected the
    moment the 4 length bytes are visible (the body is never
    buffered), and a garbage header or malformed body poisons the
    decoder terminally — the only safe continuation of a framing error
    is to drop the connection. *)

val magic : char
(** First payload byte of every frame, [0xC7]. *)

val version : int
(** Protocol version this library speaks, [1]. *)

val default_max_payload : int
(** Default decoder cap on the payload length, [65536] bytes.  Frames
    longer than the cap are rejected as {!Too_large} without buffering. *)

val header_bytes : int
(** Payload bytes occupied by the header (magic, version, opcode): 3. *)

type request =
  | Inc  (** one [Fetch&Increment] through the connection's session *)
  | Dec  (** one [Fetch&Decrement] *)
  | Read
      (** current counter value (net tokens handed out), without
          traversing; quiescently consistent, exact at quiescence *)
  | Drain
      (** quiesce the network and validate (step property + token
          conservation), then re-admit; replies {!Drained} *)
  | Stats  (** server + service + network counters as JSON *)

type error_code =
  | Bad_magic  (** first payload byte was not {!magic} *)
  | Bad_version  (** peer speaks an unknown protocol version *)
  | Bad_opcode  (** unknown opcode, or a frame sent in the wrong direction *)
  | Bad_body  (** body length does not match what the opcode requires *)
  | Too_large  (** length prefix exceeds the decoder's payload cap *)

type response =
  | Value of int  (** result of [Inc]/[Dec]/[Read] *)
  | Overloaded
      (** the session's combining lane had no free submission slot —
          the service's bounded-queue backpressure, surfaced on the
          wire; retry, shed, or back off *)
  | Closed  (** the service is draining or stopped *)
  | Drained of { ok : bool; summary : string }
      (** outcome of a [Drain]: [ok] iff every quiescence check
          passed; [summary] is the validator's one-line report *)
  | Stats_reply of string  (** JSON document *)
  | Error_reply of { code : error_code; message : string }
      (** terminal protocol error; the sender closes the connection
          after this frame *)

type frame = Request of request | Response of response

val pp : Format.formatter -> frame -> unit
val error_code_to_string : error_code -> string

(** {2 Encoding} *)

val encode : Buffer.t -> frame -> unit
(** Append the complete wire image (length prefix included) of a frame. *)

val to_string : frame -> string
(** The wire image as a fresh string. *)

(** {2 Incremental decoding} *)

type decoder

val decoder : ?max_payload:int -> unit -> decoder
(** A fresh decoder.  [?max_payload] (default {!default_max_payload})
    bounds accepted payload lengths; it must be at least
    {!header_bytes}.
    @raise Invalid_argument if [max_payload < header_bytes]. *)

val feed : decoder -> bytes -> off:int -> len:int -> unit
(** [feed d buf ~off ~len] appends [len] bytes at [off] to the
    decoder's input.  The bytes are copied; the caller may reuse
    [buf].  Feeding a poisoned decoder is allowed and ignored.
    @raise Invalid_argument on a negative or out-of-bounds range. *)

type event =
  | Frame of frame  (** one complete, validated frame *)
  | Need_more  (** no complete frame buffered; feed more bytes *)
  | Corrupt of { code : error_code; detail : string }
      (** framing error; terminal — every later {!next} returns it *)

val next : decoder -> event
(** Pull the next event.  Consumes exactly the bytes of the frame it
    returns; pipelined frames in one [feed] come back one {!next} at a
    time. *)

val buffered : decoder -> int
(** Bytes fed but not yet consumed by {!next} — for tests asserting the
    decoder never over-reads. *)
