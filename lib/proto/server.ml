module A = Cn_runtime.Atomics.Real
module Svc = Cn_service.Service
module Fab = Cn_fabric.Fabric
module RT = Cn_runtime.Network_runtime
module V = Cn_runtime.Validator

(* One handler thread per connection, one backend session per handler:
   sessions are single-owner state, and a connection serves its frames
   in order, so the ownership rule holds by construction.  All
   cross-thread coordination below is either an atomic flag, the
   self-pipe, or the connection registry's growth-path mutex. *)

(* What the wire protocol needs from whatever is behind it — a single
   combining service or the sharded fabric.  A record of closures, not
   a functor: the server is all slow-path (one record lookup per frame
   next to a syscall), and the two instantiations differ only here. *)

type op_error = Op_overloaded | Op_closed

type backend_session = {
  bs_inc : unit -> (int, op_error) result;
  bs_dec : unit -> (int, op_error) result;
}

type backend = {
  be_session : unit -> backend_session;
  be_value : unit -> int;  (* quiescently-consistent counter read *)
  be_drain : unit -> V.report;  (* policy Off: verdict rides the reply *)
  be_shutdown : V.policy option -> V.report;
  be_report_json : unit -> string;
}

let service_backend svc =
  let op = function
    | Ok v -> Ok v
    | Error Svc.Overloaded -> Error Op_overloaded
    | Error Svc.Closed -> Error Op_closed
  in
  {
    be_session =
      (fun () ->
        let s = Svc.session svc in
        {
          bs_inc = (fun () -> op (Svc.increment s));
          bs_dec = (fun () -> op (Svc.decrement s));
        });
    be_value =
      (fun () ->
        Cn_sequence.Sequence.sum (RT.exit_distribution (Svc.runtime svc)));
    be_drain = (fun () -> Svc.drain ~policy:V.Off svc);
    be_shutdown = (fun policy -> Svc.shutdown ?policy svc);
    be_report_json = (fun () -> Svc.report_json svc);
  }

let fabric_backend fab =
  let op = function
    | Ok v -> Ok v
    | Error Fab.Overloaded -> Error Op_overloaded
    | Error Fab.Closed -> Error Op_closed
  in
  {
    be_session =
      (fun () ->
        let s = Fab.session fab in
        {
          bs_inc = (fun () -> op (Fab.increment s));
          bs_dec = (fun () -> op (Fab.decrement s));
        });
    be_value = (fun () -> Fab.read fab);
    be_drain = (fun () -> Fab.drain ~policy:V.Off fab);
    be_shutdown = (fun policy -> Fab.shutdown ?policy fab);
    be_report_json = (fun () -> Fab.report_json fab);
  }

type conn = {
  id : int;
  fd : Unix.file_descr;
  mutable thread : Thread.t option;
      (* set once by the acceptor before the handler can finish *)
}

type t = {
  be : backend;
  listen_fd : Unix.file_descr;
  port_ : int;
  max_payload : int;
  stop_flag : bool A.t;
  stop_rd : Unix.file_descr;  (* self-pipe: wakes the accept loop *)
  stop_wr : Unix.file_descr;
  accepted_ : int A.t;
  live : int A.t;
  mutable acceptor : Thread.t option;
  reg_lock : Mutex.t;
  mutable conns : conn list;
  mutable stop_report : (V.report, exn) result option;
      (* memoized graceful-drain outcome; stop is idempotent *)
}

(* ------------------------------------------------------------------ *)
(* Socket helpers. *)

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    let k = Unix.write fd b !off (n - !off) in
    if k = 0 then raise End_of_file;
    off := !off + k
  done

let send fd frame = write_all fd (Frame.to_string frame)

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Every registry access funnels through here: the lock guards
   accept/close/stop bookkeeping only, never the per-frame fast path. *)
let locked t f =
  (Mutex.lock
  [@atomlint.allow
    "connection-registry lock: taken on accept, close and stop only, \
     never on the per-frame fast path"])
    t.reg_lock;
  match f () with
  | v ->
      (Mutex.unlock [@atomlint.allow "registry lock, see locked above"])
        t.reg_lock;
      v
  | exception e ->
      (Mutex.unlock [@atomlint.allow "registry lock, see locked above"])
        t.reg_lock;
      raise e

(* ------------------------------------------------------------------ *)
(* Per-connection protocol loop. *)

let stats_json t =
  Printf.sprintf
    "{\n\"server\": { \"connections\": %d, \"accepted\": %d, \"value\": %d },\n\
     \"report\": %s\n}"
    (A.get t.live) (A.get t.accepted_)
    (t.be.be_value ())
    (t.be.be_report_json ())

let reply_of_op = function
  | Ok v -> Frame.Response (Frame.Value v)
  | Error Op_overloaded -> Frame.Response Frame.Overloaded
  | Error Op_closed -> Frame.Response Frame.Closed

let handle_request t session (req : Frame.request) =
  match req with
  | Frame.Inc -> reply_of_op (session.bs_inc ())
  | Frame.Dec -> reply_of_op (session.bs_dec ())
  | Frame.Read -> Frame.Response (Frame.Value (t.be.be_value ()))
  | Frame.Drain ->
      (* Policy Off: the verdict rides in the reply instead of raising
         server-side; the service re-admits afterwards either way. *)
      let report = t.be.be_drain () in
      Frame.Response
        (Frame.Drained { ok = V.passed report; summary = V.summary report })
  | Frame.Stats -> Frame.Response (Frame.Stats_reply (stats_json t))

let handler t conn =
  let session = t.be.be_session () in
  let dec = Frame.decoder ~max_payload:t.max_payload () in
  let buf = Bytes.create 4096 in
  let running = ref true in
  (try
     while !running do
       let n = Unix.read conn.fd buf 0 (Bytes.length buf) in
       if n = 0 then running := false
       else begin
         Frame.feed dec buf ~off:0 ~len:n;
         let draining = ref true in
         while !draining && !running do
           match Frame.next dec with
           | Frame.Need_more -> draining := false
           | Frame.Frame (Frame.Request req) ->
               send conn.fd (handle_request t session req)
           | Frame.Frame (Frame.Response _) ->
               (* A valid frame pointed the wrong way; refuse and drop
                  the connection — the peer is confused. *)
               send conn.fd
                 (Frame.Response
                    (Frame.Error_reply
                       {
                         code = Frame.Bad_opcode;
                         message = "response frame sent to a server";
                       }));
               running := false
           | Frame.Corrupt { code; detail } ->
               (try
                  send conn.fd
                    (Frame.Response
                       (Frame.Error_reply { code; message = detail }))
                with Unix.Unix_error _ | End_of_file -> ());
               running := false
         done
       end
     done
   with
  | Unix.Unix_error _ | End_of_file -> ()
  | V.Invalid _ -> ());
  close_quietly conn.fd;
  locked t (fun () -> t.conns <- List.filter (fun c -> c.id != conn.id) t.conns);
  ignore (A.fetch_and_add t.live (-1))

(* ------------------------------------------------------------------ *)
(* Accept loop. *)

let acceptor_loop t =
  let next_id = ref 0 in
  while not (A.get t.stop_flag) do
    match Unix.select [ t.listen_fd; t.stop_rd ] [] [] (-1.) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ ->
        if List.mem t.stop_rd ready then () (* flag is set; loop exits *)
        else if List.mem t.listen_fd ready then begin
          match Unix.accept ~cloexec:true t.listen_fd with
          | exception Unix.Unix_error _ -> ()
          | fd, _peer ->
              if A.get t.stop_flag then close_quietly fd
              else begin
                incr next_id;
                let conn = { id = !next_id; fd; thread = None } in
                A.incr t.accepted_;
                A.incr t.live;
                locked t (fun () ->
                    t.conns <- conn :: t.conns;
                    conn.thread <- Some (Thread.create (handler t) conn))
              end
        end
  done

(* ------------------------------------------------------------------ *)

let start_backend ?(host = "127.0.0.1") ?(port = 0) ?(backlog = 64)
    ?(max_payload = Frame.default_max_payload) be =
  (* A peer that disappears mid-reply must cost the handler an EPIPE,
     not the process a SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd addr;
     Unix.listen listen_fd backlog
   with e ->
     close_quietly listen_fd;
     raise e);
  let port_ =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  let stop_rd, stop_wr = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock stop_wr;
  let t =
    {
      be;
      listen_fd;
      port_;
      max_payload;
      stop_flag = A.make false;
      stop_rd;
      stop_wr;
      accepted_ = A.make 0;
      live = A.make 0;
      acceptor = None;
      reg_lock =
        (Mutex.create
        [@atomlint.allow
          "connection-registry lock: taken on accept and close only, \
           never on the per-frame fast path"])
          ();
      conns = [];
      stop_report = None;
    }
  in
  t.acceptor <- Some (Thread.create acceptor_loop t);
  t

let start ?host ?port ?backlog ?max_payload svc =
  start_backend ?host ?port ?backlog ?max_payload (service_backend svc)

let start_fabric ?host ?port ?backlog ?max_payload fab =
  start_backend ?host ?port ?backlog ?max_payload (fabric_backend fab)

let port t = t.port_
let connections t = A.get t.live
let accepted t = A.get t.accepted_
let stop_requested t = A.get t.stop_flag

let request_stop t =
  if not (A.get t.stop_flag) then begin
    A.set t.stop_flag true;
    (* Wake the select; a full pipe already guarantees a wakeup. *)
    try ignore (Unix.write t.stop_wr (Bytes.make 1 '\000') 0 1)
    with Unix.Unix_error _ -> ()
  end

let wait_stop_request t =
  while not (A.get t.stop_flag) do
    (* Sliced sleep: signal handlers (the SIGTERM path) run between
       slices, flip the flag, and we notice within one slice. *)
    try Thread.delay 0.05 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let stop ?policy t =
  let finish r =
    match r with Ok report -> report | Error e -> raise e
  in
  match locked t (fun () -> t.stop_report) with
  | Some r -> finish r
  | None ->
      request_stop t;
      Option.iter Thread.join t.acceptor;
      close_quietly t.listen_fd;
      (* The quiescence path every harness shares: sweep the lanes dry,
         validate step property + token conservation, close the backend.
         Racing handler operations complete before the validation point
         or fail [Closed] — the Service_core protocol guarantees it
         (per shard, when the backend is a fabric). *)
      let result =
        match t.be.be_shutdown policy with
        | report -> Ok report
        | exception e -> Error e
      in
      (* Wake blocked reads, then join every handler. *)
      let conns = locked t (fun () -> t.conns) in
      List.iter
        (fun c ->
          try Unix.shutdown c.fd Unix.SHUTDOWN_ALL
          with Unix.Unix_error _ -> ())
        conns;
      List.iter (fun c -> Option.iter Thread.join c.thread) conns;
      close_quietly t.stop_rd;
      close_quietly t.stop_wr;
      locked t (fun () -> t.stop_report <- Some result);
      finish result
