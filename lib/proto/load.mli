(** The client side of the loopback rig: drive a countnetd over TCP
    with the same synthetic populations {!Cn_service.Workload} runs
    in-process — Zipf/uniform skew over a client's connections,
    closed-loop think time or bursty arrivals, a decrement ratio with
    per-client prefix non-negativity — plus the two things only a wire
    can measure: per-operation round-trip latency and behaviour under
    connection loss.

    Each of [clients] threads owns [conns_per_client] connections
    (server-side, each connection is its own service session) and
    performs [ops_per_client] operations, choosing a connection per
    operation by [skew].  Round-trip latencies are recorded into a
    per-thread {!Cn_runtime.Metrics.Reservoir} and merged into one
    p50/p95/p99 summary — the SLO rows the bench suite appends to
    BENCH_runtime.json.

    Backpressure discipline matches Workload: an [Overloaded] reply
    sheds the operation (counted in [rejected]); [Closed] means the
    server is draining (counted in [closed]).  A dead connection
    (server gone, mid-load SIGTERM) is counted in [disconnects] and the
    thread carries on with its surviving connections — the rig is built
    to outlive the server so shutdown tests can assert on what the
    clients saw. *)

type spec = {
  clients : int;  (** concurrent client threads *)
  conns_per_client : int;
  ops_per_client : int;
  dec_ratio : float;  (** in [[0, 1]]; prefix non-negative per thread *)
  skew : Cn_service.Workload.skew;  (** connection-pick distribution *)
  arrival : Cn_service.Workload.arrival;
  seed : int;
}

val default : spec
(** [{ clients = 2; conns_per_client = 2; ops_per_client = 1000;
      dec_ratio = 0.; skew = Uniform; arrival = Closed 0.; seed = 42 }] *)

type stats = {
  completed : int;  (** operations that returned a [Value] *)
  increments : int;
  decrements : int;
  rejected : int;  (** shed on [Overloaded] *)
  closed : int;  (** refused because the service was draining/stopped *)
  disconnects : int;  (** connections that died mid-run *)
  seconds : float;  (** wall clock of the concurrent phase *)
  ops_per_sec : float;  (** [completed /. seconds]; the bench-row rate *)
  busy_seconds : float;  (** [seconds] minus mean injected idle time *)
  busy_ops_per_sec : float;
  latency : Cn_runtime.Metrics.latency option;
      (** merged round-trip summary (ns), [None] if nothing completed *)
}

val run : ?host:string -> port:int -> spec -> stats
(** Connect and drive.  Each thread's random stream derives from
    [spec.seed] and its index, so a run is reproducible up to
    scheduling and server behaviour.
    @raise Invalid_argument on a malformed spec.
    @raise Unix.Unix_error when the initial connections are refused. *)
