(** Consistent-hash session routing for the shard fabric.

    A hash ring with virtual nodes (Karger-style consistent hashing):
    each shard owns {!vnodes} pseudo-random ring points, and a key
    routes to the shard owning the first point at or after the key's
    hash.  Because point positions depend only on the (shard id,
    replica) pair, changing the shard set moves only the keys in the
    ring segments that actually changed hands:

    - adding one shard to an [n]-shard ring remaps an expected
      [1/(n+1)] fraction of keys, all of them {e to} the new shard;
    - removing a shard remaps exactly the keys it owned, and no key
      moves between two surviving shards.

    Routers are immutable values; the fabric publishes a freshly built
    ring through one atomic reference when it grows or shrinks.
    {!route} is pure (hash + binary search) and safe from any domain. *)

type t

val default_vnodes : int
(** [64] — enough virtual nodes that a 1-to-8-shard ring balances keys
    to within a few percent. *)

val make : ?vnodes:int -> int list -> t
(** [make shards] builds the ring over the given shard ids.
    @raise Invalid_argument if [shards] is empty or [vnodes <= 0]. *)

val route : t -> int -> int
(** [route t key] is the shard id owning [key].  Deterministic: the
    same key on the same shard set always lands on the same shard. *)

val shards : t -> int list
(** The shard ids the ring was built over. *)

val shard_count : t -> int
val vnodes : t -> int

val mix : int -> int
(** The ring's avalanche hash over non-negative tagged ints — exposed
    so tests can reason about point placement.  An alias for
    {!Cn_runtime.Splitmix.mix}, the system-wide finalizer the sketch
    backends share. *)
