(** The elastic shard-fabric protocol, as a functor over its atomic
    operations and the sharded service — the same factoring as
    {!Cn_service.Service_core}, for the same reason: {!Fabric}
    instantiates it with {!Cn_runtime.Atomics.Real} and the production
    {!Cn_service.Service}; the race checker ([Cn_check]) instantiates
    it with instrumented atomics and model services and explores the
    hot-resize protocol's interleavings exhaustively (bounded
    preemptions) — see [make check-races].

    The protocol invariants the factoring exists to check:

    - {b no lost or duplicated work across a resize}: an operation
      racing a hot-resize either completes on the old service before
      its quiescent validation point (the [Service_core] admission
      guarantee), or parks and is replayed exactly once on the
      swapped-in service;
    - {b continuity}: a shard's logical value is [base + net(svc)] and
      the resize folds the old service's net count into [base] at the
      validated quiescence point, so the shard's value stream continues
      with no duplicates and the global sum is invariant at the swap;
    - {b routing}: the consistent-hash router is published before any
      shard retires and after every shard spawns, so no operation is
      ever routed to a shard that will not serve or park it. *)

module V := Cn_runtime.Validator

(** What the fabric needs from a service: sessions, the two counter
    operations, the validated drain/shutdown lifecycle, and the net
    token count that becomes the [base] offset at a resize.
    {!Cn_service.Service} matches this signature once extended with
    [net_count] (see {!Fabric}); the checker's model service is
    [Service_core.Make (Instrumented) (Model_net)] plus the same
    one-liner. *)
module type SERVICE = sig
  type t
  type session
  type op = Inc | Dec
  type error = Overloaded | Closed

  val session : ?wire:int -> t -> session
  val increment : session -> (int, error) result
  val decrement : session -> (int, error) result
  val lifecycle : t -> [ `Running | `Draining | `Stopped ]
  val drain : ?policy:V.policy -> t -> V.report
  val shutdown : ?policy:V.policy -> t -> V.report

  val net_count : t -> int
  (** Net tokens handed out so far (tokens minus antitokens).  Exact at
      quiescence — the fabric only reads it for the [base] fold after
      [shutdown]'s validation point. *)
end

module type S = sig
  type svc
  (** The underlying service instances being sharded. *)

  type topo_key
  (** What a shard is built from (a {!Cn_network.Topology.t}). *)

  type t
  (** A fabric: up to [max_shards] shard slots, a published router, and
      the combining-read state. *)

  type session
  (** A fabric client handle: a routing key plus a cached per-shard
      service session (invalidated by generation on resize).  Single
      owner, like the service sessions it wraps. *)

  type op = Inc | Dec
  type error = Overloaded | Closed

  type resize_error =
    | Cert_rejected of string
        (** the candidate topology failed certification; nothing changed *)
    | Busy  (** another resize or rescale owns the shard / the fabric *)
    | Bad_shard  (** shard id out of range *)
    | Fabric_closed

  exception Rejected of string
  (** Raised by {!make} when an {e initial} topology fails
      certification — a fabric never starts serving uncertified. *)

  val make :
    ?max_shards:int ->
    ?vnodes:int ->
    ?validate:V.policy ->
    spawn:(topo_key -> svc) ->
    certify:(topo_key -> (unit, string) result) ->
    topo_key list ->
    t
  (** [make ~spawn ~certify topos] builds one shard per listed topology
      (shard ids [0..n-1]), certifying every topology {e before}
      spawning anything.  [?max_shards] (default [16]) bounds
      {!set_shard_count}; [?vnodes] (default {!Router.default_vnodes})
      sizes the hash ring; [?validate] (default [Strict]) is the policy
      resize/drain/shutdown apply when not overridden.
      @raise Rejected if any initial topology fails certification.
      @raise Invalid_argument on an empty list or [n > max_shards]. *)

  val session : ?key:int -> t -> session
  (** [session t] registers a client.  [?key] pins the routing key
      (sessions with equal keys share a shard — the consistent-hash
      pinning the property tests check); default keys are assigned
      round-robin from a counter. *)

  val session_key : session -> int

  val increment : session -> (int, error) result
  (** One [Fetch&Increment] through the session's shard.  The value is
      the shard's stream value ([base + service value]); streams of
      distinct shards are independent (a sharded counter, not a single
      global sequence).  Retries transparently across a racing resize:
      the operation either completes on the pre-resize service before
      its validation point or parks and is replayed on the new one.
      [Error Overloaded] propagates the shard's backpressure verbatim;
      [Error Closed] means the fabric is shut down. *)

  val decrement : session -> (int, error) result

  val read : t -> int
  (** Linearizable-at-quiescence global read: one reader CASes itself
      collector, double-collects [base + net] across shards (a retired
      slot contributes its tombstoned net, published atomically at the
      retirement, so a sweep never under- or double-counts a shard
      mid-shrink) until two sweeps agree, and publishes the sweep;
      concurrent readers adopt any sweep that started after they
      arrived — a second-level combining pass, so [n] concurrent reads
      cost one sweep, not [n].  Under in-flight traffic the value is
      quiescently consistent (it counts exactly the operations whose
      tokens have exited). *)

  val shard_count : t -> int
  val max_shards : t -> int

  val route : t -> int -> int
  (** The shard id the current router assigns a key — exposed for the
      routing-stability tests and the bench rig. *)

  val shard_value : t -> int -> int
  (** [shard_value t sid] is the shard's logical counter value
      ([base + net]).  Exact at quiescence.
      @raise Invalid_argument if [sid] is retired or out of range. *)

  val shard_gen : t -> int -> int
  (** Resize generation of the shard: 0 at first spawn, +1 per swap —
      and monotonic across retirement, so a slot re-created by a grow
      continues (not restarts) the sequence and a session's cached
      [(shard, gen)] pair can never alias a retired service. *)

  val shard_topology : t -> int -> topo_key
  val shard_service : t -> int -> svc

  val resize : ?policy:V.policy -> t -> shard:int -> topo_key -> (unit, resize_error) result
  (** [resize t ~shard topo] hot-swaps one shard's topology: certify
      [topo] (rejection aborts with no state change), seal the shard so
      latecomers park, shut the old service down through the
      {!Cn_runtime.Validator.quiescent_runtime} boundary at [?policy]
      (default: the fabric's policy), fold its net count into the
      shard's [base], spawn and publish the new service, reopen, and
      replay every parked operation exactly once.
      @raise Validator.Invalid under [Strict] when the old service
      fails its quiescence checks; the fabric fail-stops first
      (integrity over availability). *)

  val set_shard_count :
    ?policy:V.policy -> ?topo:topo_key -> t -> int -> (unit, resize_error) result
  (** Elastically grow or shrink the live shard set to [n].  Growth
      certifies and spawns shards (topology [?topo], default: shard
      0's current topology) before publishing the wider router; shrink
      publishes the narrower router first, then drains each removed
      shard through the same seal/validate/replay path as {!resize},
      atomically replacing it with a tombstone that preserves its net
      count (and generation) so {!read} stays conserved and a later
      grow continues the slot's stream.  Serialized against itself
      ([Error Busy]). *)

  val drain : ?policy:V.policy -> t -> V.report
  (** Quiesce and validate every shard in turn (each re-admits when
      its validation passes), merging the per-shard reports with
      [shardN.]-prefixed check names. *)

  val shutdown : ?policy:V.policy -> t -> V.report
  (** Terminal: mark the fabric closed, shut every shard down through
      the validated quiescence path, and fail any parked stragglers
      with [Closed].  {!read} and the shard accessors keep working on
      the frozen state. *)

  val closed : t -> bool
end

module Make (A : Cn_runtime.Atomics.S) (S : SERVICE) :
  S with type svc = S.t and type topo_key = Cn_network.Topology.t
