(* Consistent-hash session routing for the shard fabric.

   A classic ring with virtual nodes: every shard contributes [vnodes]
   points, a key routes to the shard owning the first point clockwise
   from the key's own hash.  Point positions depend only on (shard id,
   replica index), never on the shard set, so adding or removing a
   shard moves exactly the keys whose successor point belonged to the
   ring segments that changed hands — the 1/(n+1) remap fraction the
   property tests pin.

   The ring is immutable; the fabric swaps whole routers through one
   atomic reference when the shard set changes.  Routing itself is a
   hash plus a binary search — no shared state, safe from any domain. *)

(* The finalizer lives in the runtime ({!Cn_runtime.Splitmix}) so the
   sketch backends can hash keys the same way without a dependency on
   the fabric; the ring only needs avalanche, which it provides. *)
let mix = Cn_runtime.Splitmix.mix

type t = {
  hashes : int array; (* point positions, sorted ascending *)
  owners : int array; (* owners.(i) = shard owning hashes.(i) *)
  shards : int array; (* the shard ids this ring was built from *)
  vnodes : int;
}

let default_vnodes = 64

let point shard replica = mix (((shard + 1) * 1_000_003) + (replica * 8191))

let make ?(vnodes = default_vnodes) shards =
  if vnodes <= 0 then invalid_arg "Router.make: vnodes must be positive";
  if shards = [] then invalid_arg "Router.make: at least one shard";
  let ids = Array.of_list shards in
  let points =
    Array.init
      (Array.length ids * vnodes)
      (fun i -> (point ids.(i / vnodes) (i mod vnodes), ids.(i / vnodes)))
  in
  Array.sort compare points;
  {
    hashes = Array.map fst points;
    owners = Array.map snd points;
    shards = ids;
    vnodes;
  }

let shards t = Array.to_list t.shards
let shard_count t = Array.length t.shards
let vnodes t = t.vnodes

let route t key =
  let h = mix key in
  let n = Array.length t.hashes in
  (* first point with hash >= h, wrapping to 0 *)
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.hashes.(mid) < h then lo := mid + 1 else hi := mid
  done;
  t.owners.(if !lo = n then 0 else !lo)
