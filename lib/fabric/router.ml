(* Consistent-hash session routing for the shard fabric.

   A classic ring with virtual nodes: every shard contributes [vnodes]
   points, a key routes to the shard owning the first point clockwise
   from the key's own hash.  Point positions depend only on (shard id,
   replica index), never on the shard set, so adding or removing a
   shard moves exactly the keys whose successor point belonged to the
   ring segments that changed hands — the 1/(n+1) remap fraction the
   property tests pin.

   The ring is immutable; the fabric swaps whole routers through one
   atomic reference when the shard set changes.  Routing itself is a
   hash plus a binary search — no shared state, safe from any domain. *)

(* splitmix-style finalizer over the tagged-int range.  The constants
   must fit OCaml's 63-bit int, so these are the xorshift* and
   Lehmer-style multipliers rather than the canonical 64-bit ones; all
   we need is avalanche, not cross-language reproducibility. *)
let mix x =
  let x = x lxor (x lsr 33) in
  let x = x * 0x2545F4914F6CDD1D in
  let x = x lxor (x lsr 29) in
  let x = x * 0x27BB2EE687B0B0FD in
  let x = x lxor (x lsr 32) in
  x land max_int

type t = {
  hashes : int array; (* point positions, sorted ascending *)
  owners : int array; (* owners.(i) = shard owning hashes.(i) *)
  shards : int array; (* the shard ids this ring was built from *)
  vnodes : int;
}

let default_vnodes = 64

let point shard replica = mix (((shard + 1) * 1_000_003) + (replica * 8191))

let make ?(vnodes = default_vnodes) shards =
  if vnodes <= 0 then invalid_arg "Router.make: vnodes must be positive";
  if shards = [] then invalid_arg "Router.make: at least one shard";
  let ids = Array.of_list shards in
  let points =
    Array.init
      (Array.length ids * vnodes)
      (fun i -> (point ids.(i / vnodes) (i mod vnodes), ids.(i / vnodes)))
  in
  Array.sort compare points;
  {
    hashes = Array.map fst points;
    owners = Array.map snd points;
    shards = ids;
    vnodes;
  }

let shards t = Array.to_list t.shards
let shard_count t = Array.length t.shards
let vnodes t = t.vnodes

let route t key =
  let h = mix key in
  let n = Array.length t.hashes in
  (* first point with hash >= h, wrapping to 0 *)
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.hashes.(mid) < h then lo := mid + 1 else hi := mid
  done;
  t.owners.(if !lo = n then 0 else !lo)
