(* The production fabric: Fabric_core's protocol over the real atomics
   and the real combining Service, with two policies the core functor
   keeps abstract filled in concretely:

   - certification: every topology — initial shards, hot-resize
     candidates, grow targets — runs the Cn_lint eight-pass pipeline
     with expectation [Counting] before it may serve traffic; a
     certificate that is not ok, or whose evidence is a refutation, is
     a hard abort (the resize returns [Cert_rejected] and nothing
     changed);
   - tuning: the predicted-best per-shard (w, t) comes from
     [Cn_analysis.Projection.tune] (Theorem 6.7's calibrated contention
     model), corrected by the live per-layer stall profile when the
     shard's runtime records one (Cas mode with metrics on). *)

module Topology = Cn_network.Topology
module Counting = Cn_core.Counting
module RT = Cn_runtime.Network_runtime
module Metrics = Cn_runtime.Metrics
module V = Cn_runtime.Validator
module Svc = Cn_service.Service
module Projection = Cn_analysis.Projection
module Cert = Cn_lint.Cert
module Sequence = Cn_sequence.Sequence

(* Service, extended with the one accessor the fabric's accounting
   needs: the logical counter value behind a service (net tokens
   handed out, from the runtime's assignment cells). *)
module Service_ext = struct
  include Svc

  let net_count svc = Sequence.sum (RT.exit_distribution (Svc.runtime svc))
end

module Core = Fabric_core.Make (Cn_runtime.Atomics.Real) (Service_ext)
include Core

(* ------------------------------------------------------------------ *)
(* Certification. *)

let certificate ?(exhaustive_budget = 2_000) net =
  let w = Topology.input_width net and t = Topology.output_width net in
  (* When the dimensions are a legal C(w,t) pair, rebuild the trusted
     construction as the structural reference: fabric topologies built
     by [Counting.network] then certify By_construction, and anything
     else must earn its evidence from the analytic passes. *)
  let reference =
    if Counting.valid ~w ~t then
      Some (Counting.network ~w ~t, "Busch-Mavronicolas Theorem 4.2, C(w,t)")
    else None
  in
  Cert.certify ?reference ~exhaustive_budget
    ~subject:(Printf.sprintf "fabric:C(%d,%d)" w t)
    ~expectation:Cert.Counting net

let certify_topology ?exhaustive_budget net =
  let cert = certificate ?exhaustive_budget net in
  let refuted =
    match cert.Cert.evidence with Cert.Refuted _ -> true | _ -> false
  in
  if Cert.ok cert && not refuted then Ok cert
  else Error (Format.asprintf "%a" Cert.pp_line cert)

(* ------------------------------------------------------------------ *)

let create ?mode ?layout ?(metrics = false) ?max_batch ?queue ?elim ?pipeline
    ?(validate = V.Strict) ?max_shards ?vnodes ?exhaustive_budget ~shards net =
  if shards < 1 then invalid_arg "Fabric.create: shards must be positive";
  let spawn topo =
    Svc.create ?mode ?layout ~metrics ?max_batch ?queue ?elim ?pipeline
      ~validate topo
  in
  let certify topo =
    match certify_topology ?exhaustive_budget topo with
    | Ok _ -> Ok ()
    | Error msg -> Error msg
  in
  Core.make ?max_shards ?vnodes ~validate ~spawn ~certify
    (List.init shards (fun _ -> net))

(* ------------------------------------------------------------------ *)
(* Auto-tuning: analytic prediction, corrected by live stall counters. *)

(* One noisy profile must not be able to swing the tuner by more than
   4x in either direction. *)
let min_scale = 0.25
let max_scale = 4.
let min_profile_tokens = 1024

let live_stall_scale t ~shard ~domains =
  let svc = Core.shard_service t shard in
  match RT.metrics (Svc.runtime svc) with
  | None -> 1.
  | Some m ->
      let layers = Svc.layers svc in
      if Array.length layers = 0 then 1.
      else begin
        let stalls =
          Array.fold_left ( + ) 0 (Metrics.layer_stalls m ~layers)
        in
        let snap = Metrics.snapshot m in
        let tokens = snap.Metrics.tokens + snap.Metrics.antitokens in
        (* Cold-start guard: below [min_profile_tokens] the stalls/token
           ratio is dominated by sampling noise — a handful of unlucky
           crossings on a nearly idle shard used to pin the scale at a
           clamp edge and let retune pick a degenerate (w, t).  With
           too few samples (including the fully idle stalls = 0 or
           tokens = 0 cases) the tuner falls back to the pure analytic
           model. *)
        if stalls = 0 || tokens < min_profile_tokens then 1.
        else begin
          let topo = Core.shard_topology t shard in
          let w = Topology.input_width topo
          and tt = Topology.output_width topo in
          let predicted = Projection.predicted_stalls_per_token ~w ~t:tt ~domains in
          if predicted <= 0. then 1.
          else
            Float.min max_scale
              (Float.max min_scale
                 (float_of_int stalls /. float_of_int tokens /. predicted))
        end
      end

let plan ?widths t cal ~shard ~domains =
  let stall_scale = live_stall_scale t ~shard ~domains in
  Projection.tune ?widths ~stall_scale cal ~domains

let retune ?policy ?widths t cal ~shard ~domains =
  let w, tt = plan ?widths t cal ~shard ~domains in
  let cur = Core.shard_topology t shard in
  if Topology.input_width cur = w && Topology.output_width cur = tt then
    Ok `Unchanged
  else
    match resize ?policy t ~shard (Counting.network ~w ~t:tt) with
    | Ok () -> Ok (`Resized (w, tt))
    | Error e -> Error e

(* ------------------------------------------------------------------ *)
(* Reporting. *)

type shard_info = {
  id : int;
  width : int;
  out_width : int;
  gen : int;
  value : int;
}

let shard_info t sid =
  let topo = Core.shard_topology t sid in
  {
    id = sid;
    width = Topology.input_width topo;
    out_width = Topology.output_width topo;
    gen = Core.shard_gen t sid;
    value = Core.shard_value t sid;
  }

let shard_infos t = List.init (Core.shard_count t) (shard_info t)

let report_json t =
  let shards =
    String.concat ",\n    "
      (List.map
         (fun i ->
           Printf.sprintf
             "{ \"id\": %d, \"w\": %d, \"t\": %d, \"gen\": %d, \"value\": %d }"
             i.id i.width i.out_width i.gen i.value)
         (shard_infos t))
  in
  Printf.sprintf
    "{\n\"fabric\": { \"shards\": %d, \"value\": %d, \"closed\": %b },\n\
     \"shard\": [\n    %s\n  ],\n\"service\": [\n%s\n]\n}"
    (Core.shard_count t) (Core.read t) (Core.closed t) shards
    (String.concat ",\n"
       (List.init (Core.shard_count t) (fun sid ->
            Svc.report_json (Core.shard_service t sid))))

(* ------------------------------------------------------------------ *)
(* Backend profiles: exact fabric-backed counting for billing-grade
   keys, sketch lanes for high-cardinality telemetry, with the key
   class deciding the route and the telemetry lanes addressed through
   the same consistent-hash ring the shards use. *)

module Sketch_backend = Cn_sketch.Backend
module Hll = Cn_sketch.Hll
module Sparse = Cn_sketch.Sparse
module SC = Cn_runtime.Shared_counter

type key_class = Billing | Telemetry

type profiled = {
  counter : SC.t;
  billing_value : unit -> int;
  telemetry_estimate : unit -> float;
  telemetry_memory_bytes : unit -> int;
  telemetry_lanes : int;
}

let profiled_counter ?(backend = Svc.Hll { precision = 12 }) ?(lanes = 4)
    ?vnodes ~classify t =
  if lanes < 1 then invalid_arg "Fabric.profiled_counter: lanes must be positive";
  let module A = Cn_runtime.Atomics.Real in
  (* Billing tier: one exact fabric session per pid, pooled with the
     same lock-free-fast-path / double-read-miss-path discipline as
     Service.shared_counter.  The session key is the pid, so a billing
     key stays pinned to its shard across rescales. *)
  let pool = A.make [||] in
  let lock =
    (Mutex.create
    [@atomlint.allow
      "growth-path-only lock: taken once per high-water billing pid, \
       never on the operation fast path, which reads the atomic pool \
       snapshot"])
      ()
  in
  let session_for pid =
    let p = A.get pool in
    if pid < Array.length p then p.(pid)
    else begin
      (Mutex.lock [@atomlint.allow "growth path, see profiled_counter"]) lock;
      let p = A.get pool in
      let q =
        if pid < Array.length p then p
        else begin
          let n = max (pid + 1) (max 1 (2 * Array.length p)) in
          let q =
            Array.init n (fun i ->
                if i < Array.length p then p.(i)
                else Core.session ~key:i t)
          in
          A.set pool q;
          q
        end
      in
      (Mutex.unlock [@atomlint.allow "growth path, see profiled_counter"]) lock;
      q.(pid)
    end
  in
  let rec billing_op f ~pid =
    match f (session_for pid) with
    | Ok v -> v
    | Error Core.Overloaded ->
        Domain.cpu_relax ();
        billing_op f ~pid
    | Error Core.Closed -> failwith "Fabric.profiled_counter: fabric is closed"
  in
  (* Telemetry tier: [lanes] independent sketches behind their own
     consistent-hash ring, so one hot lane never serializes the rest
     and a lane count change (a future knob) would remap only 1/(n+1)
     of the key space. *)
  let ring = Router.make ?vnodes (List.init lanes (fun i -> i)) in
  let lane_counters, telemetry_estimate, telemetry_memory_bytes =
    match backend with
    | Svc.Exact ->
        invalid_arg
          "Fabric.profiled_counter: the telemetry backend must be a sketch \
           tier (hll or sparse); billing-grade keys already get the exact \
           tier via classify"
    | Svc.Hll { precision } ->
        let ls =
          (* Disjoint key residue classes per lane: without them two
             lanes' mints collide and the union undercounts. *)
          Array.init lanes (fun i ->
              Sketch_backend.hll ~precision ~lane:(i, lanes) ())
        in
        let union_all (pick : Sketch_backend.hll -> Hll.t) =
          let u = pick ls.(0) in
          Array.fold_left
            (fun acc l -> Hll.union acc (pick l))
            u
            (Array.sub ls 1 (lanes - 1))
        in
        ( Array.map (fun (l : Sketch_backend.hll) -> l.Sketch_backend.counter) ls,
          (fun () ->
            Hll.cardinality (union_all (fun l -> l.Sketch_backend.incs))
            -. Hll.cardinality (union_all (fun l -> l.Sketch_backend.decs))),
          fun () ->
            Array.fold_left
              (fun acc (l : Sketch_backend.hll) ->
                acc
                + Hll.memory_bytes l.Sketch_backend.incs
                + Hll.memory_bytes l.Sketch_backend.decs)
              0 ls )
    | Svc.Sparse { counters; degree } ->
        let ls =
          Array.init lanes (fun _ -> Sketch_backend.sparse ~counters ~degree ())
        in
        ( Array.map (fun l -> l.Sketch_backend.counter) ls,
          (fun () ->
            float_of_int
              (Array.fold_left
                 (fun acc l -> acc + Sparse.total l.Sketch_backend.sketch)
                 0 ls)),
          fun () ->
            Array.fold_left
              (fun acc l -> acc + Sparse.memory_bytes l.Sketch_backend.sketch)
              0 ls )
  in
  let telemetry f ~pid = f lane_counters.(Router.route ring pid) ~pid in
  let next ~pid =
    match classify pid with
    | Billing -> billing_op Core.increment ~pid
    | Telemetry -> telemetry SC.next ~pid
  in
  let prev ~pid =
    match classify pid with
    | Billing -> billing_op Core.decrement ~pid
    | Telemetry -> telemetry SC.prev ~pid
  in
  {
    counter = SC.custom ~name:"profiled" ~next ~prev ();
    billing_value = (fun () -> Core.read t);
    telemetry_estimate;
    telemetry_memory_bytes;
    telemetry_lanes = lanes;
  }
