(* The production fabric: Fabric_core's protocol over the real atomics
   and the real combining Service, with two policies the core functor
   keeps abstract filled in concretely:

   - certification: every topology — initial shards, hot-resize
     candidates, grow targets — runs the Cn_lint seven-pass pipeline
     with expectation [Counting] before it may serve traffic; a
     certificate that is not ok, or whose evidence is a refutation, is
     a hard abort (the resize returns [Cert_rejected] and nothing
     changed);
   - tuning: the predicted-best per-shard (w, t) comes from
     [Cn_analysis.Projection.tune] (Theorem 6.7's calibrated contention
     model), corrected by the live per-layer stall profile when the
     shard's runtime records one (Cas mode with metrics on). *)

module Topology = Cn_network.Topology
module Counting = Cn_core.Counting
module RT = Cn_runtime.Network_runtime
module Metrics = Cn_runtime.Metrics
module V = Cn_runtime.Validator
module Svc = Cn_service.Service
module Projection = Cn_analysis.Projection
module Cert = Cn_lint.Cert
module Sequence = Cn_sequence.Sequence

(* Service, extended with the one accessor the fabric's accounting
   needs: the logical counter value behind a service (net tokens
   handed out, from the runtime's assignment cells). *)
module Service_ext = struct
  include Svc

  let net_count svc = Sequence.sum (RT.exit_distribution (Svc.runtime svc))
end

module Core = Fabric_core.Make (Cn_runtime.Atomics.Real) (Service_ext)
include Core

(* ------------------------------------------------------------------ *)
(* Certification. *)

let certificate ?(exhaustive_budget = 2_000) net =
  let w = Topology.input_width net and t = Topology.output_width net in
  (* When the dimensions are a legal C(w,t) pair, rebuild the trusted
     construction as the structural reference: fabric topologies built
     by [Counting.network] then certify By_construction, and anything
     else must earn its evidence from the analytic passes. *)
  let reference =
    if Counting.valid ~w ~t then
      Some (Counting.network ~w ~t, "Busch-Mavronicolas Theorem 4.2, C(w,t)")
    else None
  in
  Cert.certify ?reference ~exhaustive_budget
    ~subject:(Printf.sprintf "fabric:C(%d,%d)" w t)
    ~expectation:Cert.Counting net

let certify_topology ?exhaustive_budget net =
  let cert = certificate ?exhaustive_budget net in
  let refuted =
    match cert.Cert.evidence with Cert.Refuted _ -> true | _ -> false
  in
  if Cert.ok cert && not refuted then Ok cert
  else Error (Format.asprintf "%a" Cert.pp_line cert)

(* ------------------------------------------------------------------ *)

let create ?mode ?layout ?(metrics = false) ?max_batch ?queue ?elim ?pipeline
    ?(validate = V.Strict) ?max_shards ?vnodes ?exhaustive_budget ~shards net =
  if shards < 1 then invalid_arg "Fabric.create: shards must be positive";
  let spawn topo =
    Svc.create ?mode ?layout ~metrics ?max_batch ?queue ?elim ?pipeline
      ~validate topo
  in
  let certify topo =
    match certify_topology ?exhaustive_budget topo with
    | Ok _ -> Ok ()
    | Error msg -> Error msg
  in
  Core.make ?max_shards ?vnodes ~validate ~spawn ~certify
    (List.init shards (fun _ -> net))

(* ------------------------------------------------------------------ *)
(* Auto-tuning: analytic prediction, corrected by live stall counters. *)

let live_stall_scale t ~shard ~domains =
  let svc = Core.shard_service t shard in
  match RT.metrics (Svc.runtime svc) with
  | None -> 1.
  | Some m ->
      let layers = Svc.layers svc in
      if Array.length layers = 0 then 1.
      else begin
        let stalls =
          Array.fold_left ( + ) 0 (Metrics.layer_stalls m ~layers)
        in
        let snap = Metrics.snapshot m in
        let tokens = snap.Metrics.tokens + snap.Metrics.antitokens in
        if stalls = 0 || tokens = 0 then 1.
        else begin
          let topo = Core.shard_topology t shard in
          let w = Topology.input_width topo
          and tt = Topology.output_width topo in
          let predicted = Projection.predicted_stalls_per_token ~w ~t:tt ~domains in
          if predicted <= 0. then 1.
          else
            (* clamp the correction: one noisy profile must not be able
               to swing the tuner by more than 4x in either direction *)
            Float.min 4. (Float.max 0.25 (float_of_int stalls /. float_of_int tokens /. predicted))
        end
      end

let plan ?widths t cal ~shard ~domains =
  let stall_scale = live_stall_scale t ~shard ~domains in
  Projection.tune ?widths ~stall_scale cal ~domains

let retune ?policy ?widths t cal ~shard ~domains =
  let w, tt = plan ?widths t cal ~shard ~domains in
  let cur = Core.shard_topology t shard in
  if Topology.input_width cur = w && Topology.output_width cur = tt then
    Ok `Unchanged
  else
    match resize ?policy t ~shard (Counting.network ~w ~t:tt) with
    | Ok () -> Ok (`Resized (w, tt))
    | Error e -> Error e

(* ------------------------------------------------------------------ *)
(* Reporting. *)

type shard_info = {
  id : int;
  width : int;
  out_width : int;
  gen : int;
  value : int;
}

let shard_info t sid =
  let topo = Core.shard_topology t sid in
  {
    id = sid;
    width = Topology.input_width topo;
    out_width = Topology.output_width topo;
    gen = Core.shard_gen t sid;
    value = Core.shard_value t sid;
  }

let shard_infos t = List.init (Core.shard_count t) (shard_info t)

let report_json t =
  let shards =
    String.concat ",\n    "
      (List.map
         (fun i ->
           Printf.sprintf
             "{ \"id\": %d, \"w\": %d, \"t\": %d, \"gen\": %d, \"value\": %d }"
             i.id i.width i.out_width i.gen i.value)
         (shard_infos t))
  in
  Printf.sprintf
    "{\n\"fabric\": { \"shards\": %d, \"value\": %d, \"closed\": %b },\n\
     \"shard\": [\n    %s\n  ],\n\"service\": [\n%s\n]\n}"
    (Core.shard_count t) (Core.read t) (Core.closed t) shards
    (String.concat ",\n"
       (List.init (Core.shard_count t) (fun sid ->
            Svc.report_json (Core.shard_service t sid))))
