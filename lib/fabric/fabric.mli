(** The elastic sharded counter fabric — the production instantiation
    of {!Fabric_core.Make} over {!Cn_runtime.Atomics.Real} and the
    combining {!Cn_service.Service}.

    A fabric owns N independently compiled [C(w,t)] service instances
    (shards), routes sessions to shards through a consistent-hash ring
    ({!Router} — stable under shard-count changes), merges the shard
    counters into a linearizable-at-quiescence global {!read} via a
    second-level combining pass, and can {b hot-resize} any shard:
    drain it through the {!Cn_runtime.Validator.quiescent_runtime}
    boundary, park in-flight operations, swap in a freshly compiled
    topology, and replay the parked work — losing no tokens and
    duplicating no values (the shard's value stream continues from a
    [base] offset folded at the validated quiescence point).

    Every topology the fabric ever serves — initial shards, resize
    candidates, grow targets — is first certified by the {!Cn_lint}
    eight-pass pipeline with expectation [Counting]; a rejected
    certificate aborts the operation before any state changes.

    The per-shard [(w, t)] choice can be auto-tuned:
    {!Cn_analysis.Projection.tune} evaluates Theorem 6.7's calibrated
    contention model over the candidate grid (pinning [t = w·lg w] per
    width), and {!plan} corrects the prediction with the shard's live
    {!Cn_runtime.Metrics} stall profile when one is recorded.

    The protocol body lives in {!Fabric_core.Make} and is model-checked
    by [Cn_check] over instrumented atomics ([make check-races]); this
    module adds only the concrete spawn/certify/tune policies. *)

include
  Fabric_core.S
    with type svc = Cn_service.Service.t
     and type topo_key = Cn_network.Topology.t

val create :
  ?mode:Cn_runtime.Network_runtime.mode ->
  ?layout:Cn_runtime.Network_runtime.layout ->
  ?metrics:bool ->
  ?max_batch:int ->
  ?queue:int ->
  ?elim:bool ->
  ?pipeline:bool ->
  ?validate:Cn_runtime.Validator.policy ->
  ?max_shards:int ->
  ?vnodes:int ->
  ?exhaustive_budget:int ->
  shards:int ->
  Cn_network.Topology.t ->
  t
(** [create ~shards net] certifies [net], then builds [shards]
    identical service shards over it.  The service knobs ([?mode],
    [?layout], [?metrics], [?max_batch], [?queue], [?elim],
    [?pipeline], [?validate]) pass through to
    {!Cn_service.Service.create} for every spawned shard — including
    the ones hot-resize swaps in later.  [?exhaustive_budget] (default
    [2_000]) caps the certifier's bounded-exhaustive pass per topology.
    @raise Rejected if [net] fails certification.
    @raise Invalid_argument if [shards < 1] or [shards > max_shards]. *)

val certificate : ?exhaustive_budget:int -> Cn_network.Topology.t -> Cn_lint.Cert.t
(** The certificate the fabric's gate evaluates: the full
    {!Cn_lint.Cert.certify} pipeline with expectation [Counting],
    using a rebuilt [C(w,t)] as structural reference when the
    dimensions are a legal pair. *)

val certify_topology :
  ?exhaustive_budget:int -> Cn_network.Topology.t -> (Cn_lint.Cert.t, string) result
(** The gate itself: [Ok cert] when the certificate is clean and its
    evidence is not a refutation, [Error summary] otherwise — the
    string is what {!resize} wraps in [Cert_rejected]. *)

(** {2 Auto-tuning} *)

val min_profile_tokens : int
(** [1024] — the fewest crossings a shard must have recorded before
    {!live_stall_scale} trusts its live profile.  Below this the
    stalls/token ratio is sampling noise (a cold shard's first few
    crossings used to pin the scale at a clamp edge and let {!retune}
    pick a degenerate [(w, t)]); the tuner uses the pure analytic
    model instead. *)

val live_stall_scale : t -> shard:int -> domains:int -> float
(** Ratio of the shard's measured stalls/token (typed
    {!Cn_runtime.Metrics.layer_stalls} counters — no JSON re-parsing)
    to the analytic prediction at the shard's current dimensions,
    clamped to [[0.25, 4]].  [1.] when the shard records no stalls
    (Faa mode, metrics off, or an idle shard) or fewer than
    {!min_profile_tokens} crossings (the cold-start floor). *)

val plan :
  ?widths:int list ->
  t ->
  Cn_analysis.Projection.calibration ->
  shard:int ->
  domains:int ->
  int * int
(** Predicted-best [(w, t)] for one shard at the given concurrency:
    {!Cn_analysis.Projection.tune} scaled by {!live_stall_scale}. *)

val retune :
  ?policy:Cn_runtime.Validator.policy ->
  ?widths:int list ->
  t ->
  Cn_analysis.Projection.calibration ->
  shard:int ->
  domains:int ->
  ([ `Resized of int * int | `Unchanged ], resize_error) result
(** [retune t cal ~shard ~domains] plans and, when the prediction
    differs from the shard's current dimensions, hot-resizes the shard
    to the planned [C(w,t)] (certified first, like every resize). *)

(** {2 Backend profiles}

    Per-key-class accuracy tiers over one counter surface: billing-grade
    keys must land on the exact, certified, conservation-checked fabric;
    high-cardinality telemetry keys trade bounded error for bounded
    memory on {!Cn_sketch} lanes.  The caller classifies; the profile
    routes. *)

type key_class = Billing | Telemetry

type profiled = {
  counter : Cn_runtime.Shared_counter.t;
      (** The routed front: [next]/[prev ~pid] dispatch on
          [classify pid] — billing keys run one exact fabric operation
          on a per-pid session (pinned to its shard by key, retried
          through [Overloaded], [Failure] on a closed fabric);
          telemetry keys hit the sketch lane their hash owns. *)
  billing_value : unit -> int;
      (** The fabric's global {!read} — exact at quiescence. *)
  telemetry_estimate : unit -> float;
      (** The telemetry tier's global estimate: for HLL lanes the
          union-merged distinct count (increments minus decrements);
          for sparse lanes the exact global net tally
          ({!Cn_sketch.Sparse.total} summed across lanes). *)
  telemetry_memory_bytes : unit -> int;
      (** Resident bytes across every telemetry lane's sketch state. *)
  telemetry_lanes : int;
}

val profiled_counter :
  ?backend:Cn_service.Service.backend ->
  ?lanes:int ->
  ?vnodes:int ->
  classify:(int -> key_class) ->
  t ->
  profiled
(** [profiled_counter ~classify t] builds the two-tier counter over
    fabric [t].  [?backend] (default [Hll { precision = 12 }]) picks
    the telemetry sketch; [?lanes] (default [4]) independent sketches
    sit behind their own consistent-hash {!Router} ring ([?vnodes]),
    so hot telemetry keys spread instead of serializing on one sketch
    and a future lane-count change would remap only [1/(n+1)] of the
    key space.  Billing sessions are pooled per pid (lock-free fast
    path, double-read growth path — the {!Cn_service.Service.shared_counter}
    discipline).
    @raise Invalid_argument if [lanes < 1] or [?backend] is [Exact]
    (the exact tier is what [classify = Billing] already selects). *)

(** {2 Reporting} *)

type shard_info = {
  id : int;
  width : int;  (** input width [w] of the shard's current topology *)
  out_width : int;  (** output width [t] *)
  gen : int;  (** resize generation *)
  value : int;  (** the shard's logical counter value, [base + net] *)
}

val shard_info : t -> int -> shard_info
val shard_infos : t -> shard_info list

val report_json : t -> string
(** Fabric summary (shard table, global value) plus every shard's
    {!Cn_service.Service.report_json}, as one JSON document. *)
