(* The elastic shard-fabric protocol, factored out as a functor over
   its atomic operations and the service module it shards — the same
   pattern as [Service_core.Make], and for the same reason: [Fabric]
   instantiates it with the real atomics and the production [Service],
   the race checker instantiates it with instrumented atomics and
   model services, and every interleaving the checker explores
   exercises the exact hot-resize protocol production runs.

   Protocol summary (the invariants the checker scenarios pin):

   - routing: an operation reads the published router, resolves its
     shard, and re-resolves from scratch whenever it loses a race with
     a resize — it never holds a stale shard across a retry;
   - hot-resize: certify first (a rejected certificate aborts with no
     state change), then CAS the shard [Open -> Resizing] so latecomers
     park, shut the old service down through the Validator quiescence
     boundary, fold its net count into the shard's [base] offset, swap
     in the freshly spawned service, reopen, and replay every parked
     cell exactly once.  An operation racing the resize either
     completes on the old service before its validation point (the
     Service_core guarantee) or observes [Closed], retries, and parks;
   - accounting: a shard's logical value is [base + net(svc)].  The
     fold at the swap point keeps the sum invariant, so values handed
     out after a resize continue the shard's stream with no duplicates
     and the global read never observes a discontinuity.  A shrink
     publishes retirement the same way: a single atomic store replaces
     the live shard with an equal-valued tombstone carrying its frozen
     net (and its generation, which a later grow continues), so the
     global read is conserved through every rescale. *)

module V = Cn_runtime.Validator
module Topology = Cn_network.Topology

module type SERVICE = sig
  type t
  type session
  type op = Inc | Dec
  type error = Overloaded | Closed

  val session : ?wire:int -> t -> session
  val increment : session -> (int, error) result
  val decrement : session -> (int, error) result
  val lifecycle : t -> [ `Running | `Draining | `Stopped ]
  val drain : ?policy:V.policy -> t -> V.report
  val shutdown : ?policy:V.policy -> t -> V.report

  val net_count : t -> int
  (** Net tokens handed out so far (tokens minus antitokens, from the
      runtime's assignment cells).  Exact at quiescence — the fabric
      only folds it into [base] after [shutdown]'s validation point. *)
end

module type S = sig
  type svc
  type topo_key
  type t
  type session
  type op = Inc | Dec
  type error = Overloaded | Closed

  type resize_error =
    | Cert_rejected of string
    | Busy
    | Bad_shard
    | Fabric_closed

  exception Rejected of string

  val make :
    ?max_shards:int ->
    ?vnodes:int ->
    ?validate:V.policy ->
    spawn:(topo_key -> svc) ->
    certify:(topo_key -> (unit, string) result) ->
    topo_key list ->
    t

  val session : ?key:int -> t -> session
  val session_key : session -> int
  val increment : session -> (int, error) result
  val decrement : session -> (int, error) result
  val read : t -> int
  val shard_count : t -> int
  val max_shards : t -> int
  val route : t -> int -> int
  val shard_value : t -> int -> int
  val shard_gen : t -> int -> int
  val shard_topology : t -> int -> topo_key
  val shard_service : t -> int -> svc
  val resize : ?policy:V.policy -> t -> shard:int -> topo_key -> (unit, resize_error) result
  val set_shard_count :
    ?policy:V.policy -> ?topo:topo_key -> t -> int -> (unit, resize_error) result
  val drain : ?policy:V.policy -> t -> V.report
  val shutdown : ?policy:V.policy -> t -> V.report
  val closed : t -> bool
end

module Make (A : Cn_runtime.Atomics.S) (S : SERVICE) :
  S with type svc = S.t and type topo_key = Topology.t = struct
  type svc = S.t
  type topo_key = Topology.t
  type op = Inc | Dec
  type error = Overloaded | Closed

  type resize_error =
    | Cert_rejected of string
    | Busy
    | Bad_shard
    | Fabric_closed

  exception Rejected of string

  type shard = { svc : S.t; topo : Topology.t; base : int; gen : int }

  (* A slot's whole accounting state is one atomic word, so shrink can
     publish (service removed + net count preserved) in a single store:
     [Live] carries the serving shard, [Tomb] carries the retired
     shard's folded net count — and its last generation, so a later
     grow re-creates the slot at [gen + 1] and a session's cached
     [(shard, gen)] key can never alias across a retire/respawn (the
     ABA that would otherwise pin a stale session to a dead service).
     [Empty] is a slot that never served. *)
  type slot = Live of shard | Tomb of { net : int; gen : int } | Empty

  (* A parked operation: routed to a shard mid-resize, waiting for the
     resizer to replay it on the swapped-in service.  [value]/[failed]
     are plain mutable fields published through the [done_] atomic
     (write fields, then set the flag — the same release/acquire cell
     idiom as Service_core's submission slots). *)
  type pending = {
    kind : op;
    key : int;
    mutable value : int;
    mutable failed : bool;
    done_ : int A.t;
  }

  type park = Accepting of pending list | Sealed

  (* [Retired] means the slot is not serving (removed by a shrink, or
     never spawned); the router never targets a retired shard, so an
     operation that observes one re-reads the router.  A later grow may
     reopen the slot, continuing its tombstoned count and generation. *)
  type shard_state = Open | Resizing | Retired

  type t = {
    slots : slot A.t array;
    states : shard_state A.t array;
    parked : park A.t array;
    router : Router.t A.t;
    count_ : int A.t;
    closed_ : bool A.t;
    scaling : bool A.t; (* set_shard_count mutual exclusion *)
    session_ctr : int A.t;
    (* flat-combining global read: one collector sweeps, concurrent
       readers adopt any sweep that started after they arrived *)
    read_owner : int A.t;
    read_epoch : int A.t;
    read_done : (int * int) A.t; (* (sweep id, collected value) *)
    spawn : Topology.t -> S.t;
    certify : Topology.t -> (unit, string) result;
    validate : V.policy;
    vnodes : int;
  }

  type session = {
    fab : t;
    key : int;
    (* single-owner cache of the per-shard service session, keyed by
       (shard, generation) so a resize invalidates it *)
    mutable cache : (int * int * S.session) option;
  }

  let make ?(max_shards = 16) ?(vnodes = Router.default_vnodes)
      ?(validate = V.Strict) ~spawn ~certify topos =
    let n = List.length topos in
    if n < 1 then invalid_arg "Fabric_core.make: at least one shard";
    if n > max_shards then invalid_arg "Fabric_core.make: more shards than max_shards";
    List.iter
      (fun topo ->
        match certify topo with
        | Ok () -> ()
        | Error msg -> raise (Rejected msg))
      topos;
    let slots = Array.init max_shards (fun _ -> A.make Empty) in
    let states = Array.init max_shards (fun _ -> A.make Retired) in
    let parked = Array.init max_shards (fun _ -> A.make Sealed) in
    List.iteri
      (fun sid topo ->
        A.set slots.(sid) (Live { svc = spawn topo; topo; base = 0; gen = 0 });
        A.set states.(sid) Open)
      topos;
    {
      slots;
      states;
      parked;
      router = A.make (Router.make ~vnodes (List.init n Fun.id));
      count_ = A.make n;
      closed_ = A.make false;
      scaling = A.make false;
      session_ctr = A.make 0;
      read_owner = A.make 0;
      read_epoch = A.make 1;
      read_done = A.make (0, 0);
      spawn;
      certify;
      validate;
      vnodes;
    }

  let closed t = A.get t.closed_
  let shard_count t = A.get t.count_
  let max_shards t = Array.length t.slots
  let route t key = Router.route (A.get t.router) key

  let session ?key t =
    let key =
      match key with Some k -> k | None -> A.fetch_and_add t.session_ctr 1
    in
    { fab = t; key; cache = None }

  let session_key s = s.key

  let shard_slot t sid =
    if sid < 0 || sid >= Array.length t.slots then
      invalid_arg "Fabric_core: shard out of range";
    match A.get t.slots.(sid) with
    | Live sh -> sh
    | Tomb _ | Empty -> invalid_arg "Fabric_core: shard not live"

  let shard_value t sid =
    let sh = shard_slot t sid in
    sh.base + S.net_count sh.svc

  let shard_gen t sid = (shard_slot t sid).gen
  let shard_topology t sid = (shard_slot t sid).topo
  let shard_service t sid = (shard_slot t sid).svc

  (* ---------------------------------------------------------------- *)
  (* The operation loop. *)

  let rec exec sess op =
    let fab = sess.fab in
    if A.get fab.closed_ then Error Closed
    else begin
      let sid = Router.route (A.get fab.router) sess.key in
      match A.get fab.states.(sid) with
      | Retired ->
          (* the router that sent us here is already unpublished: the
             narrower ring is published before any shard retires, so an
             immediate re-read resolves to a live shard (no relax — the
             write we need has already landed) *)
          exec sess op
      | Resizing -> park sess sid op
      | Open -> (
          match A.get fab.slots.(sid) with
          | Tomb _ | Empty ->
              (* shrink window: the slot tombstones before the state
                 flips to Retired — the state we read above is stale *)
              A.relax ();
              exec sess op
          | Live sh ->
              let ss =
                match sess.cache with
                | Some (i, g, ss) when i = sid && g = sh.gen -> ss
                | _ ->
                    let ss = S.session sh.svc in
                    sess.cache <- Some (sid, sh.gen, ss);
                    ss
              in
              let r =
                match op with
                | Inc -> S.increment ss
                | Dec -> S.decrement ss
              in
              (match r with
              | Ok v -> Ok (sh.base + v)
              | Error S.Overloaded -> Error Overloaded
              | Error S.Closed ->
                  (* the shard's service is draining, resizing or shut
                     down under us; the fabric-level state says which —
                     go around (a pure retry against unchanged state
                     would fail again, so the relax is sound under the
                     instrumented scheduler too) *)
                  if A.get fab.closed_ then Error Closed
                  else begin
                    A.relax ();
                    exec sess op
                  end))
    end

  and park sess sid op =
    let fab = sess.fab in
    match A.get fab.parked.(sid) with
    | Sealed ->
        (* resize finished (or not yet accepting): resolve afresh *)
        A.relax ();
        exec sess op
    | Accepting l as cur ->
        let cell =
          { kind = op; key = sess.key; value = 0; failed = false; done_ = A.make 0 }
        in
        if A.compare_and_set fab.parked.(sid) cur (Accepting (cell :: l)) then begin
          let spins = ref 0 in
          while A.get cell.done_ = 0 do
            incr spins;
            if !spins < 64 then A.relax () else A.nap ()
          done;
          if cell.failed then Error Closed else Ok cell.value
        end
        else park sess sid op

  let increment s = exec s Inc
  let decrement s = exec s Dec

  (* ---------------------------------------------------------------- *)
  (* Hot resize: certify, seal, drain, swap, replay. *)

  (* Replay a parked cell through the normal routed path: on the
     common path it lands on the shard's swapped-in service; after a
     shrink it re-routes to the cell's new home shard.  [Overloaded]
     is retried (the caller already committed to waiting), [Closed]
     means the fabric itself closed — the caller gets the same refusal
     it would have gotten arriving a moment later. *)
  let rec replay_cell fab (cell : pending) =
    let sess = { fab; key = cell.key; cache = None } in
    match exec sess cell.kind with
    | Ok v ->
        cell.value <- v;
        A.set cell.done_ 1
    | Error Overloaded ->
        A.nap ();
        replay_cell fab cell
    | Error Closed ->
        cell.failed <- true;
        A.set cell.done_ 1

  let seal_parked fab sid =
    let rec seal () =
      match A.get fab.parked.(sid) with
      | Sealed -> []
      | Accepting l as cur ->
          if A.compare_and_set fab.parked.(sid) cur Sealed then List.rev l
          else seal ()
    in
    seal ()

  let replay fab sid = List.iter (replay_cell fab) (seal_parked fab sid)

  (* Fail-stop path: seal the park list and refuse every parked caller
     with [Closed] — a parked cell's owner spins on [done_] with no
     escape hatch, so an exception that skips the replay must not leave
     the list armed. *)
  let abort_parked fab sid =
    List.iter
      (fun (cell : pending) ->
        cell.failed <- true;
        A.set cell.done_ 1)
      (seal_parked fab sid)

  (* Arm the park buffer for a freshly claimed shard.  Strictly a CAS
     from [Sealed]: the previous resize of this slot reopens the shard
     {e before} sealing and replaying its park list, so a back-to-back
     claimant can get here while that list is still [Accepting] — a
     blind store would overwrite it and silently drop the parked
     operations (their owners would spin on [done_] forever).  Waiting
     out the seal is live: every prior owner seals, either in [replay]
     on success or in [abort_parked] on the fail-stop path. *)
  let rec arm_parked fab sid =
    if not (A.compare_and_set fab.parked.(sid) Sealed (Accepting [])) then begin
      A.relax ();
      arm_parked fab sid
    end

  (* Shut one shard's service down at [policy] and fold its net count.
     A Strict validation failure is an integrity loss, not a recoverable
     condition: the fabric fail-stops (every later operation refuses
     with [Closed]), the shard's parked callers are refused rather than
     left spinning, and the exception propagates to the resizer. *)
  let retire_service fab sid (sh : shard) policy =
    match S.shutdown ~policy sh.svc with
    | report -> (report, sh.base + S.net_count sh.svc)
    | exception e ->
        A.set fab.closed_ true;
        abort_parked fab sid;
        raise e

  let resize ?policy fab ~shard topo =
    if shard < 0 || shard >= Array.length fab.slots then Error Bad_shard
    else if A.get fab.closed_ then Error Fabric_closed
    else
      match fab.certify topo with
      | Error msg -> Error (Cert_rejected msg)
      | Ok () ->
          if not (A.compare_and_set fab.states.(shard) Open Resizing) then
            Error Busy
          else begin
            (* latecomers observing [Resizing] park from here on *)
            arm_parked fab shard;
            let old =
              match A.get fab.slots.(shard) with
              | Live sh -> sh
              | Tomb _ | Empty -> assert false
            in
            let policy = Option.value policy ~default:fab.validate in
            let _report, base = retire_service fab shard old policy in
            let svc = fab.spawn topo in
            A.set fab.slots.(shard) (Live { svc; topo; base; gen = old.gen + 1 });
            A.set fab.states.(shard) Open;
            replay fab shard;
            Ok ()
          end

  let rec claim fab sid =
    (* used by shrink/shutdown: wait out a concurrent resize *)
    if A.get fab.closed_ then false
    else if A.compare_and_set fab.states.(sid) Open Resizing then true
    else begin
      A.relax ();
      claim fab sid
    end

  let set_shard_count ?policy ?topo fab n =
    if n < 1 || n > Array.length fab.slots then Error Bad_shard
    else if A.get fab.closed_ then Error Fabric_closed
    else if not (A.compare_and_set fab.scaling false true) then Error Busy
    else begin
      let finish r =
        A.set fab.scaling false;
        r
      in
      let cur = A.get fab.count_ in
      if n = cur then finish (Ok ())
      else if n > cur then begin
        (* grow: certify and install the new shards, then publish the
           wider router — no key routes to a shard before it serves *)
        let topo =
          match topo with
          | Some t -> t
          | None -> (
              match A.get fab.slots.(0) with
              | Live sh -> sh.topo
              | Tomb _ | Empty -> assert false)
        in
        match fab.certify topo with
        | Error msg -> finish (Error (Cert_rejected msg))
        | Ok () ->
            for sid = cur to n - 1 do
              (* a re-created slot continues the retired shard's stream:
                 its tombstoned net becomes the new [base] (one atomic
                 publish keeps [read] conserved) and its generation
                 stays monotonic, so no session cache keyed on the
                 pre-shrink (shard, gen) can alias the new service *)
              let base, gen =
                match A.get fab.slots.(sid) with
                | Tomb { net; gen } -> (net, gen + 1)
                | Empty -> (0, 0)
                | Live _ -> assert false
              in
              A.set fab.slots.(sid)
                (Live { svc = fab.spawn topo; topo; base; gen });
              A.set fab.parked.(sid) Sealed;
              A.set fab.states.(sid) Open
            done;
            A.set fab.router (Router.make ~vnodes:fab.vnodes (List.init n Fun.id));
            A.set fab.count_ n;
            finish (Ok ())
      end
      else begin
        (* shrink: publish the narrower router first so new arrivals
           avoid the doomed shards, then retire each one — parked
           stragglers replay through the new router *)
        A.set fab.router (Router.make ~vnodes:fab.vnodes (List.init n Fun.id));
        A.set fab.count_ n;
        let policy = Option.value policy ~default:fab.validate in
        for sid = n to cur - 1 do
          if claim fab sid then begin
            arm_parked fab sid;
            let sh =
              match A.get fab.slots.(sid) with
              | Live sh -> sh
              | Tomb _ | Empty -> assert false
            in
            let _report, net = retire_service fab sid sh policy in
            (* one atomic store retires the service and preserves its
               net count: a collect sweep sees either [Live] (whose net
               is frozen — the service is already shut down) or the
               equal-valued [Tomb], never an intermediate that counts
               the shard zero or twice *)
            A.set fab.slots.(sid) (Tomb { net; gen = sh.gen });
            A.set fab.states.(sid) Retired;
            replay fab sid
          end
        done;
        finish (if A.get fab.closed_ then Error Fabric_closed else Ok ())
      end
    end

  (* ---------------------------------------------------------------- *)
  (* Global read: a second-level combining pass.  One reader CASes
     itself collector, double-collects the shard counters until two
     sweeps agree, and publishes (sweep id, value); concurrent readers
     adopt any published sweep that {e started} after they arrived
     (sweep id strictly above the epoch they entered at), so every
     adopted value was collected inside the adopter's own interval.
     At quiescence a single sweep is exact — that is the linearizable
     read the tests pin; under churn the double-collect bounds the
     skew to in-flight resizes. *)

  let collect fab =
    (* one atomic read per slot: [Live] contributes [base + net] and a
       [Tomb] the retired shard's frozen net — the shrink publishes the
       transition as a single equal-valued store, so a sweep can never
       drop or double-count a shard mid-retirement *)
    let sum = ref 0 in
    Array.iter
      (fun slot ->
        match A.get slot with
        | Live sh -> sum := !sum + sh.base + S.net_count sh.svc
        | Tomb { net; _ } -> sum := !sum + net
        | Empty -> ())
      fab.slots;
    !sum

  let read fab =
    let e0 = A.get fab.read_epoch in
    let rec attempt () =
      let e, v = A.get fab.read_done in
      if e > e0 then v
      else if A.compare_and_set fab.read_owner 0 1 then begin
        let sweep = A.fetch_and_add fab.read_epoch 1 + 1 in
        let rec settle tries prev =
          let s = collect fab in
          if s = prev || tries = 0 then s else settle (tries - 1) s
        in
        let v = settle 8 (collect fab) in
        A.set fab.read_done (sweep, v);
        A.set fab.read_owner 0;
        v
      end
      else begin
        A.relax ();
        attempt ()
      end
    in
    attempt ()

  (* ---------------------------------------------------------------- *)
  (* Fabric-wide drain and shutdown. *)

  let merge_reports subject reports =
    {
      V.subject;
      checks =
        List.concat_map
          (fun (sid, (r : V.report)) ->
            List.map
              (fun (c : V.check) ->
                { c with V.name = Printf.sprintf "shard%d.%s" sid c.V.name })
              r.V.checks)
          reports;
    }

  let live_shards fab =
    let acc = ref [] in
    for sid = Array.length fab.slots - 1 downto 0 do
      match A.get fab.slots.(sid) with
      | Live sh -> acc := (sid, sh) :: !acc
      | Tomb _ | Empty -> ()
    done;
    !acc

  let drain ?policy fab =
    (* each shard's [S.drain] quiesces, validates and re-admits on its
       own; operations racing the admission flip retry through [exec] *)
    let policy = Option.value policy ~default:fab.validate in
    merge_reports
      (Printf.sprintf "fabric(%d shards)" (A.get fab.count_))
      (List.map
         (fun (sid, sh) -> (sid, S.drain ~policy sh.svc))
         (live_shards fab))

  let shutdown ?policy fab =
    let policy = Option.value policy ~default:fab.validate in
    A.set fab.closed_ true;
    let reports =
      List.filter_map
        (fun (sid, _) ->
          (* wait out any in-flight resize of this shard, then claim
             it terminally; its parked cells are replayed into the
             closed fabric and fail [Closed], exactly as if they had
             arrived after the stop *)
          let rec grab () =
            if A.compare_and_set fab.states.(sid) Open Resizing then true
            else
              match A.get fab.states.(sid) with
              | Retired -> false
              | _ ->
                  A.relax ();
                  grab ()
          in
          if not (grab ()) then None
          else
            match A.get fab.slots.(sid) with
            | Tomb _ | Empty -> None
            | Live sh ->
                let report =
                  try S.shutdown ~policy sh.svc
                  with e ->
                    (* same contract as [retire_service]: never leave a
                       parked caller spinning behind an exception *)
                    abort_parked fab sid;
                    raise e
                in
                replay fab sid;
                Some (sid, report))
        (live_shards fab)
    in
    merge_reports
      (Printf.sprintf "fabric(%d shards, stopped)" (A.get fab.count_))
      reports
end
