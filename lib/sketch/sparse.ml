module PA = Cn_runtime.Padded_atomic

type t = {
  k : int;
  m : int;
  bank : PA.t;
  salts : int array; (* per-edge hash salts, fixed at creation *)
}

let create ?(degree = 3) ?(padded = false) ~counters () =
  if degree < 1 then invalid_arg "Sparse.create: degree must be >= 1";
  if counters < degree then
    invalid_arg "Sparse.create: need at least [degree] counters";
  {
    k = degree;
    m = counters;
    bank = PA.make ~padded counters ~init:(fun _ -> 0);
    salts = Array.init degree (fun j -> Cn_runtime.Splitmix.mix (j + 1));
  }

let degree t = t.k
let counters t = t.m

(* The j-th edge of [key] starts at mix (key lxor salt_j) mod m and
   probes forward past any index already used by an earlier edge of
   the same key, so the k neighbours are always distinct (k-regular on
   the left, as the peeling argument needs). *)
let edges t key =
  let out = Array.make t.k 0 in
  for j = 0 to t.k - 1 do
    let idx = ref (Cn_runtime.Splitmix.mix (key lxor t.salts.(j)) mod t.m) in
    let rec clashes i = i < j && (out.(i) = !idx || clashes (i + 1)) in
    while clashes 0 do
      idx := (!idx + 1) mod t.m
    done;
    out.(j) <- !idx
  done;
  out

let add t key delta =
  let es = edges t key in
  for j = 0 to t.k - 1 do
    ignore (PA.fetch_and_add t.bank es.(j) delta)
  done

let estimate t key =
  let es = edges t key in
  let best = ref (PA.get t.bank es.(0)) in
  for j = 1 to t.k - 1 do
    let v = PA.get t.bank es.(j) in
    if v < !best then best := v
  done;
  !best

type value = { value : int; exact : bool }

let decode t keys =
  let keys = Array.of_list keys in
  let n = Array.length keys in
  let key_edges = Array.map (edges t) keys in
  (* Counter snapshot; decode is a quiescent read-side pass. *)
  let residual = Array.init t.m (PA.get t.bank) in
  let deg = Array.make t.m 0 in
  let incident = Array.make t.m [] in
  Array.iteri
    (fun ki es ->
      Array.iter
        (fun c ->
          deg.(c) <- deg.(c) + 1;
          incident.(c) <- ki :: incident.(c))
        es)
    key_edges;
  let resolved = Array.make n None in
  let stack = ref [] in
  Array.iteri (fun c d -> if d = 1 then stack := c :: !stack) deg;
  let peel ki v =
    resolved.(ki) <- Some v;
    Array.iter
      (fun c ->
        residual.(c) <- residual.(c) - v;
        deg.(c) <- deg.(c) - 1;
        if deg.(c) = 1 then stack := c :: !stack)
      key_edges.(ki)
  in
  let rec drain () =
    match !stack with
    | [] -> ()
    | c :: rest ->
        stack := rest;
        (* Degree may have dropped since the push — recheck. *)
        if deg.(c) = 1 then begin
          match List.find_opt (fun ki -> resolved.(ki) = None) incident.(c) with
          | Some ki -> peel ki residual.(c)
          | None -> ()
        end;
        drain ()
  in
  drain ();
  (* Survivors of the 2-core: min over *residual* counters — tighter
     than the raw estimate because every peeled key's contribution has
     already been subtracted, and still an upper bound for
     non-negative tallies. *)
  List.init n (fun ki ->
      match resolved.(ki) with
      | Some v -> (keys.(ki), { value = v; exact = true })
      | None ->
          let es = key_edges.(ki) in
          let best = ref residual.(es.(0)) in
          for j = 1 to t.k - 1 do
            if residual.(es.(j)) < !best then best := residual.(es.(j))
          done;
          (keys.(ki), { value = !best; exact = false }))

let total t =
  let sum = ref 0 in
  for i = 0 to t.m - 1 do
    sum := !sum + PA.get t.bank i
  done;
  !sum / t.k

let memory_bytes t = Obj.reachable_words (Obj.repr t) * (Sys.word_size / 8)
