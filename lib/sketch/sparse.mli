(** Sparse-graph per-key counters, after Lu–Montanari–Prabhakar
    ("Counter Braids" / "Detailed Network Measurements Using Sparse
    Graph Counters"): a [k]-left-regular bipartite graph between keys
    and a bank of [m] shared counters.  An update to a key
    fetch-and-adds the same delta into all [k] counters on its edge
    list — the hot path is FAA-only, no locks, no allocation, no CAS
    retries — and per-key values are recovered on the read side.

    Two read regimes:

    - {b below the load threshold} ([m] comfortably larger than
      [~1.23 * n] distinct keys at [k = 3]), the graph is peelable:
      {!decode} repeatedly resolves counters with exactly one
      unresolved incident key and subtracts, recovering every key's
      tally {e exactly} — the LMP sparse-recovery guarantee;
    - {b above it}, peeling stalls on the 2-core and the remaining
      keys degrade gracefully to the count-min-style upper bound
      [min] over their [k] counters (exact for keys whose counters
      happen to be collision-free, an overestimate otherwise).

    The memory story is the reverse of exactness: run with [m << n]
    and the sketch stores no keys at all — [m] boxed atomics versus a
    hash table of [n] bindings — which is where the >= 10x resident
    win over exact per-key counting comes from at telemetry
    cardinalities. *)

type t

val create : ?degree:int -> ?padded:bool -> counters:int -> unit -> t
(** [create ~counters ()] is a bank of [counters] zeroed shared
    counters.  [?degree] (default [3]) is [k], the edges per key;
    [?padded] (default [false]) puts each counter on its own cache
    line — worth it only when update throughput matters more than
    footprint.
    @raise Invalid_argument if [counters < degree] or [degree < 1]. *)

val degree : t -> int
val counters : t -> int

val edges : t -> int -> int array
(** The [k] distinct counter indices key [key] touches — deterministic
    (hashed through {!Cn_runtime.Splitmix.mix} with per-edge salts,
    collisions resolved by probing), exposed for tests and decode. *)

val add : t -> int -> int -> unit
(** [add t key delta] adds [delta] to every counter on [key]'s edge
    list.  FAA-only; safe and scalable from any domain. *)

val estimate : t -> int -> int
(** [min] over [key]'s counters: an upper bound on the key's tally
    when all deltas are non-negative; exact when no other key shares
    all of its smallest counter's traffic. *)

type value = { value : int; exact : bool }
(** [exact] means the peeling decode resolved the key structurally;
    [exact = false] means the value is the {!estimate} fallback. *)

val decode : t -> int list -> (int * value) list
(** [decode t keys] recovers per-key tallies for the given candidate
    key set by peeling: any counter incident to exactly one unresolved
    key yields that key's value exactly, its contribution is
    subtracted, and the process repeats until no degree-1 counter
    remains; survivors of the 2-core fall back to {!estimate} with
    [exact = false].  Reads a snapshot of the counters — call it at
    quiescence for exact results.  Keys must be distinct.  Below the
    peeling threshold every returned value has [exact = true]. *)

val total : t -> int
(** The net sum of all deltas ever added, across every key: each
    update lands in exactly [degree] counters, so the bank total
    divided by [degree] is the global tally — {e exact} at
    quiescence, whatever the per-key collision structure. *)

val memory_bytes : t -> int
(** Resident heap size of the sketch, via [Obj.reachable_words]. *)
