module SC = Cn_runtime.Shared_counter
module PA = Cn_runtime.Padded_atomic

type hll = { counter : SC.t; incs : Hll.t; decs : Hll.t }

let hll ?precision ?(slots = 64) ?(lane = (0, 1)) () =
  if slots <= 0 then invalid_arg "Backend.hll: slots must be positive";
  let li, ln = lane in
  if ln < 1 || li < 0 || li >= ln then
    invalid_arg "Backend.hll: lane must satisfy 0 <= index < count";
  let incs = Hll.create ?precision () in
  let decs = Hll.create ?precision () in
  let seqs = PA.make slots ~init:(fun _ -> 0) in
  (* Residue class [li mod ln] keeps keys disjoint across [ln] sibling
     instances, so union-merging their sketches counts every instance's
     mints — without it, two lanes' banks both start at zero and the
     union silently collapses same-slot mints from different lanes. *)
  let mint ~pid =
    let slot = pid mod slots in
    let seq = PA.fetch_and_add seqs slot 1 in
    ((((seq * slots) + slot) * ln) + li)
  in
  (* The hot path is mint + observe only — one slot FAA and a CAS-max
     that almost never retries.  Returning the ticket keeps the
     estimator's O(m) register scan off the operation path; estimates
     are read-side ([Hll.cardinality] on [incs]/[decs]). *)
  let next ~pid =
    let key = mint ~pid in
    Hll.add incs key;
    key
  in
  let prev ~pid =
    let key = mint ~pid in
    Hll.add decs key;
    key
  in
  { counter = SC.custom ~name:"hll" ~next ~prev (); incs; decs }

type sparse = { counter : SC.t; sketch : Sparse.t }

let sparse ?(counters = 4096) ?degree () =
  let sketch = Sparse.create ?degree ~counters () in
  let next ~pid =
    Sparse.add sketch pid 1;
    Sparse.estimate sketch pid
  in
  let prev ~pid =
    Sparse.add sketch pid (-1);
    Sparse.estimate sketch pid
  in
  { counter = SC.custom ~name:"sparse" ~next ~prev (); sketch }
