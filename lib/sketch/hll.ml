module PA = Cn_runtime.Padded_atomic

type t = { p : int; m : int; regs : PA.t }

(* mix yields 62 usable bits (the sign bit is masked off); the low [p]
   pick the register, the remaining [hash_bits - p] feed rho. *)
let hash_bits = 62

let create ?(precision = 12) () =
  if precision < 4 || precision > 16 then
    invalid_arg "Hll.create: precision must be in [4, 16]";
  let m = 1 lsl precision in
  (* Unpadded: registers are write-rare (CAS only when a new maximum
     appears, which is O(m log n) times over a whole stream), so false
     sharing costs nothing measurable and padding would multiply the
     footprint of a structure whose whole point is to be small. *)
  { p = precision; m; regs = PA.make ~padded:false m ~init:(fun _ -> 0) }

let precision t = t.p
let registers t = t.m

(* rho w = 1 + leading zeros of w within a [bits]-wide field; the
   all-zero field saturates at bits + 1. *)
let rho w ~bits =
  if w = 0 then bits + 1
  else begin
    let r = ref 1 in
    let top = 1 lsl (bits - 1) in
    let w = ref w in
    while !w land top = 0 do
      incr r;
      w := !w lsl 1
    done;
    !r
  end

let rec cas_max regs i v =
  let cur = PA.get regs i in
  if v > cur && not (PA.compare_and_set regs i cur v) then cas_max regs i v

let add t key =
  let h = Cn_runtime.Splitmix.mix key in
  let idx = h land (t.m - 1) in
  let w = h lsr t.p in
  cas_max t.regs idx (rho w ~bits:(hash_bits - t.p))

let alpha m =
  if m <= 16 then 0.673
  else if m <= 32 then 0.697
  else if m <= 64 then 0.709
  else 0.7213 /. (1. +. (1.079 /. float_of_int m))

let cardinality t =
  let m = float_of_int t.m in
  let sum = ref 0. and zeros = ref 0 in
  for i = 0 to t.m - 1 do
    let r = PA.get t.regs i in
    if r = 0 then incr zeros;
    sum := !sum +. (1. /. float_of_int (1 lsl r))
  done;
  let raw = alpha t.m *. m *. m /. !sum in
  (* Small-range (linear counting) correction.  The 2^62 hash space
     makes the large-range collision correction irrelevant at any
     cardinality this system can physically observe. *)
  if raw <= 2.5 *. m && !zeros > 0 then m *. log (m /. float_of_int !zeros)
  else raw

let union a b =
  if a.p <> b.p then invalid_arg "Hll.union: precision mismatch";
  let u = create ~precision:a.p () in
  for i = 0 to a.m - 1 do
    PA.set u.regs i (max (PA.get a.regs i) (PA.get b.regs i))
  done;
  u

let std_error t = 1.04 /. sqrt (float_of_int t.m)
let memory_bytes t = Obj.reachable_words (Obj.repr t) * (Sys.word_size / 8)
