(** HyperLogLog distinct counting over dense atomic registers.

    The standard Flajolet–Furic–Gandouet–Meunier estimator: a key is
    hashed through {!Cn_runtime.Splitmix.mix} (the same finalizer the
    fabric's router uses), the low [p] bits pick one of [m = 2^p]
    registers, and the register keeps the maximum over observed values
    of [rho] — one plus the number of leading zeros of the remaining
    [62 - p] hash bits.  The cardinality estimate is the bias-corrected
    harmonic mean [alpha_m * m^2 / sum_j 2^(-M[j])], switching to
    linear counting ([m * ln (m / V)], [V] = empty registers) in the
    small range where the raw estimator is biased.  Relative standard
    error is [~1.04 / sqrt m].

    Registers live in an unpadded {!Cn_runtime.Padded_atomic} bank and
    are advanced by compare-and-set maximum loops, so concurrent
    [add]s from any number of domains are safe and never lose a
    maximum; the trade is ~3 words per register instead of one byte,
    still a few hundred kilobytes at [p = 14] against megabytes for
    exact distinct counting.  {!memory_bytes} reports the honest
    resident size. *)

type t

val create : ?precision:int -> unit -> t
(** [create ()] is an empty sketch with [m = 2^precision] registers.
    [?precision] (default [12]) must be in [[4, 16]].
    @raise Invalid_argument outside that range. *)

val precision : t -> int

val registers : t -> int
(** [m], the register count. *)

val add : t -> int -> unit
(** [add t key] observes [key].  Idempotent: re-adding a key never
    changes the estimate.  Safe from any domain; lock-free (a CAS-max
    loop per observation, almost always zero retries). *)

val cardinality : t -> float
(** Estimated number of distinct keys observed.  Quiescently accurate;
    under concurrent [add]s it is a valid estimate of some prefix of
    the observations. *)

val union : t -> t -> t
(** [union a b] is a fresh sketch estimating [|A ∪ B|]: the
    register-wise maximum.  Commutative, associative, idempotent —
    the property the per-shard telemetry merge relies on.
    @raise Invalid_argument if precisions differ. *)

val std_error : t -> float
(** The theoretical relative standard error, [1.04 / sqrt m]. *)

val memory_bytes : t -> int
(** Resident heap size of the whole sketch (registers, padding, and
    spine), measured with [Obj.reachable_words]. *)
