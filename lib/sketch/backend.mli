(** Sketches adapted to the {!Cn_runtime.Shared_counter.Custom}
    extension point, so approximate backends slot into every layer
    that already speaks [Shared_counter] — the {!Cn_runtime.Harness},
    the bench rig, and the CLI's [--backend] switch.

    The semantic contract is deliberately weaker than the exact
    implementations': [next]/[prev] return {e estimates} of the
    running count, not a gap-free [0 .. m-1] sequence, in exchange for
    bounded memory at unbounded key cardinality.  Use them for
    telemetry-grade keys; billing-grade keys stay on the exact
    network-backed tier (see [Service.backend_counter] and
    [Fabric.profiled_counter]). *)

type hll = {
  counter : Cn_runtime.Shared_counter.t;
      (** [next ~pid] mints a globally unique key, observes it in
          {!incs}, and returns the key — a per-slot-monotone ticket,
          so the hot path stays one FAA plus a CAS-max (no [O(m)]
          estimator scan per operation).  [prev ~pid] does the same
          against {!decs}.  Estimates are read-side:
          [Hll.cardinality incs] for increments, minus
          [Hll.cardinality decs] for the net.  Safe from any domain. *)
  incs : Hll.t;
  decs : Hll.t;
}

val hll : ?precision:int -> ?slots:int -> ?lane:int * int -> unit -> hll
(** An HLL-backed distinct counter.  Unique keys are minted from a
    bank of [?slots] (default [64]) per-slot FAA sequences — caller
    [pid] picks slot [pid mod slots], and [key = seq * slots + slot]
    is unique across all slots — so the key-minting hot path contends
    only within a slot, like the service's session lanes.
    [?precision] is forwarded to {!Hll.create}.

    [?lane (i, n)] (default [(0, 1)]) places this instance's minted
    keys in residue class [i] of [n]: [key * n + i].  [n] sibling
    instances built with distinct indices mint globally disjoint keys,
    which is what lets {!Hll.union} over their sketches count every
    instance's observations — the contract the fabric's multi-lane
    telemetry merge relies on.
    @raise Invalid_argument unless [0 <= i < n] and [slots > 0]. *)

type sparse = {
  counter : Cn_runtime.Shared_counter.t;
      (** Per-flow tally keyed by [pid]: [next ~pid] adds [+1] to flow
          [pid] and returns its {!Sparse.estimate}; [prev ~pid] adds
          [-1]. *)
  sketch : Sparse.t;
}

val sparse : ?counters:int -> ?degree:int -> unit -> sparse
(** A sparse-graph per-flow counter.  [?counters] (default [4096]) and
    [?degree] are forwarded to {!Sparse.create}. *)
