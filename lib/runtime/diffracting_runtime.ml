module Params = Cn_core.Params

(* Prism slot states. *)
let empty = 0
let waiting = 1
let captured = 2

type node = {
  toggle : int Atomic.t;
  prism : int Atomic.t array;
}

type t = {
  width : int;
  depth : int;
  nodes : node array; (* heap layout: root 0, children of i at 2i+1, 2i+2 *)
  values : int Atomic.t array; (* per leaf *)
  patience : int;
  diffracted : int Atomic.t;
  toggled : int Atomic.t;
}

let rng_key =
  Domain.DLS.new_key (fun () ->
      Random.State.make [| (Domain.self () :> int); 0x9e3779b9 |])

let create ?(prism_width = 4) ?(patience = 64) ~width () =
  if not (Params.is_power_of_two width) || width < 2 then
    invalid_arg "Diffracting_runtime.create: width must be a power of two >= 2";
  if prism_width <= 0 then invalid_arg "Diffracting_runtime.create: non-positive prism width";
  if patience < 0 then invalid_arg "Diffracting_runtime.create: negative patience";
  {
    width;
    depth = Params.ilog2 width;
    nodes =
      Array.init (width - 1) (fun _ ->
          {
            toggle = Atomic.make 0;
            prism = Array.init prism_width (fun _ -> Atomic.make empty);
          });
    values = Array.init width (fun leaf -> Atomic.make leaf);
    patience;
    diffracted = Atomic.make 0;
    toggled = Atomic.make 0;
  }

(* Visit one node; returns the chosen direction (0 = child 0 / even
   leaves, 1 = child 1 / odd leaves). *)
let visit tree node =
  let rng = Domain.DLS.get rng_key in
  let slot = node.prism.(Random.State.int rng (Array.length node.prism)) in
  let toggle_pass () =
    Atomic.incr tree.toggled;
    let s = Atomic.fetch_and_add node.toggle 1 in
    ((s mod 2) + 2) mod 2
  in
  if Atomic.compare_and_set slot empty waiting then begin
    (* Advertised: wait for a partner within the patience window. *)
    let rec wait spins =
      if Atomic.get slot = captured then begin
        (* A partner captured us: we are the first of the pair. *)
        Atomic.set slot empty;
        Atomic.incr tree.diffracted;
        0
      end
      else if spins > 0 then begin
        Domain.cpu_relax ();
        wait (spins - 1)
      end
      else if Atomic.compare_and_set slot waiting empty then toggle_pass ()
      else begin
        (* Withdrawal raced with a capture. *)
        Atomic.set slot empty;
        Atomic.incr tree.diffracted;
        0
      end
    in
    wait tree.patience
  end
  else if Atomic.compare_and_set slot waiting captured then
    (* We captured an advertised token: we are the second of the pair. *)
    1
  else toggle_pass ()

let next tree =
  let rec descend node_id level leaf =
    if level >= tree.depth then leaf
    else begin
      let d = visit tree tree.nodes.(node_id) in
      let child = (2 * node_id) + 1 + d in
      descend child (level + 1) (leaf lor (d lsl level))
    end
  in
  let leaf = descend 0 0 0 in
  Atomic.fetch_and_add tree.values.(leaf) tree.width

let diffractions tree = Atomic.get tree.diffracted

let toggle_passes tree = Atomic.get tree.toggled

let exit_distribution tree =
  Array.init tree.width (fun leaf -> (Atomic.get tree.values.(leaf) - leaf) / tree.width)
