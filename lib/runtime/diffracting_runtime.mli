(** The diffracting tree of Shavit and Zemach with its *prism*
    optimization (paper, Section 1.4.1) — a runtime-only mechanism that
    the combinatorial topology in [Cn_baselines.Diffracting] omits.

    Every tree node carries a small array of exchanger slots (the
    prism).  A token first advertises itself in a random slot; if a
    second token meets it there within its patience window the pair
    {e diffracts}: one goes left, one goes right, and neither touches
    the node's toggle bit — two toggles would have cancelled anyway.
    Collisions thus convert contention into progress, which is exactly
    the effect the paper contrasts with its own worst-case guarantees
    (an adversary can still serialize everyone on the root toggle, so
    the tree's amortized contention remains [Θ(n)]).

    Quiescent behaviour is identical to the plain tree: diffraction
    preserves the balancer semantics, so after any run the values handed
    out are a dense prefix of the ID space (tested over domains). *)

type t
(** A prism-equipped diffracting tree handing out counter values. *)

val create : ?prism_width:int -> ?patience:int -> width:int -> unit -> t
(** [create ~width ()] builds a tree with [width] leaves ([width] a
    power of two [>= 2]).  [prism_width] (default [4]) is the number of
    exchanger slots per node; [patience] (default [64]) is the number of
    spins a waiting token invests before giving up on diffraction and
    using the toggle.
    @raise Invalid_argument on a bad width, non-positive prism width, or
    negative patience. *)

val next : t -> int
(** [next tree] shepherds one token from the root and returns the
    counter value assigned at its leaf.  Thread-safe. *)

val diffractions : t -> int
(** Number of token pairs that met in a prism and diffracted so far —
    the contention converted into progress. *)

val toggle_passes : t -> int
(** Number of toggle-bit traversals so far.  Every token performs
    [lg width] node visits; each visit ends in either half a
    diffraction or one toggle pass. *)

val exit_distribution : t -> Cn_sequence.Sequence.t
(** Tokens handed out per leaf so far; a step sequence (w.r.t. leaf
    order) in any quiescent state. *)
