(** Multi-domain measurement harness for shared counters (experiment E5;
    the real-system side of the comparison reported in Section 1.3.1).

    Note on this environment: on a single-core host OCaml domains
    timeshare rather than run in parallel, so absolute throughputs
    understate contention effects; relative per-implementation shapes
    remain indicative, and correctness checks are unaffected.

    Repeated measurements should share a {!Domain_pool.t} via [?pool]:
    the pool's warmed workers replace the per-run [Domain.spawn]/[join]
    cycle, whose setup cost otherwise dominates short runs. *)

type result = {
  counter : string;  (** implementation name *)
  domains : int;
  total_ops : int;
  seconds : float;
  ops_per_sec : float;
}

val max_calibration_ops : int
(** Ceiling on the per-domain op count the calibration escalation in
    {!throughput} will reach, [1 lsl 24]. *)

val next_calibration_ops : domains:int -> ops_per_domain:int -> int option
(** The next per-domain op count the calibration escalation would try:
    [Some (ops_per_domain * 2)] (at least [1]), or [None] when
    escalation must stop — the cap {!max_calibration_ops} is reached,
    or doubling / the resulting [domains * ops] total would overflow
    [max_int].  All overflow checks divide; nothing is multiplied
    before it is known safe, so the function is total for every
    [ops_per_domain] up to [max_int].  Exposed for the regression test
    pinning the overflow behaviour near [max_int]. *)

val throughput :
  ?pool:Domain_pool.t ->
  make:(unit -> Shared_counter.t) ->
  domains:int ->
  ops_per_domain:int ->
  unit ->
  result
(** [throughput ~make ~domains ~ops_per_domain ()] runs [domains] domains
    over a fresh counter, each performing [ops_per_domain] increments,
    and reports aggregate throughput.  Uses a start barrier so all
    domains race together.  With [?pool], the pool's workers are reused
    instead of spawning (requires [domains <= Domain_pool.size pool]).

    Rounds too short for the wall clock to resolve are re-run with the
    per-domain op count doubled (fresh counter each attempt) until the
    timer registers, so the reported [ops_per_sec] is always positive
    and [total_ops] reflects the ops actually measured.
    @raise Invalid_argument if [domains <= 0], [ops_per_domain < 0], or
    [domains * ops_per_domain] overflows.
    @raise Failure if the clock never advances even at the escalation
    cap (a broken timing environment). *)

val calibrate_crossing_ns :
  ?pool:Domain_pool.t ->
  ?ops_per_domain:int ->
  make:(unit -> Shared_counter.t) ->
  depth:int ->
  unit ->
  float
(** [calibrate_crossing_ns ~make ~depth ()] measures the single-domain
    cost of one balancer crossing: a one-domain {!throughput} round
    (default [?ops_per_domain] [100_000]) over a fresh counter whose
    operations each perform [depth] crossings, reported as
    nanoseconds/crossing.  This is the measured anchor
    [Cn_analysis.Projection.calibrate] scales contention-model
    projections from.
    @raise Invalid_argument if [depth <= 0]. *)

val run_collect :
  ?pool:Domain_pool.t ->
  ?validate:Validator.policy ->
  make:(unit -> Shared_counter.t) ->
  domains:int ->
  ops_per_domain:int ->
  unit ->
  int array array
(** [run_collect ~make ~domains ~ops_per_domain ()] performs the same run
    but returns the values each domain obtained, for correctness
    checks.  After the run, [?validate] (default [Log]) applies
    {!Validator.collected_values} to the values and — for
    network-backed counters — {!Validator.quiescent_runtime} to the
    quiesced network.
    @raise Validator.Invalid under [~validate:Strict] when a check
    fails. *)

val values_are_a_range : int array array -> bool
(** [values_are_a_range vss] holds iff the collected values are exactly
    [{0, ..., total - 1}] with no duplicates — the [Fetch&Increment]
    contract of a quiesced counting network. *)
