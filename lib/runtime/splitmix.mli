(** SplitMix64-style avalanche hashing over OCaml's tagged ints — the
    one mixing finalizer the whole system shares.

    Consumers: the fabric's consistent-hash {!Router} (ring point
    placement and key routing) and the [Cn_sketch] approximate
    backends (HyperLogLog register selection, sparse-graph edge
    choice).  Keeping a single finalizer here means a key hashes the
    same way on both sides of the exact/approximate split, and the
    sketch library does not need a dependency on the fabric. *)

val mix : int -> int
(** [mix x] is a SplitMix64-style finalizer over the tagged-int range:
    two xorshift-multiply rounds plus a final shift, result masked
    into [[0, max_int]].  The multipliers are 62-bit-safe variants of
    the canonical 64-bit constants — all we need is avalanche (every
    input bit flips ~half the output bits), not cross-language
    reproducibility.  Deterministic and allocation-free. *)
