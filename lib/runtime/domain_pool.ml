(* Worker protocol, one atomic generation counter per concern.

   To start round [r] the owner publishes the job and participant count,
   then advances [round] to [r]; workers observing the advance either
   join the round (pid < participants) or wait for the next one.
   Participants check in on [ready]; the owner releases them by setting
   [go] to [r] (the timed instant) and waits for [finished].  All
   signalling goes through atomics, so the non-atomic [job] and
   [participants] fields are safely published by the [round] write.

   Idle waiting spins with [Domain.cpu_relax] and decays to a short
   sleep: on hosts with fewer cores than workers, a hot spin by parked
   workers would steal the very CPU the round's participants need. *)

type t = {
  pool_size : int;
  mutable job : int -> unit;
  mutable participants : int;
  round : int Atomic.t;
  go : int Atomic.t;
  ready : int Atomic.t;
  finished : int Atomic.t;
  failure : exn option Atomic.t; (* first exception raised by a job this round *)
  stop : bool Atomic.t;
  mutable workers : unit Domain.t array;
  mutable live : bool;
}

let wait_patiently predicate =
  let spins = ref 0 in
  while not (predicate ()) do
    incr spins;
    if !spins < 1024 then Domain.cpu_relax () else Unix.sleepf 0.0002
  done

let worker pool pid () =
  let seen = ref 0 in
  let continue = ref true in
  while !continue do
    wait_patiently (fun () -> Atomic.get pool.round > !seen || Atomic.get pool.stop);
    if Atomic.get pool.stop then continue := false
    else begin
      let r = Atomic.get pool.round in
      seen := r;
      if pid < pool.participants then begin
        let job = pool.job in
        Atomic.incr pool.ready;
        (* Hot spin here: the release-to-start window is the timed
           region's leading edge. *)
        while Atomic.get pool.go < r && not (Atomic.get pool.stop) do
          Domain.cpu_relax ()
        done;
        if not (Atomic.get pool.stop) then begin
          (* A raising job must neither kill this worker nor leave the
             owner waiting on [finished] forever: record the first
             exception for [run] to re-raise and always check out. *)
          (try job pid
           with e -> ignore (Atomic.compare_and_set pool.failure None (Some e)));
          Atomic.incr pool.finished
        end
      end
    end
  done

let create pool_size =
  if pool_size <= 0 then invalid_arg "Domain_pool.create: size must be positive";
  let pool =
    {
      pool_size;
      job = ignore;
      participants = 0;
      round = Atomic.make 0;
      go = Atomic.make 0;
      ready = Atomic.make 0;
      finished = Atomic.make 0;
      failure = Atomic.make None;
      stop = Atomic.make false;
      workers = [||];
      live = true;
    }
  in
  pool.workers <- Array.init pool_size (fun pid -> Domain.spawn (worker pool pid));
  pool

let size pool = pool.pool_size

let run pool ~domains body =
  if not pool.live then invalid_arg "Domain_pool.run: pool is shut down";
  if domains <= 0 || domains > pool.pool_size then
    invalid_arg "Domain_pool.run: domains out of range for this pool";
  pool.job <- body;
  pool.participants <- domains;
  Atomic.set pool.ready 0;
  Atomic.set pool.finished 0;
  Atomic.set pool.failure None;
  let r = Atomic.get pool.round + 1 in
  Atomic.set pool.round r;
  wait_patiently (fun () -> Atomic.get pool.ready >= domains);
  let t0 = Unix.gettimeofday () in
  Atomic.set pool.go r;
  wait_patiently (fun () -> Atomic.get pool.finished >= domains);
  let t1 = Unix.gettimeofday () in
  pool.job <- ignore;
  (match Atomic.get pool.failure with
  | Some e ->
      (* Every participant checked out, so the pool is clean and
         reusable; the round itself failed. *)
      Atomic.set pool.failure None;
      raise e
  | None -> ());
  t1 -. t0

let shutdown pool =
  if pool.live then begin
    pool.live <- false;
    Atomic.set pool.stop true;
    Array.iter Domain.join pool.workers;
    pool.workers <- [||]
  end

let with_pool size f =
  let pool = create size in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
