(* Low-overhead observability for the compiled runtime.

   The hot path must not reintroduce the very contention the network
   exists to spread out, so all counters are sharded: each domain maps
   (by domain id) to a private sink holding its own Padded_atomic banks,
   and the banks are only merged when a snapshot is taken at quiescence.
   Within a sink the banks are unpadded — a sink has a single writer in
   the common case, so padding every slot would multiply memory for no
   contention win; distinct sinks live in distinct heap blocks and so on
   (almost always) distinct cache lines.  Updates still go through the
   atomics, so a hash collision between two domains costs locality, not
   correctness.

   Latency is sampled, not traced: every [sample_period]-th token
   through a sink gets two monotonic-clock reads (CLOCK_MONOTONIC via
   the in-tree no-alloc stub), and the measured latencies feed a
   per-sink reservoir (Vitter's algorithm R) so percentiles stay
   unbiased however long the run.  The reservoir holds plain tagged
   ints of nanoseconds and the clock returns one, so a sampled token
   costs two stub calls and two array stores — no [int64] boxes, no
   float boxes, nothing for the GC. *)

let schema_version = 1

let now_ns = Clock.now_ns

(* Slots of the [lat_state] bank. *)
let tick_slot = 0 (* tokens entered, drives the sampling period *)
let seen_slot = 1 (* latencies measured so far *)
let rng_slot = 2 (* xorshift state for reservoir replacement *)

type sink = {
  crossings : Padded_atomic.t; (* per balancer: tokens that crossed it *)
  stalls : Padded_atomic.t; (* per balancer: contended CAS crossings *)
  exits : Padded_atomic.t; (* per output wire: net exits (tokens - antitokens) *)
  flows : Padded_atomic.t; (* slot 0: tokens entered, slot 1: antitokens *)
  lat : int array; (* latency reservoir, ns (unboxed tagged ints) *)
  lat_state : Padded_atomic.t;
  period : int;
}

type t = {
  balancers : int;
  wires : int;
  sinks : sink array;
}

let make_sink ~balancers ~wires ~reservoir ~period =
  {
    crossings = Padded_atomic.make ~padded:false balancers ~init:(fun _ -> 0);
    stalls = Padded_atomic.make ~padded:false balancers ~init:(fun _ -> 0);
    exits = Padded_atomic.make ~padded:false wires ~init:(fun _ -> 0);
    flows = Padded_atomic.make ~padded:false 2 ~init:(fun _ -> 0);
    lat = Array.make reservoir 0;
    lat_state = Padded_atomic.make ~padded:false 3 ~init:(fun i -> if i = rng_slot then 0x2545F49 else 0);
    period;
  }

(* A zero-size sink for the uninstrumented traverse paths: the bare
   crossing functions share the metered ones' signature (so the walk
   loops need no closures), and this is the sink value they ignore. *)
let null = make_sink ~balancers:0 ~wires:0 ~reservoir:1 ~period:1

let create ?(shards = 16) ?(reservoir = 512) ?(sample_period = 16) ~balancers ~wires () =
  if shards <= 0 then invalid_arg "Metrics.create: shards must be positive";
  if reservoir <= 0 then invalid_arg "Metrics.create: reservoir must be positive";
  if sample_period <= 0 then invalid_arg "Metrics.create: sample_period must be positive";
  if balancers < 0 || wires < 0 then invalid_arg "Metrics.create: negative dimensions";
  {
    balancers;
    wires;
    sinks =
      Array.init shards (fun _ -> make_sink ~balancers ~wires ~reservoir ~period:sample_period);
  }

let sink m = m.sinks.((Domain.self () :> int) mod Array.length m.sinks)

let crossing sk b = Padded_atomic.incr sk.crossings b
let stall sk b = Padded_atomic.incr sk.stalls b

let token_exit sk ~wire =
  Padded_atomic.incr sk.exits wire;
  Padded_atomic.incr sk.flows 0

let antitoken_exit sk ~wire =
  ignore (Padded_atomic.fetch_and_add sk.exits wire (-1));
  Padded_atomic.incr sk.flows 1

let sample_begin sk =
  let tick = Padded_atomic.fetch_and_add sk.lat_state tick_slot 1 in
  if tick mod sk.period = 0 then now_ns () else -1

(* Algorithm R: the [cap]-th and later measurements replace a uniformly
   random reservoir slot with probability cap/seen.  The xorshift state
   is updated racily on hash collisions, which only perturbs the
   randomness, never the memory safety. *)
let sample_end sk t0 =
  let d = now_ns () - t0 in
  let cap = Array.length sk.lat in
  let seen = Padded_atomic.fetch_and_add sk.lat_state seen_slot 1 in
  if seen < cap then sk.lat.(seen) <- d
  else begin
    let r = Padded_atomic.get sk.lat_state rng_slot in
    let r = r lxor (r lsl 13) in
    let r = r lxor (r lsr 7) in
    let r = (r lxor (r lsl 17)) land max_int in
    Padded_atomic.set sk.lat_state rng_slot r;
    let j = r mod (seen + 1) in
    if j < cap then sk.lat.(j) <- d
  end

let reset m =
  Array.iter
    (fun sk ->
      for b = 0 to Padded_atomic.length sk.crossings - 1 do
        Padded_atomic.set sk.crossings b 0;
        Padded_atomic.set sk.stalls b 0
      done;
      for i = 0 to Padded_atomic.length sk.exits - 1 do
        Padded_atomic.set sk.exits i 0
      done;
      Padded_atomic.set sk.flows 0 0;
      Padded_atomic.set sk.flows 1 0;
      Padded_atomic.set sk.lat_state tick_slot 0;
      Padded_atomic.set sk.lat_state seen_slot 0)
    m.sinks

(* ------------------------------------------------------------------ *)
(* Single-owner reservoir.

   The sink reservoir above is welded to the sharded hot path; client
   harnesses (the TCP load rig) need the same Algorithm-R behaviour as
   a plain value owned by one thread — no atomics, no padding, just
   tagged ints and a private xorshift stream. *)

module Reservoir = struct
  type t = {
    samples : int array;
    mutable seen : int;
    mutable rng : int;
  }

  let create ?(capacity = 2048) () =
    if capacity <= 0 then
      invalid_arg "Metrics.Reservoir.create: capacity must be positive";
    { samples = Array.make capacity 0; seen = 0; rng = 0x2545F49 }

  let observed r = r.seen
  let kept r = min r.seen (Array.length r.samples)

  let add r v =
    let cap = Array.length r.samples in
    let seen = r.seen in
    r.seen <- seen + 1;
    if seen < cap then r.samples.(seen) <- v
    else begin
      let x = r.rng in
      let x = x lxor (x lsl 13) in
      let x = x lxor (x lsr 7) in
      let x = (x lxor (x lsl 17)) land max_int in
      r.rng <- x;
      let j = x mod (seen + 1) in
      if j < cap then r.samples.(j) <- v
    end
end

type latency = {
  time_unit : string;
  observed : int;
  kept : int;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
  mean : float;
}

type snapshot = {
  version : int;
  source : string;
  balancers : int;
  wires : int;
  tokens : int;
  antitokens : int;
  crossings : int array;
  stalls : int array;
  exits : int array;
  latency : latency option;
}

let percentiles ?(time_unit = "ns") ?observed samples =
  let n = Array.length samples in
  if n = 0 then None
  else begin
    let sorted = Array.copy samples in
    Array.sort compare sorted;
    (* Nearest-rank percentile on the sorted reservoir. *)
    let rank q = sorted.(min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1)) in
    Some
      {
        time_unit;
        observed = (match observed with Some o -> o | None -> n);
        kept = n;
        p50 = rank 0.50;
        p95 = rank 0.95;
        p99 = rank 0.99;
        max = sorted.(n - 1);
        mean = Array.fold_left ( +. ) 0. sorted /. float_of_int n;
      }
  end

(* Defined outside [Reservoir] only because [latency]/[percentiles]
   come later in this file; conceptually it is the module's summary. *)
let reservoir_summary ?(time_unit = "ns") rs =
  let observed = List.fold_left (fun acc r -> acc + Reservoir.observed r) 0 rs in
  let samples =
    Array.concat
      (List.map
         (fun (r : Reservoir.t) ->
           Array.init (Reservoir.kept r) (fun i -> float_of_int r.Reservoir.samples.(i)))
         rs)
  in
  percentiles ~time_unit ~observed samples

let snapshot m =
  let sum_bank len field =
    let acc = Array.make len 0 in
    Array.iter
      (fun sk ->
        let bank = field sk in
        for i = 0 to len - 1 do
          acc.(i) <- acc.(i) + Padded_atomic.get bank i
        done)
      m.sinks;
    acc
  in
  let flows = sum_bank 2 (fun sk -> sk.flows) in
  let samples =
    Array.concat
      (Array.to_list
         (Array.map
            (fun sk ->
              let kept = min (Padded_atomic.get sk.lat_state seen_slot) (Array.length sk.lat) in
              Array.init kept (fun i -> float_of_int sk.lat.(i)))
            m.sinks))
  in
  let observed =
    Array.fold_left (fun acc sk -> acc + Padded_atomic.get sk.lat_state seen_slot) 0 m.sinks
  in
  {
    version = schema_version;
    source = "runtime";
    balancers = m.balancers;
    wires = m.wires;
    tokens = flows.(0);
    antitokens = flows.(1);
    crossings = sum_bank m.balancers (fun sk -> sk.crossings);
    stalls = sum_bank m.balancers (fun sk -> sk.stalls);
    exits = sum_bank m.wires (fun sk -> sk.exits);
    latency = percentiles ~observed samples;
  }

(* ------------------------------------------------------------------ *)
(* JSON serialization (hand-rolled, schema-versioned; the consumers are
   bench/BENCH_runtime.json and `countnet --metrics`). *)

let json_int_array a =
  "[" ^ String.concat ", " (Array.to_list (Array.map string_of_int a)) ^ "]"

let sum = Array.fold_left ( + ) 0

let per_layer ~layers values =
  let depth = Array.fold_left max 0 layers in
  let acc = Array.make depth 0 in
  Array.iteri (fun b v -> acc.(layers.(b) - 1) <- acc.(layers.(b) - 1) + v) values;
  acc

(* Typed per-layer stall profile straight off the sink banks: the
   fabric's auto-tuner polls this between batches, so it must not pay
   for the full snapshot (crossings, exits, latency reservoir merge) —
   and it must never have to re-parse its own JSON. *)
let layer_stalls (m : t) ~layers =
  if Array.length layers <> m.balancers then
    invalid_arg "Metrics.layer_stalls: layers length must equal balancer count";
  let per_b = Array.make m.balancers 0 in
  Array.iter
    (fun (sk : sink) ->
      for b = 0 to m.balancers - 1 do
        per_b.(b) <- per_b.(b) + Padded_atomic.get sk.stalls b
      done)
    m.sinks;
  per_layer ~layers per_b

let to_json ?layers s =
  let b = Buffer.create 1024 in
  let field last fmt = Printf.ksprintf (fun str -> Buffer.add_string b ("  " ^ str ^ (if last then "\n" else ",\n"))) fmt in
  Buffer.add_string b "{\n";
  field false "\"schema_version\": %d" s.version;
  field false "\"source\": %S" s.source;
  field false "\"balancers\": %d" s.balancers;
  field false "\"wires\": %d" s.wires;
  field false "\"tokens\": %d" s.tokens;
  field false "\"antitokens\": %d" s.antitokens;
  field false "\"total_crossings\": %d" (sum s.crossings);
  field false "\"total_stalls\": %d" (sum s.stalls);
  field false "\"per_balancer_crossings\": %s" (json_int_array s.crossings);
  field false "\"per_balancer_stalls\": %s" (json_int_array s.stalls);
  field false "\"per_wire_exits\": %s" (json_int_array s.exits);
  (match layers with
  | Some layers when Array.length layers = Array.length s.crossings ->
      field false "\"per_layer_crossings\": %s" (json_int_array (per_layer ~layers s.crossings));
      field false "\"per_layer_stalls\": %s" (json_int_array (per_layer ~layers s.stalls))
  | _ -> ());
  (match s.latency with
  | None -> field true "\"latency\": null"
  | Some l ->
      field true
        "\"latency\": { \"unit\": %S, \"observed\": %d, \"kept\": %d, \"p50\": %.1f, \"p95\": \
         %.1f, \"p99\": %.1f, \"max\": %.1f, \"mean\": %.1f }"
        l.time_unit l.observed l.kept l.p50 l.p95 l.p99 l.max l.mean);
  Buffer.add_string b "}\n";
  Buffer.contents b
