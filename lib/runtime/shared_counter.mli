(** Concurrent shared counters supporting [Fetch&Increment] — the data
    structure counting networks exist to implement (paper, Section 1.1).

    Three implementations with identical semantics (each call returns a
    distinct value, and after [m] quiesced calls the values handed out
    are exactly [0 .. m-1]):

    - {!of_topology}: a counting network; low contention, not
      linearizable (Section 1.4.2 — none of the networks considered
      are), wait-free in [Faa] mode;
    - {!central_faa}: a single fetch-and-add word; linearizable, maximal
      contention on one cache line;
    - {!with_lock}: a mutex-protected integer; the naive baseline. *)

type t
(** A shared counter handle, safe to use from any domain. *)

val of_topology :
  ?mode:Network_runtime.mode ->
  ?layout:Network_runtime.layout ->
  ?metrics:bool ->
  Cn_network.Topology.t ->
  t
(** [of_topology net] is a counter backed by the counting network [net]:
    the caller's token enters on wire [pid mod w].  [?mode], [?layout]
    and [?metrics] are passed through to {!Network_runtime.compile}. *)

val runtime : t -> Network_runtime.t option
(** The compiled network behind a {!of_topology} counter ([None] for
    the other implementations) — the hook {!Harness} and the validator
    use to check quiescent invariants after a run. *)

val central_faa : unit -> t
(** A counter backed by one [Atomic.fetch_and_add] word. *)

val with_lock : unit -> t
(** A counter backed by a [Mutex]-protected integer. *)

val custom :
  name:string ->
  ?runtime:Network_runtime.t ->
  next:(pid:int -> int) ->
  prev:(pid:int -> int) ->
  unit ->
  t
(** [custom ~name ~next ~prev ()] is a counter backed by caller-supplied
    operations — the extension point higher layers (e.g. the
    [Cn_service] combining front-end) use to slot into {!Harness}
    comparisons without a dependency cycle.  [?runtime] exposes the
    compiled network behind the closures, if any, so
    {!Harness.run_collect} can validate quiescent invariants.  The
    closures must be safe to call from any domain; [pid] has already
    been checked non-negative. *)

val next : t -> pid:int -> int
(** [next c ~pid] performs one [Fetch&Increment] as process [pid]
    (process identity selects the entry wire for network-backed
    counters; the others ignore it).
    @raise Invalid_argument if [pid < 0]. *)

val prev : t -> pid:int -> int
(** [prev c ~pid] performs one [Fetch&Decrement], returning the value
    handed back to the counter — sequentially, the next [next] call
    returns the same value.  Network-backed counters implement it with
    antitokens (paper, Section 1.4.2).
    @raise Invalid_argument if [pid < 0]. *)

val name : t -> string
(** Implementation name for reporting ("network", "central-faa",
    "lock"). *)
