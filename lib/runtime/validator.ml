module Sequence = Cn_sequence.Sequence

type policy = Strict | Log | Off

let policy_to_string = function Strict -> "strict" | Log -> "log" | Off -> "off"

let policy_of_string = function
  | "strict" -> Some Strict
  | "log" -> Some Log
  | "off" -> Some Off
  | _ -> None

type check = { name : string; ok : bool; detail : string }
type report = { subject : string; checks : check list }

exception Invalid of string

let check name ok detail = { name; ok; detail }
let passed r = List.for_all (fun c -> c.ok) r.checks
let failures r = List.filter (fun c -> not c.ok) r.checks

let summary r =
  if passed r then Printf.sprintf "%s: ok (%d checks)" r.subject (List.length r.checks)
  else
    Printf.sprintf "%s: FAILED %s" r.subject
      (String.concat "; "
         (List.map (fun c -> Printf.sprintf "%s (%s)" c.name c.detail) (failures r)))

let enforce policy report =
  match policy with
  | Off -> ()
  | Log -> if not (passed report) then Printf.eprintf "[validator] %s\n%!" (summary report)
  | Strict -> if not (passed report) then raise (Invalid (summary report))

(* ------------------------------------------------------------------ *)
(* The checks. *)

let sum = Array.fold_left ( + ) 0

(* Moved here from Harness so both layers share one implementation:
   the values handed out by m quiesced Fetch&Increments must be exactly
   {0, ..., m-1}, no duplicates, no gaps. *)
let values_form_a_range vss =
  let total = Array.fold_left (fun acc vs -> acc + Array.length vs) 0 vss in
  let seen = Array.make total false in
  let ok = ref true in
  Array.iter
    (Array.iter (fun v ->
         if v < 0 || v >= total || seen.(v) then ok := false else seen.(v) <- true))
    vss;
  !ok && Array.for_all (fun b -> b) seen

let collected_values vss =
  let total = Array.fold_left (fun acc vs -> acc + Array.length vs) 0 vss in
  {
    subject = "collected values";
    checks =
      [
        check "fetch-increment-range" (values_form_a_range vss)
          (Printf.sprintf "%d values must form 0..%d without duplicates" total (total - 1));
      ];
  }

let step_check dist =
  check "step-property" (Sequence.is_step dist)
    (Printf.sprintf "exit distribution %s" (Sequence.to_string dist))

let conservation_check ~exited ~tokens ~antitokens =
  check "token-conservation"
    (exited = tokens - antitokens)
    (Printf.sprintf "sum of outputs %d must equal tokens %d - antitokens %d" exited tokens
       antitokens)

let quiescent_runtime rt =
  let dist = Network_runtime.exit_distribution rt in
  let base = [ step_check dist ] in
  let checks =
    match Network_runtime.metrics rt with
    | None -> base
    | Some m ->
        let s = Metrics.snapshot m in
        base
        @ [
            conservation_check ~exited:(sum dist) ~tokens:s.Metrics.tokens
              ~antitokens:s.Metrics.antitokens;
            (* The sharded tallies and the assignment cells are updated
               independently on the hot path; disagreement at quiescence
               witnesses a lost update or an unquiesced snapshot. *)
            check "tally-agreement"
              (s.Metrics.exits = dist)
              (Printf.sprintf "metrics tally %s vs derived %s"
                 (Sequence.to_string s.Metrics.exits)
                 (Sequence.to_string dist));
          ]
  in
  { subject = "runtime quiescence"; checks }

let snapshot_invariants (s : Metrics.snapshot) =
  {
    subject = Printf.sprintf "%s snapshot" s.Metrics.source;
    checks =
      [
        step_check s.Metrics.exits;
        conservation_check ~exited:(sum s.Metrics.exits) ~tokens:s.Metrics.tokens
          ~antitokens:s.Metrics.antitokens;
        check "non-negative-counters"
          (Array.for_all (fun c -> c >= 0) s.Metrics.crossings
          && Array.for_all (fun c -> c >= 0) s.Metrics.stalls)
          "per-balancer crossing and stall counters must be non-negative";
      ];
  }
