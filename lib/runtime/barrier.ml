type t = {
  counter : Shared_counter.t;
  parties : int;
  sense : bool Atomic.t;
  rounds : int Atomic.t;
}

let default_network parties =
  if parties < 2 || parties mod 2 <> 0 then
    invalid_arg "Barrier.create: parties must be even and >= 2 (or supply a network)";
  (* Largest power of two dividing parties, as input width. *)
  let w = parties land -parties in
  let w = if w > parties then parties else w in
  (* [w] is a power of two >= 2 and divides parties, so C(w, parties) is
     valid. *)
  Cn_core.Counting.network ~w ~t:parties

let create ?network ~parties () =
  if parties < 2 then invalid_arg "Barrier.create: parties must be >= 2";
  let net =
    match network with
    | Some net ->
        if Cn_network.Topology.output_width net <> parties then
          invalid_arg "Barrier.create: network output width must equal parties";
        net
    | None -> default_network parties
  in
  {
    counter = Shared_counter.of_topology net;
    parties;
    sense = Atomic.make false;
    rounds = Atomic.make 0;
  }

let await b ~pid =
  let sense0 = Atomic.get b.sense in
  let v = Shared_counter.next b.counter ~pid in
  (* The token's exit wire is [v mod parties]; the last wire carries the
     threshold tokens. *)
  if v mod b.parties = b.parties - 1 then begin
    Atomic.incr b.rounds;
    Atomic.set b.sense (not sense0)
  end
  else
    while Atomic.get b.sense = sense0 do
      Domain.cpu_relax ()
    done

let parties b = b.parties

let rounds_completed b = Atomic.get b.rounds
