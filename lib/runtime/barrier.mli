(** Sense-reversing barriers built on counting networks.

    Counting networks are not linearizable (paper, Section 1.4.2), so
    the naive “last ticket flips the sense” barrier is unsound.  What
    they do satisfy is the {e threshold property}
    (Aspnes–Herlihy–Shavit): the [k]-th token to exit the last output
    wire does so only after [k·t] tokens have entered.  This barrier
    therefore uses a network whose output width equals the number of
    parties: the token exiting the last wire is the round's threshold
    token — by then everyone has arrived — and it alone toggles the
    sense. *)

type t
(** A reusable barrier for a fixed number of parties. *)

val create : ?network:Cn_network.Topology.t -> parties:int -> unit -> t
(** [create ~parties ()] builds a barrier for [parties] domains.

    Without [network], a counting network [C(w, parties)] is chosen
    automatically, with [w] the largest power of two dividing [parties]
    (so [parties] must be even).  A custom [network] must be a counting
    network with output width exactly [parties].
    @raise Invalid_argument if [parties < 2], [parties] is odd (and no
    network is supplied), or the supplied network's output width differs
    from [parties]. *)

val await : t -> pid:int -> unit
(** [await b ~pid] blocks until all [parties] processes of the current
    round have called [await].  Each participating domain must use a
    distinct [pid] per round. *)

val parties : t -> int
(** Number of parties. *)

val rounds_completed : t -> int
(** Number of rounds whose threshold token has been seen so far. *)
