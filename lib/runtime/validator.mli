(** Online quiescence validation for the runtime.

    A counting network that has gone quiescent must satisfy two global
    invariants: the exit distribution is a {e step sequence}
    ([Sequence.is_step]), and tokens are conserved (the sum of the
    per-wire outputs equals tokens minus antitokens).  This module
    checks them — on a compiled {!Network_runtime.t}, on a
    {!Metrics.snapshot} (from the runtime or the simulator), or on the
    values collected by {!Harness.run_collect} — and applies a policy:
    raise ([Strict]), warn on stderr ([Log]), or do nothing ([Off]).

    Wired into [Harness.run_collect], the multi-domain tests, and the
    [runtime] bench sweep, so every future perf change to the hot path
    gets correctness checking for free. *)

type policy = Strict | Log | Off
(** What to do when a report has a failing check: [Strict] raises
    {!Invalid}, [Log] prints the summary to stderr, [Off] skips
    enforcement (callers may skip the checks entirely). *)

val policy_to_string : policy -> string
val policy_of_string : string -> policy option

type check = { name : string; ok : bool; detail : string }
type report = { subject : string; checks : check list }

exception Invalid of string
(** Raised by {!enforce} under [Strict] with the failing summary. *)

val passed : report -> bool
(** All checks hold. *)

val failures : report -> check list
(** The failing checks, if any. *)

val summary : report -> string
(** One-line human summary of a report. *)

val enforce : policy -> report -> unit
(** Apply a policy to a report.
    @raise Invalid under [Strict] when the report has a failing check. *)

val values_form_a_range : int array array -> bool
(** [values_form_a_range vss] holds iff the collected values are exactly
    [{0, ..., total - 1}] with no duplicates — the [Fetch&Increment]
    contract of a quiesced counting network. *)

val collected_values : int array array -> report
(** Range check over per-domain collected values, as a report. *)

val quiescent_runtime : Network_runtime.t -> report
(** [quiescent_runtime rt] checks the step property on the derived exit
    distribution and — when [rt] was compiled with [~metrics:true] —
    token conservation plus agreement between the sharded metrics
    tallies and the assignment cells.  Only meaningful at quiescence
    (no traversal in flight). *)

val snapshot_invariants : Metrics.snapshot -> report
(** Invariants of a quiescent snapshot, wherever it came from: step
    property of the exits, token conservation, counter sanity. *)
