type result = {
  counter : string;
  domains : int;
  total_ops : int;
  seconds : float;
  ops_per_sec : float;
}

(* One measured round: every participating domain runs [body pid] with
   all domains released together, and the returned seconds cover the
   concurrent region only.  With a pool the warmed workers are reused;
   without one, domains are spawned for this round and gated by a sense
   barrier before the clock starts. *)
let timed_round ?pool ~domains body =
  match pool with
  | Some pool -> Domain_pool.run pool ~domains body
  | None ->
      let ready = Atomic.make 0 in
      let go = Atomic.make false in
      let gated pid () =
        Atomic.incr ready;
        while not (Atomic.get go) do
          Domain.cpu_relax ()
        done;
        body pid
      in
      let handles = Array.init domains (fun pid -> Domain.spawn (gated pid)) in
      while Atomic.get ready < domains do
        Domain.cpu_relax ()
      done;
      let t0 = Unix.gettimeofday () in
      Atomic.set go true;
      Array.iter Domain.join handles;
      Unix.gettimeofday () -. t0

let validate ~domains ~ops_per_domain =
  if domains <= 0 then invalid_arg "Harness: domains must be positive";
  if ops_per_domain < 0 then invalid_arg "Harness: negative ops_per_domain"

let spawn_all ?pool ~counter ~domains ~ops_per_domain ~record () =
  timed_round ?pool ~domains (fun pid ->
      for i = 0 to ops_per_domain - 1 do
        record pid i (Shared_counter.next counter ~pid)
      done)

let throughput ?pool ~make ~domains ~ops_per_domain () =
  validate ~domains ~ops_per_domain;
  let counter = make () in
  let seconds = spawn_all ?pool ~counter ~domains ~ops_per_domain ~record:(fun _ _ _ -> ()) () in
  let total_ops = domains * ops_per_domain in
  {
    counter = Shared_counter.name counter;
    domains;
    total_ops;
    seconds;
    ops_per_sec = (if seconds <= 0. then 0. else float_of_int total_ops /. seconds);
  }

let run_collect ?pool ~make ~domains ~ops_per_domain () =
  validate ~domains ~ops_per_domain;
  let counter = make () in
  let values = Array.init domains (fun _ -> Array.make ops_per_domain (-1)) in
  let _ =
    spawn_all ?pool ~counter ~domains ~ops_per_domain
      ~record:(fun pid i v -> values.(pid).(i) <- v)
      ()
  in
  values

let values_are_a_range vss =
  let total = Array.fold_left (fun acc vs -> acc + Array.length vs) 0 vss in
  let seen = Array.make total false in
  let ok = ref true in
  Array.iter
    (Array.iter (fun v ->
         if v < 0 || v >= total || seen.(v) then ok := false else seen.(v) <- true))
    vss;
  !ok && Array.for_all (fun b -> b) seen
