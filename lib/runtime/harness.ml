type result = {
  counter : string;
  domains : int;
  total_ops : int;
  seconds : float;
  ops_per_sec : float;
}

(* One measured round: every participating domain runs [body pid] with
   all domains released together, and the returned seconds cover the
   concurrent region only.  With a pool the warmed workers are reused;
   without one, domains are spawned for this round and gated by a sense
   barrier before the clock starts. *)
let timed_round ?pool ~domains body =
  match pool with
  | Some pool -> Domain_pool.run pool ~domains body
  | None ->
      let ready = Atomic.make 0 in
      let go = Atomic.make false in
      let gated pid () =
        Atomic.incr ready;
        while not (Atomic.get go) do
          Domain.cpu_relax ()
        done;
        body pid
      in
      let handles = Array.init domains (fun pid -> Domain.spawn (gated pid)) in
      while Atomic.get ready < domains do
        Domain.cpu_relax ()
      done;
      let t0 = Unix.gettimeofday () in
      Atomic.set go true;
      Array.iter Domain.join handles;
      Unix.gettimeofday () -. t0

let check_args ~domains ~ops_per_domain =
  if domains <= 0 then invalid_arg "Harness: domains must be positive";
  if ops_per_domain < 0 then invalid_arg "Harness: negative ops_per_domain";
  if ops_per_domain > 0 && domains > max_int / ops_per_domain then
    invalid_arg "Harness: domains * ops_per_domain overflows"

let spawn_all ?pool ~counter ~domains ~ops_per_domain ~record () =
  timed_round ?pool ~domains (fun pid ->
      for i = 0 to ops_per_domain - 1 do
        record pid i (Shared_counter.next counter ~pid)
      done)

(* A round too short for the wall clock to resolve must not report a
   throughput of zero (the old behaviour — a lie that poisons sweep
   aggregates).  Double the per-domain ops until the timer registers;
   the escalation is bounded, and a clock that never advances is a
   broken environment worth failing loudly over. *)
let max_calibration_ops = 1 lsl 24

(* The next escalation step, or [None] when escalation must stop.
   Overflow safety is checked by division only — the earlier guard
   computed [ops_per_domain * 2] before establishing it could not
   overflow, which wraps for ops_per_domain > max_int / 2 and turns the
   bound into garbage.  Divide first, never multiply unchecked. *)
let next_calibration_ops ~domains ~ops_per_domain =
  if domains <= 0 then None
  else if ops_per_domain >= max_calibration_ops then None
  else if ops_per_domain > max_int / 2 then None (* doubling would overflow *)
  else
    let doubled = max 1 (ops_per_domain * 2) in
    if domains > max_int / doubled then None (* total_ops would overflow *)
    else Some doubled

let throughput ?pool ~make ~domains ~ops_per_domain () =
  check_args ~domains ~ops_per_domain;
  let rec attempt ops_per_domain =
    let counter = make () in
    let seconds =
      spawn_all ?pool ~counter ~domains ~ops_per_domain ~record:(fun _ _ _ -> ()) ()
    in
    let total_ops = domains * ops_per_domain in
    if seconds > 0. && total_ops > 0 then
      {
        counter = Shared_counter.name counter;
        domains;
        total_ops;
        seconds;
        ops_per_sec = float_of_int total_ops /. seconds;
      }
    else
      match next_calibration_ops ~domains ~ops_per_domain with
      | Some ops -> attempt ops
      | None ->
          failwith
            (Printf.sprintf
               "Harness.throughput: clock did not advance over %d ops; cannot measure" total_ops)
  in
  attempt ops_per_domain

(* Single-domain runs have no contention, so seconds/(ops * depth) is
   the uncontended per-crossing cost — the measured anchor the
   contention-model projections scale from. *)
let calibrate_crossing_ns ?pool ?(ops_per_domain = 100_000) ~make ~depth () =
  if depth <= 0 then invalid_arg "Harness.calibrate_crossing_ns: depth must be positive";
  let r = throughput ?pool ~make ~domains:1 ~ops_per_domain () in
  r.seconds *. 1e9 /. (float_of_int r.total_ops *. float_of_int depth)

let run_collect ?pool ?(validate = Validator.Log) ~make ~domains ~ops_per_domain () =
  check_args ~domains ~ops_per_domain;
  let counter = make () in
  let values = Array.init domains (fun _ -> Array.make ops_per_domain (-1)) in
  let _ =
    spawn_all ?pool ~counter ~domains ~ops_per_domain
      ~record:(fun pid i v -> values.(pid).(i) <- v)
      ()
  in
  (match validate with
  | Validator.Off -> ()
  | policy ->
      Validator.enforce policy (Validator.collected_values values);
      Option.iter
        (fun rt -> Validator.enforce policy (Validator.quiescent_runtime rt))
        (Shared_counter.runtime counter));
  values

let values_are_a_range = Validator.values_form_a_range
